// Docs lint: the operator-facing documentation must keep up with the
// code. Every flag msite-proxy registers has to appear in the README's
// operator-runbook flag table, and the docs the README links to have to
// exist. CI runs this with the rest of the suite.
package msite_test

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// proxyFlagNames extracts the flag names registered by cmd/msite-proxy
// from its source, so the lint cannot drift from the binary.
func proxyFlagNames(t *testing.T) []string {
	t.Helper()
	src, err := os.ReadFile("cmd/msite-proxy/main.go")
	if err != nil {
		t.Fatalf("read msite-proxy source: %v", err)
	}
	// flag.String("addr", ...) / flag.Var(&specPaths, "spec", ...)
	decl := regexp.MustCompile(`flag\.[A-Za-z0-9]+\((?:&[A-Za-z0-9]+, )?"([a-z-]+)"`)
	var names []string
	for _, m := range decl.FindAllStringSubmatch(string(src), -1) {
		names = append(names, m[1])
	}
	if len(names) < 10 {
		t.Fatalf("flag extraction found only %d flags (%v) — regexp out of date?", len(names), names)
	}
	return names
}

func TestReadmeDocumentsEveryProxyFlag(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("read README: %v", err)
	}
	// The runbook table lists each flag as a `| `-name` |` row.
	for _, name := range proxyFlagNames(t) {
		row := "| `-" + name + "`"
		if !strings.Contains(string(readme), row) {
			t.Errorf("README.md operator runbook is missing a row for msite-proxy flag -%s", name)
		}
	}
}

func TestResilienceDocCoversEveryKnob(t *testing.T) {
	doc, err := os.ReadFile("docs/RESILIENCE.md")
	if err != nil {
		t.Fatalf("read docs/RESILIENCE.md: %v", err)
	}
	for _, flag := range []string{
		"-fetch-timeout", "-fetch-retries", "-breaker-threshold",
		"-breaker-cooldown", "-serve-stale", "-stale-for",
	} {
		if !strings.Contains(string(doc), "`"+flag+"`") {
			t.Errorf("docs/RESILIENCE.md does not document %s", flag)
		}
	}
	for _, metric := range []string{
		"msite_fetch_retries_total", "msite_breaker_state",
		"msite_breaker_transitions_total", "msite_proxy_stale_served_total",
		"msite_proxy_degraded_total", "msite_cache_stale_serves_total",
		"msite_cache_refresh_errors_total",
	} {
		if !strings.Contains(string(doc), metric) {
			t.Errorf("docs/RESILIENCE.md does not document metric %s", metric)
		}
	}
}

func TestStoreDocCoversEveryKnob(t *testing.T) {
	doc, err := os.ReadFile("docs/STORE.md")
	if err != nil {
		t.Fatalf("read docs/STORE.md: %v", err)
	}
	for _, flag := range []string{
		"-store-dir", "-store-max-bytes", "-store-fsync",
	} {
		if !strings.Contains(string(doc), "`"+flag+"`") {
			t.Errorf("docs/STORE.md does not document %s", flag)
		}
	}
	obsDoc, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read docs/OBSERVABILITY.md: %v", err)
	}
	for _, metric := range []string{
		"msite_store_hits_total", "msite_store_misses_total",
		"msite_store_bytes", "msite_store_segments",
		"msite_store_write_drops_total",
		"msite_store_recovered_records_total",
		"msite_store_corrupt_records_total",
		"msite_proxy_bundle_reuses_total",
		"msite_session_cleanup_errors_total",
	} {
		if strings.HasPrefix(metric, "msite_store") && !strings.Contains(string(doc), metric) {
			t.Errorf("docs/STORE.md does not document metric %s", metric)
		}
		if !strings.Contains(string(obsDoc), metric) {
			t.Errorf("docs/OBSERVABILITY.md does not list metric %s", metric)
		}
	}
}

func TestReadmeLinksResolve(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("read README: %v", err)
	}
	link := regexp.MustCompile(`\]\(((?:docs/)?[A-Za-z0-9_.-]+\.(?:md|json))\)`)
	seen := map[string]bool{}
	for _, m := range link.FindAllStringSubmatch(string(readme), -1) {
		path := m[1]
		if seen[path] {
			continue
		}
		seen[path] = true
		if _, err := os.Stat(path); err != nil {
			t.Errorf("README.md links to %s, which does not exist", path)
		}
	}
	if len(seen) == 0 {
		t.Fatal("found no relative doc links in README.md — link regexp out of date?")
	}
}

func TestAdmissionDocCoversEveryKnob(t *testing.T) {
	doc, err := os.ReadFile("docs/ADMISSION.md")
	if err != nil {
		t.Fatalf("read docs/ADMISSION.md: %v", err)
	}
	for _, flag := range []string{
		"-max-concurrent-adaptations", "-admission-queue",
		"-rate-limit", "-max-sessions",
	} {
		if !strings.Contains(string(doc), "`"+flag+"`") {
			t.Errorf("docs/ADMISSION.md does not document %s", flag)
		}
	}
	for _, metric := range []string{
		"msite_admission_queue_depth", "msite_admission_shed_total",
		"msite_admission_coalesced_total", "msite_ratelimit_rejects_total",
	} {
		if !strings.Contains(string(doc), metric) {
			t.Errorf("docs/ADMISSION.md does not document metric %s", metric)
		}
		obsDoc, err := os.ReadFile("docs/OBSERVABILITY.md")
		if err != nil {
			t.Fatalf("read docs/OBSERVABILITY.md: %v", err)
		}
		if !strings.Contains(string(obsDoc), metric) {
			t.Errorf("docs/OBSERVABILITY.md does not list metric %s", metric)
		}
	}
}

func TestStreamingDocCoversEveryKnob(t *testing.T) {
	doc, err := os.ReadFile("docs/PERFORMANCE.md")
	if err != nil {
		t.Fatalf("read docs/PERFORMANCE.md: %v", err)
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("read README: %v", err)
	}
	for _, flag := range []string{
		"-stream", "-atf-height", "-snapshot-progressive", "-minimal-markup",
	} {
		if !strings.Contains(string(doc), "`"+flag+"`") {
			t.Errorf("docs/PERFORMANCE.md does not document %s", flag)
		}
		if !strings.Contains(string(readme), "| `"+flag+"`") {
			t.Errorf("README.md operator runbook is missing a row for %s", flag)
		}
	}
	for _, metric := range []string{
		"msite_proxy_ttfb_seconds", "msite_proxy_atf_seconds",
	} {
		if !strings.Contains(string(doc), metric) {
			t.Errorf("docs/PERFORMANCE.md does not document metric %s", metric)
		}
	}
	for _, topic := range []string{
		"BENCH_PR7.json", "byte-identical", "msite-bench streaming",
	} {
		if !strings.Contains(string(doc), topic) {
			t.Errorf("docs/PERFORMANCE.md does not cover %q", topic)
		}
	}
}

func TestPrefetchDocCoversEveryKnob(t *testing.T) {
	doc, err := os.ReadFile("docs/PREFETCH.md")
	if err != nil {
		t.Fatalf("read docs/PREFETCH.md: %v", err)
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("read README: %v", err)
	}
	for _, flag := range []string{
		"-prefetch", "-prefetch-top-n", "-prefetch-interval", "-prefetch-depth",
	} {
		if !strings.Contains(string(doc), "`"+flag+"`") {
			t.Errorf("docs/PREFETCH.md does not document %s", flag)
		}
		if !strings.Contains(string(readme), "| `"+flag+"`") {
			t.Errorf("README.md operator runbook is missing a row for %s", flag)
		}
	}
	obsDoc, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read docs/OBSERVABILITY.md: %v", err)
	}
	for _, metric := range []string{
		"msite_prefetch_built_total", "msite_prefetch_revalidated_total",
		"msite_prefetch_not_modified_total", "msite_prefetch_skipped_busy_total",
		"msite_prefetch_queue",
	} {
		if !strings.Contains(string(doc), metric) {
			t.Errorf("docs/PREFETCH.md does not document metric %s", metric)
		}
		if !strings.Contains(string(obsDoc), metric) {
			t.Errorf("docs/OBSERVABILITY.md does not list metric %s", metric)
		}
	}
	for _, topic := range []string{
		"ETag", "Last-Modified", "304", "demand", "background lane",
		"helping", "stealing", "BENCH_PR8.json", "msite-bench prefetch",
	} {
		if !strings.Contains(string(doc), topic) {
			t.Errorf("docs/PREFETCH.md does not cover %q", topic)
		}
	}
}

// TestQualityDocCoversEveryKnob pins the adaptation-quality doc to the
// quality subsystem's surface: flags, metrics, the debug endpoint, the
// rule catalog, and the bench record.
func TestQualityDocCoversEveryKnob(t *testing.T) {
	doc, err := os.ReadFile("docs/QUALITY.md")
	if err != nil {
		t.Fatalf("read docs/QUALITY.md: %v", err)
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("read README: %v", err)
	}
	for _, flag := range []string{
		"-repair-rules", "-parity-check", "-parity-min-score",
	} {
		if !strings.Contains(string(doc), "`"+flag+"`") {
			t.Errorf("docs/QUALITY.md does not document %s", flag)
		}
		if !strings.Contains(string(readme), "| `"+flag+"`") {
			t.Errorf("README.md operator runbook is missing a row for %s", flag)
		}
	}
	obsDoc, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read docs/OBSERVABILITY.md: %v", err)
	}
	for _, metric := range []string{
		"msite_quality_repairs_total", "msite_quality_parity_score",
		"msite_quality_parity_failures_total",
	} {
		if !strings.Contains(string(doc), metric) {
			t.Errorf("docs/QUALITY.md does not document metric %s", metric)
		}
		if !strings.Contains(string(obsDoc), metric) {
			t.Errorf("docs/OBSERVABILITY.md does not list metric %s", metric)
		}
	}
	for _, topic := range []string{
		"viewport", "fixed-width", "touch-target", "font-floor",
		"/debug/parity", "sanctioned", "BENCH_PR9.json",
		"msite-bench quality", "RegisterExtension",
	} {
		if !strings.Contains(string(doc), topic) {
			t.Errorf("docs/QUALITY.md does not cover %q", topic)
		}
	}
	attrDoc, err := os.ReadFile("docs/ATTRIBUTES.md")
	if err != nil {
		t.Fatalf("read docs/ATTRIBUTES.md: %v", err)
	}
	if !strings.Contains(string(attrDoc), "`repair`") {
		t.Error("docs/ATTRIBUTES.md does not document the repair attribute")
	}
}

// TestClusterDocCoversEveryKnob pins the cluster doc to the scale-out
// subsystem's surface: flags, metrics, the peer protocol endpoints,
// the failure matrix, and the bench record.
func TestClusterDocCoversEveryKnob(t *testing.T) {
	doc, err := os.ReadFile("docs/CLUSTER.md")
	if err != nil {
		t.Fatalf("read docs/CLUSTER.md: %v", err)
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("read README: %v", err)
	}
	for _, flag := range []string{
		"-cluster-listen", "-cluster-peers", "-cluster-replicas", "-cluster-token",
	} {
		if !strings.Contains(string(doc), "`"+flag+"`") {
			t.Errorf("docs/CLUSTER.md does not document %s", flag)
		}
		if !strings.Contains(string(readme), "| `"+flag+"`") {
			t.Errorf("README.md operator runbook is missing a row for %s", flag)
		}
	}
	obsDoc, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read docs/OBSERVABILITY.md: %v", err)
	}
	for _, metric := range []string{
		"msite_cluster_ring_nodes", "msite_cluster_peer_state",
		"msite_cluster_forwarded_total", "msite_cluster_owner_builds_total",
		"msite_cluster_fallback_local_total", "msite_cluster_peer_errors_total",
	} {
		if !strings.Contains(string(doc), metric) {
			t.Errorf("docs/CLUSTER.md does not document metric %s", metric)
		}
		if !strings.Contains(string(obsDoc), metric) {
			t.Errorf("docs/OBSERVABILITY.md does not list metric %s", metric)
		}
	}
	for _, topic := range []string{
		"consistent-hash", "owner", "/internal/cluster/health",
		"/internal/cluster/bundle/", "/internal/cluster/snapshot/",
		"X-MSite-Trace", "Sticky personalized", "Split config",
		"Bounded movement", "ClusterProbeInterval",
		"BENCH_PR10.json", "msite-bench cluster", "msite-bench\nhistory",
	} {
		if !strings.Contains(string(doc), topic) {
			t.Errorf("docs/CLUSTER.md does not cover %q", topic)
		}
	}
}

// coreConfigFields extracts the exported field names of core.Config
// from its source, so the lint cannot drift from the struct.
func coreConfigFields(t *testing.T) []string {
	t.Helper()
	src, err := os.ReadFile("internal/core/core.go")
	if err != nil {
		t.Fatalf("read core source: %v", err)
	}
	structRe := regexp.MustCompile(`(?s)type Config struct \{.*?\n\}`)
	body := structRe.FindString(string(src))
	if body == "" {
		t.Fatal("could not locate the core.Config struct — lint regexp out of date?")
	}
	field := regexp.MustCompile(`(?m)^\t([A-Z][A-Za-z0-9]*) `)
	var names []string
	for _, m := range field.FindAllStringSubmatch(body, -1) {
		names = append(names, m[1])
	}
	if len(names) < 20 {
		t.Fatalf("field extraction found only %d fields (%v) — regexp out of date?", len(names), names)
	}
	return names
}

// TestDocsCoverConfigAndFlags is the docs-lint gate CI runs: every
// core.Config field and every msite-proxy flag must be mentioned
// somewhere under docs/ (the docs/README.md reference table satisfies
// fields; subsystem docs satisfy flags). A new knob without
// documentation fails the build.
func TestDocsCoverConfigAndFlags(t *testing.T) {
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatalf("read docs/: %v", err)
	}
	var all strings.Builder
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".md") {
			continue
		}
		data, err := os.ReadFile("docs/" + e.Name())
		if err != nil {
			t.Fatalf("read docs/%s: %v", e.Name(), err)
		}
		all.Write(data)
		all.WriteByte('\n')
	}
	docs := all.String()
	for _, field := range coreConfigFields(t) {
		if !strings.Contains(docs, "`"+field+"`") {
			t.Errorf("core.Config field %s is not documented anywhere under docs/ (add it to docs/README.md's reference table)", field)
		}
	}
	for _, name := range proxyFlagNames(t) {
		if !strings.Contains(docs, "`-"+name+"`") {
			t.Errorf("msite-proxy flag -%s is not documented anywhere under docs/", name)
		}
	}
}

func TestObsDocCoversEveryKnob(t *testing.T) {
	doc, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read docs/OBSERVABILITY.md: %v", err)
	}
	for _, flag := range []string{
		"-slo-target-p99", "-slo-availability",
		"-incident-dir", "-incident-max",
	} {
		if !strings.Contains(string(doc), "`"+flag+"`") {
			t.Errorf("docs/OBSERVABILITY.md does not document %s", flag)
		}
	}
	for _, metric := range []string{
		"msite_slo_burn_rate", "msite_slo_compliance",
		"msite_slo_budget_remaining", "msite_slo_alerting",
		"msite_slo_alerts_total",
		"msite_runtime_goroutines", "msite_runtime_heap_alloc_bytes",
		"msite_runtime_gc_pause_total_seconds",
		"msite_runtime_sched_latency_p99_seconds",
		"msite_incidents_total", "msite_incidents_suppressed_total",
		"msite_incident_capture_errors_total",
	} {
		if !strings.Contains(string(doc), metric) {
			t.Errorf("docs/OBSERVABILITY.md does not document metric %s", metric)
		}
	}
	for _, surface := range []string{
		"/slo", "/debug/incidents", "/debug/pprof",
		"X-MSite-Trace",
		"meta.json", "goroutines.txt", "heap.pprof", "cpu.pprof",
		"traces.json", "metrics_delta.json",
	} {
		if !strings.Contains(string(doc), surface) {
			t.Errorf("docs/OBSERVABILITY.md does not mention %s", surface)
		}
	}
}
