// End-to-end integration tests: multi-user concurrency against the full
// stack, failure injection (origin loss, malformed markup), and a
// compile-and-run exercise of the generated proxy program.
package msite_test

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"msite/internal/core"
	"msite/internal/experiments"
	"msite/internal/gen"
	"msite/internal/origin"
	"msite/internal/spec"
)

func startForumProxy(t *testing.T) (*core.Framework, *httptest.Server, *httptest.Server) {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)
	fw, err := core.New(experiments.SpecForForum(originSrv.URL), core.Config{
		SessionRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(fw.Handler())
	t.Cleanup(proxySrv.Close)
	return fw, originSrv, proxySrv
}

func fetchOK(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestIntegrationMultiUserConcurrency drives 12 independent mobile
// clients through the full journey concurrently: entry page, login
// subpage, pre-rendered forums subpage with its asset, and an AJAX
// action. The snapshot must render once and be amortized across all of
// them (§3.3 Object caching / §4.6).
func TestIntegrationMultiUserConcurrency(t *testing.T) {
	fw, _, proxySrv := startForumProxy(t)

	const users = 12
	var wg sync.WaitGroup
	errs := make(chan error, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			jar, err := cookiejar.New(nil)
			if err != nil {
				errs <- err
				return
			}
			client := &http.Client{Jar: jar, Timeout: 60 * time.Second}
			journey := func() error {
				for _, path := range []string{"/", "/subpage/login", "/subpage/forums", "/asset/forums.jpg", "/asset/shoptour_thumb.jpg", "/ajax?action=1&p=3"} {
					resp, err := client.Get(proxySrv.URL + path)
					if err != nil {
						return fmt.Errorf("user %d %s: %w", u, path, err)
					}
					body, _ := io.ReadAll(resp.Body)
					_ = resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						return fmt.Errorf("user %d %s: status %d: %.120s", u, path, resp.StatusCode, body)
					}
				}
				return nil
			}
			if err := journey(); err != nil {
				errs <- err
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	if got := fw.Sessions().Len(); got != users {
		t.Fatalf("sessions = %d, want %d", got, users)
	}
	stats := fw.ProxyStats()
	if stats.SnapshotRenders != 1 {
		t.Fatalf("snapshot renders = %d, want 1 (amortized)", stats.SnapshotRenders)
	}
	// Concurrent cold sessions of the same page coalesce into shared
	// pipeline runs: perfect overlap builds once, no overlap builds once
	// per user. Anything in between is timing.
	if stats.Adaptations < 1 || stats.Adaptations > users {
		t.Fatalf("adaptations = %d, want 1..%d", stats.Adaptations, users)
	}
}

// TestIntegrationOriginLoss injects origin failure mid-session: content
// already generated keeps serving from the session directory; work that
// needs the origin degrades to 502 (the §3.2 "error handling should the
// page be unavailable").
func TestIntegrationOriginLoss(t *testing.T) {
	_, originSrv, proxySrv := startForumProxy(t)
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Jar: jar}
	fetchOK(t, client, proxySrv.URL+"/")
	fetchOK(t, client, proxySrv.URL+"/subpage/login")

	originSrv.Close() // origin goes away

	// Already-generated artifacts still serve.
	fetchOK(t, client, proxySrv.URL+"/subpage/login")
	fetchOK(t, client, proxySrv.URL+"/asset/forums.jpg")

	// A forced re-adaptation needs the origin: 502.
	resp, err := client.Get(proxySrv.URL + "/?refresh=1")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("refresh with dead origin = %d", resp.StatusCode)
	}

	// A brand-new user cannot be adapted at all: 502.
	jar2, _ := cookiejar.New(nil)
	client2 := &http.Client{Jar: jar2}
	resp2, err := client2.Get(proxySrv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp2.Body)
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("new user with dead origin = %d", resp2.StatusCode)
	}
}

// TestIntegrationMalformedOrigin feeds the proxy pathological tag soup;
// the Tidy pipeline must still produce a working adaptation.
func TestIntegrationMalformedOrigin(t *testing.T) {
	soup := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`<HTML><Body><DIV id=target><P>un<b>closed <table><tr><td>cell
<LI>stray item</UL><img src=x.gif><style>#target { color: red </style>
<script>if (a<b) {</script><p>trailing`))
	}))
	defer soup.Close()

	sp := &spec.Spec{
		Name: "soup", Origin: soup.URL + "/",
		Objects: []spec.Object{
			{Name: "target", Selector: "#target", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"title": "T"}},
			}},
		},
	}
	fw, err := core.New(sp, core.Config{SessionRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(fw.Handler())
	defer proxySrv.Close()

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar}
	body := fetchOK(t, client, proxySrv.URL+"/subpage/target")
	if !strings.Contains(body, "cell") {
		t.Fatalf("subpage lost content: %s", body)
	}
}

// TestIntegrationGeneratedProxyRuns compiles the generated shell code
// and runs it as a real process against a live origin — the complete
// §3.2 workflow: visual tool output → generated proxy → adapted pages.
func TestIntegrationGeneratedProxyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain unavailable")
	}

	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	defer originSrv.Close()

	code, err := gen.GenerateProxyMain(experiments.SpecForForum(originSrv.URL), gen.Options{})
	if err != nil {
		t.Fatal(err)
	}

	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(root, "gentest_run_")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), code, 0o600); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "proxy-bin")
	build := exec.Command(goBin, "build", "-o", bin, "./"+filepath.Base(dir))
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	sessions := t.TempDir()
	cmd := exec.Command(bin, "-addr", addr, "-sessions", sessions)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	var lastErr error
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		resp, err := client.Get("http://" + addr + "/")
		if err != nil {
			lastErr = err
			time.Sleep(100 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("generated proxy entry: %d: %s", resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "usemap") {
			t.Fatalf("generated proxy entry lacks image map: %s", body)
		}
		// And a subpage through the generated binary.
		sub := fetchOK(t, client, "http://"+addr+"/subpage/login")
		if !strings.Contains(sub, "loginform") {
			t.Fatal("generated proxy subpage wrong")
		}
		return
	}
	t.Fatalf("generated proxy never became ready: %v", lastErr)
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}
