module msite

go 1.24
