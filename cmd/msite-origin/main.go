// Command msite-origin serves the synthetic origin sites the evaluation
// runs against: the vBulletin-analog forum (SawmillCreek.org stand-in)
// and the CraigsList-analog classifieds engine.
//
// Usage:
//
//	msite-origin -site forum -addr :8800
//	msite-origin -site classifieds -addr :8801
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"msite/internal/origin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msite-origin:", err)
		os.Exit(1)
	}
}

func run() error {
	site := flag.String("site", "forum", "which site to serve: forum or classifieds")
	addr := flag.String("addr", ":8800", "listen address")
	seed := flag.Int64("seed", 42, "content seed")
	flag.Parse()

	var handler http.Handler
	switch *site {
	case "forum":
		cfg := origin.DefaultForumConfig()
		cfg.Seed = *seed
		forum := origin.NewForum(cfg)
		handler = forum.Handler()
		fmt.Printf("forum origin (%d members, %d byte entry page) on %s\n",
			cfg.Members, forum.EntryPageBytes(), *addr)
	case "classifieds":
		cfg := origin.DefaultClassifiedsConfig()
		cfg.Seed = *seed
		handler = origin.NewClassifieds(cfg).Handler()
		fmt.Printf("classifieds origin (%d listings/category) on %s\n", cfg.Listings, *addr)
	default:
		return fmt.Errorf("unknown site %q (want forum or classifieds)", *site)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
