// Command msite-gen is the code generator: it turns an adaptation spec
// into a standalone Go proxy program — the analog of the paper's
// generated php shell code.
//
// Usage:
//
//	msite-gen -spec spec.json -o cmd/sawdust-proxy/main.go
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"msite/internal/gen"
	"msite/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msite-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	specPath := flag.String("spec", "", "adaptation spec JSON (required)")
	out := flag.String("o", "", "output file (default stdout)")
	pkg := flag.String("package", "main", "generated package name")
	addr := flag.String("addr", ":8900", "default listen address baked into the proxy")
	sessions := flag.String("sessions", "./msite-sessions", "default session root baked into the proxy")
	flag.Parse()

	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	sp, err := spec.Parse(data)
	if err != nil {
		return err
	}
	code, err := gen.GenerateProxyMain(sp, gen.Options{
		Package:     *pkg,
		ListenAddr:  *addr,
		SessionRoot: *sessions,
		Timestamp:   time.Now(),
	})
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(code)
		return err
	}
	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		return err
	}
	fmt.Printf("generated proxy for %q → %s\n", sp.Name, *out)
	return nil
}
