// Command msite-admin is the headless administrator tool: inspect a live
// page's selectable objects (the visual tool's inventory), detect a
// fragment's intra-page dependencies, and validate adaptation specs.
//
// Usage:
//
//	msite-admin inspect http://localhost:8800/
//	msite-admin deps http://localhost:8800/ "#loginform"
//	msite-admin validate spec.json
//	msite-admin example http://localhost:8800 > spec.json
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"msite/internal/admin"
	"msite/internal/experiments"
	"msite/internal/html"
	"msite/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msite-admin:", err)
		os.Exit(1)
	}
}

func run() error {
	width := flag.Int("width", 1024, "render width for coordinates")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		return fmt.Errorf("usage: msite-admin [-width N] inspect|deps|validate|example ...")
	}
	switch args[0] {
	case "inspect":
		if len(args) != 2 {
			return fmt.Errorf("usage: msite-admin inspect <url>")
		}
		return inspect(args[1], *width)
	case "deps":
		if len(args) != 3 {
			return fmt.Errorf("usage: msite-admin deps <url> <selector>")
		}
		return deps(args[1], args[2])
	case "validate":
		if len(args) != 2 {
			return fmt.Errorf("usage: msite-admin validate <spec.json>")
		}
		return validate(args[1])
	case "example":
		if len(args) != 2 {
			return fmt.Errorf("usage: msite-admin example <origin-url>")
		}
		return example(args[1])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func fetchPage(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", fmt.Errorf("fetching %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s returned %d", url, resp.StatusCode)
	}
	return string(body), nil
}

func inspect(url string, width int) error {
	src, err := fetchPage(url)
	if err != nil {
		return err
	}
	objects := admin.Inspect(src, width)
	fmt.Printf("%-28s %-24s %-10s %s\n", "SELECTOR", "REGION", "KIND", "PREVIEW")
	for _, o := range objects {
		sel := o.Selector
		if sel == "" {
			sel = o.XPath
		}
		kind := "visual"
		region := fmt.Sprintf("%d,%d %dx%d", o.Region.X, o.Region.Y, o.Region.W, o.Region.H)
		if o.NonVisual {
			kind = "dock"
			region = "-"
		}
		preview := o.TextPreview
		if len(preview) > 40 {
			preview = preview[:40]
		}
		fmt.Printf("%-28s %-24s %-10s %s\n", sel, region, kind, preview)
	}
	return nil
}

func deps(url, selector string) error {
	src, err := fetchPage(url)
	if err != nil {
		return err
	}
	doc := html.Tidy(src)
	paths, err := admin.DetectDependencies(doc, selector)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		fmt.Println("no intra-page dependencies detected")
		return nil
	}
	fmt.Printf("dependencies of %s:\n", selector)
	for _, p := range paths {
		fmt.Println(" ", p)
	}
	return nil
}

func validate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sp, err := spec.Parse(data)
	if err != nil {
		return err
	}
	fmt.Printf("spec %q valid: %d objects, %d filters, %d actions\n",
		sp.Name, len(sp.Objects), len(sp.Filters), len(sp.Actions))
	return nil
}

func example(originURL string) error {
	sp := experiments.SpecForForum(originURL)
	data, err := sp.JSON()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(data, '\n'))
	return err
}
