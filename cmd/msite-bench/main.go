// Command msite-bench regenerates the paper's evaluation: Table 1,
// Figure 7, and the in-text page-weight / pre-render speedup / image
// fidelity results, printing each in the paper's form with the paper's
// values alongside. It spins up the synthetic origin internally unless
// -origin points at a running one.
//
// Usage:
//
//	msite-bench all
//	msite-bench table1
//	msite-bench fig7 -window 10s
//	msite-bench fidelity | speedup | pageweight | ablation | stages
//	msite-bench parallel     # serial-vs-parallel pipeline ablation → BENCH_PR2.json
//	msite-bench resilience   # availability under injected origin faults → BENCH_PR3.json
//	msite-bench overload     # flash-crowd admission-control chaos run → BENCH_PR4.json
//	msite-bench persistence  # durable store: warm restart + crash safety → BENCH_PR5.json
//	msite-bench obs          # SLO burn-rate alerting + flight recorder → BENCH_PR6.json
//	msite-bench streaming    # flush-early vs buffered entry serving → BENCH_PR7.json
//	msite-bench prefetch     # speculative pre-adaptation crawler + revalidation → BENCH_PR8.json
//	msite-bench quality      # repair rules + content-parity lint → BENCH_PR9.json
//	msite-bench cluster      # consistent-hash scale-out fleet → BENCH_PR10.json
//	msite-bench history      # fold BENCH_PR*.json into BENCH_HISTORY.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"msite/internal/experiments"
	"msite/internal/origin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msite-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	originURL := flag.String("origin", "", "forum origin URL (default: internal server)")
	window := flag.Duration("window", 3*time.Second, "Figure 7 measurement window per run")
	reps := flag.Int("reps", 3, "Figure 7 repetitions per point")
	csv := flag.Bool("csv", false, "emit Figure 7 data as CSV for plotting")
	parallelOut := flag.String("parallel-out", "BENCH_PR2.json", "where the parallel ablation writes its JSON record (empty = don't write)")
	parallelLatency := flag.Duration("parallel-latency", 15*time.Millisecond, "injected origin latency for the parallel ablation")
	resilienceOut := flag.String("resilience-out", "BENCH_PR3.json", "where the resilience bench writes its JSON record (empty = don't write)")
	resilienceReqs := flag.Int("resilience-requests", 40, "chaos-phase request count for the resilience bench")
	resilienceBlackout := flag.Int("resilience-blackout", 10, "forced-outage request count for the resilience bench")
	overloadOut := flag.String("overload-out", "BENCH_PR4.json", "where the overload bench writes its JSON record (empty = don't write)")
	overloadCrowd := flag.Int("overload-crowd", 12, "flash-crowd size for the overload bench")
	overloadSites := flag.Int("overload-sites", 6, "extra cold sites for the overload bench's capacity squeeze")
	overloadLatency := flag.Duration("overload-latency", 120*time.Millisecond, "injected origin latency for the overload bench")
	persistenceOut := flag.String("persistence-out", "BENCH_PR5.json", "where the persistence bench writes its JSON record (empty = don't write)")
	persistenceCrash := flag.Int("persistence-crash-records", 200, "records committed before the simulated crash in the persistence bench")
	obsOut := flag.String("obs-out", "BENCH_PR6.json", "where the observability bench writes its JSON record (empty = don't write)")
	streamingOut := flag.String("streaming-out", "BENCH_PR7.json", "where the streaming bench writes its JSON record (empty = don't write)")
	streamingLatency := flag.Duration("streaming-latency", 120*time.Millisecond, "injected origin latency for the streaming bench")
	streamingTrials := flag.Int("streaming-trials", 5, "cold entry loads per mode for the streaming bench")
	prefetchOut := flag.String("prefetch-out", "BENCH_PR8.json", "where the prefetch bench writes its JSON record (empty = don't write)")
	prefetchSites := flag.Int("prefetch-sites", 5, "hosted sites for the prefetch bench's fleet")
	prefetchReqs := flag.Int("prefetch-requests", 300, "zipfian trace length for the prefetch bench's steady-state phase")
	qualityOut := flag.String("quality-out", "BENCH_PR9.json", "where the quality bench writes its JSON record (empty = don't write)")
	qualitySites := flag.Int("quality-sites", 2, "forum origins in the quality bench's clean fleet (plus one classifieds site)")
	qualityWarm := flag.Int("quality-warm", 120, "timed warm requests per side for the quality bench's overhead phase")
	clusterOut := flag.String("cluster-out", "BENCH_PR10.json", "where the cluster bench writes its JSON record (empty = don't write)")
	clusterSites := flag.Int("cluster-sites", 6, "cold sites for the cluster bench's throughput phase (balanced across owners)")
	clusterCrowd := flag.Int("cluster-crowd", 12, "cross-node flash-crowd size for the cluster bench")
	clusterLatency := flag.Duration("cluster-latency", 0, "injected origin latency for the cluster bench (0 = default 200ms)")
	historyDir := flag.String("history-dir", ".", "directory whose BENCH_PR*.json records the history subcommand folds")
	obsBatches := flag.Int("obs-batches", 8, "warm batches per side for the observability bench's overhead measurement")
	obsWarm := flag.Int("obs-warm", 150, "warm requests per batch for the observability bench")
	obsSpike := flag.Duration("obs-spike", 400*time.Millisecond, "injected origin latency spike for the observability bench")
	flag.Parse()

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}

	url := *originURL
	if url == "" {
		forum := origin.NewForum(origin.DefaultForumConfig())
		srv := httptest.NewServer(forum.Handler())
		defer srv.Close()
		url = srv.URL + "/"
		fmt.Printf("internal origin: %s (%d byte entry page)\n\n", url, forum.EntryPageBytes())
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			rows, err := experiments.Table1(url)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatTable1(rows))
		case "fig7":
			if !*csv {
				fmt.Printf("Figure 7 sweep: window=%v, %d reps/point (paper: 1 min windows) ...\n", *window, *reps)
			}
			points, err := experiments.Figure7(experiments.Fig7Config{
				OriginURL: url, Window: *window, Reps: *reps,
			})
			if err != nil {
				return err
			}
			if *csv {
				fmt.Println("browser_percent,req_per_min,runs")
				for _, p := range points {
					fmt.Printf("%.1f,%.0f,%d\n", p.BrowserPercent, p.ReqPerMin, p.Runs)
				}
				return nil
			}
			fmt.Println(experiments.FormatFig7(points))
		case "fidelity":
			rows, err := experiments.ImageFidelity(url)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatFidelity(rows))
		case "speedup":
			res, err := experiments.PreRenderSpeedup(url)
			if err != nil {
				return err
			}
			fmt.Printf("Pre-render speedup (§3.3; paper: factor of 5)\ndirect BlackBerry load: %v\ncached snapshot load:   %v\nspeedup: %.1fx\n\n",
				res.Direct.Round(100*time.Millisecond), res.Snapshot.Round(100*time.Millisecond), res.Factor)
		case "pageweight":
			w, err := experiments.MeasurePageWeight(url)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatPageWeight(w))
		case "ablation":
			row, err := experiments.CacheAblation(url)
			if err != nil {
				return err
			}
			fmt.Printf("Ablation: %s\nrender: %v, cache hit: %v (%.0fx)\n\n",
				row.Name, row.Baseline, row.Variant,
				float64(row.Baseline)/float64(row.Variant))
		case "stages":
			rep, err := experiments.StageBreakdown(url)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatStages(rep))
		case "parallel":
			// Runs against its own latency-injected internal origin (the
			// -origin flag does not apply): the serial-vs-parallel contrast
			// needs per-request origin delay a loopback server doesn't have.
			rep, err := experiments.ParallelAblation(experiments.ParallelConfig{
				Latency: *parallelLatency,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatParallel(rep))
			if *parallelOut != "" {
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*parallelOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", *parallelOut)
			}
		case "resilience":
			// Runs against its own fault-injected internal origin (the
			// -origin flag does not apply): the chaos sequence needs the
			// injector in front of the origin handler.
			rep, err := experiments.Resilience(experiments.ResilienceConfig{
				Requests: *resilienceReqs,
				Blackout: *resilienceBlackout,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatResilience(rep))
			if rep.Errors5xx > 0 {
				return fmt.Errorf("resilience: %d requests answered 5xx under fault", rep.Errors5xx)
			}
			if *resilienceOut != "" {
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*resilienceOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", *resilienceOut)
			}
		case "overload":
			// Runs against its own latency-injected internal origin (the
			// -origin flag does not apply): the storm needs slow cold builds
			// to make the admission queue and coalescer observable.
			rep, err := experiments.Overload(experiments.OverloadConfig{
				Crowd:         *overloadCrowd,
				ExtraSites:    *overloadSites,
				OriginLatency: *overloadLatency,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatOverload(rep))
			if *overloadOut != "" {
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*overloadOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", *overloadOut)
			}
			if len(rep.Violations) > 0 {
				return fmt.Errorf("overload: %d invariant violation(s)", len(rep.Violations))
			}
		case "persistence":
			// Runs against its own internal origin and temp store directory
			// (the -origin flag does not apply): the scenario restarts the
			// proxy and corrupts the store's log tail mid-run.
			rep, err := experiments.Persistence(experiments.PersistenceConfig{
				CrashRecords: *persistenceCrash,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatPersistence(rep))
			if *persistenceOut != "" {
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*persistenceOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", *persistenceOut)
			}
			if len(rep.Violations) > 0 {
				return fmt.Errorf("persistence: %d invariant violation(s)", len(rep.Violations))
			}
		case "obs":
			// Runs against its own latency-injected internal origin (the
			// -origin flag does not apply): the scenario needs to switch a
			// spike on mid-run and compare an instrumented proxy against an
			// uninstrumented twin.
			rep, err := experiments.Obs(experiments.ObsConfig{
				WarmBatches:  *obsBatches,
				WarmRequests: *obsWarm,
				SpikeLatency: *obsSpike,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatObs(rep))
			if *obsOut != "" {
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*obsOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", *obsOut)
			}
			if len(rep.Violations) > 0 {
				return fmt.Errorf("obs: %d invariant violation(s)", len(rep.Violations))
			}
		case "streaming":
			// Runs against its own latency-injected internal origin (the
			// -origin flag does not apply): flush-early serving only shows
			// up against an origin with real round-trip time.
			rep, err := experiments.Streaming(experiments.StreamingConfig{
				Latency: *streamingLatency,
				Trials:  *streamingTrials,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatStreaming(rep))
			if *streamingOut != "" {
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*streamingOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", *streamingOut)
			}
			if len(rep.Violations) > 0 {
				return fmt.Errorf("streaming: %d invariant violation(s)", len(rep.Violations))
			}
		case "prefetch":
			// Runs against its own fleet of internal origins (the -origin
			// flag does not apply): the scenario churns origin content and
			// counts per-origin bytes to prove revalidation is cheap.
			rep, err := experiments.Prefetch(experiments.PrefetchConfig{
				Sites:    *prefetchSites,
				Requests: *prefetchReqs,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatPrefetch(rep))
			if *prefetchOut != "" {
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*prefetchOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", *prefetchOut)
			}
			if len(rep.Violations) > 0 {
				return fmt.Errorf("prefetch: %d invariant violation(s)", len(rep.Violations))
			}
		case "quality":
			// Runs against its own fleet of internal origins (the -origin
			// flag does not apply): the scenario seeds content-drop filter
			// bugs into mutated specs and compares quality-on/off twins.
			rep, err := experiments.Quality(experiments.QualityConfig{
				Sites: *qualitySites,
				Warm:  *qualityWarm,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatQuality(rep))
			if *qualityOut != "" {
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*qualityOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", *qualityOut)
			}
			if len(rep.Violations) > 0 {
				return fmt.Errorf("quality: %d invariant violation(s)", len(rep.Violations))
			}
		case "cluster":
			// Runs against its own fleet of latency-injected internal
			// origins (the -origin flag does not apply): the scenario boots
			// several cluster nodes on loopback listeners, kills one, and
			// rejoins it.
			rep, err := experiments.ClusterBench(experiments.ClusterBenchConfig{
				Sites:         *clusterSites,
				Crowd:         *clusterCrowd,
				OriginLatency: *clusterLatency,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatCluster(rep))
			if *clusterOut != "" {
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*clusterOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", *clusterOut)
			}
			if len(rep.Violations) > 0 {
				return fmt.Errorf("cluster: %d invariant violation(s)", len(rep.Violations))
			}
		case "history":
			hist, err := experiments.WriteHistory(*historyDir)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatHistory(hist))
			fmt.Printf("wrote %s\n\n", experiments.HistoryFile)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if what == "all" {
		for _, name := range []string{"pageweight", "table1", "speedup", "fidelity", "ablation", "parallel", "resilience", "overload", "persistence", "obs", "streaming", "prefetch", "quality", "cluster", "stages", "fig7", "history"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(what)
}
