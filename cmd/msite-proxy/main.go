// Command msite-proxy runs the m.Site content adaptation proxy for an
// adaptation spec, without the code-generation step (the generated
// proxies embed their spec; this tool loads one at startup).
//
// Usage:
//
//	msite-proxy -spec spec.json -addr :8900 -sessions /tmp/msite
//	msite-proxy -spec page1.json -spec page2.json   # multi-page hosting
//	msite-proxy -spec spec.json -metrics=false -log-level debug
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"msite/internal/core"
	"msite/internal/spec"
)

// specList accumulates repeated -spec flags.
type specList []string

func (s *specList) String() string { return fmt.Sprint(*s) }

func (s *specList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msite-proxy:", err)
		os.Exit(1)
	}
}

func run() error {
	var specPaths specList
	flag.Var(&specPaths, "spec", "adaptation spec JSON (repeatable for multi-page hosting)")
	addr := flag.String("addr", ":8900", "listen address")
	sessions := flag.String("sessions", "./msite-sessions", "session directory root")
	width := flag.Int("width", 0, "server-side render width override")
	gcEvery := flag.Duration("gc", 10*time.Minute, "session GC interval")
	metrics := flag.Bool("metrics", true, "mount /metrics and /debug/traces")
	logLevel := flag.String("log-level", "info", "request log level: debug|info|warn|error|off")
	fetchWorkers := flag.Int("fetch-workers", 0, "concurrent subresource downloads per adaptation (0 = default, 1 = serial)")
	rasterWorkers := flag.Int("raster-workers", 0, "snapshot rasterization bands (0 = GOMAXPROCS, 1 = serial)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "render cache byte budget, LRU-evicted past it (0 = unbounded)")
	fetchTimeout := flag.Duration("fetch-timeout", 30*time.Second, "per-request origin deadline")
	fetchRetries := flag.Int("fetch-retries", 2, "retries per idempotent origin GET after transient failures (0 = none)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive origin failures that trip a circuit breaker (0 = default 5, negative = breakers off)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long a tripped breaker rejects before re-probing (0 = default 5s)")
	serveStale := flag.Bool("serve-stale", true, "serve previous adaptations and expired snapshots when the origin is unreachable")
	staleFor := flag.Duration("stale-for", 0, "how long past expiry a shared snapshot stays servable under -serve-stale (0 = default 5m)")
	maxAdapt := flag.Int("max-concurrent-adaptations", 0, "adaptation pipelines allowed to run at once; excess waits in a bounded queue or is shed with 503 (0 = unlimited)")
	admissionQueue := flag.Int("admission-queue", 0, "admission wait-queue length behind -max-concurrent-adaptations (0 = 4x concurrency, negative = no queue)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client requests/second budget, 429 + Retry-After past the burst (0 = unlimited)")
	maxSessions := flag.Int("max-sessions", 0, "live session cap; first contacts past it are shed with 503 (0 = uncapped)")
	storeDir := flag.String("store-dir", "", "durable render store directory; restarts rehydrate adapted content from it (empty = no persistence)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "durable store byte budget, least-recently-accessed records evicted past it (0 = unbounded)")
	storeFsync := flag.String("store-fsync", "", "store durability policy: interval (default), always, or never")
	sloTargetP99 := flag.Duration("slo-target-p99", 0, "latency SLO: 99% of requests must complete within this duration; enables /slo and msite_slo_* metrics (0 = off)")
	sloAvailability := flag.Float64("slo-availability", 0, "availability SLO: required non-5xx request fraction, e.g. 0.999 (0 = off)")
	incidentDir := flag.String("incident-dir", "", "flight-recorder directory; the watchdog captures incident bundles there, browsable at /debug/incidents (empty = off)")
	incidentMax := flag.Int("incident-max", 0, "incident bundles retained on disk, oldest deleted first (0 = default 16)")
	stream := flag.Bool("stream", false, "flush-early entry serving: send the overlay head before the origin fetch and render the snapshot in the background")
	atfHeight := flag.Int("atf-height", 0, "above-the-fold boundary in scaled snapshot pixels for the streamed entry split (0 = default 480, negative = everything above the fold)")
	snapshotProgressive := flag.Bool("snapshot-progressive", false, "with -stream, serve a coarse snapshot immediately and upgrade in-place once the full-fidelity encode completes")
	minimalMarkup := flag.Bool("minimal-markup", false, "force the MAML-style minimal-markup entry mode (headings, text, links only) for every site")
	prefetchOn := flag.Bool("prefetch", false, "speculative pre-adaptation: a background crawler pre-builds demanded bundles and keeps them fresh with conditional revalidation")
	prefetchTopN := flag.Int("prefetch-top-n", 0, "sites the crawler builds or revalidates per cycle (0 = default 4)")
	prefetchInterval := flag.Duration("prefetch-interval", 0, "nominal gap between crawler cycles, jittered ±20% (0 = default 30s)")
	prefetchDepth := flag.Int("prefetch-depth", 0, "links deep the crawler walks from each entry page when ranking by proximity (0 = default 1)")
	repairRules := flag.String("repair-rules", "", "mobile-repair rules run over every adapted page post-attr: comma-separated rule names or \"all\" (empty = off)")
	parityCheck := flag.Bool("parity-check", false, "validate content parity of origin vs adapted closure on every build (score via /metrics and /debug/parity)")
	parityMinScore := flag.Float64("parity-min-score", 0, "fail builds whose parity score drops below this (0 = report only; requires -parity-check)")
	clusterListen := flag.String("cluster-listen", "", "cluster mode: this node's advertised base URL, e.g. http://10.0.0.1:8900 (empty = clustering off)")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated advertised base URLs of the full fleet, including this node")
	clusterReplicas := flag.Int("cluster-replicas", 0, "consistent-hash virtual nodes per peer (0 = default 64)")
	clusterToken := flag.String("cluster-token", "", "shared bearer token authenticating peer transport requests (empty = unauthenticated)")
	flag.Parse()

	if len(specPaths) == 0 {
		return fmt.Errorf("-spec is required")
	}
	logger, err := newLogger(*logLevel)
	if err != nil {
		return err
	}
	cfg := core.Config{
		SessionRoot:        *sessions,
		ViewportWidth:      *width,
		Logger:             logger,
		FetchWorkers:       *fetchWorkers,
		RasterWorkers:      *rasterWorkers,
		CacheMaxBytes:      *cacheMaxBytes,
		CacheSweepInterval: time.Minute,
		FetchTimeout:       *fetchTimeout,
		FetchRetries:       *fetchRetries,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		ServeStale:         *serveStale,
		StaleFor:           *staleFor,

		MaxConcurrentAdaptations: *maxAdapt,
		AdmissionQueue:           *admissionQueue,
		RateLimit:                *rateLimit,
		MaxSessions:              *maxSessions,

		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMaxBytes,
		StoreFsync:    *storeFsync,

		SLOTargetP99:    *sloTargetP99,
		SLOAvailability: *sloAvailability,
		IncidentDir:     *incidentDir,
		IncidentMax:     *incidentMax,

		Stream:              *stream,
		ATFHeight:           *atfHeight,
		SnapshotProgressive: *snapshotProgressive,
		MinimalMarkup:       *minimalMarkup,

		Prefetch:         *prefetchOn,
		PrefetchTopN:     *prefetchTopN,
		PrefetchInterval: *prefetchInterval,
		PrefetchDepth:    *prefetchDepth,
		RepairRules:      *repairRules,
		ParityCheck:      *parityCheck,
		ParityMinScore:   *parityMinScore,

		ClusterListen:   *clusterListen,
		ClusterReplicas: *clusterReplicas,
		ClusterToken:    *clusterToken,
	}
	if *clusterPeers != "" {
		for _, p := range strings.Split(*clusterPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.ClusterPeers = append(cfg.ClusterPeers, p)
			}
		}
	}

	if len(specPaths) > 1 {
		specs := make([]*spec.Spec, 0, len(specPaths))
		for _, path := range specPaths {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			sp, err := spec.Parse(data)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			specs = append(specs, sp)
		}
		mf, err := core.NewMulti(specs, cfg)
		if err != nil {
			return err
		}
		go gcLoop(mf.Sessions(), *gcEvery)
		fmt.Printf("m.Site multi-proxy hosting %v on %s\n", mf.Sites(), *addr)
		h := mf.HandlerWithMetrics()
		if !*metrics {
			h = mf.Handler()
		}
		return serve(*addr, h)
	}

	data, err := os.ReadFile(specPaths[0])
	if err != nil {
		return err
	}
	fw, err := core.NewFromJSON(data, cfg)
	if err != nil {
		return err
	}

	go gcLoop(fw.Sessions(), *gcEvery)
	fmt.Printf("m.Site proxy %q for %s on %s\n", fw.Spec().Name, fw.Spec().Origin, *addr)
	h := fw.HandlerWithMetrics()
	if !*metrics {
		h = fw.Handler()
	}
	return serve(*addr, h)
}

// serve mirrors core's server settings for the handler chosen by the
// -metrics flag.
func serve(addr string, h http.Handler) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}

// newLogger builds the request logger for -log-level; "off" disables
// logging entirely.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	case "off":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown -log-level %q", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// gcLoop collects idle sessions for the life of the process.
func gcLoop(sessions interface{ GC() int }, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for range ticker.C {
		if n := sessions.GC(); n > 0 {
			fmt.Printf("gc: collected %d idle sessions\n", n)
		}
	}
}
