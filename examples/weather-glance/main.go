// Weather-glance: the paper's intro motivation — "A mobile visit to an
// online weather site ... should probably focus on providing local
// weather ... as quickly as possible" (§4.2).
//
// The origin is a marketing-heavy weather page where current conditions
// sit below the fold. The adaptation relocates the conditions box to the
// top, strips the promotional content, splits the 7-day forecast table
// into its own subpage, and — because this spec disables the snapshot —
// serves the adapted HTML directly. The subpage is also fetched through
// the plain-text and PDF engines, the pluggable output path for
// ultra-constrained clients.
//
// Run: go run ./examples/weather-glance
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"strings"

	"msite/internal/admin"
	"msite/internal/core"
)

const weatherPage = `<!DOCTYPE html>
<html><head><title>StormCenter 5000 — Your Weather Authority</title>
<style>
#hero { background-color: #113355; color: white; height: 220px }
#conditions { border: 1px solid #888888; background-color: #eef2ff; padding: 6px }
.promo { background-color: #ffe9b0; padding: 8px }
</style></head>
<body>
<div id="hero"><h1>StormCenter 5000</h1><p>Download our desktop gadget! Watch our 24/7 video stream!</p></div>
<div class="promo">Sign up for StormCenter Plus Premium for exclusive radar loops and lightning alerts.</div>
<div class="promo">Advertisement: new 4-door sedans near you.</div>
<div id="conditions">
  <h2>Williamsburg, VA — Now</h2>
  <p><b>72F</b> Partly cloudy, humidity 61%, wind SW 8 mph</p>
</div>
<table id="forecast" width="100%">
  <tr><th>Day</th><th>High</th><th>Low</th><th>Sky</th></tr>
  <tr><td>Tuesday</td><td>74</td><td>58</td><td>Sunny</td></tr>
  <tr><td>Wednesday</td><td>77</td><td>60</td><td>Partly cloudy</td></tr>
  <tr><td>Thursday</td><td>71</td><td>59</td><td>Showers</td></tr>
  <tr><td>Friday</td><td>69</td><td>55</td><td>Storms</td></tr>
  <tr><td>Saturday</td><td>73</td><td>54</td><td>Sunny</td></tr>
</table>
<div class="promo">More premium upsells and partner offers down here.</div>
</body></html>`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "weather-glance:", err)
		os.Exit(1)
	}
}

func run() error {
	originSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(weatherPage))
	}))
	defer originSrv.Close()

	sp, err := admin.NewBuilder("stormcenter", originSrv.URL+"/").
		Viewport(1024).
		Object("promos", "div.promo").Remove().
		Object("hero", "#hero").ReplaceWith(`<div id="brand"><b>StormCenter 5000</b></div>`).
		Object("forecast", "#forecast").Subpage("7-day forecast").
		Object("conditions", "#conditions").
		With("relocate", map[string]string{"target": "#brand", "position": "after"}).
		With("insert-html", map[string]string{
			"position": "after",
			"html":     `<p><a href="/subpage/forecast">7-day forecast &raquo;</a></p>`,
		}).
		Done().Spec()
	if err != nil {
		return err
	}

	sessionRoot, err := os.MkdirTemp("", "msite-weather-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(sessionRoot) }()
	fw, err := core.New(sp, core.Config{SessionRoot: sessionRoot})
	if err != nil {
		return err
	}
	proxySrv := httptest.NewServer(fw.Handler())
	defer proxySrv.Close()

	jar, err := cookiejar.New(nil)
	if err != nil {
		return err
	}
	client := &http.Client{Jar: jar}

	entry, err := get(client, proxySrv.URL+"/")
	if err != nil {
		return err
	}
	fmt.Println("== adapted entry page (glanceable weather) ==")
	fmt.Printf("origin page:   %d bytes with %d promo blocks\n",
		len(weatherPage), strings.Count(weatherPage, `class="promo"`))
	fmt.Printf("adapted page:  %d bytes, promos removed: %v\n",
		len(entry), !strings.Contains(entry, `class="promo"`))
	brandIdx := strings.Index(entry, `id="brand"`)
	condIdx := strings.Index(entry, "Williamsburg")
	linkIdx := strings.Index(entry, "/subpage/forecast")
	fmt.Printf("conditions right after brand, before forecast link: %v\n",
		brandIdx >= 0 && brandIdx < condIdx && condIdx < linkIdx)
	fmt.Printf("forecast split out: %v\n", !strings.Contains(entry, "Wednesday"))

	forecast, err := get(client, proxySrv.URL+"/subpage/forecast")
	if err != nil {
		return err
	}
	fmt.Println("\n== forecast subpage ==")
	fmt.Printf("rows present: %v (%d bytes)\n", strings.Contains(forecast, "Thursday"), len(forecast))

	text, err := get(client, proxySrv.URL+"/subpage/forecast?format=text")
	if err != nil {
		return err
	}
	fmt.Println("\n== same subpage through the text engine ==")
	for _, line := range strings.SplitN(text, "\n", 5)[:4] {
		fmt.Println("  " + line)
	}

	pdf, err := get(client, proxySrv.URL+"/subpage/forecast?format=pdf")
	if err != nil {
		return err
	}
	fmt.Printf("\n== same subpage through the pdf engine ==\nvalid PDF: %v (%d bytes)\n",
		strings.HasPrefix(pdf, "%PDF-1.4"), len(pdf))
	return nil
}

func get(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}
