// Craigslist-ajax: the §4.5 / Fig. 6 scenario.
//
// CraigsList ordinarily requires no AJAX: every ad click is a full page
// load and a tiny back button. The adaptation splits the iPad view into
// two panes — the listing on the left, the selected ad on the right —
// by rewriting each ad link into a proxy action; clicking dispatches an
// asynchronous call the proxy satisfies by fetching the ad page,
// extracting #postingbody with server-side jQuery, and returning the
// fragment.
//
// Run: go run ./examples/craigslist-ajax
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"

	"msite/internal/core"
	"msite/internal/origin"
	"msite/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "craigslist-ajax:", err)
		os.Exit(1)
	}
}

func run() error {
	classifieds := origin.NewClassifieds(origin.DefaultClassifiedsConfig())
	originSrv := httptest.NewServer(classifieds.Handler())
	defer originSrv.Close()

	// The adaptation spec: two-pane layout via inserted markup, ad links
	// rewritten to proxy actions, fragments extracted from the ad pages
	// and cached across clients.
	sp := &spec.Spec{
		Name:          "craigslist-ipad",
		Origin:        originSrv.URL + "/search/tools",
		ViewportWidth: 1024, // iPad 1 landscape
		Objects: []spec.Object{
			{
				Name:     "listings",
				Selector: "#listings",
				Attributes: []spec.Attribute{
					// Left pane styling + the right-hand detail pane.
					{Type: spec.AttrInsertHTML, Params: map[string]string{
						"position": "before",
						"html": `<style>
#listings { float: left; width: 44%; height: 700px }
#msite-pane { float: right; width: 52%; background-color: white; border: 1px solid #999999 }
</style>`,
					}},
					{Type: spec.AttrAJAXify},
				},
			},
			{
				Name:     "sidebar",
				Selector: "#sidebar",
				Attributes: []spec.Attribute{
					{Type: spec.AttrRelocate, Params: map[string]string{
						"target": "#cat-title", "position": "after"}},
				},
			},
		},
		Actions: []spec.Action{
			{
				ID:              1,
				Match:           `/post/(\w+)\.html`,
				Target:          originSrv.URL + "/post/$1.html",
				Extract:         "#postingbody",
				CacheTTLSeconds: 300,
			},
		},
	}

	sessionRoot, err := os.MkdirTemp("", "msite-cl-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(sessionRoot) }()
	fw, err := core.New(sp, core.Config{SessionRoot: sessionRoot})
	if err != nil {
		return err
	}
	proxySrv := httptest.NewServer(fw.Handler())
	defer proxySrv.Close()

	jar, err := cookiejar.New(nil)
	if err != nil {
		return err
	}
	client := &http.Client{Jar: jar}

	// The adapted category page (snapshot disabled: iPads render HTML
	// fine; the win here is interaction structure, not pre-rendering).
	page, err := get(client, proxySrv.URL+"/")
	if err != nil {
		return err
	}
	fmt.Println("== adapted category page (two-pane iPad layout) ==")
	rewritten := regexp.MustCompile(`href="/ajax\?action=1&(?:amp;)?p=`).FindAllString(page, -1)
	fmt.Printf("ad links rewritten to proxy actions: %d of 100\n", len(rewritten))
	fmt.Printf("detail pane injected:                %v\n", strings.Contains(page, `id="msite-pane"`))
	fmt.Printf("client runtime injected:             %v\n", strings.Contains(page, "function msiteLoad"))
	fmt.Printf("two-pane stylesheet present:         %v\n", strings.Contains(page, "float: right"))

	// Clicking an ad: the asynchronous call the link now makes.
	param := extractFirstParam(page)
	fragment, err := get(client, proxySrv.URL+"/ajax?action=1&p="+param)
	if err != nil {
		return err
	}
	full, err := get(client, originSrv.URL+"/post/"+param+".html")
	if err != nil {
		return err
	}
	fmt.Println("\n== one ad click ==")
	fmt.Printf("full origin ad page:   %d bytes\n", len(full))
	fmt.Printf("AJAX fragment served:  %d bytes (#postingbody only)\n", len(fragment))
	fmt.Printf("fragment is the ad body: %v\n", strings.Contains(fragment, "postingbody"))

	// Fragment caching across clients (CacheTTLSeconds=300).
	if _, err := get(client, proxySrv.URL+"/ajax?action=1&p="+param); err != nil {
		return err
	}
	cs := fw.CacheStats()
	fmt.Printf("\nfragment cache: %d hits, %d fills\n", cs.Hits, cs.Fills)
	return nil
}

func get(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}

var paramRe = regexp.MustCompile(`action=1&(?:amp;)?p=(\w+)`)

func extractFirstParam(page string) string {
	m := paramRe.FindStringSubmatch(page)
	if m == nil {
		return "t0000"
	}
	return m[1]
}
