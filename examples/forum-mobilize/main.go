// Forum-mobilize: the full §4.2–4.3 deployment scenario.
//
// It applies the paper's evaluation spec to the forum entry page: a
// 60-minute shared low-fidelity snapshot with an image-map overlay, the
// Fig. 5 login subpage (page splitting + logo copy with mobile image +
// CSS/JS dependency injection), the nav-links vertical rewrite loaded
// via AJAX, a mobile banner replacement, and a pre-rendered searchable
// forums subpage. The snapshot image and the Fig. 5 subpage are written
// to ./out for inspection.
//
// Run: go run ./examples/forum-mobilize
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	"msite/internal/core"
	"msite/internal/experiments"
	"msite/internal/origin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "forum-mobilize:", err)
		os.Exit(1)
	}
}

func run() error {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	defer originSrv.Close()

	sp := experiments.SpecForForum(originSrv.URL)
	sessionRoot, err := os.MkdirTemp("", "msite-forum-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(sessionRoot) }()

	fw, err := core.New(sp, core.Config{SessionRoot: sessionRoot})
	if err != nil {
		return err
	}
	proxySrv := httptest.NewServer(fw.Handler())
	defer proxySrv.Close()

	jar, err := cookiejar.New(nil)
	if err != nil {
		return err
	}
	client := &http.Client{Jar: jar}

	outDir := "out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	// --- Entry page: cached snapshot + image map (§4.3) ---
	entry, err := get(client, proxySrv.URL+"/")
	if err != nil {
		return err
	}
	fmt.Println("== mobile entry page ==")
	fmt.Printf("overlay HTML: %d bytes\n", len(entry))
	fmt.Printf("image-map areas: %d (login, nav, forums)\n", strings.Count(entry, "<area"))
	snapshotPath := extractAttr(entry, "img", "src")
	snapshot, err := get(client, proxySrv.URL+snapshotPath)
	if err != nil {
		return err
	}
	fmt.Printf("snapshot image: %d bytes (paper band: 25–50 KB)\n", len(snapshot))
	if err := os.WriteFile(filepath.Join(outDir, "snapshot.jpg"), []byte(snapshot), 0o644); err != nil {
		return err
	}

	// --- Fig. 5: the login subpage ---
	login, err := get(client, proxySrv.URL+"/subpage/login")
	if err != nil {
		return err
	}
	fmt.Println("\n== Fig. 5 login subpage ==")
	fmt.Printf("mobile logo copied to top:   %v\n", strings.Contains(login, "/m/logo.gif"))
	fmt.Printf("login form moved in:         %v\n", strings.Contains(login, `id="loginform"`))
	fmt.Printf("CSS dependency injected:     %v\n", strings.Contains(login, "<style"))
	if err := os.WriteFile(filepath.Join(outDir, "login-subpage.html"), []byte(login), 0o644); err != nil {
		return err
	}

	// --- Pre-rendered searchable forums subpage ---
	forums, err := get(client, proxySrv.URL+"/subpage/forums")
	if err != nil {
		return err
	}
	fmt.Println("\n== pre-rendered forums subpage ==")
	fmt.Printf("served as single graphic:    %v\n", strings.Contains(forums, "/asset/forums.jpg"))
	fmt.Printf("search index shipped:        %v\n", strings.Contains(forums, "msiteSearchIndex"))
	fmt.Printf("binary search function:      %v\n", strings.Contains(forums, "function msiteSearch"))

	// --- AJAX nav loading (§4.3 asynchronous subpage) ---
	nav, err := get(client, proxySrv.URL+"/subpage/nav")
	if err != nil {
		return err
	}
	fmt.Println("\n== nav subpage (loaded into a div via AJAX) ==")
	fmt.Printf("vertical 2-column rewrite:   %v\n", strings.Contains(nav, "msite-nav"))

	// --- Rich-media thumbnail (shop-tour Flash box) ---
	thumb, err := get(client, proxySrv.URL+"/asset/shoptour_thumb.jpg")
	if err != nil {
		return err
	}
	fmt.Println("\n== rich-media thumbnail ==")
	fmt.Printf("Flash object replaced by %d-byte linked thumbnail\n", len(thumb))

	// --- The §4.4 showpic action through the proxy ---
	pic, err := get(client, proxySrv.URL+"/ajax?action=1&p=9")
	if err != nil {
		return err
	}
	fmt.Println("\n== AJAX action (showpic) ==")
	fmt.Printf("fragment extracted (#pic):   %v\n", strings.Contains(pic, "photo_9"))

	// --- Amortization: a second user shares the cached snapshot ---
	jar2, err := cookiejar.New(nil)
	if err != nil {
		return err
	}
	client2 := &http.Client{Jar: jar2}
	if _, err := get(client2, proxySrv.URL+"/"); err != nil {
		return err
	}
	stats := fw.ProxyStats()
	fmt.Println("\n== cross-session amortization ==")
	fmt.Printf("users served: 2, snapshot renders: %d, cache hits: %d\n",
		stats.SnapshotRenders, stats.SnapshotHits)
	fmt.Printf("\nartifacts written to %s/\n", outDir)
	return nil
}

func get(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}

// extractAttr pulls the first attr value for a tag out of markup — a
// tiny helper so the example stays dependency-light.
func extractAttr(markup, tag, attr string) string {
	open := strings.Index(markup, "<"+tag)
	if open < 0 {
		return ""
	}
	rest := markup[open:]
	marker := attr + `="`
	i := strings.Index(rest, marker)
	if i < 0 {
		return ""
	}
	rest = rest[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}
