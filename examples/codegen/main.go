// Codegen: the visual tool's output stage (§3.2).
//
// Where the paper's admin tool "generates a php file from shell template
// code" to act as the proxy for a page, this example builds a spec,
// generates the standalone Go proxy program for it, and prints the
// artifact. Pass -build to also compile it with the Go toolchain as
// proof the shell code is a working program.
//
// Run: go run ./examples/codegen [-build]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"msite/internal/admin"
	"msite/internal/gen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "codegen:", err)
		os.Exit(1)
	}
}

func run() error {
	build := flag.Bool("build", false, "also compile the generated proxy")
	flag.Parse()

	sp, err := admin.NewBuilder("sawdust", "http://localhost:8800/").
		Viewport(1024).
		Snapshot("low", 0.45, 3600).
		Object("login", "#loginform").Subpage("Log in").
		Object("banner", "#banner").Remove().
		Object("forums", "#forums").PreRenderedSubpage("Forums", "low").Cacheable(3600).
		Done().
		Action(1, `do=showpic&id=(\d+)`, "http://localhost:8800/site.php?do=showpic&id=$1", "#pic", 300).
		Spec()
	if err != nil {
		return err
	}

	code, err := gen.GenerateProxyMain(sp, gen.Options{Timestamp: time.Now()})
	if err != nil {
		return err
	}

	fmt.Printf("generated %d bytes of proxy shell code; head:\n\n", len(code))
	lines := strings.SplitN(string(code), "\n", 16)
	for i := 0; i < len(lines)-1; i++ {
		fmt.Println("  " + lines[i])
	}
	fmt.Println("  ...")

	if !*build {
		fmt.Println("\n(re-run with -build to compile it)")
		return nil
	}

	root, err := moduleRoot()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp(root, "generated_proxy_")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), code, 0o644); err != nil {
		return err
	}
	binPath := filepath.Join(dir, "proxy-bin")
	cmd := exec.Command("go", "build", "-o", binPath, "./"+filepath.Base(dir))
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("compiling generated proxy: %v\n%s", err, out)
	}
	info, err := os.Stat(binPath)
	if err != nil {
		return err
	}
	fmt.Printf("\ncompiled generated proxy: %s (%d bytes)\n", binPath, info.Size())
	return nil
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}
