// Warm restart: the durable render store surviving a proxy restart.
//
// It starts the synthetic forum origin, boots a framework with
// -store-dir persistence, serves the mobile entry page once (a full
// adaptation + snapshot render), then closes the framework and boots a
// second one over the same store directory. The second generation
// serves the same page from durable artifacts alone: zero adaptations,
// zero snapshot renders.
//
// Run: go run ./examples/warm-restart
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"msite/internal/admin"
	"msite/internal/core"
	"msite/internal/origin"
	"msite/internal/proxy"
	"msite/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "warm-restart:", err)
		os.Exit(1)
	}
}

func run() error {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	defer originSrv.Close()

	sp, err := admin.NewBuilder("warm-restart", originSrv.URL+"/").
		Viewport(1024).
		Snapshot("low", 0.45, 3600).
		Object("login", "#loginform").Subpage("Log in").
		Done().Spec()
	if err != nil {
		return err
	}

	root, err := os.MkdirTemp("", "msite-warm-restart-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(root) }()
	storeDir := filepath.Join(root, "store")

	// Generation 1: cold. The visit runs the adaptation pipeline and
	// renders the snapshot; the results persist into the store.
	cold, stats, err := visit(sp, root, storeDir)
	if err != nil {
		return err
	}
	fmt.Printf("cold start: entry served in %v (%d adaptation, %d snapshot render)\n",
		cold.Round(time.Millisecond), stats.Adaptations, stats.SnapshotRenders)

	// Generation 2: warm. A fresh framework over the same store
	// directory rehydrates and serves without re-running anything.
	warm, stats2, err := visit(sp, root, storeDir)
	if err != nil {
		return err
	}
	fmt.Printf("warm restart: entry served in %v (%d adaptations, %d snapshot renders)\n",
		warm.Round(time.Millisecond), stats2.Adaptations, stats2.SnapshotRenders)

	if stats2.SnapshotRenders != 0 || stats2.Adaptations != 0 {
		return fmt.Errorf("warm restart re-did work: %+v", stats2)
	}
	fmt.Println("warm restart served entirely from the durable store ✔")
	return nil
}

// visit boots a framework over storeDir, fetches the entry page once,
// and tears the framework down (draining persists into the store).
func visit(sp *spec.Spec, root, storeDir string) (time.Duration, proxy.Stats, error) {
	sessions, err := os.MkdirTemp(root, "sessions-*")
	if err != nil {
		return 0, proxy.Stats{}, err
	}
	fw, err := core.New(sp, core.Config{
		SessionRoot: sessions,
		StoreDir:    storeDir,
	})
	if err != nil {
		return 0, proxy.Stats{}, err
	}
	defer fw.Close()
	proxySrv := httptest.NewServer(fw.Handler())
	defer proxySrv.Close()

	jar, err := cookiejar.New(nil)
	if err != nil {
		return 0, proxy.Stats{}, err
	}
	client := &http.Client{Jar: jar, Timeout: time.Minute}
	start := time.Now()
	resp, err := client.Get(proxySrv.URL + "/")
	if err != nil {
		return 0, proxy.Stats{}, err
	}
	defer func() { _ = resp.Body.Close() }()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, proxy.Stats{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, proxy.Stats{}, fmt.Errorf("entry page status %d", resp.StatusCode)
	}
	elapsed := time.Since(start)
	return elapsed, fw.ProxyStats(), nil
}
