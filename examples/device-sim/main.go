// Device-sim: the Table 1 wall-clock model, expanded.
//
// The paper compares a handful of device/link pairs; this example runs
// the full matrix — every device class against every link class — for
// both the direct page load and the cached-snapshot mobile entry page,
// making the crossover structure behind Table 1 visible.
//
// Run: go run ./examples/device-sim
package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"msite/internal/attr"
	"msite/internal/device"
	"msite/internal/experiments"
	"msite/internal/fetch"
	"msite/internal/netsim"
	"msite/internal/origin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "device-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	forum := origin.NewForum(origin.DefaultForumConfig())
	srv := httptest.NewServer(forum.Handler())
	defer srv.Close()

	load, err := fetch.New(nil).GetWithResources(srv.URL + "/")
	if err != nil {
		return err
	}
	c := attr.ComplexityOf(load.Page.Doc(), load.TotalBytes, load.Requests)
	direct := device.PageComplexity{
		Bytes: c.Bytes, Requests: c.Requests, Elements: c.Elements,
		Scripts: c.Scripts, Images: c.Images, StyleRules: c.StyleRules,
	}
	// The cached snapshot entry page: one scaled low-fidelity image plus
	// a small overlay document.
	snapshot := device.PageComplexity{
		Bytes: 32_000, Requests: 2, Elements: 12, Images: 1,
	}

	fmt.Printf("origin entry page: %d bytes over %d requests, %d elements, %d scripts\n\n",
		direct.Bytes, direct.Requests, direct.Elements, direct.Scripts)

	links := []netsim.Link{netsim.ThreeG, netsim.WiFi, netsim.Broadband}

	fmt.Println("== direct page load (wall-clock, simulated) ==")
	printMatrix(direct, links)

	fmt.Println("\n== cached snapshot entry page ==")
	printMatrix(snapshot, links)

	fmt.Println("\n== pre-render speedup per device on 3G ==")
	for _, p := range device.Profiles() {
		if !p.Mobile {
			continue
		}
		directT := wall(p, netsim.ThreeG, direct)
		snapT := wall(p, netsim.ThreeG, snapshot)
		fmt.Printf("%-18s %8s → %8s  (%.1fx)\n",
			p.Name, round(directT), round(snapT), float64(directT)/float64(snapT))
	}

	// Paper-faithful Table 1 for reference.
	rows, err := experiments.Table1(srv.URL + "/")
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(experiments.FormatTable1(rows))
	return nil
}

func printMatrix(c device.PageComplexity, links []netsim.Link) {
	fmt.Printf("%-18s", "device \\ link")
	for _, l := range links {
		fmt.Printf("%12s", l.Name)
	}
	fmt.Println()
	for _, p := range device.Profiles() {
		fmt.Printf("%-18s", p.Name)
		for _, l := range links {
			fmt.Printf("%12s", round(wall(p, l, c)))
		}
		fmt.Println()
	}
}

func wall(p device.Profile, l netsim.Link, c device.PageComplexity) time.Duration {
	return l.TransferTime(c.Bytes, c.Requests) + p.ClientCPUTime(c)
}

func round(d time.Duration) string {
	return d.Round(100 * time.Millisecond).String()
}
