// Quickstart: the minimal end-to-end m.Site flow.
//
// It starts the synthetic forum origin, builds a two-object adaptation
// spec with the fluent admin builder (the headless visual tool), serves
// the adaptation proxy, and fetches the mobile entry page and a
// generated subpage through it.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"strings"

	"msite/internal/admin"
	"msite/internal/core"
	"msite/internal/origin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. An origin site to mobilize: the vBulletin-analog forum.
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	defer originSrv.Close()
	fmt.Printf("origin:  %s (%d-byte entry page)\n", originSrv.URL, forum.EntryPageBytes())

	// 2. The administrator selects objects and assigns attributes —
	//    here: a cached snapshot entry page, the login form split into
	//    its own subpage, and the 728px leaderboard replaced with a
	//    mobile banner.
	sp, err := admin.NewBuilder("quickstart", originSrv.URL+"/").
		Viewport(1024).
		Snapshot("low", 0.45, 3600).
		Object("login", "#loginform").Subpage("Log in").
		Object("banner", "#banner").ReplaceWith(`<img src="/ads/mobile.gif" width="300" height="50" alt="ad">`).
		Done().Spec()
	if err != nil {
		return err
	}

	// 3. Wire the framework and serve the proxy.
	sessionRoot, err := os.MkdirTemp("", "msite-quickstart-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(sessionRoot) }()
	fw, err := core.New(sp, core.Config{SessionRoot: sessionRoot})
	if err != nil {
		return err
	}
	proxySrv := httptest.NewServer(fw.Handler())
	defer proxySrv.Close()
	fmt.Printf("proxy:   %s\n\n", proxySrv.URL)

	// 4. A mobile client visits: snapshot entry page with an image map.
	jar, err := cookiejar.New(nil)
	if err != nil {
		return err
	}
	client := &http.Client{Jar: jar}
	entry, err := get(client, proxySrv.URL+"/")
	if err != nil {
		return err
	}
	fmt.Printf("entry page: %d bytes, image map present: %v\n",
		len(entry), strings.Contains(entry, "usemap"))

	// 5. Clicking the login region loads the generated subpage.
	sub, err := get(client, proxySrv.URL+"/subpage/login")
	if err != nil {
		return err
	}
	fmt.Printf("login subpage: %d bytes, form present: %v\n",
		len(sub), strings.Contains(sub, "loginform"))

	stats := fw.ProxyStats()
	fmt.Printf("\nproxy stats: %d requests, %d adaptation passes, %d snapshot renders\n",
		stats.Requests, stats.Adaptations, stats.SnapshotRenders)
	return nil
}

func get(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}
