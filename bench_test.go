// Benchmark harness regenerating the paper's evaluation (run with
// go test -bench=. -benchmem). One benchmark per table/figure plus the
// ablations DESIGN.md calls out:
//
//	BenchmarkTable1*      — Table 1 rows (simulated wall-clock + the
//	                        measured snapshot-generation pipeline)
//	BenchmarkFigure7*     — the two Figure 7 cost paths and the sweep
//	BenchmarkFidelity*    — §3.3 image-fidelity ladder
//	BenchmarkPreRenderSpeedup, BenchmarkPageWeight — in-text results
//	BenchmarkFigure5*, BenchmarkFigure6* — the qualitative adaptations
//	BenchmarkAblation*    — render cache, filter-only fast path,
//	                        browser pooling
package msite_test

import (
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"testing"
	"time"

	"msite/internal/attr"
	"msite/internal/browser"
	"msite/internal/cache"
	"msite/internal/css"
	"msite/internal/experiments"
	"msite/internal/fetch"
	"msite/internal/filter"
	"msite/internal/html"
	"msite/internal/imaging"
	"msite/internal/jq"
	"msite/internal/layout"
	"msite/internal/origin"
	"msite/internal/proxy"
	"msite/internal/raster"
	"msite/internal/session"
	"msite/internal/spec"
	"msite/internal/workload"
)

func forumOrigin(b *testing.B) (*origin.Forum, string) {
	b.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	srv := httptest.NewServer(forum.Handler())
	b.Cleanup(srv.Close)
	return forum, srv.URL
}

func entrySource(b *testing.B, url string) string {
	b.Helper()
	page, err := fetch.New(nil).Get(url + "/")
	if err != nil {
		b.Fatal(err)
	}
	return string(page.Body)
}

// BenchmarkTable1 regenerates the whole table each iteration and reports
// every row as a custom metric (seconds), so the bench output IS the
// table.
func BenchmarkTable1(b *testing.B) {
	_, url := forumOrigin(b)
	var rows []experiments.Table1Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1(url + "/")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.Measured.Seconds(), metricName(r.Label))
	}
}

func metricName(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ':
			out = append(out, '_')
		}
	}
	return string(out) + "_s"
}

// BenchmarkTable1SnapshotGeneration measures the table's one directly
// measured row: the server-side snapshot pipeline (parse → cascade →
// layout → raster → scale → encode) on the fetched entry page.
func BenchmarkTable1SnapshotGeneration(b *testing.B) {
	_, url := forumOrigin(b)
	src := entrySource(b, url)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := html.Tidy(src)
		styler := css.StylerForDocument(doc)
		res := layout.Layout(doc, styler, layout.Viewport{Width: 1024})
		img := raster.Paint(res, raster.Options{})
		if _, err := imaging.Encode(imaging.ScaleFactor(img, 0.45), imaging.FidelityLow); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7BrowserPath is the expensive Figure 7 path: one full
// browser-instance request (launch, full render, encode, close) — the
// per-request cost of the Highlight-style architecture the paper
// improves on.
func BenchmarkFigure7BrowserPath(b *testing.B) {
	_, url := forumOrigin(b)
	src := entrySource(b, url)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := browser.Launch(1024)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inst.LoadAndEncode(src, imaging.FidelityLow); err != nil {
			b.Fatal(err)
		}
		inst.Close()
	}
}

// BenchmarkFigure7LightweightPath is the cheap path: the source-level
// filter phase only, "avoiding a DOM parse altogether" (§3.2).
func BenchmarkFigure7LightweightPath(b *testing.B) {
	_, url := forumOrigin(b)
	src := entrySource(b, url)
	filters := []spec.Filter{
		{Type: "doctype", Params: map[string]string{"value": "html"}},
		{Type: "title", Params: map[string]string{"value": "m.Site"}},
		{Type: "strip-scripts"},
		{Type: "rewrite-images", Params: map[string]string{"prefix": "/lowfi"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := filter.Apply(src, filters); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Sweep runs a scaled-down sweep (250 ms windows vs the
// paper's 1-minute) and reports throughput at the endpoints plus the
// ratio — the paper's 224 → 29,038 req/min, two orders of magnitude.
func BenchmarkFigure7Sweep(b *testing.B) {
	_, url := forumOrigin(b)
	var points []experiments.Fig7Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Figure7(experiments.Fig7Config{
			OriginURL:   url + "/",
			Window:      250 * time.Millisecond,
			Percentages: []float64{0, 10, 100},
			Reps:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(points) == 3 {
		b.ReportMetric(points[0].ReqPerMin, "lightweight_req_per_min")
		b.ReportMetric(points[2].ReqPerMin, "browser_req_per_min")
		if points[2].ReqPerMin > 0 {
			b.ReportMetric(points[0].ReqPerMin/points[2].ReqPerMin, "throughput_ratio")
		}
	}
}

// benchmarkFidelity encodes the full-page snapshot at one ladder level.
func benchmarkFidelity(b *testing.B, f imaging.Fidelity) {
	_, url := forumOrigin(b)
	src := entrySource(b, url)
	doc := html.Tidy(src)
	styler := css.StylerForDocument(doc)
	res := layout.Layout(doc, styler, layout.Viewport{Width: 1024})
	img := raster.Paint(res, raster.Options{Antialias: true})
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := imaging.Encode(img, f)
		if err != nil {
			b.Fatal(err)
		}
		size = len(data)
	}
	b.StopTimer()
	b.ReportMetric(float64(size), "bytes")
}

func BenchmarkFidelityHigh(b *testing.B)   { benchmarkFidelity(b, imaging.FidelityHigh) }
func BenchmarkFidelityMedium(b *testing.B) { benchmarkFidelity(b, imaging.FidelityMedium) }
func BenchmarkFidelityLow(b *testing.B)    { benchmarkFidelity(b, imaging.FidelityLow) }
func BenchmarkFidelityThumb(b *testing.B)  { benchmarkFidelity(b, imaging.FidelityThumb) }

// BenchmarkPreRenderSpeedup reports the §3.3 "factor of 5" claim:
// direct BlackBerry load vs cached snapshot load.
func BenchmarkPreRenderSpeedup(b *testing.B) {
	_, url := forumOrigin(b)
	var res *experiments.SpeedupResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.PreRenderSpeedup(url + "/")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.Factor, "speedup_factor")
}

// BenchmarkPageWeight reports the §4.2 entry-page weight (paper:
// 224,477 bytes).
func BenchmarkPageWeight(b *testing.B) {
	_, url := forumOrigin(b)
	var w *experiments.PageWeight
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		w, err = experiments.MeasurePageWeight(url + "/")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(w.TotalBytes), "page_bytes")
	b.ReportMetric(float64(w.Requests), "requests")
}

// BenchmarkFigure5LoginAdaptation measures the Fig. 5 attribute phase:
// locating objects, splitting the login subpage, pulling dependencies,
// copying the logo.
func BenchmarkFigure5LoginAdaptation(b *testing.B) {
	_, url := forumOrigin(b)
	src := entrySource(b, url)
	sp := experiments.SpecForForum(url)
	applier := &attr.Applier{ViewportWidth: 1024}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := applier.Apply(sp, html.Tidy(src))
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := res.FindSubpage("login"); !ok {
			b.Fatal("login subpage missing")
		}
	}
}

// BenchmarkFigure6FragmentExtraction measures the §4.5 proxy action:
// fetch the classified ad page and extract #postingbody with server-side
// jQuery.
func BenchmarkFigure6FragmentExtraction(b *testing.B) {
	classifieds := origin.NewClassifieds(origin.DefaultClassifiedsConfig())
	srv := httptest.NewServer(classifieds.Handler())
	b.Cleanup(srv.Close)

	page, err := fetch.New(nil).Get(srv.URL + "/post/t0001.html")
	if err != nil {
		b.Fatal(err)
	}
	src := string(page.Body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := html.Tidy(src)
		sel := jq.Select(doc, "#postingbody")
		if sel.Len() != 1 || sel.OuterHtml() == "" {
			b.Fatal("no fragment")
		}
	}
}

// --- ablations ---

// BenchmarkAblationCacheMiss is one full snapshot render (the cache-miss
// cost each 60-minute window pays once).
func BenchmarkAblationCacheMiss(b *testing.B) {
	_, url := forumOrigin(b)
	src := entrySource(b, url)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := html.Tidy(src)
		styler := css.StylerForDocument(doc)
		res := layout.Layout(doc, styler, layout.Viewport{Width: 1024})
		img := raster.Paint(res, raster.Options{})
		if _, err := imaging.Encode(imaging.ScaleFactor(img, 0.45), imaging.FidelityLow); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCacheHit is the amortized cost every other client in
// the window pays.
func BenchmarkAblationCacheHit(b *testing.B) {
	_, url := forumOrigin(b)
	src := entrySource(b, url)
	c := cache.New()
	fill := func() (cache.Entry, error) {
		doc := html.Tidy(src)
		styler := css.StylerForDocument(doc)
		res := layout.Layout(doc, styler, layout.Viewport{Width: 1024})
		img := raster.Paint(res, raster.Options{})
		data, err := imaging.Encode(imaging.ScaleFactor(img, 0.45), imaging.FidelityLow)
		return cache.Entry{Data: data}, err
	}
	if _, err := c.GetOrFill("snap", time.Hour, fill); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetOrFill("snap", time.Hour, fill); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTidyDOMPath is the filter-phase-plus-DOM-parse cost,
// quantifying what "avoiding a DOM parse altogether" saves relative to
// BenchmarkFigure7LightweightPath.
func BenchmarkAblationTidyDOMPath(b *testing.B) {
	_, url := forumOrigin(b)
	src := entrySource(b, url)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := html.Tidy(src)
		if doc.Body() == nil {
			b.Fatal("no body")
		}
	}
}

// BenchmarkAblationBrowserPool quantifies what instance pooling would
// buy (the paper declines it for isolation reasons, §4.6): render via a
// reused instance instead of launching per request.
func BenchmarkAblationBrowserPool(b *testing.B) {
	_, url := forumOrigin(b)
	src := entrySource(b, url)
	pool := browser.NewPool(1024, 1)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := pool.Acquire()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inst.LoadAndEncode(src, imaging.FidelityLow); err != nil {
			b.Fatal(err)
		}
		pool.Release(inst)
	}
}

// latencyForumOrigin serves the forum behind an injected per-request
// delay, so the serial-vs-parallel fetch ablations measure a WAN-shaped
// origin rather than loopback.
func latencyForumOrigin(b *testing.B, d time.Duration) string {
	b.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	srv := httptest.NewServer(experiments.LatencyHandler(forum.Handler(), d))
	b.Cleanup(srv.Close)
	return srv.URL
}

// benchAblationFetch times one batch download of the entry page's
// subresources at the given worker count.
func benchAblationFetch(b *testing.B, workers int) {
	url := latencyForumOrigin(b, 10*time.Millisecond)
	f := fetch.New(nil)
	page, err := f.Get(url + "/")
	if err != nil {
		b.Fatal(err)
	}
	refs := fetch.Subresources(page.Doc(), page.URL)
	if len(refs) == 0 {
		b.Fatal("entry page has no subresources")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range f.FetchAll(refs, workers) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

func BenchmarkAblationFetchSerial(b *testing.B)   { benchAblationFetch(b, 1) }
func BenchmarkAblationFetchParallel(b *testing.B) { benchAblationFetch(b, fetch.DefaultWorkers) }

// benchAblationPaint times one full-page raster at the given band count
// (1 = serial baseline, 0 = GOMAXPROCS bands).
func benchAblationPaint(b *testing.B, workers int) {
	_, url := forumOrigin(b)
	src := entrySource(b, url)
	doc := html.Tidy(src)
	styler := css.StylerForDocument(doc)
	res := layout.Layout(doc, styler, layout.Viewport{Width: 1024})
	raster.Paint(res, raster.Options{Workers: workers}) // warm-up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raster.Paint(res, raster.Options{Workers: workers})
	}
}

func BenchmarkAblationPaintSerial(b *testing.B)   { benchAblationPaint(b, 1) }
func BenchmarkAblationPaintParallel(b *testing.B) { benchAblationPaint(b, 0) }

// benchAblationColdAdapt times a fresh client's first request through
// the whole proxy pipeline against a latency-injected origin — each
// iteration is a true cold start (fresh session root, fresh cache).
func benchAblationColdAdapt(b *testing.B, pcfg proxy.Config) {
	url := latencyForumOrigin(b, 10*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sessions, err := session.NewManager(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		cfg := pcfg
		cfg.Spec = experiments.SpecForForum(url)
		cfg.Sessions = sessions
		cfg.Cache = cache.New()
		p, err := proxy.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(p)
		jar, err := cookiejar.New(nil)
		if err != nil {
			b.Fatal(err)
		}
		client := &http.Client{Jar: jar}
		b.StartTimer()
		resp, err := client.Get(srv.URL + "/")
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		b.StopTimer()
		srv.Close()
		b.StartTimer()
	}
}

func BenchmarkAblationColdAdaptSerial(b *testing.B) {
	benchAblationColdAdapt(b, proxy.Config{FetchWorkers: 1, RasterWorkers: 1, WriteWorkers: 1})
}

func BenchmarkAblationColdAdaptParallel(b *testing.B) {
	benchAblationColdAdapt(b, proxy.Config{})
}

// BenchmarkWorkloadMixed10 is the Figure 7 mid-curve point: 10% browser
// renders, matching the knee region of the paper's plot.
func BenchmarkWorkloadMixed10(b *testing.B) {
	_, url := forumOrigin(b)
	var res workload.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = workload.Run(workload.Config{
			OriginURL:      url + "/",
			BrowserPercent: 10,
			Window:         200 * time.Millisecond,
			Concurrency:    2,
			ViewportWidth:  1024,
			Seed:           int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.Throughput(), "req_per_min")
}

// BenchmarkProxyEntryWarm measures the full proxy path for a returning
// user: session lookup, cached adaptation, cached snapshot, overlay
// generation — the steady-state per-request cost of the m.Site
// deployment.
func BenchmarkProxyEntryWarm(b *testing.B) {
	_, url := forumOrigin(b)
	sessions, err := session.NewManager(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	p, err := proxy.New(proxy.Config{
		Spec:     experiments.SpecForForum(url),
		Sessions: sessions,
		Cache:    cache.New(),
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(p)
	b.Cleanup(srv.Close)
	jar, err := cookiejar.New(nil)
	if err != nil {
		b.Fatal(err)
	}
	client := &http.Client{Jar: jar}
	warm := func() {
		resp, err := client.Get(srv.URL + "/")
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	warm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm()
	}
}

// BenchmarkProxyNewUser measures the first-visit cost: fresh session,
// full adaptation pass, shared-cache snapshot hit.
func BenchmarkProxyNewUser(b *testing.B) {
	_, url := forumOrigin(b)
	sessions, err := session.NewManager(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	p, err := proxy.New(proxy.Config{
		Spec:     experiments.SpecForForum(url),
		Sessions: sessions,
		Cache:    cache.New(),
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(p)
	b.Cleanup(srv.Close)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jar, err := cookiejar.New(nil)
		if err != nil {
			b.Fatal(err)
		}
		client := &http.Client{Jar: jar}
		resp, err := client.Get(srv.URL + "/")
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
