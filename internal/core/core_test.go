package core

import (
	"io"
	"net"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"msite/internal/gen"
	"msite/internal/origin"
	"msite/internal/spec"
)

func testSpec(originURL string) *spec.Spec {
	return &spec.Spec{
		Name:   "forum",
		Origin: originURL + "/",
		Snapshot: spec.SnapshotSpec{
			Enabled: true, Fidelity: "low", Scale: 0.5,
			CacheTTLSeconds: 60, Shared: true,
		},
		Objects: []spec.Object{
			{Name: "login", Selector: "#loginform", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"title": "Log in"}},
			}},
		},
	}
}

func newFramework(t *testing.T) (*Framework, *httptest.Server) {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)
	fw, err := New(testSpec(originSrv.URL), Config{
		SessionRoot:  t.TempDir(),
		FetchTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw, originSrv
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{SessionRoot: t.TempDir()}); err == nil {
		t.Fatal("nil spec accepted")
	}
	if _, err := New(&spec.Spec{}, Config{SessionRoot: t.TempDir()}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := New(&spec.Spec{Name: "x", Origin: "http://o/"}, Config{}); err == nil {
		t.Fatal("missing session root accepted")
	}
}

func TestEndToEnd(t *testing.T) {
	fw, _ := newFramework(t)
	srv := httptest.NewServer(fw.Handler())
	defer srv.Close()

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar}
	resp, err := client.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "usemap") {
		t.Fatalf("entry page: %d", resp.StatusCode)
	}

	resp2, err := client.Get(srv.URL + "/subpage/login")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	_ = resp2.Body.Close()
	if !strings.Contains(string(body2), "loginform") {
		t.Fatal("subpage failed")
	}

	stats := fw.ProxyStats()
	if stats.Adaptations != 1 || stats.Requests < 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if fw.Sessions().Len() != 1 {
		t.Fatalf("sessions = %d", fw.Sessions().Len())
	}
	if fw.Spec().Name != "forum" {
		t.Fatal("spec accessor wrong")
	}
	_ = fw.CacheStats()
	_ = fw.Cache()
}

func TestNewFromJSON(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	defer originSrv.Close()

	data, err := testSpec(originSrv.URL).JSON()
	if err != nil {
		t.Fatal(err)
	}
	fw, err := NewFromJSON(data, Config{SessionRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if fw.Spec().Origin != originSrv.URL+"/" {
		t.Fatal("origin lost")
	}
	if _, err := NewFromJSON([]byte("{bad"), Config{SessionRoot: t.TempDir()}); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestGenerateCode(t *testing.T) {
	fw, _ := newFramework(t)
	code, err := fw.GenerateCode(gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), "core.NewFromJSON") {
		t.Fatal("generated code wrong")
	}
}

func TestServeOnListener(t *testing.T) {
	fw, _ := newFramework(t)
	srv := httptest.NewUnstartedServer(fw.Handler())
	srv.Start()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestNewMultiEndToEnd(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	defer originSrv.Close()

	specA := testSpec(originSrv.URL)
	specA.Name = "forum"
	specB := &spec.Spec{Name: "threads", Origin: originSrv.URL + "/showthread.php?t=2001"}

	mf, err := NewMulti([]*spec.Spec{specA, specB}, Config{SessionRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Sites()) != 2 {
		t.Fatalf("sites = %v", mf.Sites())
	}
	srv := httptest.NewServer(mf.Handler())
	defer srv.Close()

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar}
	resp, err := client.Get(srv.URL + "/p/forum/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "/p/forum/") {
		t.Fatalf("multi entry: %d", resp.StatusCode)
	}
	if mf.Sessions().Len() != 1 {
		t.Fatalf("sessions = %d", mf.Sessions().Len())
	}
}

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(nil, Config{SessionRoot: t.TempDir()}); err == nil {
		t.Fatal("empty specs accepted")
	}
	if _, err := NewMulti([]*spec.Spec{{Name: "x", Origin: "http://o/"}}, Config{}); err == nil {
		t.Fatal("missing session root accepted")
	}
}

func TestListenAndServeBindFailure(t *testing.T) {
	fw, _ := newFramework(t)
	// Occupy a port, then ask the framework to bind it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	if err := fw.ListenAndServe(l.Addr().String()); err == nil {
		t.Fatal("expected bind error")
	} else if !strings.Contains(err.Error(), "core: serving") {
		t.Fatalf("err = %v", err)
	}

	mf, err := NewMulti([]*spec.Spec{{Name: "x", Origin: "http://o/"}}, Config{SessionRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := mf.ListenAndServe(l.Addr().String()); err == nil {
		t.Fatal("expected multi bind error")
	}
}

func TestDebugParityEndpoint(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	defer originSrv.Close()

	fw, err := New(testSpec(originSrv.URL), Config{
		SessionRoot: t.TempDir(),
		RepairRules: "all",
		ParityCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	srv := httptest.NewServer(fw.HandlerWithMetrics())
	defer srv.Close()

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar}

	// Before any build the endpoint serves an empty object.
	resp, err := client.Get(srv.URL + "/debug/parity")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "{}" {
		t.Fatalf("pre-build /debug/parity: %d %q", resp.StatusCode, body)
	}

	if resp, err = client.Get(srv.URL + "/"); err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()

	resp, err = client.Get(srv.URL + "/debug/parity")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"score"`) {
		t.Fatalf("/debug/parity after build: %d %q", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"forum"`) {
		t.Fatalf("report not keyed by site: %q", body)
	}
}
