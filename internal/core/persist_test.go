package core

import (
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"msite/internal/origin"
)

// newPersistentFramework boots a Framework with the durable store
// enabled over storeDir.
func newPersistentFramework(t *testing.T, originURL, storeDir string) *Framework {
	t.Helper()
	fw, err := New(testSpec(originURL), Config{
		SessionRoot:  t.TempDir(),
		FetchTimeout: 10 * time.Second,
		StoreDir:     storeDir,
		StoreFsync:   "always",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fw.Close)
	return fw
}

func getPage(t *testing.T, base, path string) (string, int) {
	t.Helper()
	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	resp, err := client.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	return string(body), resp.StatusCode
}

// TestFrameworkWarmRestart is the end-to-end warm-restart proof at the
// facade level: a Framework closed and rebuilt over the same store
// directory serves the entry page and snapshot without a single new
// adaptation or snapshot render, and the durable store records the hits.
func TestFrameworkWarmRestart(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	defer originSrv.Close()
	storeDir := t.TempDir()

	// Cold generation: adapt once, rendering the snapshot.
	fw := newPersistentFramework(t, originSrv.URL, storeDir)
	srv := httptest.NewServer(fw.Handler())
	if body, code := getPage(t, srv.URL, "/"); code != 200 {
		t.Fatalf("cold entry: %d: %s", code, body)
	}
	cold := fw.ProxyStats()
	if cold.Adaptations != 1 || cold.SnapshotRenders != 1 {
		t.Fatalf("cold stats = %+v; want 1 adaptation, 1 render", cold)
	}
	if fw.Store() == nil {
		t.Fatal("Store() nil despite StoreDir")
	}
	srv.Close()
	fw.Close()
	fw.Close() // idempotent

	// Warm generation over the same directory.
	fw2 := newPersistentFramework(t, originSrv.URL, storeDir)
	srv2 := httptest.NewServer(fw2.Handler())
	defer srv2.Close()
	body, code := getPage(t, srv2.URL, "/")
	if code != 200 {
		t.Fatalf("warm entry: %d: %s", code, body)
	}
	if !strings.Contains(body, "/asset/snapshot") {
		t.Fatalf("warm entry lost the snapshot overlay: %s", body)
	}
	warm := fw2.ProxyStats()
	if warm.SnapshotRenders != 0 {
		t.Fatalf("warm restart re-rendered the snapshot %d times", warm.SnapshotRenders)
	}
	if warm.Adaptations != 0 {
		t.Fatalf("warm restart re-ran the pipeline %d times", warm.Adaptations)
	}
	if hits := fw2.Store().Stats().Hits; hits == 0 {
		t.Fatal("warm restart served without durable store hits")
	}
	c, ok := fw2.Obs().Snapshot().Counter("msite_store_hits_total")
	if !ok || c.Value == 0 {
		t.Fatalf("msite_store_hits_total = %v (ok=%v); want > 0", c, ok)
	}

	// Subpages come from the rehydrated bundle too.
	if sub, code := getPage(t, srv2.URL, "/subpage/login"); code != 200 || !strings.Contains(sub, "loginform") {
		t.Fatalf("warm subpage: %d: %s", code, sub)
	}
}

// TestFrameworkStoreFsyncValidation: a bad -store-fsync value fails
// construction instead of silently defaulting.
func TestFrameworkStoreFsyncValidation(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	defer originSrv.Close()
	_, err := New(testSpec(originSrv.URL), Config{
		SessionRoot: t.TempDir(),
		StoreDir:    t.TempDir(),
		StoreFsync:  "sometimes",
	})
	if err == nil {
		t.Fatal("invalid StoreFsync accepted")
	}
}
