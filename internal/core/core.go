// Package core is the public facade of the m.Site framework: one import
// wires the adaptation spec, session manager, shared render cache, and
// multi-session proxy into a serving http.Handler. Generated proxy code
// (see internal/gen), the cmd tools, and the examples all build on this
// package.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"time"

	"msite/internal/admission"
	"msite/internal/cache"
	"msite/internal/cluster"
	"msite/internal/fetch"
	"msite/internal/gen"
	"msite/internal/obs"
	"msite/internal/prefetch"
	"msite/internal/proxy"
	"msite/internal/quality"
	"msite/internal/session"
	"msite/internal/spec"
	"msite/internal/store"
)

// Config wires a Framework.
type Config struct {
	// SessionRoot is the directory per-user session trees live under
	// (required).
	SessionRoot string
	// ViewportWidth overrides the spec's server-side render width.
	ViewportWidth int
	// SessionTTL bounds idle sessions (default session.DefaultTTL).
	SessionTTL time.Duration
	// FetchTimeout bounds each origin request.
	FetchTimeout time.Duration
	// Obs is the metric/trace registry shared by the proxy, cache,
	// fetcher, and session manager. Nil creates one (exposed via Obs()).
	Obs *obs.Registry
	// Logger enables structured per-request logging in the proxy; nil
	// disables it.
	Logger *slog.Logger
	// FetchWorkers bounds concurrent subresource downloads per
	// adaptation (the -fetch-workers knob). 0 uses the fetcher default;
	// 1 forces serial fetching.
	FetchWorkers int
	// RasterWorkers is the band parallelism of snapshot rasterization
	// (the -raster-workers knob). 0 uses GOMAXPROCS; 1 is serial.
	RasterWorkers int
	// CacheMaxBytes bounds the shared render cache; least-recently-used
	// entries are evicted past it (the -cache-max-bytes knob). 0 means
	// unbounded (TTL-only).
	CacheMaxBytes int64
	// CacheSweepInterval starts the cache's background expiry sweeper
	// on that period; stop it with Close. 0 disables the sweeper
	// (expired entries are then only dropped on access).
	CacheSweepInterval time.Duration
	// FetchRetries is how many times an idempotent origin GET is retried
	// after a transient failure, with exponential backoff (the
	// -fetch-retries knob). 0 disables retries.
	FetchRetries int
	// BreakerThreshold is the consecutive-failure count that trips an
	// origin's circuit breaker (the -breaker-threshold knob). 0 uses
	// fetch.DefaultBreakerThreshold; negative disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects requests
	// before probing the origin again (the -breaker-cooldown knob).
	// 0 uses fetch.DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// ServeStale keeps serving previously adapted content (and expired
	// shared snapshots, revalidated in the background) when the origin
	// is unreachable (the -serve-stale knob).
	ServeStale bool
	// StaleFor bounds how long past expiry a shared snapshot stays
	// servable under ServeStale (the -stale-for knob). 0 uses
	// proxy.DefaultStaleFor.
	StaleFor time.Duration
	// MaxConcurrentAdaptations bounds how many adaptation pipelines run
	// at once (the -max-concurrent-adaptations knob); excess requests
	// wait in a bounded, deadline-aware queue and are shed with 503 +
	// Retry-After past it. 0 disables admission control.
	MaxConcurrentAdaptations int
	// AdmissionQueue is the wait-queue length behind the concurrency
	// limit (the -admission-queue knob). 0 defaults to 4× the
	// concurrency; negative means no queue (shed immediately when all
	// slots are busy).
	AdmissionQueue int
	// RateLimit is the per-client request budget in requests/second (the
	// -rate-limit knob); clients past their token bucket get 429 +
	// Retry-After. 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket depth behind RateLimit. 0 defaults
	// to max(5, 2×RateLimit).
	RateBurst float64
	// MaxSessions caps live sessions (the -max-sessions knob); past it,
	// first contacts are shed with 503 + Retry-After instead of
	// allocating session state. 0 means uncapped.
	MaxSessions int
	// StoreDir enables the durable render store (the -store-dir knob): a
	// crash-safe disk tier under the render cache. Adapted bundles,
	// shared snapshots, and subpage artifacts persist there, so a
	// restarted framework serves them without re-running the pipeline.
	// Empty disables persistence.
	StoreDir string
	// StoreMaxBytes bounds the store's live bytes on disk; least
	// recently accessed records are evicted past it (the
	// -store-max-bytes knob). 0 means unbounded.
	StoreMaxBytes int64
	// StoreFsync selects the store's durability policy (the -store-fsync
	// knob): "interval" (default; fsync on a short timer), "always"
	// (fsync every append), or "never" (leave it to the OS).
	StoreFsync string
	// SLOTargetP99 enables the latency objective (the -slo-target-p99
	// knob): at least 99% of proxied requests must complete within it.
	// 0 disables the objective.
	SLOTargetP99 time.Duration
	// SLOAvailability enables the availability objective (the
	// -slo-availability knob): the required non-5xx request fraction,
	// e.g. 0.999. 0 disables the objective.
	SLOAvailability float64
	// SLOWarmHitRatio enables the warm-hit objective: the required
	// render-cache hit fraction. 0 disables the objective.
	SLOWarmHitRatio float64
	// SLOInterval is the SLO evaluation tick (default
	// obs.DefaultSLOInterval).
	SLOInterval time.Duration
	// SLOFastWindow / SLOSlowWindow are the burn-rate windows (defaults
	// obs.DefaultSLOFastWindow / obs.DefaultSLOSlowWindow).
	SLOFastWindow, SLOSlowWindow time.Duration
	// SLOMinEvents gates burn-rate alerts on the fast window's event
	// count (default obs.DefaultSLOMinEvents).
	SLOMinEvents float64
	// IncidentDir enables the flight recorder (the -incident-dir knob):
	// incident bundles are captured there when the watchdog trips.
	// Empty disables it.
	IncidentDir string
	// IncidentMax bounds the on-disk incident ring (the -incident-max
	// knob; default obs.DefaultIncidentMax).
	IncidentMax int
	// IncidentCPUProfile is the capture's CPU-profile length (default
	// obs.DefaultCPUProfile).
	IncidentCPUProfile time.Duration
	// IncidentCooldown suppresses repeat captures for the same reason
	// (default obs.DefaultIncidentCooldown).
	IncidentCooldown time.Duration
	// IncidentInterval is the watchdog tick (default
	// obs.DefaultWatchInterval).
	IncidentInterval time.Duration
	// HealthInterval is the runtime health sampling tick (default
	// obs.DefaultHealthInterval). The sampler runs whenever the SLO
	// engine or the flight recorder is enabled.
	HealthInterval time.Duration
	// Stream enables flush-early entry serving (the -stream knob): the
	// overlay head is flushed before the origin fetch begins and the
	// snapshot renders in the background.
	Stream bool
	// ATFHeight is the streaming entry's above-the-fold boundary in
	// scaled snapshot pixels (the -atf-height knob). 0 uses
	// proxy.DefaultATFHeight.
	ATFHeight int
	// SnapshotProgressive serves streamed snapshots coarse-first with a
	// full-fidelity upgrade (the -snapshot-progressive knob).
	SnapshotProgressive bool
	// MinimalMarkup forces the MAML-style minimal-markup entry mode
	// everywhere (the -minimal-markup knob); individual specs can also
	// opt in via their minimal_markup attribute.
	MinimalMarkup bool
	// Prefetch enables the speculative pre-adaptation crawler (the
	// -prefetch knob): a background loop that walks the origin link
	// graph, ranks sites by live demand plus link proximity, pre-builds
	// their bundles through the admission controller's background lane,
	// and keeps them fresh with conditional (ETag/Last-Modified)
	// revalidation. Enabling it also enables bundle persistence even
	// without a StoreDir (bundles then live in the in-memory tier only).
	Prefetch bool
	// PrefetchTopN caps how many sites the crawler builds or revalidates
	// per cycle (the -prefetch-top-n knob; default 4).
	PrefetchTopN int
	// PrefetchInterval is the nominal gap between crawler cycles,
	// jittered ±20% (the -prefetch-interval knob; default 30s).
	PrefetchInterval time.Duration
	// PrefetchDepth is how many links deep the crawler walks from each
	// entry page when ranking by proximity (the -prefetch-depth knob;
	// default 1).
	PrefetchDepth int
	// RepairRules selects the mobile-repair rules run over every adapted
	// document and subpage after the attribute phase (the -repair-rules
	// knob): a comma-separated list of internal/quality rule names, or
	// "all". Empty disables the repair pass.
	RepairRules string
	// ParityCheck enables the content-parity validator (the
	// -parity-check knob): every build diffs the origin's text/link/form
	// inventory against the adapted closure, reporting the score via
	// metrics, adaptation notes, and /debug/parity.
	ParityCheck bool
	// ParityMinScore fails a build loudly when its parity score drops
	// below this threshold (the -parity-min-score knob; 0 means report
	// only, 1 demands every non-sanctioned item survive). Requires
	// ParityCheck.
	ParityMinScore float64
	// ClusterListen enables cluster mode (the -cluster-listen knob): this
	// node's advertised base URL — its identity on the consistent-hash
	// ring, and the address peers reach its /internal/cluster/ endpoints
	// at. Empty disables clustering. Enabling it also enables bundle
	// persistence (the ring routes by bundle key).
	ClusterListen string
	// ClusterPeers is the full static fleet of advertised base URLs,
	// including this node (the -cluster-peers knob, comma-separated on
	// the command line). Self is added if absent.
	ClusterPeers []string
	// ClusterReplicas is the ring's virtual-node count per peer (the
	// -cluster-replicas knob; 0 uses cluster.DefaultReplicas).
	ClusterReplicas int
	// ClusterToken is the shared bearer token authenticating peer
	// transport requests (the -cluster-token knob). Empty serves
	// unauthenticated — acceptable only on a trusted internal network.
	ClusterToken string
	// ClusterProbeInterval is the peer liveness probe period (0 uses
	// cluster.DefaultProbeInterval).
	ClusterProbeInterval time.Duration
}

// buildCache wires the render cache: a plain in-memory cache, or — when
// StoreDir is set — a tiered cache over the durable store, rehydrated
// so a warm restart serves from disk instead of re-rendering.
func (cfg Config) buildCache(reg *obs.Registry) (cache.Layer, *store.Store, error) {
	l1 := cache.NewWithOptions(cfg.cacheOptions())
	if cfg.StoreDir == "" {
		l1.SetObs(reg)
		return l1, nil, nil
	}
	fsync, err := store.ParseFsync(cfg.StoreFsync)
	if err != nil {
		l1.Close()
		return nil, nil, err
	}
	st, err := store.Open(store.Options{
		Dir:      cfg.StoreDir,
		MaxBytes: cfg.StoreMaxBytes,
		Fsync:    fsync,
	})
	if err != nil {
		l1.Close()
		return nil, nil, err
	}
	st.SetObs(reg)
	tiered := cache.NewTiered(l1, st, cache.TieredOptions{})
	tiered.SetObs(reg)
	tiered.Rehydrate(0)
	return tiered, st, nil
}

// admissionController maps the Config knobs onto an admission
// controller; nil (admit everything) when no knob is set.
func (cfg Config) admissionController() (*admission.Controller, error) {
	if cfg.MaxConcurrentAdaptations <= 0 && cfg.RateLimit <= 0 {
		return nil, nil
	}
	return admission.NewController(admission.Config{
		MaxConcurrent: cfg.MaxConcurrentAdaptations,
		QueueLen:      cfg.AdmissionQueue,
		RatePerSec:    cfg.RateLimit,
		Burst:         cfg.RateBurst,
	})
}

// obsTier is the second observability tier: SLO engine, runtime health
// sampler, and flight recorder, started together and stopped by Close.
type obsTier struct {
	slo      *obs.SLOEngine
	health   *obs.HealthSampler
	recorder *obs.Recorder
}

// sloObjectives maps the SLO knobs onto engine objectives.
func (cfg Config) sloObjectives() []obs.Objective {
	var objectives []obs.Objective
	if cfg.SLOTargetP99 > 0 {
		objectives = append(objectives, obs.AdaptationLatencyObjective(cfg.SLOTargetP99))
	}
	if cfg.SLOAvailability > 0 {
		objectives = append(objectives, obs.AvailabilityObjective(cfg.SLOAvailability))
	}
	if cfg.SLOWarmHitRatio > 0 {
		objectives = append(objectives, obs.WarmHitObjective(cfg.SLOWarmHitRatio))
	}
	return objectives
}

// buildObsTier wires the SLO engine, health sampler, and flight
// recorder from the Config knobs and starts them. Returns nil when no
// knob enables the tier (no objective, no incident dir) — the base
// tier (/metrics, /debug/traces) alone then serves, as before.
func (cfg Config) buildObsTier(reg *obs.Registry) (*obsTier, error) {
	objectives := cfg.sloObjectives()
	if len(objectives) == 0 && cfg.IncidentDir == "" {
		return nil, nil
	}
	tier := &obsTier{health: obs.NewHealthSampler(reg, cfg.HealthInterval)}
	if cfg.IncidentDir != "" {
		rec, err := obs.NewRecorder(reg, obs.RecorderConfig{
			Dir:          cfg.IncidentDir,
			MaxIncidents: cfg.IncidentMax,
			CPUProfile:   cfg.IncidentCPUProfile,
			Cooldown:     cfg.IncidentCooldown,
			Interval:     cfg.IncidentInterval,
			Health:       tier.health,
		})
		if err != nil {
			return nil, err
		}
		tier.recorder = rec
	}
	if len(objectives) > 0 {
		sloCfg := obs.SLOConfig{
			Interval:   cfg.SLOInterval,
			FastWindow: cfg.SLOFastWindow,
			SlowWindow: cfg.SLOSlowWindow,
			MinEvents:  cfg.SLOMinEvents,
		}
		if tier.recorder != nil {
			rec := tier.recorder
			sloCfg.OnAlert = func(a obs.Alert) {
				rec.Trip("slo_burn_"+a.Objective,
					fmt.Sprintf("burn rates fast=%.1f slow=%.1f (bad %.0f of %.0f in fast window)",
						a.FastBurn, a.SlowBurn, a.FastBad, a.FastTotal))
			}
		}
		tier.slo = obs.NewSLOEngine(reg, sloCfg, objectives...)
	}
	tier.health.Start()
	if tier.recorder != nil {
		tier.recorder.Start()
	}
	if tier.slo != nil {
		tier.slo.Start()
	}
	return tier, nil
}

// stop shuts the tier down; nil-safe.
func (t *obsTier) stop() {
	if t == nil {
		return
	}
	if t.slo != nil {
		t.slo.Stop()
	}
	if t.recorder != nil {
		t.recorder.Stop()
	}
	if t.health != nil {
		t.health.Stop()
	}
}

// cacheOptions maps the Config knobs onto the cache.
func (cfg Config) cacheOptions() cache.Options {
	return cache.Options{
		MaxBytes:      cfg.CacheMaxBytes,
		SweepInterval: cfg.CacheSweepInterval,
	}
}

// fetchOptions maps the Config knobs onto origin fetchers: timeout,
// retries, metrics, and one breaker set shared by every per-session
// fetcher (origin health outlives any one session).
func (cfg Config) fetchOptions(reg *obs.Registry) []fetch.Option {
	var opts []fetch.Option
	if cfg.FetchTimeout > 0 {
		opts = append(opts, fetch.WithTimeout(cfg.FetchTimeout))
	}
	if cfg.FetchRetries > 0 {
		opts = append(opts, fetch.WithRetries(cfg.FetchRetries))
	}
	if cfg.BreakerThreshold >= 0 {
		breakers := fetch.NewBreakerSet(fetch.BreakerConfig{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
		})
		breakers.SetObs(reg)
		opts = append(opts, fetch.WithBreaker(breakers))
	}
	return append(opts, fetch.WithObs(reg))
}

// buildPrefetch maps the Prefetch knobs onto a crawler; nil when the
// feature is off. The crawler is created before the proxies so its
// RecordHit can be wired as their demand feed, pointed at the sites
// after they exist, and only then started. With a StoreDir, the demand
// ranking persists there across restarts.
func (cfg Config) buildPrefetch(reg *obs.Registry) *prefetch.Crawler {
	if !cfg.Prefetch {
		return nil
	}
	var stateFile string
	if cfg.StoreDir != "" {
		stateFile = filepath.Join(cfg.StoreDir, "prefetch-demand.json")
	}
	return prefetch.New(prefetch.Config{
		TopN:      cfg.PrefetchTopN,
		Interval:  cfg.PrefetchInterval,
		Depth:     cfg.PrefetchDepth,
		Obs:       reg,
		Logger:    cfg.Logger,
		StateFile: stateFile,
	})
}

// buildCluster maps the Cluster knobs onto a membership node; nil when
// cluster mode is off. The node is created before the proxies (its
// FetchBundle hook goes into their config), pointed at the sites after
// they exist, and only then started.
func (cfg Config) buildCluster(reg *obs.Registry) (*cluster.Node, error) {
	if cfg.ClusterListen == "" {
		return nil, nil
	}
	return cluster.NewNode(cluster.Config{
		Self:          cfg.ClusterListen,
		Peers:         cfg.ClusterPeers,
		Replicas:      cfg.ClusterReplicas,
		Token:         cfg.ClusterToken,
		ProbeInterval: cfg.ClusterProbeInterval,
		Retries:       cfg.FetchRetries,
		Obs:           reg,
		Logger:        cfg.Logger,
	})
}

// clusterHook adapts a possibly-nil *cluster.Node to the proxy's hook
// field without smuggling a typed nil into the interface.
func clusterHook(node *cluster.Node) proxy.ClusterHook {
	if node == nil {
		return nil
	}
	return node
}

// Framework is a running m.Site instance for one adaptation spec.
type Framework struct {
	sp       *spec.Spec
	sessions *session.Manager
	cache    cache.Layer
	store    *store.Store // nil without StoreDir
	proxy    *proxy.Proxy
	obs      *obs.Registry
	tier     *obsTier          // nil without SLO/incident knobs
	crawler  *prefetch.Crawler // nil without Prefetch
	cluster  *cluster.Node     // nil without ClusterListen
}

// New builds a Framework from a validated spec.
func New(sp *spec.Spec, cfg Config) (*Framework, error) {
	if sp == nil {
		return nil, errors.New("core: nil spec")
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if cfg.SessionRoot == "" {
		return nil, errors.New("core: SessionRoot required")
	}
	ttl := cfg.SessionTTL
	if ttl <= 0 {
		ttl = session.DefaultTTL
	}
	sessions, err := session.NewManagerWithClock(cfg.SessionRoot, ttl, time.Now)
	if err != nil {
		return nil, err
	}
	sessions.SetLimit(cfg.MaxSessions)
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	adm, err := cfg.admissionController()
	if err != nil {
		return nil, err
	}
	sharedCache, st, err := cfg.buildCache(reg)
	if err != nil {
		return nil, err
	}
	sessions.InstrumentObs(reg)
	sessions.SetLogger(cfg.Logger)
	crawler := cfg.buildPrefetch(reg)
	var demand func(string)
	if crawler != nil {
		demand = crawler.RecordHit
	}
	node, err := cfg.buildCluster(reg)
	if err != nil {
		sharedCache.Close()
		if st != nil {
			_ = st.Close()
		}
		return nil, err
	}
	p, err := proxy.New(proxy.Config{
		Spec:                sp,
		Sessions:            sessions,
		Cache:               sharedCache,
		ViewportWidth:       cfg.ViewportWidth,
		FetchOptions:        cfg.fetchOptions(reg),
		Obs:                 reg,
		Logger:              cfg.Logger,
		FetchWorkers:        cfg.FetchWorkers,
		RasterWorkers:       cfg.RasterWorkers,
		ServeStale:          cfg.ServeStale,
		StaleFor:            cfg.StaleFor,
		Admission:           adm,
		PersistBundles:      st != nil || cfg.Prefetch || node != nil,
		Stream:              cfg.Stream,
		ATFHeight:           cfg.ATFHeight,
		SnapshotProgressive: cfg.SnapshotProgressive,
		MinimalMarkup:       cfg.MinimalMarkup,
		Demand:              demand,
		RepairRules:         cfg.RepairRules,
		ParityCheck:         cfg.ParityCheck,
		ParityMinScore:      cfg.ParityMinScore,
		Cluster:             clusterHook(node),
	})
	if err != nil {
		sharedCache.Close()
		if st != nil {
			_ = st.Close()
		}
		return nil, err
	}
	tier, err := cfg.buildObsTier(reg)
	if err != nil {
		sharedCache.Close()
		if st != nil {
			_ = st.Close()
		}
		return nil, err
	}
	if crawler != nil {
		crawler.SetSites([]prefetch.Site{p})
		crawler.Start()
	}
	if node != nil {
		node.SetSites(map[string]cluster.Builder{sp.Name: p})
		node.Start()
	}
	return &Framework{sp: sp, sessions: sessions, cache: sharedCache, store: st, proxy: p, obs: reg, tier: tier, crawler: crawler, cluster: node}, nil
}

// MultiFramework hosts the proxies for several adapted pages under one
// handler (each at /p/<name>/), sharing sessions and the render cache.
type MultiFramework struct {
	sessions *session.Manager
	cache    cache.Layer
	store    *store.Store // nil without StoreDir
	multi    *proxy.MultiProxy
	obs      *obs.Registry
	tier     *obsTier          // nil without SLO/incident knobs
	crawler  *prefetch.Crawler // nil without Prefetch
	cluster  *cluster.Node     // nil without ClusterListen
}

// NewMulti wires several specs into one composite handler.
func NewMulti(specs []*spec.Spec, cfg Config) (*MultiFramework, error) {
	if cfg.SessionRoot == "" {
		return nil, errors.New("core: SessionRoot required")
	}
	ttl := cfg.SessionTTL
	if ttl <= 0 {
		ttl = session.DefaultTTL
	}
	sessions, err := session.NewManagerWithClock(cfg.SessionRoot, ttl, time.Now)
	if err != nil {
		return nil, err
	}
	sessions.SetLimit(cfg.MaxSessions)
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	adm, err := cfg.admissionController()
	if err != nil {
		return nil, err
	}
	sharedCache, st, err := cfg.buildCache(reg)
	if err != nil {
		return nil, err
	}
	sessions.InstrumentObs(reg)
	sessions.SetLogger(cfg.Logger)
	crawler := cfg.buildPrefetch(reg)
	var demand func(string)
	if crawler != nil {
		demand = crawler.RecordHit
	}
	node, err := cfg.buildCluster(reg)
	if err != nil {
		sharedCache.Close()
		if st != nil {
			_ = st.Close()
		}
		return nil, err
	}
	multi, err := proxy.NewMulti(proxy.MultiConfig{
		Specs:               specs,
		Sessions:            sessions,
		Cache:               sharedCache,
		ViewportWidth:       cfg.ViewportWidth,
		FetchOptions:        cfg.fetchOptions(reg),
		Obs:                 reg,
		Logger:              cfg.Logger,
		FetchWorkers:        cfg.FetchWorkers,
		RasterWorkers:       cfg.RasterWorkers,
		ServeStale:          cfg.ServeStale,
		StaleFor:            cfg.StaleFor,
		Admission:           adm,
		PersistBundles:      st != nil || cfg.Prefetch || node != nil,
		Stream:              cfg.Stream,
		ATFHeight:           cfg.ATFHeight,
		SnapshotProgressive: cfg.SnapshotProgressive,
		MinimalMarkup:       cfg.MinimalMarkup,
		Demand:              demand,
		RepairRules:         cfg.RepairRules,
		ParityCheck:         cfg.ParityCheck,
		ParityMinScore:      cfg.ParityMinScore,
		Cluster:             clusterHook(node),
	})
	if err != nil {
		sharedCache.Close()
		if st != nil {
			_ = st.Close()
		}
		return nil, err
	}
	tier, err := cfg.buildObsTier(reg)
	if err != nil {
		sharedCache.Close()
		if st != nil {
			_ = st.Close()
		}
		return nil, err
	}
	if crawler != nil {
		var sites []prefetch.Site
		for _, name := range multi.Names() {
			if p, ok := multi.Site(name); ok {
				sites = append(sites, p)
			}
		}
		crawler.SetSites(sites)
		crawler.Start()
	}
	if node != nil {
		builders := make(map[string]cluster.Builder)
		for _, name := range multi.Names() {
			if p, ok := multi.Site(name); ok {
				builders[name] = p
			}
		}
		node.SetSites(builders)
		node.Start()
	}
	return &MultiFramework{sessions: sessions, cache: sharedCache, store: st, multi: multi, obs: reg, tier: tier, crawler: crawler, cluster: node}, nil
}

// Handler returns the composite handler.
func (m *MultiFramework) Handler() http.Handler { return m.multi }

// Obs exposes the shared metric/trace registry.
func (m *MultiFramework) Obs() *obs.Registry { return m.obs }

// MetricsHandler serves the registry at /metrics (Prometheus text or
// JSON, content-negotiated).
func (m *MultiFramework) MetricsHandler() http.Handler { return obs.Handler(m.obs) }

// TracesHandler serves recent request traces at /debug/traces.
func (m *MultiFramework) TracesHandler() http.Handler { return obs.TracesHandler(m.obs) }

// HandlerWithMetrics mounts the composite proxy plus the observability
// surface (/metrics, /debug/traces) on one handler.
func (m *MultiFramework) HandlerWithMetrics() http.Handler {
	return mountMetrics(m.multi, m.obs, m.tier, parityHandler(func() map[string]*quality.Parity {
		reports := make(map[string]*quality.Parity)
		for _, name := range m.multi.Names() {
			if p, ok := m.multi.Site(name); ok {
				reports[name] = p.ParityReport()
			}
		}
		return reports
	}), m.cluster)
}

// Sessions exposes the shared session manager.
func (m *MultiFramework) Sessions() *session.Manager { return m.sessions }

// Sites lists the mounted site names.
func (m *MultiFramework) Sites() []string { return m.multi.Names() }

// ProxyStats sums the per-site proxy work counters.
func (m *MultiFramework) ProxyStats() proxy.Stats {
	var total proxy.Stats
	for _, name := range m.multi.Names() {
		if p, ok := m.multi.Site(name); ok {
			s := p.Stats()
			total.Requests += s.Requests
			total.Adaptations += s.Adaptations
			total.SnapshotRenders += s.SnapshotRenders
			total.SnapshotHits += s.SnapshotHits
		}
	}
	return total
}

// ListenAndServe serves the composite proxy with the observability
// surface mounted at /metrics and /debug/traces.
func (m *MultiFramework) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           m.HandlerWithMetrics(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		return fmt.Errorf("core: serving: %w", err)
	}
	return nil
}

// NewFromJSON parses, validates, and wires a spec in one step — the
// entry point generated proxy code uses.
func NewFromJSON(specJSON []byte, cfg Config) (*Framework, error) {
	sp, err := spec.Parse(specJSON)
	if err != nil {
		return nil, err
	}
	return New(sp, cfg)
}

// Spec returns the framework's adaptation spec.
func (f *Framework) Spec() *spec.Spec { return f.sp }

// Handler returns the proxy handler.
func (f *Framework) Handler() http.Handler { return f.proxy }

// Sessions exposes the session manager (for GC loops and tests).
func (f *Framework) Sessions() *session.Manager { return f.sessions }

// Cache exposes the shared render cache layer (a *cache.Cache, or a
// *cache.Tiered when a durable store is configured).
func (f *Framework) Cache() cache.Layer { return f.cache }

// Store exposes the durable render store; nil without StoreDir.
func (f *Framework) Store() *store.Store { return f.store }

// SLO exposes the SLO engine; nil unless an SLO knob is set.
func (f *Framework) SLO() *obs.SLOEngine {
	if f.tier == nil {
		return nil
	}
	return f.tier.slo
}

// Recorder exposes the flight recorder; nil without IncidentDir.
func (f *Framework) Recorder() *obs.Recorder {
	if f.tier == nil {
		return nil
	}
	return f.tier.recorder
}

// Health exposes the runtime health sampler; nil unless the second
// observability tier is enabled.
func (f *Framework) Health() *obs.HealthSampler {
	if f.tier == nil {
		return nil
	}
	return f.tier.health
}

// ProxyStats returns the proxy's work counters.
func (f *Framework) ProxyStats() proxy.Stats { return f.proxy.Stats() }

// Obs exposes the shared metric/trace registry.
func (f *Framework) Obs() *obs.Registry { return f.obs }

// MetricsHandler serves the registry at /metrics (Prometheus text or
// JSON, content-negotiated).
func (f *Framework) MetricsHandler() http.Handler { return obs.Handler(f.obs) }

// TracesHandler serves recent request traces at /debug/traces.
func (f *Framework) TracesHandler() http.Handler { return obs.TracesHandler(f.obs) }

// HandlerWithMetrics mounts the proxy plus the observability surface
// (/metrics, /debug/traces) on one handler.
func (f *Framework) HandlerWithMetrics() http.Handler {
	return mountMetrics(f.proxy, f.obs, f.tier, parityHandler(func() map[string]*quality.Parity {
		return map[string]*quality.Parity{f.sp.Name: f.proxy.ParityReport()}
	}), f.cluster)
}

// parityHandler serves the latest content-parity report per site as
// JSON at /debug/parity. Sites whose validator has not produced a
// report yet (ParityCheck off, or no build completed) are omitted.
func parityHandler(reports func() map[string]*quality.Parity) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]*quality.Parity)
		for name, p := range reports() {
			if p != nil {
				out[name] = p
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
}

// mountMetrics composes a serving handler with the observability
// endpoints; the longer mux patterns win over the proxy's catch-all.
// The pprof handlers are mounted on the debug mux unconditionally;
// /slo and /debug/incidents appear when the second tier is enabled.
func mountMetrics(h http.Handler, reg *obs.Registry, tier *obsTier, parity http.Handler, node *cluster.Node) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(reg))
	mux.Handle("/debug/traces", obs.TracesHandler(reg))
	if parity != nil {
		mux.Handle("/debug/parity", parity)
	}
	if node != nil {
		mux.Handle(cluster.PathPrefix, node.Handler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if tier != nil {
		if tier.slo != nil {
			mux.Handle("/slo", obs.SLOHandler(tier.slo))
		}
		if tier.recorder != nil {
			mux.Handle("/debug/incidents", obs.IncidentsHandler(tier.recorder))
			mux.Handle("/debug/incidents/", obs.IncidentsHandler(tier.recorder))
		}
	}
	mux.Handle("/", h)
	return mux
}

// CacheStats returns the shared cache counters.
func (f *Framework) CacheStats() cache.Stats { return f.cache.Stats() }

// Close releases background resources: the prefetch crawler (stopped
// first, so no cycle races the teardown), the cache's expiry sweeper,
// and — when a durable store is configured — the write-through pool
// (drained first, so queued persists land) and the store itself. Safe
// to call more than once.
func (f *Framework) Close() {
	if f.cluster != nil {
		f.cluster.Close()
	}
	if f.crawler != nil {
		f.crawler.Close()
	}
	f.tier.stop()
	f.cache.Close()
	if f.store != nil {
		_ = f.store.Close()
	}
}

// Prefetcher exposes the speculative pre-adaptation crawler; nil unless
// Prefetch is enabled.
func (f *Framework) Prefetcher() *prefetch.Crawler { return f.crawler }

// Cluster exposes the consistent-hash membership node; nil unless
// ClusterListen is set.
func (f *Framework) Cluster() *cluster.Node { return f.cluster }

// Store exposes the durable render store; nil without StoreDir.
func (m *MultiFramework) Store() *store.Store { return m.store }

// SLO exposes the SLO engine; nil unless an SLO knob is set.
func (m *MultiFramework) SLO() *obs.SLOEngine {
	if m.tier == nil {
		return nil
	}
	return m.tier.slo
}

// Recorder exposes the flight recorder; nil without IncidentDir.
func (m *MultiFramework) Recorder() *obs.Recorder {
	if m.tier == nil {
		return nil
	}
	return m.tier.recorder
}

// Close releases background resources (the prefetch crawler, the shared
// cache's expiry sweeper, the store write-through pool, and the store).
// Safe to call more than once.
func (m *MultiFramework) Close() {
	if m.cluster != nil {
		m.cluster.Close()
	}
	if m.crawler != nil {
		m.crawler.Close()
	}
	m.tier.stop()
	m.cache.Close()
	if m.store != nil {
		_ = m.store.Close()
	}
}

// Prefetcher exposes the speculative pre-adaptation crawler; nil unless
// Prefetch is enabled.
func (m *MultiFramework) Prefetcher() *prefetch.Crawler { return m.crawler }

// Cluster exposes the consistent-hash membership node; nil unless
// ClusterListen is set.
func (m *MultiFramework) Cluster() *cluster.Node { return m.cluster }

// GenerateCode emits the standalone Go proxy source for this framework's
// spec — the m.Site "shell code" artifact.
func (f *Framework) GenerateCode(opts gen.Options) ([]byte, error) {
	return gen.GenerateProxyMain(f.sp, opts)
}

// ListenAndServe serves the proxy (with /metrics and /debug/traces
// mounted) until the listener fails.
func (f *Framework) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           f.HandlerWithMetrics(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		return fmt.Errorf("core: serving: %w", err)
	}
	return nil
}

// Serve serves the proxy (with /metrics and /debug/traces mounted) on
// an existing listener (tests and examples bind :0 and need the
// resolved address).
func (f *Framework) Serve(l net.Listener) error {
	srv := &http.Server{
		Handler:           f.HandlerWithMetrics(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.Serve(l); err != nil {
		return fmt.Errorf("core: serving: %w", err)
	}
	return nil
}
