package core

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"msite/internal/origin"
	"msite/internal/proxy"
)

// clusterRig is a two-node fleet of real frameworks sharing one origin:
// each node serves its public handler (cluster transport included) on a
// pre-bound loopback listener so peer URLs are known before New runs.
type clusterRig struct {
	fws  [2]*Framework
	urls [2]string
	srvs [2]*http.Server
}

func newClusterRig(t *testing.T, token string) *clusterRig {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)

	rig := &clusterRig{}
	var lns [2]net.Listener
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		rig.urls[i] = "http://" + ln.Addr().String()
	}
	peers := []string{rig.urls[0], rig.urls[1]}
	for i := range rig.fws {
		fw, err := New(testSpec(originSrv.URL), Config{
			SessionRoot:          t.TempDir(),
			FetchTimeout:         10 * time.Second,
			ClusterListen:        rig.urls[i],
			ClusterPeers:         peers,
			ClusterToken:         token,
			ClusterProbeInterval: time.Hour, // probes driven by the test, not the clock
		})
		if err != nil {
			t.Fatal(err)
		}
		rig.fws[i] = fw
		srv := &http.Server{Handler: fw.HandlerWithMetrics()}
		rig.srvs[i] = srv
		go func(l net.Listener) { _ = srv.Serve(l) }(lns[i])
	}
	t.Cleanup(func() {
		for i := range rig.fws {
			_ = rig.srvs[i].Close()
			rig.fws[i].Close()
		}
	})
	return rig
}

// nonOwner returns the index of the node the ring does NOT route the
// forum bundle to, plus the owner's index.
func (rig *clusterRig) nonOwner(t *testing.T) (requester, owner int) {
	t.Helper()
	key := rig.fws[0].proxy.BundleKey()
	if key == "" {
		t.Fatal("cluster frameworks must persist bundles")
	}
	ownerURL, ok := rig.fws[0].Cluster().Owner(key)
	if !ok {
		t.Fatal("ring empty")
	}
	for i, u := range rig.urls {
		if u == ownerURL {
			return 1 - i, i
		}
	}
	t.Fatalf("owner %q is not a rig node", ownerURL)
	return 0, 0
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// Two real nodes: a cold request on the non-owner must cost exactly one
// pipeline run fleet-wide — on the owner — and the hop must stitch one
// trace ID through both nodes' /debug/traces registries.
func TestClusterTwoNodeForwarding(t *testing.T) {
	rig := newClusterRig(t, "s3cret")
	requester, owner := rig.nonOwner(t)

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	resp, err := client.Get(rig.urls[requester] + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "usemap") {
		t.Fatalf("entry via non-owner: %d", resp.StatusCode)
	}

	if got := rig.fws[requester].ProxyStats().Adaptations; got != 0 {
		t.Fatalf("requester ran %d pipelines, want 0", got)
	}
	if got := rig.fws[owner].ProxyStats().Adaptations; got != 1 {
		t.Fatalf("owner ran %d pipelines, want 1", got)
	}

	metrics := scrape(t, rig.urls[requester]+"/metrics")
	if !strings.Contains(metrics, "msite_cluster_forwarded_total") {
		t.Fatalf("requester metrics lack forwarded counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, fmt.Sprintf("msite_cluster_ring_nodes %d", 2)) {
		t.Fatal("ring_nodes gauge != 2")
	}

	// Trace stitching: the ID the requester returned to the client must
	// appear on the owner as the cluster_bundle trace it spawned.
	traceID := resp.Header.Get(proxy.TraceHeader)
	if traceID == "" {
		t.Fatal("response carried no trace header")
	}
	found := false
	for _, rec := range rig.fws[owner].Obs().RecentTraces() {
		if rec.Name == "cluster_bundle" && rec.ID == traceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("owner traces lack cluster_bundle with id %s", traceID)
	}
	reqFound := false
	for _, rec := range rig.fws[requester].Obs().RecentTraces() {
		if rec.ID == traceID {
			reqFound = true
		}
	}
	if !reqFound {
		t.Fatal("requester traces lack the stitched id")
	}

	// Warm follow-up on the requester is served from its seeded cache:
	// still exactly one build fleet-wide.
	jar2, _ := cookiejar.New(nil)
	client2 := &http.Client{Jar: jar2, Timeout: 30 * time.Second}
	resp2, err := client2.Get(rig.urls[requester] + "/")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	total := rig.fws[0].ProxyStats().Adaptations + rig.fws[1].ProxyStats().Adaptations
	if total != 1 {
		t.Fatalf("fleet ran %d pipelines after warm request, want 1", total)
	}
}

// A token mismatch between nodes must not take the fleet down: the
// rejected hop falls back to a local build and still serves 200.
func TestClusterTokenMismatchFallsBackLocal(t *testing.T) {
	rig := newClusterRig(t, "s3cret")
	requester, owner := rig.nonOwner(t)

	// Sabotage the hop: the requester presents no token by pointing its
	// probe-authenticated transport at a peer expecting one. Simulate a
	// split config by restarting the owner's server with a handler that
	// rejects everything under the cluster prefix.
	rig.srvs[owner].Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "unauthorized", http.StatusUnauthorized)
	})

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	resp, err := client.Get(rig.urls[requester] + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "usemap") {
		t.Fatalf("entry with rejected hop: %d", resp.StatusCode)
	}
	if got := rig.fws[requester].ProxyStats().Adaptations; got != 1 {
		t.Fatalf("local takeover ran %d pipelines, want 1", got)
	}
	if m := scrape(t, rig.urls[requester]+"/metrics"); !strings.Contains(m, "msite_cluster_fallback_local_total") {
		t.Fatal("fallback counter missing after rejected hop")
	}
}
