package core

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"msite/internal/obs"
	"msite/internal/origin"
	"msite/internal/spec"
)

// TestMetricsEndpointMounted drives the adaptation pipeline through the
// metrics-mounted handler and scrapes /metrics (both formats) and
// /debug/traces — the mounted observability surface end to end.
func TestMetricsEndpointMounted(t *testing.T) {
	fw, _ := newFramework(t)
	srv := httptest.NewServer(fw.HandlerWithMetrics())
	defer srv.Close()

	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Jar: jar}
	resp, err := client.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("entry page status = %d", resp.StatusCode)
	}

	// Prometheus text exposition.
	resp, err = client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE msite_proxy_requests_total counter",
		`msite_proxy_requests_total{handler="entry",site="forum"} 1`,
		"# TYPE msite_stage_seconds histogram",
		`msite_stage_seconds_bucket{stage="fetch",le="+Inf"} 1`,
		"msite_cache_fills_total",
		"msite_sessions_live",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// JSON negotiation through the same mount.
	resp, err = client.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if h, ok := snap.Histogram("msite_http_request_seconds", "handler", "entry"); !ok || h.Count != 1 {
		t.Fatalf("request histogram = %+v ok=%v", h, ok)
	}

	// The trace surface shows the request's pipeline spans.
	resp, err = client.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	var entry *obs.TraceRecord
	for i := range payload.Traces {
		if payload.Traces[i].Name == "entry" {
			entry = &payload.Traces[i]
		}
	}
	if entry == nil {
		t.Fatalf("no entry trace in %+v", payload.Traces)
	}
	if len(entry.Spans) == 0 || entry.Attrs["session"] == "" {
		t.Fatalf("entry trace = %+v", entry)
	}
}

// TestMultiMetricsShared asserts multi-site hosting funnels every site's
// metrics into one registry under per-site labels.
func TestMultiMetricsShared(t *testing.T) {
	_, originSrv := newFramework(t) // reuse the origin only
	spA := testSpec(originSrv.URL)
	spB := testSpec(originSrv.URL)
	spA.Name = "alpha"
	spB.Name = "beta"
	mf, err := NewMulti([]*spec.Spec{spA, spB}, Config{SessionRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mf.HandlerWithMetrics())
	defer srv.Close()

	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Jar: jar}
	for _, path := range []string{"/p/alpha/", "/p/beta/"} {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}

	snap := mf.Obs().Snapshot()
	for _, site := range []string{"alpha", "beta"} {
		if c, ok := snap.Counter("msite_proxy_requests_total", "handler", "entry", "site", site); !ok || c.Value != 1 {
			t.Fatalf("site %s entry counter = %+v ok=%v", site, c, ok)
		}
	}
}

// TestObsTierMounted builds a framework with the SLO/incident knobs set
// and exercises the second observability tier end to end: the trace
// response header, /slo, /debug/incidents, and /debug/pprof.
func TestObsTierMounted(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	defer originSrv.Close()
	fw, err := New(testSpec(originSrv.URL), Config{
		SessionRoot:     t.TempDir(),
		SLOTargetP99:    250 * time.Millisecond,
		SLOAvailability: 0.999,
		SLOInterval:     50 * time.Millisecond,
		IncidentDir:     t.TempDir(),
		HealthInterval:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	if fw.SLO() == nil || fw.Recorder() == nil || fw.Health() == nil {
		t.Fatal("observability tier not built")
	}

	srv := httptest.NewServer(fw.HandlerWithMetrics())
	defer srv.Close()
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Jar: jar}

	resp, err := client.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	traceID := resp.Header.Get("X-MSite-Trace")
	if len(traceID) != 16 {
		t.Fatalf("X-MSite-Trace = %q, want a 16-char trace ID", traceID)
	}

	// /slo serves both formats and knows both objectives.
	resp, err = client.Get(srv.URL + "/slo?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var slo struct {
		Objectives []obs.ObjectiveStatus `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slo); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	names := map[string]bool{}
	for _, o := range slo.Objectives {
		names[o.Name] = true
	}
	if !names["latency_p99"] || !names["availability"] {
		t.Fatalf("objectives = %v", names)
	}

	// /debug/incidents serves the (empty) bundle index.
	resp, err = client.Get(srv.URL + "/debug/incidents")
	if err != nil {
		t.Fatal(err)
	}
	var incidents struct {
		Dir string `json:"dir"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&incidents); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if incidents.Dir == "" {
		t.Fatal("incident dir not reported")
	}

	// pprof is mounted on the same mux.
	resp, err = client.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", resp.StatusCode)
	}
}

// TestObsTierAbsentByDefault keeps the tier free when no SLO or
// incident knob is set.
func TestObsTierAbsentByDefault(t *testing.T) {
	fw, _ := newFramework(t)
	if fw.SLO() != nil || fw.Recorder() != nil || fw.Health() != nil {
		t.Fatal("observability tier built without any knob set")
	}
	srv := httptest.NewServer(fw.HandlerWithMetrics())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("/slo mounted without an objective configured")
	}
}
