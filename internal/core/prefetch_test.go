package core

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"msite/internal/origin"
)

// TestPrefetchColdBuildEndToEnd proves the whole speculative path: a
// framework with the crawler on (and a long interval, so only explicit
// cycles run) pre-builds the site's bundle before any request arrives,
// and the next cycle revalidates instead of rebuilding.
func TestPrefetchColdBuildEndToEnd(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)

	fw, err := New(testSpec(originSrv.URL), Config{
		SessionRoot:              t.TempDir(),
		FetchTimeout:             10 * time.Second,
		MaxConcurrentAdaptations: 2,
		Prefetch:                 true,
		PrefetchInterval:         time.Hour, // cycles driven by hand below
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()

	cr := fw.Prefetcher()
	if cr == nil {
		t.Fatal("Prefetcher() = nil with Prefetch on")
	}

	rep := cr.RunCycle(context.Background())
	if len(rep.Built) != 1 || rep.Built[0] != "forum" {
		t.Fatalf("first cycle Built = %v (errors %v), want [forum]", rep.Built, rep.Errors)
	}

	// The forum origin doesn't emit validators, so the second cycle
	// can't 304 — but it must find the existing bundle and not rebuild.
	rep2 := cr.RunCycle(context.Background())
	if len(rep2.Built) != 0 {
		t.Fatalf("second cycle rebuilt: %+v", rep2)
	}

	// Exactly one pipeline run total: the first cycle's build. No live
	// request has arrived, and the second cycle reused the bundle.
	if stats := fw.ProxyStats(); stats.Adaptations != 1 || stats.Requests != 0 {
		t.Fatalf("stats = %+v, want exactly the one prefetch build and no requests", stats)
	}
}

func TestPrefetcherNilWhenOff(t *testing.T) {
	fw, _ := newFramework(t)
	defer fw.Close()
	if fw.Prefetcher() != nil {
		t.Fatal("Prefetcher() non-nil with Prefetch off")
	}
}
