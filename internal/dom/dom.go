// Package dom implements the document object model used throughout m.Site.
//
// The tree is deliberately small: five node kinds, doubly linked siblings,
// and parent/child pointers. Every higher layer — the HTML parser, the CSS
// cascade, the jQuery-style manipulation API, the XPath evaluator, the
// layout engine, and the attribute system — operates on this one
// representation, which is what lets the proxy adapt a page without ever
// instantiating a heavyweight browser.
package dom

import (
	"sort"
	"strings"
)

// NodeType identifies the kind of a Node.
type NodeType int

// Node kinds. The zero value is invalid so that an uninitialized Node is
// detectable.
const (
	DocumentNode NodeType = iota + 1
	ElementNode
	TextNode
	CommentNode
	DoctypeNode
)

// String returns a human-readable name for the node type.
func (t NodeType) String() string {
	switch t {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case DoctypeNode:
		return "doctype"
	default:
		return "invalid"
	}
}

// Attr is a single element attribute. Keys are stored lowercase.
type Attr struct {
	Key string
	Val string
}

// Node is a single node in the document tree.
//
// For ElementNode, Tag holds the lowercase tag name. For TextNode and
// CommentNode, Data holds the content. For DoctypeNode, Data holds the
// doctype text (e.g. "html").
type Node struct {
	Type NodeType
	Tag  string
	Data string

	Attrs []Attr

	Parent      *Node
	FirstChild  *Node
	LastChild   *Node
	PrevSibling *Node
	NextSibling *Node
}

// NewDocument returns an empty document node.
func NewDocument() *Node {
	return &Node{Type: DocumentNode}
}

// NewElement returns a detached element node with the given tag, lowercased.
func NewElement(tag string) *Node {
	return &Node{Type: ElementNode, Tag: strings.ToLower(tag)}
}

// NewText returns a detached text node.
func NewText(data string) *Node {
	return &Node{Type: TextNode, Data: data}
}

// NewComment returns a detached comment node.
func NewComment(data string) *Node {
	return &Node{Type: CommentNode, Data: data}
}

// NewDoctype returns a detached doctype node.
func NewDoctype(data string) *Node {
	return &Node{Type: DoctypeNode, Data: data}
}

// Attr returns the value of the named attribute and whether it exists.
// The lookup is case-insensitive.
func (n *Node) Attr(key string) (string, bool) {
	key = strings.ToLower(key)
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// AttrOr returns the value of the named attribute, or def if absent.
func (n *Node) AttrOr(key, def string) string {
	if v, ok := n.Attr(key); ok {
		return v
	}
	return def
}

// SetAttr sets the named attribute, replacing an existing value.
func (n *Node) SetAttr(key, val string) {
	key = strings.ToLower(key)
	for i := range n.Attrs {
		if n.Attrs[i].Key == key {
			n.Attrs[i].Val = val
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Key: key, Val: val})
}

// DelAttr removes the named attribute if present.
func (n *Node) DelAttr(key string) {
	key = strings.ToLower(key)
	for i := range n.Attrs {
		if n.Attrs[i].Key == key {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return
		}
	}
}

// HasAttr reports whether the named attribute exists.
func (n *Node) HasAttr(key string) bool {
	_, ok := n.Attr(key)
	return ok
}

// ID returns the element's id attribute, or "".
func (n *Node) ID() string {
	return n.AttrOr("id", "")
}

// Classes returns the element's class list.
func (n *Node) Classes() []string {
	return strings.Fields(n.AttrOr("class", ""))
}

// HasClass reports whether the element's class list contains c.
func (n *Node) HasClass(c string) bool {
	for _, have := range n.Classes() {
		if have == c {
			return true
		}
	}
	return false
}

// AddClass appends c to the element's class list if not already present.
func (n *Node) AddClass(c string) {
	if n.HasClass(c) {
		return
	}
	cur := n.AttrOr("class", "")
	if cur == "" {
		n.SetAttr("class", c)
		return
	}
	n.SetAttr("class", cur+" "+c)
}

// RemoveClass removes c from the element's class list.
func (n *Node) RemoveClass(c string) {
	classes := n.Classes()
	out := classes[:0]
	for _, have := range classes {
		if have != c {
			out = append(out, have)
		}
	}
	if len(out) == 0 {
		n.DelAttr("class")
		return
	}
	n.SetAttr("class", strings.Join(out, " "))
}

// AppendChild appends c as the last child of n. c is detached first.
func (n *Node) AppendChild(c *Node) {
	c.Detach()
	c.Parent = n
	c.PrevSibling = n.LastChild
	if n.LastChild != nil {
		n.LastChild.NextSibling = c
	} else {
		n.FirstChild = c
	}
	n.LastChild = c
}

// PrependChild inserts c as the first child of n. c is detached first.
func (n *Node) PrependChild(c *Node) {
	if n.FirstChild == nil {
		n.AppendChild(c)
		return
	}
	n.InsertBefore(c, n.FirstChild)
}

// InsertBefore inserts c as a child of n, immediately before ref.
// ref must be a child of n; if ref is nil, c is appended.
func (n *Node) InsertBefore(c, ref *Node) {
	if ref == nil {
		n.AppendChild(c)
		return
	}
	c.Detach()
	c.Parent = n
	c.PrevSibling = ref.PrevSibling
	c.NextSibling = ref
	if ref.PrevSibling != nil {
		ref.PrevSibling.NextSibling = c
	} else {
		n.FirstChild = c
	}
	ref.PrevSibling = c
}

// InsertAfter inserts c as a sibling of n, immediately after it.
// n must have a parent.
func (n *Node) InsertAfter(c *Node) {
	if n.Parent == nil {
		return
	}
	n.Parent.InsertBefore(c, n.NextSibling)
}

// Detach removes n from its parent, leaving it (and its subtree) intact.
// Detaching an already-detached node is a no-op.
func (n *Node) Detach() {
	if n.Parent == nil {
		return
	}
	if n.PrevSibling != nil {
		n.PrevSibling.NextSibling = n.NextSibling
	} else {
		n.Parent.FirstChild = n.NextSibling
	}
	if n.NextSibling != nil {
		n.NextSibling.PrevSibling = n.PrevSibling
	} else {
		n.Parent.LastChild = n.PrevSibling
	}
	n.Parent = nil
	n.PrevSibling = nil
	n.NextSibling = nil
}

// ReplaceWith substitutes repl for n in the tree. n is detached.
func (n *Node) ReplaceWith(repl *Node) {
	parent := n.Parent
	if parent == nil {
		return
	}
	next := n.NextSibling
	n.Detach()
	parent.InsertBefore(repl, next)
}

// Clone returns a deep copy of n and its subtree. The copy is detached.
func (n *Node) Clone() *Node {
	c := &Node{Type: n.Type, Tag: n.Tag, Data: n.Data}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	for child := n.FirstChild; child != nil; child = child.NextSibling {
		c.AppendChild(child.Clone())
	}
	return c
}

// Children returns the element children of n, in document order.
func (n *Node) Children() []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// ChildNodes returns all children of n (any type), in document order.
func (n *Node) ChildNodes() []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		out = append(out, c)
	}
	return out
}

// NextElement returns the next sibling that is an element, or nil.
func (n *Node) NextElement() *Node {
	for s := n.NextSibling; s != nil; s = s.NextSibling {
		if s.Type == ElementNode {
			return s
		}
	}
	return nil
}

// PrevElement returns the previous sibling that is an element, or nil.
func (n *Node) PrevElement() *Node {
	for s := n.PrevSibling; s != nil; s = s.PrevSibling {
		if s.Type == ElementNode {
			return s
		}
	}
	return nil
}

// ElementIndex returns the 0-based index of n among its parent's element
// children, or -1 if n is not an element child of its parent.
func (n *Node) ElementIndex() int {
	if n.Parent == nil || n.Type != ElementNode {
		return -1
	}
	i := 0
	for c := n.Parent.FirstChild; c != nil; c = c.NextSibling {
		if c.Type != ElementNode {
			continue
		}
		if c == n {
			return i
		}
		i++
	}
	return -1
}

// Ancestors returns the chain of parents from n's parent to the root.
func (n *Node) Ancestors() []*Node {
	var out []*Node
	for p := n.Parent; p != nil; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// Root returns the topmost ancestor of n (n itself if detached).
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// Contains reports whether other is n or a descendant of n.
func (n *Node) Contains(other *Node) bool {
	for p := other; p != nil; p = p.Parent {
		if p == n {
			return true
		}
	}
	return false
}

// Walk visits n and every descendant in document order. If fn returns
// false for a node, that node's subtree is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for c := n.FirstChild; c != nil; {
		next := c.NextSibling // allow fn to detach c
		c.Walk(fn)
		c = next
	}
}

// Find returns every descendant of n (not n itself) satisfying pred,
// in document order.
func (n *Node) Find(pred func(*Node) bool) []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		c.Walk(func(d *Node) bool {
			if pred(d) {
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

// FindFirst returns the first descendant of n satisfying pred, or nil.
func (n *Node) FindFirst(pred func(*Node) bool) *Node {
	var found *Node
	for c := n.FirstChild; c != nil && found == nil; c = c.NextSibling {
		c.Walk(func(d *Node) bool {
			if found != nil {
				return false
			}
			if pred(d) {
				found = d
				return false
			}
			return true
		})
	}
	return found
}

// Elements returns every descendant element of n with the given tag.
// A tag of "*" or "" matches every element.
func (n *Node) Elements(tag string) []*Node {
	tag = strings.ToLower(tag)
	return n.Find(func(d *Node) bool {
		if d.Type != ElementNode {
			return false
		}
		return tag == "" || tag == "*" || d.Tag == tag
	})
}

// ElementByID returns the descendant element with the given id, or nil.
func (n *Node) ElementByID(id string) *Node {
	return n.FindFirst(func(d *Node) bool {
		return d.Type == ElementNode && d.ID() == id
	})
}

// Text returns the concatenated text content of n's subtree.
// Script and style contents are excluded: they are code, not copy.
func (n *Node) Text() string {
	var b strings.Builder
	n.Walk(func(d *Node) bool {
		if d.Type == ElementNode && (d.Tag == "script" || d.Tag == "style") {
			return false
		}
		if d.Type == TextNode {
			b.WriteString(d.Data)
		}
		return true
	})
	return b.String()
}

// SetText replaces n's children with a single text node containing s.
func (n *Node) SetText(s string) {
	n.Empty()
	n.AppendChild(NewText(s))
}

// Empty removes all children of n.
func (n *Node) Empty() {
	for n.FirstChild != nil {
		n.FirstChild.Detach()
	}
}

// Body returns the document's body element, or nil.
func (n *Node) Body() *Node {
	return n.Root().FindFirst(func(d *Node) bool {
		return d.Type == ElementNode && d.Tag == "body"
	})
}

// Head returns the document's head element, or nil.
func (n *Node) Head() *Node {
	return n.Root().FindFirst(func(d *Node) bool {
		return d.Type == ElementNode && d.Tag == "head"
	})
}

// DocumentElement returns the document's html element, or nil.
func (n *Node) DocumentElement() *Node {
	r := n.Root()
	for c := r.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == ElementNode && c.Tag == "html" {
			return c
		}
	}
	return nil
}

// CountElements returns the number of element nodes in n's subtree,
// including n itself if it is an element.
func (n *Node) CountElements() int {
	count := 0
	n.Walk(func(d *Node) bool {
		if d.Type == ElementNode {
			count++
		}
		return true
	})
	return count
}

// Path returns a simple absolute location path for n, of the form
// /html/body/div[2]/p[1], using 1-based per-tag sibling indexes. It is
// the inverse-friendly form consumed by the xpath package and is how the
// admin tool records visually selected objects.
func (n *Node) Path() string {
	if n.Type != ElementNode {
		return ""
	}
	var segs []string
	for e := n; e != nil && e.Type == ElementNode; e = e.Parent {
		idx := 1
		for s := e.PrevSibling; s != nil; s = s.PrevSibling {
			if s.Type == ElementNode && s.Tag == e.Tag {
				idx++
			}
		}
		segs = append(segs, e.Tag+"["+itoa(idx)+"]")
	}
	// Reverse.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return "/" + strings.Join(segs, "/")
}

// SortNodes sorts nodes in document order relative to the given root and
// removes duplicates. Nodes not under root keep their relative order at
// the end. The input slice is modified and returned.
func SortNodes(root *Node, nodes []*Node) []*Node {
	order := make(map[*Node]int)
	i := 0
	root.Walk(func(d *Node) bool {
		order[d] = i
		i++
		return true
	})
	seen := make(map[*Node]bool, len(nodes))
	uniq := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.SliceStable(uniq, func(a, b int) bool {
		oa, oka := order[uniq[a]]
		ob, okb := order[uniq[b]]
		switch {
		case oka && okb:
			return oa < ob
		case oka:
			return true
		default:
			return false
		}
	})
	return uniq
}

func itoa(v int) string {
	// Tiny positive-int formatter; avoids pulling strconv into the hot
	// Path() loop for the common 1-digit case.
	if v < 10 {
		return string(rune('0' + v))
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
