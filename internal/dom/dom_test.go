package dom

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildSample() (*Node, *Node, *Node, *Node) {
	doc := NewDocument()
	html := NewElement("html")
	body := NewElement("body")
	div := NewElement("div")
	div.SetAttr("id", "main")
	div.SetAttr("class", "content wide")
	doc.AppendChild(html)
	html.AppendChild(body)
	body.AppendChild(div)
	return doc, html, body, div
}

func TestNodeTypeString(t *testing.T) {
	cases := map[NodeType]string{
		DocumentNode: "document",
		ElementNode:  "element",
		TextNode:     "text",
		CommentNode:  "comment",
		DoctypeNode:  "doctype",
		NodeType(0):  "invalid",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("NodeType(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestAppendChildLinksPointers(t *testing.T) {
	doc, html, body, div := buildSample()
	if html.Parent != doc {
		t.Fatal("html parent not set")
	}
	if doc.FirstChild != html || doc.LastChild != html {
		t.Fatal("doc first/last child wrong")
	}
	if body.FirstChild != div || div.Parent != body {
		t.Fatal("div links wrong")
	}
}

func TestAppendChildMultiple(t *testing.T) {
	p := NewElement("ul")
	a := NewElement("li")
	b := NewElement("li")
	c := NewElement("li")
	p.AppendChild(a)
	p.AppendChild(b)
	p.AppendChild(c)
	if p.FirstChild != a || p.LastChild != c {
		t.Fatal("first/last wrong")
	}
	if a.NextSibling != b || b.NextSibling != c || c.NextSibling != nil {
		t.Fatal("next links wrong")
	}
	if c.PrevSibling != b || b.PrevSibling != a || a.PrevSibling != nil {
		t.Fatal("prev links wrong")
	}
}

func TestAppendChildReparents(t *testing.T) {
	p1 := NewElement("div")
	p2 := NewElement("div")
	c := NewElement("span")
	p1.AppendChild(c)
	p2.AppendChild(c)
	if p1.FirstChild != nil {
		t.Fatal("old parent still holds child")
	}
	if c.Parent != p2 {
		t.Fatal("child not reparented")
	}
}

func TestPrependChild(t *testing.T) {
	p := NewElement("div")
	b := NewElement("b")
	a := NewElement("a")
	p.PrependChild(b)
	p.PrependChild(a)
	if p.FirstChild != a || a.NextSibling != b {
		t.Fatal("prepend order wrong")
	}
}

func TestInsertBefore(t *testing.T) {
	p := NewElement("div")
	a := NewElement("a")
	c := NewElement("c")
	p.AppendChild(a)
	p.AppendChild(c)
	b := NewElement("b")
	p.InsertBefore(b, c)
	got := tagsOf(p.Children())
	if got != "a b c" {
		t.Fatalf("order = %q, want %q", got, "a b c")
	}
}

func TestInsertBeforeNilRefAppends(t *testing.T) {
	p := NewElement("div")
	a := NewElement("a")
	p.InsertBefore(a, nil)
	if p.LastChild != a {
		t.Fatal("nil ref should append")
	}
}

func TestInsertBeforeFirst(t *testing.T) {
	p := NewElement("div")
	b := NewElement("b")
	p.AppendChild(b)
	a := NewElement("a")
	p.InsertBefore(a, b)
	if p.FirstChild != a || a.PrevSibling != nil {
		t.Fatal("insert at head wrong")
	}
}

func TestInsertAfter(t *testing.T) {
	p := NewElement("div")
	a := NewElement("a")
	c := NewElement("c")
	p.AppendChild(a)
	p.AppendChild(c)
	b := NewElement("b")
	a.InsertAfter(b)
	if got := tagsOf(p.Children()); got != "a b c" {
		t.Fatalf("order = %q", got)
	}
	d := NewElement("d")
	c.InsertAfter(d)
	if p.LastChild != d {
		t.Fatal("insert after last should become last")
	}
}

func TestDetachMiddle(t *testing.T) {
	p := NewElement("div")
	a, b, c := NewElement("a"), NewElement("b"), NewElement("c")
	p.AppendChild(a)
	p.AppendChild(b)
	p.AppendChild(c)
	b.Detach()
	if got := tagsOf(p.Children()); got != "a c" {
		t.Fatalf("after detach: %q", got)
	}
	if b.Parent != nil || b.PrevSibling != nil || b.NextSibling != nil {
		t.Fatal("detached node retains links")
	}
	b.Detach() // idempotent
}

func TestDetachOnly(t *testing.T) {
	p := NewElement("div")
	a := NewElement("a")
	p.AppendChild(a)
	a.Detach()
	if p.FirstChild != nil || p.LastChild != nil {
		t.Fatal("parent retains pointers")
	}
}

func TestReplaceWith(t *testing.T) {
	p := NewElement("div")
	a, b, c := NewElement("a"), NewElement("b"), NewElement("c")
	p.AppendChild(a)
	p.AppendChild(b)
	p.AppendChild(c)
	x := NewElement("x")
	b.ReplaceWith(x)
	if got := tagsOf(p.Children()); got != "a x c" {
		t.Fatalf("after replace: %q", got)
	}
	if b.Parent != nil {
		t.Fatal("replaced node not detached")
	}
}

func TestReplaceWithDetachedIsNoop(t *testing.T) {
	a := NewElement("a")
	x := NewElement("x")
	a.ReplaceWith(x) // must not panic
	if x.Parent != nil {
		t.Fatal("replacement attached to nothing")
	}
}

func TestCloneDeep(t *testing.T) {
	_, _, _, div := buildSample()
	span := NewElement("span")
	span.AppendChild(NewText("hello"))
	div.AppendChild(span)

	c := div.Clone()
	if c.Parent != nil {
		t.Fatal("clone should be detached")
	}
	if c.AttrOr("id", "") != "main" {
		t.Fatal("clone lost attrs")
	}
	if c.FirstChild == span {
		t.Fatal("clone shares children with original")
	}
	if c.Text() != "hello" {
		t.Fatalf("clone text = %q", c.Text())
	}
	// Mutating the clone must not affect the original.
	c.SetAttr("id", "copy")
	if div.ID() != "main" {
		t.Fatal("clone mutation leaked to original")
	}
}

func TestAttrCaseInsensitive(t *testing.T) {
	e := NewElement("img")
	e.SetAttr("SRC", "/a.png")
	if v, ok := e.Attr("src"); !ok || v != "/a.png" {
		t.Fatalf("attr = %q, %v", v, ok)
	}
	e.SetAttr("src", "/b.png")
	if len(e.Attrs) != 1 {
		t.Fatalf("duplicate attr created: %v", e.Attrs)
	}
	e.DelAttr("SrC")
	if e.HasAttr("src") {
		t.Fatal("attr not deleted")
	}
}

func TestClassHelpers(t *testing.T) {
	e := NewElement("div")
	e.AddClass("a")
	e.AddClass("b")
	e.AddClass("a") // dedupe
	if got := e.AttrOr("class", ""); got != "a b" {
		t.Fatalf("class = %q", got)
	}
	if !e.HasClass("a") || !e.HasClass("b") || e.HasClass("c") {
		t.Fatal("HasClass wrong")
	}
	e.RemoveClass("a")
	if got := e.AttrOr("class", ""); got != "b" {
		t.Fatalf("class after remove = %q", got)
	}
	e.RemoveClass("b")
	if e.HasAttr("class") {
		t.Fatal("empty class attr should be deleted")
	}
}

func TestTextSkipsScriptAndStyle(t *testing.T) {
	div := NewElement("div")
	div.AppendChild(NewText("a "))
	script := NewElement("script")
	script.AppendChild(NewText("var x=1;"))
	div.AppendChild(script)
	div.AppendChild(NewText("b"))
	if got := div.Text(); got != "a b" {
		t.Fatalf("Text() = %q", got)
	}
}

func TestSetTextAndEmpty(t *testing.T) {
	div := NewElement("div")
	div.AppendChild(NewElement("span"))
	div.SetText("replaced")
	if div.FirstChild == nil || div.FirstChild.Type != TextNode || div.FirstChild != div.LastChild {
		t.Fatal("SetText did not produce single text child")
	}
	div.Empty()
	if div.FirstChild != nil {
		t.Fatal("Empty left children")
	}
}

func TestChildrenVsChildNodes(t *testing.T) {
	div := NewElement("div")
	div.AppendChild(NewText("t"))
	div.AppendChild(NewElement("a"))
	div.AppendChild(NewComment("c"))
	div.AppendChild(NewElement("b"))
	if len(div.Children()) != 2 {
		t.Fatalf("Children = %d, want 2", len(div.Children()))
	}
	if len(div.ChildNodes()) != 4 {
		t.Fatalf("ChildNodes = %d, want 4", len(div.ChildNodes()))
	}
}

func TestNextPrevElement(t *testing.T) {
	div := NewElement("div")
	a := NewElement("a")
	div.AppendChild(a)
	div.AppendChild(NewText("x"))
	b := NewElement("b")
	div.AppendChild(b)
	if a.NextElement() != b || b.PrevElement() != a {
		t.Fatal("element sibling navigation wrong")
	}
	if b.NextElement() != nil || a.PrevElement() != nil {
		t.Fatal("boundary navigation wrong")
	}
}

func TestElementIndex(t *testing.T) {
	div := NewElement("div")
	div.AppendChild(NewText("skip"))
	a := NewElement("a")
	b := NewElement("b")
	div.AppendChild(a)
	div.AppendChild(b)
	if a.ElementIndex() != 0 || b.ElementIndex() != 1 {
		t.Fatal("element index wrong")
	}
	if NewElement("x").ElementIndex() != -1 {
		t.Fatal("detached element should be -1")
	}
}

func TestAncestorsRootContains(t *testing.T) {
	doc, html, body, div := buildSample()
	anc := div.Ancestors()
	if len(anc) != 3 || anc[0] != body || anc[1] != html || anc[2] != doc {
		t.Fatalf("ancestors wrong: %v", anc)
	}
	if div.Root() != doc {
		t.Fatal("root wrong")
	}
	if !doc.Contains(div) || !div.Contains(div) || div.Contains(body) {
		t.Fatal("contains wrong")
	}
}

func TestWalkSkipSubtree(t *testing.T) {
	div := NewElement("div")
	skip := NewElement("skip")
	skip.AppendChild(NewElement("inner"))
	div.AppendChild(skip)
	div.AppendChild(NewElement("after"))
	var visited []string
	div.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			visited = append(visited, n.Tag)
		}
		return n.Tag != "skip"
	})
	if strings.Join(visited, " ") != "div skip after" {
		t.Fatalf("visited = %v", visited)
	}
}

func TestWalkAllowsDetachDuringVisit(t *testing.T) {
	div := NewElement("div")
	for i := 0; i < 3; i++ {
		div.AppendChild(NewElement("p"))
	}
	count := 0
	div.Walk(func(n *Node) bool {
		if n.Tag == "p" {
			count++
			n.Detach()
		}
		return true
	})
	if count != 3 {
		t.Fatalf("visited %d, want 3", count)
	}
	if len(div.Children()) != 0 {
		t.Fatal("children not removed")
	}
}

func TestFindAndFindFirst(t *testing.T) {
	doc, _, body, div := buildSample()
	span1 := NewElement("span")
	span2 := NewElement("span")
	div.AppendChild(span1)
	body.AppendChild(span2)
	spans := doc.Find(func(n *Node) bool { return n.Tag == "span" })
	if len(spans) != 2 || spans[0] != span1 || spans[1] != span2 {
		t.Fatalf("find wrong: %v", spans)
	}
	if doc.FindFirst(func(n *Node) bool { return n.Tag == "span" }) != span1 {
		t.Fatal("findfirst wrong")
	}
	if doc.FindFirst(func(n *Node) bool { return n.Tag == "nope" }) != nil {
		t.Fatal("findfirst should be nil for no match")
	}
}

func TestFindExcludesSelf(t *testing.T) {
	div := NewElement("div")
	if len(div.Find(func(n *Node) bool { return n.Tag == "div" })) != 0 {
		t.Fatal("Find must not include the receiver")
	}
}

func TestElementsAndByID(t *testing.T) {
	doc, _, _, div := buildSample()
	if got := doc.Elements("div"); len(got) != 1 || got[0] != div {
		t.Fatal("Elements(div) wrong")
	}
	if got := doc.Elements("*"); len(got) != 3 {
		t.Fatalf("Elements(*) = %d, want 3", len(got))
	}
	if doc.ElementByID("main") != div {
		t.Fatal("ElementByID wrong")
	}
	if doc.ElementByID("missing") != nil {
		t.Fatal("missing id should be nil")
	}
}

func TestBodyHeadDocumentElement(t *testing.T) {
	doc := NewDocument()
	html := NewElement("html")
	head := NewElement("head")
	body := NewElement("body")
	doc.AppendChild(html)
	html.AppendChild(head)
	html.AppendChild(body)
	inner := NewElement("p")
	body.AppendChild(inner)
	if inner.Body() != body || inner.Head() != head || inner.DocumentElement() != html {
		t.Fatal("structural accessors wrong")
	}
}

func TestCountElements(t *testing.T) {
	doc, _, _, _ := buildSample()
	if doc.CountElements() != 3 {
		t.Fatalf("count = %d, want 3", doc.CountElements())
	}
}

func TestPath(t *testing.T) {
	doc := NewDocument()
	html := NewElement("html")
	body := NewElement("body")
	doc.AppendChild(html)
	html.AppendChild(body)
	d1 := NewElement("div")
	d2 := NewElement("div")
	body.AppendChild(d1)
	body.AppendChild(d2)
	p := NewElement("p")
	d2.AppendChild(p)
	if got := p.Path(); got != "/html[1]/body[1]/div[2]/p[1]" {
		t.Fatalf("path = %q", got)
	}
	if NewText("x").Path() != "" {
		t.Fatal("text node path should be empty")
	}
}

func TestPathDoubleDigitIndex(t *testing.T) {
	body := NewElement("body")
	var last *Node
	for i := 0; i < 12; i++ {
		last = NewElement("p")
		body.AppendChild(last)
	}
	if got := last.Path(); got != "/body[1]/p[12]" {
		t.Fatalf("path = %q", got)
	}
}

func TestSortNodes(t *testing.T) {
	doc, _, body, div := buildSample()
	span := NewElement("span")
	div.AppendChild(span)
	in := []*Node{span, body, div, span} // dup + reversed
	out := SortNodes(doc, in)
	if len(out) != 3 || out[0] != body || out[1] != div || out[2] != span {
		t.Fatalf("sorted = %v", tagsOf(out))
	}
}

func TestSortNodesForeign(t *testing.T) {
	doc, _, body, _ := buildSample()
	foreign := NewElement("zz")
	out := SortNodes(doc, []*Node{foreign, body})
	if out[0] != body || out[1] != foreign {
		t.Fatal("foreign nodes should sort last")
	}
}

// Property: a randomly built tree always maintains link invariants.
func TestQuickTreeInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		root := NewElement("root")
		pool := []*Node{root}
		for _, op := range ops {
			target := pool[int(op>>2)%len(pool)]
			switch op % 4 {
			case 0:
				n := NewElement("n")
				target.AppendChild(n)
				pool = append(pool, n)
			case 1:
				n := NewElement("n")
				target.PrependChild(n)
				pool = append(pool, n)
			case 2:
				if target != root {
					target.Detach()
				}
			case 3:
				if target != root && target.Parent != nil {
					target.InsertAfter(NewElement("s"))
				}
			}
		}
		return checkInvariants(root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func checkInvariants(n *Node) bool {
	var prev *Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Parent != n || c.PrevSibling != prev {
			return false
		}
		if !checkInvariants(c) {
			return false
		}
		prev = c
	}
	return n.LastChild == prev
}

func tagsOf(nodes []*Node) string {
	tags := make([]string, len(nodes))
	for i, n := range nodes {
		tags[i] = n.Tag
	}
	return strings.Join(tags, " ")
}
