package quality

import (
	"fmt"
	"strings"

	"msite/internal/attr"
	"msite/internal/spec"
)

// init plugs the "repair" attribute into the attr policy engine:
// administrators attach it to an object (typically body or html) and
// the rule pass runs over that subtree during the attribute phase.
//
// Params:
//
//	rules:  comma-separated rule names, or "all" (default).
//	device: comma-separated device-class names (device.Profile names)
//	        the pass is limited to; empty applies on every device.
func init() {
	attr.RegisterExtension(spec.AttrRepair, applyRepairAttr)
}

// DeviceMatch reports whether a repair attribute's "device" param
// selects the given device class. An empty param matches everything;
// matching is case-insensitive.
func DeviceMatch(param, deviceClass string) bool {
	param = strings.TrimSpace(param)
	if param == "" {
		return true
	}
	for _, want := range strings.Split(param, ",") {
		if strings.EqualFold(strings.TrimSpace(want), strings.TrimSpace(deviceClass)) {
			return true
		}
	}
	return false
}

func applyRepairAttr(ctx attr.ExtensionContext) error {
	if !DeviceMatch(ctx.Attr.Param("device", ""), ctx.Applier.DeviceClass) {
		ctx.Result.Notes = append(ctx.Result.Notes, fmt.Sprintf(
			"object %q: repair skipped (device class %q not in %q)",
			ctx.Object.Name, ctx.Applier.DeviceClass, ctx.Attr.Param("device", "")))
		return nil
	}
	rules, err := ParseRules(ctx.Attr.Param("rules", "all"))
	if err != nil {
		return fmt.Errorf("attr: object %q: %w", ctx.Object.Name, err)
	}
	for _, n := range ctx.Nodes {
		for rule, count := range RepairAll(rules, n) {
			ctx.Result.Notes = append(ctx.Result.Notes, fmt.Sprintf(
				"object %q: repair rule %s made %d fixes", ctx.Object.Name, rule, count))
		}
	}
	return nil
}
