// Package quality asserts that adaptations are *correct*, not just
// fast. It contributes two passes that run over the adapted DOM:
//
//   - a declarative mobile-repair rule pass (rules.go) encoding the
//     classic mobile-adapt checklist — viewport meta injection,
//     fixed-width overflow rewrites, touch-target minimum sizing, and a
//     font-size floor — pluggable per device class through the spec's
//     "repair" attribute and the attr extension registry;
//   - a content-parity validator (parity.go) that inventories text
//     blocks, links, and form controls in the origin DOM versus the
//     adapted entry+subpage closure and scores how much content the
//     adaptation retained.
//
// Both are wired through internal/proxy as a post-attr hook.
package quality

import (
	"fmt"
	"strconv"
	"strings"

	"msite/internal/dom"
)

// Rule is one declarative repair pass over a DOM subtree. Check and
// Apply must be symmetric: after Apply(root) returns, Check(root) must
// report no violations ("repairs re-lint clean").
type Rule interface {
	// Name is the stable identifier used in specs, flags, and metrics.
	Name() string
	// Check lints root without modifying it and returns one
	// human-readable violation per problem found.
	Check(root *dom.Node) []string
	// Apply repairs root in place and returns the number of repairs.
	Apply(root *dom.Node) int
}

// Tunables for the built-in rules.
const (
	// DefaultMaxFixedWidthPx is the widest absolute pixel width the
	// fixed-width rule tolerates before rewriting to a fluid width.
	DefaultMaxFixedWidthPx = 480
	// DefaultFontFloorPx is the smallest inline font size the font-floor
	// rule tolerates.
	DefaultFontFloorPx = 12
	// DefaultTouchTargetPx is the minimum tap-target edge the
	// touch-target rule enforces.
	DefaultTouchTargetPx = 44
	// ViewportContent is the meta viewport content the viewport rule
	// injects.
	ViewportContent = "width=device-width, initial-scale=1"
	// RepairMarkerAttr marks elements the repair pass injected, so rules
	// can recognize their own work and re-lint clean.
	RepairMarkerAttr = "data-msite-repair"
)

// AllRules returns a fresh instance of every built-in rule, in the
// order they should run (viewport first: later rules may synthesize
// markup into the head it ensures).
func AllRules() []Rule {
	return []Rule{
		viewportRule{},
		fixedWidthRule{},
		touchTargetRule{},
		fontFloorRule{},
	}
}

// RuleNames returns the names of every built-in rule in run order.
func RuleNames() []string {
	rules := AllRules()
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name()
	}
	return names
}

// RuleByName returns the built-in rule with the given name.
func RuleByName(name string) (Rule, error) {
	for _, r := range AllRules() {
		if r.Name() == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("quality: unknown repair rule %q (known: %s)",
		name, strings.Join(RuleNames(), ", "))
}

// ParseRules resolves a comma-separated rule list. "all" (or "") means
// every built-in rule; unknown names are an error.
func ParseRules(list string) ([]Rule, error) {
	list = strings.TrimSpace(list)
	if list == "" || list == "all" {
		return AllRules(), nil
	}
	var rules []Rule
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, err := RuleByName(name)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// CheckAll lints root with every rule and returns the violations, each
// prefixed with its rule name.
func CheckAll(rules []Rule, root *dom.Node) []string {
	var out []string
	for _, r := range rules {
		for _, v := range r.Check(root) {
			out = append(out, r.Name()+": "+v)
		}
	}
	return out
}

// RepairAll applies every rule to root and returns the per-rule repair
// counts (rules that made no repairs are omitted).
func RepairAll(rules []Rule, root *dom.Node) map[string]int {
	counts := make(map[string]int)
	for _, r := range rules {
		if n := r.Apply(root); n > 0 {
			counts[r.Name()] += n
		}
	}
	return counts
}

// ---------------------------------------------------------------- viewport

// viewportRule ensures the document carries a device-width viewport
// meta — without it, mobile browsers render at a fake desktop width and
// scale down.
type viewportRule struct{}

func (viewportRule) Name() string { return "viewport" }

func findViewportMeta(root *dom.Node) *dom.Node {
	return root.Root().FindFirst(func(d *dom.Node) bool {
		return d.Type == dom.ElementNode && d.Tag == "meta" &&
			strings.EqualFold(d.AttrOr("name", ""), "viewport")
	})
}

func (viewportRule) Check(root *dom.Node) []string {
	if root.Root().DocumentElement() == nil {
		return nil // fragment: nowhere for a head to live
	}
	m := findViewportMeta(root)
	if m == nil {
		return []string{"missing <meta name=viewport>"}
	}
	if !strings.Contains(m.AttrOr("content", ""), "width=device-width") {
		return []string{fmt.Sprintf("viewport content %q does not fit device width",
			m.AttrOr("content", ""))}
	}
	return nil
}

func (viewportRule) Apply(root *dom.Node) int {
	docEl := root.Root().DocumentElement()
	if docEl == nil {
		return 0
	}
	if m := findViewportMeta(root); m != nil {
		if strings.Contains(m.AttrOr("content", ""), "width=device-width") {
			return 0
		}
		m.SetAttr("content", ViewportContent)
		return 1
	}
	head := root.Head()
	if head == nil {
		head = dom.NewElement("head")
		docEl.PrependChild(head)
	}
	meta := dom.NewElement("meta")
	meta.SetAttr("name", "viewport")
	meta.SetAttr("content", ViewportContent)
	head.AppendChild(meta)
	return 1
}

// ------------------------------------------------------------- fixed-width

// fixedWidthRule rewrites absolute pixel widths wider than the mobile
// viewport into fluid widths so the page stops overflowing sideways.
type fixedWidthRule struct {
	// MaxPx overrides DefaultMaxFixedWidthPx when > 0.
	MaxPx float64
}

func (fixedWidthRule) Name() string { return "fixed-width" }

func (r fixedWidthRule) max() float64 {
	if r.MaxPx > 0 {
		return r.MaxPx
	}
	return DefaultMaxFixedWidthPx
}

// scan is the shared Check/Apply walk; fix selects repair mode.
func (r fixedWidthRule) scan(root *dom.Node, fix bool) (viols []string, count int) {
	limit := r.max()
	root.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		attrPx, attrOver := pxValue(n.AttrOr("width", ""))
		stylePx, styleOver := pxValue(styleProp(n, "width"))
		attrOver = attrOver && attrPx > limit
		styleOver = styleOver && stylePx > limit
		if !attrOver && !styleOver {
			return true
		}
		over := attrPx
		if stylePx > over {
			over = stylePx
		}
		if !fix {
			viols = append(viols, fmt.Sprintf("<%s> fixed width %.0fpx exceeds %.0fpx",
				n.Tag, over, limit))
			return true
		}
		if n.Tag == "img" {
			// Images keep their aspect ratio and shrink to the container.
			n.DelAttr("width")
			n.DelAttr("height")
			if styleOver {
				setStyleProp(n, "width", "100%")
			}
			setStyleProp(n, "max-width", "100%")
			setStyleProp(n, "height", "auto")
		} else {
			if attrOver {
				n.DelAttr("width")
			}
			setStyleProp(n, "width", "100%")
			setStyleProp(n, "max-width", fmt.Sprintf("%.0fpx", over))
		}
		count++
		return true
	})
	return viols, count
}

func (r fixedWidthRule) Check(root *dom.Node) []string {
	viols, _ := r.scan(root, false)
	return viols
}

func (r fixedWidthRule) Apply(root *dom.Node) int {
	_, count := r.scan(root, true)
	return count
}

// ------------------------------------------------------------ touch-target

// touchTargetRule injects a stylesheet that gives links, buttons, and
// form controls a minimum tap-target size, once per document that
// contains interactive elements.
type touchTargetRule struct {
	// MinPx overrides DefaultTouchTargetPx when > 0.
	MinPx int
}

func (touchTargetRule) Name() string { return "touch-target" }

func (r touchTargetRule) min() int {
	if r.MinPx > 0 {
		return r.MinPx
	}
	return DefaultTouchTargetPx
}

func interactiveCount(root *dom.Node) int {
	count := 0
	root.Root().Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		switch n.Tag {
		case "a":
			if n.AttrOr("href", "") != "" {
				count++
			}
		case "button", "select", "textarea":
			count++
		case "input":
			if !strings.EqualFold(n.AttrOr("type", "text"), "hidden") {
				count++
			}
		}
		return true
	})
	return count
}

func findTouchMarker(root *dom.Node) *dom.Node {
	return root.Root().FindFirst(func(d *dom.Node) bool {
		return d.Type == dom.ElementNode && d.Tag == "style" &&
			d.AttrOr(RepairMarkerAttr, "") == "touch-target"
	})
}

// markerHost returns the element the injected stylesheet should live
// in: the head, else the html element, else the (element) root itself.
func markerHost(root *dom.Node) *dom.Node {
	if head := root.Head(); head != nil {
		return head
	}
	if docEl := root.Root().DocumentElement(); docEl != nil {
		return docEl
	}
	if r := root.Root(); r.Type == dom.ElementNode {
		return r
	}
	return nil
}

func (r touchTargetRule) Check(root *dom.Node) []string {
	if markerHost(root) == nil {
		return nil
	}
	n := interactiveCount(root)
	if n == 0 || findTouchMarker(root) != nil {
		return nil
	}
	return []string{fmt.Sprintf("%d interactive elements without touch-target sizing", n)}
}

func (r touchTargetRule) Apply(root *dom.Node) int {
	host := markerHost(root)
	if host == nil || interactiveCount(root) == 0 || findTouchMarker(root) != nil {
		return 0
	}
	px := strconv.Itoa(r.min())
	style := dom.NewElement("style")
	style.SetAttr(RepairMarkerAttr, "touch-target")
	style.SetText(fmt.Sprintf(
		"a, button, select, textarea, input:not([type=hidden]) "+
			"{ min-height: %spx; min-width: %spx; touch-action: manipulation; }", px, px))
	host.AppendChild(style)
	return 1
}

// -------------------------------------------------------------- font-floor

// fontFloorRule raises unreadably small inline font sizes (and legacy
// <font size=1|2>) to a readable floor.
type fontFloorRule struct {
	// FloorPx overrides DefaultFontFloorPx when > 0.
	FloorPx float64
}

func (fontFloorRule) Name() string { return "font-floor" }

func (r fontFloorRule) floor() float64 {
	if r.FloorPx > 0 {
		return r.FloorPx
	}
	return DefaultFontFloorPx
}

func (r fontFloorRule) scan(root *dom.Node, fix bool) (viols []string, count int) {
	floor := r.floor()
	root.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		if px, ok := pxValue(styleProp(n, "font-size")); ok && px < floor {
			if fix {
				setStyleProp(n, "font-size", fmt.Sprintf("%.0fpx", floor))
				count++
			} else {
				viols = append(viols, fmt.Sprintf("<%s> font-size %.0fpx below %.0fpx floor",
					n.Tag, px, floor))
			}
		}
		if n.Tag == "font" {
			if size, err := strconv.Atoi(n.AttrOr("size", "")); err == nil && size > 0 && size <= 2 {
				if fix {
					n.SetAttr("size", "3")
					count++
				} else {
					viols = append(viols, fmt.Sprintf("<font size=%d> below readable floor", size))
				}
			}
		}
		return true
	})
	return viols, count
}

func (r fontFloorRule) Check(root *dom.Node) []string {
	viols, _ := r.scan(root, false)
	return viols
}

func (r fontFloorRule) Apply(root *dom.Node) int {
	_, count := r.scan(root, true)
	return count
}

// ------------------------------------------------------------------ style

// styleProp returns the value of a property in n's inline style, or "".
func styleProp(n *dom.Node, key string) string {
	for _, prop := range strings.Split(n.AttrOr("style", ""), ";") {
		k, v, ok := strings.Cut(prop, ":")
		if ok && strings.EqualFold(strings.TrimSpace(k), key) {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// setStyleProp sets a property in n's inline style, replacing an
// existing declaration and preserving the others.
func setStyleProp(n *dom.Node, key, val string) {
	var props []string
	replaced := false
	for _, prop := range strings.Split(n.AttrOr("style", ""), ";") {
		k, _, ok := strings.Cut(prop, ":")
		if strings.TrimSpace(prop) == "" {
			continue
		}
		if ok && strings.EqualFold(strings.TrimSpace(k), key) {
			if !replaced {
				props = append(props, key+": "+val)
				replaced = true
			}
			continue
		}
		props = append(props, strings.TrimSpace(prop))
	}
	if !replaced {
		props = append(props, key+": "+val)
	}
	n.SetAttr("style", strings.Join(props, "; "))
}

// pxValue parses an absolute pixel measure: "728", "728px", "728.5px".
// Percentages, other units, and non-numeric values report false.
func pxValue(v string) (float64, bool) {
	v = strings.TrimSpace(strings.ToLower(v))
	v = strings.TrimSuffix(v, "px")
	if v == "" || strings.ContainsAny(v, "%a-z ") {
		return 0, false
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 {
		return 0, false
	}
	return f, true
}
