package quality

import (
	"strings"
	"testing"

	"msite/internal/html"
	"msite/internal/spec"
)

const parityOrigin = `<html><body>
<p>A long paragraph of body copy that must survive adaptation.</p>
<p>Another independent block of meaningful text content.</p>
<a href="/forum/1">General Woodworking</a>
<a href="/forum/2">Finishing and Refinishing</a>
<form action="/login"><input type="text" name="username"><input type="password" name="password">
<input type="hidden" name="csrf" value="x"><select name="jump"><option>one</option></select></form>
</body></html>`

func TestParityIdenticalDocsScoreOne(t *testing.T) {
	origin := InventoryOf(html.Tidy(parityOrigin))
	adapted := InventoryOf(html.Tidy(parityOrigin))
	p := Compare(origin, adapted)
	if p.Score != 1 || p.MissingItems != 0 {
		t.Fatalf("score = %v, missing = %d: %+v", p.Score, p.MissingItems, p)
	}
	if p.TotalItems == 0 {
		t.Fatal("empty inventory")
	}
	// Hidden inputs are not user-visible content.
	for k := range origin.Forms {
		if strings.Contains(k, "hidden") {
			t.Fatalf("hidden input counted: %q", k)
		}
	}
}

func TestParityDetectsEachCategory(t *testing.T) {
	origin := html.Tidy(parityOrigin)
	cases := []struct {
		name, drop string
		check      func(p *Parity) bool
	}{
		{"text", "Another independent block of meaningful text content.",
			func(p *Parity) bool { return p.TextMissing == 1 && len(p.MissingText) == 1 }},
		{"link", `<a href="/forum/2">Finishing and Refinishing</a>`,
			func(p *Parity) bool { return p.LinksMissing == 1 }},
		{"form", `<input type="password" name="password">`,
			func(p *Parity) bool { return p.FormsMissing == 1 }},
	}
	for _, tc := range cases {
		mutated := strings.Replace(parityOrigin, tc.drop, "", 1)
		if mutated == parityOrigin {
			t.Fatalf("%s: mutation did not apply", tc.name)
		}
		p := Compare(InventoryOf(origin), InventoryOf(html.Tidy(mutated)))
		if !tc.check(p) || p.Score >= 1 {
			t.Errorf("%s drop not detected: %+v", tc.name, p)
		}
		if len(p.Notes()) < 2 {
			t.Errorf("%s: notes missing detail: %v", tc.name, p.Notes())
		}
	}
}

func TestParitySplitAcrossSubpagesStillCounts(t *testing.T) {
	entry := html.Tidy(`<html><body><p>A long paragraph of body copy that must survive adaptation.</p></body></html>`)
	sub := html.Tidy(`<html><body>
<p>Another independent block of meaningful text content.</p>
<a href="/forum/1">General Woodworking</a>
<a href="/forum/2">Finishing and Refinishing</a>
<form action="/login"><input type="text" name="username"><input type="password" name="password">
<select name="jump"><option>one</option></select></form>
</body></html>`)
	p := Compare(InventoryOf(html.Tidy(parityOrigin)), InventoryOf(entry, sub))
	if p.Score != 1 {
		t.Fatalf("closure across subpages scored %v: %+v", p.Score, p)
	}
}

func TestSanctionedDropsAreExempt(t *testing.T) {
	origin := html.Tidy(`<html><body>
<div id="ad"><a href="/sponsor">A very insistent sponsor banner link</a></div>
<p>Body copy that is genuinely part of the page content.</p>
</body></html>`)
	sp := &spec.Spec{Name: "s", Origin: "http://o/", Objects: []spec.Object{
		{Name: "ad", Selector: "#ad", Attributes: []spec.Attribute{{Type: spec.AttrRemove}}},
	}}
	inv := InventoryOf(origin)
	inv.Subtract(SanctionedInventory(sp, origin))
	adapted := html.Tidy(`<html><body><p>Body copy that is genuinely part of the page content.</p></body></html>`)
	p := Compare(inv, InventoryOf(adapted))
	if p.Score != 1 || p.MissingItems != 0 {
		t.Fatalf("sanctioned removal read as a failure: %+v", p)
	}
}

func TestParityScoreArithmetic(t *testing.T) {
	origin := NewInventory()
	origin.Text["kept text block number one"] = 1
	origin.Text["dropped text block number two"] = 1
	origin.Links["/a|kept"] = 1
	origin.Links["/b|dropped"] = 1
	adapted := NewInventory()
	adapted.Text["kept text block number one"] = 1
	adapted.Links["/a|kept"] = 1
	p := Compare(origin, adapted)
	if p.TotalItems != 4 || p.MissingItems != 2 || p.Score != 0.5 {
		t.Fatalf("got %+v", p)
	}
	if p.Ok(0.75) || !p.Ok(0.5) {
		t.Fatalf("Ok thresholds wrong: %+v", p)
	}
}
