package quality

import (
	"strings"
	"testing"

	"msite/internal/dom"
	"msite/internal/html"
)

// brokenPage violates every built-in rule: no viewport meta, fixed
// widths beyond the mobile viewport (attr and inline style), tiny fonts
// (inline style and legacy <font>), and interactive elements with no
// touch-target sizing.
const brokenPage = `<!DOCTYPE html>
<html><head><title>Desktop-only page</title></head><body>
<table width="1200"><tr><td>
<img src="/hero.png" width="900" height="300">
<div style="width: 700px; color: #333">A column that assumes a desktop monitor width.</div>
<span style="font-size: 9px">tiny legal boilerplate nobody can read</span>
<font size="1">ancient markup footnote</font>
<a href="/a">first link</a> <a href="/b">second link</a>
<form action="/go"><input type="text" name="q"><input type="submit" value="Go"></form>
</td></tr></table>
</body></html>`

func TestEveryRuleFiresAndRelintsClean(t *testing.T) {
	doc := html.Tidy(brokenPage)
	rules := AllRules()

	before := CheckAll(rules, doc)
	if len(before) == 0 {
		t.Fatal("broken page lints clean before repair")
	}
	counts := RepairAll(rules, doc)
	for _, r := range rules {
		if counts[r.Name()] == 0 {
			t.Errorf("rule %s made no repairs on the broken page", r.Name())
		}
	}
	if after := CheckAll(rules, doc); len(after) != 0 {
		t.Fatalf("page does not re-lint clean after repair: %v", after)
	}
	// Second application is idempotent.
	if again := RepairAll(rules, doc); len(again) != 0 {
		t.Fatalf("repair is not idempotent: %v", again)
	}
}

func TestViewportRuleSynthesizesHead(t *testing.T) {
	doc := html.Tidy(`<html><body><p>no head here at all</p></body></html>`)
	if doc.Head() != nil {
		// html.Tidy may synthesize a head itself; strip it to force the
		// rule down the synthesis path.
		doc.Head().Detach()
	}
	r := viewportRule{}
	if n := r.Apply(doc); n != 1 {
		t.Fatalf("Apply = %d, want 1", n)
	}
	m := findViewportMeta(doc)
	if m == nil || !strings.Contains(m.AttrOr("content", ""), "width=device-width") {
		t.Fatalf("viewport meta not injected: %s", html.Render(doc))
	}
	if len(r.Check(doc)) != 0 {
		t.Fatal("viewport rule still complains after synthesis")
	}
}

func TestViewportRuleFixesBadContent(t *testing.T) {
	doc := html.Tidy(`<html><head><meta name="viewport" content="width=1024"></head><body></body></html>`)
	r := viewportRule{}
	if len(r.Check(doc)) == 0 {
		t.Fatal("fixed-width viewport content not flagged")
	}
	if n := r.Apply(doc); n != 1 {
		t.Fatalf("Apply = %d, want 1", n)
	}
	if got := findViewportMeta(doc).AttrOr("content", ""); got != ViewportContent {
		t.Fatalf("content = %q", got)
	}
}

func TestFixedWidthLeavesFluidAndNarrowAlone(t *testing.T) {
	doc := html.Tidy(`<html><body>
		<table width="100%"><tr><td>fluid</td></tr></table>
		<img src="/logo.png" width="320" height="60">
		<div style="width: 50%">half</div>
	</body></html>`)
	r := fixedWidthRule{}
	if v := r.Check(doc); len(v) != 0 {
		t.Fatalf("false positives: %v", v)
	}
	if n := r.Apply(doc); n != 0 {
		t.Fatalf("Apply = %d, want 0", n)
	}
}

func TestFixedWidthRewritesImgStyleWidth(t *testing.T) {
	doc := html.Tidy(`<html><body><img src="/x.png" style="width: 900px"></body></html>`)
	r := fixedWidthRule{}
	if n := r.Apply(doc); n != 1 {
		t.Fatalf("Apply = %d, want 1", n)
	}
	if v := r.Check(doc); len(v) != 0 {
		t.Fatalf("img style width not neutralized: %v", v)
	}
}

func TestTouchTargetSkipsNonInteractiveDocs(t *testing.T) {
	doc := html.Tidy(`<html><body><p>plain prose, nothing to tap</p></body></html>`)
	r := touchTargetRule{}
	if v := r.Check(doc); len(v) != 0 {
		t.Fatalf("false positive: %v", v)
	}
	if n := r.Apply(doc); n != 0 {
		t.Fatalf("Apply = %d, want 0", n)
	}
}

func TestParseRules(t *testing.T) {
	all, err := ParseRules("all")
	if err != nil || len(all) != len(AllRules()) {
		t.Fatalf("ParseRules(all) = %d rules, err %v", len(all), err)
	}
	two, err := ParseRules("viewport, font-floor")
	if err != nil || len(two) != 2 {
		t.Fatalf("ParseRules subset = %d rules, err %v", len(two), err)
	}
	if _, err := ParseRules("viewport,bogus"); err == nil {
		t.Fatal("unknown rule name not rejected")
	}
}

func TestStyleHelpers(t *testing.T) {
	n := dom.NewElement("div")
	n.SetAttr("style", "color: red; width: 700px")
	if got := styleProp(n, "width"); got != "700px" {
		t.Fatalf("styleProp = %q", got)
	}
	setStyleProp(n, "width", "100%")
	setStyleProp(n, "max-width", "700px")
	if got := n.AttrOr("style", ""); got != "color: red; width: 100%; max-width: 700px" {
		t.Fatalf("style = %q", got)
	}
	if _, ok := pxValue("50%"); ok {
		t.Fatal("pxValue accepted a percentage")
	}
	if v, ok := pxValue(" 728px "); !ok || v != 728 {
		t.Fatalf("pxValue(728px) = %v, %v", v, ok)
	}
}
