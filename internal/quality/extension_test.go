package quality

import (
	"strings"
	"testing"

	"msite/internal/attr"
	"msite/internal/html"
	"msite/internal/spec"
)

// TestRepairAttrThroughApplier drives the spec "repair" attribute end
// to end through the attr policy engine: the extension registered in
// init picks it up from the default switch case.
func TestRepairAttrThroughApplier(t *testing.T) {
	sp := &spec.Spec{Name: "q", Origin: "http://o/", Objects: []spec.Object{
		{Name: "page", Selector: "body", Attributes: []spec.Attribute{
			{Type: spec.AttrRepair, Params: map[string]string{"rules": "viewport,fixed-width"}},
		}},
	}}
	if err := sp.Validate(); err != nil {
		t.Fatalf("repair attr rejected by spec validation: %v", err)
	}
	doc := html.Tidy(brokenPage)
	a := &attr.Applier{ViewportWidth: 800}
	res, err := a.Apply(sp, doc)
	if err != nil {
		t.Fatal(err)
	}
	out := html.Render(res.Doc)
	if !strings.Contains(out, "width=device-width") {
		t.Fatalf("viewport rule did not run through the attr pass: %s", out)
	}
	if strings.Contains(out, `width="1200"`) {
		t.Fatal("fixed-width rule did not run through the attr pass")
	}
	// font-floor was not selected, so the tiny font survives.
	if !strings.Contains(out, "font-size: 9px") {
		t.Fatal("unselected rule ran anyway")
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "repair rule") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no repair notes recorded: %v", res.Notes)
	}
}

func TestRepairAttrDeviceGating(t *testing.T) {
	sp := &spec.Spec{Name: "q", Origin: "http://o/", Objects: []spec.Object{
		{Name: "page", Selector: "body", Attributes: []spec.Attribute{
			{Type: spec.AttrRepair, Params: map[string]string{"device": "iPhone 4"}},
		}},
	}}
	doc := html.Tidy(brokenPage)
	a := &attr.Applier{ViewportWidth: 800, DeviceClass: "Desktop"}
	res, err := a.Apply(sp, doc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(html.Render(res.Doc), "width=device-width") {
		t.Fatal("repair ran for a device class the spec excluded")
	}
	skipped := false
	for _, n := range res.Notes {
		if strings.Contains(n, "repair skipped") {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("no skip note: %v", res.Notes)
	}

	a.DeviceClass = "iPhone 4"
	res, err = a.Apply(sp, html.Tidy(brokenPage))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html.Render(res.Doc), "width=device-width") {
		t.Fatal("repair did not run for the selected device class")
	}
}

func TestRepairAttrUnknownRuleFails(t *testing.T) {
	sp := &spec.Spec{Name: "q", Origin: "http://o/", Objects: []spec.Object{
		{Name: "page", Selector: "body", Attributes: []spec.Attribute{
			{Type: spec.AttrRepair, Params: map[string]string{"rules": "bogus"}},
		}},
	}}
	a := &attr.Applier{ViewportWidth: 800}
	if _, err := a.Apply(sp, html.Tidy(brokenPage)); err == nil {
		t.Fatal("unknown repair rule accepted")
	}
}

func TestDeviceMatch(t *testing.T) {
	cases := []struct {
		param, class string
		want         bool
	}{
		{"", "Desktop", true},
		{"iPhone 4", "iphone 4", true},
		{"iPhone 4, iPad 1", "iPad 1", true},
		{"iPhone 4", "Desktop", false},
	}
	for _, tc := range cases {
		if got := DeviceMatch(tc.param, tc.class); got != tc.want {
			t.Errorf("DeviceMatch(%q, %q) = %v", tc.param, tc.class, got)
		}
	}
}
