package quality

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"msite/internal/filter"
	"msite/internal/html"
	"msite/internal/origin"
	"msite/internal/spec"
)

// benignFilters are source-level transforms that, by contract, may
// restructure markup but never remove user-visible content.
var benignFilters = []spec.Filter{
	{Type: "doctype", Params: map[string]string{"value": "html"}},
	{Type: "strip-scripts"},
	{Type: "strip-css"},
	{Type: "rewrite-images", Params: map[string]string{"prefix": "/lowfi"}},
}

// TestPropertyFilterParsePreservesInventory is the satellite property
// test: filter.Apply composed with a DOM parse must never lose text,
// link, or form inventory on generated origin pages. It sweeps seeded
// variants of both origin generators (the same page corpus the benches
// adapt), so a filter whose pattern starts eating surrounding markup
// shows up as a concrete missing-item diff. CI runs the whole test job
// under -race.
func TestPropertyFilterParsePreservesInventory(t *testing.T) {
	var pages []struct{ name, path, body string }
	for seed := int64(1); seed <= 4; seed++ {
		cfg := origin.DefaultForumConfig()
		cfg.Seed = seed
		forum := origin.NewForum(cfg)
		for _, path := range []string{"/", "/forumdisplay.php?f=2"} {
			rec := httptest.NewRecorder()
			forum.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			pages = append(pages, struct{ name, path, body string }{
				fmt.Sprintf("forum seed %d", seed), path, rec.Body.String()})
		}
		ccfg := origin.DefaultClassifiedsConfig()
		ccfg.Seed = seed
		cls := origin.NewClassifieds(ccfg)
		for _, path := range []string{"/", "/search/?q=bicycle"} {
			rec := httptest.NewRecorder()
			cls.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			pages = append(pages, struct{ name, path, body string }{
				fmt.Sprintf("classifieds seed %d", seed), path, rec.Body.String()})
		}
	}

	for _, page := range pages {
		origInv := InventoryOf(html.Tidy(page.body))
		filtered, err := filter.Apply(page.body, benignFilters)
		if err != nil {
			t.Fatalf("%s %s: %v", page.name, page.path, err)
		}
		p := Compare(origInv, InventoryOf(html.Tidy(filtered)))
		if p.TextMissing > 0 || p.LinksMissing > 0 || p.FormsMissing > 0 {
			t.Errorf("%s %s: benign filters lost content: %+v", page.name, page.path, p)
		}
		if origInv.Total() == 0 {
			t.Errorf("%s %s: empty origin inventory (test is vacuous)", page.name, page.path)
		}
	}
}
