package quality

import (
	"fmt"
	"sort"
	"strings"

	"msite/internal/dom"
	"msite/internal/jq"
	"msite/internal/spec"
	"msite/internal/xpath"
)

// MinTextLen is the shortest normalized text block the inventory counts.
// Shorter runs are separators, icons, and single-word labels whose loss
// is not a content regression.
const MinTextLen = 12

// diffSample caps how many missing items a Parity report carries per
// category; the counts are always exact.
const diffSample = 8

// Inventory is a multiset of the user-visible content in a DOM tree:
// text blocks, links, and form controls. Keys are normalized so the
// same content found in the origin and in the adaptation compares
// equal even after restructuring.
type Inventory struct {
	// Text maps whitespace-normalized text blocks (>= MinTextLen) to
	// occurrence counts.
	Text map[string]int
	// Links maps "href|text" to occurrence counts.
	Links map[string]int
	// Forms maps "tag:type:name" to occurrence counts.
	Forms map[string]int
}

// NewInventory returns an empty inventory.
func NewInventory() *Inventory {
	return &Inventory{
		Text:  make(map[string]int),
		Links: make(map[string]int),
		Forms: make(map[string]int),
	}
}

// InventoryOf inventories every given root. Passing the adapted entry
// document plus every subpage document inventories the full adapted
// closure — content moved to a subpage still counts as retained.
func InventoryOf(roots ...*dom.Node) *Inventory {
	inv := NewInventory()
	for _, r := range roots {
		if r != nil {
			inv.Add(r)
		}
	}
	return inv
}

func normText(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Add walks root and records its content. Script, style, and noscript
// subtrees are code, not copy, and are skipped.
func (inv *Inventory) Add(root *dom.Node) {
	root.Walk(func(n *dom.Node) bool {
		switch n.Type {
		case dom.ElementNode:
			switch n.Tag {
			case "script", "style", "noscript":
				return false
			case "a":
				if href := n.AttrOr("href", ""); href != "" {
					inv.Links[href+"|"+normText(n.Text())]++
				}
			case "input":
				typ := strings.ToLower(n.AttrOr("type", "text"))
				if typ != "hidden" {
					inv.Forms["input:"+typ+":"+n.AttrOr("name", "")]++
				}
			case "select", "textarea", "button":
				inv.Forms[n.Tag+"::"+n.AttrOr("name", "")]++
			}
		case dom.TextNode:
			if t := normText(n.Data); len(t) >= MinTextLen {
				inv.Text[t]++
			}
		}
		return true
	})
}

// Subtract removes other's counts from inv, dropping keys that reach
// zero — used to exempt sanctioned drops from the origin inventory.
func (inv *Inventory) Subtract(other *Inventory) {
	sub := func(dst, src map[string]int) {
		for k, n := range src {
			if dst[k] -= n; dst[k] <= 0 {
				delete(dst, k)
			}
		}
	}
	sub(inv.Text, other.Text)
	sub(inv.Links, other.Links)
	sub(inv.Forms, other.Forms)
}

// Total returns the number of distinct inventory items.
func (inv *Inventory) Total() int {
	return len(inv.Text) + len(inv.Links) + len(inv.Forms)
}

// SanctionedInventory inventories the origin subtrees the spec
// deliberately drops or re-renders — remove, replace-with-markup,
// thumbnail, and pre-rendered/partial-CSS subpages (whose content
// survives as a rendered image and search index, not DOM text). The
// result is subtracted from the origin inventory so administrator
// intent never reads as a parity failure.
func SanctionedInventory(sp *spec.Spec, origin *dom.Node) *Inventory {
	inv := NewInventory()
	if sp == nil || origin == nil {
		return inv
	}
	for _, obj := range sp.Objects {
		sanctioned := false
		for _, at := range obj.Attributes {
			switch at.Type {
			case spec.AttrRemove, spec.AttrThumbnail, spec.AttrPreRender, spec.AttrPartialCSS:
				sanctioned = true
			case spec.AttrSubpage:
				// Pre-rendering can also ride as a subpage param.
				sanctioned = sanctioned || at.Param("prerender", "") == "true"
			case spec.AttrReplace:
				sanctioned = sanctioned || at.Param("html", "") != ""
			}
		}
		if !sanctioned {
			continue
		}
		for _, n := range locateNodes(origin, obj) {
			inv.Add(n)
		}
	}
	return inv
}

// locateNodes mirrors attr's object resolution (CSS selector first,
// XPath otherwise); resolution errors yield no nodes — the attr pass
// itself will surface them.
func locateNodes(doc *dom.Node, obj spec.Object) []*dom.Node {
	if obj.Selector != "" {
		sel := jq.Select(doc, obj.Selector)
		if sel.Err() != nil {
			return nil
		}
		return sel.Nodes()
	}
	expr, err := xpath.Compile(obj.XPath)
	if err != nil {
		return nil
	}
	return expr.Select(doc)
}

// Parity is the result of comparing an origin inventory against the
// adapted closure's inventory. Score is presence-based: the fraction of
// distinct origin items still present anywhere in the adaptation.
type Parity struct {
	Score        float64 `json:"score"`
	TotalItems   int     `json:"total_items"`
	MissingItems int     `json:"missing_items"`
	TextMissing  int     `json:"text_missing"`
	LinksMissing int     `json:"links_missing"`
	FormsMissing int     `json:"forms_missing"`
	// Samples of missing items, capped at diffSample per category.
	MissingText  []string `json:"missing_text,omitempty"`
	MissingLinks []string `json:"missing_links,omitempty"`
	MissingForms []string `json:"missing_forms,omitempty"`
}

// Compare scores how much of origin's content adapted retains.
func Compare(origin, adapted *Inventory) *Parity {
	p := &Parity{Score: 1, TotalItems: origin.Total()}
	missing := func(o, a map[string]int) (int, []string) {
		var keys []string
		for k := range o {
			if a[k] == 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		count := len(keys)
		if len(keys) > diffSample {
			keys = keys[:diffSample]
		}
		for i, k := range keys {
			if len(k) > 96 {
				keys[i] = k[:96] + "…"
			}
		}
		return count, keys
	}
	p.TextMissing, p.MissingText = missing(origin.Text, adapted.Text)
	p.LinksMissing, p.MissingLinks = missing(origin.Links, adapted.Links)
	p.FormsMissing, p.MissingForms = missing(origin.Forms, adapted.Forms)
	p.MissingItems = p.TextMissing + p.LinksMissing + p.FormsMissing
	if p.TotalItems > 0 {
		p.Score = float64(p.TotalItems-p.MissingItems) / float64(p.TotalItems)
	}
	return p
}

// Ok reports whether the parity score meets the threshold.
func (p *Parity) Ok(min float64) bool { return p.Score >= min }

// Notes renders the report as pipeline note strings: a summary line
// plus one line per missing-item sample.
func (p *Parity) Notes() []string {
	notes := []string{fmt.Sprintf(
		"parity: score %.4f (%d/%d items retained; missing %d text, %d links, %d forms)",
		p.Score, p.TotalItems-p.MissingItems, p.TotalItems,
		p.TextMissing, p.LinksMissing, p.FormsMissing)}
	for _, s := range p.MissingText {
		notes = append(notes, "parity: missing text: "+s)
	}
	for _, s := range p.MissingLinks {
		notes = append(notes, "parity: missing link: "+s)
	}
	for _, s := range p.MissingForms {
		notes = append(notes, "parity: missing form control: "+s)
	}
	return notes
}
