package device

import (
	"testing"
	"time"
)

func TestIsMobile(t *testing.T) {
	mobile := []string{
		BlackBerryTour.UserAgent,
		IPhone4.UserAgent,
		IPodTouch3G.UserAgent,
		IPad1.UserAgent,
		"Mozilla/5.0 (Linux; U; Android 2.2) AppleWebKit/533.1 Mobile Safari/533.1",
		"Opera/9.80 (J2ME/MIDP; Opera Mini/5.0) Presto/2.4",
	}
	for _, ua := range mobile {
		if !IsMobile(ua) {
			t.Errorf("IsMobile(%q) = false", ua)
		}
	}
	if IsMobile(Desktop.UserAgent) {
		t.Error("desktop UA flagged mobile")
	}
	if IsMobile("") {
		t.Error("empty UA flagged mobile")
	}
}

func TestDetect(t *testing.T) {
	cases := map[string]string{
		BlackBerryTour.UserAgent:  "BlackBerry Tour",
		BlackBerryStorm.UserAgent: "BlackBerry Storm",
		IPhone4.UserAgent:         "iPhone 4",
		IPodTouch3G.UserAgent:     "iPod Touch 3G",
		IPad1.UserAgent:           "iPad 1",
		Desktop.UserAgent:         "Desktop",
		"SomethingWithSymbian OS": "Generic Mobile",
		"curl/7.88":               "Desktop",
	}
	for ua, want := range cases {
		if got := Detect(ua).Name; got != want {
			t.Errorf("Detect(%q) = %q, want %q", ua, got, want)
		}
	}
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 6 {
		t.Fatalf("profiles = %d", len(ps))
	}
	for _, p := range ps {
		if p.Name == "" || p.ViewportW <= 0 || p.CPUFactor <= 0 {
			t.Errorf("incomplete profile: %+v", p)
		}
	}
}

// forumComplexity approximates the §4.2 entry page: 224,477 bytes, ~12
// external scripts, dozens of images, a deep table DOM.
var forumComplexity = PageComplexity{
	Bytes:      224_477,
	Requests:   48,
	Elements:   1500,
	Scripts:    12,
	Images:     35,
	StyleRules: 200,
}

func TestClientCPUTimeCalibration(t *testing.T) {
	desktop := Desktop.ClientCPUTime(forumComplexity)
	// Calibrated to land near the paper's desktop row (1.5 s total, of
	// which most is client CPU).
	if desktop < 700*time.Millisecond || desktop > 1600*time.Millisecond {
		t.Fatalf("desktop CPU = %v, want ≈1 s", desktop)
	}
	bb := BlackBerryTour.ClientCPUTime(forumComplexity)
	if ratio := float64(bb) / float64(desktop); ratio < 12.5 || ratio > 13.5 {
		t.Fatalf("BlackBerry/desktop ratio = %v, want ≈13", ratio)
	}
}

func TestClientCPUTimeMonotoneInComplexity(t *testing.T) {
	small := PageComplexity{Bytes: 10_000, Elements: 50, Scripts: 0, Images: 2}
	if Desktop.ClientCPUTime(small) >= Desktop.ClientCPUTime(forumComplexity) {
		t.Fatal("simpler page should cost less")
	}
}

func TestClientCPUTimeOrdering(t *testing.T) {
	// Devices must order by CPUFactor on the same page.
	prev := time.Duration(0)
	for _, p := range []Profile{Desktop, IPad1, IPhone4, IPodTouch3G, BlackBerryStorm, BlackBerryTour} {
		got := p.ClientCPUTime(forumComplexity)
		if got <= prev {
			t.Fatalf("%s (%v) should exceed previous (%v)", p.Name, got, prev)
		}
		prev = got
	}
}

func TestAJAXSupportFlags(t *testing.T) {
	if BlackBerryTour.SupportsAJAX || BlackBerryStorm.SupportsAJAX {
		t.Fatal("BlackBerry browsers must not support AJAX (§4.4)")
	}
	if !IPhone4.SupportsAJAX || !IPad1.SupportsAJAX {
		t.Fatal("iOS devices must support AJAX")
	}
}
