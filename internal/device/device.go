// Package device provides mobile client detection heuristics and the
// per-device performance models used to reproduce the paper's Table 1.
//
// Detection follows the common practice the paper describes (§3.2
// "Mobile client detection"): a set of user-agent heuristics kept in one
// table. The performance model substitutes for the physical BlackBerry
// Tour / iPhone 4 / iPod Touch hardware of the evaluation: client-side
// wall-clock time is modeled as network transfer time plus client CPU
// time, where CPU time scales a measured desktop render cost by a
// per-device slowdown factor calibrated to the devices' clock speeds and
// browser generations.
package device

import (
	"strings"
	"time"
)

// Profile describes one client device class.
type Profile struct {
	// Name is the display name used in experiment tables.
	Name string
	// UserAgent is a representative UA string for simulation.
	UserAgent string
	// ViewportW and ViewportH are the usable browser area in pixels.
	ViewportW, ViewportH int
	// CPUFactor scales desktop client render time: a page whose parse,
	// style, layout, and paint costs a desktop browser 1 s costs this
	// device CPUFactor seconds.
	CPUFactor float64
	// SupportsAJAX reports whether the stock browser runs asynchronous
	// JavaScript (§4.4: BlackBerry-era browsers do not).
	SupportsAJAX bool
	// Mobile reports whether the proxy should treat the client as
	// resource-constrained.
	Mobile bool
}

// The device classes of the paper's evaluation, plus desktop.
var (
	// BlackBerryTour is the 528 MHz device of Table 1 (20 s page load).
	BlackBerryTour = Profile{
		Name:      "BlackBerry Tour",
		UserAgent: "BlackBerry9630/5.0.0.419 Profile/MIDP-2.1 Configuration/CLDC-1.1",
		ViewportW: 480, ViewportH: 325,
		CPUFactor:    13.0,
		SupportsAJAX: false,
		Mobile:       true,
	}
	// BlackBerryStorm renders the adapted login subpage in Fig. 5.
	BlackBerryStorm = Profile{
		Name:      "BlackBerry Storm",
		UserAgent: "BlackBerry9530/4.7.0.167 Profile/MIDP-2.0 Configuration/CLDC-1.1",
		ViewportW: 480, ViewportH: 360,
		CPUFactor:    12.0,
		SupportsAJAX: false,
		Mobile:       true,
	}
	// IPhone4 appears in Table 1 via 3G and WiFi rows.
	IPhone4 = Profile{
		Name:      "iPhone 4",
		UserAgent: "Mozilla/5.0 (iPhone; U; CPU iPhone OS 4_0 like Mac OS X) AppleWebKit/532.9 Mobile/8A293 Safari/6531.22.7",
		ViewportW: 320, ViewportH: 460,
		CPUFactor:    2.6,
		SupportsAJAX: true,
		Mobile:       true,
	}
	// IPodTouch3G is the 600 MHz WebKit device (4.5 s over WiFi).
	IPodTouch3G = Profile{
		Name:      "iPod Touch 3G",
		UserAgent: "Mozilla/5.0 (iPod; U; CPU iPhone OS 3_1 like Mac OS X) AppleWebKit/528.18 Mobile/7C145 Safari/528.16",
		ViewportW: 320, ViewportH: 460,
		CPUFactor:    2.8,
		SupportsAJAX: true,
		Mobile:       true,
	}
	// IPad1 is the §4.5 CraigsList evaluation device.
	IPad1 = Profile{
		Name:      "iPad 1",
		UserAgent: "Mozilla/5.0 (iPad; U; CPU OS 3_2 like Mac OS X) AppleWebKit/531.21.10 Mobile/7B334b Safari/531.21.10",
		ViewportW: 1024, ViewportH: 768,
		CPUFactor:    2.0,
		SupportsAJAX: true,
		Mobile:       true,
	}
	// Desktop is the grounded comparison row (1.5 s page load).
	Desktop = Profile{
		Name:      "Desktop",
		UserAgent: "Mozilla/5.0 (Windows NT 6.0) AppleWebKit/535.1 Safari/535.1",
		ViewportW: 1280, ViewportH: 900,
		CPUFactor:    1.0,
		SupportsAJAX: true,
		Mobile:       false,
	}
)

// Profiles lists every built-in device class.
func Profiles() []Profile {
	return []Profile{
		BlackBerryTour, BlackBerryStorm, IPhone4, IPodTouch3G, IPad1, Desktop,
	}
}

// mobileMarkers are the UA substrings of the detection heuristic table,
// in the style of the detectmobilebrowsers lists the paper references.
var mobileMarkers = []string{
	"blackberry", "iphone", "ipod", "ipad", "android", "opera mini",
	"opera mobi", "windows ce", "windows phone", "symbian", "palm",
	"webos", "nokia", "midp", "cldc", "mobile", "fennec", "minimo",
	"netfront", "up.browser", "danger hiptop",
}

// IsMobile applies the heuristic table to a User-Agent header.
func IsMobile(userAgent string) bool {
	ua := strings.ToLower(userAgent)
	for _, marker := range mobileMarkers {
		if strings.Contains(ua, marker) {
			return true
		}
	}
	return false
}

// Detect maps a User-Agent to the closest built-in profile. Unknown
// mobile agents map to a generic mobile profile; everything else maps to
// Desktop.
func Detect(userAgent string) Profile {
	ua := strings.ToLower(userAgent)
	switch {
	case strings.Contains(ua, "blackberry9630"):
		return BlackBerryTour
	case strings.Contains(ua, "blackberry"):
		return BlackBerryStorm
	case strings.Contains(ua, "ipad"):
		return IPad1
	case strings.Contains(ua, "ipod"):
		// Checked before iPhone: iPod UAs say "CPU iPhone OS".
		return IPodTouch3G
	case strings.Contains(ua, "iphone"):
		return IPhone4
	case IsMobile(userAgent):
		generic := IPhone4
		generic.Name = "Generic Mobile"
		return generic
	default:
		return Desktop
	}
}

// PageComplexity summarizes the client-side cost drivers of a page.
type PageComplexity struct {
	// Bytes received from the network, inclusive of subresources.
	Bytes int
	// Requests is the number of HTTP requests (page + subresources).
	Requests int
	// Elements is the DOM element count.
	Elements int
	// Scripts is the number of external scripts.
	Scripts int
	// Images is the number of images.
	Images int
	// StyleRules is the number of CSS rules in play.
	StyleRules int
}

// Client CPU model coefficients, calibrated so the paper's ≈224 KB /
// ≈1500-element / 12-script forum page costs a desktop browser ≈1.2 s of
// CPU (plus ≈0.3 s of broadband network = the paper's 1.5 s row).
const (
	costPerByte      = 300 * time.Nanosecond  // HTML/CSS/JS parse per byte
	costPerElement   = 350 * time.Microsecond // style+layout+paint per element
	costPerScript    = 25 * time.Millisecond  // script fetch/compile/execute
	costPerImage     = 4 * time.Millisecond   // decode + composite
	costPerStyleRule = 120 * time.Microsecond // selector matching
)

// ClientCPUTime models the device-side parse/style/layout/paint time.
func (p Profile) ClientCPUTime(c PageComplexity) time.Duration {
	base := time.Duration(c.Bytes) * costPerByte
	base += time.Duration(c.Elements) * costPerElement
	base += time.Duration(c.Scripts) * costPerScript
	base += time.Duration(c.Images) * costPerImage
	base += time.Duration(c.StyleRules) * costPerStyleRule
	return time.Duration(float64(base) * p.CPUFactor)
}
