package search

import (
	"strings"
	"testing"

	"msite/internal/css"
	"msite/internal/html"
	"msite/internal/layout"
)

func buildIndex(t *testing.T, src string) (*Index, *layout.Result) {
	t.Helper()
	doc := html.Parse(src)
	res := layout.Layout(doc, css.StylerForDocument(doc), layout.Viewport{Width: 600})
	return Build(res), res
}

func TestBuildAndLookup(t *testing.T) {
	idx, _ := buildIndex(t, `<html><body>
		<p>General Woodworking discussion</p>
		<p>Woodworking projects and more projects</p>
	</body></html>`)
	hits := idx.Lookup("woodworking")
	if len(hits) != 2 {
		t.Fatalf("woodworking hits = %d", len(hits))
	}
	if hits[0].Y > hits[1].Y {
		t.Fatal("hits not in position order")
	}
	if len(idx.Lookup("projects")) != 2 {
		t.Fatal("projects hits wrong")
	}
	if idx.Lookup("absent") != nil {
		t.Fatal("absent word should be nil")
	}
}

func TestLookupCaseAndPunctuation(t *testing.T) {
	idx, _ := buildIndex(t, `<html><body><p>Hello, World!</p></body></html>`)
	if len(idx.Lookup("HELLO")) != 1 {
		t.Fatal("case-insensitive lookup failed")
	}
	if len(idx.Lookup("world")) != 1 {
		t.Fatal("punctuation not stripped")
	}
}

func TestShortWordsSkipped(t *testing.T) {
	idx, _ := buildIndex(t, `<html><body><p>a I to be or</p></body></html>`)
	if len(idx.Lookup("a")) != 0 {
		t.Fatal("single-char word indexed")
	}
	if len(idx.Lookup("to")) != 1 {
		t.Fatal("two-char word should be indexed")
	}
}

func TestWordsSortedDistinct(t *testing.T) {
	idx, _ := buildIndex(t, `<html><body><p>beta alpha beta gamma alpha</p></body></html>`)
	words := idx.Words()
	if strings.Join(words, " ") != "alpha beta gamma" {
		t.Fatalf("words = %v", words)
	}
}

func TestHitCoordinatesMatchLayout(t *testing.T) {
	idx, res := buildIndex(t, `<html><body><p>findme</p></body></html>`)
	hits := idx.Lookup("findme")
	if len(hits) != 1 {
		t.Fatal("missing hit")
	}
	run := res.Runs()[0]
	if hits[0].X != int(run.X) || hits[0].Y != int(run.Y) {
		t.Fatalf("hit at %d,%d; run at %v,%v", hits[0].X, hits[0].Y, run.X, run.Y)
	}
}

func TestScale(t *testing.T) {
	idx, _ := buildIndex(t, `<html><body><p style="margin: 100px">findme</p></body></html>`)
	orig := idx.Lookup("findme")[0]
	scaled := idx.Scale(0.5).Lookup("findme")[0]
	if scaled.X != orig.X/2 || scaled.Y != orig.Y/2 {
		t.Fatalf("scaled = %+v, orig = %+v", scaled, orig)
	}
}

func TestJSPayload(t *testing.T) {
	idx, _ := buildIndex(t, `<html><body><p>alpha beta</p></body></html>`)
	js := idx.JS("search-btn")
	for _, want := range []string{
		"msiteSearchIndex", `["alpha",`, `["beta",`,
		"function msiteSearch", "function msiteHighlight",
		`msiteBindSearch("search-btn")`,
	} {
		if !strings.Contains(js, want) {
			t.Fatalf("js missing %q", want)
		}
	}
	// Index array must be sorted for the binary search.
	if strings.Index(js, `["alpha"`) > strings.Index(js, `["beta"`) {
		t.Fatal("index not sorted in payload")
	}
}

func TestJSNoTrigger(t *testing.T) {
	idx, _ := buildIndex(t, `<html><body><p>word</p></body></html>`)
	// The runtime defines msiteBindSearch but must not invoke it.
	if strings.Contains(idx.JS(""), `msiteBindSearch("`) {
		t.Fatal("no trigger binding expected")
	}
}

func TestEmptyIndex(t *testing.T) {
	idx, _ := buildIndex(t, `<html><body></body></html>`)
	if idx.Len() != 0 {
		t.Fatalf("len = %d", idx.Len())
	}
	if idx.Lookup("anything") != nil {
		t.Fatal("empty index lookup should be nil")
	}
	if !strings.Contains(idx.JS(""), "msiteSearchIndex = []") {
		t.Fatal("empty payload malformed")
	}
}
