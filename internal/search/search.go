// Package search implements the searchable-snapshot attribute (§3.3
// "Search"): a sorted word index built on the server from the rendered
// page text, with the pixel location of each word, shipped to the device
// as a JavaScript array plus a binary-search function. It is what lets a
// pre-rendered image be searched.
package search

import (
	"fmt"
	"sort"
	"strings"

	"msite/internal/layout"
)

// Hit is one indexed word occurrence with its rendered location.
type Hit struct {
	Word string
	// X, Y, W, H locate the word in snapshot pixels.
	X, Y, W, H int
}

// Index is a sorted word index over a rendered page.
type Index struct {
	hits []Hit // sorted by Word, then Y, then X
}

// Build constructs the index from a layout's text runs. Words are
// lowercased and stripped of surrounding punctuation; words shorter than
// two characters are skipped.
func Build(res *layout.Result) *Index {
	var hits []Hit
	for _, run := range res.Runs() {
		x := run.X
		charW := layout.CharWidth(run.FontSize)
		word := normalizeWord(run.Text)
		if len(word) >= 2 {
			hits = append(hits, Hit{
				Word: word,
				X:    int(x),
				Y:    int(run.Y),
				W:    int(run.Width() + 0.5),
				H:    int(run.Height() + 0.5),
			})
		}
		_ = charW
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Word != hits[j].Word {
			return hits[i].Word < hits[j].Word
		}
		if hits[i].Y != hits[j].Y {
			return hits[i].Y < hits[j].Y
		}
		return hits[i].X < hits[j].X
	})
	return &Index{hits: hits}
}

func normalizeWord(s string) string {
	return strings.Trim(strings.ToLower(s), ".,;:!?\"'()[]{}<>")
}

// Len returns the number of indexed occurrences.
func (idx *Index) Len() int { return len(idx.hits) }

// Words returns the distinct indexed words, sorted.
func (idx *Index) Words() []string {
	var out []string
	prev := ""
	for _, h := range idx.hits {
		if h.Word != prev {
			out = append(out, h.Word)
			prev = h.Word
		}
	}
	return out
}

// Lookup binary-searches for a word and returns its occurrences — the
// same algorithm the generated JavaScript runs on the device.
func (idx *Index) Lookup(word string) []Hit {
	word = normalizeWord(word)
	lo := sort.Search(len(idx.hits), func(i int) bool {
		return idx.hits[i].Word >= word
	})
	hi := lo
	for hi < len(idx.hits) && idx.hits[hi].Word == word {
		hi++
	}
	if lo == hi {
		return nil
	}
	out := make([]Hit, hi-lo)
	copy(out, idx.hits[lo:hi])
	return out
}

// Scale returns a copy of the index with every coordinate multiplied by
// factor, matching a scaled-down snapshot (the framework "implicitly
// translates the coordinates", §4.3).
func (idx *Index) Scale(factor float64) *Index {
	scaled := make([]Hit, len(idx.hits))
	for i, h := range idx.hits {
		scaled[i] = Hit{
			Word: h.Word,
			X:    int(float64(h.X) * factor),
			Y:    int(float64(h.Y) * factor),
			W:    int(float64(h.W) * factor),
			H:    int(float64(h.H) * factor),
		}
	}
	return &Index{hits: scaled}
}

// JS emits the client payload: the ordered index array, a binary-search
// function, and a trigger hookup for the element the site administrator
// designated (§3.3: "the site administrator must define an HTML element
// (button or link) to make the initial Javascript call").
func (idx *Index) JS(triggerID string) string {
	var b strings.Builder
	b.WriteString("var msiteSearchIndex = [")
	for i, h := range idx.hits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "[%q,%d,%d,%d,%d]", h.Word, h.X, h.Y, h.W, h.H)
	}
	b.WriteString("];\n")
	b.WriteString(searchRuntimeJS)
	if triggerID != "" {
		fmt.Fprintf(&b, "msiteBindSearch(%q);\n", triggerID)
	}
	return b.String()
}

// searchRuntimeJS is the device-side runtime: binary search over the
// sorted array plus a highlight overlay positioned at the hit
// coordinates.
const searchRuntimeJS = `function msiteSearch(word) {
  word = word.toLowerCase();
  var lo = 0, hi = msiteSearchIndex.length;
  while (lo < hi) {
    var mid = (lo + hi) >> 1;
    if (msiteSearchIndex[mid][0] < word) { lo = mid + 1; } else { hi = mid; }
  }
  var hits = [];
  while (lo < msiteSearchIndex.length && msiteSearchIndex[lo][0] === word) {
    hits.push(msiteSearchIndex[lo]); lo++;
  }
  return hits;
}
function msiteHighlight(hits) {
  var old = document.getElementById('msite-hit');
  if (old) { old.parentNode.removeChild(old); }
  if (!hits.length) { return; }
  var h = hits[0];
  var box = document.createElement('div');
  box.id = 'msite-hit';
  box.style.position = 'absolute';
  box.style.left = h[1] + 'px';
  box.style.top = h[2] + 'px';
  box.style.width = h[3] + 'px';
  box.style.height = h[4] + 'px';
  box.style.border = '2px solid red';
  document.body.appendChild(box);
  window.scrollTo(0, Math.max(0, h[2] - 40));
}
function msiteBindSearch(id) {
  var el = document.getElementById(id);
  if (!el) { return; }
  el.onclick = function () {
    var word = window.prompt('Search page:');
    if (word) { msiteHighlight(msiteSearch(word)); }
    return false;
  };
}
`
