// Package admin is the headless analog of m.Site's visual administrator
// tool (§3.1): it loads a live page, enumerates the selectable objects
// with their rendered coordinates (the "point and click" inventory, plus
// the separate dock of non-visual objects — CSS, scripts, head content),
// detects intra-page dependencies for subpage extraction, and builds the
// adaptation spec the generator and proxy consume.
package admin

import (
	"fmt"
	"sort"
	"strings"

	"msite/internal/attr"
	"msite/internal/css"
	"msite/internal/dom"
	"msite/internal/html"
	"msite/internal/layout"
	"msite/internal/spec"
)

// ObjectInfo describes one selectable page object.
type ObjectInfo struct {
	// Tag and ID identify the element; Classes lists its class names.
	Tag     string
	ID      string
	Classes []string
	// Selector is the suggested CSS selector for the spec.
	Selector string
	// XPath is the exact location path.
	XPath string
	// Region is the rendered rectangle; zero for non-visual objects.
	Region attr.Region
	// NonVisual marks dock objects (style, script, meta, head content).
	NonVisual bool
	// TextPreview is the first few words of content.
	TextPreview string
}

// Inspect renders a page and returns its selectable objects: every
// element with an id, plus structural containers (forms, tables, divs
// with classes), plus the non-visual dock.
func Inspect(src string, width int) []ObjectInfo {
	doc := html.Tidy(src)
	styler := css.StylerForDocument(doc)
	res := layout.Layout(doc, styler, layout.Viewport{Width: width})

	var out []ObjectInfo
	doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		nonVisual := isNonVisual(n)
		if !selectable(n, nonVisual) {
			return true
		}
		info := ObjectInfo{
			Tag:       n.Tag,
			ID:        n.ID(),
			Classes:   n.Classes(),
			Selector:  suggestSelector(n),
			XPath:     n.Path(),
			NonVisual: nonVisual,
		}
		if x, y, w, h, ok := res.Region(n); ok && !nonVisual {
			info.Region = attr.Region{X: x, Y: y, W: w, H: h}
		}
		info.TextPreview = preview(n)
		out = append(out, info)
		return true
	})
	return out
}

func isNonVisual(n *dom.Node) bool {
	switch n.Tag {
	case "style", "script", "meta", "link", "title", "base":
		return true
	}
	return false
}

func selectable(n *dom.Node, nonVisual bool) bool {
	if nonVisual {
		return true
	}
	if n.ID() != "" {
		return true
	}
	switch n.Tag {
	case "form", "table":
		return true
	case "div", "ul", "section", "nav":
		return len(n.Classes()) > 0
	}
	return false
}

// suggestSelector prefers #id, then tag.class chains, then the XPath.
func suggestSelector(n *dom.Node) string {
	if id := n.ID(); id != "" {
		return "#" + id
	}
	if classes := n.Classes(); len(classes) > 0 {
		return n.Tag + "." + strings.Join(classes, ".")
	}
	return ""
}

func preview(n *dom.Node) string {
	words := strings.Fields(n.Text())
	if len(words) > 8 {
		words = words[:8]
	}
	return strings.Join(words, " ")
}

// DetectDependencies finds the non-visual objects a fragment depends on:
// style elements whose rules select into the fragment and scripts whose
// source references the fragment's ids or function calls found in its
// inline handlers. This is the intra-page dependency identification of
// §3.1 ("objects may have intra-page dependencies ... identified in the
// visual tool").
func DetectDependencies(doc *dom.Node, selector string) ([]string, error) {
	sels, err := css.ParseSelectorList(selector)
	if err != nil {
		return nil, fmt.Errorf("admin: %w", err)
	}
	var roots []*dom.Node
	for _, sel := range sels {
		roots = append(roots, sel.QueryAll(doc)...)
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("admin: selector %q matched nothing", selector)
	}

	// Vocabulary referenced by the fragment: ids, classes, tags, and
	// identifiers invoked from inline handlers.
	idents := make(map[string]bool)
	for _, root := range roots {
		root.Walk(func(n *dom.Node) bool {
			if n.Type != dom.ElementNode {
				return true
			}
			if id := n.ID(); id != "" {
				idents["#"+id] = true
			}
			for _, c := range n.Classes() {
				idents["."+c] = true
			}
			for _, a := range n.Attrs {
				if strings.HasPrefix(a.Key, "on") {
					for _, fn := range jsCalls(a.Val) {
						idents["fn:"+fn] = true
					}
				}
			}
			return true
		})
	}

	var deps []string
	seen := make(map[string]bool)
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			deps = append(deps, path)
		}
	}
	for _, styleEl := range doc.Elements("style") {
		if styleMatches(styleEl, idents) {
			add(styleEl.Path())
		}
	}
	for _, scriptEl := range doc.Elements("script") {
		if scriptMatches(scriptEl, idents) {
			add(scriptEl.Path())
		}
	}
	sort.Strings(deps)
	return deps, nil
}

func styleMatches(styleEl *dom.Node, idents map[string]bool) bool {
	var src strings.Builder
	for c := styleEl.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == dom.TextNode {
			src.WriteString(c.Data)
		}
	}
	text := src.String()
	for ident := range idents {
		if strings.HasPrefix(ident, "#") || strings.HasPrefix(ident, ".") {
			if strings.Contains(text, ident) {
				return true
			}
		}
	}
	return false
}

func scriptMatches(scriptEl *dom.Node, idents map[string]bool) bool {
	if scriptEl.HasAttr("src") {
		return false // external scripts resolve by URL, not content
	}
	text := scriptEl.Text()
	var src strings.Builder
	for c := scriptEl.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == dom.TextNode {
			src.WriteString(c.Data)
		}
	}
	text = src.String()
	for ident := range idents {
		switch {
		case strings.HasPrefix(ident, "fn:"):
			if strings.Contains(text, "function "+ident[3:]) {
				return true
			}
		case strings.HasPrefix(ident, "#"):
			if strings.Contains(text, "'"+ident[1:]+"'") ||
				strings.Contains(text, `"`+ident[1:]+`"`) ||
				strings.Contains(text, "'"+ident+"'") ||
				strings.Contains(text, `"`+ident+`"`) {
				return true
			}
		}
	}
	return false
}

// jsCalls extracts called identifiers from an inline handler body.
func jsCalls(code string) []string {
	var out []string
	i := 0
	for i < len(code) {
		if !isIdentStart(code[i]) {
			i++
			continue
		}
		start := i
		for i < len(code) && isIdentChar(code[i]) {
			i++
		}
		j := i
		for j < len(code) && code[j] == ' ' {
			j++
		}
		if j < len(code) && code[j] == '(' {
			out = append(out, code[start:i])
		}
	}
	return out
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// Builder assembles an adaptation spec fluently — the scripting analog
// of clicking objects and assigning attributes from the menu.
type Builder struct {
	sp spec.Spec
}

// NewBuilder starts a spec for one origin page.
func NewBuilder(name, originURL string) *Builder {
	return &Builder{sp: spec.Spec{Name: name, Origin: originURL}}
}

// Viewport sets the server-side render width.
func (b *Builder) Viewport(width int) *Builder {
	b.sp.ViewportWidth = width
	return b
}

// Snapshot enables the cached snapshot entry page.
func (b *Builder) Snapshot(fidelity string, scale float64, ttlSeconds int) *Builder {
	b.sp.Snapshot = spec.SnapshotSpec{
		Enabled: true, Fidelity: fidelity, Scale: scale,
		CacheTTLSeconds: ttlSeconds, Shared: true,
	}
	return b
}

// Filter appends a source-level filter.
func (b *Builder) Filter(filterType string, params map[string]string) *Builder {
	b.sp.Filters = append(b.sp.Filters, spec.Filter{Type: filterType, Params: params})
	return b
}

// Action registers an AJAX rewrite rule.
func (b *Builder) Action(id int, match, target, extract string, cacheTTLSeconds int) *Builder {
	b.sp.Actions = append(b.sp.Actions, spec.Action{
		ID: id, Match: match, Target: target, Extract: extract,
		CacheTTLSeconds: cacheTTLSeconds,
	})
	return b
}

// Object selects a page object by CSS selector and returns its
// attribute menu.
func (b *Builder) Object(name, selector string) *ObjectBuilder {
	b.sp.Objects = append(b.sp.Objects, spec.Object{Name: name, Selector: selector})
	return &ObjectBuilder{b: b, idx: len(b.sp.Objects) - 1}
}

// ObjectXPath selects a page object by XPath.
func (b *Builder) ObjectXPath(name, path string) *ObjectBuilder {
	b.sp.Objects = append(b.sp.Objects, spec.Object{Name: name, XPath: path})
	return &ObjectBuilder{b: b, idx: len(b.sp.Objects) - 1}
}

// Spec validates and returns the built spec.
func (b *Builder) Spec() (*spec.Spec, error) {
	sp := b.sp // copy
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// AutoDependencies inspects the page and, for every subpage object
// already selected, attaches dependency objects for the styles and
// scripts DetectDependencies finds — the visual tool's one-click
// "satisfy intra-page dependencies" action (§3.1).
func (b *Builder) AutoDependencies(doc *dom.Node) (*Builder, error) {
	type pending struct{ subpage, path string }
	var found []pending
	for _, obj := range b.sp.Objects {
		isSubpage := false
		for _, at := range obj.Attributes {
			if at.Type == spec.AttrSubpage {
				isSubpage = true
			}
		}
		if !isSubpage || obj.Selector == "" {
			continue
		}
		paths, err := DetectDependencies(doc, obj.Selector)
		if err != nil {
			// Objects that match nothing on this page are skipped, not
			// fatal: the spec may cover content that appears later.
			continue
		}
		for _, p := range paths {
			found = append(found, pending{subpage: obj.Name, path: p})
		}
	}
	for i, f := range found {
		name := fmt.Sprintf("dep_%s_%d", f.subpage, i)
		b.ObjectXPath(name, f.path).DependencyOf(f.subpage)
	}
	return b, nil
}

// ObjectBuilder assigns attributes to one selected object.
type ObjectBuilder struct {
	b   *Builder
	idx int
}

// With assigns an arbitrary attribute.
func (ob *ObjectBuilder) With(attrType spec.AttrType, params map[string]string) *ObjectBuilder {
	obj := &ob.b.sp.Objects[ob.idx]
	obj.Attributes = append(obj.Attributes, spec.Attribute{Type: attrType, Params: params})
	return ob
}

// Subpage applies the page-splitting attribute.
func (ob *ObjectBuilder) Subpage(title string) *ObjectBuilder {
	return ob.With(spec.AttrSubpage, map[string]string{"title": title})
}

// PreRenderedSubpage splits and pre-renders in one step.
func (ob *ObjectBuilder) PreRenderedSubpage(title, fidelity string) *ObjectBuilder {
	return ob.With(spec.AttrSubpage, map[string]string{
		"title": title, "prerender": "true", "fidelity": fidelity,
	})
}

// AJAXSubpage splits into an asynchronously loaded subpage.
func (ob *ObjectBuilder) AJAXSubpage(title string) *ObjectBuilder {
	return ob.With(spec.AttrSubpage, map[string]string{"title": title, "ajax": "true"})
}

// Remove strips the object.
func (ob *ObjectBuilder) Remove() *ObjectBuilder {
	return ob.With(spec.AttrRemove, nil)
}

// Hide hides the object via CSS.
func (ob *ObjectBuilder) Hide() *ObjectBuilder {
	return ob.With(spec.AttrHide, nil)
}

// ReplaceWith substitutes markup for the object.
func (ob *ObjectBuilder) ReplaceWith(markup string) *ObjectBuilder {
	return ob.With(spec.AttrReplace, map[string]string{"html": markup})
}

// DependencyOf pulls the (non-visual) object into a subpage's head.
func (ob *ObjectBuilder) DependencyOf(subpage string) *ObjectBuilder {
	return ob.With(spec.AttrDependency, map[string]string{"subpage": subpage})
}

// CopyTo duplicates the object into a subpage.
func (ob *ObjectBuilder) CopyTo(subpage, position string) *ObjectBuilder {
	return ob.With(spec.AttrCopyTo, map[string]string{"subpage": subpage, "position": position})
}

// Cacheable shares the object's render across sessions.
func (ob *ObjectBuilder) Cacheable(ttlSeconds int) *ObjectBuilder {
	return ob.With(spec.AttrCacheable, map[string]string{"ttl_seconds": fmt.Sprint(ttlSeconds)})
}

// Object starts a new object selection, ending this one.
func (ob *ObjectBuilder) Object(name, selector string) *ObjectBuilder {
	return ob.b.Object(name, selector)
}

// Done returns the parent builder.
func (ob *ObjectBuilder) Done() *Builder { return ob.b }
