package admin

import (
	"strings"
	"testing"

	"msite/internal/html"
	"msite/internal/spec"
	"msite/internal/xpath"
)

const page = `<!DOCTYPE html>
<html><head>
<title>Test</title>
<style type="text/css">#loginform input { border: 1px solid red } .unrelated { color: blue }</style>
<style type="text/css">.navbar { background-color: gray }</style>
<script type="text/javascript">function validateLogin() { return true; }</script>
<script type="text/javascript">function unrelatedThing() { return 0; }</script>
<script src="/external.js"></script>
</head><body>
<div id="logo"><img src="/logo.gif" width="100" height="40"></div>
<div class="navbar"><a href="/a">A</a> <a href="/b">B</a></div>
<form id="loginform" onsubmit="return validateLogin();">
  <input type="text" name="u"> <input type="submit" value="Go">
</form>
<table class="listing"><tr><td>General Woodworking topics</td></tr></table>
<div>anonymous div without class</div>
</body></html>`

func TestInspectInventory(t *testing.T) {
	objects := Inspect(page, 800)
	byID := map[string]ObjectInfo{}
	var tags []string
	for _, o := range objects {
		tags = append(tags, o.Tag)
		if o.ID != "" {
			byID[o.ID] = o
		}
	}
	if _, ok := byID["logo"]; !ok {
		t.Fatalf("logo not in inventory: %v", tags)
	}
	login := byID["loginform"]
	if login.Selector != "#loginform" {
		t.Fatalf("selector = %q", login.Selector)
	}
	if !login.Region.Valid() {
		t.Fatal("login region missing")
	}
	if login.XPath == "" {
		t.Fatal("xpath missing")
	}
	// Class containers and tables are selectable.
	foundNav, foundTable := false, false
	for _, o := range objects {
		if o.Selector == "div.navbar" {
			foundNav = true
		}
		if o.Tag == "table" {
			foundTable = true
			if !strings.Contains(o.TextPreview, "General") {
				t.Fatalf("preview = %q", o.TextPreview)
			}
		}
	}
	if !foundNav || !foundTable {
		t.Fatal("nav/table missing from inventory")
	}
	// Anonymous divs are not selectable noise.
	for _, o := range objects {
		if o.Tag == "div" && o.ID == "" && len(o.Classes) == 0 {
			t.Fatal("anonymous div in inventory")
		}
	}
}

func TestInspectNonVisualDock(t *testing.T) {
	objects := Inspect(page, 800)
	styles, scripts := 0, 0
	for _, o := range objects {
		if !o.NonVisual {
			continue
		}
		switch o.Tag {
		case "style":
			styles++
		case "script":
			scripts++
		}
		if o.Region.Valid() {
			t.Fatalf("non-visual %s has a region", o.Tag)
		}
	}
	if styles != 2 || scripts != 3 {
		t.Fatalf("dock: styles=%d scripts=%d", styles, scripts)
	}
}

func TestDetectDependencies(t *testing.T) {
	doc := html.Tidy(page)
	deps, err := DetectDependencies(doc, "#loginform")
	if err != nil {
		t.Fatal(err)
	}
	// Expect the style with the #loginform rule and the script defining
	// validateLogin — not the unrelated ones, not the external script.
	if len(deps) != 2 {
		t.Fatalf("deps = %v", deps)
	}
	for _, d := range deps {
		if len(xpath.MustCompile(d).Select(doc)) != 1 {
			t.Fatalf("dep %q does not resolve to one node", d)
		}
	}
	// The matched style must be the #loginform one.
	style := xpath.MustCompile(deps[0]).Select(doc)[0]
	if !strings.Contains(style.FirstChild.Data, "#loginform") &&
		!strings.Contains(xpath.MustCompile(deps[1]).Select(doc)[0].FirstChild.Data, "#loginform") {
		t.Fatal("wrong style matched")
	}
}

func TestDetectDependenciesErrors(t *testing.T) {
	doc := html.Tidy(page)
	if _, err := DetectDependencies(doc, ":bad("); err == nil {
		t.Fatal("bad selector accepted")
	}
	if _, err := DetectDependencies(doc, "#ghost"); err == nil {
		t.Fatal("no-match selector accepted")
	}
}

func TestBuilderFluent(t *testing.T) {
	sp, err := NewBuilder("forum", "http://origin.test/").
		Viewport(1024).
		Snapshot("low", 0.45, 3600).
		Filter("title", map[string]string{"value": "m.Forum"}).
		Action(1, `do=showpic&id=(\d+)`, "http://origin.test/site.php?id=$1", "#pic", 60).
		Object("login", "#loginform").Subpage("Log in").
		Object("logo", "#logo").CopyTo("login", "top").
		Object("forums", "table.listing").PreRenderedSubpage("Forums", "low").Cacheable(3600).
		Object("nav", "div.navbar").AJAXSubpage("Navigation").
		Object("ad", "#banner").Remove().
		Done().
		ObjectXPath("styles", "//style[1]").DependencyOf("login").
		Done().
		Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Objects) != 6 || len(sp.Actions) != 1 || len(sp.Filters) != 1 {
		t.Fatalf("spec = %+v", sp)
	}
	if !sp.Snapshot.Enabled || sp.Snapshot.Scale != 0.45 {
		t.Fatal("snapshot config lost")
	}
	obj, _ := sp.FindObject("forums")
	if !obj.HasAttr(spec.AttrCacheable) {
		t.Fatal("chained attributes lost")
	}
	sub, _ := obj.Attr(spec.AttrSubpage)
	if sub.Param("prerender", "") != "true" {
		t.Fatal("prerender param lost")
	}
}

func TestBuilderValidates(t *testing.T) {
	_, err := NewBuilder("x", "http://o/").
		Object("a", "#a").DependencyOf("ghost").
		Done().Spec()
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestBuilderMoreAttrs(t *testing.T) {
	sp, err := NewBuilder("x", "http://o/").
		Object("a", "#a").Hide().
		Object("b", "#b").ReplaceWith("<p>m</p>").
		Done().Spec()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sp.FindObject("a")
	if !a.HasAttr(spec.AttrHide) {
		t.Fatal("hide lost")
	}
	b, _ := sp.FindObject("b")
	if at, _ := b.Attr(spec.AttrReplace); at.Param("html", "") != "<p>m</p>" {
		t.Fatal("replace lost")
	}
}

func TestJSCalls(t *testing.T) {
	calls := jsCalls("return validateLogin() && $j.ajax(x); notACall;")
	joined := strings.Join(calls, ",")
	if !strings.Contains(joined, "validateLogin") || !strings.Contains(joined, "ajax") {
		t.Fatalf("calls = %v", calls)
	}
	if strings.Contains(joined, "notACall") {
		t.Fatal("non-call captured")
	}
}

func TestAutoDependencies(t *testing.T) {
	doc := html.Tidy(page)
	b := NewBuilder("auto", "http://o/")
	b.Object("login", "#loginform").Subpage("Log in")
	if _, err := b.AutoDependencies(doc); err != nil {
		t.Fatal(err)
	}
	sp, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	// Two dependencies detected for the login form (its style rule and
	// validateLogin script), each wired to the subpage.
	deps := 0
	for _, o := range sp.Objects {
		if strings.HasPrefix(o.Name, "dep_login_") {
			deps++
			at, ok := o.Attr(spec.AttrDependency)
			if !ok || at.Param("subpage", "") != "login" {
				t.Fatalf("dependency wiring wrong: %+v", o)
			}
		}
	}
	if deps != 2 {
		t.Fatalf("deps = %d", deps)
	}
}

func TestAutoDependenciesSkipsUnmatched(t *testing.T) {
	doc := html.Tidy(page)
	b := NewBuilder("auto", "http://o/")
	b.Object("ghost", "#ghost").Subpage("G")
	if _, err := b.AutoDependencies(doc); err != nil {
		t.Fatal(err)
	}
	sp, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Objects) != 1 {
		t.Fatalf("unexpected dependency objects: %+v", sp.Objects)
	}
}
