// Package spec defines the adaptation specification: the durable artifact
// the visual admin tool emits and the code generator and proxy consume.
// A Spec captures which page objects the administrator selected and which
// attributes (§3.3) were assigned to each, plus source-level filters and
// AJAX action rewrites. It is the contract between m.Site's two halves.
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"regexp"

	"msite/internal/css"
	"msite/internal/xpath"
)

// AttrType enumerates the attribute vocabulary of §3.3.
type AttrType string

// The attribute vocabulary. Each constant corresponds to one technique
// described in the paper's attribute system.
const (
	// AttrSubpage splits the object into its own page (§3.3 "Page
	// splitting"). Params: "title"; "prerender" ("true" renders the
	// subpage to an image); "ajax" ("true" loads the subpage into a div
	// asynchronously, §4.3); "parent" (name of an enclosing subpage, for
	// §3.3 "Sub-subpages").
	AttrSubpage AttrType = "subpage"
	// AttrPreRender renders the object server-side into a single graphic
	// (§3.3 "Pre-rendering"). Params: "fidelity" (high|medium|low|thumb).
	AttrPreRender AttrType = "prerender"
	// AttrRemove strips the object from the source completely.
	AttrRemove AttrType = "remove"
	// AttrHide hides the object via CSS style properties.
	AttrHide AttrType = "hide"
	// AttrReplace replaces the object. Params: "html" (replacement
	// markup) or "attr"+"value" (rewrite one attribute, e.g. a logo's
	// src to a mobile-specific version, §4.3).
	AttrReplace AttrType = "replace"
	// AttrRelocate moves the object. Params: "target" (selector),
	// "position" (append|prepend|before|after).
	AttrRelocate AttrType = "relocate"
	// AttrCopyTo duplicates the object into a subpage (§3.3 "Object
	// dependencies": logo box copied to the login subpage). Params:
	// "subpage" (name), "position" (top|bottom).
	AttrCopyTo AttrType = "copy-to"
	// AttrDependency marks the object (CSS/JS) as a dependency of a
	// subpage; it is pulled into that subpage's head. Params: "subpage".
	AttrDependency AttrType = "dependency"
	// AttrInsertHTML inserts markup relative to the object. Params:
	// "html", "position" (before|after|prepend|append).
	AttrInsertHTML AttrType = "insert-html"
	// AttrInsertJS inserts a script (§3.3 "Javascript insertion"). Params:
	// "code", "stage" ("server" manipulates the DOM before rendering;
	// "client" ships to the device).
	AttrInsertJS AttrType = "insert-js"
	// AttrRemoveJS strips script elements inside the object.
	AttrRemoveJS AttrType = "remove-js"
	// AttrImageFidelity routes the object's rendered image through the
	// post-processor (§3.3 "Image fidelity"). Params: "fidelity",
	// "maxwidth".
	AttrImageFidelity AttrType = "image-fidelity"
	// AttrSearchable builds a word index over the pre-rendered object and
	// ships a binary-search overlay (§3.3 "Search"). Params: "trigger"
	// (id of the element that invokes search).
	AttrSearchable AttrType = "searchable"
	// AttrCacheable shares the object's render across sessions (§3.3
	// "Object caching"). Params: "ttl_seconds".
	AttrCacheable AttrType = "cacheable"
	// AttrAJAXify rewrites the object's asynchronous calls to proxy
	// actions (§4.4). Params: "actions" (comma-separated action IDs, or
	// empty for all).
	AttrAJAXify AttrType = "ajaxify"
	// AttrPartialCSS pre-renders the object's graphical component on the
	// server while leaving text to the client (§3.3 "Partial CSS
	// rendering").
	AttrPartialCSS AttrType = "partial-css"
	// AttrHTTPAuth marks the object's area as HTTP-authenticated; the
	// proxy interposes the lightweight auth page (§3.3).
	AttrHTTPAuth AttrType = "http-auth"
	// AttrRewriteLinks restructures a horizontal link bar into vertical
	// columns (§4.3 nav-links transform). Params: "columns".
	AttrRewriteLinks AttrType = "rewrite-links"
	// AttrThumbnail replaces a rich-media object (Flash, video, large
	// image) with a low-fidelity thumbnail snapshot of its rendered
	// region, linked to the original — the paper's "thumbnail snapshots
	// of rich media content for resource-constrained devices". Params:
	// "scale" (default 0.5), "fidelity" (high|medium|low, default low), "href"
	// (link target; default the element's own src).
	AttrThumbnail AttrType = "thumbnail"
	// AttrRepair runs the mobile-repair rule pass (internal/quality) over
	// the object's subtree: viewport meta injection, fixed-width
	// rewrites, touch-target sizing, font floor. Params: "rules"
	// (comma-separated rule names, default "all"), "device"
	// (comma-separated device-class names the pass is limited to;
	// empty means every device).
	AttrRepair AttrType = "repair"
)

// knownAttrs validates attribute types on load.
var knownAttrs = map[AttrType]bool{
	AttrSubpage: true, AttrPreRender: true, AttrRemove: true, AttrHide: true,
	AttrReplace: true, AttrRelocate: true, AttrCopyTo: true,
	AttrDependency: true, AttrInsertHTML: true, AttrInsertJS: true,
	AttrRemoveJS: true, AttrImageFidelity: true, AttrSearchable: true,
	AttrCacheable: true, AttrAJAXify: true, AttrPartialCSS: true,
	AttrHTTPAuth: true, AttrRewriteLinks: true, AttrThumbnail: true,
	AttrRepair: true,
}

// Attribute is one attribute assignment with its parameters.
type Attribute struct {
	Type   AttrType          `json:"type"`
	Params map[string]string `json:"params,omitempty"`
}

// Param returns a parameter with a default.
func (a Attribute) Param(key, def string) string {
	if v, ok := a.Params[key]; ok {
		return v
	}
	return def
}

// Object is one administrator-selected page object. Exactly one of
// Selector or XPath identifies it (§3.2 "Object identification": both
// CSS 3 selectors and XPath are supported).
type Object struct {
	Name       string      `json:"name"`
	Selector   string      `json:"selector,omitempty"`
	XPath      string      `json:"xpath,omitempty"`
	Attributes []Attribute `json:"attributes"`
}

// HasAttr reports whether the object carries an attribute of the type.
func (o Object) HasAttr(t AttrType) bool {
	_, ok := o.Attr(t)
	return ok
}

// Attr returns the first attribute of the given type.
func (o Object) Attr(t AttrType) (Attribute, bool) {
	for _, a := range o.Attributes {
		if a.Type == t {
			return a, true
		}
	}
	return Attribute{}, false
}

// Filter is one source-level filter (§3.2 "filter phase"), applied to raw
// HTML before any DOM parse.
type Filter struct {
	// Type is one of: doctype, title, strip-scripts, strip-css,
	// rewrite-images, replace.
	Type   string            `json:"type"`
	Params map[string]string `json:"params,omitempty"`
}

// Action is one AJAX rewrite rule (§4.4): client-side calls whose code
// matches Match are replaced by calls to proxy?action=ID&p=<capture>; at
// dispatch time the proxy fetches Target (with $1..$9 substituted from
// the capture groups) and returns the fragment selected by Extract.
type Action struct {
	ID      int    `json:"id"`
	Match   string `json:"match"`
	Target  string `json:"target"`
	Extract string `json:"extract,omitempty"`
	// CacheTTLSeconds shares fetched fragments across clients.
	CacheTTLSeconds int `json:"cache_ttl_seconds,omitempty"`
}

// SnapshotSpec configures the mobile entry page: a cached, scaled,
// low-fidelity snapshot of the full site overlaid with an image map
// (§4.3).
type SnapshotSpec struct {
	Enabled bool `json:"enabled"`
	// Fidelity is high|medium|low|thumb (default low).
	Fidelity string `json:"fidelity,omitempty"`
	// Scale shrinks the snapshot so the user need not zoom (default 1).
	Scale float64 `json:"scale,omitempty"`
	// CacheTTLSeconds shares the snapshot across sessions; the paper's
	// deployment uses 3600 (60 minutes).
	CacheTTLSeconds int `json:"cache_ttl_seconds,omitempty"`
	// Shared stores the snapshot in the public cache rather than
	// per-user.
	Shared bool `json:"shared,omitempty"`
}

// LoginSpec configures origin form-login marshaling: the proxy presents
// a mobile-friendly login form and replays the credentials against the
// origin with the user's cookie jar, so the session becomes
// authenticated on the origin (§3.2 "the proxy itself must be
// authenticated on behalf of the user to view content privy to that
// user").
type LoginSpec struct {
	// URL is the origin's login form action; empty disables the proxy
	// login route.
	URL string `json:"url,omitempty"`
	// UserField and PassField are the origin's form field names
	// (defaults "username" / "password").
	UserField string `json:"user_field,omitempty"`
	PassField string `json:"pass_field,omitempty"`
}

// CurrentVersion is the spec format version this build writes.
const CurrentVersion = 1

// Spec is a complete adaptation specification for one origin page.
type Spec struct {
	// Version is the format version; zero is treated as CurrentVersion
	// for back-compat with early specs.
	Version       int          `json:"version,omitempty"`
	Name          string       `json:"name"`
	Origin        string       `json:"origin"`
	ViewportWidth int          `json:"viewport_width,omitempty"`
	Snapshot      SnapshotSpec `json:"snapshot"`
	// MinimalMarkup selects the MAML-style output mode: the entry page is
	// served as compact layout-only markup (headings, text, links — no
	// images, scripts, or styling) for 2G-class links, instead of the
	// graphical snapshot overlay.
	MinimalMarkup bool      `json:"minimal_markup,omitempty"`
	Login         LoginSpec `json:"login,omitempty"`
	Objects       []Object  `json:"objects,omitempty"`
	Filters       []Filter  `json:"filters,omitempty"`
	Actions       []Action  `json:"actions,omitempty"`
}

// FindObject returns the named object.
func (s *Spec) FindObject(name string) (Object, bool) {
	for _, o := range s.Objects {
		if o.Name == name {
			return o, true
		}
	}
	return Object{}, false
}

// FindAction returns the action with the given ID.
func (s *Spec) FindAction(id int) (Action, bool) {
	for _, a := range s.Actions {
		if a.ID == id {
			return a, true
		}
	}
	return Action{}, false
}

// validFilterTypes guards the filter phase vocabulary.
var validFilterTypes = map[string]bool{
	"doctype": true, "title": true, "strip-scripts": true,
	"strip-css": true, "rewrite-images": true, "replace": true,
}

// Validate checks structural integrity: object names unique and
// non-empty, identifiers parseable, attribute and filter types known,
// action regexes compilable, and cross-references (copy-to/dependency
// subpage names) resolvable.
func (s *Spec) Validate() error {
	if s.Version != 0 && s.Version != CurrentVersion {
		return fmt.Errorf("spec: unsupported version %d (this build reads version %d)", s.Version, CurrentVersion)
	}
	if s.Name == "" {
		return errors.New("spec: missing name")
	}
	if s.Origin == "" {
		return errors.New("spec: missing origin URL")
	}
	names := make(map[string]bool)
	subpages := make(map[string]bool)
	for _, o := range s.Objects {
		if o.Name == "" {
			return errors.New("spec: object with empty name")
		}
		if names[o.Name] {
			return fmt.Errorf("spec: duplicate object name %q", o.Name)
		}
		names[o.Name] = true
		if (o.Selector == "") == (o.XPath == "") {
			return fmt.Errorf("spec: object %q must set exactly one of selector or xpath", o.Name)
		}
		if o.Selector != "" {
			if _, err := css.ParseSelectorList(o.Selector); err != nil {
				return fmt.Errorf("spec: object %q: %w", o.Name, err)
			}
		}
		if o.XPath != "" {
			if _, err := xpath.Compile(o.XPath); err != nil {
				return fmt.Errorf("spec: object %q: %w", o.Name, err)
			}
		}
		for _, a := range o.Attributes {
			if !knownAttrs[a.Type] {
				return fmt.Errorf("spec: object %q: unknown attribute type %q", o.Name, a.Type)
			}
			if a.Type == AttrSubpage {
				subpages[o.Name] = true
			}
		}
	}
	for _, o := range s.Objects {
		for _, a := range o.Attributes {
			switch a.Type {
			case AttrCopyTo, AttrDependency:
				target := a.Param("subpage", "")
				if target == "" {
					return fmt.Errorf("spec: object %q: %s requires a subpage param", o.Name, a.Type)
				}
				if !subpages[target] {
					return fmt.Errorf("spec: object %q: %s references unknown subpage %q", o.Name, a.Type, target)
				}
			case AttrRelocate:
				if a.Param("target", "") == "" {
					return fmt.Errorf("spec: object %q: relocate requires a target", o.Name)
				}
			}
		}
	}
	for _, f := range s.Filters {
		if !validFilterTypes[f.Type] {
			return fmt.Errorf("spec: unknown filter type %q", f.Type)
		}
	}
	actionIDs := make(map[int]bool)
	for _, a := range s.Actions {
		if actionIDs[a.ID] {
			return fmt.Errorf("spec: duplicate action id %d", a.ID)
		}
		actionIDs[a.ID] = true
		if a.Match == "" || a.Target == "" {
			return fmt.Errorf("spec: action %d needs match and target", a.ID)
		}
		if _, err := regexp.Compile(a.Match); err != nil {
			return fmt.Errorf("spec: action %d match: %w", a.ID, err)
		}
		if a.Extract != "" {
			if _, err := css.ParseSelectorList(a.Extract); err != nil {
				return fmt.Errorf("spec: action %d extract: %w", a.ID, err)
			}
		}
	}
	if s.Snapshot.Enabled {
		switch s.Snapshot.Fidelity {
		case "", "high", "medium", "low", "thumb":
		default:
			return fmt.Errorf("spec: unknown snapshot fidelity %q", s.Snapshot.Fidelity)
		}
		if s.Snapshot.Scale < 0 || s.Snapshot.Scale > 4 {
			return fmt.Errorf("spec: snapshot scale %v out of range", s.Snapshot.Scale)
		}
	}
	return nil
}

// JSON serializes the spec, stamping the current format version.
func (s *Spec) JSON() ([]byte, error) {
	out := *s
	if out.Version == 0 {
		out.Version = CurrentVersion
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: marshaling: %w", err)
	}
	return data, nil
}

// Parse deserializes and validates a spec.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("spec: parsing: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
