package spec

import (
	"strings"
	"testing"
)

func validSpec() *Spec {
	return &Spec{
		Name:          "forum",
		Origin:        "http://origin.test/index.php",
		ViewportWidth: 1024,
		Snapshot: SnapshotSpec{
			Enabled: true, Fidelity: "low", Scale: 0.45,
			CacheTTLSeconds: 3600, Shared: true,
		},
		Objects: []Object{
			{
				Name:     "login",
				Selector: "#loginform",
				Attributes: []Attribute{
					{Type: AttrSubpage, Params: map[string]string{"title": "Log in"}},
				},
			},
			{
				Name:     "logo",
				Selector: "#logo",
				Attributes: []Attribute{
					{Type: AttrCopyTo, Params: map[string]string{"subpage": "login", "position": "top"}},
					{Type: AttrReplace, Params: map[string]string{"attr": "src", "value": "/m/logo.png"}},
				},
			},
			{
				Name:  "styles",
				XPath: "//style[1]",
				Attributes: []Attribute{
					{Type: AttrDependency, Params: map[string]string{"subpage": "login"}},
				},
			},
		},
		Filters: []Filter{
			{Type: "title", Params: map[string]string{"value": "m.Forum"}},
		},
		Actions: []Action{
			{ID: 1, Match: `do=showpic&id=(\d+)`, Target: "http://origin.test/site.php?do=showpic&id=$1", Extract: "#pic"},
		},
	}
}

func TestValidSpecPasses(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := validSpec()
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || len(back.Objects) != 3 || len(back.Actions) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Objects[1].Attributes[0].Param("subpage", "") != "login" {
		t.Fatal("params lost")
	}
}

func TestParseRejectsBadJSON(t *testing.T) {
	if _, err := Parse([]byte("{nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Spec)
		want   string
	}{
		{func(s *Spec) { s.Name = "" }, "missing name"},
		{func(s *Spec) { s.Origin = "" }, "missing origin"},
		{func(s *Spec) { s.Objects[0].Name = "" }, "empty name"},
		{func(s *Spec) { s.Objects[1].Name = "login" }, "duplicate object"},
		{func(s *Spec) { s.Objects[0].Selector = "" }, "exactly one"},
		{func(s *Spec) { s.Objects[0].XPath = "//x" }, "exactly one"},
		{func(s *Spec) { s.Objects[0].Selector = ":bad(" }, "parsing selector"},
		{func(s *Spec) { s.Objects[2].XPath = "a[" }, "xpath"},
		{func(s *Spec) { s.Objects[0].Attributes[0].Type = "nope" }, "unknown attribute"},
		{func(s *Spec) { s.Objects[1].Attributes[0].Params["subpage"] = "ghost" }, "unknown subpage"},
		{func(s *Spec) { delete(s.Objects[1].Attributes[0].Params, "subpage") }, "requires a subpage"},
		{func(s *Spec) { s.Filters[0].Type = "nope" }, "unknown filter"},
		{func(s *Spec) { s.Actions[0].Match = "(" }, "action 1 match"},
		{func(s *Spec) { s.Actions[0].Target = "" }, "needs match and target"},
		{func(s *Spec) { s.Actions[0].Extract = ":bad(" }, "extract"},
		{func(s *Spec) { s.Actions = append(s.Actions, Action{ID: 1, Match: "x", Target: "y"}) }, "duplicate action"},
		{func(s *Spec) { s.Snapshot.Fidelity = "ultra" }, "fidelity"},
		{func(s *Spec) { s.Snapshot.Scale = -1 }, "scale"},
	}
	for i, c := range cases {
		s := validSpec()
		c.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("case %d: expected error containing %q", i, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want contains %q", i, err, c.want)
		}
	}
}

func TestRelocateNeedsTarget(t *testing.T) {
	s := validSpec()
	s.Objects[0].Attributes = append(s.Objects[0].Attributes, Attribute{Type: AttrRelocate})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "relocate requires") {
		t.Fatalf("err = %v", err)
	}
}

func TestFindHelpers(t *testing.T) {
	s := validSpec()
	if o, ok := s.FindObject("logo"); !ok || o.Selector != "#logo" {
		t.Fatal("FindObject wrong")
	}
	if _, ok := s.FindObject("nope"); ok {
		t.Fatal("missing object found")
	}
	if a, ok := s.FindAction(1); !ok || a.Extract != "#pic" {
		t.Fatal("FindAction wrong")
	}
	if _, ok := s.FindAction(9); ok {
		t.Fatal("missing action found")
	}
}

func TestAttrHelpers(t *testing.T) {
	o := validSpec().Objects[1]
	if !o.HasAttr(AttrCopyTo) || o.HasAttr(AttrSubpage) {
		t.Fatal("HasAttr wrong")
	}
	a, ok := o.Attr(AttrReplace)
	if !ok || a.Param("attr", "") != "src" || a.Param("missing", "d") != "d" {
		t.Fatal("Attr/Param wrong")
	}
}

func TestValidateEmptyObjectsOK(t *testing.T) {
	s := &Spec{Name: "min", Origin: "http://x/"}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionStampedAndValidated(t *testing.T) {
	s := validSpec()
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 1`) {
		t.Fatalf("version not stamped: %.80s", data)
	}
	back, err := Parse(data)
	if err != nil || back.Version != 1 {
		t.Fatalf("round trip: %v %d", err, back.Version)
	}
	// Zero version (legacy) is accepted.
	s.Version = 0
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Future versions are refused.
	s.Version = 99
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("err = %v", err)
	}
}
