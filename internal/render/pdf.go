package render

import (
	"fmt"
	"strings"

	"msite/internal/dom"
	"msite/internal/layout"
)

// PDFEngine emits the page text as a minimal but valid PDF document —
// one of the paper's pluggable output formats ("HTML, static images,
// PDF, plain text, or Flash content").
type PDFEngine struct{}

var _ Engine = PDFEngine{}

// Name implements Engine.
func (PDFEngine) Name() string { return "pdf" }

// MIME implements Engine.
func (PDFEngine) MIME() string { return "application/pdf" }

// PDF page geometry (US Letter, 1/72 inch units).
const (
	pdfPageW      = 612
	pdfPageH      = 792
	pdfMargin     = 50
	pdfFontSize   = 10
	pdfLeading    = 12
	pdfLinesPerPg = (pdfPageH - 2*pdfMargin) / pdfLeading
)

// Render implements Engine.
func (PDFEngine) Render(doc *dom.Node, _ layout.Viewport) ([]byte, error) {
	text := ExtractText(doc)
	lines := wrapPDFLines(text)
	if len(lines) == 0 {
		lines = []string{""}
	}
	var pages [][]string
	for len(lines) > 0 {
		n := pdfLinesPerPg
		if n > len(lines) {
			n = len(lines)
		}
		pages = append(pages, lines[:n])
		lines = lines[n:]
	}
	return buildPDF(pages), nil
}

// wrapPDFLines splits extracted text into page-width lines (~90 chars of
// 10pt Helvetica across a letter page).
func wrapPDFLines(text string) []string {
	const maxCols = 90
	var out []string
	for _, raw := range strings.Split(text, "\n") {
		raw = strings.TrimRight(raw, " ")
		if raw == "" {
			continue
		}
		for len(raw) > maxCols {
			cut := strings.LastIndexByte(raw[:maxCols], ' ')
			if cut <= 0 {
				cut = maxCols
			}
			out = append(out, raw[:cut])
			raw = strings.TrimLeft(raw[cut:], " ")
		}
		out = append(out, raw)
	}
	return out
}

// buildPDF assembles the object graph: catalog, page tree, one page +
// content stream per page group, and a shared Type1 Helvetica font.
func buildPDF(pages [][]string) []byte {
	var body strings.Builder
	var offsets []int

	addObj := func(content string) {
		offsets = append(offsets, body.Len())
		body.WriteString(content)
	}

	nPages := len(pages)
	// Object numbering: 1 catalog, 2 pages, 3 font, then per page i:
	// page object 4+2i, contents 5+2i.
	kids := make([]string, nPages)
	for i := range pages {
		kids[i] = fmt.Sprintf("%d 0 R", 4+2*i)
	}

	header := "%PDF-1.4\n"
	addObj("1 0 obj\n<< /Type /Catalog /Pages 2 0 R >>\nendobj\n")
	addObj(fmt.Sprintf("2 0 obj\n<< /Type /Pages /Kids [%s] /Count %d >>\nendobj\n",
		strings.Join(kids, " "), nPages))
	addObj("3 0 obj\n<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica >>\nendobj\n")

	for i, pageLines := range pages {
		stream := buildContentStream(pageLines)
		addObj(fmt.Sprintf(
			"%d 0 obj\n<< /Type /Page /Parent 2 0 R /MediaBox [0 0 %d %d] /Contents %d 0 R /Resources << /Font << /F1 3 0 R >> >> >>\nendobj\n",
			4+2*i, pdfPageW, pdfPageH, 5+2*i))
		addObj(fmt.Sprintf("%d 0 obj\n<< /Length %d >>\nstream\n%s\nendstream\nendobj\n",
			5+2*i, len(stream), stream))
	}

	var out strings.Builder
	out.WriteString(header)
	out.WriteString(body.String())

	// xref
	xrefPos := out.Len()
	nObjs := len(offsets)
	out.WriteString(fmt.Sprintf("xref\n0 %d\n", nObjs+1))
	out.WriteString("0000000000 65535 f \n")
	for _, off := range offsets {
		out.WriteString(fmt.Sprintf("%010d 00000 n \n", off+len(header)))
	}
	out.WriteString(fmt.Sprintf(
		"trailer\n<< /Size %d /Root 1 0 R >>\nstartxref\n%d\n%%%%EOF\n",
		nObjs+1, xrefPos))
	return []byte(out.String())
}

func buildContentStream(lines []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "BT\n/F1 %d Tf\n%d TL\n%d %d Td\n", pdfFontSize, pdfLeading, pdfMargin, pdfPageH-pdfMargin)
	for _, line := range lines {
		fmt.Fprintf(&b, "(%s) Tj\nT*\n", escapePDFString(line))
	}
	b.WriteString("ET")
	return b.String()
}

func escapePDFString(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '(', ')', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		default:
			if c < 0x20 || c > 0x7e {
				fmt.Fprintf(&b, "\\%03o", c)
				continue
			}
			b.WriteByte(c)
		}
	}
	return b.String()
}
