// Package render is the server-side rendering facade of m.Site — the role
// the embedded WebKit plays in the paper's prototype (§3.2). It turns
// HTML+CSS into laid-out, rasterized snapshots with a per-element
// coordinate index, and exposes a pluggable engine registry that can emit
// HTML, plain text, static images, or PDF "at any point in the rendering
// process" (§1, pluggable content adaptation).
package render

import (
	"errors"
	"fmt"
	"image"
	"sort"
	"strings"
	"sync"
	"time"

	"msite/internal/css"
	"msite/internal/dom"
	"msite/internal/html"
	"msite/internal/imaging"
	"msite/internal/layout"
	"msite/internal/obs"
	"msite/internal/raster"
)

// Snapshot is a fully rendered page: pixels plus the layout geometry
// needed to build image maps and searchable overlays.
type Snapshot struct {
	Doc    *dom.Node
	Layout *layout.Result
	Image  *image.RGBA
}

// Region returns the pixel rectangle of an element in the snapshot.
func (s *Snapshot) Region(n *dom.Node) (x, y, w, h int, ok bool) {
	return s.Layout.Region(n)
}

// Renderer renders documents at a fixed viewport.
type Renderer struct {
	// Viewport is the layout width; zero uses layout.DefaultViewport.
	Viewport layout.Viewport
	// Obs, when non-nil, records layout and raster stage latencies into
	// the msite_stage_seconds histogram family.
	Obs *obs.Registry
}

// New returns a Renderer for the given viewport width.
func New(width int) *Renderer {
	return &Renderer{Viewport: layout.Viewport{Width: width}}
}

// RenderHTML tidies, parses, styles, lays out, and paints HTML source.
func (r *Renderer) RenderHTML(src string) (*Snapshot, error) {
	doc := html.Tidy(src)
	return r.RenderDoc(doc)
}

// RenderDoc renders an already-parsed document. The document is not
// modified.
func (r *Renderer) RenderDoc(doc *dom.Node) (*Snapshot, error) {
	if doc == nil {
		return nil, errors.New("render: nil document")
	}
	styler := css.StylerForDocument(doc)
	start := time.Now()
	res := layout.Layout(doc, styler, r.Viewport)
	r.observeStage("layout", time.Since(start))
	start = time.Now()
	img := raster.Paint(res, raster.Options{})
	r.observeStage("raster", time.Since(start))
	return &Snapshot{Doc: doc, Layout: res, Image: img}, nil
}

func (r *Renderer) observeStage(stage string, d time.Duration) {
	if r.Obs == nil {
		return
	}
	r.Obs.Histogram(obs.StageHistogram, "stage", stage).ObserveDuration(d)
}

// Engine converts a document to one output representation.
type Engine interface {
	// Name is the registry key, e.g. "image/low".
	Name() string
	// MIME is the produced content type.
	MIME() string
	// Render produces the output bytes for doc at the given viewport.
	Render(doc *dom.Node, vp layout.Viewport) ([]byte, error)
}

// EngineSet is a registry of named rendering engines. The zero value is
// empty; NewEngineSet returns one preloaded with the built-in engines.
type EngineSet struct {
	mu      sync.RWMutex
	engines map[string]Engine
}

// NewEngineSet returns a registry with the built-in engines: html, text,
// pdf, and one image engine per fidelity level.
func NewEngineSet() *EngineSet {
	es := &EngineSet{engines: make(map[string]Engine)}
	es.Register(HTMLEngine{})
	es.Register(TextEngine{})
	es.Register(PDFEngine{})
	for _, f := range []imaging.Fidelity{
		imaging.FidelityHigh, imaging.FidelityMedium,
		imaging.FidelityLow, imaging.FidelityThumb,
	} {
		es.Register(ImageEngine{Fidelity: f})
	}
	return es
}

// Register adds or replaces an engine under its name.
func (es *EngineSet) Register(e Engine) {
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.engines == nil {
		es.engines = make(map[string]Engine)
	}
	es.engines[e.Name()] = e
}

// Get returns the named engine.
func (es *EngineSet) Get(name string) (Engine, error) {
	es.mu.RLock()
	defer es.mu.RUnlock()
	e, ok := es.engines[name]
	if !ok {
		return nil, fmt.Errorf("render: no engine %q", name)
	}
	return e, nil
}

// Names returns the registered engine names, sorted.
func (es *EngineSet) Names() []string {
	es.mu.RLock()
	defer es.mu.RUnlock()
	names := make([]string, 0, len(es.engines))
	for name := range es.engines {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HTMLEngine emits well-formed XHTML.
type HTMLEngine struct{}

var _ Engine = HTMLEngine{}

// Name implements Engine.
func (HTMLEngine) Name() string { return "html" }

// MIME implements Engine.
func (HTMLEngine) MIME() string { return "text/html; charset=utf-8" }

// Render implements Engine.
func (HTMLEngine) Render(doc *dom.Node, _ layout.Viewport) ([]byte, error) {
	return []byte(html.RenderXHTML(doc)), nil
}

// TextEngine extracts readable plain text, one line per block-level run
// of content.
type TextEngine struct{}

var _ Engine = TextEngine{}

// Name implements Engine.
func (TextEngine) Name() string { return "text" }

// MIME implements Engine.
func (TextEngine) MIME() string { return "text/plain; charset=utf-8" }

// Render implements Engine.
func (TextEngine) Render(doc *dom.Node, _ layout.Viewport) ([]byte, error) {
	return []byte(ExtractText(doc)), nil
}

// ExtractText renders the document to plain text with block boundaries
// as newlines and collapsed whitespace.
func ExtractText(doc *dom.Node) string {
	var lines []string
	var cur strings.Builder
	flush := func() {
		line := strings.Join(strings.Fields(cur.String()), " ")
		if line != "" {
			lines = append(lines, line)
		}
		cur.Reset()
	}
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		switch n.Type {
		case dom.TextNode:
			cur.WriteString(n.Data)
			cur.WriteByte(' ')
			return
		case dom.ElementNode:
			if css.DefaultDisplay(n.Tag) == "none" {
				return
			}
			if n.Tag == "br" {
				flush()
				return
			}
		}
		isBlock := n.Type == dom.ElementNode && css.DefaultDisplay(n.Tag) != "inline"
		if isBlock {
			flush()
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			walk(c)
		}
		if isBlock {
			flush()
		}
	}
	walk(doc)
	flush()
	return strings.Join(lines, "\n") + "\n"
}

// ImageEngine renders the page to a raster snapshot at a fidelity level.
type ImageEngine struct {
	Fidelity imaging.Fidelity
}

var _ Engine = ImageEngine{}

// Name implements Engine.
func (e ImageEngine) Name() string { return "image/" + e.Fidelity.String() }

// MIME implements Engine.
func (e ImageEngine) MIME() string { return e.Fidelity.MIME() }

// Render implements Engine.
func (e ImageEngine) Render(doc *dom.Node, vp layout.Viewport) ([]byte, error) {
	styler := css.StylerForDocument(doc)
	res := layout.Layout(doc, styler, vp)
	img := raster.Paint(res, raster.Options{})
	return imaging.Encode(img, e.Fidelity)
}
