package render

import (
	"bytes"
	"strings"
	"testing"

	"msite/internal/html"
	"msite/internal/layout"
)

const samplePage = `
<html><head><title>Sample</title><style>
  body { color: black }
  #menu { background-color: #eee }
</style></head>
<body>
  <h1>Forum Index</h1>
  <div id="menu"><a href="/login">Log in</a></div>
  <p>Welcome to the community.</p>
  <script>var hidden = "nope";</script>
</body></html>`

func TestRenderHTMLProducesSnapshot(t *testing.T) {
	r := New(800)
	snap, err := r.RenderHTML(samplePage)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Image == nil || snap.Image.Bounds().Dx() != 800 {
		t.Fatalf("image bounds: %v", snap.Image.Bounds())
	}
	if snap.Layout == nil || snap.Layout.Height <= 0 {
		t.Fatal("layout missing")
	}
	menu := snap.Doc.ElementByID("menu")
	x, y, w, h, ok := snap.Region(menu)
	if !ok || w <= 0 || h <= 0 {
		t.Fatalf("region = %d,%d %dx%d ok=%v", x, y, w, h, ok)
	}
}

func TestRenderNilDoc(t *testing.T) {
	if _, err := New(800).RenderDoc(nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestEngineSetBuiltins(t *testing.T) {
	es := NewEngineSet()
	names := es.Names()
	want := []string{"html", "image/high", "image/low", "image/medium", "image/thumb", "pdf", "text"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("names = %v", names)
	}
	if _, err := es.Get("nope"); err == nil {
		t.Fatal("missing engine should error")
	}
}

func TestEngineSetRegisterReplaces(t *testing.T) {
	es := NewEngineSet()
	es.Register(HTMLEngine{})
	if len(es.Names()) != 7 {
		t.Fatalf("names = %v", es.Names())
	}
}

func TestHTMLEngine(t *testing.T) {
	doc := html.Tidy(`<p>x<br>`)
	out, err := (HTMLEngine{}).Render(doc, layout.Viewport{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "<br />") {
		t.Fatalf("not XHTML: %s", out)
	}
	if (HTMLEngine{}).MIME() != "text/html; charset=utf-8" {
		t.Fatal("mime wrong")
	}
}

func TestTextEngine(t *testing.T) {
	doc := html.Parse(samplePage)
	out, err := (TextEngine{}).Render(doc, layout.Viewport{})
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	if !strings.Contains(text, "Forum Index") || !strings.Contains(text, "Welcome to the community.") {
		t.Fatalf("text = %q", text)
	}
	if strings.Contains(text, "hidden") || strings.Contains(text, "Sample") {
		t.Fatalf("script/title leaked: %q", text)
	}
	// Blocks become separate lines.
	if !strings.Contains(text, "Forum Index\n") {
		t.Fatalf("no line break after block: %q", text)
	}
}

func TestExtractTextBr(t *testing.T) {
	doc := html.Parse(`<p>one<br>two</p>`)
	text := ExtractText(doc)
	if !strings.Contains(text, "one\ntwo") {
		t.Fatalf("br not a line break: %q", text)
	}
}

func TestImageEngines(t *testing.T) {
	doc := html.Parse(samplePage)
	es := NewEngineSet()
	high, err := es.Get("image/high")
	if err != nil {
		t.Fatal(err)
	}
	png, err := high.Render(doc, layout.Viewport{Width: 600})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(png, []byte("\x89PNG")) {
		t.Fatal("not a PNG")
	}
	low, _ := es.Get("image/low")
	jpg, err := low.Render(doc, layout.Viewport{Width: 600})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(jpg, []byte("\xff\xd8")) {
		t.Fatal("not a JPEG")
	}
	// PNG vs JPEG sizes only order on complex pages; the fidelity ladder
	// on the full forum page is exercised by the §3.3 experiment bench.
}

func TestPDFEngineStructure(t *testing.T) {
	doc := html.Parse(samplePage)
	out, err := (PDFEngine{}).Render(doc, layout.Viewport{})
	if err != nil {
		t.Fatal(err)
	}
	pdf := string(out)
	for _, marker := range []string{"%PDF-1.4", "/Type /Catalog", "/Type /Page", "/Helvetica", "xref", "trailer", "startxref", "%%EOF"} {
		if !strings.Contains(pdf, marker) {
			t.Fatalf("pdf missing %q", marker)
		}
	}
	if !strings.Contains(pdf, "(Forum Index)") {
		t.Fatal("pdf missing page text")
	}
}

func TestPDFEscaping(t *testing.T) {
	doc := html.Parse(`<p>paren (x) and back\slash</p>`)
	out, err := (PDFEngine{}).Render(doc, layout.Viewport{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `\(x\)`) {
		t.Fatalf("parens not escaped")
	}
	if !strings.Contains(string(out), `back\\slash`) {
		t.Fatal("backslash not escaped")
	}
}

func TestPDFMultiPage(t *testing.T) {
	var b strings.Builder
	b.WriteString("<html><body>")
	for i := 0; i < 200; i++ {
		b.WriteString("<p>line of text for the page body content</p>")
	}
	b.WriteString("</body></html>")
	doc := html.Parse(b.String())
	out, err := (PDFEngine{}).Render(doc, layout.Viewport{})
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(out), "/Type /Page "); n < 3 {
		t.Fatalf("pages = %d, want multi-page", n)
	}
}

func TestPDFEmptyDocument(t *testing.T) {
	doc := html.Parse(``)
	out, err := (PDFEngine{}).Render(doc, layout.Viewport{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "%%EOF") {
		t.Fatal("empty doc should still emit a valid PDF")
	}
}

func TestWrapPDFLines(t *testing.T) {
	long := strings.Repeat("word ", 40) // 200 chars
	lines := wrapPDFLines(long)
	if len(lines) < 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) > 90 {
			t.Fatalf("line too long: %d", len(l))
		}
	}
	if got := wrapPDFLines(strings.Repeat("x", 100)); len(got) != 2 {
		t.Fatalf("unbreakable line handling: %v", got)
	}
}
