// Package filter implements m.Site's source-level filter phase (§3.2):
// transformations applied to raw HTML before any DOM parse. "The page
// could be completely adapted after just a few simple filters, avoiding a
// DOM parse altogether" — this is the lightweight fast path whose cost
// asymmetry against full rendering drives the Figure 7 scalability
// result.
package filter

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"msite/internal/spec"
)

// Precompiled patterns for the built-in filters.
var (
	reDoctype   = regexp.MustCompile(`(?is)<!doctype[^>]*>`)
	reTitle     = regexp.MustCompile(`(?is)<title[^>]*>.*?</title>`)
	reScript    = regexp.MustCompile(`(?is)<script[^>]*>.*?</script>|<script[^>]*/>`)
	reStyle     = regexp.MustCompile(`(?is)<style[^>]*>.*?</style>`)
	reStyleLink = regexp.MustCompile(`(?is)<link[^>]*rel=["']?stylesheet["']?[^>]*>`)
	reImgSrc    = regexp.MustCompile(`(?is)(<img[^>]*\bsrc=)("([^"]+)"|'([^']+)'|([^\s>"'][^\s>]*))`)
	reHeadOpen  = regexp.MustCompile(`(?is)<head[^>]*>`)
	reHTMLOpen  = regexp.MustCompile(`(?is)<html[^>]*>`)
)

// Apply runs each filter over src in order. Unknown filter types are an
// error (Validate on the spec should have caught them earlier).
func Apply(src string, filters []spec.Filter) (string, error) {
	for i, f := range filters {
		var err error
		src, err = applyOne(src, f)
		if err != nil {
			return "", fmt.Errorf("filter %d (%s): %w", i, f.Type, err)
		}
	}
	return src, nil
}

func applyOne(src string, f spec.Filter) (string, error) {
	param := func(key, def string) string {
		if v, ok := f.Params[key]; ok {
			return v
		}
		return def
	}
	switch f.Type {
	case "doctype":
		return SetDoctype(src, param("value", "html")), nil
	case "title":
		return SetTitle(src, param("value", "")), nil
	case "strip-scripts":
		return StripScripts(src), nil
	case "strip-css":
		return StripCSS(src), nil
	case "rewrite-images":
		if prefix := param("prefix", ""); prefix != "" {
			return RewriteImages(src, func(orig string) string {
				return prefix + orig
			}), nil
		}
		pattern, replace := param("pattern", ""), param("replace", "")
		if pattern == "" {
			return "", fmt.Errorf("rewrite-images needs prefix or pattern")
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return "", fmt.Errorf("compiling pattern: %w", err)
		}
		return RewriteImages(src, func(orig string) string {
			return re.ReplaceAllString(orig, replace)
		}), nil
	case "replace":
		pattern := param("pattern", "")
		if pattern == "" {
			return "", fmt.Errorf("replace needs a pattern")
		}
		re, err := compileCached(pattern)
		if err != nil {
			return "", fmt.Errorf("compiling pattern: %w", err)
		}
		return re.ReplaceAllString(src, param("with", "")), nil
	default:
		return "", fmt.Errorf("unknown filter type %q", f.Type)
	}
}

// SetDoctype replaces (or prepends) the document's doctype — the paper's
// example of an "extremely simple filter".
func SetDoctype(src, doctype string) string {
	decl := "<!DOCTYPE " + doctype + ">"
	if reDoctype.MatchString(src) {
		return reDoctype.ReplaceAllString(src, decl)
	}
	return decl + "\n" + src
}

// SetTitle replaces (or inserts) the document title.
func SetTitle(src, title string) string {
	element := "<title>" + title + "</title>"
	if reTitle.MatchString(src) {
		return reTitle.ReplaceAllString(src, element)
	}
	if loc := reHeadOpen.FindStringIndex(src); loc != nil {
		return src[:loc[1]] + element + src[loc[1]:]
	}
	// No <head>: synthesize one right after <html>, or failing that after
	// the doctype — never in front of it, which would emit invalid markup.
	if loc := reHTMLOpen.FindStringIndex(src); loc != nil {
		return src[:loc[1]] + "<head>" + element + "</head>" + src[loc[1]:]
	}
	if loc := reDoctype.FindStringIndex(src); loc != nil {
		return src[:loc[1]] + "<head>" + element + "</head>" + src[loc[1]:]
	}
	return "<head>" + element + "</head>" + src
}

// StripScripts blanket-removes script elements at the source level.
func StripScripts(src string) string {
	return reScript.ReplaceAllString(src, "")
}

// StripCSS blanket-removes style blocks and stylesheet links.
func StripCSS(src string) string {
	return reStyleLink.ReplaceAllString(reStyle.ReplaceAllString(src, ""), "")
}

// RewriteImages rewrites every <img src> through fn — the paper's
// "rewriting all images to reference a low-fidelity image cache or
// different server". Double-quoted, single-quoted, and legacy unquoted
// src values are all rewritten; unquoted values come back quoted so the
// rewritten URL survives characters the bare form could not carry.
func RewriteImages(src string, fn func(string) string) string {
	return reImgSrc.ReplaceAllStringFunc(src, func(m string) string {
		parts := reImgSrc.FindStringSubmatch(m)
		if parts == nil {
			return m
		}
		switch {
		case strings.HasPrefix(parts[2], `"`):
			return parts[1] + `"` + fn(parts[3]) + `"`
		case strings.HasPrefix(parts[2], "'"):
			return parts[1] + "'" + fn(parts[4]) + "'"
		default:
			return parts[1] + `"` + fn(parts[5]) + `"`
		}
	})
}

// compileCached caches user-supplied replace patterns; proxies run the
// same filter list on every request.
var (
	reCacheMu sync.Mutex
	reCache   = make(map[string]*regexp.Regexp)
)

func compileCached(pattern string) (*regexp.Regexp, error) {
	reCacheMu.Lock()
	defer reCacheMu.Unlock()
	if re, ok := reCache[pattern]; ok {
		return re, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	if len(reCache) > 512 { // bound growth from hostile specs
		reCache = make(map[string]*regexp.Regexp)
	}
	reCache[pattern] = re
	return re, nil
}

// Identify returns the source spans matching a regex pattern — the
// paper's source-level object identification ("matching objects and
// content with regular expressions", §3.1).
func Identify(src, pattern string) ([]string, error) {
	re, err := compileCached(pattern)
	if err != nil {
		return nil, fmt.Errorf("filter: compiling identify pattern: %w", err)
	}
	matches := re.FindAllString(src, -1)
	// Copy out of the (potentially huge) source string.
	out := make([]string, len(matches))
	for i, m := range matches {
		out[i] = strings.Clone(m)
	}
	return out, nil
}
