package filter

import (
	"strings"
	"testing"

	"msite/internal/spec"
)

const page = `<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Transitional//EN">
<html><head>
<title>SawmillCreek Woodworking</title>
<link rel="stylesheet" href="/clientscript/vbulletin.css">
<style type="text/css">.tborder { background: #fff }</style>
<script type="text/javascript" src="/clientscript/yui.js"></script>
<script>var SESSIONURL = "";</script>
</head><body>
<img src="/images/logo.gif" alt="logo">
<img src='/images/banner.png'>
<p>content</p>
</body></html>`

func TestSetDoctype(t *testing.T) {
	out := SetDoctype(page, "html")
	if !strings.HasPrefix(out, "<!DOCTYPE html>") {
		t.Fatalf("prefix = %q", out[:40])
	}
	if strings.Count(out, "<!DOCTYPE") != 1 {
		t.Fatal("duplicate doctype")
	}
	// Missing doctype gets prepended.
	out = SetDoctype("<html></html>", "html")
	if !strings.HasPrefix(out, "<!DOCTYPE html>") {
		t.Fatal("doctype not prepended")
	}
}

func TestSetTitle(t *testing.T) {
	out := SetTitle(page, "m.Sawmill")
	if !strings.Contains(out, "<title>m.Sawmill</title>") {
		t.Fatal("title not replaced")
	}
	if strings.Contains(out, "Woodworking</title>") {
		t.Fatal("old title remains")
	}
	// Page without a title gets one inserted in head.
	out = SetTitle("<html><head></head><body></body></html>", "X")
	if !strings.Contains(out, "<head><title>X</title>") {
		t.Fatalf("title not inserted: %q", out)
	}
}

func TestStripScripts(t *testing.T) {
	out := StripScripts(page)
	if strings.Contains(out, "<script") || strings.Contains(out, "SESSIONURL") {
		t.Fatal("scripts remain")
	}
	if !strings.Contains(out, "<p>content</p>") {
		t.Fatal("content lost")
	}
}

func TestStripCSS(t *testing.T) {
	out := StripCSS(page)
	if strings.Contains(out, "<style") || strings.Contains(out, "stylesheet") {
		t.Fatal("css remains")
	}
	if !strings.Contains(out, "<script") {
		t.Fatal("scripts should remain")
	}
}

func TestRewriteImages(t *testing.T) {
	out := RewriteImages(page, func(src string) string {
		return "/lowfi" + src
	})
	if !strings.Contains(out, `src="/lowfi/images/logo.gif"`) {
		t.Fatalf("double-quoted src not rewritten: %s", out)
	}
	if !strings.Contains(out, `src='/lowfi/images/banner.png'`) {
		t.Fatal("single-quoted src not rewritten")
	}
}

func TestApplyChain(t *testing.T) {
	out, err := Apply(page, []spec.Filter{
		{Type: "doctype", Params: map[string]string{"value": "html"}},
		{Type: "title", Params: map[string]string{"value": "Mobile"}},
		{Type: "strip-scripts"},
		{Type: "rewrite-images", Params: map[string]string{"prefix": "/cache"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "<!DOCTYPE html>") ||
		!strings.Contains(out, "<title>Mobile</title>") ||
		strings.Contains(out, "<script") ||
		!strings.Contains(out, "/cache/images/logo.gif") {
		t.Fatalf("chain output wrong: %s", out)
	}
}

func TestApplyRewritePattern(t *testing.T) {
	out, err := Apply(page, []spec.Filter{
		{Type: "rewrite-images", Params: map[string]string{
			"pattern": `\.png$`, "replace": ".jpg",
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "banner.jpg") || !strings.Contains(out, "logo.gif") {
		t.Fatal("pattern rewrite wrong")
	}
}

func TestApplyReplaceFilter(t *testing.T) {
	out, err := Apply("ad ad ad", []spec.Filter{
		{Type: "replace", Params: map[string]string{"pattern": "ad", "with": "x"}},
	})
	if err != nil || out != "x x x" {
		t.Fatalf("replace = %q, %v", out, err)
	}
}

func TestApplyErrors(t *testing.T) {
	cases := []spec.Filter{
		{Type: "nope"},
		{Type: "replace"},
		{Type: "replace", Params: map[string]string{"pattern": "("}},
		{Type: "rewrite-images"},
	}
	for _, f := range cases {
		if _, err := Apply("x", []spec.Filter{f}); err == nil {
			t.Errorf("filter %+v should fail", f)
		}
	}
}

func TestIdentify(t *testing.T) {
	got, err := Identify(page, `<img[^>]+>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("matches = %d", len(got))
	}
	if _, err := Identify(page, "("); err == nil {
		t.Fatal("bad pattern should fail")
	}
}

func TestStripScriptsMultiline(t *testing.T) {
	src := "<script>\nline1\nline2\n</script>after"
	if got := StripScripts(src); got != "after" {
		t.Fatalf("got %q", got)
	}
}

// TestRewriteImagesQuotingForms: the original reImgSrc only matched
// quoted src values, silently leaving legacy unquoted src=logo.png
// pointing at the origin.
func TestRewriteImagesQuotingForms(t *testing.T) {
	prefix := func(s string) string { return "/lowfi" + s }
	cases := []struct {
		name, in, want string
	}{
		{"double-quoted", `<img src="/a.png">`, `<img src="/lowfi/a.png">`},
		{"single-quoted", `<img src='/b.png'>`, `<img src='/lowfi/b.png'>`},
		{"unquoted", `<img src=/c.png>`, `<img src="/lowfi/c.png">`},
		{"unquoted with following attr", `<img src=/logo.png border=0>`, `<img src="/lowfi/logo.png" border=0>`},
		{"unquoted last before close", `<img alt=x src=/d.gif>`, `<img alt=x src="/lowfi/d.gif">`},
		{"mixed document", `<p><img src="/a.png"><img src=/c.png></p>`,
			`<p><img src="/lowfi/a.png"><img src="/lowfi/c.png"></p>`},
		{"not an img", `<script src=app.js></script>`, `<script src=app.js></script>`},
	}
	for _, tc := range cases {
		if got := RewriteImages(tc.in, prefix); got != tc.want {
			t.Errorf("%s: RewriteImages(%q) = %q, want %q", tc.name, tc.in, got, tc.want)
		}
	}
}

// TestSetTitleNoHeadKeepsDoctypeFirst: the fallback used to prepend the
// title element in front of the doctype, emitting invalid markup.
func TestSetTitleNoHeadKeepsDoctypeFirst(t *testing.T) {
	src := "<!DOCTYPE html>\n<body><p>content</p></body>"
	got := SetTitle(src, "Mobile")
	if !strings.HasPrefix(got, "<!DOCTYPE html>") {
		t.Fatalf("doctype no longer first: %q", got)
	}
	if !strings.Contains(got, "<head><title>Mobile</title></head>") {
		t.Fatalf("title not inserted in a synthesized head: %q", got)
	}
	if strings.Index(got, "<title>") > strings.Index(got, "<body>") {
		t.Fatalf("title inserted after body: %q", got)
	}
}

func TestSetTitleNoHeadInsertsInsideHTML(t *testing.T) {
	src := `<!DOCTYPE html><html lang="en"><body><p>content</p></body></html>`
	got := SetTitle(src, "Mobile")
	htmlAt := strings.Index(got, `<html lang="en">`)
	titleAt := strings.Index(got, "<title>")
	if htmlAt < 0 || titleAt < htmlAt {
		t.Fatalf("title not inside html element: %q", got)
	}
	if !strings.Contains(got, `<html lang="en"><head><title>Mobile</title></head>`) {
		t.Fatalf("head not synthesized after <html>: %q", got)
	}
}

func TestSetTitleBareFragment(t *testing.T) {
	got := SetTitle("<p>just a fragment</p>", "Mobile")
	if !strings.HasPrefix(got, "<head><title>Mobile</title></head>") {
		t.Fatalf("fragment fallback wrong: %q", got)
	}
}
