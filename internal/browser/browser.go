// Package browser emulates the heavyweight server-side browser instance
// that m.Site falls back to "only when absolutely necessary" (§1, §4.6).
// Launching an Instance pays full engine setup (framebuffer allocation
// plus a warm-up render, standing in for process launch and chrome
// initialization), and every Load runs the complete parse → cascade →
// layout → raster → encode pipeline. The cost asymmetry between this path
// and the lightweight proxy path is exactly what Figure 7 measures.
package browser

import (
	"errors"
	"fmt"
	"image"
	"sync"

	"msite/internal/imaging"
	"msite/internal/layout"
	"msite/internal/render"
)

// DefaultHeight is the emulated screen height for the framebuffer.
const DefaultHeight = 768

// warmupPage is rendered at launch, standing in for browser chrome and
// profile initialization.
const warmupPage = `<html><head><style>
body { margin: 0; background-color: #dddddd }
.toolbar { background-color: #bbbbbb; height: 28px; border: 1px solid #888888 }
.tab { background-color: #eeeeee; width: 180px; height: 24px }
</style></head><body>
<div class="toolbar"><div class="tab">New Tab</div></div>
<p>about:blank</p>
</body></html>`

// Instance is one emulated browser process.
type Instance struct {
	renderer    *render.Renderer
	framebuffer *image.RGBA
	closed      bool
	loads       int
}

// Launch starts a browser instance at the given viewport width. It is
// deliberately the expensive operation: callers that can avoid it (the
// lightweight proxy path) scale two orders of magnitude further.
func Launch(width int) (*Instance, error) {
	if width <= 0 {
		width = layout.DefaultViewport.Width
	}
	inst := &Instance{
		renderer:    render.New(width),
		framebuffer: image.NewRGBA(image.Rect(0, 0, width, DefaultHeight)),
	}
	// Warm-up render: parse, style, lay out, and paint the chrome page.
	snap, err := inst.renderer.RenderHTML(warmupPage)
	if err != nil {
		return nil, fmt.Errorf("browser: warm-up render: %w", err)
	}
	copyToFramebuffer(inst.framebuffer, snap.Image)
	return inst, nil
}

// Load renders a page through the full browser pipeline and returns the
// snapshot. It fails after Close.
func (i *Instance) Load(src string) (*render.Snapshot, error) {
	if i.closed {
		return nil, errors.New("browser: instance closed")
	}
	snap, err := i.renderer.RenderHTML(src)
	if err != nil {
		return nil, err
	}
	copyToFramebuffer(i.framebuffer, snap.Image)
	i.loads++
	return snap, nil
}

// LoadAndEncode renders a page and encodes the snapshot at a fidelity
// level, the end-to-end cost of a graphical pre-render request.
func (i *Instance) LoadAndEncode(src string, f imaging.Fidelity) ([]byte, error) {
	snap, err := i.Load(src)
	if err != nil {
		return nil, err
	}
	return imaging.Encode(snap.Image, f)
}

// Loads reports how many pages this instance has rendered.
func (i *Instance) Loads() int { return i.loads }

// Close releases the instance. Further Loads fail.
func (i *Instance) Close() {
	i.closed = true
	i.framebuffer = nil
}

func copyToFramebuffer(fb *image.RGBA, img *image.RGBA) {
	if fb == nil || img == nil {
		return
	}
	b := fb.Bounds().Intersect(img.Bounds())
	for y := b.Min.Y; y < b.Max.Y; y++ {
		copy(fb.Pix[fb.PixOffset(b.Min.X, y):fb.PixOffset(b.Max.X, y)],
			img.Pix[img.PixOffset(b.Min.X, y):img.PixOffset(b.Max.X, y)])
	}
}

// Pool is an optional pool of reusable instances. The paper notes the
// prototype does not use one because sharing instances between clients
// "can potentially violate security assumptions" (§4.6); the pool exists
// for the ablation benchmark that quantifies what pooling would buy.
type Pool struct {
	width int

	mu   sync.Mutex
	idle []*Instance
	max  int
	live int
}

// NewPool returns a pool bounded to max live instances.
func NewPool(width, max int) *Pool {
	if max < 1 {
		max = 1
	}
	return &Pool{width: width, max: max}
}

// Acquire returns an idle instance or launches one, blocking never: when
// the pool is exhausted it launches anyway (the bound applies to reuse,
// not to peak concurrency, matching the paper's unpooled baseline).
func (p *Pool) Acquire() (*Instance, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		inst := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return inst, nil
	}
	p.live++
	p.mu.Unlock()
	return Launch(p.width)
}

// Release returns an instance for reuse, or closes it when the pool is
// full.
func (p *Pool) Release(inst *Instance) {
	if inst == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle) < p.max {
		p.idle = append(p.idle, inst)
		return
	}
	p.live--
	inst.Close()
}

// Close shuts down every idle instance.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, inst := range p.idle {
		inst.Close()
	}
	p.idle = nil
}
