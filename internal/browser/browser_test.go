package browser

import (
	"testing"

	"msite/internal/imaging"
)

const page = `<html><body><h1>Title</h1><p>body text</p></body></html>`

func TestLaunchAndLoad(t *testing.T) {
	inst, err := Launch(800)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	snap, err := inst.Load(page)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Image.Bounds().Dx() != 800 {
		t.Fatalf("width = %d", snap.Image.Bounds().Dx())
	}
	if inst.Loads() != 1 {
		t.Fatalf("loads = %d", inst.Loads())
	}
}

func TestLaunchDefaultWidth(t *testing.T) {
	inst, err := Launch(0)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	snap, err := inst.Load(page)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Image.Bounds().Dx() != 1024 {
		t.Fatalf("default width = %d", snap.Image.Bounds().Dx())
	}
}

func TestLoadAfterCloseFails(t *testing.T) {
	inst, err := Launch(400)
	if err != nil {
		t.Fatal(err)
	}
	inst.Close()
	if _, err := inst.Load(page); err == nil {
		t.Fatal("expected error after close")
	}
}

func TestLoadAndEncode(t *testing.T) {
	inst, err := Launch(600)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	data, err := inst.LoadAndEncode(page, imaging.FidelityLow)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != 0xff {
		t.Fatal("not a JPEG")
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(400, 2)
	defer p.Close()
	a, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Load(page); err != nil {
		t.Fatal(err)
	}
	p.Release(a)
	b, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatal("pool did not reuse idle instance")
	}
	if b.Loads() != 1 {
		t.Fatal("reused instance lost state")
	}
	p.Release(b)
}

func TestPoolOverflowCloses(t *testing.T) {
	p := NewPool(400, 1)
	defer p.Close()
	a, _ := p.Acquire()
	b, _ := p.Acquire()
	p.Release(a) // fills the pool
	p.Release(b) // overflow: must be closed
	if _, err := b.Load(page); err == nil {
		t.Fatal("overflow instance should be closed")
	}
	if _, err := a.Load(page); err != nil {
		t.Fatal("pooled instance should stay live")
	}
}

func TestPoolReleaseNil(t *testing.T) {
	p := NewPool(400, 1)
	p.Release(nil) // must not panic
	p.Close()
}

func TestPoolMinimumMax(t *testing.T) {
	p := NewPool(400, 0)
	a, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	p.Release(a)
	b, _ := p.Acquire()
	if a != b {
		t.Fatal("max clamped to 1 should still pool one instance")
	}
	p.Release(b)
	p.Close()
}
