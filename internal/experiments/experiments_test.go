package experiments

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"msite/internal/origin"
)

func originServer(t *testing.T) *httptest.Server {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	srv := httptest.NewServer(forum.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestProfilePage(t *testing.T) {
	srv := originServer(t)
	p, err := ProfilePage(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalBytes < 100_000 || p.Requests < 20 {
		t.Fatalf("profile = %+v", p)
	}
	if p.Complexity.Scripts != 12 {
		t.Fatalf("scripts = %d", p.Complexity.Scripts)
	}
}

// TestTable1Shape asserts the reproduction preserves the paper's shape:
// mobile direct ≫ cached snapshot, desktop ≪ mobile, WiFi ≪ 3G, and
// the measured snapshot generation is server-fast.
func TestTable1Shape(t *testing.T) {
	srv := originServer(t)
	rows, err := Table1(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]Table1Row{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.Measured <= 0 {
			t.Fatalf("row %q non-positive", r.Label)
		}
	}
	bbDirect := byLabel["BlackBerry Tour browser page load"].Measured
	bbSnap := byLabel["Cached snapshot page to BlackBerry"].Measured
	iphone3G := byLabel["iPhone 4 via 3G"].Measured
	iphoneWiFi := byLabel["iPhone 4 via WiFi"].Measured
	desktop := byLabel["Desktop browser page load"].Measured
	snapGen := byLabel["Snapshot page generation"].Measured

	if bbDirect < 10*time.Second || bbDirect > 40*time.Second {
		t.Fatalf("BlackBerry direct = %v, paper 20 s", bbDirect)
	}
	if factor := float64(bbDirect) / float64(bbSnap); factor < 3 || factor > 20 {
		t.Fatalf("direct/snapshot = %.1f, paper 20s/5s = 4", factor)
	}
	if iphone3G <= iphoneWiFi {
		t.Fatal("3G should exceed WiFi")
	}
	if desktop >= iphoneWiFi {
		t.Fatal("desktop should beat iPhone WiFi")
	}
	if desktop < 500*time.Millisecond || desktop > 4*time.Second {
		t.Fatalf("desktop = %v, paper 1.5 s", desktop)
	}
	// Snapshot generation is real server work: fast but non-trivial.
	if snapGen > 5*time.Second {
		t.Fatalf("snapshot generation = %v", snapGen)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "BlackBerry Tour") || !strings.Contains(out, "simulated") {
		t.Fatalf("format: %s", out)
	}
}

func TestFigure7SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv := originServer(t)
	points, err := Figure7(Fig7Config{
		OriginURL:   srv.URL + "/",
		Window:      250 * time.Millisecond,
		Percentages: []float64{0, 50, 100},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if !(points[0].ReqPerMin > points[1].ReqPerMin && points[1].ReqPerMin > points[2].ReqPerMin) {
		t.Fatalf("throughput not decreasing in browser%%: %+v", points)
	}
	if ratio := points[0].ReqPerMin / points[2].ReqPerMin; ratio < 10 {
		t.Fatalf("0%%/100%% ratio = %.1f", ratio)
	}
	out := FormatFig7(points)
	if !strings.Contains(out, "req/min") || !strings.Contains(out, "ratio") {
		t.Fatalf("format: %s", out)
	}
}

func TestImageFidelityLadder(t *testing.T) {
	srv := originServer(t)
	rows, err := ImageFidelity(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The §3.3 shape: a high-fidelity full-page PNG of hundreds of KB
	// (paper: ≈600 KB) whose scaled reduced-fidelity form lands in the
	// paper's 25–50 KB band, a ≥8x reduction.
	high, thumb := rows[0].Bytes, rows[3].Bytes
	if high < 300_000 || high > 2_000_000 {
		t.Fatalf("high = %d bytes, want ≈600 KB scale", high)
	}
	if thumb < 15_000 || thumb > 80_000 {
		t.Fatalf("thumb = %d bytes, want paper's 25–50 KB band", thumb)
	}
	if high < thumb*8 {
		t.Fatalf("high=%d thumb=%d, want ≥8x reduction", high, thumb)
	}
	// Ladder ordering within the JPEG family.
	if !(rows[1].Bytes > rows[2].Bytes && rows[2].Bytes > rows[3].Bytes) {
		t.Fatalf("jpeg ladder not monotone: %+v", rows)
	}
	out := FormatFidelity(rows)
	if !strings.Contains(out, "high") {
		t.Fatal("format wrong")
	}
}

func TestPreRenderSpeedup(t *testing.T) {
	srv := originServer(t)
	res, err := PreRenderSpeedup(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "reduce wall-clock load time by a factor of 5" (Table 1:
	// 20 s → 5 s = 4x). Accept 3–20x.
	if res.Factor < 3 || res.Factor > 20 {
		t.Fatalf("speedup = %.1fx", res.Factor)
	}
}

func TestMeasurePageWeight(t *testing.T) {
	srv := originServer(t)
	w, err := MeasurePageWeight(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalBytes < 145_000 || w.TotalBytes > 305_000 {
		t.Fatalf("bytes = %d, paper 224,477", w.TotalBytes)
	}
	if w.Scripts != 12 {
		t.Fatalf("scripts = %d, paper ~12", w.Scripts)
	}
	if !strings.Contains(FormatPageWeight(w), "total bytes") {
		t.Fatal("format wrong")
	}
}

func TestCacheAblation(t *testing.T) {
	srv := originServer(t)
	row, err := CacheAblation(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if row.Baseline < row.Variant*10 {
		t.Fatalf("render %v should dwarf cache hit %v", row.Baseline, row.Variant)
	}
}

func TestSpecForForumValid(t *testing.T) {
	sp := SpecForForum("http://origin.test")
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sp.Objects) != 7 || len(sp.Actions) != 1 {
		t.Fatalf("spec shape: %d objects, %d actions", len(sp.Objects), len(sp.Actions))
	}
}

func TestErrorPropagation(t *testing.T) {
	if _, err := Table1("http://127.0.0.1:1/"); err == nil {
		t.Fatal("dead origin accepted")
	}
	if _, err := ImageFidelity("http://127.0.0.1:1/"); err == nil {
		t.Fatal("dead origin accepted")
	}
	if _, err := MeasurePageWeight("http://127.0.0.1:1/"); err == nil {
		t.Fatal("dead origin accepted")
	}
}

// TestOverloadScenario runs the PR's overload chaos bench with tiny
// budgets: the flash crowd must coalesce to one pipeline run and every
// admission invariant must hold.
func TestOverloadScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Overload(OverloadConfig{
		Crowd:         4,
		ExtraSites:    3,
		MaxConcurrent: 1,
		QueueLen:      1,
		RateLimit:     5,
		RateBurst:     15, // roomy enough for the cookieless phases' shared address bucket
		Hammer:        40,
		CapSlack:      1,
		CapProbes:     3,
		OriginLatency: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.CrowdAdaptations != 1 {
		t.Fatalf("crowd ran %.0f adaptations, want 1", rep.CrowdAdaptations)
	}
	if rep.Squeeze503 == 0 || rep.Hammer429 == 0 || rep.Cap503 == 0 {
		t.Fatalf("missing sheds: squeeze=%d hammer=%d cap=%d",
			rep.Squeeze503, rep.Hammer429, rep.Cap503)
	}
	if !strings.Contains(FormatOverload(rep), "flash crowd") {
		t.Fatal("format wrong")
	}
}
