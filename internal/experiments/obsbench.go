package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"msite/internal/core"
	"msite/internal/netsim"
	"msite/internal/obs"
	"msite/internal/origin"
)

// ObsConfig tunes the observability scenario; the zero value reproduces
// the PR's acceptance run: measure warm-path instrumentation overhead
// against an uninstrumented twin, then inject an origin latency spike
// and require the SLO engine's burn-rate alert to trip the flight
// recorder into a complete incident bundle.
type ObsConfig struct {
	// WarmBatches is how many warm-request batches run against EACH
	// proxy, interleaved to cancel machine drift (default 8).
	WarmBatches int
	// WarmRequests is the requests per batch (default 150).
	WarmRequests int
	// OverheadBudget bounds the warm-path slowdown with the full second
	// tier enabled, as a fraction (default 0.05 = 5%).
	OverheadBudget float64
	// SLOTargetP99 is the latency objective the spike must violate
	// (default 250 ms — a histogram bucket bound).
	SLOTargetP99 time.Duration
	// SpikeLatency is the injected origin latency during the spike
	// (default 400 ms, past the objective).
	SpikeLatency time.Duration
	// SpikeRequests is how many forced-refresh requests ride the spike
	// (default 12).
	SpikeRequests int
	// DetectBudget bounds how long after the spike starts the incident
	// bundle must appear at /debug/incidents (default 20 s).
	DetectBudget time.Duration
}

func (cfg ObsConfig) withDefaults() ObsConfig {
	if cfg.WarmBatches <= 0 {
		cfg.WarmBatches = 8
	}
	if cfg.WarmRequests <= 0 {
		cfg.WarmRequests = 150
	}
	if cfg.OverheadBudget <= 0 {
		cfg.OverheadBudget = 0.05
	}
	if cfg.SLOTargetP99 <= 0 {
		cfg.SLOTargetP99 = 250 * time.Millisecond
	}
	if cfg.SpikeLatency <= 0 {
		cfg.SpikeLatency = 400 * time.Millisecond
	}
	if cfg.SpikeRequests <= 0 {
		cfg.SpikeRequests = 12
	}
	if cfg.DetectBudget <= 0 {
		cfg.DetectBudget = 20 * time.Second
	}
	return cfg
}

// ObsReport is the PR's observability record (BENCH_PR6.json).
type ObsReport struct {
	WarmBatches    int     `json:"warm_batches"`
	WarmRequests   int     `json:"warm_requests_per_batch"`
	BaselineUS     float64 `json:"baseline_warm_us"`
	InstrumentedUS float64 `json:"instrumented_warm_us"`
	// OverheadPercent is the measured warm-path slowdown (median batch
	// mean vs median batch mean; negative = in the noise).
	OverheadPercent float64 `json:"overhead_percent"`
	BudgetPercent   float64 `json:"overhead_budget_percent"`

	// TraceID is the X-MSite-Trace header of one warm request; it must
	// appear verbatim in the proxy's trace ring.
	TraceID        string  `json:"trace_id"`
	TraceInRingOK  bool    `json:"trace_in_ring_ok"`
	SLOTargetP99MS float64 `json:"slo_target_p99_ms"`
	SpikeLatencyMS float64 `json:"spike_latency_ms"`
	SpikeRequests  int     `json:"spike_requests"`

	// DetectMS is spike start → incident visible at /debug/incidents.
	DetectMS       float64  `json:"detect_ms"`
	IncidentName   string   `json:"incident_name"`
	IncidentReason string   `json:"incident_reason"`
	BundleFiles    []string `json:"bundle_files"`
	// TailTraceMaxMS is the slowest trace in the bundle's tail
	// reservoir; it must reach the injected spike.
	TailTraceMaxMS float64 `json:"tail_trace_max_ms"`
	CPUProfileB    int     `json:"cpu_profile_bytes"`
	HeapProfileB   int     `json:"heap_profile_bytes"`
	GoroutineDumpB int     `json:"goroutine_dump_bytes"`

	// Alerting lists the objectives in the alerting state when the
	// incident was detected.
	Alerting []string `json:"alerting_objectives"`

	// Violations are failed invariants; a clean run has none and the
	// bench exits nonzero otherwise.
	Violations []string `json:"violations"`
}

// Obs runs the observability scenario: two identical proxies — one bare,
// one with the full second tier (SLO engine on a fast clock, health
// sampler, flight recorder) — serve interleaved warm batches to measure
// instrumentation overhead; then an injected origin latency spike must
// trip the burn-rate watchdog into a complete incident bundle readable
// over /debug/incidents.
func Obs(cfg ObsConfig) (*ObsReport, error) {
	cfg = cfg.withDefaults()
	rep := &ObsReport{
		WarmBatches:    cfg.WarmBatches,
		WarmRequests:   cfg.WarmRequests,
		BudgetPercent:  cfg.OverheadBudget * 100,
		SLOTargetP99MS: float64(cfg.SLOTargetP99) / float64(time.Millisecond),
		SpikeLatencyMS: float64(cfg.SpikeLatency) / float64(time.Millisecond),
		SpikeRequests:  cfg.SpikeRequests,
	}
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	// One origin behind a latency injector, shared by both proxies. The
	// injector starts disabled (pass-through); the spike phase enables
	// it, adding SpikeLatency to every origin round trip.
	forum := origin.NewForum(origin.DefaultForumConfig())
	injector := netsim.NewInjector(netsim.FaultConfig{Latency: cfg.SpikeLatency})
	injector.SetEnabled(false)
	originSrv := httptest.NewServer(injector.Wrap(forum.Handler()))
	defer originSrv.Close()

	root, err := os.MkdirTemp("", "msite-obs-*")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(root) }()
	incidentDir := root + "/incidents"

	newFramework := func(sessions string, instrumented bool) (*core.Framework, error) {
		c := core.Config{
			SessionRoot:  sessions,
			FetchTimeout: 30 * time.Second,
		}
		if instrumented {
			// Compressed SLO clock: evaluate every 100 ms over a 1 s fast
			// window so one spiked request alerts within a tick or two.
			c.SLOTargetP99 = cfg.SLOTargetP99
			c.SLOAvailability = 0.999
			c.SLOInterval = 100 * time.Millisecond
			c.SLOFastWindow = time.Second
			c.SLOSlowWindow = 2 * time.Second
			c.SLOMinEvents = 1
			c.IncidentDir = incidentDir
			c.IncidentMax = 4
			c.IncidentCPUProfile = 300 * time.Millisecond
			c.IncidentCooldown = time.Minute
			c.IncidentInterval = 200 * time.Millisecond
			c.HealthInterval = 100 * time.Millisecond
		}
		return core.New(SpecForForum(originSrv.URL), c)
	}

	base, err := newFramework(root+"/sessions-base", false)
	if err != nil {
		return nil, err
	}
	defer base.Close()
	instr, err := newFramework(root+"/sessions-instr", true)
	if err != nil {
		return nil, err
	}
	defer instr.Close()

	// Both sides serve through the metrics mux so the comparison isolates
	// the second tier (SLO ticker, health sampler, watchdog), not the
	// mux dispatch both deployments would have anyway.
	baseSrv := httptest.NewServer(base.HandlerWithMetrics())
	defer baseSrv.Close()
	instrSrv := httptest.NewServer(instr.HandlerWithMetrics())
	defer instrSrv.Close()

	// One cookied client per proxy; the first request runs the cold
	// adaptation, everything after serves warm from the render cache.
	newClient := func() (*http.Client, error) {
		jar, err := cookiejar.New(nil)
		if err != nil {
			return nil, err
		}
		return &http.Client{Jar: jar, Timeout: time.Minute}, nil
	}
	baseClient, err := newClient()
	if err != nil {
		return nil, err
	}
	instrClient, err := newClient()
	if err != nil {
		return nil, err
	}
	warmup := func(client *http.Client, url string) error {
		resp, err := client.Get(url + "/")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("warmup: status %d", resp.StatusCode)
		}
		rep.TraceID = resp.Header.Get("X-MSite-Trace")
		return nil
	}
	if err := warmup(baseClient, baseSrv.URL); err != nil {
		return nil, err
	}
	if err := warmup(instrClient, instrSrv.URL); err != nil {
		return nil, err
	}
	if rep.TraceID == "" {
		violate("warm response carried no X-MSite-Trace header")
	} else {
		for _, tr := range instr.Obs().RecentTraces() {
			if tr.ID == rep.TraceID {
				rep.TraceInRingOK = true
				break
			}
		}
		if !rep.TraceInRingOK {
			violate("trace %s from X-MSite-Trace not found in /debug/traces ring", rep.TraceID)
		}
	}

	// Overhead: request-level interleaving — each iteration times one
	// warm request against each proxy, alternating which goes first, so
	// process-wide noise (GC pauses, scheduler hiccups, machine drift)
	// lands on both sides alike. Medians of per-request latency compare
	// the two sides; the instrumented one carries the SLO ticker, health
	// sampler, watchdog, and tail reservoir while serving.
	timedGet := func(client *http.Client, url string) (float64, error) {
		start := time.Now()
		resp, err := client.Get(url + "/")
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("warm request: status %d", resp.StatusCode)
		}
		return float64(time.Since(start).Nanoseconds()) / 1e3, nil
	}
	total := cfg.WarmBatches * cfg.WarmRequests
	baseMeans := make([]float64, 0, total)
	instrMeans := make([]float64, 0, total)
	for i := 0; i < total; i++ {
		first, second := baseClient, instrClient
		firstURL, secondURL := baseSrv.URL, instrSrv.URL
		firstOut, secondOut := &baseMeans, &instrMeans
		if i%2 == 1 {
			first, second = instrClient, baseClient
			firstURL, secondURL = instrSrv.URL, baseSrv.URL
			firstOut, secondOut = &instrMeans, &baseMeans
		}
		m, err := timedGet(first, firstURL)
		if err != nil {
			return nil, err
		}
		*firstOut = append(*firstOut, m)
		m, err = timedGet(second, secondURL)
		if err != nil {
			return nil, err
		}
		*secondOut = append(*secondOut, m)
	}
	median := func(v []float64) float64 {
		s := append([]float64(nil), v...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	rep.BaselineUS = median(baseMeans)
	rep.InstrumentedUS = median(instrMeans)
	if rep.BaselineUS > 0 {
		rep.OverheadPercent = (rep.InstrumentedUS - rep.BaselineUS) / rep.BaselineUS * 100
	}
	if rep.OverheadPercent > cfg.OverheadBudget*100 {
		violate("warm-path overhead %.2f%% exceeds budget %.1f%% (%.0f us vs %.0f us)",
			rep.OverheadPercent, cfg.OverheadBudget*100, rep.InstrumentedUS, rep.BaselineUS)
	}

	// Let the warm traffic age out of the slow burn window first — a
	// multi-window alert correctly refuses to page while a long window
	// full of good events says the budget is fine.
	time.Sleep(2*time.Second + 200*time.Millisecond)

	// Spike: the origin gains SpikeLatency per round trip, and forced
	// refreshes (?refresh=1) drive requests through it. Each lands past
	// the latency objective's bucket, so the fast window's burn rate
	// explodes; the SLO alert trips the recorder directly.
	spikeStart := time.Now()
	injector.SetEnabled(true)
	var wg sync.WaitGroup
	errs := make([]error, cfg.SpikeRequests)
	for i := 0; i < cfg.SpikeRequests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := newClient()
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := client.Get(instrSrv.URL + "/?refresh=1")
			if err != nil {
				errs[i] = err
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	injector.SetEnabled(false)
	for _, err := range errs {
		if err != nil {
			violate("spike request: %v", err)
		}
	}

	// The incident must appear at /debug/incidents within the budget.
	type incidentIndex struct {
		Incidents []obs.IncidentMeta `json:"incidents"`
	}
	var incidents []obs.IncidentMeta
	deadline := time.Now().Add(cfg.DetectBudget)
	for time.Now().Before(deadline) {
		resp, err := http.Get(instrSrv.URL + "/debug/incidents")
		if err != nil {
			return nil, err
		}
		var idx incidentIndex
		err = json.NewDecoder(resp.Body).Decode(&idx)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if len(idx.Incidents) > 0 {
			incidents = idx.Incidents
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	rep.DetectMS = float64(time.Since(spikeStart)) / float64(time.Millisecond)
	if len(incidents) == 0 {
		violate("no incident bundle appeared within %v of the spike", cfg.DetectBudget)
		return rep, nil
	}
	bundle := incidents[len(incidents)-1] // oldest = the spike's
	rep.IncidentName = bundle.Name
	rep.IncidentReason = bundle.Reason
	rep.BundleFiles = bundle.Files
	if !strings.HasPrefix(bundle.Reason, "slo_burn_") {
		violate("incident reason %q, want an slo_burn_* trip", bundle.Reason)
	}

	// Every bundle artifact must be served over /debug/incidents and be
	// non-trivial.
	fetchFile := func(file string) []byte {
		resp, err := http.Get(instrSrv.URL + "/debug/incidents/" + bundle.Name + "/" + file)
		if err != nil {
			violate("fetching %s: %v", file, err)
			return nil
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			violate("fetching %s: status %d", file, resp.StatusCode)
			return nil
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			violate("reading %s: %v", file, err)
			return nil
		}
		return data
	}
	rep.GoroutineDumpB = len(fetchFile("goroutines.txt"))
	if rep.GoroutineDumpB == 0 {
		violate("goroutine dump is empty")
	}
	rep.HeapProfileB = len(fetchFile("heap.pprof"))
	if rep.HeapProfileB == 0 {
		violate("heap profile is empty")
	}
	rep.CPUProfileB = len(fetchFile("cpu.pprof"))
	if rep.CPUProfileB == 0 {
		violate("CPU profile is empty")
	}
	if len(fetchFile("metrics_delta.json")) == 0 {
		violate("metrics delta is empty")
	}
	var traces struct {
		Tail []obs.TraceRecord `json:"tail"`
	}
	if data := fetchFile("traces.json"); data != nil {
		if err := json.Unmarshal(data, &traces); err != nil {
			violate("parsing traces.json: %v", err)
		}
	}
	for _, tr := range traces.Tail {
		if tr.DurationMS > rep.TailTraceMaxMS {
			rep.TailTraceMaxMS = tr.DurationMS
		}
		if tr.ID == "" {
			violate("tail trace %q has no trace ID", tr.Name)
		}
	}
	if rep.TailTraceMaxMS < rep.SpikeLatencyMS {
		violate("slowest tail trace %.0f ms does not reach the %.0f ms spike — bundle lacks the evidence",
			rep.TailTraceMaxMS, rep.SpikeLatencyMS)
	}

	// /slo must reflect the burn (JSON view; the alert may have cleared
	// by now, so only record, don't assert).
	resp, err := http.Get(instrSrv.URL + "/slo?format=json")
	if err == nil {
		var status struct {
			Objectives []obs.ObjectiveStatus `json:"objectives"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		for _, o := range status.Objectives {
			if o.Alerting {
				rep.Alerting = append(rep.Alerting, o.Name)
			}
		}
	}
	return rep, nil
}

// FormatObs renders the observability report like the other experiment
// tables.
func FormatObs(rep *ObsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability tier (%d×%d warm requests per side, %.0f ms spike vs %.0f ms p99 objective)\n",
		rep.WarmBatches, rep.WarmRequests, rep.SpikeLatencyMS, rep.SLOTargetP99MS)
	fmt.Fprintf(&b, "warm path: baseline %.0f us, instrumented %.0f us — overhead %+.2f%% (budget %.1f%%)\n",
		rep.BaselineUS, rep.InstrumentedUS, rep.OverheadPercent, rep.BudgetPercent)
	fmt.Fprintf(&b, "trace id: %s returned via X-MSite-Trace, found in ring: %v\n", rep.TraceID, rep.TraceInRingOK)
	fmt.Fprintf(&b, "incident: %s (%s) detected %.0f ms after spike start\n",
		rep.IncidentName, rep.IncidentReason, rep.DetectMS)
	fmt.Fprintf(&b, "bundle: goroutines %d B, heap %d B, cpu %d B; slowest tail trace %.0f ms; alerting: %v\n",
		rep.GoroutineDumpB, rep.HeapProfileB, rep.CPUProfileB, rep.TailTraceMaxMS, rep.Alerting)
	if len(rep.Violations) == 0 {
		fmt.Fprintf(&b, "invariants: all held\n")
	} else {
		for _, v := range rep.Violations {
			fmt.Fprintf(&b, "VIOLATION: %s\n", v)
		}
	}
	return b.String()
}
