package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestFoldHistory(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("BENCH_PR3.json", `{"errors_5xx": 0}`)
	write("BENCH_PR10.json", `{"nodes": 3, "violations": ["too slow"]}`)
	write("BENCH_PRX.json", `{"ignored": true}`) // malformed name: skipped
	write("BENCH_PR9.broken", `not json`)        // wrong extension: skipped

	hist, err := WriteHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Keys) != 2 {
		t.Fatalf("keys = %v, want 2 entries", hist.Keys)
	}
	if hist.Keys[0] != "PR3/resilience" || hist.Keys[1] != "PR10/cluster" {
		t.Fatalf("keys not sorted by PR: %v", hist.Keys)
	}
	e := hist.Entries["PR10/cluster"]
	if e.PR != 10 || e.Scenario != "cluster" || len(e.Violations) != 1 {
		t.Fatalf("entry = %+v", e)
	}

	// The written ledger round-trips.
	data, err := os.ReadFile(filepath.Join(dir, HistoryFile))
	if err != nil {
		t.Fatal(err)
	}
	var reread History
	if err := json.Unmarshal(data, &reread); err != nil {
		t.Fatal(err)
	}
	if len(reread.Entries) != 2 {
		t.Fatalf("reread entries = %d", len(reread.Entries))
	}
}

func TestFoldHistoryRejectsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_PR4.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FoldHistory(dir); err == nil {
		t.Fatal("corrupt bench record accepted")
	}
}

// TestRepoHistoryCoversEveryBenchRecord is the tracked-ledger gate: the
// committed BENCH_HISTORY.json must carry an entry for every committed
// BENCH_PR<n>.json, so a PR cannot land its bench record without
// folding it in.
func TestRepoHistoryCoversEveryBenchRecord(t *testing.T) {
	root := "../.."
	records, err := filepath.Glob(filepath.Join(root, "BENCH_PR*.json"))
	if err != nil || len(records) == 0 {
		t.Skipf("no bench records at repo root (err=%v)", err)
	}
	want, err := FoldHistory(root)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, HistoryFile))
	if err != nil {
		t.Fatalf("%s missing at repo root: %v (run: msite-bench history)", HistoryFile, err)
	}
	var have History
	if err := json.Unmarshal(data, &have); err != nil {
		t.Fatal(err)
	}
	for key := range want.Entries {
		if _, ok := have.Entries[key]; !ok {
			t.Errorf("%s lacks %s (run: msite-bench history)", HistoryFile, key)
		}
	}
}
