package experiments

import (
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"msite/internal/cache"
	"msite/internal/core"
	"msite/internal/origin"
	"msite/internal/store"
)

// PersistenceConfig tunes the durable-store benchmark; the zero value
// reproduces the PR's acceptance scenario: a cold adaptation persisted,
// a warm restart served entirely from disk, a crash simulation with a
// torn tail, and a stalled-disk fault that must not block serving.
type PersistenceConfig struct {
	// CrashRecords is how many records the crash simulation commits
	// before the simulated crash (default 200).
	CrashRecords int
	// StalledFills is how many render fills run against the stalled
	// store (default 50).
	StalledFills int
	// StalledBudget bounds the worst acceptable fill latency while the
	// store is stalled — the "serving never blocks on the store"
	// invariant (default 250 ms).
	StalledBudget time.Duration
}

func (cfg PersistenceConfig) withDefaults() PersistenceConfig {
	if cfg.CrashRecords <= 0 {
		cfg.CrashRecords = 200
	}
	if cfg.StalledFills <= 0 {
		cfg.StalledFills = 50
	}
	if cfg.StalledBudget <= 0 {
		cfg.StalledBudget = 250 * time.Millisecond
	}
	return cfg
}

// PersistenceReport is the PR's durability record (BENCH_PR5.json):
// cold-vs-warm serving latency, recovery-scan cost, crash-safety, and
// the non-blocking write-through under a stalled disk.
type PersistenceReport struct {
	// Cold vs warm: the same entry page served by a fresh deployment
	// (full pipeline) and by a restarted one (durable artifacts only).
	ColdEntryMS     float64 `json:"cold_entry_ms"`
	WarmEntryMS     float64 `json:"warm_entry_ms"`
	ColdAdaptations uint64  `json:"cold_adaptations"`
	WarmAdaptations uint64  `json:"warm_adaptations"`
	WarmRenders     uint64  `json:"warm_snapshot_renders"`
	WarmHitRatio    float64 `json:"warm_store_hit_ratio"`
	RecoveryScanMS  float64 `json:"recovery_scan_ms"`
	StoreRecords    int     `json:"store_records"`
	StoreBytes      int64   `json:"store_bytes"`

	// Crash simulation: records committed under fsync=always, process
	// abandoned without Close, garbage appended over the tail.
	CrashCommitted int     `json:"crash_committed_records"`
	CrashRecovered float64 `json:"crash_recovered_records"`
	CrashLost      int     `json:"crash_lost_records"`
	CrashScanMS    float64 `json:"crash_scan_ms"`

	// Stalled-disk fault: fills against a store whose writes block
	// forever must still serve at memory speed, dropping write-throughs.
	StalledFills      int     `json:"stalled_fills"`
	StalledMaxFillMS  float64 `json:"stalled_max_fill_ms"`
	StalledBudgetMS   float64 `json:"stalled_budget_ms"`
	StalledWriteDrops uint64  `json:"stalled_write_drops"`

	// Violations lists every broken acceptance invariant; the bench
	// exits nonzero when it is non-empty.
	Violations []string `json:"violations"`
}

// stalledTier is a cache.SecondTier whose writes block until release is
// closed — the stuck-disk fault for the non-blocking invariant.
type stalledTier struct {
	release chan struct{}
}

func (s *stalledTier) Get(string) ([]byte, string, time.Time, bool) {
	return nil, "", time.Time{}, false
}

func (s *stalledTier) Put(string, []byte, string, time.Duration) error {
	<-s.release
	return nil
}

func (s *stalledTier) Delete(string) error {
	<-s.release
	return nil
}

// Persistence runs the durable-store benchmark: cold adapt + persist,
// warm restart over the same store directory, a crash simulation, and a
// stalled-writer fault.
func Persistence(cfg PersistenceConfig) (*PersistenceReport, error) {
	cfg = cfg.withDefaults()
	rep := &PersistenceReport{
		StalledBudgetMS: float64(cfg.StalledBudget) / float64(time.Millisecond),
	}

	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	defer originSrv.Close()

	root, err := os.MkdirTemp("", "msite-persistence-*")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(root) }()
	storeDir := filepath.Join(root, "store")

	boot := func() (*core.Framework, *httptest.Server, error) {
		fw, err := core.New(SpecForForum(originSrv.URL), core.Config{
			SessionRoot:  filepath.Join(root, "sessions"),
			FetchTimeout: 30 * time.Second,
			StoreDir:     storeDir,
			StoreFsync:   "always",
		})
		if err != nil {
			return nil, nil, err
		}
		return fw, httptest.NewServer(fw.Handler()), nil
	}
	serve := func(srv *httptest.Server, path string) (time.Duration, error) {
		jar, err := cookiejar.New(nil)
		if err != nil {
			return 0, err
		}
		client := &http.Client{Jar: jar, Timeout: time.Minute}
		start := time.Now()
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			return 0, err
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("experiments: persistence %s status %d", path, resp.StatusCode)
		}
		return time.Since(start), nil
	}

	// Phase 1 — cold: a fresh deployment adapts, renders, and persists.
	fw, srv, err := boot()
	if err != nil {
		return nil, err
	}
	coldLatency, err := serve(srv, "/")
	srv.Close()
	if err != nil {
		fw.Close()
		return nil, err
	}
	rep.ColdEntryMS = float64(coldLatency) / float64(time.Millisecond)
	rep.ColdAdaptations = fw.ProxyStats().Adaptations
	fw.Close() // drains the write-through queue into the store

	// Phase 2 — warm restart: the same store directory, a new process.
	fw2, srv2, err := boot()
	if err != nil {
		return nil, err
	}
	warmLatency, err := serve(srv2, "/")
	srv2.Close()
	if err != nil {
		fw2.Close()
		return nil, err
	}
	rep.WarmEntryMS = float64(warmLatency) / float64(time.Millisecond)
	warmStats := fw2.ProxyStats()
	rep.WarmAdaptations = warmStats.Adaptations
	rep.WarmRenders = warmStats.SnapshotRenders
	st := fw2.Store().Stats()
	rep.RecoveryScanMS = float64(st.ScanDuration) / float64(time.Millisecond)
	rep.StoreRecords = st.Records
	rep.StoreBytes = st.LiveBytes
	if total := st.Hits + st.Misses; total > 0 {
		rep.WarmHitRatio = float64(st.Hits) / float64(total)
	}
	fw2.Close()

	if rep.WarmHitRatio < 0.9 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("warm store hit ratio %.2f < 0.90", rep.WarmHitRatio))
	}
	if rep.WarmRenders != 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("warm restart re-rendered the snapshot %d times", rep.WarmRenders))
	}
	if rep.WarmAdaptations != 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("warm restart re-ran the pipeline %d times", rep.WarmAdaptations))
	}

	// Phase 3 — crash simulation: commit records under fsync=always,
	// abandon the store without Close (the crash), scribble garbage over
	// the log tail, and reopen. Every committed record must survive.
	if err := crashSim(rep, filepath.Join(root, "crash"), cfg.CrashRecords); err != nil {
		return nil, err
	}
	if rep.CrashLost > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("crash recovery lost %d of %d committed records", rep.CrashLost, rep.CrashCommitted))
	}

	// Phase 4 — stalled writer: serving must never block on the store.
	if err := stalledWriter(rep, cfg); err != nil {
		return nil, err
	}
	if rep.StalledMaxFillMS > rep.StalledBudgetMS {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("fill blocked %.0f ms on a stalled store (budget %.0f ms)",
				rep.StalledMaxFillMS, rep.StalledBudgetMS))
	}
	if rep.StalledWriteDrops == 0 {
		rep.Violations = append(rep.Violations,
			"stalled store dropped no write-throughs (backpressure not exercised)")
	}
	return rep, nil
}

// crashSim commits n records durably, abandons the store mid-flight,
// corrupts the log tail, and measures recovery.
func crashSim(rep *PersistenceReport, dir string, n int) error {
	st, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncAlways})
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("render:%04d", i)
		if err := st.Put(key, []byte(strings.Repeat("x", 64)+key), "text/html", time.Hour); err != nil {
			return err
		}
	}
	rep.CrashCommitted = n
	// The crash: no Close, no final sync. fsync=always already made every
	// Put durable. Then a torn write lands over the tail of the live
	// segment — the half-flushed record a real crash leaves behind.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		return fmt.Errorf("experiments: no store segments in %s: %v", dir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("\xde\xad\xbe\xefGARBAGE-half-written-record")); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		return fmt.Errorf("experiments: crash recovery open: %w", err)
	}
	defer func() { _ = st2.Close() }()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("render:%04d", i)
		if _, _, _, ok := st2.Get(key); !ok {
			rep.CrashLost++
		}
	}
	stats := st2.Stats()
	rep.CrashRecovered = float64(stats.RecoveredRecords)
	rep.CrashScanMS = float64(stats.ScanDuration) / float64(time.Millisecond)
	return nil
}

// stalledWriter runs fills through a tiered cache whose store never
// completes a write, proving the serving path stays memory-speed and
// sheds the write-throughs instead of queueing behind the stall.
func stalledWriter(rep *PersistenceReport, cfg PersistenceConfig) error {
	tier := &stalledTier{release: make(chan struct{})}
	tc := cache.NewTiered(cache.New(), tier, cache.TieredOptions{Writers: 1, QueueLen: 2})
	// LIFO: the stall releases first, so Close can drain and return.
	defer tc.Close()
	defer close(tier.release)

	var maxFill time.Duration
	for i := 0; i < cfg.StalledFills; i++ {
		key := fmt.Sprintf("render:%d", i)
		start := time.Now()
		_, err := tc.GetOrFill(key, time.Minute, func() (cache.Entry, error) {
			return cache.Entry{Data: []byte("rendered page"), MIME: "text/html"}, nil
		})
		if err != nil {
			return err
		}
		if d := time.Since(start); d > maxFill {
			maxFill = d
		}
	}
	rep.StalledFills = cfg.StalledFills
	rep.StalledMaxFillMS = float64(maxFill) / float64(time.Millisecond)
	rep.StalledWriteDrops = tc.WriteDrops()
	return nil
}

// FormatPersistence renders the durability report like the other
// experiment tables.
func FormatPersistence(rep *PersistenceReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Durable render store: warm restarts and crash safety\n")
	fmt.Fprintf(&b, "cold entry (full pipeline): %.0f ms, %d adaptation(s)\n",
		rep.ColdEntryMS, rep.ColdAdaptations)
	fmt.Fprintf(&b, "warm entry (restart, from store): %.0f ms, %d adaptations, %d snapshot renders, hit ratio %.2f\n",
		rep.WarmEntryMS, rep.WarmAdaptations, rep.WarmRenders, rep.WarmHitRatio)
	fmt.Fprintf(&b, "recovery scan: %.1f ms over %d records (%d bytes live)\n",
		rep.RecoveryScanMS, rep.StoreRecords, rep.StoreBytes)
	fmt.Fprintf(&b, "crash sim: %d committed, %.0f recovered, %d lost (scan %.1f ms)\n",
		rep.CrashCommitted, rep.CrashRecovered, rep.CrashLost, rep.CrashScanMS)
	fmt.Fprintf(&b, "stalled disk: %d fills, max %.1f ms (budget %.0f ms), %d write-throughs dropped\n",
		rep.StalledFills, rep.StalledMaxFillMS, rep.StalledBudgetMS, rep.StalledWriteDrops)
	if len(rep.Violations) > 0 {
		fmt.Fprintf(&b, "VIOLATIONS:\n")
		for _, v := range rep.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}
