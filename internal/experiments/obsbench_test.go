package experiments

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestObsScenario(t *testing.T) {
	rep, err := Obs(ObsConfig{
		WarmBatches:  2,
		WarmRequests: 20,
		// The overhead invariant is exercised properly by the full bench
		// run; under -race the budget is loosened so scheduler noise
		// can't flake the scenario test.
		OverheadBudget: 0.5,
		SpikeRequests:  6,
		DetectBudget:   15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if len(rep.TraceID) != 16 || !rep.TraceInRingOK {
		t.Fatalf("trace id = %q, in ring %v", rep.TraceID, rep.TraceInRingOK)
	}
	if !strings.HasPrefix(rep.IncidentReason, "slo_burn_") {
		t.Fatalf("incident reason = %q", rep.IncidentReason)
	}
	if rep.DetectMS <= 0 || rep.DetectMS > 15000 {
		t.Fatalf("detect ms = %v", rep.DetectMS)
	}
	if rep.CPUProfileB == 0 || rep.HeapProfileB == 0 || rep.GoroutineDumpB == 0 {
		t.Fatalf("bundle sizes: cpu=%d heap=%d goroutines=%d",
			rep.CPUProfileB, rep.HeapProfileB, rep.GoroutineDumpB)
	}
	if rep.TailTraceMaxMS < rep.SpikeLatencyMS {
		t.Fatalf("tail trace max %.0f ms < spike %.0f ms", rep.TailTraceMaxMS, rep.SpikeLatencyMS)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not serializable: %v", err)
	}
	if FormatObs(rep) == "" {
		t.Fatal("empty format")
	}
}
