package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"msite/internal/attr"
	"msite/internal/cache"
	"msite/internal/imaging"
	"msite/internal/origin"
	"msite/internal/proxy"
	"msite/internal/session"
)

// StreamingConfig tunes the streaming-vs-buffered serving bench; the
// zero value uses a 120 ms injected origin latency and 5 cold trials
// per mode.
type StreamingConfig struct {
	// Latency is the injected per-request origin delay. Streaming's
	// whole argument is that TTFB should not pay this (or the pipeline
	// behind it), so the contrast needs a WAN-shaped origin.
	Latency time.Duration
	// Trials is how many cold entry loads each mode gets; percentiles
	// come from this sample.
	Trials int
}

// StreamingMode summarizes one serving mode's cold-entry latency
// distribution, all in milliseconds as measured by the client.
type StreamingMode struct {
	// TTFB is time to the first response body byte.
	TTFBP50MS float64 `json:"ttfb_p50_ms"`
	TTFBP99MS float64 `json:"ttfb_p99_ms"`
	// ATF is time until the above-the-fold content is complete at the
	// client: the ATF marker for streamed responses, the whole page for
	// buffered ones (buffered serving delivers everything at once).
	ATFP50MS float64 `json:"atf_p50_ms"`
	ATFP99MS float64 `json:"atf_p99_ms"`
	// Total is time until the entry document is fully received.
	TotalP50MS float64 `json:"total_p50_ms"`
}

// StreamingReport is the PR's flush-early serving record
// (BENCH_PR7.json): cold-entry TTFB and ATF-complete percentiles for
// buffered vs streamed serving against the same latency-injected
// origin, plus the byte-identity check on the final full-fidelity
// snapshot the two modes converge on.
type StreamingReport struct {
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
	OriginLatencyMS float64 `json:"origin_latency_ms"`
	Trials          int     `json:"trials"`

	Buffered  StreamingMode `json:"buffered"`
	Streaming StreamingMode `json:"streaming"`

	// TTFBSpeedupP50 and ATFSpeedupP50 are buffered/streaming ratios at
	// the median; the acceptance bar for the PR is TTFBSpeedupP50 >= 3.
	TTFBSpeedupP50 float64 `json:"ttfb_speedup_p50"`
	ATFSpeedupP50  float64 `json:"atf_speedup_p50"`

	// SnapshotIdentical reports whether the streamed (progressive) and
	// buffered proxies produced byte-identical full-fidelity snapshots
	// for the same origin content.
	SnapshotIdentical bool `json:"snapshot_identical"`
	SnapshotBytes     int  `json:"snapshot_bytes"`

	// Violations are failed invariants; non-empty fails the bench.
	Violations []string `json:"violations"`
}

// entryTiming is one cold entry load as the client saw it.
type entryTiming struct {
	ttfb  time.Duration
	atf   time.Duration
	total time.Duration
}

// Streaming runs the flush-early serving bench: for each mode, every
// trial builds a fresh proxy, session root, and cache (a true cold
// start), loads the entry page through a latency-injected origin, and
// records client-side TTFB, ATF-complete, and total-read times.
func Streaming(cfg StreamingConfig) (*StreamingReport, error) {
	if cfg.Latency <= 0 {
		cfg.Latency = 120 * time.Millisecond
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 5
	}

	forum := origin.NewForum(origin.DefaultForumConfig())
	srv := httptest.NewServer(LatencyHandler(forum.Handler(), cfg.Latency))
	defer srv.Close()
	originURL := strings.TrimSuffix(srv.URL, "/")

	rep := &StreamingReport{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		OriginLatencyMS: float64(cfg.Latency) / float64(time.Millisecond),
		Trials:          cfg.Trials,
	}

	buffered, bufSnap, err := measureStreamingMode(originURL, proxy.Config{}, cfg.Trials)
	if err != nil {
		return nil, fmt.Errorf("experiments: streaming bench, buffered mode: %w", err)
	}
	streamed, streamSnap, err := measureStreamingMode(originURL, proxy.Config{
		Stream:              true,
		SnapshotProgressive: true,
	}, cfg.Trials)
	if err != nil {
		return nil, fmt.Errorf("experiments: streaming bench, streaming mode: %w", err)
	}

	rep.Buffered = summarizeTimings(buffered)
	rep.Streaming = summarizeTimings(streamed)
	if rep.Streaming.TTFBP50MS > 0 {
		rep.TTFBSpeedupP50 = rep.Buffered.TTFBP50MS / rep.Streaming.TTFBP50MS
	}
	if rep.Streaming.ATFP50MS > 0 {
		rep.ATFSpeedupP50 = rep.Buffered.ATFP50MS / rep.Streaming.ATFP50MS
	}

	rep.SnapshotIdentical = bytes.Equal(bufSnap, streamSnap)
	rep.SnapshotBytes = len(streamSnap)

	if rep.Streaming.TTFBP50MS >= rep.Buffered.TTFBP50MS {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"streaming p50 TTFB (%.1f ms) not below buffered (%.1f ms)",
			rep.Streaming.TTFBP50MS, rep.Buffered.TTFBP50MS))
	}
	if !rep.SnapshotIdentical {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"full-fidelity snapshot differs between modes (%d vs %d bytes)",
			len(bufSnap), len(streamSnap)))
	}
	if len(bufSnap) == 0 {
		rep.Violations = append(rep.Violations, "buffered snapshot is empty")
	}
	return rep, nil
}

// measureStreamingMode runs trials cold entry loads with the given
// proxy knobs, returning per-trial timings and the full-fidelity
// snapshot bytes from the final trial.
func measureStreamingMode(originURL string, base proxy.Config, trials int) ([]entryTiming, []byte, error) {
	var timings []entryTiming
	var snapshot []byte
	for i := 0; i < trials; i++ {
		t, snap, err := coldStreamTrial(originURL, base)
		if err != nil {
			return nil, nil, err
		}
		timings = append(timings, t)
		snapshot = snap
	}
	return timings, snapshot, nil
}

// coldStreamTrial builds a fresh proxy and measures one entry load:
// TTFB at the first body byte, ATF-complete when the ATF marker (or,
// for buffered serving, the whole document) has arrived, total at EOF.
// It then fetches the full-fidelity snapshot asset — for the streamed
// proxy this waits on the background render — so the caller can check
// the two modes converge on identical bytes.
func coldStreamTrial(originURL string, pcfg proxy.Config) (entryTiming, []byte, error) {
	dir, err := os.MkdirTemp("", "msite-streaming-*")
	if err != nil {
		return entryTiming{}, nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	sessions, err := session.NewManager(dir)
	if err != nil {
		return entryTiming{}, nil, err
	}
	pcfg.Spec = SpecForForum(originURL)
	pcfg.Sessions = sessions
	pcfg.Cache = cache.New()
	p, err := proxy.New(pcfg)
	if err != nil {
		return entryTiming{}, nil, err
	}
	proxySrv := httptest.NewServer(p)
	defer proxySrv.Close()
	jar, err := cookiejar.New(nil)
	if err != nil {
		return entryTiming{}, nil, err
	}
	client := &http.Client{Jar: jar, Timeout: 2 * time.Minute}

	start := time.Now()
	resp, err := client.Get(proxySrv.URL + "/")
	if err != nil {
		return entryTiming{}, nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return entryTiming{}, nil, fmt.Errorf("entry status %d", resp.StatusCode)
	}

	var t entryTiming
	var body []byte
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if t.ttfb == 0 {
				t.ttfb = time.Since(start)
			}
			body = append(body, buf[:n]...)
			if t.atf == 0 && bytes.Contains(body, []byte(attr.ATFMarker)) {
				t.atf = time.Since(start)
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return entryTiming{}, nil, rerr
		}
	}
	t.total = time.Since(start)
	if t.atf == 0 {
		// Buffered serving has no marker: the page is complete, and with
		// it everything above the fold, when the last byte lands.
		t.atf = t.total
	}

	resp, err = client.Get(proxySrv.URL + "/asset/snapshot" + imaging.FidelityLow.Ext())
	if err != nil {
		return entryTiming{}, nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return entryTiming{}, nil, fmt.Errorf("snapshot asset status %d", resp.StatusCode)
	}
	snap, err := io.ReadAll(resp.Body)
	if err != nil {
		return entryTiming{}, nil, err
	}
	return t, snap, nil
}

// summarizeTimings reduces per-trial timings to the report percentiles.
func summarizeTimings(ts []entryTiming) StreamingMode {
	pick := func(get func(entryTiming) time.Duration, p float64) float64 {
		if len(ts) == 0 {
			return 0
		}
		vals := make([]time.Duration, len(ts))
		for i, t := range ts {
			vals[i] = get(t)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		i := int(p * float64(len(vals)-1))
		return float64(vals[i]) / float64(time.Millisecond)
	}
	ttfb := func(t entryTiming) time.Duration { return t.ttfb }
	atf := func(t entryTiming) time.Duration { return t.atf }
	total := func(t entryTiming) time.Duration { return t.total }
	return StreamingMode{
		TTFBP50MS:  pick(ttfb, 0.50),
		TTFBP99MS:  pick(ttfb, 0.99),
		ATFP50MS:   pick(atf, 0.50),
		ATFP99MS:   pick(atf, 0.99),
		TotalP50MS: pick(total, 0.50),
	}
}

// FormatStreaming renders the bench like the other experiment tables.
func FormatStreaming(rep *StreamingReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Streaming vs buffered serving (origin latency %.0f ms, %d cold trials/mode; GOMAXPROCS=%d)\n",
		rep.OriginLatencyMS, rep.Trials, rep.GOMAXPROCS)
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %12s %12s\n",
		"Mode", "TTFB p50", "TTFB p99", "ATF p50", "ATF p99", "total p50")
	line := func(name string, m StreamingMode) {
		fmt.Fprintf(&b, "%-12s %10.1fms %10.1fms %10.1fms %10.1fms %10.1fms\n",
			name, m.TTFBP50MS, m.TTFBP99MS, m.ATFP50MS, m.ATFP99MS, m.TotalP50MS)
	}
	line("buffered", rep.Buffered)
	line("streaming", rep.Streaming)
	fmt.Fprintf(&b, "p50 speedup: TTFB %.1fx, ATF-complete %.1fx\n", rep.TTFBSpeedupP50, rep.ATFSpeedupP50)
	if rep.SnapshotIdentical {
		fmt.Fprintf(&b, "full-fidelity snapshot: byte-identical across modes (%d bytes)\n", rep.SnapshotBytes)
	} else {
		b.WriteString("full-fidelity snapshot: MISMATCH between modes\n")
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v)
	}
	return b.String()
}
