package experiments

import (
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"time"

	"msite/internal/core"
	"msite/internal/netsim"
	"msite/internal/obs"
	"msite/internal/origin"
)

// ResilienceConfig tunes the chaos benchmark; the zero value reproduces
// the PR's acceptance scenario: 30% origin error rate, 2 s latency
// spikes, a forced blackout segment, and a proxy configured with
// retries, breakers, and stale serving.
type ResilienceConfig struct {
	// Requests is the chaos-phase request count (default 40).
	Requests int
	// Blackout is how many requests run against a forced full outage
	// after the chaos phase — the segment that trips the circuit breaker
	// deterministically (default 10).
	Blackout int
	// ErrorRate is the injected 503 probability (default 0.3).
	ErrorRate float64
	// ResetRate is the injected connection-reset probability
	// (default 0.05).
	ResetRate float64
	// SpikeRate/Spike inject latency spikes past the fetch deadline
	// (defaults 0.1 and 2 s).
	SpikeRate float64
	Spike     time.Duration
	// FetchTimeout is the proxy's per-request origin deadline
	// (default 400 ms — a 2 s spike is a guaranteed timeout).
	FetchTimeout time.Duration
	// Retries is the proxy's idempotent-GET retry budget (default 2).
	Retries int
	// Seed fixes the injected fault sequence.
	Seed int64
}

func (cfg ResilienceConfig) withDefaults() ResilienceConfig {
	if cfg.Requests <= 0 {
		cfg.Requests = 40
	}
	if cfg.Blackout <= 0 {
		cfg.Blackout = 10
	}
	if cfg.ErrorRate == 0 {
		cfg.ErrorRate = 0.3
	}
	if cfg.ResetRate == 0 {
		cfg.ResetRate = 0.05
	}
	if cfg.SpikeRate == 0 {
		cfg.SpikeRate = 0.1
	}
	if cfg.Spike <= 0 {
		cfg.Spike = 2 * time.Second
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 400 * time.Millisecond
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	return cfg
}

// ResilienceReport is the PR's chaos record (BENCH_PR3.json): request
// availability and latency under injected faults, plus what the
// resilience machinery did about them.
type ResilienceReport struct {
	Requests        int     `json:"requests"`
	OK              int     `json:"ok"`
	Errors5xx       int     `json:"errors_5xx"`
	AvailabilityPct float64 `json:"availability_pct"`
	P50MS           float64 `json:"p50_ms"`
	P99MS           float64 `json:"p99_ms"`

	ErrorRate      float64 `json:"origin_error_rate"`
	SpikeMS        float64 `json:"latency_spike_ms"`
	FetchTimeoutMS float64 `json:"fetch_timeout_ms"`
	Retries        int     `json:"fetch_retries"`

	StaleServed   float64 `json:"stale_served"`
	Degraded      float64 `json:"degraded"`
	RetriesSpent  float64 `json:"retries_spent"`
	BreakerOpens  float64 `json:"breaker_opens"`
	BreakerCloses float64 `json:"breaker_closes"`

	Faults netsim.FaultStats `json:"injected_faults"`
}

// counterSum totals a counter family across its label sets.
func counterSum(snap obs.Snapshot, name string) float64 {
	var total float64
	for _, c := range snap.Counters {
		if c.Name == name {
			total += float64(c.Value)
		}
	}
	return total
}

// Resilience runs the chaos benchmark: a proxy with retries, breakers,
// and stale serving fronts a fault-injected origin; after a clean
// warm-up, every request rides ?refresh=1 so each one exercises a full
// re-adaptation against the flaky origin, then a forced blackout
// segment trips the breaker. The proxy must answer every request 200 —
// degraded or stale when it has to.
func Resilience(cfg ResilienceConfig) (*ResilienceReport, error) {
	cfg = cfg.withDefaults()

	forum := origin.NewForum(origin.DefaultForumConfig())
	injector := netsim.NewInjector(netsim.FaultConfig{
		ErrorRate:    cfg.ErrorRate,
		ResetRate:    cfg.ResetRate,
		SpikeRate:    cfg.SpikeRate,
		LatencySpike: cfg.Spike,
		Seed:         cfg.Seed,
	})
	injector.SetEnabled(false) // warm up against a healthy origin
	originSrv := httptest.NewServer(injector.Wrap(forum.Handler()))
	defer originSrv.Close()

	dir, err := os.MkdirTemp("", "msite-resilience-*")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	fw, err := core.New(SpecForForum(originSrv.URL), core.Config{
		SessionRoot:     dir,
		FetchTimeout:    cfg.FetchTimeout,
		FetchRetries:    cfg.Retries,
		BreakerCooldown: 300 * time.Millisecond,
		ServeStale:      true,
		StaleFor:        time.Hour,
	})
	if err != nil {
		return nil, err
	}
	defer fw.Close()
	proxySrv := httptest.NewServer(fw.Handler())
	defer proxySrv.Close()

	jar, err := cookiejar.New(nil)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Jar: jar, Timeout: time.Minute}
	warm, err := client.Get(proxySrv.URL + "/")
	if err != nil {
		return nil, err
	}
	_ = warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("experiments: resilience warm-up status %d", warm.StatusCode)
	}

	rep := &ResilienceReport{
		ErrorRate:      cfg.ErrorRate,
		SpikeMS:        float64(cfg.Spike) / float64(time.Millisecond),
		FetchTimeoutMS: float64(cfg.FetchTimeout) / float64(time.Millisecond),
		Retries:        cfg.Retries,
	}
	var latencies []time.Duration
	hit := func() error {
		start := time.Now()
		resp, err := client.Get(proxySrv.URL + "/?refresh=1")
		if err != nil {
			return err
		}
		_ = resp.Body.Close()
		latencies = append(latencies, time.Since(start))
		rep.Requests++
		if resp.StatusCode >= 500 {
			rep.Errors5xx++
		} else if resp.StatusCode == http.StatusOK {
			rep.OK++
		}
		return nil
	}

	// Chaos phase: probabilistic errors, resets, and latency spikes.
	injector.SetEnabled(true)
	for i := 0; i < cfg.Requests; i++ {
		if err := hit(); err != nil {
			return nil, err
		}
	}
	// Blackout phase: the origin is hard down; consecutive failures trip
	// the breaker, and stale serving keeps answering.
	injector.SetDown(true)
	for i := 0; i < cfg.Blackout; i++ {
		if err := hit(); err != nil {
			return nil, err
		}
	}
	injector.SetDown(false)

	if rep.Requests > 0 {
		rep.AvailabilityPct = 100 * float64(rep.OK) / float64(rep.Requests)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	rep.P50MS = pct(0.50)
	rep.P99MS = pct(0.99)

	snap := fw.Obs().Snapshot()
	rep.StaleServed = counterSum(snap, "msite_proxy_stale_served_total")
	rep.Degraded = counterSum(snap, "msite_proxy_degraded_total")
	rep.RetriesSpent = counterSum(snap, "msite_fetch_retries_total")
	for _, c := range snap.Counters {
		if c.Name != "msite_breaker_transitions_total" {
			continue
		}
		for _, l := range c.Labels {
			if l.Key == "to" && l.Value == "open" {
				rep.BreakerOpens += float64(c.Value)
			}
			if l.Key == "to" && l.Value == "closed" {
				rep.BreakerCloses += float64(c.Value)
			}
		}
	}
	rep.Faults = injector.Stats()
	return rep, nil
}

// FormatResilience renders the chaos report like the other experiment
// tables.
func FormatResilience(rep *ResilienceReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resilience under injected faults (%.0f%% origin errors, %.0f ms spikes, %.0f ms fetch timeout, %d retries)\n",
		rep.ErrorRate*100, rep.SpikeMS, rep.FetchTimeoutMS, rep.Retries)
	fmt.Fprintf(&b, "availability: %d/%d requests OK (%.1f%%), %d served 5xx\n",
		rep.OK, rep.Requests, rep.AvailabilityPct, rep.Errors5xx)
	fmt.Fprintf(&b, "latency under fault: p50 %.0f ms, p99 %.0f ms\n", rep.P50MS, rep.P99MS)
	fmt.Fprintf(&b, "machinery: %.0f retries spent, %.0f stale serves, %.0f degraded stages, breaker opened %.0fx / closed %.0fx\n",
		rep.RetriesSpent, rep.StaleServed, rep.Degraded, rep.BreakerOpens, rep.BreakerCloses)
	fmt.Fprintf(&b, "injected: %d errors, %d resets, %d spikes, %d outage rejects over %d origin requests\n",
		rep.Faults.Errors, rep.Faults.Resets, rep.Faults.Spikes, rep.Faults.FlapRejects, rep.Faults.Requests)
	return b.String()
}
