package experiments

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

func TestLatencyHandler(t *testing.T) {
	const delay = 20 * time.Millisecond
	h := LatencyHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}), delay)
	srv := httptest.NewServer(h)
	defer srv.Close()

	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("request returned in %v, want >= %v", elapsed, delay)
	}
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestParallelAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full cold adaptations")
	}
	rep, err := ParallelAblation(ParallelConfig{Latency: 2 * time.Millisecond, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOMAXPROCS != runtime.GOMAXPROCS(0) || rep.NumCPU != runtime.NumCPU() {
		t.Fatalf("host shape not recorded: %+v", rep)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.SerialMS <= 0 || r.ParallelMS <= 0 || r.Speedup <= 0 {
			t.Fatalf("row %q has non-positive measurement: %+v", r.Name, r)
		}
	}
	// The JSON record must round-trip (it is committed as BENCH_PR2.json).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ParallelReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rows[0].Name != rep.Rows[0].Name {
		t.Fatal("JSON round-trip lost row names")
	}
	if FormatParallel(rep) == "" {
		t.Fatal("empty report")
	}
}
