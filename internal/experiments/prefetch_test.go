package experiments

import (
	"strings"
	"testing"
)

// TestPrefetchBench runs a scaled-down version of the PR's acceptance
// scenario end to end and requires a clean report.
func TestPrefetchBench(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Prefetch(PrefetchConfig{
		Sites:    3,
		Requests: 60,
		Clients:  3,
		Churns:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations: %v\n%s", rep.Violations, FormatPrefetch(rep))
	}
	if rep.PrefetchedSites != 3 {
		t.Fatalf("prefetched %d sites, want 3", rep.PrefetchedSites)
	}
	if rep.HitRatio < 0.99 {
		t.Fatalf("hit ratio = %.3f", rep.HitRatio)
	}
	if rep.Reval304s == 0 || rep.RevalOriginBytes*10 >= rep.BuildOriginBytes {
		t.Fatalf("revalidation not cheap: %d 304s, %d bytes vs %d build bytes",
			rep.Reval304s, rep.RevalOriginBytes, rep.BuildOriginBytes)
	}
	out := FormatPrefetch(rep)
	for _, want := range []string{"hit ratio", "revalidation", "first request"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}
