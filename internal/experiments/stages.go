package experiments

import (
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"msite/internal/core"
	"msite/internal/obs"
)

// StageStat is one pipeline stage's latency summary from the
// observability registry.
type StageStat struct {
	Stage string
	Count uint64
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// StageReport is the per-stage latency breakdown of the adaptation
// pipeline plus the registry's work and cache counters, gathered by
// driving a live proxy through cold, warm, and forced-refresh loads.
type StageReport struct {
	Stages          []StageStat
	Requests        uint64
	Adaptations     uint64
	SnapshotRenders uint64
	SnapshotHits    uint64
	CacheHits       uint64
	CacheMisses     uint64
	CacheFills      uint64
	// HitRatio is shared-cache hits over lookups (0 when none).
	HitRatio float64
}

// pipelineStages is the report order — the order stages run in.
var pipelineStages = []string{
	"fetch", "filter", "subres", "attr", "subpage_split",
	"layout", "raster", "encode", "adapt_total",
}

// StageBreakdown stands up a full framework against the origin, drives
// representative traffic (entry page, subpage, a second device sharing
// the snapshot cache, and a forced refresh), and reads the per-stage
// latency histograms back out of the /metrics registry.
func StageBreakdown(originURL string) (*StageReport, error) {
	sessionRoot, err := os.MkdirTemp("", "msite-stages-*")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(sessionRoot) }()

	fw, err := core.New(SpecForForum(strings.TrimSuffix(originURL, "/")), core.Config{
		SessionRoot: sessionRoot,
	})
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(fw.HandlerWithMetrics())
	defer srv.Close()

	get := func(client *http.Client, path string) error {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			return err
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("experiments: GET %s: status %d", path, resp.StatusCode)
		}
		return nil
	}
	newClient := func() (*http.Client, error) {
		jar, err := cookiejar.New(nil)
		if err != nil {
			return nil, err
		}
		return &http.Client{Jar: jar}, nil
	}

	first, err := newClient()
	if err != nil {
		return nil, err
	}
	second, err := newClient()
	if err != nil {
		return nil, err
	}
	// Cold load (full pipeline + snapshot render), subpage views, a
	// second device whose snapshot comes from the shared cache, and a
	// forced re-adaptation.
	for _, step := range []struct {
		client *http.Client
		path   string
	}{
		{first, "/"},
		{first, "/subpage/login"},
		{first, "/subpage/forums"},
		{second, "/"},
		{first, "/?refresh=1"},
	} {
		if err := get(step.client, step.path); err != nil {
			return nil, err
		}
	}

	snap := fw.Obs().Snapshot()
	report := &StageReport{}
	for _, stage := range pipelineStages {
		h, ok := snap.Histogram(obs.StageHistogram, "stage", stage)
		if !ok || h.Count == 0 {
			continue
		}
		report.Stages = append(report.Stages, StageStat{
			Stage: stage,
			Count: h.Count,
			P50:   secondsToDuration(h.P50),
			P90:   secondsToDuration(h.P90),
			P99:   secondsToDuration(h.P99),
		})
	}

	ps := fw.ProxyStats()
	report.Requests = ps.Requests
	report.Adaptations = ps.Adaptations
	report.SnapshotRenders = ps.SnapshotRenders
	report.SnapshotHits = ps.SnapshotHits

	cs := fw.CacheStats()
	report.CacheHits = cs.Hits
	report.CacheMisses = cs.Misses
	report.CacheFills = cs.Fills
	if lookups := cs.Hits + cs.Misses; lookups > 0 {
		report.HitRatio = float64(cs.Hits) / float64(lookups)
	}
	return report, nil
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// FormatStages renders the breakdown as the msite-bench report block.
func FormatStages(r *StageReport) string {
	var b strings.Builder
	b.WriteString("Pipeline stage latency breakdown (from /metrics registry)\n")
	fmt.Fprintf(&b, "%-14s %6s %12s %12s %12s\n", "stage", "count", "p50", "p90", "p99")
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "%-14s %6d %12s %12s %12s\n",
			s.Stage, s.Count, roundStage(s.P50), roundStage(s.P90), roundStage(s.P99))
	}
	fmt.Fprintf(&b, "requests: %d, adaptations: %d\n", r.Requests, r.Adaptations)
	fmt.Fprintf(&b, "snapshot renders: %d, snapshot cache hits: %d\n",
		r.SnapshotRenders, r.SnapshotHits)
	fmt.Fprintf(&b, "shared cache: %d hits / %d misses / %d fills (hit ratio %.0f%%)\n",
		r.CacheHits, r.CacheMisses, r.CacheFills, 100*r.HitRatio)
	return b.String()
}

func roundStage(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
