package experiments

import (
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"msite/internal/cache"
	"msite/internal/css"
	"msite/internal/fetch"
	"msite/internal/html"
	"msite/internal/layout"
	"msite/internal/origin"
	"msite/internal/proxy"
	"msite/internal/raster"
	"msite/internal/session"
)

// LatencyHandler wraps h, delaying every response by d — a stand-in for
// origin round-trip time, so the fetch-overlap ablations measure a
// realistic WAN origin instead of a loopback one.
func LatencyHandler(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d > 0 {
			time.Sleep(d)
		}
		h.ServeHTTP(w, r)
	})
}

// ParallelConfig tunes the serial-vs-parallel ablation; the zero value
// uses a 15 ms origin latency, the fetcher's default worker count, and
// best-of-3 trials.
type ParallelConfig struct {
	// Latency is the injected per-request origin delay.
	Latency time.Duration
	// Workers is the parallel-mode worker count for batch fetches.
	Workers int
	// Trials is how many times each mode runs; the minimum is reported.
	Trials int
}

// ParallelRow is one serial-vs-parallel comparison.
type ParallelRow struct {
	Name       string  `json:"name"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// ParallelReport is the PR's ablation record (BENCH_PR2.json). The host
// shape is recorded alongside the numbers: the paint row is CPU-bound,
// so its speedup is bounded by GOMAXPROCS, while the fetch and
// cold-adaptation rows overlap origin latency and win even on one core.
type ParallelReport struct {
	GOMAXPROCS      int           `json:"gomaxprocs"`
	NumCPU          int           `json:"num_cpu"`
	OriginLatencyMS float64       `json:"origin_latency_ms"`
	Workers         int           `json:"fetch_workers"`
	Trials          int           `json:"trials"`
	Rows            []ParallelRow `json:"rows"`
}

// ParallelAblation measures the PR's three parallelism sites serial vs
// parallel against a latency-injected internal origin: batch subresource
// fetch, band-parallel snapshot paint, and the full cold adaptation
// pipeline (fetch + adapt + raster + write).
func ParallelAblation(cfg ParallelConfig) (*ParallelReport, error) {
	if cfg.Latency <= 0 {
		cfg.Latency = 15 * time.Millisecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = fetch.DefaultWorkers
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 3
	}

	forum := origin.NewForum(origin.DefaultForumConfig())
	srv := httptest.NewServer(LatencyHandler(forum.Handler(), cfg.Latency))
	defer srv.Close()

	rep := &ParallelReport{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		OriginLatencyMS: float64(cfg.Latency) / float64(time.Millisecond),
		Workers:         cfg.Workers,
		Trials:          cfg.Trials,
	}

	fetchRow, src, err := measureFetch(srv.URL, cfg)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, fetchRow)

	paintRow, err := measurePaint(src, cfg)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, paintRow)

	coldRow, err := measureColdAdaptation(srv.URL, cfg)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, coldRow)
	return rep, nil
}

// bestOf reports the minimum wall-clock of trials runs of fn.
func bestOf(trials int, fn func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < trials; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func row(name string, serial, parallel time.Duration) ParallelRow {
	r := ParallelRow{
		Name:       name,
		SerialMS:   float64(serial) / float64(time.Millisecond),
		ParallelMS: float64(parallel) / float64(time.Millisecond),
	}
	if parallel > 0 {
		r.Speedup = float64(serial) / float64(parallel)
	}
	return r
}

// measureFetch compares FetchAll at 1 worker vs cfg.Workers over the
// entry page's subresources, returning the entry source for the paint
// stage.
func measureFetch(originURL string, cfg ParallelConfig) (ParallelRow, string, error) {
	f := fetch.New(nil)
	page, err := f.Get(originURL + "/")
	if err != nil {
		return ParallelRow{}, "", fmt.Errorf("experiments: parallel ablation entry fetch: %w", err)
	}
	refs := fetch.Subresources(page.Doc(), page.URL)
	if len(refs) == 0 {
		return ParallelRow{}, "", fmt.Errorf("experiments: entry page has no subresources to fetch")
	}
	run := func(workers int) func() error {
		return func() error {
			for _, res := range f.FetchAll(refs, workers) {
				if res.Err != nil {
					return res.Err
				}
			}
			return nil
		}
	}
	serial, err := bestOf(cfg.Trials, run(1))
	if err != nil {
		return ParallelRow{}, "", err
	}
	parallel, err := bestOf(cfg.Trials, run(cfg.Workers))
	if err != nil {
		return ParallelRow{}, "", err
	}
	name := fmt.Sprintf("subresource fetch (%d resources)", len(refs))
	return row(name, serial, parallel), string(page.Body), nil
}

// measurePaint compares the rasterizer at 1 band vs GOMAXPROCS bands on
// the laid-out entry page. CPU-bound: on a single-core host the two tie.
func measurePaint(src string, cfg ParallelConfig) (ParallelRow, error) {
	doc := html.Tidy(src)
	styler := css.StylerForDocument(doc)
	res := layout.Layout(doc, styler, layout.Viewport{Width: 1024})
	run := func(workers int) func() error {
		return func() error {
			raster.Paint(res, raster.Options{Workers: workers})
			return nil
		}
	}
	// Untimed warm-up: the first paint pays one-time allocator and cache
	// costs that would otherwise bias whichever mode runs first.
	_ = run(1)()
	serial, err := bestOf(cfg.Trials, run(1))
	if err != nil {
		return ParallelRow{}, err
	}
	parallel, err := bestOf(cfg.Trials, run(0)) // 0 = GOMAXPROCS bands
	if err != nil {
		return ParallelRow{}, err
	}
	return row("snapshot paint (band-parallel)", serial, parallel), nil
}

// measureColdAdaptation times a fresh client's first request through the
// whole proxy pipeline, once with every stage serial and once with the
// parallel defaults. Each trial gets a fresh proxy, session root, and
// cache so every request is a true cold start.
func measureColdAdaptation(originURL string, cfg ParallelConfig) (ParallelRow, error) {
	coldRequest := func(pcfg proxy.Config) error {
		dir, err := os.MkdirTemp("", "msite-ablation-*")
		if err != nil {
			return err
		}
		defer func() { _ = os.RemoveAll(dir) }()
		sessions, err := session.NewManager(dir)
		if err != nil {
			return err
		}
		pcfg.Spec = SpecForForum(strings.TrimSuffix(originURL, "/"))
		pcfg.Sessions = sessions
		pcfg.Cache = cache.New()
		p, err := proxy.New(pcfg)
		if err != nil {
			return err
		}
		proxySrv := httptest.NewServer(p)
		defer proxySrv.Close()
		jar, err := cookiejar.New(nil)
		if err != nil {
			return err
		}
		client := &http.Client{Jar: jar, Timeout: 2 * time.Minute}
		resp, err := client.Get(proxySrv.URL + "/")
		if err != nil {
			return err
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("experiments: cold adaptation status %d", resp.StatusCode)
		}
		return nil
	}
	serial, err := bestOf(cfg.Trials, func() error {
		return coldRequest(proxy.Config{FetchWorkers: 1, RasterWorkers: 1, WriteWorkers: 1})
	})
	if err != nil {
		return ParallelRow{}, err
	}
	parallel, err := bestOf(cfg.Trials, func() error {
		return coldRequest(proxy.Config{FetchWorkers: cfg.Workers})
	})
	if err != nil {
		return ParallelRow{}, err
	}
	return row("cold adaptation (end-to-end)", serial, parallel), nil
}

// FormatParallel renders the ablation like the other experiment tables.
func FormatParallel(rep *ParallelReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel pipeline ablation (origin latency %.0f ms, %d fetch workers, best of %d; GOMAXPROCS=%d, NumCPU=%d)\n",
		rep.OriginLatencyMS, rep.Workers, rep.Trials, rep.GOMAXPROCS, rep.NumCPU)
	fmt.Fprintf(&b, "%-38s %12s %12s %9s\n", "Stage", "serial", "parallel", "speedup")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-38s %10.1fms %10.1fms %8.2fx\n", r.Name, r.SerialMS, r.ParallelMS, r.Speedup)
	}
	if rep.GOMAXPROCS == 1 {
		b.WriteString("note: single-core host — the CPU-bound paint row cannot beat serial here;\n")
		b.WriteString("fetch and cold-adaptation wins come from overlapping origin latency.\n")
	}
	return b.String()
}
