package experiments

import (
	"encoding/json"
	"testing"
	"time"
)

func TestPersistenceScenario(t *testing.T) {
	rep, err := Persistence(PersistenceConfig{
		CrashRecords:  50,
		StalledFills:  20,
		StalledBudget: 2 * time.Second, // generous under -race
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.ColdAdaptations != 1 {
		t.Fatalf("cold adaptations = %d", rep.ColdAdaptations)
	}
	if rep.WarmAdaptations != 0 || rep.WarmRenders != 0 {
		t.Fatalf("warm restart did work: %d adaptations, %d renders",
			rep.WarmAdaptations, rep.WarmRenders)
	}
	if rep.WarmHitRatio < 0.9 {
		t.Fatalf("warm hit ratio = %.2f", rep.WarmHitRatio)
	}
	if rep.CrashLost != 0 || rep.CrashCommitted != 50 {
		t.Fatalf("crash sim: %d/%d lost", rep.CrashLost, rep.CrashCommitted)
	}
	if rep.CrashRecovered < 50 {
		t.Fatalf("crash sim recovered %.0f records; want >= 50", rep.CrashRecovered)
	}
	if rep.StalledWriteDrops == 0 {
		t.Fatal("stalled phase dropped no writes")
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not serializable: %v", err)
	}
	if FormatPersistence(rep) == "" {
		t.Fatal("empty format")
	}
}
