package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestClusterBench runs a scaled-down version of the PR's acceptance
// scenario end to end and requires a clean report.
func TestClusterBench(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := ClusterBench(ClusterBenchConfig{
		Sites:                6,
		Crowd:                6,
		AvailabilityRequests: 6,
		OriginLatency:        250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations: %v\n%s", rep.Violations, FormatCluster(rep))
	}
	if rep.ThroughputX < 2.4 {
		t.Fatalf("throughput %.2fx < 2.4x", rep.ThroughputX)
	}
	if rep.FlashBuilds != 1 {
		t.Fatalf("flash crowd cost %d builds", rep.FlashBuilds)
	}
	if rep.Availability5xx != 0 || !rep.RehashedOffDeadNode || !rep.RingRestoredOnRejoin {
		t.Fatalf("availability: %+v", rep)
	}
	out := FormatCluster(rep)
	for _, want := range []string{"cold throughput", "flash crowd", "node kill"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}
