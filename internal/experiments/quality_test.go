package experiments

import (
	"strings"
	"testing"
)

// TestQualityBench runs a scaled-down version of the PR's acceptance
// scenario end to end and requires a clean report: strict parity passes
// the clean corpus, every seeded drop is flagged, every repair rule
// fires and re-lints clean.
func TestQualityBench(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Quality(QualityConfig{
		Sites:   1,
		Warm:    20,
		Clients: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The overhead gate can flake on a loaded CI box; everything else in
	// Violations is a hard correctness failure.
	var hard []string
	for _, v := range rep.Violations {
		if !strings.Contains(v, "warm p99") {
			hard = append(hard, v)
		}
	}
	if len(hard) > 0 {
		t.Fatalf("violations: %v\n%s", hard, FormatQuality(rep))
	}
	if rep.DetectedMutations != rep.SeededMutations || rep.SeededMutations == 0 {
		t.Fatalf("detected %d of %d seeded mutations", rep.DetectedMutations, rep.SeededMutations)
	}
	if rep.CleanFalseFailures != 0 {
		t.Fatalf("%d false failures on the clean corpus", rep.CleanFalseFailures)
	}
	if rep.RulesFired != rep.RulesTotal || rep.LintFindingsAfter != 0 {
		t.Fatalf("repair loop incomplete: %d/%d rules fired, %d findings after",
			rep.RulesFired, rep.RulesTotal, rep.LintFindingsAfter)
	}
	if rep.InventoryItems == 0 {
		t.Fatal("empty clean-corpus inventory")
	}
	out := FormatQuality(rep)
	for _, want := range []string{"clean corpus", "seeded content drops", "repair lint", "warm p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

// TestSpecForClassifiedsValid keeps the shared classifieds spec loadable
// by the same validator real spec files go through.
func TestSpecForClassifiedsValid(t *testing.T) {
	sp := SpecForClassifieds("http://origin.example")
	if err := sp.Validate(); err != nil {
		t.Fatalf("classifieds spec invalid: %v", err)
	}
}
