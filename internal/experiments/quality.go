package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"msite/internal/core"
	"msite/internal/html"
	"msite/internal/origin"
	"msite/internal/quality"
	"msite/internal/spec"
)

// QualityConfig tunes the adaptation-quality benchmark: clean-corpus
// parity, seeded content-drop detection, the repair-rule lint loop, and
// the live overhead of running all of it in the pipeline.
type QualityConfig struct {
	// Sites is how many forum origins the clean fleet hosts alongside the
	// classifieds origin (default 2).
	Sites int
	// Warm is the timed warm-request count per side in the overhead phase
	// (default 120).
	Warm int
	// Clients is how many distinct mobile clients (cookie jars, hence
	// proxy sessions) issue the warm trace (default 4).
	Clients int
}

func (cfg QualityConfig) withDefaults() QualityConfig {
	if cfg.Sites <= 0 {
		cfg.Sites = 2
	}
	if cfg.Warm <= 0 {
		cfg.Warm = 120
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	return cfg
}

// QualityReport is the PR's adaptation-quality record (BENCH_PR9.json):
// the strict parity gate passing every clean forum/classifieds origin
// with zero false failures, flagging 100% of seeded content-drop
// mutations, every repair rule firing and re-linting clean on a broken
// page, and the whole quality pass costing ≤5% live p99.
type QualityReport struct {
	Sites int `json:"sites"`

	// Clean corpus under the strict gate: every site must serve 200 and
	// score exactly 1.0 through /debug/parity.
	CleanSites         int                `json:"clean_sites"`
	CleanFalseFailures int                `json:"clean_false_failures"`
	CleanScores        map[string]float64 `json:"clean_scores"`
	InventoryItems     int                `json:"inventory_items"`

	// Seeded mutations: overzealous filters that eat a text block, a
	// form, and a link list. Each must fail its build loudly.
	SeededMutations   int      `json:"seeded_mutations"`
	DetectedMutations int      `json:"detected_mutations"`
	MutationResults   []string `json:"mutation_results"`

	// Repair lint loop on a deliberately broken page, plus the repairs
	// the clean live runs made.
	LintFindingsBefore int    `json:"lint_findings_before"`
	RulesTotal         int    `json:"repair_rules_total"`
	RulesFired         int    `json:"repair_rules_fired"`
	LintFindingsAfter  int    `json:"lint_findings_after"`
	LiveRepairs        uint64 `json:"live_repairs_total"`

	// Overhead: identical warm traces with the full quality pass on vs
	// off (allowed +5% +2 ms).
	WarmRequests int     `json:"warm_requests"`
	P99OnMS      float64 `json:"quality_on_p99_ms"`
	P99OffMS     float64 `json:"quality_off_p99_ms"`

	Violations []string `json:"violations"`
}

// SpecForClassifieds builds a small adaptation spec for the synthetic
// classifieds origin — the second clean corpus the quality bench holds
// to the strict parity gate.
func SpecForClassifieds(originURL string) *spec.Spec {
	return &spec.Spec{
		Name:          "postings",
		Origin:        originURL + "/",
		ViewportWidth: 1024,
		Objects: []spec.Object{
			{Name: "categories", Selector: "#sidebar", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"title": "Categories"}},
			}},
		},
	}
}

// brokenMobilePage trips every repair rule at once: no viewport meta,
// fixed desktop widths on a table, an image, and a styled div, cramped
// links and inputs, and sub-floor font sizes both ways.
const brokenMobilePage = `<!DOCTYPE html><html><head><title>legacy desktop page</title></head>
<body>
<table width="1200"><tr><td>fixed-width shell</td></tr></table>
<img src="/hero.jpg" width="900" height="300">
<div style="width:700px">announcement column</div>
<a href="/a">one</a> <a href="/b">two</a> <a href="/c">three</a>
<form action="/go"><input type="text" name="q"><button name="s">go</button></form>
<span style="font-size:9px">legalese footer text</span>
<font size="1">more legalese</font>
</body></html>`

// qualityFleet is the clean corpus: N synthetic forums plus one
// classifieds site, each the origin of one spec.
type qualityFleet struct {
	originURLs []string // forum origins only, for the mutation phase
	specs      []*spec.Spec
	names      []string
}

func newQualityFleet(t interface{ Cleanup(func()) }, forums int) *qualityFleet {
	fl := &qualityFleet{}
	for i := 0; i < forums; i++ {
		forum := origin.NewForum(origin.ForumConfig{
			Name: fmt.Sprintf("Sawdust %c", 'A'+i), Members: 40_000 + i*1000,
			Forums: 24, Online: 200, Scripts: 8, Seed: int64(42 + i),
		})
		srv := httptest.NewServer(forum.Handler())
		t.Cleanup(srv.Close)
		sp := SpecForForum(srv.URL)
		sp.Name = fmt.Sprintf("forum%d", i)
		fl.originURLs = append(fl.originURLs, srv.URL)
		fl.specs = append(fl.specs, sp)
		fl.names = append(fl.names, sp.Name)
	}
	cls := origin.NewClassifieds(origin.DefaultClassifiedsConfig())
	srv := httptest.NewServer(cls.Handler())
	t.Cleanup(srv.Close)
	sp := SpecForClassifieds(srv.URL)
	fl.specs = append(fl.specs, sp)
	fl.names = append(fl.names, sp.Name)
	return fl
}

// contentDropMutations are the seeded regressions: each filter eats one
// div of the forum page — a text block, the login form, the birthday
// link list — the canonical "filter pattern got greedy" bug class.
var contentDropMutations = []struct{ name, pattern string }{
	{"drop-announcement-text", `(?is)<div id="announce".*?</div>`},
	{"drop-login-form", `(?is)<form id="loginform".*?</form>`},
	{"drop-birthday-links", `(?is)<div id="birthdays".*?</div>`},
}

// Quality runs the adaptation-quality benchmark.
func Quality(cfg QualityConfig) (*QualityReport, error) {
	cfg = cfg.withDefaults()
	rep := &QualityReport{
		Sites:       cfg.Sites + 1,
		CleanScores: make(map[string]float64),
	}

	cl := &cleanups{}
	defer cl.run()
	fleet := newQualityFleet(cl, cfg.Sites)

	root, err := os.MkdirTemp("", "msite-quality-*")
	if err != nil {
		return nil, err
	}
	cl.Cleanup(func() { _ = os.RemoveAll(root) })

	boot := func(tag string, specs []*spec.Spec, qualityOn bool) (*core.MultiFramework, *httptest.Server, error) {
		c := core.Config{
			SessionRoot:              filepath.Join(root, "sessions-"+tag),
			FetchTimeout:             30 * time.Second,
			MaxConcurrentAdaptations: 4,
		}
		if qualityOn {
			c.RepairRules = "all"
			c.ParityCheck = true
			c.ParityMinScore = 1
		}
		fw, err := core.NewMulti(specs, c)
		if err != nil {
			return nil, nil, err
		}
		// HandlerWithMetrics so the bench exercises /debug/parity too.
		srv := httptest.NewServer(fw.HandlerWithMetrics())
		return fw, srv, nil
	}

	// Phase A — the clean corpus under the strict gate. Every site must
	// build, serve 200, and score exactly 1.0: administrator-sanctioned
	// drops are exempt, so anything less is a false failure.
	fwOn, srvOn, err := boot("on", fleet.specs, true)
	if err != nil {
		return nil, err
	}
	defer fwOn.Close()
	defer srvOn.Close()

	client, err := newQualityClient()
	if err != nil {
		return nil, err
	}
	for _, name := range fleet.names {
		resp, err := client.Get(srvOn.URL + "/p/" + name + "/")
		if err != nil {
			return nil, err
		}
		_ = resp.Body.Close()
		rep.CleanSites++
		if resp.StatusCode != http.StatusOK {
			rep.CleanFalseFailures++
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("clean site %s refused under the strict parity gate (status %d)", name, resp.StatusCode))
		}
		if fails := fwOn.Obs().Counter("msite_quality_parity_failures_total", "site", name).Value(); fails > 0 {
			rep.CleanFalseFailures++
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("clean site %s tripped the parity failure counter %d time(s)", name, fails))
		}
		for _, rule := range quality.RuleNames() {
			rep.LiveRepairs += fwOn.Obs().Counter("msite_quality_repairs_total", "rule", rule, "site", name).Value()
		}
	}
	reports, err := fetchParityReports(srvOn)
	if err != nil {
		return nil, err
	}
	for _, name := range fleet.names {
		par, ok := reports[name]
		if !ok || par == nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("/debug/parity has no report for clean site %s", name))
			continue
		}
		rep.CleanScores[name] = par.Score
		rep.InventoryItems += par.TotalItems
		if par.Score != 1 || par.MissingItems != 0 {
			rep.CleanFalseFailures++
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("clean site %s scored %.4f (missing %d of %d items)",
					name, par.Score, par.MissingItems, par.TotalItems))
		}
	}
	if rep.LiveRepairs == 0 {
		rep.Violations = append(rep.Violations, "no repair rule fired on the live clean corpus")
	}

	// Phase B — seeded content drops. One mutated spec per regression,
	// all against forum origin 0; the strict gate must refuse each build
	// and say why.
	var mutSpecs []*spec.Spec
	for i, m := range contentDropMutations {
		sp := SpecForForum(fleet.originURLs[0])
		sp.Name = fmt.Sprintf("mut%d", i)
		sp.Filters = append(sp.Filters, spec.Filter{
			Type:   "replace",
			Params: map[string]string{"pattern": m.pattern},
		})
		mutSpecs = append(mutSpecs, sp)
	}
	fwMut, srvMut, err := boot("mut", mutSpecs, true)
	if err != nil {
		return nil, err
	}
	defer fwMut.Close()
	defer srvMut.Close()
	rep.SeededMutations = len(contentDropMutations)
	for i, m := range contentDropMutations {
		name := mutSpecs[i].Name
		resp, err := client.Get(srvMut.URL + "/p/" + name + "/")
		if err != nil {
			return nil, err
		}
		_ = resp.Body.Close()
		fails := fwMut.Obs().Counter("msite_quality_parity_failures_total", "site", name).Value()
		if resp.StatusCode != http.StatusOK && fails > 0 {
			rep.DetectedMutations++
			rep.MutationResults = append(rep.MutationResults,
				fmt.Sprintf("%s: detected (status %d, %d parity failure(s))", m.name, resp.StatusCode, fails))
		} else {
			rep.MutationResults = append(rep.MutationResults,
				fmt.Sprintf("%s: MISSED (status %d, %d parity failure(s))", m.name, resp.StatusCode, fails))
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("seeded mutation %s not flagged by the parity gate", m.name))
		}
	}

	// Phase C — the repair lint loop: the broken page must lint dirty,
	// every rule must fire, and the repaired page must re-lint clean.
	rules := quality.AllRules()
	rep.RulesTotal = len(rules)
	doc := html.Tidy(brokenMobilePage)
	rep.LintFindingsBefore = len(quality.CheckAll(rules, doc))
	if rep.LintFindingsBefore == 0 {
		rep.Violations = append(rep.Violations, "broken page linted clean before repair")
	}
	fired := quality.RepairAll(rules, doc)
	for _, name := range quality.RuleNames() {
		if fired[name] > 0 {
			rep.RulesFired++
		} else {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("repair rule %s made no fixes on the broken page", name))
		}
	}
	rep.LintFindingsAfter = len(quality.CheckAll(rules, doc))
	if rep.LintFindingsAfter > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("repaired page still fails lint: %v", quality.CheckAll(rules, doc)))
	}

	// Phase D — live overhead: identical warm traces against the quality
	// fleet with the pass on (phase A's framework, already warm) and a
	// twin with it off.
	fwOff, srvOff, err := boot("off", fleet.specs, false)
	if err != nil {
		return nil, err
	}
	defer fwOff.Close()
	defer srvOff.Close()

	rep.WarmRequests = cfg.Warm
	latOn, err := runQualityTrace(srvOn, fleet.names, cfg.Warm, cfg.Clients)
	if err != nil {
		return nil, err
	}
	latOff, err := runQualityTrace(srvOff, fleet.names, cfg.Warm, cfg.Clients)
	if err != nil {
		return nil, err
	}
	rep.P99OnMS = p99ms(latOn)
	rep.P99OffMS = p99ms(latOff)
	if rep.P99OnMS > rep.P99OffMS*1.05+2 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("warm p99 %.1f ms with quality on vs %.1f ms off (allowed +5%% +2 ms)",
				rep.P99OnMS, rep.P99OffMS))
	}
	return rep, nil
}

func newQualityClient() (*http.Client, error) {
	jar, err := cookiejar.New(nil)
	if err != nil {
		return nil, err
	}
	return &http.Client{Jar: jar, Timeout: time.Minute}, nil
}

// fetchParityReports reads the per-site reports off /debug/parity.
func fetchParityReports(srv *httptest.Server) (map[string]*quality.Parity, error) {
	resp, err := http.Get(srv.URL + "/debug/parity")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("experiments: /debug/parity status %d", resp.StatusCode)
	}
	var out map[string]*quality.Parity
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// runQualityTrace warms every site once, then issues warm timed requests
// round-robin across sites and clients.
func runQualityTrace(srv *httptest.Server, names []string, warm, nClients int) ([]time.Duration, error) {
	clients := make([]*http.Client, nClients)
	for i := range clients {
		c, err := newQualityClient()
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}
	get := func(client *http.Client, site string) (time.Duration, error) {
		start := time.Now()
		resp, err := client.Get(srv.URL + "/p/" + site + "/")
		if err != nil {
			return 0, err
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("experiments: quality trace %s status %d", site, resp.StatusCode)
		}
		return time.Since(start), nil
	}
	for _, client := range clients {
		for _, name := range names {
			if _, err := get(client, name); err != nil {
				return nil, err
			}
		}
	}
	latencies := make([]time.Duration, 0, warm)
	for i := 0; i < warm; i++ {
		lat, err := get(clients[i%len(clients)], names[i%len(names)])
		if err != nil {
			return nil, err
		}
		latencies = append(latencies, lat)
	}
	return latencies, nil
}

// FormatQuality renders the adaptation-quality report.
func FormatQuality(rep *QualityReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptation quality: repair rules + content-parity lint\n")
	fmt.Fprintf(&b, "clean corpus: %d sites under the strict gate, %d false failures (%d inventory items)\n",
		rep.CleanSites, rep.CleanFalseFailures, rep.InventoryItems)
	for _, name := range sortedKeys(rep.CleanScores) {
		fmt.Fprintf(&b, "  %s: parity %.4f\n", name, rep.CleanScores[name])
	}
	fmt.Fprintf(&b, "seeded content drops: %d/%d detected\n", rep.DetectedMutations, rep.SeededMutations)
	for _, r := range rep.MutationResults {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	fmt.Fprintf(&b, "repair lint: %d findings before, %d/%d rules fired, %d after (%d live repairs)\n",
		rep.LintFindingsBefore, rep.RulesFired, rep.RulesTotal, rep.LintFindingsAfter, rep.LiveRepairs)
	fmt.Fprintf(&b, "warm p99 (%d requests): %.1f ms quality on vs %.1f ms off\n",
		rep.WarmRequests, rep.P99OnMS, rep.P99OffMS)
	if len(rep.Violations) > 0 {
		fmt.Fprintf(&b, "VIOLATIONS:\n")
		for _, v := range rep.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
