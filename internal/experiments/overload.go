package experiments

import (
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"msite/internal/core"
	"msite/internal/obs"
	"msite/internal/origin"
	"msite/internal/spec"
)

// OverloadConfig tunes the overload chaos scenario; the zero value
// reproduces the PR's acceptance run: a flash crowd on one cold page, a
// capacity squeeze across several pages, a per-client hammer, and a
// session-cap probe, against a proxy with tight admission budgets.
type OverloadConfig struct {
	// Crowd is the flash-crowd size on the first (cold) site
	// (default 12).
	Crowd int
	// ExtraSites is how many additional cold sites fight for pipeline
	// slots in the capacity phase (default 6).
	ExtraSites int
	// MaxConcurrent and QueueLen are the proxy's admission budgets
	// (defaults 2 and 2) — deliberately smaller than ExtraSites so the
	// squeeze must shed.
	MaxConcurrent int
	QueueLen      int
	// RateLimit and RateBurst are the per-client budgets (defaults 50/s
	// and 100) — generous enough for the crowd, tight enough that the
	// hammer phase trips them.
	RateLimit float64
	RateBurst float64
	// Hammer is how many back-to-back requests the hammer client fires
	// (default 150, past RateBurst).
	Hammer int
	// CapSlack is how many sessions past the phases' own the -max-sessions
	// cap allows; CapProbes fresh clients then probe it (defaults 3 and 8).
	CapSlack  int
	CapProbes int
	// OriginLatency is the injected origin round-trip (default 120 ms) —
	// what makes cold builds slow enough to overlap and queue.
	OriginLatency time.Duration
	// P99Budget bounds the 99th-percentile request latency across every
	// phase (default 10 s). Shed requests must be fast; queued requests
	// must be bounded by the queue, not hang.
	P99Budget time.Duration
	// GoroutineSlack is the allowed growth in runtime goroutines after
	// the storm settles (default 50).
	GoroutineSlack int
}

func (cfg OverloadConfig) withDefaults() OverloadConfig {
	if cfg.Crowd <= 0 {
		cfg.Crowd = 12
	}
	if cfg.ExtraSites <= 0 {
		cfg.ExtraSites = 6
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 2
	}
	if cfg.RateLimit <= 0 {
		cfg.RateLimit = 50
	}
	if cfg.RateBurst <= 0 {
		cfg.RateBurst = 100
	}
	if cfg.Hammer <= 0 {
		cfg.Hammer = 150
	}
	if cfg.CapSlack <= 0 {
		cfg.CapSlack = 3
	}
	if cfg.CapProbes <= 0 {
		cfg.CapProbes = 8
	}
	if cfg.OriginLatency <= 0 {
		cfg.OriginLatency = 120 * time.Millisecond
	}
	if cfg.P99Budget <= 0 {
		cfg.P99Budget = 10 * time.Second
	}
	if cfg.GoroutineSlack <= 0 {
		cfg.GoroutineSlack = 50
	}
	return cfg
}

// OverloadReport is the PR's overload record (BENCH_PR4.json).
type OverloadReport struct {
	Crowd         int     `json:"crowd"`
	ExtraSites    int     `json:"extra_sites"`
	MaxConcurrent int     `json:"max_concurrent"`
	QueueLen      int     `json:"queue_len"`
	RateLimit     float64 `json:"rate_limit_per_sec"`
	OriginLatMS   float64 `json:"origin_latency_ms"`

	CrowdOK          int     `json:"crowd_ok"`
	CrowdAdaptations float64 `json:"crowd_adaptations"`
	Coalesced        float64 `json:"coalesced_total"`

	SqueezeOK   int `json:"squeeze_ok"`
	Squeeze503  int `json:"squeeze_503"`
	SqueezeHang int `json:"squeeze_hang"`

	Hammer429        int     `json:"hammer_429"`
	RateLimitRejects float64 `json:"ratelimit_rejects_total"`

	CapOK   int `json:"session_cap_ok"`
	Cap503  int `json:"session_cap_503"`
	CapLive int `json:"sessions_live"`

	ShedByReason map[string]float64 `json:"shed_by_reason"`

	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`

	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`

	// Violations are failed invariants; a clean run has none and the
	// bench exits nonzero otherwise.
	Violations []string `json:"violations"`
}

// Overload drives the admission-control tier through a four-phase storm
// and checks its invariants: a flash crowd coalesces to one pipeline
// run, a capacity squeeze sheds 503 + Retry-After instead of hanging, a
// hammering client is rate limited with 429, the session cap refuses
// state allocation past it, latency stays bounded, and the process does
// not leak goroutines.
func Overload(cfg OverloadConfig) (*OverloadReport, error) {
	cfg = cfg.withDefaults()

	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(LatencyHandler(forum.Handler(), cfg.OriginLatency))
	defer originSrv.Close()

	dir, err := os.MkdirTemp("", "msite-overload-*")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	// One spec per site: s0 takes the flash crowd, s1..sN fight for
	// pipeline slots. Coalescing is per page, capacity is per process.
	nSites := 1 + cfg.ExtraSites
	specs := make([]*spec.Spec, nSites)
	for i := range specs {
		sp := *SpecForForum(originSrv.URL)
		sp.Name = "s" + strconv.Itoa(i)
		specs[i] = &sp
	}
	expectedSessions := cfg.Crowd + cfg.ExtraSites + 1 // phases A + B + hammer client
	fw, err := core.NewMulti(specs, core.Config{
		SessionRoot:              dir,
		FetchTimeout:             30 * time.Second,
		MaxConcurrentAdaptations: cfg.MaxConcurrent,
		AdmissionQueue:           cfg.QueueLen,
		RateLimit:                cfg.RateLimit,
		RateBurst:                cfg.RateBurst,
		MaxSessions:              expectedSessions + cfg.CapSlack,
	})
	if err != nil {
		return nil, err
	}
	defer fw.Close()
	proxySrv := httptest.NewServer(fw.Handler())
	defer proxySrv.Close()

	rep := &OverloadReport{
		Crowd:         cfg.Crowd,
		ExtraSites:    cfg.ExtraSites,
		MaxConcurrent: cfg.MaxConcurrent,
		QueueLen:      cfg.QueueLen,
		RateLimit:     cfg.RateLimit,
		OriginLatMS:   float64(cfg.OriginLatency) / float64(time.Millisecond),
		ShedByReason:  map[string]float64{},
	}
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	runtime.GC()
	rep.GoroutinesBefore = runtime.NumGoroutine()

	var (
		latMu     sync.Mutex
		latencies []time.Duration
	)
	// get performs one timed request and enforces the never-hang
	// invariant: every response must arrive (shed or served) and every
	// shed must carry a Retry-After hint.
	get := func(client *http.Client, path string) (int, error) {
		start := time.Now()
		resp, err := client.Get(proxySrv.URL + path)
		latMu.Lock()
		latencies = append(latencies, time.Since(start))
		latMu.Unlock()
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
				violate("%d response without usable Retry-After (%q)", resp.StatusCode, resp.Header.Get("Retry-After"))
			}
		}
		return resp.StatusCode, nil
	}

	// Phase A — flash crowd: Crowd cookieless clients storm the cold s0
	// page at once. Coalescing must collapse them to ONE pipeline run.
	var wg sync.WaitGroup
	statuses := make([]int, cfg.Crowd)
	for i := 0; i < cfg.Crowd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{Timeout: time.Minute}
			code, err := get(client, "/p/s0/")
			if err != nil {
				violate("crowd client %d: %v", i, err)
				return
			}
			statuses[i] = code
		}(i)
	}
	wg.Wait()
	for _, code := range statuses {
		if code == http.StatusOK {
			rep.CrowdOK++
		}
	}
	snap := fw.Obs().Snapshot()
	for _, c := range snap.Counters {
		if c.Name == "msite_proxy_adaptations_total" && labelIs(c.Labels, "site", "s0") {
			rep.CrowdAdaptations += float64(c.Value)
		}
	}
	rep.Coalesced = counterSum(snap, "msite_admission_coalesced_total")
	if rep.CrowdOK != cfg.Crowd {
		violate("flash crowd: %d/%d served 200", rep.CrowdOK, cfg.Crowd)
	}
	if rep.CrowdAdaptations != 1 {
		violate("flash crowd ran %.0f pipeline executions, want exactly 1 (coalescing)", rep.CrowdAdaptations)
	}

	// Phase B — capacity squeeze: one cold client per extra site, all at
	// once, against MaxConcurrent slots + QueueLen queue. The overflow
	// must shed 503 fast, never hang.
	squeezeCodes := make([]int, cfg.ExtraSites)
	for i := 0; i < cfg.ExtraSites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{Timeout: time.Minute}
			code, err := get(client, "/p/s"+strconv.Itoa(i+1)+"/")
			if err != nil {
				rep.SqueezeHang++
				violate("squeeze client %d: %v", i, err)
				return
			}
			squeezeCodes[i] = code
		}(i)
	}
	wg.Wait()
	for _, code := range squeezeCodes {
		switch code {
		case http.StatusOK:
			rep.SqueezeOK++
		case http.StatusServiceUnavailable:
			rep.Squeeze503++
		}
	}
	if rep.SqueezeOK+rep.Squeeze503 != cfg.ExtraSites {
		violate("squeeze: %d OK + %d shed != %d clients", rep.SqueezeOK, rep.Squeeze503, cfg.ExtraSites)
	}
	if cfg.ExtraSites > cfg.MaxConcurrent+cfg.QueueLen && rep.Squeeze503 == 0 {
		violate("squeeze past capacity shed nothing")
	}

	// Phase C — hammer: one session-cookied client fires Hammer requests
	// back to back; past the burst it must see 429s.
	jar, err := cookiejar.New(nil)
	if err != nil {
		return nil, err
	}
	hammer := &http.Client{Jar: jar, Timeout: time.Minute}
	if _, err := get(hammer, "/p/s0/"); err != nil { // pick up a session cookie
		return nil, err
	}
	for i := 0; i < cfg.Hammer; i++ {
		code, err := get(hammer, "/p/s0/stats")
		if err != nil {
			return nil, err
		}
		if code == http.StatusTooManyRequests {
			rep.Hammer429++
		}
	}
	if rep.Hammer429 == 0 {
		violate("hammer of %d requests past burst %.0f saw no 429", cfg.Hammer, cfg.RateBurst)
	}

	// Phase D — session cap: fresh cookieless clients past -max-sessions
	// must be refused before any session state is allocated.
	for i := 0; i < cfg.CapProbes; i++ {
		client := &http.Client{Timeout: time.Minute}
		code, err := get(client, "/p/s0/")
		if err != nil {
			return nil, err
		}
		switch code {
		case http.StatusOK:
			rep.CapOK++
		case http.StatusServiceUnavailable:
			rep.Cap503++
		}
	}
	rep.CapLive = fw.Sessions().Len()
	if rep.Cap503 == 0 {
		violate("session-cap probe of %d clients past the cap saw no 503", cfg.CapProbes)
	}
	if limit := expectedSessions + cfg.CapSlack; rep.CapLive > limit {
		violate("sessions live = %d, cap %d", rep.CapLive, limit)
	}

	// Latency across every phase: sheds are fast, queued work is bounded
	// by the queue — nothing approaches a hang.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		return float64(latencies[int(p*float64(len(latencies)-1))]) / float64(time.Millisecond)
	}
	rep.P50MS = pct(0.50)
	rep.P99MS = pct(0.99)
	if budget := float64(cfg.P99Budget) / float64(time.Millisecond); rep.P99MS > budget {
		violate("p99 %.0f ms exceeds budget %.0f ms", rep.P99MS, budget)
	}

	// The storm is over: goroutines must come back down (no leaked
	// waiters, watchers, or builds). Drop the client side's idle
	// keep-alive connections so only server-side leaks would show.
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		rep.GoroutinesAfter = runtime.NumGoroutine()
		if rep.GoroutinesAfter <= rep.GoroutinesBefore+cfg.GoroutineSlack || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if rep.GoroutinesAfter > rep.GoroutinesBefore+cfg.GoroutineSlack {
		violate("goroutines grew %d -> %d (slack %d)", rep.GoroutinesBefore, rep.GoroutinesAfter, cfg.GoroutineSlack)
	}

	snap = fw.Obs().Snapshot()
	rep.RateLimitRejects = counterSum(snap, "msite_ratelimit_rejects_total")
	for _, c := range snap.Counters {
		if c.Name == "msite_admission_shed_total" {
			rep.ShedByReason[labelValueOf(c.Labels, "reason")] += float64(c.Value)
		}
	}
	for _, g := range snap.Gauges {
		if g.Name == "msite_admission_queue_depth" && g.Value != 0 {
			violate("admission queue depth = %v after the storm, want 0", g.Value)
		}
	}
	return rep, nil
}

// FormatOverload renders the overload report like the other experiment
// tables.
func FormatOverload(rep *OverloadReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overload protection (%d-client flash crowd, %d sites vs %d slots + %d queue, %.0f req/s per client, %.0f ms origin)\n",
		rep.Crowd, rep.ExtraSites+1, rep.MaxConcurrent, rep.QueueLen, rep.RateLimit, rep.OriginLatMS)
	fmt.Fprintf(&b, "flash crowd: %d/%d served, %.0f pipeline run(s), %.0f coalesced\n",
		rep.CrowdOK, rep.Crowd, rep.CrowdAdaptations, rep.Coalesced)
	fmt.Fprintf(&b, "capacity squeeze: %d served, %d shed 503, %d hung\n",
		rep.SqueezeOK, rep.Squeeze503, rep.SqueezeHang)
	fmt.Fprintf(&b, "rate limit: %d of the hammer's requests answered 429 (%.0f rejects total)\n",
		rep.Hammer429, rep.RateLimitRejects)
	fmt.Fprintf(&b, "session cap: %d admitted, %d refused, %d live sessions\n",
		rep.CapOK, rep.Cap503, rep.CapLive)
	fmt.Fprintf(&b, "latency: p50 %.0f ms, p99 %.0f ms; goroutines %d -> %d\n",
		rep.P50MS, rep.P99MS, rep.GoroutinesBefore, rep.GoroutinesAfter)
	if len(rep.Violations) == 0 {
		fmt.Fprintf(&b, "invariants: all held\n")
	} else {
		for _, v := range rep.Violations {
			fmt.Fprintf(&b, "VIOLATION: %s\n", v)
		}
	}
	return b.String()
}

// labelIs reports whether labels carries key=value.
func labelIs(labels []obs.Label, key, value string) bool {
	return labelValueOf(labels, key) == value
}

// labelValueOf returns the value of key in labels ("" when absent).
func labelValueOf(labels []obs.Label, key string) string {
	for _, l := range labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}
