// Package experiments reproduces the paper's evaluation (§4): Table 1's
// wall-clock comparison, Figure 7's throughput-vs-browser-fraction sweep,
// and the in-text page-weight, pre-render speedup, and image-fidelity
// results. Each experiment returns structured rows that cmd/msite-bench
// prints and the root bench suite asserts on, with the paper's numbers
// carried alongside for the paper-vs-measured record in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"msite/internal/attr"
	"msite/internal/css"
	"msite/internal/device"
	"msite/internal/fetch"
	"msite/internal/html"
	"msite/internal/imaging"
	"msite/internal/layout"
	"msite/internal/netsim"
	"msite/internal/raster"
	"msite/internal/spec"
	"msite/internal/workload"
)

// PageProfile captures the §4.2 cost drivers of the origin entry page,
// measured by actually fetching the page and every subresource.
type PageProfile struct {
	TotalBytes int
	Requests   int
	Complexity device.PageComplexity
	// HTMLSource is the entry page markup (reused by later stages).
	HTMLSource string
}

// ProfilePage fetches a page with all subresources and derives the
// complexity model inputs.
func ProfilePage(originURL string) (*PageProfile, error) {
	f := fetch.New(nil)
	load, err := f.GetWithResources(originURL)
	if err != nil {
		return nil, fmt.Errorf("experiments: profiling %s: %w", originURL, err)
	}
	doc := load.Page.Doc()
	c := attr.ComplexityOf(doc, load.TotalBytes, load.Requests)
	// The render source carries the site's linked stylesheets inlined,
	// exactly as the proxy's adaptation pipeline prepares pages, so
	// snapshot renders reflect the real styling and cost.
	if _, err := f.InlineStylesheets(doc, load.Page.URL); err != nil {
		return nil, err
	}
	return &PageProfile{
		TotalBytes: load.TotalBytes,
		Requests:   load.Requests,
		Complexity: device.PageComplexity{
			Bytes:      c.Bytes,
			Requests:   c.Requests,
			Elements:   c.Elements,
			Scripts:    c.Scripts,
			Images:     c.Images,
			StyleRules: c.StyleRules,
		},
		HTMLSource: html.Render(doc),
	}, nil
}

// Table1Row is one row of the Table 1 reproduction.
type Table1Row struct {
	Label string
	// Measured is this reproduction's wall-clock value: simulated
	// (device + network model) for client rows, directly measured for
	// the server-side snapshot generation row.
	Measured time.Duration
	// Paper is the paper's reported value.
	Paper time.Duration
	// Simulated marks model-derived rows (vs directly measured).
	Simulated bool
}

// Table1 reproduces "Comparison of wall-clock time from initial request
// to browsable page". originURL must serve the forum entry page.
func Table1(originURL string) ([]Table1Row, error) {
	profile, err := ProfilePage(originURL)
	if err != nil {
		return nil, err
	}

	// Server-side snapshot generation: measured for real — fetch is
	// already done; parse, style, lay out, paint, scale, and encode.
	start := time.Now()
	doc := html.Tidy(profile.HTMLSource)
	styler := css.StylerForDocument(doc)
	res := layout.Layout(doc, styler, layout.Viewport{Width: 1024})
	img := raster.Paint(res, raster.Options{})
	scaled := imaging.ScaleFactor(img, 0.45)
	snapData, err := imaging.Encode(scaled, imaging.FidelityLow)
	if err != nil {
		return nil, err
	}
	snapshotGen := time.Since(start)

	// Cached-snapshot entry page: overlay HTML + snapshot image over the
	// device link; trivial client-side complexity (one image, no
	// scripts).
	snapComplexity := device.PageComplexity{
		Bytes:    len(snapData) + 2_000, // image + overlay HTML
		Requests: 2,
		Elements: 12,
		Images:   1,
	}

	wall := func(p device.Profile, link netsim.Link, c device.PageComplexity, bytes, reqs int) time.Duration {
		return link.TransferTime(bytes, reqs) + p.ClientCPUTime(c)
	}

	rows := []Table1Row{
		{
			Label: "BlackBerry Tour browser page load",
			Measured: wall(device.BlackBerryTour, netsim.ThreeG,
				profile.Complexity, profile.TotalBytes, profile.Requests),
			Paper:     20 * time.Second,
			Simulated: true,
		},
		{
			Label:     "Snapshot page generation",
			Measured:  snapshotGen,
			Paper:     2 * time.Second,
			Simulated: false,
		},
		{
			Label: "Cached snapshot page to BlackBerry",
			Measured: wall(device.BlackBerryTour, netsim.ThreeG,
				snapComplexity, snapComplexity.Bytes, snapComplexity.Requests),
			Paper:     5 * time.Second,
			Simulated: true,
		},
		{
			Label: "iPhone 4 via 3G",
			Measured: wall(device.IPhone4, netsim.ThreeG,
				profile.Complexity, profile.TotalBytes, profile.Requests),
			Paper:     20 * time.Second,
			Simulated: true,
		},
		{
			Label: "iPhone 4 via WiFi",
			Measured: wall(device.IPhone4, netsim.WiFi,
				profile.Complexity, profile.TotalBytes, profile.Requests),
			Paper:     4500 * time.Millisecond,
			Simulated: true,
		},
		{
			Label: "Desktop browser page load",
			Measured: wall(device.Desktop, netsim.Broadband,
				profile.Complexity, profile.TotalBytes, profile.Requests),
			Paper:     1500 * time.Millisecond,
			Simulated: true,
		},
	}
	return rows, nil
}

// FormatTable1 renders the rows like the paper's table.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: wall-clock time from initial request to browsable page\n")
	fmt.Fprintf(&b, "%-42s %12s %12s  %s\n", "Device", "Measured", "Paper", "Kind")
	for _, r := range rows {
		kind := "measured"
		if r.Simulated {
			kind = "simulated"
		}
		fmt.Fprintf(&b, "%-42s %12s %12s  %s\n",
			r.Label, roundDuration(r.Measured), roundDuration(r.Paper), kind)
	}
	return b.String()
}

func roundDuration(d time.Duration) string {
	return d.Round(100 * time.Millisecond).String()
}

// Fig7Point is one Figure 7 data point.
type Fig7Point struct {
	BrowserPercent float64
	// ReqPerMin is the mean satisfied requests per one-minute window.
	ReqPerMin float64
	Runs      int
}

// Fig7Config tunes the sweep; the zero value uses paper-faithful
// percentages with a scaled-down window.
type Fig7Config struct {
	OriginURL   string
	Window      time.Duration
	Percentages []float64
	Reps        int
	Concurrency int
}

// DefaultFig7Percentages are the sweep points (the paper varies the
// browser fraction from 0 to 100%).
var DefaultFig7Percentages = []float64{0, 1, 2, 5, 10, 25, 50, 75, 100}

// Figure7 runs the throughput sweep: satisfied requests per window as
// the fraction of requests requiring a full browser instance varies,
// three repetitions per point, interarrival marking via seeded U[0,1].
func Figure7(cfg Fig7Config) ([]Fig7Point, error) {
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if len(cfg.Percentages) == 0 {
		cfg.Percentages = DefaultFig7Percentages
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2
	}
	points, err := workload.Sweep(workload.Config{
		OriginURL:     cfg.OriginURL,
		Window:        cfg.Window,
		Concurrency:   cfg.Concurrency,
		ViewportWidth: 1024,
		Seed:          42,
	}, cfg.Percentages, cfg.Reps)
	if err != nil {
		return nil, err
	}
	out := make([]Fig7Point, len(points))
	for i, p := range points {
		out[i] = Fig7Point{
			BrowserPercent: p.BrowserPercent,
			ReqPerMin:      p.MeanThroughput(),
			Runs:           len(p.Runs),
		}
	}
	return out, nil
}

// FormatFig7 renders the sweep like the paper's figure data.
func FormatFig7(points []Fig7Point) string {
	var b strings.Builder
	b.WriteString("Figure 7: satisfied requests per minute vs % requiring a browser instance\n")
	b.WriteString("(paper endpoints: 100% → 224 req/min, 0% → 29,038 req/min)\n")
	fmt.Fprintf(&b, "%-20s %15s %6s\n", "% browser renders", "req/min (mean)", "runs")
	for i := len(points) - 1; i >= 0; i-- {
		p := points[i]
		fmt.Fprintf(&b, "%-20.1f %15.0f %6d\n", p.BrowserPercent, p.ReqPerMin, p.Runs)
	}
	if len(points) >= 2 {
		lo := points[len(points)-1].ReqPerMin // highest browser %
		hi := points[0].ReqPerMin             // 0 %
		if lo > 0 {
			fmt.Fprintf(&b, "lightweight/browser throughput ratio: %.0fx\n", hi/lo)
		}
	}
	return b.String()
}

// FidelityRow is one step of the §3.3 image-fidelity ladder.
type FidelityRow struct {
	Level imaging.Fidelity
	Bytes int
}

// ImageFidelity renders the origin entry page once and encodes the
// snapshot at every fidelity level — the paper's "600K png →
// 25-50k jpg" post-processor result.
func ImageFidelity(originURL string) ([]FidelityRow, error) {
	profile, err := ProfilePage(originURL)
	if err != nil {
		return nil, err
	}
	doc := html.Tidy(profile.HTMLSource)
	styler := css.StylerForDocument(doc)
	res := layout.Layout(doc, styler, layout.Viewport{Width: 1024})
	// Antialias restores real-screenshot pixel entropy (see
	// raster.Options.Antialias); without it the synthetic flat-color
	// output makes PNG unrealistically small.
	img := raster.Paint(res, raster.Options{Antialias: true})

	var rows []FidelityRow
	for _, f := range []imaging.Fidelity{
		imaging.FidelityHigh, imaging.FidelityMedium,
		imaging.FidelityLow, imaging.FidelityThumb,
	} {
		data, err := imaging.Encode(img, f)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FidelityRow{Level: f, Bytes: len(data)})
	}
	return rows, nil
}

// FormatFidelity renders the ladder.
func FormatFidelity(rows []FidelityRow) string {
	var b strings.Builder
	b.WriteString("Image fidelity ladder for the full-page snapshot (§3.3)\n")
	b.WriteString("(paper: high-fidelity png ≈600 KB; reduced-fidelity jpg 25–50 KB)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10d bytes (%.0f KB)\n", r.Level, r.Bytes, float64(r.Bytes)/1024)
	}
	return b.String()
}

// SpeedupResult is the §3.3 pre-render speedup: direct mobile load vs
// cached-snapshot load on the same device/link.
type SpeedupResult struct {
	Direct   time.Duration
	Snapshot time.Duration
	Factor   float64
}

// PreRenderSpeedup computes the BlackBerry wall-clock ratio the paper
// summarizes as "this technique can reduce wall-clock load time by a
// factor of 5".
func PreRenderSpeedup(originURL string) (*SpeedupResult, error) {
	rows, err := Table1(originURL)
	if err != nil {
		return nil, err
	}
	var direct, snapshot time.Duration
	for _, r := range rows {
		switch r.Label {
		case "BlackBerry Tour browser page load":
			direct = r.Measured
		case "Cached snapshot page to BlackBerry":
			snapshot = r.Measured
		}
	}
	if snapshot <= 0 {
		return nil, fmt.Errorf("experiments: missing snapshot row")
	}
	return &SpeedupResult{
		Direct:   direct,
		Snapshot: snapshot,
		Factor:   float64(direct) / float64(snapshot),
	}, nil
}

// PageWeight reproduces the §4.2 in-text measurement: total bytes and
// request count for the entry page.
type PageWeight struct {
	TotalBytes int
	Requests   int
	Scripts    int
	Images     int
	Elements   int
}

// MeasurePageWeight profiles the entry page.
func MeasurePageWeight(originURL string) (*PageWeight, error) {
	profile, err := ProfilePage(originURL)
	if err != nil {
		return nil, err
	}
	return &PageWeight{
		TotalBytes: profile.TotalBytes,
		Requests:   profile.Requests,
		Scripts:    profile.Complexity.Scripts,
		Images:     profile.Complexity.Images,
		Elements:   profile.Complexity.Elements,
	}, nil
}

// FormatPageWeight renders the measurement.
func FormatPageWeight(w *PageWeight) string {
	return fmt.Sprintf(`Entry page weight (§4.2; paper: 224,477 bytes, ~12 external scripts)
total bytes: %d
requests:    %d
scripts:     %d
images:      %d
elements:    %d
`, w.TotalBytes, w.Requests, w.Scripts, w.Images, w.Elements)
}

// AblationRow compares a design choice on/off.
type AblationRow struct {
	Name     string
	Baseline time.Duration
	Variant  time.Duration
}

// CacheAblation measures one snapshot render vs one cache hit — the
// amortization argument of §3.3 in microcosm: build the snapshot once,
// then time serving it from memory.
func CacheAblation(originURL string) (*AblationRow, error) {
	profile, err := ProfilePage(originURL)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	doc := html.Tidy(profile.HTMLSource)
	styler := css.StylerForDocument(doc)
	res := layout.Layout(doc, styler, layout.Viewport{Width: 1024})
	img := raster.Paint(res, raster.Options{})
	data, err := imaging.Encode(imaging.ScaleFactor(img, 0.45), imaging.FidelityLow)
	if err != nil {
		return nil, err
	}
	render := time.Since(start)

	start = time.Now()
	copied := make([]byte, len(data))
	copy(copied, data)
	hit := time.Since(start)
	if hit <= 0 {
		hit = time.Nanosecond
	}
	return &AblationRow{Name: "snapshot render vs cache hit", Baseline: render, Variant: hit}, nil
}

// SpecForForum builds the evaluation spec (§4.3) against an origin URL —
// shared by the cmd tools, examples, and benches.
func SpecForForum(originURL string) *spec.Spec {
	return &spec.Spec{
		Name:          "sawdust",
		Origin:        originURL + "/",
		ViewportWidth: 1024,
		Snapshot: spec.SnapshotSpec{
			Enabled: true, Fidelity: "low", Scale: 0.45,
			CacheTTLSeconds: 3600, Shared: true,
		},
		Objects: []spec.Object{
			{Name: "login", Selector: "#loginform", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"title": "Log in"}},
			}},
			{Name: "logo", Selector: "#logo", Attributes: []spec.Attribute{
				{Type: spec.AttrCopyTo, Params: map[string]string{
					"subpage": "login", "position": "top",
					"set-attr": "src", "set-value": "/m/logo.gif",
				}},
			}},
			{Name: "styles", Selector: "head style", Attributes: []spec.Attribute{
				{Type: spec.AttrDependency, Params: map[string]string{"subpage": "login"}},
			}},
			{Name: "nav", Selector: "#navlinks", Attributes: []spec.Attribute{
				{Type: spec.AttrRewriteLinks, Params: map[string]string{"columns": "2"}},
				{Type: spec.AttrSubpage, Params: map[string]string{"title": "Navigation", "ajax": "true"}},
			}},
			{Name: "banner", Selector: "#banner", Attributes: []spec.Attribute{
				{Type: spec.AttrReplace, Params: map[string]string{
					"html": `<img src="/ads/mobile.gif" width="300" height="50" alt="ad">`}},
			}},
			{Name: "shoptour", Selector: "#shoptour object", Attributes: []spec.Attribute{
				{Type: spec.AttrThumbnail, Params: map[string]string{"scale": "0.4"}},
			}},
			{Name: "forums", Selector: "#forums", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{
					"title": "Forums", "prerender": "true", "fidelity": "low"}},
				{Type: spec.AttrCacheable, Params: map[string]string{"ttl_seconds": "3600"}},
				{Type: spec.AttrSearchable, Params: map[string]string{"trigger": "msite-search"}},
			}},
		},
		Actions: []spec.Action{
			{ID: 1, Match: `do=showpic&id=(\d+)`,
				Target: originURL + "/site.php?do=showpic&id=$1", Extract: "#pic",
				CacheTTLSeconds: 300},
		},
	}
}
