package experiments

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full cold adaptations")
	}
	rep, err := Streaming(StreamingConfig{Latency: 30 * time.Millisecond, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 2 || rep.OriginLatencyMS != 30 {
		t.Fatalf("config not recorded: %+v", rep)
	}
	for name, m := range map[string]StreamingMode{
		"buffered": rep.Buffered, "streaming": rep.Streaming,
	} {
		if m.TTFBP50MS <= 0 || m.ATFP50MS <= 0 || m.TotalP50MS <= 0 {
			t.Fatalf("%s mode has non-positive measurement: %+v", name, m)
		}
	}
	// The flush-early head must beat the buffered pipeline, and the two
	// modes must converge on the same full-fidelity bytes.
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if !rep.SnapshotIdentical || rep.SnapshotBytes == 0 {
		t.Fatalf("snapshot identity not established: %+v", rep)
	}
	if rep.TTFBSpeedupP50 <= 1 {
		t.Fatalf("streaming did not improve TTFB: %+v", rep)
	}

	// The JSON record must round-trip (it is committed as BENCH_PR7.json).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back StreamingReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Streaming.TTFBP50MS != rep.Streaming.TTFBP50MS {
		t.Fatal("JSON round-trip lost measurements")
	}
	out := FormatStreaming(rep)
	if !strings.Contains(out, "TTFB") || !strings.Contains(out, "byte-identical") {
		t.Fatalf("format output incomplete:\n%s", out)
	}
}
