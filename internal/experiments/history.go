package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// HistoryFile is the tracked ledger every per-PR bench record folds
// into, so regressions are visible across the whole PR sequence rather
// than one BENCH_PR<n>.json at a time.
const HistoryFile = "BENCH_HISTORY.json"

// prScenarios names the scenario each PR's bench record measures; the
// key of a history entry is "PR<n>/<scenario>".
var prScenarios = map[int]string{
	2:  "parallel",
	3:  "resilience",
	4:  "overload",
	5:  "persistence",
	6:  "obs",
	7:  "streaming",
	8:  "prefetch",
	9:  "quality",
	10: "cluster",
}

// HistoryEntry is one PR's folded bench record.
type HistoryEntry struct {
	PR       int    `json:"pr"`
	Scenario string `json:"scenario"`
	// Violations is lifted out of the report so a reader (or CI grep)
	// can scan the ledger for broken gates without parsing every shape.
	Violations []string `json:"violations"`
	// Report is the record verbatim; each scenario has its own shape.
	Report json.RawMessage `json:"report"`
}

// History is the BENCH_HISTORY.json shape: entries keyed by
// "PR<n>/<scenario>", sorted keys alongside for stable diffs.
type History struct {
	Keys    []string                `json:"keys"`
	Entries map[string]HistoryEntry `json:"entries"`
}

var benchRecordPattern = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// FoldHistory reads every BENCH_PR<n>.json in dir and folds them into
// a History; the caller decides whether to write it back out.
func FoldHistory(dir string) (*History, error) {
	names, err := filepath.Glob(filepath.Join(dir, "BENCH_PR*.json"))
	if err != nil {
		return nil, err
	}
	hist := &History{Entries: make(map[string]HistoryEntry, len(names))}
	for _, path := range names {
		m := benchRecordPattern.FindStringSubmatch(filepath.Base(path))
		if m == nil {
			continue
		}
		pr, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var report struct {
			Violations []string `json:"violations"`
		}
		if err := json.Unmarshal(data, &report); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", path, err)
		}
		scenario := prScenarios[pr]
		if scenario == "" {
			scenario = fmt.Sprintf("pr%d", pr)
		}
		key := fmt.Sprintf("PR%d/%s", pr, scenario)
		hist.Entries[key] = HistoryEntry{
			PR: pr, Scenario: scenario,
			Violations: report.Violations,
			Report:     json.RawMessage(data),
		}
	}
	for key := range hist.Entries {
		hist.Keys = append(hist.Keys, key)
	}
	sort.Slice(hist.Keys, func(i, j int) bool {
		return hist.Entries[hist.Keys[i]].PR < hist.Entries[hist.Keys[j]].PR
	})
	return hist, nil
}

// WriteHistory folds dir's bench records and writes dir/BENCH_HISTORY.json.
func WriteHistory(dir string) (*History, error) {
	hist, err := FoldHistory(dir)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, HistoryFile), append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return hist, nil
}

// FormatHistory renders the ledger one line per entry.
func FormatHistory(hist *History) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bench history: %d PR records\n", len(hist.Keys))
	for _, key := range hist.Keys {
		e := hist.Entries[key]
		status := "ok"
		if len(e.Violations) > 0 {
			status = fmt.Sprintf("%d violation(s)", len(e.Violations))
		}
		fmt.Fprintf(&b, "  %-16s %s\n", key, status)
	}
	return b.String()
}
