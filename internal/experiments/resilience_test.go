package experiments

import (
	"testing"
	"time"
)

// TestResilienceChaos is the chaos test of the resilience PR: a proxy
// with retries, breakers, and stale serving fronts a flapping origin
// (probabilistic 503s, connection resets, latency spikes, then a full
// blackout) and must answer every request 200 — degraded or stale as
// needed, never 5xx.
func TestResilienceChaos(t *testing.T) {
	rep, err := Resilience(ResilienceConfig{
		Requests:     10,
		Blackout:     5,
		ErrorRate:    0.5,
		ResetRate:    0.1,
		SpikeRate:    0.15,
		Spike:        400 * time.Millisecond,
		FetchTimeout: 150 * time.Millisecond,
		Retries:      2,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 15 {
		t.Fatalf("requests = %d", rep.Requests)
	}
	if rep.Errors5xx != 0 {
		t.Fatalf("proxy served %d 5xx under fault:\n%s", rep.Errors5xx, FormatResilience(rep))
	}
	if rep.OK != rep.Requests {
		t.Fatalf("availability = %d/%d:\n%s", rep.OK, rep.Requests, FormatResilience(rep))
	}
	// The blackout segment guarantees consecutive failures: the breaker
	// must have tripped and stale adaptations must have been served.
	if rep.BreakerOpens < 1 {
		t.Fatalf("breaker never opened:\n%s", FormatResilience(rep))
	}
	if rep.StaleServed < 1 {
		t.Fatalf("no stale adaptations served:\n%s", FormatResilience(rep))
	}
	if rep.Faults.Requests == 0 {
		t.Fatal("injector saw no traffic")
	}
}
