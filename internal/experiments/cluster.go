package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"msite/internal/cluster"
	"msite/internal/core"
	"msite/internal/origin"
	"msite/internal/proxy"
	"msite/internal/spec"
)

// ClusterBenchConfig tunes the scale-out benchmark: a fleet of
// consistent-hash peers measured against one node of the same build,
// a cross-node flash crowd, and a node kill + rejoin.
type ClusterBenchConfig struct {
	// Nodes is the fleet size (default 3).
	Nodes int
	// Sites is how many cold sites the throughput phase adapts; owners
	// are balanced across the fleet by construction (default 6).
	Sites int
	// Crowd is the flash-crowd size, spread across every node
	// (default 12).
	Crowd int
	// AvailabilityRequests is how many requests the kill phase issues
	// against the survivors (default 24).
	AvailabilityRequests int
	// OriginLatency is the injected per-response origin delay that makes
	// cold builds expensive enough to measure (default 200ms).
	OriginLatency time.Duration
	// Root is the scratch directory (default: a fresh temp dir).
	Root string
}

func (cfg ClusterBenchConfig) withDefaults() ClusterBenchConfig {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Sites <= 0 {
		cfg.Sites = 6
	}
	if cfg.Crowd <= 0 {
		cfg.Crowd = 12
	}
	if cfg.AvailabilityRequests <= 0 {
		cfg.AvailabilityRequests = 24
	}
	if cfg.OriginLatency <= 0 {
		cfg.OriginLatency = 200 * time.Millisecond
	}
	return cfg
}

// ClusterReport is the PR's scale-out record (BENCH_PR10.json): cold
// adaptation throughput scaling with fleet size, a cross-node flash
// crowd costing one build, and full availability through a node kill
// and rejoin.
type ClusterReport struct {
	Nodes int `json:"nodes"`
	Sites int `json:"sites"`
	Crowd int `json:"crowd"`

	// Throughput: wall time to cold-adapt every site, one admission slot
	// per node, fleet vs a single node of the same build.
	SingleNodeColdMS float64 `json:"single_node_cold_ms"`
	FleetColdMS      float64 `json:"fleet_cold_ms"`
	ThroughputX      float64 `json:"throughput_x"`

	// Flash crowd: Crowd cold clients spread across every node hit one
	// site at once; the fleet must run exactly one pipeline.
	FlashBuilds  uint64 `json:"flash_builds"`
	FlashNon200  int    `json:"flash_non_200"`
	FlashCrowdMS float64 `json:"flash_crowd_ms"`

	// Availability: the victim site's owner is killed mid-fleet; every
	// request to the survivors must answer non-5xx, the ring must rehash
	// off the dead node, and rejoin must restore it.
	AvailabilityRequests int  `json:"availability_requests"`
	Availability5xx      int  `json:"availability_5xx"`
	RehashedOffDeadNode  bool `json:"rehashed_off_dead_node"`
	RingRestoredOnRejoin bool `json:"ring_restored_on_rejoin"`

	Violations []string `json:"violations"`
}

// clusterNode is one fleet member: a real core framework serving its
// public handler (cluster transport included) on a pre-bound listener.
type clusterNode struct {
	url string
	fw  *core.MultiFramework
	srv *http.Server
	ln  net.Listener
}

// serve (re)starts the node's HTTP server on addr; used for both boot
// and the rejoin after a kill.
func (cn *clusterNode) serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	cn.ln = ln
	cn.srv = &http.Server{Handler: cn.fw.HandlerWithMetrics()}
	go func(srv *http.Server, l net.Listener) { _ = srv.Serve(l) }(cn.srv, ln)
	return nil
}

// balancedClusterSites builds origin+spec pairs whose bundle keys hash
// to the fleet's nodes in equal measure, so the throughput phase
// measures capacity, not hash luck. Extra singles pin specific owners
// for the flash and kill phases.
func balancedClusterSites(cl *cleanups, urls []string, sites int, latency time.Duration) ([]*spec.Spec, error) {
	ring := cluster.NewRing(cluster.DefaultReplicas, urls)
	quota := make(map[string]int, len(urls))
	for i, u := range urls {
		quota[u] = sites / len(urls)
		if i < sites%len(urls) {
			quota[u]++
		}
	}
	specs := make([]*spec.Spec, 0, sites)
	for attempt := 0; len(specs) < sites && attempt < 64*sites; attempt++ {
		sp, owner, srv, err := candidateSite(urls, ring, fmt.Sprintf("scale%d", attempt), int64(attempt), latency)
		if err != nil {
			return nil, err
		}
		if quota[owner] == 0 {
			srv.Close()
			continue
		}
		quota[owner]--
		cl.Cleanup(srv.Close)
		specs = append(specs, sp)
	}
	if len(specs) < sites {
		return nil, fmt.Errorf("experiments: could not balance %d sites across %d nodes", sites, len(urls))
	}
	return specs, nil
}

// ownedSite generates a site whose bundle key the ring assigns to
// wantOwner.
func ownedSite(cl *cleanups, urls []string, wantOwner, prefix string, latency time.Duration) (*spec.Spec, error) {
	ring := cluster.NewRing(cluster.DefaultReplicas, urls)
	for attempt := 0; attempt < 256; attempt++ {
		sp, owner, srv, err := candidateSite(urls, ring, fmt.Sprintf("%s%d", prefix, attempt), int64(1000+attempt), latency)
		if err != nil {
			return nil, err
		}
		if owner != wantOwner {
			srv.Close()
			continue
		}
		cl.Cleanup(srv.Close)
		return sp, nil
	}
	return nil, fmt.Errorf("experiments: no %s site hashed to %s", prefix, wantOwner)
}

func candidateSite(urls []string, ring *cluster.Ring, name string, seed int64, latency time.Duration) (*spec.Spec, string, *httptest.Server, error) {
	// Small pages on a slow origin: cold-build cost is dominated by the
	// injected origin latency, which is what a fleet can parallelize
	// (CPU on one box cannot scale with node count in-process).
	forum := origin.NewForum(origin.ForumConfig{
		Name: "Sawdust " + name, Members: 8_000, Forums: 6,
		Online: 50, Scripts: 2, Seed: seed,
	})
	srv := httptest.NewServer(LatencyHandler(forum.Handler(), latency))
	sp := SpecForForum(srv.URL)
	sp.Name = name
	sp.Snapshot.Scale = 0.25
	key, err := proxy.BundleKeyForSpec(sp, 0)
	if err != nil {
		srv.Close()
		return nil, "", nil, err
	}
	owner, _ := ring.Owner(key)
	return sp, owner, srv, nil
}

// ClusterBench runs the consistent-hash scale-out benchmark.
func ClusterBench(cfg ClusterBenchConfig) (*ClusterReport, error) {
	cfg = cfg.withDefaults()
	rep := &ClusterReport{Nodes: cfg.Nodes, Sites: cfg.Sites, Crowd: cfg.Crowd,
		AvailabilityRequests: cfg.AvailabilityRequests}
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	cl := &cleanups{}
	defer cl.run()
	root := cfg.Root
	if root == "" {
		dir, err := os.MkdirTemp("", "msite-cluster-*")
		if err != nil {
			return nil, err
		}
		cl.Cleanup(func() { _ = os.RemoveAll(dir) })
		root = dir
	}

	// Reserve the fleet's addresses first: peer URLs must be known
	// before any framework boots.
	nodes := make([]*clusterNode, cfg.Nodes)
	urls := make([]string, cfg.Nodes)
	lns := make([]net.Listener, cfg.Nodes)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}

	// The benched sites: throughput sites balanced across owners by
	// construction, plus a flash-crowd site and a kill-phase victim
	// owned by the node that will die.
	scaleSpecs, err := balancedClusterSites(cl, urls, cfg.Sites, cfg.OriginLatency)
	if err != nil {
		return nil, err
	}
	flashSpec, err := ownedSite(cl, urls, urls[0], "flash", cfg.OriginLatency)
	if err != nil {
		return nil, err
	}
	killIdx := cfg.Nodes - 1
	victimSpec, err := ownedSite(cl, urls, urls[killIdx], "victim", cfg.OriginLatency)
	if err != nil {
		return nil, err
	}
	allSpecs := append(append([]*spec.Spec{}, scaleSpecs...), flashSpec, victimSpec)

	// Boot the fleet: every node hosts every site, one admission slot
	// each, probes driven by hand so the scenario is deterministic.
	for i := range nodes {
		fw, err := core.NewMulti(allSpecs, core.Config{
			SessionRoot:              filepath.Join(root, fmt.Sprintf("sessions-%d", i)),
			FetchTimeout:             30 * time.Second,
			MaxConcurrentAdaptations: 1,
			AdmissionQueue:           64,
			ClusterListen:            urls[i],
			ClusterPeers:             urls,
			ClusterToken:             "bench-fleet",
			ClusterProbeInterval:     time.Hour,
		})
		if err != nil {
			return nil, err
		}
		nodes[i] = &clusterNode{url: urls[i], fw: fw}
		cl.Cleanup(fw.Close)
		nodes[i].srv = &http.Server{Handler: fw.HandlerWithMetrics()}
		cl.Cleanup(func(cn *clusterNode) func() {
			return func() { _ = cn.srv.Close() }
		}(nodes[i]))
		go func(srv *http.Server, l net.Listener) { _ = srv.Serve(l) }(nodes[i].srv, lns[i])
		nodes[i].ln = lns[i]
	}

	// The single-node baseline: the same build, the same slot budget per
	// node, hosting the same sites alone.
	solo, err := core.NewMulti(allSpecs, core.Config{
		SessionRoot:              filepath.Join(root, "sessions-solo"),
		FetchTimeout:             30 * time.Second,
		MaxConcurrentAdaptations: 1,
		AdmissionQueue:           64,
	})
	if err != nil {
		return nil, err
	}
	cl.Cleanup(solo.Close)
	soloSrv := httptest.NewServer(solo.Handler())
	cl.Cleanup(soloSrv.Close)

	// Phase 1 — cold throughput. Every site requested at once, fleet vs
	// solo; with one admission slot per node, elapsed time is capacity.
	coldSweep := func(get func(sp *spec.Spec) (int, error)) (time.Duration, int, error) {
		var wg sync.WaitGroup
		var non200 atomic.Int64
		errs := make(chan error, len(scaleSpecs))
		start := time.Now()
		for _, sp := range scaleSpecs {
			wg.Add(1)
			go func(sp *spec.Spec) {
				defer wg.Done()
				code, err := get(sp)
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					non200.Add(1)
				}
			}(sp)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return 0, 0, err
		}
		return time.Since(start), int(non200.Load()), nil
	}

	fleetElapsed, fleetNon200, err := coldSweep(func(sp *spec.Spec) (int, error) {
		// Spread entry points across the fleet: the ring, not the client,
		// decides where the build runs.
		node := nodes[int(hashString(sp.Name))%len(nodes)]
		return freshGet(node.url + "/p/" + sp.Name + "/")
	})
	if err != nil {
		return nil, err
	}
	soloElapsed, soloNon200, err := coldSweep(func(sp *spec.Spec) (int, error) {
		return freshGet(soloSrv.URL + "/p/" + sp.Name + "/")
	})
	if err != nil {
		return nil, err
	}
	rep.FleetColdMS = float64(fleetElapsed) / float64(time.Millisecond)
	rep.SingleNodeColdMS = float64(soloElapsed) / float64(time.Millisecond)
	if fleetElapsed > 0 {
		rep.ThroughputX = float64(soloElapsed) / float64(fleetElapsed)
	}
	if fleetNon200+soloNon200 > 0 {
		violate("cold sweep saw %d fleet and %d solo non-200s", fleetNon200, soloNon200)
	}
	if rep.ThroughputX < 2.4 {
		violate("fleet cold throughput %.2fx the single node, need ≥ 2.4x", rep.ThroughputX)
	}

	// Phase 2 — cross-node flash crowd on a cold site: one build total.
	before := fleetAdaptations(nodes)
	var wg sync.WaitGroup
	var non200 atomic.Int64
	flashErrs := make(chan error, cfg.Crowd)
	flashStart := time.Now()
	for i := 0; i < cfg.Crowd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, err := freshGet(nodes[i%len(nodes)].url + "/p/" + flashSpec.Name + "/")
			if err != nil {
				flashErrs <- err
				return
			}
			if code != http.StatusOK {
				non200.Add(1)
			}
		}(i)
	}
	wg.Wait()
	close(flashErrs)
	for err := range flashErrs {
		return nil, err
	}
	rep.FlashCrowdMS = float64(time.Since(flashStart)) / float64(time.Millisecond)
	rep.FlashNon200 = int(non200.Load())
	rep.FlashBuilds = fleetAdaptations(nodes) - before
	if rep.FlashBuilds != 1 {
		violate("flash crowd of %d cost %d builds, want exactly 1", cfg.Crowd, rep.FlashBuilds)
	}
	if rep.FlashNon200 > 0 {
		violate("flash crowd saw %d non-200 responses", rep.FlashNon200)
	}

	// Phase 3 — kill the victim's owner, serve through the survivors,
	// rejoin, and watch the ring rehash both ways.
	victimKey, err := proxy.BundleKeyForSpec(victimSpec, 0)
	if err != nil {
		return nil, err
	}
	dead := nodes[killIdx]
	deadAddr := dead.ln.Addr().String()
	_ = dead.srv.Close()
	survivors := nodes[:killIdx]
	probeFleet(survivors)
	if owner, _ := survivors[0].fw.Cluster().Owner(victimKey); owner != dead.url {
		rep.RehashedOffDeadNode = true
	} else {
		violate("ring still routes %s to the dead node after probes", victimSpec.Name)
	}
	for i := 0; i < cfg.AvailabilityRequests; i++ {
		code, err := freshGet(survivors[i%len(survivors)].url + "/p/" + victimSpec.Name + "/")
		if err != nil || code >= 500 {
			rep.Availability5xx++
		}
	}
	if rep.Availability5xx > 0 {
		violate("%d of %d requests failed while the owner was down",
			rep.Availability5xx, cfg.AvailabilityRequests)
	}

	if err := dead.serve(deadAddr); err != nil {
		return nil, err
	}
	cl.Cleanup(func() { _ = dead.srv.Close() })
	probeFleet(nodes)
	if owner, _ := survivors[0].fw.Cluster().Owner(victimKey); owner == dead.url {
		rep.RingRestoredOnRejoin = true
	} else {
		violate("ring did not restore the rejoined node as %s's owner (got %s)",
			victimSpec.Name, owner)
	}
	if code, err := freshGet(survivors[0].url + "/p/" + victimSpec.Name + "/"); err != nil || code != http.StatusOK {
		violate("post-rejoin request failed: code %d, err %v", code, err)
	}
	return rep, nil
}

// probeFleet runs one liveness round on every framework whose server is
// up, synchronously, so ring state is settled before assertions.
func probeFleet(nodes []*clusterNode) {
	for _, cn := range nodes {
		if node := cn.fw.Cluster(); node != nil {
			node.ProbeOnce(context.Background())
		}
	}
}

func fleetAdaptations(nodes []*clusterNode) uint64 {
	var total uint64
	for _, cn := range nodes {
		total += cn.fw.ProxyStats().Adaptations
	}
	return total
}

// freshGet issues one request from a brand-new client (fresh jar, so a
// fresh proxy session on whichever node answers).
func freshGet(url string) (int, error) {
	jar, err := cookiejar.New(nil)
	if err != nil {
		return 0, err
	}
	client := &http.Client{Jar: jar, Timeout: 2 * time.Minute}
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// hashString spreads client entry points across nodes without
// math/rand: which node a client walks in through must not matter.
func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// FormatCluster renders the scale-out report.
func FormatCluster(rep *ClusterReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster mode: consistent-hash scale-out across %d nodes\n", rep.Nodes)
	fmt.Fprintf(&b, "cold throughput: %d sites in %.0f ms on the fleet vs %.0f ms on one node (%.2fx, need ≥ 2.4x)\n",
		rep.Sites, rep.FleetColdMS, rep.SingleNodeColdMS, rep.ThroughputX)
	fmt.Fprintf(&b, "flash crowd: %d cross-node clients cost %d build(s) in %.0f ms, %d non-200\n",
		rep.Crowd, rep.FlashBuilds, rep.FlashCrowdMS, rep.FlashNon200)
	fmt.Fprintf(&b, "node kill: %d survivor requests, %d failed; rehash off dead node: %v; ring restored on rejoin: %v\n",
		rep.AvailabilityRequests, rep.Availability5xx, rep.RehashedOffDeadNode, rep.RingRestoredOnRejoin)
	if len(rep.Violations) > 0 {
		fmt.Fprintf(&b, "VIOLATIONS:\n")
		for _, v := range rep.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}
