package experiments

import (
	"strings"
	"testing"
)

func TestStageBreakdown(t *testing.T) {
	srv := originServer(t)
	rep, err := StageBreakdown(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]StageStat, len(rep.Stages))
	for _, s := range rep.Stages {
		got[s.Stage] = s
	}
	// The drive includes a cold entry load, so the whole pipeline ran.
	for _, stage := range pipelineStages {
		s, ok := got[stage]
		if !ok || s.Count == 0 {
			t.Fatalf("stage %q missing from report: %+v", stage, rep.Stages)
		}
		if s.P99 < s.P50 {
			t.Fatalf("stage %q quantiles inverted: %+v", stage, s)
		}
	}
	// Entry + subpage×2 + shared entry + refresh = 5 requests; the
	// second device's snapshot must come from the shared cache.
	if rep.Requests != 5 {
		t.Fatalf("requests = %d, want 5", rep.Requests)
	}
	if rep.Adaptations < 2 {
		t.Fatalf("adaptations = %d, want >= 2 (cold + refresh)", rep.Adaptations)
	}
	if rep.SnapshotRenders == 0 || rep.SnapshotHits == 0 {
		t.Fatalf("snapshots renders=%d hits=%d, want both > 0",
			rep.SnapshotRenders, rep.SnapshotHits)
	}
	if rep.CacheFills == 0 || rep.HitRatio <= 0 {
		t.Fatalf("cache fills=%d ratio=%v, want both > 0", rep.CacheFills, rep.HitRatio)
	}

	out := FormatStages(rep)
	for _, want := range []string{"stage", "p99", "raster", "adapt_total", "hit ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted report missing %q:\n%s", want, out)
		}
	}
}
