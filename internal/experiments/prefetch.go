package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"msite/internal/core"
	"msite/internal/origin"
	"msite/internal/spec"
)

// PrefetchConfig tunes the speculative pre-adaptation benchmark: a
// zipfian request trace over several sites whose origins churn
// mid-trace, served once with the crawler on and once off.
type PrefetchConfig struct {
	// Sites is how many distinct origins/specs the fleet hosts
	// (default 5).
	Sites int
	// Requests is the zipfian trace length per phase (default 300).
	Requests int
	// Clients is how many distinct mobile clients (cookie jars, hence
	// proxy sessions) issue the trace (default 6).
	Clients int
	// Churns is how many times the hottest origin changes mid-trace
	// (default 3).
	Churns int
	// RevalCycles is how many no-churn crawler cycles the 304 byte-cost
	// measurement runs (default 3).
	RevalCycles int
}

func (cfg PrefetchConfig) withDefaults() PrefetchConfig {
	if cfg.Sites <= 0 {
		cfg.Sites = 5
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 300
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 6
	}
	if cfg.Churns <= 0 {
		cfg.Churns = 3
	}
	if cfg.RevalCycles <= 0 {
		cfg.RevalCycles = 3
	}
	return cfg
}

// PrefetchReport is the PR's speculative pre-adaptation record
// (BENCH_PR8.json): the cold miss killed (first request hits a
// pre-built bundle), revalidation moving almost no origin bytes, a
// steady-state hit ratio under churn, and live p99 unharmed by the
// crawler.
type PrefetchReport struct {
	Sites    int `json:"sites"`
	Requests int `json:"requests"`
	Clients  int `json:"clients"`

	// Bootstrap: the first crawler cycle pre-builds every site and pays
	// the full origin cost once.
	PrefetchedSites  int   `json:"prefetched_sites"`
	BuildOriginBytes int64 `json:"build_origin_bytes"`

	// Revalidation: no-churn cycles must answer from 304s for a tiny
	// fraction of the build's origin bytes.
	RevalCycles      int   `json:"revalidation_cycles"`
	Reval304s        int   `json:"revalidation_304s"`
	RevalOriginBytes int64 `json:"revalidation_origin_bytes"`

	// The headline: a brand-new client's first request, against a
	// pre-built bundle (crawler on) vs a cold pipeline (crawler off).
	FirstRequestPrefetchedMS float64 `json:"first_request_prefetched_ms"`
	FirstRequestColdMS       float64 `json:"first_request_cold_ms"`

	// Steady state under churn, crawler on: requests that ran a live
	// pipeline build vs builds the crawler absorbed in the background.
	ChurnEvents   int     `json:"churn_events"`
	CrawlerBuilds int     `json:"crawler_builds_during_trace"`
	LiveBuilds    int64   `json:"live_builds_during_trace"`
	HitRatio      float64 `json:"steady_state_hit_ratio"`
	// ChurnP99MS is the churn trace's p99 — informational: it includes
	// the CPU the background rebuilds burn, which the hit-ratio gate
	// (not a latency gate) governs.
	ChurnP99MS float64 `json:"churn_trace_p99_ms"`

	// Live latency over identical no-churn traces, crawler cycling vs
	// crawler off (both phases pre-warmed): what the crawler's own
	// steady-state machinery — probes, 304s, TTL touches — costs
	// foreground traffic.
	P99OnMS  float64 `json:"live_p99_crawler_on_ms"`
	P99OffMS float64 `json:"live_p99_crawler_off_ms"`

	// OffColdBuilds is the pipeline runs the off phase needed to warm
	// up — the misses prefetch exists to absorb.
	OffColdBuilds uint64 `json:"off_prewarm_cold_builds"`

	Violations []string `json:"violations"`
}

// prefetchFleet is the benched deployment: N synthetic forums, each the
// origin of one spec.
type prefetchFleet struct {
	forums []*origin.Forum
	specs  []*spec.Spec
	names  []string
}

func newPrefetchFleet(t interface{ Cleanup(func()) }, n int) *prefetchFleet {
	fl := &prefetchFleet{}
	for i := 0; i < n; i++ {
		forum := origin.NewForum(origin.ForumConfig{
			Name: fmt.Sprintf("Sawdust %c", 'A'+i), Members: 40_000 + i*1000,
			Forums: 24, Online: 200, Scripts: 8, Seed: int64(42 + i),
		})
		srv := httptest.NewServer(forum.Handler())
		t.Cleanup(srv.Close)
		sp := SpecForForum(srv.URL)
		sp.Name = fmt.Sprintf("site%d", i)
		fl.forums = append(fl.forums, forum)
		fl.specs = append(fl.specs, sp)
		fl.names = append(fl.names, sp.Name)
	}
	return fl
}

func (fl *prefetchFleet) originBytes() int64 {
	var total int64
	for _, f := range fl.forums {
		total += f.BytesServed()
	}
	return total
}

// cleanups adapts the experiment to the httptest.Server Cleanup idiom
// without a *testing.T.
type cleanups struct{ fns []func() }

func (c *cleanups) Cleanup(fn func()) { c.fns = append(c.fns, fn) }
func (c *cleanups) run() {
	for i := len(c.fns) - 1; i >= 0; i-- {
		c.fns[i]()
	}
}

// Prefetch runs the speculative pre-adaptation benchmark.
func Prefetch(cfg PrefetchConfig) (*PrefetchReport, error) {
	cfg = cfg.withDefaults()
	rep := &PrefetchReport{Sites: cfg.Sites, Requests: cfg.Requests, Clients: cfg.Clients,
		RevalCycles: cfg.RevalCycles}

	cl := &cleanups{}
	defer cl.run()
	fleet := newPrefetchFleet(cl, cfg.Sites)

	root, err := os.MkdirTemp("", "msite-prefetch-*")
	if err != nil {
		return nil, err
	}
	cl.Cleanup(func() { _ = os.RemoveAll(root) })

	boot := func(tag string, prefetchOn bool) (*core.MultiFramework, *httptest.Server, error) {
		fw, err := core.NewMulti(fleet.specs, core.Config{
			SessionRoot:              filepath.Join(root, "sessions-"+tag),
			FetchTimeout:             30 * time.Second,
			StoreDir:                 filepath.Join(root, "store-"+tag),
			MaxConcurrentAdaptations: 4,
			Prefetch:                 prefetchOn,
			PrefetchTopN:             cfg.Sites,
			PrefetchInterval:         time.Hour, // cycles driven by hand
			PrefetchDepth:            1,
		})
		if err != nil {
			return nil, nil, err
		}
		srv := httptest.NewServer(fw.Handler())
		return fw, srv, nil
	}

	// Phase A — crawler ON. The bootstrap cycle pre-builds every site
	// before any client exists.
	fwOn, srvOn, err := boot("on", true)
	if err != nil {
		return nil, err
	}
	defer fwOn.Close()
	defer srvOn.Close()
	crawler := fwOn.Prefetcher()

	before := fleet.originBytes()
	first := crawler.RunCycle(context.Background())
	rep.PrefetchedSites = len(first.Built)
	rep.BuildOriginBytes = fleet.originBytes() - before
	if rep.PrefetchedSites != cfg.Sites {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("bootstrap cycle built %d of %d sites (errors: %v)",
				rep.PrefetchedSites, cfg.Sites, first.Errors))
	}

	// Revalidation cost: no churn, so every cycle must answer from 304s.
	before = fleet.originBytes()
	for i := 0; i < cfg.RevalCycles; i++ {
		r := crawler.RunCycle(context.Background())
		rep.Reval304s += len(r.NotModified)
	}
	rep.RevalOriginBytes = fleet.originBytes() - before
	if rep.Reval304s == 0 {
		rep.Violations = append(rep.Violations, "revalidation cycles saw no 304s")
	}
	if rep.BuildOriginBytes > 0 && rep.RevalOriginBytes*10 >= rep.BuildOriginBytes {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("revalidation moved %d origin bytes, not ≪ the %d-byte build cost",
				rep.RevalOriginBytes, rep.BuildOriginBytes))
	}

	// The killed cold miss: a brand-new client's very first request.
	firstOn, err := timedGet(srvOn, "/p/"+fleet.names[0]+"/")
	if err != nil {
		return nil, err
	}
	rep.FirstRequestPrefetchedMS = float64(firstOn) / float64(time.Millisecond)

	// Two traces with the crawler cycling concurrently: a no-churn one
	// for the latency comparison, then a churning one where every origin
	// rebuild must land in the background (the hit-ratio gate).
	adaptBefore := fwOn.ProxyStats().Adaptations
	var crawlerBuilds atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r := crawler.RunCycle(context.Background())
			crawlerBuilds.Add(int64(len(r.Built) + len(r.SkippedBusy)))
			time.Sleep(100 * time.Millisecond)
		}
	}()
	latOn, _, err := runPrefetchTrace(srvOn, fleet, cfg, false)
	var latChurn []time.Duration
	var churns int
	if err == nil {
		latChurn, churns, err = runPrefetchTrace(srvOn, fleet, cfg, true)
	}
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	rep.ChurnEvents = churns
	rep.CrawlerBuilds = int(crawlerBuilds.Load())
	adaptDelta := int64(fwOn.ProxyStats().Adaptations - adaptBefore)
	rep.LiveBuilds = adaptDelta - crawlerBuilds.Load()
	if rep.LiveBuilds < 0 {
		rep.LiveBuilds = 0
	}
	traced := 2 * cfg.Requests
	rep.HitRatio = 1 - float64(rep.LiveBuilds)/float64(traced)
	rep.P99OnMS = p99ms(latOn)
	rep.ChurnP99MS = p99ms(latChurn)
	if rep.HitRatio < 0.99 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("steady-state hit ratio %.3f < 0.99 (%d live builds in %d requests)",
				rep.HitRatio, rep.LiveBuilds, traced))
	}

	// Phase B — crawler OFF, same store tiering, same trace. Prewarm
	// first (the cold builds the crawler would have absorbed), so the
	// p99 comparison isolates the crawler's cost to live traffic.
	fwOff, srvOff, err := boot("off", false)
	if err != nil {
		return nil, err
	}
	defer fwOff.Close()
	defer srvOff.Close()

	firstOff, err := timedGet(srvOff, "/p/"+fleet.names[0]+"/")
	if err != nil {
		return nil, err
	}
	rep.FirstRequestColdMS = float64(firstOff) / float64(time.Millisecond)
	for _, name := range fleet.names[1:] {
		if _, err := timedGet(srvOff, "/p/"+name+"/"); err != nil {
			return nil, err
		}
	}
	rep.OffColdBuilds = fwOff.ProxyStats().Adaptations

	latOff, _, err := runPrefetchTrace(srvOff, fleet, cfg, false)
	if err != nil {
		return nil, err
	}
	rep.P99OffMS = p99ms(latOff)

	if rep.P99OnMS > rep.P99OffMS*1.10+5 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("live p99 %.1f ms with crawler on vs %.1f ms off (allowed +10%% +5 ms)",
				rep.P99OnMS, rep.P99OffMS))
	}
	if rep.FirstRequestPrefetchedMS >= rep.FirstRequestColdMS {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("prefetched first request %.1f ms not faster than cold %.1f ms",
				rep.FirstRequestPrefetchedMS, rep.FirstRequestColdMS))
	}
	return rep, nil
}

// runPrefetchTrace replays the zipfian trace: Clients jars hammer the
// fleet with site popularity skewed toward names[0]; with churn on, the
// hottest origin bumps Churns times at fixed trace positions (the same
// positions in both phases, so the traces compare).
func runPrefetchTrace(srv *httptest.Server, fleet *prefetchFleet, cfg PrefetchConfig, churn bool) ([]time.Duration, int, error) {
	zipf := rand.NewZipf(rand.New(rand.NewSource(11)), 1.3, 1, uint64(len(fleet.names)-1))
	clients := make([]*http.Client, cfg.Clients)
	for i := range clients {
		jar, err := cookiejar.New(nil)
		if err != nil {
			return nil, 0, err
		}
		clients[i] = &http.Client{Jar: jar, Timeout: time.Minute}
	}
	churnEvery := cfg.Requests / (cfg.Churns + 1)
	churned := 0
	latencies := make([]time.Duration, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		if churn && churnEvery > 0 && i > 0 && i%churnEvery == 0 && churned < cfg.Churns {
			fleet.forums[0].Bump()
			churned++
		}
		site := fleet.names[zipf.Uint64()]
		client := clients[i%len(clients)]
		start := time.Now()
		resp, err := client.Get(srv.URL + "/p/" + site + "/")
		if err != nil {
			return nil, churned, err
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, churned, fmt.Errorf("experiments: prefetch trace %s status %d", site, resp.StatusCode)
		}
		latencies = append(latencies, time.Since(start))
	}
	return latencies, churned, nil
}

// timedGet issues one request from a brand-new client (fresh jar, so a
// fresh proxy session) and returns its latency.
func timedGet(srv *httptest.Server, path string) (time.Duration, error) {
	jar, err := cookiejar.New(nil)
	if err != nil {
		return 0, err
	}
	client := &http.Client{Jar: jar, Timeout: time.Minute}
	start := time.Now()
	resp, err := client.Get(srv.URL + path)
	if err != nil {
		return 0, err
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("experiments: prefetch %s status %d", path, resp.StatusCode)
	}
	return time.Since(start), nil
}

func p99ms(latencies []time.Duration) float64 {
	if len(latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(0.99 * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// FormatPrefetch renders the speculative pre-adaptation report.
func FormatPrefetch(rep *PrefetchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Speculative pre-adaptation: crawler + conditional revalidation\n")
	fmt.Fprintf(&b, "fleet: %d sites, %d requests from %d clients (zipfian), %d origin churns\n",
		rep.Sites, rep.Requests, rep.Clients, rep.ChurnEvents)
	fmt.Fprintf(&b, "bootstrap: %d sites pre-built for %d origin bytes\n",
		rep.PrefetchedSites, rep.BuildOriginBytes)
	fmt.Fprintf(&b, "revalidation: %d cycles, %d not-modified, %d origin bytes (vs %d to rebuild)\n",
		rep.RevalCycles, rep.Reval304s, rep.RevalOriginBytes, rep.BuildOriginBytes)
	fmt.Fprintf(&b, "first request: %.0f ms prefetched vs %.0f ms cold\n",
		rep.FirstRequestPrefetchedMS, rep.FirstRequestColdMS)
	fmt.Fprintf(&b, "steady state: hit ratio %.3f (%d live builds, %d background builds, churn p99 %.1f ms)\n",
		rep.HitRatio, rep.LiveBuilds, rep.CrawlerBuilds, rep.ChurnP99MS)
	fmt.Fprintf(&b, "live p99 (no churn): %.1f ms crawler on vs %.1f ms off (prewarmed, %d cold builds absorbed)\n",
		rep.P99OnMS, rep.P99OffMS, rep.OffColdBuilds)
	if len(rep.Violations) > 0 {
		fmt.Fprintf(&b, "VIOLATIONS:\n")
		for _, v := range rep.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}
