package netsim

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, err.Error()
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, string(body)
}

func TestInjectorDisabledPassesThrough(t *testing.T) {
	in := NewInjector(FaultConfig{ErrorRate: 1})
	in.SetEnabled(false)
	srv := httptest.NewServer(in.Wrap(okHandler()))
	defer srv.Close()
	for i := 0; i < 5; i++ {
		if status, body := get(t, srv.URL); status != 200 || body != "ok" {
			t.Fatalf("disabled injector: %d %q", status, body)
		}
	}
	if s := in.Stats(); s.Requests != 5 || s.Errors != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectorErrorRate(t *testing.T) {
	in := NewInjector(FaultConfig{ErrorRate: 1, Seed: 1})
	srv := httptest.NewServer(in.Wrap(okHandler()))
	defer srv.Close()
	if status, _ := get(t, srv.URL); status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", status)
	}
	if s := in.Stats(); s.Errors != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectorReset(t *testing.T) {
	in := NewInjector(FaultConfig{ResetRate: 1, Seed: 1})
	srv := httptest.NewServer(in.Wrap(okHandler()))
	defer srv.Close()
	if _, err := http.Get(srv.URL); err == nil {
		t.Fatal("reset produced a clean response")
	}
	if s := in.Stats(); s.Resets != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectorForcedOutage(t *testing.T) {
	in := NewInjector(FaultConfig{})
	srv := httptest.NewServer(in.Wrap(okHandler()))
	defer srv.Close()
	if status, _ := get(t, srv.URL); status != 200 {
		t.Fatalf("healthy status = %d", status)
	}
	in.SetDown(true)
	if status, _ := get(t, srv.URL); status != http.StatusServiceUnavailable {
		t.Fatalf("outage status = %d", status)
	}
	in.SetDown(false)
	if status, _ := get(t, srv.URL); status != 200 {
		t.Fatalf("recovered status = %d", status)
	}
	if s := in.Stats(); s.FlapRejects != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectorFlapWindows(t *testing.T) {
	var now atomic.Int64
	clock := func() time.Time { return time.Unix(0, now.Load()) }
	in := NewInjector(FaultConfig{FlapUp: time.Second, FlapDown: time.Second, Clock: clock})
	srv := httptest.NewServer(in.Wrap(okHandler()))
	defer srv.Close()

	// t=0: inside the up window.
	if status, _ := get(t, srv.URL); status != 200 {
		t.Fatalf("up window status = %d", status)
	}
	now.Store(int64(1500 * time.Millisecond)) // down window
	if status, _ := get(t, srv.URL); status != http.StatusServiceUnavailable {
		t.Fatalf("down window status = %d", status)
	}
	now.Store(int64(2200 * time.Millisecond)) // next up window
	if status, _ := get(t, srv.URL); status != 200 {
		t.Fatalf("second up window status = %d", status)
	}
}

func TestInjectorStall(t *testing.T) {
	in := NewInjector(FaultConfig{StallRate: 1, StallFor: 50 * time.Millisecond, Seed: 1})
	srv := httptest.NewServer(in.Wrap(okHandler()))
	defer srv.Close()
	start := time.Now()
	status, body := get(t, srv.URL)
	if status != 200 || body != "ok" {
		t.Fatalf("stalled response = %d %q", status, body)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("no stall observed (%v)", d)
	}
	if s := in.Stats(); s.Stalls != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
