// Package netsim models network links for the Table 1 reproduction: each
// link is a bandwidth, a round-trip time, and a browser connection-pool
// width, from which transfer time for a page and its subresources is
// computed. It substitutes for the physical 3G and WiFi links of the
// paper's evaluation.
package netsim

import "time"

// Link models one access network.
type Link struct {
	// Name is the display name used in experiment tables.
	Name string
	// KbpsDown is downstream bandwidth in kilobits per second.
	KbpsDown float64
	// RTT is the round-trip latency per request.
	RTT time.Duration
	// Conns is how many concurrent connections the client browser opens,
	// which divides the per-request RTT cost.
	Conns int
}

// The link classes of the paper's evaluation era.
var (
	// ThreeG is a 2010-era cellular link: modest bandwidth, long RTT.
	ThreeG = Link{Name: "3G", KbpsDown: 300, RTT: 300 * time.Millisecond, Conns: 2}
	// WiFi is a home/office 802.11g link.
	WiFi = Link{Name: "WiFi", KbpsDown: 10_000, RTT: 30 * time.Millisecond, Conns: 6}
	// Broadband is the desktop wired baseline.
	Broadband = Link{Name: "Broadband", KbpsDown: 20_000, RTT: 20 * time.Millisecond, Conns: 6}
	// LAN approximates proxy-to-origin colocation (the m.Site proxy is
	// colocated with the web server, §2).
	LAN = Link{Name: "LAN", KbpsDown: 1_000_000, RTT: time.Millisecond, Conns: 8}
)

// Links lists every built-in link class.
func Links() []Link {
	return []Link{ThreeG, WiFi, Broadband, LAN}
}

// TransferTime models fetching totalBytes over requests sequentially
// scheduled HTTP requests: per-request RTT cost divided across the
// connection pool, plus payload serialization at link bandwidth.
func (l Link) TransferTime(totalBytes, requests int) time.Duration {
	if totalBytes < 0 {
		totalBytes = 0
	}
	if requests < 1 {
		requests = 1
	}
	conns := l.Conns
	if conns < 1 {
		conns = 1
	}
	rounds := (requests + conns - 1) / conns
	rttCost := time.Duration(rounds) * l.RTT
	if l.KbpsDown <= 0 {
		return rttCost
	}
	seconds := float64(totalBytes) * 8 / (l.KbpsDown * 1000)
	return rttCost + time.Duration(seconds*float64(time.Second))
}
