package netsim

import (
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig describes the failures an Injector feeds into an origin:
// probabilistic 5xx answers, connection resets, stalls past the
// client's deadline, added latency with occasional spikes, and periodic
// flapping (whole windows where every request fails). Rates are
// probabilities in [0, 1]; zero fields inject nothing of that kind.
type FaultConfig struct {
	// ErrorRate is the probability a request is answered 503.
	ErrorRate float64
	// ResetRate is the probability the TCP connection is torn down
	// without a response (the client sees a reset or unexpected EOF).
	ResetRate float64
	// StallRate is the probability the handler sleeps StallFor before
	// answering — long enough to trip a fetch deadline.
	StallRate float64
	// StallFor is the stall duration (default 2s).
	StallFor time.Duration
	// Latency is added to every request; with SpikeRate probability
	// LatencySpike is added on top.
	Latency      time.Duration
	SpikeRate    float64
	LatencySpike time.Duration
	// FlapUp/FlapDown, when both positive, alternate the origin between
	// healthy windows (FlapUp long) and windows where every request is
	// answered 503 (FlapDown long).
	FlapUp   time.Duration
	FlapDown time.Duration
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Clock is the time source for flapping windows (tests inject a fake
	// one). Nil uses time.Now.
	Clock func() time.Time
}

// FaultStats counts what an Injector actually did.
type FaultStats struct {
	// Requests is every request seen (including pass-throughs and
	// requests arriving while the injector is disabled).
	Requests uint64
	// Errors, Resets, and Stalls count the injected faults by kind;
	// stalled requests are answered normally after the stall.
	Errors uint64
	Resets uint64
	Stalls uint64
	// Spikes counts latency spikes.
	Spikes uint64
	// FlapRejects counts requests answered 503 inside a down window
	// (forced outages included).
	FlapRejects uint64
}

// Injector wraps an origin handler with fault injection. It starts
// enabled; SetEnabled(false) passes every request through untouched
// (benchmarks warm caches that way before turning the chaos on), and
// SetDown(true) forces a full outage regardless of the configured
// rates. All methods are safe for concurrent use.
type Injector struct {
	cfg     FaultConfig
	enabled atomic.Bool
	down    atomic.Bool
	epoch   time.Time

	mu  sync.Mutex
	rng *rand.Rand

	requests    atomic.Uint64
	errors      atomic.Uint64
	resets      atomic.Uint64
	stalls      atomic.Uint64
	spikes      atomic.Uint64
	flapRejects atomic.Uint64
}

// NewInjector builds an enabled injector for cfg.
func NewInjector(cfg FaultConfig) *Injector {
	if cfg.StallFor <= 0 {
		cfg.StallFor = 2 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	in := &Injector{
		cfg:   cfg,
		epoch: cfg.Clock(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	in.enabled.Store(true)
	return in
}

// SetEnabled turns fault injection on or off (requests pass through
// untouched while off).
func (in *Injector) SetEnabled(on bool) { in.enabled.Store(on) }

// Enabled reports whether faults are being injected.
func (in *Injector) Enabled() bool { return in.enabled.Load() }

// SetDown forces (or lifts) a full outage: while down, every request is
// answered 503 no matter the configured rates.
func (in *Injector) SetDown(down bool) { in.down.Store(down) }

// Stats snapshots the injector's counters.
func (in *Injector) Stats() FaultStats {
	return FaultStats{
		Requests:    in.requests.Load(),
		Errors:      in.errors.Load(),
		Resets:      in.resets.Load(),
		Stalls:      in.stalls.Load(),
		Spikes:      in.spikes.Load(),
		FlapRejects: in.flapRejects.Load(),
	}
}

// roll draws a uniform [0,1) variate from the seeded stream.
func (in *Injector) roll() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

// inDownWindow reports whether the flap schedule has the origin dark.
func (in *Injector) inDownWindow() bool {
	if in.cfg.FlapUp <= 0 || in.cfg.FlapDown <= 0 {
		return false
	}
	period := in.cfg.FlapUp + in.cfg.FlapDown
	phase := in.cfg.Clock().Sub(in.epoch) % period
	return phase >= in.cfg.FlapUp
}

// Wrap returns next with cfg's faults injected in front of it.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		in.requests.Add(1)
		if !in.enabled.Load() {
			next.ServeHTTP(w, r)
			return
		}
		if in.down.Load() || in.inDownWindow() {
			in.flapRejects.Add(1)
			http.Error(w, "origin down (injected outage)", http.StatusServiceUnavailable)
			return
		}
		delay := in.cfg.Latency
		if in.cfg.SpikeRate > 0 && in.roll() < in.cfg.SpikeRate {
			in.spikes.Add(1)
			delay += in.cfg.LatencySpike
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if in.cfg.ResetRate > 0 && in.roll() < in.cfg.ResetRate {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					in.resets.Add(1)
					_ = conn.Close()
					return
				}
			}
			// No hijack support: degrade to an injected error.
			in.errors.Add(1)
			http.Error(w, "injected reset", http.StatusBadGateway)
			return
		}
		if in.cfg.StallRate > 0 && in.roll() < in.cfg.StallRate {
			in.stalls.Add(1)
			select {
			case <-time.After(in.cfg.StallFor):
			case <-r.Context().Done():
				return
			}
		}
		if in.cfg.ErrorRate > 0 && in.roll() < in.cfg.ErrorRate {
			in.errors.Add(1)
			http.Error(w, "injected origin error", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}
