package netsim

import (
	"testing"
	"time"
)

func TestTransferTimeBandwidthTerm(t *testing.T) {
	// 300 kbps link, zero-ish RTT: 37.5 KB should take ≈1 s.
	link := Link{KbpsDown: 300, RTT: 0, Conns: 1}
	got := link.TransferTime(37_500, 1)
	if got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Fatalf("transfer = %v, want ≈1 s", got)
	}
}

func TestTransferTimeRTTRounds(t *testing.T) {
	link := Link{KbpsDown: 0, RTT: 100 * time.Millisecond, Conns: 2}
	// 5 requests over 2 connections = 3 rounds.
	if got := link.TransferTime(0, 5); got != 300*time.Millisecond {
		t.Fatalf("rtt rounds = %v", got)
	}
}

func TestTransferTimeDefensive(t *testing.T) {
	link := Link{KbpsDown: 100, RTT: 10 * time.Millisecond, Conns: 0}
	if got := link.TransferTime(-5, 0); got != 10*time.Millisecond {
		t.Fatalf("defensive = %v", got)
	}
}

func TestLinkOrderingOnForumPage(t *testing.T) {
	const bytes, reqs = 224_477, 48
	threeG := ThreeG.TransferTime(bytes, reqs)
	wifi := WiFi.TransferTime(bytes, reqs)
	broadband := Broadband.TransferTime(bytes, reqs)
	lan := LAN.TransferTime(bytes, reqs)
	if !(threeG > wifi && wifi > broadband && broadband > lan) {
		t.Fatalf("ordering wrong: 3g=%v wifi=%v bb=%v lan=%v", threeG, wifi, broadband, lan)
	}
	// 3G must dominate the mobile experience: several seconds.
	if threeG < 5*time.Second || threeG > 30*time.Second {
		t.Fatalf("3G = %v, want several seconds", threeG)
	}
	// LAN (proxy to colocated origin) must be negligible.
	if lan > 50*time.Millisecond {
		t.Fatalf("LAN = %v, want negligible", lan)
	}
}

func TestLinksComplete(t *testing.T) {
	if len(Links()) != 4 {
		t.Fatalf("links = %d", len(Links()))
	}
	for _, l := range Links() {
		if l.Name == "" || l.KbpsDown <= 0 || l.Conns <= 0 {
			t.Errorf("incomplete link: %+v", l)
		}
	}
}
