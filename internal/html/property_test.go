package html

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestTidyStringIdempotent: tidying already-tidied output changes
// nothing. This is the property that lets the proxy re-run the filter +
// Tidy pipeline safely on its own artifacts.
func TestTidyStringIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := TidyString(s)
		twice := TidyString(once)
		return once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTidyStringIdempotentOnMarkup repeats the property on inputs that
// actually look like markup (random tag soup), where the interesting
// normalization paths fire.
func TestTidyStringIdempotentOnMarkup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tags := []string{"div", "p", "span", "li", "ul", "td", "tr", "table", "b", "br", "img", "style", "script", "title", "meta"}
	for trial := 0; trial < 200; trial++ {
		var b strings.Builder
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			tag := tags[rng.Intn(len(tags))]
			switch rng.Intn(4) {
			case 0:
				b.WriteString("<" + tag + ">")
			case 1:
				b.WriteString("</" + tag + ">")
			case 2:
				b.WriteString("<" + tag + " class=\"c" + string(rune('a'+rng.Intn(26))) + "\">")
			default:
				b.WriteString("text ")
			}
		}
		src := b.String()
		once := TidyString(src)
		twice := TidyString(once)
		if once != twice {
			t.Fatalf("not idempotent for %q:\nonce:  %s\ntwice: %s", src, once, twice)
		}
	}
}

// TestRenderParseStableOnMarkup: rendering a parsed random-markup tree
// and re-parsing yields the same rendering (the parser is a fixpoint on
// its own output).
func TestRenderParseStableOnMarkup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var b strings.Builder
		for i := 0; i < rng.Intn(20); i++ {
			switch rng.Intn(5) {
			case 0:
				b.WriteString("<div>")
			case 1:
				b.WriteString("</div>")
			case 2:
				b.WriteString("<p>word")
			case 3:
				b.WriteString("<img src='x.png'>")
			default:
				b.WriteString(" & <> text ")
			}
		}
		out := Render(Parse(b.String()))
		if Render(Parse(out)) != out {
			t.Fatalf("unstable for %q", b.String())
		}
	}
}
