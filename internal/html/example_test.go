package html_test

import (
	"fmt"

	"msite/internal/html"
)

// Tidy turns tag soup into well-formed XHTML the XML/DOM toolchain can
// consume — HTML Tidy's role in the m.Site pipeline.
func ExampleTidyString() {
	fmt.Println(html.TidyString(`<p>un<b>closed<br><li>stray`))
	// Output:
	// <!DOCTYPE html><html><head></head><body><p>un<b>closed<br /><li>stray</li></b></p></body></html>
}

func ExampleParse() {
	doc := html.Parse(`<ul><li>one<li>two</ul>`)
	fmt.Println(len(doc.Elements("li")), "items")
	fmt.Println(doc.Text())
	// Output:
	// 2 items
	// onetwo
}
