package html

import (
	"strings"
	"testing"
)

func benchPage() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>t</title><style>.x{color:red}</style></head><body>")
	for i := 0; i < 200; i++ {
		b.WriteString(`<div class="row"><table><tr><td><a href="/x">link text</a></td><td>cell &amp; entity</td></tr></table><p>paragraph body text`)
	}
	b.WriteString("</body></html>")
	return b.String()
}

func BenchmarkTokenize(b *testing.B) {
	src := benchPage()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := NewTokenizer(src)
		for {
			if z.Next().Type == ErrorToken {
				break
			}
		}
	}
}

func BenchmarkParse(b *testing.B) {
	src := benchPage()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Parse(src) == nil {
			b.Fatal("nil doc")
		}
	}
}

func BenchmarkTidyString(b *testing.B) {
	src := benchPage()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if TidyString(src) == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkRender(b *testing.B) {
	doc := Parse(benchPage())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Render(doc) == "" {
			b.Fatal("empty")
		}
	}
}
