package html

import (
	"strconv"
	"strings"
)

// namedEntities is the set of named character references the tokenizer
// decodes. It is the pragmatic subset that appears in real template-driven
// forum markup; unknown references pass through verbatim, which matches
// browser error-recovery behaviour.
var namedEntities = map[string]rune{
	"amp":    '&',
	"lt":     '<',
	"gt":     '>',
	"quot":   '"',
	"apos":   '\'',
	"nbsp":   ' ',
	"copy":   '©',
	"reg":    '®',
	"trade":  '™',
	"hellip": '…',
	"mdash":  '—',
	"ndash":  '–',
	"lsquo":  '‘',
	"rsquo":  '’',
	"ldquo":  '“',
	"rdquo":  '”',
	"laquo":  '«',
	"raquo":  '»',
	"times":  '×',
	"divide": '÷',
	"middot": '·',
	"bull":   '•',
	"deg":    '°',
	"pound":  '£',
	"euro":   '€',
	"yen":    '¥',
	"cent":   '¢',
	"sect":   '§',
	"para":   '¶',
	"plusmn": '±',
	"frac12": '½',
	"frac14": '¼',
	"sup2":   '²',
	"sup3":   '³',
	"micro":  'µ',
	"larr":   '←',
	"rarr":   '→',
	"uarr":   '↑',
	"darr":   '↓',
	"harr":   '↔',
}

// UnescapeEntities decodes HTML character references in s: the named subset
// above plus numeric (&#123;) and hex (&#x7b;) forms. Malformed references
// are left intact.
func UnescapeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		// Find the terminating semicolon within a reasonable window.
		end := -1
		for j := i + 1; j < len(s) && j < i+12; j++ {
			if s[j] == ';' {
				end = j
				break
			}
			if s[j] == '&' || s[j] == ' ' || s[j] == '<' {
				break
			}
		}
		if end < 0 {
			b.WriteByte(c)
			i++
			continue
		}
		name := s[i+1 : end]
		if r, ok := decodeEntityName(name); ok {
			b.WriteRune(r)
			i = end + 1
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func decodeEntityName(name string) (rune, bool) {
	if name == "" {
		return 0, false
	}
	if name[0] == '#' {
		num := name[1:]
		base := 10
		if len(num) > 1 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		v, err := strconv.ParseInt(num, base, 32)
		if err != nil || v <= 0 || v > 0x10ffff {
			return 0, false
		}
		return rune(v), true
	}
	r, ok := namedEntities[name]
	return r, ok
}

// EscapeText escapes s for use as HTML text content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// EscapeAttr escapes s for use inside a double-quoted attribute value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `&<>"`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
