package html

import (
	"strings"
	"testing"
	"testing/quick"
)

func collectTokens(src string) []Token {
	z := NewTokenizer(src)
	var out []Token
	for {
		tok := z.Next()
		if tok.Type == ErrorToken {
			return out
		}
		out = append(out, tok)
	}
}

func TestTokenizeSimpleTag(t *testing.T) {
	toks := collectTokens(`<p class="x">hi</p>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Tag != "p" {
		t.Fatalf("start tag wrong: %+v", toks[0])
	}
	if v := attrVal(toks[0], "class"); v != "x" {
		t.Fatalf("class = %q", v)
	}
	if toks[1].Type != TextToken || toks[1].Data != "hi" {
		t.Fatalf("text wrong: %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Tag != "p" {
		t.Fatalf("end tag wrong: %+v", toks[2])
	}
}

func TestTokenizeUppercaseNormalized(t *testing.T) {
	toks := collectTokens(`<DIV ID="A">x</DIV>`)
	if toks[0].Tag != "div" {
		t.Fatalf("tag = %q", toks[0].Tag)
	}
	if v := attrVal(toks[0], "id"); v != "A" {
		t.Fatalf("attr value must keep case, got %q", v)
	}
}

func TestTokenizeAttrVariants(t *testing.T) {
	toks := collectTokens(`<input type=text disabled value='a b' data-x="1&amp;2">`)
	tok := toks[0]
	if v := attrVal(tok, "type"); v != "text" {
		t.Fatalf("unquoted attr = %q", v)
	}
	if v, ok := attrLookup(tok, "disabled"); !ok || v != "" {
		t.Fatal("boolean attr missing")
	}
	if v := attrVal(tok, "value"); v != "a b" {
		t.Fatalf("single-quoted attr = %q", v)
	}
	if v := attrVal(tok, "data-x"); v != "1&2" {
		t.Fatalf("entity in attr = %q", v)
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := collectTokens(`<br/><img src="a.png" />`)
	if toks[0].Type != SelfClosingTagToken || toks[0].Tag != "br" {
		t.Fatalf("br: %+v", toks[0])
	}
	if toks[1].Type != SelfClosingTagToken || attrVal(toks[1], "src") != "a.png" {
		t.Fatalf("img: %+v", toks[1])
	}
}

func TestTokenizeComment(t *testing.T) {
	toks := collectTokens(`a<!-- note -->b`)
	if len(toks) != 3 || toks[1].Type != CommentToken || toks[1].Data != " note " {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestTokenizeUnterminatedComment(t *testing.T) {
	toks := collectTokens(`<!-- never ends`)
	if len(toks) != 1 || toks[0].Type != CommentToken {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestTokenizeDoctype(t *testing.T) {
	toks := collectTokens(`<!DOCTYPE html><html></html>`)
	if toks[0].Type != DoctypeToken || toks[0].Tag != "html" {
		t.Fatalf("doctype: %+v", toks[0])
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	src := `<script>if (a < b && c > d) { x("</div>"); }</script>`
	_ = src
	// The tokenizer scans raw text up to the first case-insensitive
	// close tag; content before it is untouched.
	toks := collectTokens(`<script>var x = 1 < 2;</script>after`)
	if len(toks) != 4 {
		t.Fatalf("tokens: %+v", toks)
	}
	if toks[1].Type != TextToken || toks[1].Data != "var x = 1 < 2;" {
		t.Fatalf("script body: %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Tag != "script" {
		t.Fatalf("script end: %+v", toks[2])
	}
	if toks[3].Data != "after" {
		t.Fatalf("trailing text: %+v", toks[3])
	}
}

func TestTokenizeScriptCaseInsensitiveClose(t *testing.T) {
	toks := collectTokens(`<style>b { color: red }</STYLE>x`)
	if toks[1].Data != "b { color: red }" {
		t.Fatalf("style body: %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Tag != "style" {
		t.Fatalf("style end: %+v", toks[2])
	}
}

func TestTokenizeUnterminatedScript(t *testing.T) {
	toks := collectTokens(`<script>var x;`)
	if len(toks) != 2 || toks[1].Data != "var x;" {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestTokenizeEntitiesInText(t *testing.T) {
	toks := collectTokens(`Tom &amp; Jerry &lt;3 &#65; &#x42; &nosuch; &broken`)
	got := toks[0].Data
	want := `Tom & Jerry <3 A B &nosuch; &broken`
	if got != want {
		t.Fatalf("text = %q, want %q", got, want)
	}
}

func TestTokenizeLoneLessThan(t *testing.T) {
	toks := collectTokens(`a < b`)
	var all strings.Builder
	for _, tok := range toks {
		if tok.Type != TextToken {
			t.Fatalf("non-text token: %+v", tok)
		}
		all.WriteString(tok.Data)
	}
	if all.String() != "a < b" {
		t.Fatalf("text = %q", all.String())
	}
}

func TestTokenizeProcessingInstruction(t *testing.T) {
	toks := collectTokens(`<?php echo "hi"; ?>x`)
	if toks[0].Type != CommentToken {
		t.Fatalf("pi: %+v", toks[0])
	}
	if toks[1].Data != "x" {
		t.Fatalf("trailing: %+v", toks[1])
	}
}

func TestTokenizerNeverLoopsForever(t *testing.T) {
	// Adversarial inputs must terminate.
	inputs := []string{
		"<", "<<", "<a", "</", "</>", "<a b=", `<a b="unterminated`,
		"<!", "<!-", "<!--", "<!doctype", "<a/", "<a /", "& &#; &#x;",
	}
	for _, in := range inputs {
		z := NewTokenizer(in)
		for i := 0; i < 1000; i++ {
			if z.Next().Type == ErrorToken {
				break
			}
			if i == 999 {
				t.Fatalf("tokenizer stuck on %q", in)
			}
		}
	}
}

func TestQuickTokenizerTerminates(t *testing.T) {
	f := func(s string) bool {
		z := NewTokenizer(s)
		for i := 0; i < len(s)+16; i++ {
			if z.Next().Type == ErrorToken {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnescapeEntitiesEdge(t *testing.T) {
	cases := map[string]string{
		"":              "",
		"plain":         "plain",
		"&amp;":         "&",
		"&AMP;":         "&AMP;", // names are case-sensitive
		"&#0;":          "&#0;",  // NUL rejected
		"&#1114112;":    "&#1114112;",
		"&#x10FFFF;":    "\U0010FFFF",
		"a&nbsp;b":      "a b",
		"&& &lt;&gt; &": "&& <> &",
	}
	for in, want := range cases {
		if got := UnescapeEntities(in); got != want {
			t.Errorf("UnescapeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return UnescapeEntities(EscapeText(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEscapeAttrQuotes(t *testing.T) {
	if got := EscapeAttr(`a"b<c>&`); got != `a&quot;b&lt;c&gt;&amp;` {
		t.Fatalf("EscapeAttr = %q", got)
	}
}

func attrVal(tok Token, key string) string {
	v, _ := attrLookup(tok, key)
	return v
}

func attrLookup(tok Token, key string) (string, bool) {
	for _, a := range tok.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}
