package html

import (
	"strings"
	"testing"
	"testing/quick"

	"msite/internal/dom"
)

func TestParseBasicDocument(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><html><head><title>T</title></head><body><p>hi</p></body></html>`)
	if doc.Type != dom.DocumentNode {
		t.Fatal("not a document")
	}
	html := doc.DocumentElement()
	if html == nil {
		t.Fatal("no html element")
	}
	if doc.Head() == nil || doc.Body() == nil {
		t.Fatal("no head/body")
	}
	title := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "title" })
	if title == nil || title.Text() != "T" {
		t.Fatal("title wrong")
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<div><br><img src="a"><hr>text</div>`)
	div := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "div" })
	kids := div.ChildNodes()
	if len(kids) != 4 {
		t.Fatalf("children = %d, want 4 (br img hr text)", len(kids))
	}
	if kids[0].Tag != "br" || kids[0].FirstChild != nil {
		t.Fatal("br should be empty")
	}
	if kids[3].Type != dom.TextNode || kids[3].Data != "text" {
		t.Fatal("text must be sibling, not child of hr")
	}
}

func TestParseAutoCloseParagraph(t *testing.T) {
	doc := Parse(`<body><p>one<p>two</body>`)
	ps := doc.Elements("p")
	if len(ps) != 2 {
		t.Fatalf("p count = %d, want 2", len(ps))
	}
	if strings.TrimSpace(ps[0].Text()) != "one" || strings.TrimSpace(ps[1].Text()) != "two" {
		t.Fatal("p nesting wrong")
	}
	if ps[1].Parent == ps[0] {
		t.Fatal("second p nested inside first")
	}
}

func TestParseAutoCloseListItems(t *testing.T) {
	doc := Parse(`<ul><li>a<li>b<li>c</ul>`)
	lis := doc.Elements("li")
	if len(lis) != 3 {
		t.Fatalf("li count = %d", len(lis))
	}
	for _, li := range lis {
		if li.Parent.Tag != "ul" {
			t.Fatalf("li parent = %q", li.Parent.Tag)
		}
	}
}

func TestParseAutoCloseTableCells(t *testing.T) {
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	if n := len(doc.Elements("tr")); n != 2 {
		t.Fatalf("tr count = %d", n)
	}
	if n := len(doc.Elements("td")); n != 3 {
		t.Fatalf("td count = %d", n)
	}
	for _, td := range doc.Elements("td") {
		if td.Parent.Tag != "tr" {
			t.Fatalf("td parent = %q", td.Parent.Tag)
		}
	}
}

func TestParseDivClosesP(t *testing.T) {
	doc := Parse(`<p>text<div>block</div>`)
	p := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "p" })
	div := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "div" })
	if p.Contains(div) {
		t.Fatal("div must not nest inside p")
	}
}

func TestParseUnmatchedEndTagIgnored(t *testing.T) {
	doc := Parse(`<div>a</span>b</div>`)
	div := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "div" })
	if got := div.Text(); got != "ab" {
		t.Fatalf("text = %q", got)
	}
}

func TestParseMisnestedRecovery(t *testing.T) {
	// </div> closes past the span.
	doc := Parse(`<div><span>x</div>after`)
	div := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "div" })
	span := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "span" })
	if !div.Contains(span) {
		t.Fatal("span should stay inside div")
	}
	if div.Text() != "x" {
		t.Fatalf("div text = %q", div.Text())
	}
}

func TestParseStrayEndVoidIgnored(t *testing.T) {
	doc := Parse(`a</br>b`)
	if got := doc.Text(); got != "ab" {
		t.Fatalf("text = %q", got)
	}
}

func TestParseScriptContentPreserved(t *testing.T) {
	src := `<script type="text/javascript">if (a<b) document.write("<b>hi</b>");</script>`
	doc := Parse(src)
	script := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "script" })
	if script == nil {
		t.Fatal("no script")
	}
	if script.FirstChild == nil || !strings.Contains(script.FirstChild.Data, `document.write("<b>hi</b>")`) {
		t.Fatalf("script body = %q", script.FirstChild.Data)
	}
	if doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "b" }) != nil {
		t.Fatal("markup inside script must not be parsed")
	}
}

func TestParseFragment(t *testing.T) {
	nodes := ParseFragment(`<li>a</li><li>b</li>`)
	if len(nodes) != 2 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	for _, n := range nodes {
		if n.Parent != nil {
			t.Fatal("fragment nodes must be detached")
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<!DOCTYPE html><html><head><title>T</title></head><body><div id="main" class="a b"><p>x &amp; y</p><br><img src="i.png"></div></body></html>`
	doc := Parse(src)
	out := Render(doc)
	doc2 := Parse(out)
	if Render(doc2) != out {
		t.Fatalf("render not stable:\n1: %s\n2: %s", out, Render(doc2))
	}
	if !strings.Contains(out, `x &amp; y`) {
		t.Fatalf("entity not re-escaped: %s", out)
	}
}

func TestRenderBooleanAttr(t *testing.T) {
	doc := Parse(`<input disabled type="text">`)
	out := Render(doc)
	if !strings.Contains(out, "<input disabled type=") {
		t.Fatalf("boolean attr wrong: %s", out)
	}
	xout := RenderXHTML(doc)
	if !strings.Contains(xout, `disabled=""`) {
		t.Fatalf("xhtml must quote all attrs: %s", xout)
	}
}

func TestRenderXHTMLSelfCloses(t *testing.T) {
	doc := Parse(`<div><br><img src="a.png"></div>`)
	out := RenderXHTML(doc)
	if !strings.Contains(out, "<br />") || !strings.Contains(out, `<img src="a.png" />`) {
		t.Fatalf("void not self-closed: %s", out)
	}
}

func TestRenderScriptNotEscaped(t *testing.T) {
	doc := Parse(`<script>a && b < c</script>`)
	out := Render(doc)
	if !strings.Contains(out, "a && b < c") {
		t.Fatalf("script body escaped: %s", out)
	}
}

func TestTidyAddsSkeleton(t *testing.T) {
	doc := Tidy(`<p>bare paragraph`)
	if doc.DocumentElement() == nil || doc.Head() == nil || doc.Body() == nil {
		t.Fatal("skeleton missing")
	}
	hasDoctype := false
	for c := doc.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == dom.DoctypeNode {
			hasDoctype = true
		}
	}
	if !hasDoctype {
		t.Fatal("doctype missing")
	}
	p := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "p" })
	if p == nil || !doc.Body().Contains(p) {
		t.Fatal("content not moved to body")
	}
}

func TestTidyRelocatesHeadContent(t *testing.T) {
	doc := Tidy(`<title>T</title><meta charset="utf-8"><div>x</div>`)
	head, body := doc.Head(), doc.Body()
	title := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "title" })
	meta := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "meta" })
	div := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "div" })
	if !head.Contains(title) || !head.Contains(meta) {
		t.Fatal("head content not relocated")
	}
	if !body.Contains(div) {
		t.Fatal("body content not relocated")
	}
}

func TestTidyPreservesExistingStructure(t *testing.T) {
	src := `<!DOCTYPE html><html><head><title>x</title></head><body><p>y</p></body></html>`
	doc := Tidy(src)
	if len(doc.Elements("head")) != 1 || len(doc.Elements("body")) != 1 {
		t.Fatal("duplicated structure")
	}
}

func TestTidyStringWellFormed(t *testing.T) {
	out := TidyString(`<ul><li>a<li>b<br>`)
	// Every open li must be closed in the XHTML output.
	if strings.Count(out, "<li>") != strings.Count(out, "</li>") {
		t.Fatalf("unbalanced li: %s", out)
	}
	if !strings.Contains(out, "<br />") {
		t.Fatalf("br not closed: %s", out)
	}
	if !strings.HasPrefix(out, "<!DOCTYPE") {
		t.Fatalf("no doctype: %s", out)
	}
}

func TestTidyNonDocumentNoop(t *testing.T) {
	el := dom.NewElement("div")
	TidyTree(el) // must not panic or modify
	if el.FirstChild != nil {
		t.Fatal("element modified")
	}
}

// Property: parsing never panics and always yields a document whose
// serialization re-parses to the same serialization (idempotent render).
func TestQuickParseRenderStable(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		out := Render(doc)
		return Render(Parse(out)) == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: TidyString output always contains balanced html/head/body.
func TestQuickTidyAlwaysStructured(t *testing.T) {
	f := func(s string) bool {
		out := TidyString(s)
		return strings.Contains(out, "<html>") &&
			strings.Contains(out, "</html>") &&
			strings.Contains(out, "<head>") &&
			strings.Contains(out, "<body>")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseRealWorldForumSnippet(t *testing.T) {
	// Modeled on vBulletin-era markup: tables, font tags, unclosed cells.
	src := `
	<table class="tborder" cellpadding="6" cellspacing="1" border="0" width="100%">
	<tr>
		<td class="alt1"><img src="forum_new.gif" alt=""></td>
		<td class="alt2"><a href="forumdisplay.php?f=5"><strong>General Woodworking</strong></a>
			<div class="smallfont">Discuss your projects</div>
		<td class="alt1" nowrap>
			<div class="smallfont" align="right">Today 09:14 AM</div>
	</tr>
	</table>`
	doc := Parse(src)
	tds := doc.Elements("td")
	if len(tds) != 3 {
		t.Fatalf("td count = %d, want 3", len(tds))
	}
	link := doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "a" })
	if link == nil || link.AttrOr("href", "") != "forumdisplay.php?f=5" {
		t.Fatal("link lost")
	}
}
