package html

import "msite/internal/dom"

// Tidy parses src and normalizes it into a well-formed document, playing
// the role HTML Tidy plays in the m.Site pipeline (§3.2): the output is
// guaranteed to have a doctype and an html/head/body skeleton, stray
// head-only elements are relocated into head, and RenderXHTML on the
// result yields markup consumable by XML/DOM tooling.
func Tidy(src string) *dom.Node {
	doc := Parse(src)
	TidyTree(doc)
	return doc
}

// TidyString is a convenience wrapper: Tidy then serialize to XHTML.
func TidyString(src string) string {
	return RenderXHTML(Tidy(src))
}

// TidyTree normalizes an already-parsed document in place.
func TidyTree(doc *dom.Node) {
	if doc.Type != dom.DocumentNode {
		return
	}
	ensureDoctype(doc)
	html := ensureHTML(doc)
	head, body := ensureHeadBody(html)
	relocateStrays(doc, html, head, body)
}

func ensureDoctype(doc *dom.Node) {
	for c := doc.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == dom.DoctypeNode {
			return
		}
	}
	doc.PrependChild(dom.NewDoctype("html"))
}

func ensureHTML(doc *dom.Node) *dom.Node {
	for c := doc.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == dom.ElementNode && c.Tag == "html" {
			return c
		}
	}
	html := dom.NewElement("html")
	doc.AppendChild(html)
	return html
}

func ensureHeadBody(html *dom.Node) (head, body *dom.Node) {
	for c := html.FirstChild; c != nil; c = c.NextSibling {
		if c.Type != dom.ElementNode {
			continue
		}
		switch c.Tag {
		case "head":
			if head == nil {
				head = c
			}
		case "body":
			if body == nil {
				body = c
			}
		}
	}
	if head == nil {
		head = dom.NewElement("head")
		html.PrependChild(head)
	}
	if body == nil {
		body = dom.NewElement("body")
		html.AppendChild(body)
	}
	return head, body
}

// relocateStrays moves any content that sits outside head/body into the
// right place: head-only elements go to head, everything else to body.
// Document order within each destination is preserved.
func relocateStrays(doc, html, head, body *dom.Node) {
	var strays []*dom.Node
	collect := func(parent *dom.Node) {
		for c := parent.FirstChild; c != nil; c = c.NextSibling {
			if c == html || c == head || c == body {
				continue
			}
			if c.Type == dom.DoctypeNode {
				continue
			}
			strays = append(strays, c)
		}
	}
	collect(doc)
	collect(html)

	for _, n := range strays {
		n.Detach()
		if isHeadContent(n) {
			head.AppendChild(n)
			continue
		}
		if n.Type == dom.TextNode && isAllSpace(n.Data) {
			continue // drop inter-element whitespace strays
		}
		body.AppendChild(n)
	}
}

func isHeadContent(n *dom.Node) bool {
	if n.Type != dom.ElementNode {
		return false
	}
	if headOnlyTags[n.Tag] {
		return true
	}
	switch n.Tag {
	case "link", "style":
		return true
	}
	return false
}

func isAllSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isSpace(s[i]) {
			return false
		}
	}
	return true
}
