package html

import "msite/internal/dom"

// voidTags are elements that never have content or an end tag.
var voidTags = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// autoClose maps a start tag to the set of open tags it implicitly closes
// when they are the current insertion point. This is the tag-soup recovery
// that lets the parser consume template-driven forum markup that omits
// optional end tags.
var autoClose = map[string]map[string]bool{
	"p":          {"p": true},
	"li":         {"li": true},
	"dt":         {"dt": true, "dd": true},
	"dd":         {"dt": true, "dd": true},
	"tr":         {"tr": true, "td": true, "th": true},
	"td":         {"td": true, "th": true},
	"th":         {"td": true, "th": true},
	"thead":      {"thead": true, "tbody": true, "tfoot": true, "tr": true, "td": true, "th": true},
	"tbody":      {"thead": true, "tbody": true, "tfoot": true, "tr": true, "td": true, "th": true},
	"tfoot":      {"thead": true, "tbody": true, "tfoot": true, "tr": true, "td": true, "th": true},
	"option":     {"option": true},
	"optgroup":   {"option": true, "optgroup": true},
	"colgroup":   {"colgroup": true},
	"h1":         {"p": true},
	"h2":         {"p": true},
	"h3":         {"p": true},
	"h4":         {"p": true},
	"h5":         {"p": true},
	"h6":         {"p": true},
	"ul":         {"p": true},
	"ol":         {"p": true},
	"div":        {"p": true},
	"table":      {"p": true},
	"form":       {"p": true},
	"blockquote": {"p": true},
}

// headOnlyTags belong in <head>; the Tidy pass relocates strays.
var headOnlyTags = map[string]bool{
	"title": true, "base": true, "meta": true,
}

// Parse parses HTML source into a document tree. It never returns an
// error: arbitrarily malformed input produces a best-effort tree, matching
// the error recovery a browser applies. Use Tidy to additionally normalize
// document structure.
func Parse(src string) *dom.Node {
	doc := dom.NewDocument()
	z := NewTokenizer(src)

	// stack of open elements; doc is the root insertion point.
	stack := []*dom.Node{doc}
	top := func() *dom.Node { return stack[len(stack)-1] }

	for {
		tok := z.Next()
		switch tok.Type {
		case ErrorToken:
			return doc

		case TextToken:
			top().AppendChild(dom.NewText(tok.Data))

		case CommentToken:
			top().AppendChild(dom.NewComment(tok.Data))

		case DoctypeToken:
			doc.AppendChild(dom.NewDoctype(tok.Tag))

		case SelfClosingTagToken:
			// Self-closing tags still trigger implied end tags (a
			// <p/> after an open <p> closes it, exactly as <p> would).
			if closes, ok := autoClose[tok.Tag]; ok {
				for len(stack) > 1 && closes[top().Tag] {
					stack = stack[:len(stack)-1]
				}
			}
			el := dom.NewElement(tok.Tag)
			el.Attrs = tok.Attrs
			top().AppendChild(el)

		case StartTagToken:
			// Apply implicit end tags.
			if closes, ok := autoClose[tok.Tag]; ok {
				for len(stack) > 1 && closes[top().Tag] {
					stack = stack[:len(stack)-1]
				}
			}
			el := dom.NewElement(tok.Tag)
			el.Attrs = tok.Attrs
			top().AppendChild(el)
			if !voidTags[tok.Tag] {
				stack = append(stack, el)
			}

		case EndTagToken:
			if voidTags[tok.Tag] {
				continue // stray </br> etc.
			}
			// Find the matching open element.
			match := -1
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == tok.Tag {
					match = i
					break
				}
			}
			if match < 0 {
				continue // unmatched end tag: ignored
			}
			stack = stack[:match]
		}
	}
}

// ParseFragment parses src as a fragment (no implied document structure)
// and returns the resulting top-level nodes, detached from any document.
func ParseFragment(src string) []*dom.Node {
	doc := Parse(src)
	nodes := doc.ChildNodes()
	for _, n := range nodes {
		n.Detach()
	}
	return nodes
}
