package html

import (
	"strings"

	"msite/internal/dom"
)

// RenderMode selects the serialization dialect.
type RenderMode int

// Serialization dialects.
const (
	// ModeHTML emits HTML: void elements have no closing slash and raw-text
	// element bodies are not escaped.
	ModeHTML RenderMode = iota + 1
	// ModeXHTML emits well-formed XHTML: void elements self-close, every
	// attribute is quoted, and the output is parseable by XML tooling.
	// This is the Tidy output dialect.
	ModeXHTML
)

// Render serializes the tree rooted at n to HTML.
func Render(n *dom.Node) string {
	var b strings.Builder
	render(&b, n, ModeHTML)
	return b.String()
}

// RenderXHTML serializes the tree rooted at n to well-formed XHTML.
func RenderXHTML(n *dom.Node) string {
	var b strings.Builder
	render(&b, n, ModeXHTML)
	return b.String()
}

func render(b *strings.Builder, n *dom.Node, mode RenderMode) {
	switch n.Type {
	case dom.DocumentNode:
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			render(b, c, mode)
		}

	case dom.DoctypeNode:
		b.WriteString("<!DOCTYPE ")
		b.WriteString(n.Data)
		b.WriteString(">")

	case dom.CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")

	case dom.TextNode:
		if n.Parent != nil && n.Parent.Type == dom.ElementNode && rawTextTags[n.Parent.Tag] {
			b.WriteString(n.Data)
			return
		}
		b.WriteString(EscapeText(n.Data))

	case dom.ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Key)
			if a.Val == "" && mode == ModeHTML {
				continue // boolean attribute
			}
			b.WriteString(`="`)
			b.WriteString(EscapeAttr(a.Val))
			b.WriteByte('"')
		}
		if voidTags[n.Tag] {
			if mode == ModeXHTML {
				b.WriteString(" />")
			} else {
				b.WriteByte('>')
			}
			return
		}
		b.WriteByte('>')
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			render(b, c, mode)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}
