// Package html implements an HTML tokenizer, an error-tolerant tag-soup
// parser producing dom trees, a serializer, and a Tidy pass that converts
// arbitrary markup into well-formed XHTML — the role HTML Tidy plays in the
// m.Site paper, enabling the XML/DOM toolchain to operate on real-world
// pages.
package html

import (
	"strings"

	"msite/internal/dom"
)

// TokenType identifies a lexical token produced by the Tokenizer.
type TokenType int

// Token kinds.
const (
	ErrorToken TokenType = iota + 1 // end of input
	TextToken
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
)

// Token is a single lexical HTML token.
type Token struct {
	Type  TokenType
	Tag   string     // lowercase tag name for tag tokens, doctype text for DoctypeToken
	Data  string     // text or comment content
	Attrs []dom.Attr // attributes for start/self-closing tags
}

// rawTextTags are elements whose content is not markup: the tokenizer
// reads until the matching close tag.
var rawTextTags = map[string]bool{
	"script":   true,
	"style":    true,
	"textarea": true,
	"title":    true,
	"xmp":      true,
}

// Tokenizer splits HTML source into tokens. It never fails: malformed
// input degrades to text tokens, mirroring browser behaviour.
type Tokenizer struct {
	src string
	pos int
	// rawUntil, when non-empty, means the tokenizer is inside a raw-text
	// element and must scan for its end tag.
	rawUntil string
}

// NewTokenizer returns a Tokenizer over src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token. After the input is exhausted it returns
// a token with Type ErrorToken forever.
func (z *Tokenizer) Next() Token {
	if z.pos >= len(z.src) {
		return Token{Type: ErrorToken}
	}
	if z.rawUntil != "" {
		return z.nextRawText()
	}
	if z.src[z.pos] == '<' {
		if tok, ok := z.nextMarkup(); ok {
			return tok
		}
	}
	return z.nextText()
}

func (z *Tokenizer) nextText() Token {
	start := z.pos
	for z.pos < len(z.src) {
		if z.src[z.pos] == '<' && z.pos+1 < len(z.src) && looksLikeMarkup(z.src[z.pos+1]) {
			break
		}
		z.pos++
	}
	if z.pos == start { // lone '<' at end or before non-markup
		z.pos++
		return Token{Type: TextToken, Data: "<"}
	}
	return Token{Type: TextToken, Data: UnescapeEntities(z.src[start:z.pos])}
}

func looksLikeMarkup(c byte) bool {
	return c == '/' || c == '!' || c == '?' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// nextMarkup attempts to read a tag, comment, or doctype starting at '<'.
// It returns ok=false when the '<' does not open valid markup.
func (z *Tokenizer) nextMarkup() (Token, bool) {
	src, i := z.src, z.pos
	if i+1 >= len(src) {
		return Token{}, false
	}
	switch {
	case strings.HasPrefix(src[i:], "<!--"):
		return z.readComment(), true
	case src[i+1] == '!':
		return z.readDeclaration(), true
	case src[i+1] == '?':
		// Processing instruction (e.g. <?php ... ?>): consumed as a comment
		// so the proxy can preserve it.
		return z.readProcessingInstruction(), true
	case src[i+1] == '/':
		return z.readEndTag(), true
	case isTagNameStart(src[i+1]):
		return z.readStartTag(), true
	}
	return Token{}, false
}

func isTagNameStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isTagNameChar(c byte) bool {
	return isTagNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == ':'
}

func (z *Tokenizer) readComment() Token {
	start := z.pos + 4 // past "<!--"
	end := strings.Index(z.src[start:], "-->")
	if end < 0 {
		z.pos = len(z.src)
		return Token{Type: CommentToken, Data: z.src[start:]}
	}
	z.pos = start + end + 3
	return Token{Type: CommentToken, Data: z.src[start : start+end]}
}

func (z *Tokenizer) readDeclaration() Token {
	start := z.pos + 2 // past "<!"
	end := strings.IndexByte(z.src[start:], '>')
	var body string
	if end < 0 {
		body = z.src[start:]
		z.pos = len(z.src)
	} else {
		body = z.src[start : start+end]
		z.pos = start + end + 1
	}
	if len(body) >= 7 && strings.EqualFold(body[:7], "doctype") {
		return Token{Type: DoctypeToken, Tag: strings.TrimSpace(body[7:])}
	}
	// Other declarations (CDATA etc.) surface as comments.
	return Token{Type: CommentToken, Data: body}
}

func (z *Tokenizer) readProcessingInstruction() Token {
	start := z.pos + 1
	end := strings.IndexByte(z.src[start:], '>')
	if end < 0 {
		z.pos = len(z.src)
		return Token{Type: CommentToken, Data: z.src[start:]}
	}
	z.pos = start + end + 1
	return Token{Type: CommentToken, Data: z.src[start : start+end]}
}

func (z *Tokenizer) readEndTag() Token {
	i := z.pos + 2 // past "</"
	start := i
	for i < len(z.src) && isTagNameChar(z.src[i]) {
		i++
	}
	name := strings.ToLower(z.src[start:i])
	// Skip to '>'.
	for i < len(z.src) && z.src[i] != '>' {
		i++
	}
	if i < len(z.src) {
		i++
	}
	z.pos = i
	return Token{Type: EndTagToken, Tag: name}
}

func (z *Tokenizer) readStartTag() Token {
	i := z.pos + 1
	start := i
	for i < len(z.src) && isTagNameChar(z.src[i]) {
		i++
	}
	name := strings.ToLower(z.src[start:i])
	tok := Token{Type: StartTagToken, Tag: name}
	// Attributes.
	for i < len(z.src) {
		i = skipSpace(z.src, i)
		if i >= len(z.src) {
			break
		}
		if z.src[i] == '>' {
			i++
			break
		}
		if z.src[i] == '/' {
			i++
			if i < len(z.src) && z.src[i] == '>' {
				i++
				tok.Type = SelfClosingTagToken
				break
			}
			continue
		}
		var attr dom.Attr
		attr, i = readAttr(z.src, i)
		if attr.Key != "" {
			tok.Attrs = append(tok.Attrs, attr)
		}
	}
	z.pos = i
	if tok.Type == StartTagToken && rawTextTags[name] {
		z.rawUntil = name
	}
	return tok
}

func skipSpace(s string, i int) int {
	for i < len(s) {
		switch s[i] {
		case ' ', '\t', '\n', '\r', '\f':
			i++
		default:
			return i
		}
	}
	return i
}

func readAttr(s string, i int) (dom.Attr, int) {
	start := i
	for i < len(s) && s[i] != '=' && s[i] != '>' && s[i] != '/' && !isSpace(s[i]) {
		i++
	}
	key := strings.ToLower(s[start:i])
	i = skipSpace(s, i)
	if i >= len(s) || s[i] != '=' {
		return dom.Attr{Key: key}, i
	}
	i = skipSpace(s, i+1)
	if i >= len(s) {
		return dom.Attr{Key: key}, i
	}
	var val string
	switch s[i] {
	case '"', '\'':
		quote := s[i]
		i++
		vstart := i
		for i < len(s) && s[i] != quote {
			i++
		}
		val = s[vstart:i]
		if i < len(s) {
			i++
		}
	default:
		vstart := i
		for i < len(s) && s[i] != '>' && !isSpace(s[i]) {
			i++
		}
		val = s[vstart:i]
	}
	return dom.Attr{Key: key, Val: UnescapeEntities(val)}, i
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// nextRawText scans the body of a raw-text element (script, style, ...)
// up to its close tag, emitting the body as one TextToken (undecoded:
// script source is not entity-encoded) and then the EndTagToken.
func (z *Tokenizer) nextRawText() Token {
	closeTag := "</" + z.rawUntil
	rest := z.src[z.pos:]
	idx := indexFold(rest, closeTag)
	if idx < 0 {
		// Unterminated raw element: consume everything.
		z.rawUntil = ""
		data := rest
		z.pos = len(z.src)
		return Token{Type: TextToken, Data: data}
	}
	if idx > 0 {
		data := rest[:idx]
		z.pos += idx
		return Token{Type: TextToken, Data: data}
	}
	// At the close tag itself.
	z.rawUntil = ""
	return z.readEndTag()
}

// indexFold is a case-insensitive strings.Index for ASCII needles.
func indexFold(s, needle string) int {
	n := len(needle)
	if n == 0 {
		return 0
	}
	for i := 0; i+n <= len(s); i++ {
		if strings.EqualFold(s[i:i+n], needle) {
			return i
		}
	}
	return -1
}
