package html

import (
	"strings"
	"testing"
)

// FuzzParse: the parser must never panic, must terminate, and must
// produce output whose re-parse is stable.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<html><body><p>hi</p></body></html>",
		"<div><span>x</div>after",
		"<script>if (a<b) {</script>",
		"<!DOCTYPE html><!-- c --><p>&amp;&#65;&#x41;&nosuch;",
		"<table><tr><td>a<td>b<tr>c",
		"<a href='x' b=\"y\" c=d disabled>t</a>",
		"< not a tag <img src=x.png /><",
		strings.Repeat("<div>", 100),
		"<p style=\"color:red\">mixed <B>CASE</b></P>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)
		if doc == nil {
			t.Fatal("nil document")
		}
		out := Render(doc)
		if Render(Parse(out)) != out {
			t.Fatalf("render not stable for %q", src)
		}
		tidied := TidyString(src)
		if TidyString(tidied) != tidied {
			t.Fatalf("tidy not idempotent for %q", src)
		}
	})
}
