package admission

import (
	"context"
	"sync"
)

// Coalescer folds concurrent identical work into one execution: N
// callers of Do with the same key while a call is in flight share that
// call's result instead of running fn N times. This is the cache's
// single-flight idea lifted to the whole adaptation pipeline — a flash
// crowd of cold sessions on one page costs one fetch+adapt run, not one
// per session.
//
// The shared execution runs on the first caller's goroutine under a
// context detached from any one request's cancellation: it is canceled
// only when every participating caller has gone away, so one impatient
// client cannot abort work others still want, while a fully abandoned
// build stops promptly (including its origin fetches and backoff
// sleeps).
type Coalescer[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

// call is one in-flight shared execution.
type call[V any] struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	val     V
	err     error
}

// NewCoalescer returns an empty coalescer.
func NewCoalescer[V any]() *Coalescer[V] {
	return &Coalescer[V]{calls: make(map[string]*call[V])}
}

// Do runs fn once per key among concurrent callers and hands every
// caller the shared result. coalesced reports whether this caller
// reused another's execution. A caller whose ctx ends before the shared
// call finishes returns ctx.Err() (the call keeps running for the
// remaining participants; when none remain, fn's context is canceled).
func (c *Coalescer[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (v V, coalesced bool, err error) {
	c.mu.Lock()
	if cl, ok := c.calls[key]; ok {
		cl.waiters++
		c.mu.Unlock()
		c.watch(ctx, cl)
		select {
		case <-cl.done:
			return cl.val, true, cl.err
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	cl := &call[V]{done: make(chan struct{}), waiters: 1}
	// Detach the build from the leader's request: carry its values (the
	// trace, so pipeline spans still land somewhere) but not its
	// cancellation — the watcher refcount decides when to cancel.
	buildCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	cl.cancel = cancel
	c.calls[key] = cl
	c.mu.Unlock()
	c.watch(ctx, cl)

	v, err = fn(buildCtx)

	c.mu.Lock()
	delete(c.calls, key)
	c.mu.Unlock()
	cl.val, cl.err = v, err
	close(cl.done)
	cancel()
	return v, false, err
}

// watch decrements the call's participant count when ctx ends before
// the call does, canceling the shared execution once nobody is left
// waiting for it.
func (c *Coalescer[V]) watch(ctx context.Context, cl *call[V]) {
	go func() {
		select {
		case <-cl.done:
		case <-ctx.Done():
			c.mu.Lock()
			cl.waiters--
			if cl.waiters <= 0 {
				cl.cancel()
			}
			c.mu.Unlock()
		}
	}()
}

// Waiters returns how many callers are participating in key's in-flight
// call (0 when the key is idle).
func (c *Coalescer[V]) Waiters(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.calls[key]; ok {
		return cl.waiters
	}
	return 0
}

// InFlight returns the number of keys currently executing.
func (c *Coalescer[V]) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.calls)
}
