package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterBoundsConcurrency(t *testing.T) {
	const maxConcurrent = 3
	l, err := NewLimiter(LimiterConfig{MaxConcurrent: maxConcurrent, QueueLen: 100})
	if err != nil {
		t.Fatal(err)
	}
	var active, peak, total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background())
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			n := active.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			active.Add(-1)
			total.Add(1)
			release()
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > maxConcurrent {
		t.Errorf("peak concurrency = %d, want <= %d", got, maxConcurrent)
	}
	if got := total.Load(); got != 40 {
		t.Errorf("completed = %d, want 40", got)
	}
	if got := l.Active(); got != 0 {
		t.Errorf("active after drain = %d, want 0", got)
	}
	if got := l.QueueDepth(); got != 0 {
		t.Errorf("queue depth after drain = %d, want 0", got)
	}
}

func TestLimiterQueueFullSheds(t *testing.T) {
	l, err := NewLimiter(LimiterConfig{MaxConcurrent: 1, QueueLen: -1})
	if err != nil {
		t.Fatal(err)
	}
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	_, err = l.Acquire(context.Background())
	shed, ok := IsShed(err)
	if !ok {
		t.Fatalf("Acquire with full queue: err = %v, want ShedError", err)
	}
	if shed.Reason != ReasonQueueFull {
		t.Errorf("reason = %q, want %q", shed.Reason, ReasonQueueFull)
	}
	if shed.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", shed.RetryAfter)
	}
}

func TestLimiterShedsDoomedDeadlineOnArrival(t *testing.T) {
	// Seed a long expected run so the wait estimate for a queued request
	// dwarfs the request's deadline.
	l, err := NewLimiter(LimiterConfig{MaxConcurrent: 1, QueueLen: 8, ExpectedRun: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = l.Acquire(ctx)
	shed, ok := IsShed(err)
	if !ok {
		t.Fatalf("Acquire with doomed deadline: err = %v, want ShedError", err)
	}
	if shed.Reason != ReasonDeadline {
		t.Errorf("reason = %q, want %q", shed.Reason, ReasonDeadline)
	}
	// Shed on arrival means no waiting: the caller learns immediately,
	// not when its deadline expires.
	if waited := time.Since(start); waited > 40*time.Millisecond {
		t.Errorf("shed took %v, want immediate", waited)
	}
	if got := l.QueueDepth(); got != 0 {
		t.Errorf("queue depth = %d, want 0 (doomed request never queued)", got)
	}
}

func TestLimiterShedsExpiredQueueEntry(t *testing.T) {
	// A short expected run admits the request into the queue; the held
	// slot then outlives the request's deadline.
	l, err := NewLimiter(LimiterConfig{MaxConcurrent: 1, QueueLen: 8, ExpectedRun: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = l.Acquire(ctx)
	shed, ok := IsShed(err)
	if !ok {
		t.Fatalf("Acquire expiring in queue: err = %v, want ShedError", err)
	}
	if shed.Reason != ReasonDeadline {
		t.Errorf("reason = %q, want %q", shed.Reason, ReasonDeadline)
	}
	if got := l.QueueDepth(); got != 0 {
		t.Errorf("queue depth = %d, want 0 (expired waiter removed)", got)
	}
	// The slot still works: release it and the next acquire succeeds.
	release()
	release2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after drain: %v", err)
	}
	release2()
}

func TestLimiterReleaseIdempotent(t *testing.T) {
	l, err := NewLimiter(LimiterConfig{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // second call must not free a slot twice
	if got := l.Active(); got != 0 {
		t.Errorf("active = %d, want 0", got)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-time.Second, 1},
		{time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{2500 * time.Millisecond, 3},
		{10 * time.Second, 10},
	}
	for _, tt := range tests {
		if got := RetryAfterSeconds(tt.d); got != tt.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestEstimateWait(t *testing.T) {
	tests := []struct {
		pos, maxConcurrent int
		avgRun             time.Duration
		want               time.Duration
	}{
		{0, 1, time.Second, time.Second},
		{1, 1, time.Second, 2 * time.Second},
		{0, 4, time.Second, 250 * time.Millisecond},
		{7, 4, time.Second, 2 * time.Second},
		{0, 0, time.Second, time.Second}, // degenerate concurrency clamps to 1
		{3, 2, 0, 0},                     // no estimate yet
	}
	for _, tt := range tests {
		if got := estimateWait(tt.pos, tt.maxConcurrent, tt.avgRun); got != tt.want {
			t.Errorf("estimateWait(%d, %d, %v) = %v, want %v",
				tt.pos, tt.maxConcurrent, tt.avgRun, got, tt.want)
		}
	}
}

func TestRateLimiter(t *testing.T) {
	now := time.Unix(1000, 0)
	rl := NewRateLimiter(2, 3) // 2 tokens/s, bucket of 3
	rl.setClock(func() time.Time { return now })

	// The burst admits exactly 3 back-to-back requests.
	for i := 0; i < 3; i++ {
		if ok, _ := rl.Allow("client"); !ok {
			t.Fatalf("request %d rejected inside burst", i)
		}
	}
	ok, retry := rl.Allow("client")
	if ok {
		t.Fatal("request 4 allowed, want rejected")
	}
	// Empty bucket at 2 tokens/s: one token is 500ms away.
	if retry != 500*time.Millisecond {
		t.Errorf("retryAfter = %v, want 500ms", retry)
	}

	// Other clients are unaffected.
	if ok, _ := rl.Allow("other"); !ok {
		t.Error("other client rejected by this client's exhaustion")
	}

	// After the hinted wait, exactly one request fits again.
	now = now.Add(retry)
	if ok, _ := rl.Allow("client"); !ok {
		t.Error("request after refill rejected")
	}
	if ok, _ := rl.Allow("client"); ok {
		t.Error("second request after single-token refill allowed")
	}

	// A long idle period caps the bucket at burst, not beyond.
	now = now.Add(time.Hour)
	allowed := 0
	for i := 0; i < 10; i++ {
		if ok, _ := rl.Allow("client"); ok {
			allowed++
		}
	}
	if allowed != 3 {
		t.Errorf("after idle, burst admitted %d, want 3", allowed)
	}
}

func TestRateLimiterDefaultBurst(t *testing.T) {
	if rl := NewRateLimiter(1, 0); rl.burst != 5 {
		t.Errorf("burst for rate 1 = %v, want 5 (floor)", rl.burst)
	}
	if rl := NewRateLimiter(10, 0); rl.burst != 20 {
		t.Errorf("burst for rate 10 = %v, want 20 (2x rate)", rl.burst)
	}
}

func TestRateLimiterPrunesIdleBuckets(t *testing.T) {
	now := time.Unix(1000, 0)
	rl := NewRateLimiter(1, 1)
	rl.setClock(func() time.Time { return now })
	for i := 0; i < maxBuckets; i++ {
		rl.Allow(string(rune('a')) + time.Duration(i).String())
	}
	if got := rl.Len(); got != maxBuckets {
		t.Fatalf("buckets = %d, want %d", got, maxBuckets)
	}
	// Everyone refills over the next hour; the next new client triggers
	// the prune and the map collapses.
	now = now.Add(time.Hour)
	rl.Allow("fresh")
	if got := rl.Len(); got != 1 {
		t.Errorf("buckets after prune = %d, want 1", got)
	}
}

func TestCoalescerSingleExecution(t *testing.T) {
	c := NewCoalescer[int]()
	const callers = 32
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, callers)
	coalesced := make([]bool, callers)

	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, co, err := c.Do(context.Background(), "key", func(context.Context) (int, error) {
				runs.Add(1)
				close(started)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i], coalesced[i] = v, co
		}(i)
	}

	<-started
	// Wait until every caller has joined the in-flight call, then let it
	// finish — no timing assumptions.
	for c.Waiters("key") < callers {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("executions = %d, want exactly 1", got)
	}
	nCoalesced := 0
	for i := range results {
		if results[i] != 42 {
			t.Errorf("caller %d got %d, want 42", i, results[i])
		}
		if coalesced[i] {
			nCoalesced++
		}
	}
	if nCoalesced != callers-1 {
		t.Errorf("coalesced callers = %d, want %d", nCoalesced, callers-1)
	}
	if c.InFlight() != 0 {
		t.Errorf("in-flight after drain = %d, want 0", c.InFlight())
	}
}

func TestCoalescerSequentialCallsRunSeparately(t *testing.T) {
	c := NewCoalescer[int]()
	var runs atomic.Int64
	for i := 0; i < 3; i++ {
		_, co, err := c.Do(context.Background(), "key", func(context.Context) (int, error) {
			runs.Add(1)
			return i, nil
		})
		if err != nil || co {
			t.Fatalf("call %d: coalesced=%v err=%v, want fresh run", i, co, err)
		}
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("executions = %d, want 3 (no in-flight call to share)", got)
	}
}

func TestCoalescerJoinerCancelKeepsBuildAlive(t *testing.T) {
	c := NewCoalescer[int]()
	started := make(chan struct{})
	release := make(chan struct{})
	var buildCanceled atomic.Bool

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "key", func(bctx context.Context) (int, error) {
			close(started)
			<-release
			buildCanceled.Store(bctx.Err() != nil)
			return 7, nil
		})
		leaderDone <- err
	}()
	<-started

	// A joiner with a canceled context leaves; the build must survive for
	// the leader.
	jctx, jcancel := context.WithCancel(context.Background())
	joinerDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(jctx, "key", func(context.Context) (int, error) {
			t.Error("joiner ran its own build")
			return 0, nil
		})
		joinerDone <- err
	}()
	for c.Waiters("key") < 2 {
		time.Sleep(time.Millisecond)
	}
	jcancel()
	if err := <-joinerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("joiner err = %v, want context.Canceled", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v, want nil", err)
	}
	if buildCanceled.Load() {
		t.Error("build context canceled while the leader still wanted it")
	}
}

func TestCoalescerAllCallersGoneCancelsBuild(t *testing.T) {
	c := NewCoalescer[int]()
	started := make(chan struct{})
	canceled := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "key", func(bctx context.Context) (int, error) {
			close(started)
			<-bctx.Done() // the build notices abandonment promptly
			close(canceled)
			return 0, bctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()

	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("build context not canceled after every caller left")
	}
	<-done
}

func TestControllerNilSafe(t *testing.T) {
	var c *Controller
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatalf("nil controller Acquire: %v", err)
	}
	release()
	if ok, _ := c.AllowClient("anyone"); !ok {
		t.Error("nil controller rejected a client")
	}
	if c.Limiter() != nil {
		t.Error("nil controller returned a limiter")
	}
	c.SetObs(nil)
}

func TestControllerConfig(t *testing.T) {
	c, err := NewController(Config{MaxConcurrent: 2, RatePerSec: 1, Burst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Limiter() == nil {
		t.Fatal("limiter not built")
	}
	if ok, _ := c.AllowClient("k"); !ok {
		t.Fatal("first request rejected")
	}
	if ok, retry := c.AllowClient("k"); ok || retry <= 0 {
		t.Fatalf("second request: ok=%v retry=%v, want rejection with hint", ok, retry)
	}

	open, err := NewController(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if open.Limiter() != nil {
		t.Error("zero config built a limiter")
	}
	if ok, _ := open.AllowClient("k"); !ok {
		t.Error("zero config rejected a client")
	}
}

func TestBackgroundLaneLeavesHeadroom(t *testing.T) {
	l, err := NewLimiter(LimiterConfig{MaxConcurrent: 3, QueueLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The lane's budget is maxConcurrent-1: two grants, then busy.
	r1, err := l.AcquireBackground(context.Background())
	if err != nil {
		t.Fatalf("first background Acquire: %v", err)
	}
	r2, err := l.AcquireBackground(context.Background())
	if err != nil {
		t.Fatalf("second background Acquire: %v", err)
	}
	if _, err := l.AcquireBackground(context.Background()); !errors.Is(err, ErrBackgroundBusy) {
		t.Fatalf("third background Acquire: err=%v, want ErrBackgroundBusy", err)
	}
	// The reserved slot admits a foreground request instantly.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rf, err := l.Acquire(ctx)
	if err != nil {
		t.Fatalf("foreground Acquire with background headroom: %v", err)
	}
	if got := l.BackgroundActive(); got != 2 {
		t.Errorf("BackgroundActive = %d, want 2", got)
	}
	rf()
	r2()
	r1()
	if got, want := l.Active(), 0; got != want {
		t.Errorf("active after drain = %d, want %d", got, want)
	}
	if got := l.BackgroundActive(); got != 0 {
		t.Errorf("BackgroundActive after drain = %d, want 0", got)
	}
}

func TestBackgroundLaneYieldsToWaitingForeground(t *testing.T) {
	l, err := NewLimiter(LimiterConfig{MaxConcurrent: 2, QueueLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Fill both slots with foreground work and park one waiter.
	rel1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan func(), 1)
	go func() {
		r, err := l.Acquire(context.Background())
		if err != nil {
			t.Errorf("queued foreground Acquire: %v", err)
			return
		}
		admitted <- r
	}()
	for l.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	// A slot frees up, but the foreground waiter owns it: background
	// must stay busy even though active < maxConcurrent momentarily.
	rel1()
	if _, err := l.AcquireBackground(context.Background()); !errors.Is(err, ErrBackgroundBusy) {
		t.Fatalf("background admitted while foreground waited: err=%v", err)
	}
	rel2()
	r := <-admitted
	r()
}

func TestBackgroundLaneSingleSlot(t *testing.T) {
	l, err := NewLimiter(LimiterConfig{MaxConcurrent: 1, QueueLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	// With one slot the lane may use it — otherwise prefetch could never
	// run on a minimal deployment.
	r, err := l.AcquireBackground(context.Background())
	if err != nil {
		t.Fatalf("background Acquire on 1-slot limiter: %v", err)
	}
	if _, err := l.AcquireBackground(context.Background()); !errors.Is(err, ErrBackgroundBusy) {
		t.Fatalf("second background Acquire: err=%v, want ErrBackgroundBusy", err)
	}
	r()
}

// TestBackgroundLaneNoForegroundStarvation saturates the background lane
// from many goroutines and proves a foreground arrival is never delayed
// beyond one slot handoff: every foreground Acquire must complete within
// the duration of a single background run, and the lane must never admit
// while a foreground waiter is queued. Run with -race.
func TestBackgroundLaneNoForegroundStarvation(t *testing.T) {
	const maxConcurrent = 4
	l, err := NewLimiter(LimiterConfig{MaxConcurrent: maxConcurrent, QueueLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Background pressure: 8 goroutines hammering the lane, holding any
	// granted slot for 2ms.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				release, err := l.AcquireBackground(context.Background())
				if err != nil {
					if !errors.Is(err, ErrBackgroundBusy) {
						t.Errorf("background Acquire: %v", err)
						return
					}
					continue
				}
				time.Sleep(2 * time.Millisecond)
				release()
			}
		}()
	}
	// Foreground probes: each must get a slot within one background run
	// (2ms) plus generous scheduling slack.
	const slack = 500 * time.Millisecond
	for i := 0; i < 50; i++ {
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), slack)
		release, err := l.Acquire(ctx)
		cancel()
		if err != nil {
			t.Fatalf("foreground Acquire %d starved: %v (waited %v)", i, err, time.Since(start))
		}
		time.Sleep(time.Millisecond)
		release()
	}
	close(stop)
	wg.Wait()
	if got := l.BackgroundActive(); got != 0 {
		t.Errorf("BackgroundActive after drain = %d, want 0", got)
	}
	if got := l.Active(); got != 0 {
		t.Errorf("active after drain = %d, want 0", got)
	}
}
