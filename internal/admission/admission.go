// Package admission is the overload-protection tier of the adaptation
// proxy. m.Site's economics depend on keeping the heavyweight
// fetch+layout+raster pipeline off the hot path (§4); this package makes
// sure a traffic spike cannot put it back on: a bounded concurrency
// limiter with a deadline-aware wait queue sheds work it could never
// finish in time (503 + Retry-After), an in-flight coalescer folds N
// identical cold adaptations into one pipeline run, and per-client token
// buckets stop any single session or address from monopolizing the
// proxy (429 + Retry-After). The design follows staged admission control
// (SEDA): say no early, cheaply, and with a useful hint, instead of
// queueing unboundedly and timing everyone out.
package admission

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"msite/internal/obs"
)

// Shed reasons, used as the `reason` label of
// msite_admission_shed_total and carried on ShedError.
const (
	// ReasonQueueFull: every pipeline slot and queue position was taken.
	ReasonQueueFull = "queue_full"
	// ReasonDeadline: the request's deadline would expire before a slot
	// could free up (shed on arrival), or expired while queued.
	ReasonDeadline = "deadline"
	// ReasonRateLimit: the client's token bucket was empty.
	ReasonRateLimit = "rate_limit"
	// ReasonSessionCap: session creation would exceed -max-sessions.
	ReasonSessionCap = "session_cap"
)

// ErrBackgroundBusy reports that the background lane could not be
// admitted right now: live traffic holds the slots or is waiting for
// them. Background work (the prefetch crawler) treats this as "skip and
// retry next tick", never as a failure — the whole point of the lane is
// that it yields instantly to the foreground.
var ErrBackgroundBusy = errors.New("admission: background lane busy")

// ShedError reports a request refused by admission control. The proxy
// maps it to 503 (capacity) or 429 (rate limit) with a Retry-After
// header derived from RetryAfter.
type ShedError struct {
	// Reason is one of the Reason* constants.
	Reason string
	// RetryAfter is the hint for when the client should try again.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: shed (%s), retry after %v", e.Reason, e.RetryAfter)
}

// IsShed reports whether err is an admission shed, returning it.
func IsShed(err error) (*ShedError, bool) {
	var shed *ShedError
	if errors.As(err, &shed) {
		return shed, true
	}
	return nil, false
}

// RetryAfterSeconds renders a Retry-After duration as whole seconds for
// the HTTP header: rounded up, never less than 1 (a Retry-After of 0
// invites an immediate retry storm).
func RetryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		return 1
	}
	return s
}

// estimateWait is the queue arithmetic behind deadline shedding and
// Retry-After hints: with maxConcurrent pipeline slots and an average
// run time of avgRun, the request entering at queue position pos
// (0-based) expects to wait for pos+1 slot releases, which arrive every
// avgRun/maxConcurrent on average.
func estimateWait(pos, maxConcurrent int, avgRun time.Duration) time.Duration {
	if maxConcurrent <= 0 {
		maxConcurrent = 1
	}
	if avgRun <= 0 {
		return 0
	}
	return time.Duration(int64(avgRun) * int64(pos+1) / int64(maxConcurrent))
}

// DefaultExpectedRun seeds the limiter's run-time estimate before any
// pipeline run has completed. Cold adaptations are origin-bound, so the
// seed is deliberately pessimistic.
const DefaultExpectedRun = 500 * time.Millisecond

// LimiterConfig tunes a Limiter.
type LimiterConfig struct {
	// MaxConcurrent is the number of adaptation pipelines allowed to run
	// at once (required, > 0).
	MaxConcurrent int
	// QueueLen bounds how many requests may wait for a slot. 0 defaults
	// to 4×MaxConcurrent; negative disables queueing (shed immediately
	// when all slots are busy).
	QueueLen int
	// ExpectedRun seeds the average-run-time estimate used for deadline
	// shedding and Retry-After hints until real runs are observed.
	// 0 uses DefaultExpectedRun.
	ExpectedRun time.Duration
}

// waiter is one queued request.
type waiter struct {
	ready    chan struct{} // closed on admission
	admitted bool
}

// Limiter is a bounded adaptation-concurrency limiter with a
// deadline-aware FIFO wait queue. Safe for concurrent use.
type Limiter struct {
	maxConcurrent int
	queueLen      int

	mu     sync.Mutex
	active int
	// bgActive counts the admitted runs that came through the background
	// lane; they are included in active. The lane may occupy at most
	// maxConcurrent-1 slots (all of them when maxConcurrent is 1), so a
	// cold foreground arrival normally finds a free slot instantly and
	// never waits more than one slot handoff behind background work.
	bgActive int
	queue    []*waiter
	// avgRun is the EWMA of completed run durations, the basis of
	// estimateWait.
	avgRun time.Duration

	depth *obs.Gauge // msite_admission_queue_depth
	shed  func(reason string)
}

// NewLimiter builds a limiter from cfg.
func NewLimiter(cfg LimiterConfig) (*Limiter, error) {
	if cfg.MaxConcurrent <= 0 {
		return nil, errors.New("admission: MaxConcurrent must be > 0")
	}
	queueLen := cfg.QueueLen
	if queueLen == 0 {
		queueLen = 4 * cfg.MaxConcurrent
	}
	if queueLen < 0 {
		queueLen = 0
	}
	expected := cfg.ExpectedRun
	if expected <= 0 {
		expected = DefaultExpectedRun
	}
	return &Limiter{
		maxConcurrent: cfg.MaxConcurrent,
		queueLen:      queueLen,
		avgRun:        expected,
		shed:          func(string) {},
	}, nil
}

// SetObs registers the limiter's queue-depth gauge and shed counter on
// reg.
func (l *Limiter) SetObs(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.depth = reg.Gauge("msite_admission_queue_depth")
	l.shed = func(reason string) {
		reg.Counter("msite_admission_shed_total", "reason", reason).Inc()
		reg.Emit(obs.EventShed, reason)
	}
}

// Acquire admits one pipeline run, waiting in the bounded queue when all
// slots are busy. The returned release func must be called exactly once
// when the run finishes. A request that cannot start before ctx's
// deadline — on arrival or while queued — is shed with a *ShedError.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	l.mu.Lock()
	if l.active < l.maxConcurrent && len(l.queue) == 0 {
		l.active++
		l.mu.Unlock()
		return l.releaser(time.Now()), nil
	}
	pos := len(l.queue)
	if pos >= l.queueLen {
		retry := estimateWait(pos, l.maxConcurrent, l.avgRun)
		l.mu.Unlock()
		l.shed(ReasonQueueFull)
		return nil, &ShedError{Reason: ReasonQueueFull, RetryAfter: retry}
	}
	wait := estimateWait(pos, l.maxConcurrent, l.avgRun)
	if dl, ok := ctx.Deadline(); ok && time.Now().Add(wait).After(dl) {
		l.mu.Unlock()
		l.shed(ReasonDeadline)
		return nil, &ShedError{Reason: ReasonDeadline, RetryAfter: wait}
	}
	w := &waiter{ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.setDepthLocked()
	l.mu.Unlock()

	select {
	case <-w.ready:
		return l.releaser(time.Now()), nil
	case <-ctx.Done():
		l.mu.Lock()
		if w.admitted {
			// Lost the race: the slot was already handed to us. Give it
			// back so the queue keeps draining.
			l.releaseLocked(0)
			l.mu.Unlock()
			return nil, ctx.Err()
		}
		l.removeLocked(w)
		retry := estimateWait(0, l.maxConcurrent, l.avgRun)
		l.mu.Unlock()
		l.shed(ReasonDeadline)
		return nil, &ShedError{Reason: ReasonDeadline, RetryAfter: retry}
	}
}

// backgroundSlots is the lane's slot budget: every slot but one is
// available to background work, so live traffic always has a slot it
// can take without waiting (with a single slot, background may use it —
// it still hands the slot over after at most one run).
func (l *Limiter) backgroundSlots() int {
	if l.maxConcurrent <= 1 {
		return 1
	}
	return l.maxConcurrent - 1
}

// AcquireBackground admits one run on the low-priority background lane.
// Unlike Acquire it never queues: a slot is granted only when one is
// free right now, no foreground request is waiting, and background
// occupancy stays under the lane's slot budget. Otherwise it returns
// ErrBackgroundBusy immediately — background work yields to live
// traffic rather than competing with it. The returned release func must
// be called exactly once.
func (l *Limiter) AcquireBackground(ctx context.Context) (release func(), err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	if l.active < l.maxConcurrent && len(l.queue) == 0 && l.bgActive < l.backgroundSlots() {
		l.active++
		l.bgActive++
		l.mu.Unlock()
		return l.backgroundReleaser(time.Now()), nil
	}
	l.mu.Unlock()
	return nil, ErrBackgroundBusy
}

// BackgroundActive returns the number of background-lane runs in flight.
func (l *Limiter) BackgroundActive() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bgActive
}

// backgroundReleaser returns the once-only release func for a
// background-lane run.
func (l *Limiter) backgroundReleaser(start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			l.bgActive--
			// Background runs do not feed the EWMA: crawler builds are
			// origin-bound refreshes whose duration should not distort the
			// deadline arithmetic for live requests.
			l.releaseLocked(0)
			l.mu.Unlock()
		})
	}
}

// releaser returns the once-only release func for an admitted run.
func (l *Limiter) releaser(start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			l.releaseLocked(time.Since(start))
			l.mu.Unlock()
		})
	}
}

// releaseLocked frees one slot, folds the run duration into the EWMA,
// and admits the queue head.
func (l *Limiter) releaseLocked(ran time.Duration) {
	l.active--
	if ran > 0 {
		// EWMA with α = 1/4: responsive to load shifts, stable under
		// jitter.
		l.avgRun = (3*l.avgRun + ran) / 4
	}
	for l.active < l.maxConcurrent && len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		w.admitted = true
		l.active++
		close(w.ready)
	}
	l.setDepthLocked()
}

// removeLocked drops a waiter that gave up (deadline or disconnect).
func (l *Limiter) removeLocked(w *waiter) {
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	l.setDepthLocked()
}

func (l *Limiter) setDepthLocked() {
	if l.depth != nil {
		l.depth.Set(float64(len(l.queue)))
	}
}

// QueueDepth returns the number of requests currently waiting.
func (l *Limiter) QueueDepth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}

// Active returns the number of admitted runs in flight.
func (l *Limiter) Active() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active
}

// Controller bundles the proxy's admission machinery: the pipeline
// concurrency limiter and the per-client rate limiter. Either may be
// absent (nil Controller, or a Controller with only one of them, means
// that dimension is unlimited). One Controller is shared by every site
// of a MultiProxy — capacity is a property of the process, not a page.
type Controller struct {
	limiter *Limiter
	rate    *RateLimiter
}

// Config wires a Controller.
type Config struct {
	// MaxConcurrent bounds concurrent adaptation pipelines. 0 disables
	// the concurrency limiter.
	MaxConcurrent int
	// QueueLen bounds the admission wait queue (see LimiterConfig).
	QueueLen int
	// ExpectedRun seeds the run-time estimate (see LimiterConfig).
	ExpectedRun time.Duration
	// RatePerSec is the per-client steady-state request rate. 0 disables
	// rate limiting.
	RatePerSec float64
	// Burst is the per-client token bucket depth. 0 derives a burst of
	// max(5, 2×RatePerSec).
	Burst float64
}

// NewController builds a Controller; a zero Config returns one that
// admits everything.
func NewController(cfg Config) (*Controller, error) {
	c := &Controller{}
	if cfg.MaxConcurrent > 0 {
		l, err := NewLimiter(LimiterConfig{
			MaxConcurrent: cfg.MaxConcurrent,
			QueueLen:      cfg.QueueLen,
			ExpectedRun:   cfg.ExpectedRun,
		})
		if err != nil {
			return nil, err
		}
		c.limiter = l
	}
	if cfg.RatePerSec > 0 {
		c.rate = NewRateLimiter(cfg.RatePerSec, cfg.Burst)
	}
	return c, nil
}

// SetObs registers the controller's metrics on reg.
func (c *Controller) SetObs(reg *obs.Registry) {
	if c == nil {
		return
	}
	if c.limiter != nil {
		c.limiter.SetObs(reg)
	}
	if c.rate != nil {
		c.rate.SetObs(reg)
	}
}

// Acquire admits one pipeline run (see Limiter.Acquire). A nil
// Controller or one without a limiter admits immediately.
func (c *Controller) Acquire(ctx context.Context) (func(), error) {
	if c == nil || c.limiter == nil {
		return func() {}, nil
	}
	return c.limiter.Acquire(ctx)
}

// AcquireBackground admits one run on the low-priority background lane
// (see Limiter.AcquireBackground). A nil Controller or one without a
// limiter admits immediately — with no concurrency bound there is no
// capacity to protect.
func (c *Controller) AcquireBackground(ctx context.Context) (func(), error) {
	if c == nil || c.limiter == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return func() {}, nil
	}
	return c.limiter.AcquireBackground(ctx)
}

// AllowClient spends one token from the client's bucket. A nil
// Controller or one without a rate limiter always allows.
func (c *Controller) AllowClient(key string) (ok bool, retryAfter time.Duration) {
	if c == nil || c.rate == nil {
		return true, 0
	}
	return c.rate.Allow(key)
}

// Limiter exposes the concurrency limiter (nil when disabled).
func (c *Controller) Limiter() *Limiter {
	if c == nil {
		return nil
	}
	return c.limiter
}
