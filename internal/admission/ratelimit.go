package admission

import (
	"sync"
	"time"

	"msite/internal/obs"
)

// maxBuckets bounds the per-client bucket map; past it, a lazy prune
// drops buckets that have refilled completely (an idle client's bucket
// carries no information a fresh one wouldn't).
const maxBuckets = 16384

// RateLimiter is a per-client token-bucket rate limiter, keyed by
// session ID or remote address. Each key gets a bucket of depth burst
// refilling at rate tokens per second; a request spends one token.
// Safe for concurrent use.
type RateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	clock func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket

	rejects *obs.Counter  // msite_ratelimit_rejects_total
	reg     *obs.Registry // shed-event sink for the flight recorder
}

// bucket is one client's token state.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter allowing ratePerSec steady-state
// requests per client with bursts of burst. burst <= 0 derives
// max(5, 2×ratePerSec).
func NewRateLimiter(ratePerSec, burst float64) *RateLimiter {
	if burst <= 0 {
		burst = 2 * ratePerSec
		if burst < 5 {
			burst = 5
		}
	}
	return &RateLimiter{
		rate:    ratePerSec,
		burst:   burst,
		clock:   time.Now,
		buckets: make(map[string]*bucket),
	}
}

// SetObs registers the reject counter on reg.
func (r *RateLimiter) SetObs(reg *obs.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rejects = reg.Counter("msite_ratelimit_rejects_total")
	r.reg = reg
}

// setClock swaps the time source for tests.
func (r *RateLimiter) setClock(clock func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = clock
}

// Allow spends one token from key's bucket. When the bucket is empty it
// reports false with the time until one token has refilled — the 429
// Retry-After hint.
func (r *RateLimiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	b, found := r.buckets[key]
	if !found {
		if len(r.buckets) >= maxBuckets {
			r.pruneLocked(now)
		}
		b = &bucket{tokens: r.burst, last: now}
		r.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * r.rate
		if b.tokens > r.burst {
			b.tokens = r.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if r.rejects != nil {
		r.rejects.Inc()
	}
	if r.reg != nil {
		r.reg.Emit(obs.EventShed, ReasonRateLimit)
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / r.rate * float64(time.Second))
}

// pruneLocked drops buckets that have fully refilled — clients idle long
// enough that forgetting them is indistinguishable from remembering.
func (r *RateLimiter) pruneLocked(now time.Time) {
	for key, b := range r.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*r.rate >= r.burst {
			delete(r.buckets, key)
		}
	}
}

// Len returns the number of tracked client buckets.
func (r *RateLimiter) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buckets)
}
