package attr

import (
	"net/url"
	"strings"

	"msite/internal/dom"
)

// urlAttrs are the attributes that carry URLs per tag.
var urlAttrs = map[string][]string{
	"a":      {"href"},
	"area":   {"href"},
	"img":    {"src"},
	"iframe": {"src"},
	"embed":  {"src"},
	"object": {"data"},
	"form":   {"action"},
	"input":  {"src"},
	"link":   {"href"},
	"script": {"src"},
	"video":  {"src", "poster"},
	"audio":  {"src"},
	"source": {"src"},
}

// AbsolutizeURLs rewrites origin-relative URL attributes in doc against
// base, so adapted pages served from the proxy host keep working: a
// forum's href="/forumdisplay.php?f=2" becomes the absolute origin URL
// instead of dangling against the proxy. Proxy-internal references
// (those starting with any of skipPrefixes), anchors, javascript:, data:,
// and already-absolute URLs are left alone. Returns the rewrite count.
func AbsolutizeURLs(doc *dom.Node, base string, skipPrefixes ...string) int {
	baseURL, err := url.Parse(base)
	if err != nil || baseURL.Host == "" {
		return 0
	}
	count := 0
	doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		keys, ok := urlAttrs[n.Tag]
		if !ok {
			return true
		}
		for _, key := range keys {
			val, ok := n.Attr(key)
			if !ok || !needsAbsolutizing(val, skipPrefixes) {
				continue
			}
			abs, err := baseURL.Parse(val)
			if err != nil {
				continue
			}
			n.SetAttr(key, abs.String())
			count++
		}
		return true
	})
	return count
}

func needsAbsolutizing(val string, skipPrefixes []string) bool {
	if val == "" || strings.HasPrefix(val, "#") {
		return false
	}
	lower := strings.ToLower(val)
	for _, scheme := range []string{"http:", "https:", "javascript:", "data:", "mailto:", "tel:"} {
		if strings.HasPrefix(lower, scheme) {
			return false
		}
	}
	if strings.HasPrefix(val, "//") {
		return false // protocol-relative: already origin-qualified
	}
	for _, p := range skipPrefixes {
		if p == "" {
			continue
		}
		if val == p {
			return false
		}
		if strings.HasPrefix(val, p) {
			// Only skip at a path boundary: "/login" must not swallow the
			// origin's "/login.php".
			if strings.HasSuffix(p, "/") {
				return false
			}
			switch val[len(p)] {
			case '/', '?', '#':
				return false
			}
		}
	}
	return true
}
