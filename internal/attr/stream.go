package attr

import (
	"fmt"
	"strings"

	"msite/internal/dom"
	"msite/internal/html"
)

// ATFMarker is the comment the streaming entry producer emits between
// the above-the-fold and below-the-fold fragments. Clients ignore it;
// the streaming experiments watch the response stream for it to measure
// ATF-complete time without parsing HTML.
const ATFMarker = "<!-- msite:atf -->"

// OverlayStream is the entry page split into ordered fragments for
// flush-early serving. The concatenation Head+ATF+BTF+Tail is one
// complete overlay page; the proxy flushes each fragment as soon as the
// pipeline can produce it (Head before adaptation even starts, ATF as
// soon as the attribute phase has regions, the rest when the subpage
// set is final).
type OverlayStream struct {
	// Head opens the document through the image map: doctype, head,
	// body, the snapshot img, and the map's opening tag. It references
	// only statically-known URLs, so it can be flushed before the origin
	// fetch begins.
	Head []byte
	// ATF holds the image-map areas whose scaled region starts above
	// the fold.
	ATF []byte
	// BTF holds the remaining areas and closes the map.
	BTF []byte
	// Tail holds the AJAX pane and runtime (when any subpage loads
	// asynchronously), the snapshot upgrade script (when the overlay
	// references a coarse-first snapshot), and the document close.
	Tail []byte
}

// BuildOverlayStream assembles the entry page as flushable fragments.
// The markup matches BuildOverlayHTML's, with two streaming additions:
// the snapshot img carries an id so the upgrade script can retarget it,
// and areas are ordered above-the-fold first. Regions whose scaled top
// edge is above atfHeight are above the fold; atfHeight <= 0 treats
// everything as above the fold. When ov.UpgradeURL is set, the Tail
// swaps the snapshot to the full-fidelity artifact once it exists.
func (a *Applier) BuildOverlayStream(ov Overlay, subpages []*Subpage, atfHeight int) OverlayStream {
	var out OverlayStream

	var head strings.Builder
	head.WriteString("<!DOCTYPE html><html><head>")
	titleEl := dom.NewElement("title")
	titleEl.AppendChild(dom.NewText(ov.Title))
	head.WriteString(html.Render(titleEl))
	meta := dom.NewElement("meta")
	meta.SetAttr("name", "viewport")
	meta.SetAttr("content", "width=device-width, initial-scale=1")
	head.WriteString(html.Render(meta))
	head.WriteString("</head><body>")
	img := dom.NewElement("img")
	img.SetAttr("id", "msite-snap")
	img.SetAttr("src", ov.SnapshotURL)
	img.SetAttr("alt", ov.Title)
	img.SetAttr("usemap", "#msite-map")
	// Geometry is unknown until layout completes; a streamed head simply
	// omits it and lets the client size the image on arrival.
	if ov.Width > 0 && ov.Height > 0 {
		img.SetAttr("width", itoa(ov.Width))
		img.SetAttr("height", itoa(ov.Height))
	}
	img.SetAttr("style", "border: 0")
	head.WriteString(html.Render(img))
	head.WriteString(`<map name="msite-map">`)
	out.Head = []byte(head.String())

	var atf, btf strings.Builder
	hasAJAX := false
	for _, sub := range subpages {
		if !sub.Region.Valid() || sub.Parent != "" {
			continue
		}
		r := sub.Region.Scale(ov.Scale)
		area := dom.NewElement("area")
		area.SetAttr("shape", "rect")
		area.SetAttr("coords", fmt.Sprintf("%d,%d,%d,%d", r.X, r.Y, r.X+r.W, r.Y+r.H))
		area.SetAttr("alt", sub.Title)
		url := a.subpageURL(sub.Name)
		area.SetAttr("href", url)
		if sub.AJAX {
			hasAJAX = true
			area.SetAttr("onclick", "return msiteLoad('"+url+"');")
		}
		if atfHeight <= 0 || r.Y < atfHeight {
			atf.WriteString(html.Render(area))
		} else {
			btf.WriteString(html.Render(area))
		}
	}
	btf.WriteString("</map>")
	out.ATF = []byte(atf.String())
	out.BTF = []byte(btf.String())

	var tail strings.Builder
	if hasAJAX {
		pane := dom.NewElement("div")
		pane.SetAttr("id", "msite-pane")
		pane.SetAttr("style", "display: none; position: absolute; top: 20px; left: 5%; width: 90%; background-color: white; border: 2px solid #444444")
		tail.WriteString(html.Render(pane))
		script := dom.NewElement("script")
		script.SetAttr("type", "text/javascript")
		script.SetAttr("data-msite", "runtime")
		script.AppendChild(dom.NewText(ajaxRuntime))
		tail.WriteString(html.Render(script))
	}
	if ov.UpgradeURL != "" {
		script := dom.NewElement("script")
		script.SetAttr("type", "text/javascript")
		script.SetAttr("data-msite", "upgrade")
		script.AppendChild(dom.NewText(upgradeScript(ov.UpgradeURL)))
		tail.WriteString(html.Render(script))
	}
	tail.WriteString("</body></html>")
	out.Tail = []byte(tail.String())
	return out
}

// upgradeScript polls the full-fidelity snapshot URL and swaps it into
// the overlay image once the encode has completed server-side. The
// asset handler blocks briefly for an in-flight render, so the first
// probe usually succeeds; the retry loop covers slow encodes.
func upgradeScript(url string) string {
	return fmt.Sprintf(`(function () {
  var u = %q, n = 0;
  function probe() {
    var p = new Image();
    p.onload = function () {
      var img = document.getElementById('msite-snap');
      if (img) { img.src = u; }
    };
    p.onerror = function () { if (++n < 40) { setTimeout(probe, 500); } };
    p.src = u;
  }
  probe();
})();
`, url)
}

// minimalSkip are subtrees the minimal-markup mode drops entirely:
// graphics, scripting, styling, embeds, and the overlay machinery.
var minimalSkip = map[string]bool{
	"script": true, "style": true, "img": true, "picture": true,
	"svg": true, "canvas": true, "iframe": true, "object": true,
	"embed": true, "video": true, "audio": true, "noscript": true,
	"map": true, "area": true, "form": true, "input": true,
	"select": true, "textarea": true, "button": true, "link": true,
	"meta": true, "head": true,
}

// minimalBlocks end the current text run when entered or left, so text
// separated by block structure stays separated in the output.
var minimalBlocks = map[string]bool{
	"p": true, "div": true, "li": true, "tr": true, "td": true,
	"th": true, "table": true, "ul": true, "ol": true, "dl": true,
	"dt": true, "dd": true, "section": true, "article": true,
	"header": true, "footer": true, "nav": true, "aside": true,
	"blockquote": true, "pre": true, "br": true, "hr": true,
	"figure": true, "figcaption": true, "main": true,
}

// MinimalMarkupHTML renders doc as MAML-style minimal markup: headings,
// text runs, and links only — no images, scripts, styles, or layout
// machinery. The output is the extreme low end of the fidelity ladder,
// sized for 2G-class links where even the coarse snapshot is too heavy.
func MinimalMarkupHTML(title string, doc *dom.Node) []byte {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head>")
	titleEl := dom.NewElement("title")
	titleEl.AppendChild(dom.NewText(title))
	b.WriteString(html.Render(titleEl))
	b.WriteString(`<meta name="viewport" content="width=device-width, initial-scale=1">`)
	b.WriteString("</head><body>")

	root := doc.Body()
	if root == nil {
		root = doc
	}
	var run strings.Builder
	flush := func() {
		if text := collapseSpace(run.String()); text != "" {
			b.WriteString("<p>")
			b.WriteString(html.EscapeText(text))
			b.WriteString("</p>")
		}
		run.Reset()
	}
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		switch n.Type {
		case dom.TextNode:
			run.WriteString(n.Data)
			return
		case dom.ElementNode:
		default:
			for c := n.FirstChild; c != nil; c = c.NextSibling {
				walk(c)
			}
			return
		}
		if minimalSkip[n.Tag] {
			return
		}
		switch n.Tag {
		case "h1", "h2", "h3", "h4", "h5", "h6":
			flush()
			if text := collapseSpace(n.Text()); text != "" {
				b.WriteString("<" + n.Tag + ">")
				b.WriteString(html.EscapeText(text))
				b.WriteString("</" + n.Tag + ">")
			}
			return
		case "a":
			if href, ok := n.Attr("href"); ok && href != "" {
				flush()
				text := collapseSpace(n.Text())
				if text == "" {
					text = href
				}
				b.WriteString(`<p><a href="` + html.EscapeAttr(href) + `">`)
				b.WriteString(html.EscapeText(text))
				b.WriteString("</a></p>")
				return
			}
		}
		block := minimalBlocks[n.Tag]
		if block {
			flush()
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			walk(c)
		}
		if block {
			flush()
		}
	}
	walk(root)
	flush()
	b.WriteString("</body></html>")
	return []byte(b.String())
}

// collapseSpace trims and collapses runs of whitespace to one space.
func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
