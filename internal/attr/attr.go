// Package attr implements m.Site's attribute system (§3.3) — the heart of
// the framework. An Applier takes a fetched, parsed origin page plus the
// administrator's Spec and produces the adapted main document and its
// generated subpages: page splitting, sub-subpages, dependency pull-in,
// object insertion/removal/relocation/replacement, JavaScript
// insertion/removal, server-side pre-rendering (full and partial-CSS),
// image fidelity selection, searchable snapshots, and AJAX rewriting.
package attr

import (
	"fmt"
	"image"
	"strconv"
	"strings"
	"sync"
	"time"

	"msite/internal/ajax"
	"msite/internal/css"
	"msite/internal/dom"
	"msite/internal/html"
	"msite/internal/imaging"
	"msite/internal/jq"
	"msite/internal/layout"
	"msite/internal/raster"
	"msite/internal/spec"
	"msite/internal/xpath"
)

// Region is a pixel rectangle in the original page layout.
type Region struct {
	X, Y, W, H int
}

// Valid reports whether the region has area.
func (r Region) Valid() bool { return r.W > 0 && r.H > 0 }

// Scale returns the region multiplied by factor — the implicit coordinate
// translation for scaled-down snapshots (§4.3).
func (r Region) Scale(f float64) Region {
	return Region{
		X: int(float64(r.X) * f),
		Y: int(float64(r.Y) * f),
		W: int(float64(r.W) * f),
		H: int(float64(r.H) * f),
	}
}

// Subpage is one generated subpage.
type Subpage struct {
	// Name is the object name that produced the subpage.
	Name string
	// Title is the subpage document title.
	Title string
	// Doc is the standalone subpage document.
	Doc *dom.Node
	// Parent is the enclosing subpage for hierarchical navigation
	// (§3.3 "Sub-subpages"), or "".
	Parent string
	// Region locates the source object in the original page layout; the
	// snapshot image map links this rectangle to the subpage.
	Region Region
	// PreRender marks the subpage for server-side rendering to an image.
	PreRender bool
	// AJAX marks the subpage for asynchronous loading into the current
	// page instead of navigation (§4.3).
	AJAX bool
	// Fidelity selects the image encoding for pre-rendered output.
	Fidelity imaging.Fidelity
	// ImageData/ImageMIME hold the pre-rendered image, when PreRender or
	// PartialCSS is set.
	ImageData []byte
	ImageMIME string
	// PartialCSS marks partial pre-rendering: ImageData holds the
	// text-free background and Doc holds positioned client-side text.
	PartialCSS bool
	// SearchJS is the searchable-snapshot payload, when requested.
	SearchJS string
	// CacheTTL and Shared configure cross-session caching of the
	// rendered output.
	CacheTTL time.Duration
	Shared   bool
}

// Asset is a standalone generated artifact (e.g. a rich-media
// thumbnail) the proxy writes into the user's image directory.
type Asset struct {
	Name string
	Data []byte
	MIME string
}

// Result is the outcome of applying a spec to one page.
type Result struct {
	// Doc is the adapted main document.
	Doc *dom.Node
	// Subpages are the generated subpages, in spec order.
	Subpages []*Subpage
	// Assets are standalone generated artifacts (thumbnails).
	Assets []Asset
	// Layout is the original page layout (pre-extraction), used for
	// snapshot geometry.
	Layout *layout.Result
	// AJAXRewrites counts rewritten asynchronous calls.
	AJAXRewrites int
	// Notes records non-fatal adaptation observations (objects that
	// matched nothing, etc.).
	Notes []string
}

// FindSubpage returns the named subpage.
func (r *Result) FindSubpage(name string) (*Subpage, bool) {
	for _, sp := range r.Subpages {
		if sp.Name == name {
			return sp, true
		}
	}
	return nil, false
}

// Applier applies a Spec to fetched pages.
type Applier struct {
	// ViewportWidth is the server-side rendering width (the desktop
	// width the snapshot is taken at). Zero uses the spec's value or the
	// layout default.
	ViewportWidth int
	// SubpageURL maps subpage names to the URLs the proxy serves them
	// at; nil uses "/subpage/<name>".
	SubpageURL func(name string) string
	// AssetURL maps generated asset names to URLs; nil uses
	// "/asset/<name>".
	AssetURL func(name string) string
	// AJAXEndpoint is the proxy URL rewritten asynchronous calls target;
	// empty uses ajax.DefaultEndpoint.
	AJAXEndpoint string
	// Images maps <img src> values to decoded images the renderer paints
	// in place of placeholders — the subresources the proxy downloaded
	// on the client's behalf (§3.2).
	Images map[string]image.Image
	// DeviceClass names the device class this build targets (a
	// device.Profile name). Extension attributes gated on a "device"
	// param match against it; empty means "any device".
	DeviceClass string
}

// ExtensionContext is what a registered attribute extension sees: the
// applier configuration, the in-progress result (for notes/assets), and
// the located object nodes the attribute applies to.
type ExtensionContext struct {
	Applier *Applier
	Result  *Result
	Object  spec.Object
	Attr    spec.Attribute
	Nodes   []*dom.Node
}

// ExtensionFunc applies one spec attribute the core switch does not
// know about.
type ExtensionFunc func(ctx ExtensionContext) error

var (
	extMu  sync.RWMutex
	extFns = make(map[spec.AttrType]ExtensionFunc)
)

// RegisterExtension installs a handler for an attribute type, turning
// the attribute system into an open policy engine: packages add new
// adaptation passes (e.g. quality's "repair" rules) without editing the
// core switch. Registering a type the switch already handles has no
// effect — built-ins win. Typically called from init.
func RegisterExtension(t spec.AttrType, fn ExtensionFunc) {
	extMu.Lock()
	defer extMu.Unlock()
	extFns[t] = fn
}

func extensionFor(t spec.AttrType) (ExtensionFunc, bool) {
	extMu.RLock()
	defer extMu.RUnlock()
	fn, ok := extFns[t]
	return fn, ok
}

func (a *Applier) subpageURL(name string) string {
	if a.SubpageURL != nil {
		return a.SubpageURL(name)
	}
	return "/subpage/" + name
}

func (a *Applier) assetURL(name string) string {
	if a.AssetURL != nil {
		return a.AssetURL(name)
	}
	return "/asset/" + name
}

// Apply runs the attribute phase over doc. The document is modified in
// place and returned inside the Result.
func (a *Applier) Apply(sp *spec.Spec, doc *dom.Node) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	width := a.ViewportWidth
	if width == 0 {
		width = sp.ViewportWidth
	}
	res := &Result{Doc: doc}

	// Original-page layout: regions must be measured before any object
	// moves.
	styler := css.StylerForDocument(doc)
	res.Layout = layout.Layout(doc, styler, layout.Viewport{Width: width})

	// Pass A: locate every object.
	located := make(map[string][]*dom.Node, len(sp.Objects))
	for _, obj := range sp.Objects {
		nodes, err := locate(doc, obj)
		if err != nil {
			return nil, err
		}
		if len(nodes) == 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("object %q matched nothing", obj.Name))
		}
		located[obj.Name] = nodes
	}

	// Pass B: create subpage shells for every subpage attribute.
	subpages := make(map[string]*Subpage)
	for _, obj := range sp.Objects {
		attrSpec, ok := obj.Attr(spec.AttrSubpage)
		if !ok || len(located[obj.Name]) == 0 {
			continue
		}
		node := located[obj.Name][0]
		sub := &Subpage{
			Name:     obj.Name,
			Title:    attrSpec.Param("title", obj.Name),
			Parent:   attrSpec.Param("parent", ""),
			AJAX:     attrSpec.Param("ajax", "") == "true",
			Fidelity: fidelityFromName(attrSpec.Param("fidelity", "low")),
		}
		if attrSpec.Param("prerender", "") == "true" || obj.HasAttr(spec.AttrPreRender) {
			sub.PreRender = true
		}
		if pr, ok := obj.Attr(spec.AttrPreRender); ok {
			sub.Fidelity = fidelityFromName(pr.Param("fidelity", "low"))
		}
		if fid, ok := obj.Attr(spec.AttrImageFidelity); ok {
			sub.Fidelity = fidelityFromName(fid.Param("fidelity", "low"))
		}
		if obj.HasAttr(spec.AttrPartialCSS) {
			sub.PartialCSS = true
		}
		if cacheAttr, ok := obj.Attr(spec.AttrCacheable); ok {
			ttl, err := strconv.Atoi(cacheAttr.Param("ttl_seconds", "3600"))
			if err != nil || ttl < 0 {
				ttl = 3600
			}
			sub.CacheTTL = time.Duration(ttl) * time.Second
			sub.Shared = true
		}
		if x, y, w, h, ok := res.Layout.Region(node); ok {
			sub.Region = Region{X: x, Y: y, W: w, H: h}
		}
		sub.Doc = newSubpageDoc(sub.Title)
		subpages[obj.Name] = sub
		res.Subpages = append(res.Subpages, sub)
	}

	// Pass C: dependencies and copies flow into subpages while every
	// object is still in its original position.
	for _, obj := range sp.Objects {
		for _, at := range obj.Attributes {
			switch at.Type {
			case spec.AttrDependency:
				target, ok := subpages[at.Param("subpage", "")]
				if !ok {
					continue
				}
				for _, n := range located[obj.Name] {
					target.Doc.Head().AppendChild(n.Clone())
				}
			case spec.AttrCopyTo:
				target, ok := subpages[at.Param("subpage", "")]
				if !ok {
					continue
				}
				for _, n := range located[obj.Name] {
					clone := n.Clone()
					applyCopyOverrides(clone, at)
					if at.Param("position", "top") == "bottom" {
						target.Doc.Body().AppendChild(clone)
					} else {
						target.Doc.Body().PrependChild(clone)
					}
				}
			}
		}
	}

	// Pass D: move subpage objects out of the main document, parents
	// before children so a child's node travels into its parent's
	// subpage first. When a child is then split out of a parent's
	// subpage, the parent document is laid out just before extraction so
	// the child's rectangle *within the parent page* is exact — the
	// coordinates the parent's hierarchical image map needs (§3.3
	// "Sub-subpages").
	for _, obj := range subpageObjectsTopological(sp, subpages) {
		sub := subpages[obj.Name]
		if len(located[obj.Name]) == 0 {
			continue
		}
		node := located[obj.Name][0]
		if sub.Parent != "" {
			if parent, ok := subpages[sub.Parent]; ok && parent.Doc.Contains(node) {
				parentLayout := layoutDoc(parent.Doc, width)
				if x, y, w, h, ok := parentLayout.Region(node); ok {
					sub.Region = Region{X: x, Y: y, W: w, H: h}
				}
			}
		}
		node.Detach()
		// Subpage content goes after any copied-to-top material.
		sub.Doc.Body().AppendChild(node)
	}

	// Pass E: the remaining attributes, in spec order.
	var rewriter *ajax.Rewriter
	if len(sp.Actions) > 0 {
		var err error
		rewriter, err = ajax.NewRewriter(sp.Actions, a.AJAXEndpoint)
		if err != nil {
			return nil, err
		}
	}
	env := &applyEnv{res: res, subpages: subpages, rewriter: rewriter}
	for _, obj := range sp.Objects {
		nodes := located[obj.Name]
		scope := nodes
		if sub, ok := subpages[obj.Name]; ok {
			// Attributes on a subpage object operate inside its subpage.
			scope = []*dom.Node{sub.Doc.Body()}
		}
		for _, at := range obj.Attributes {
			if err := a.applyOne(env, obj, at, scope); err != nil {
				return nil, err
			}
		}
	}

	// Pass F: render subpages that asked for pixels.
	for _, sub := range res.Subpages {
		if err := a.finishSubpage(sp, sub, width); err != nil {
			return nil, err
		}
	}

	// Pass G: hierarchical navigation — pre-rendered parents get an
	// image map over their graphic linking each child subpage's region.
	for _, parent := range res.Subpages {
		if !parent.PreRender {
			continue
		}
		var children []*Subpage
		for _, child := range res.Subpages {
			if child.Parent == parent.Name && child.Region.Valid() {
				children = append(children, child)
			}
		}
		if len(children) > 0 {
			a.attachChildMap(parent, children)
		}
	}
	return res, nil
}

// subpageObjectsTopological orders subpage-bearing objects parents
// before children (the Parent relation is validated acyclic by depth
// bound: nesting deeper than the object count means a cycle, which the
// loop breaks by falling back to spec order).
func subpageObjectsTopological(sp *spec.Spec, subpages map[string]*Subpage) []spec.Object {
	depth := func(name string) int {
		d := 0
		for cur := name; d <= len(sp.Objects); d++ {
			sub, ok := subpages[cur]
			if !ok || sub.Parent == "" {
				return d
			}
			cur = sub.Parent
		}
		return 0 // cycle: treat as root-level
	}
	var objs []spec.Object
	for _, obj := range sp.Objects {
		if _, ok := subpages[obj.Name]; ok {
			objs = append(objs, obj)
		}
	}
	// Stable sort by nesting depth keeps spec order within one level.
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && depth(objs[j].Name) < depth(objs[j-1].Name); j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
	return objs
}

// attachChildMap overlays a pre-rendered parent's graphic with an image
// map whose regions link to its child subpages.
func (a *Applier) attachChildMap(parent *Subpage, children []*Subpage) {
	img := parent.Doc.FindFirst(func(n *dom.Node) bool {
		return n.Type == dom.ElementNode && n.Tag == "img"
	})
	if img == nil {
		return
	}
	mapName := "msite-" + sanitize(parent.Name) + "-map"
	img.SetAttr("usemap", "#"+mapName)
	imageMap := dom.NewElement("map")
	imageMap.SetAttr("name", mapName)
	for _, child := range children {
		area := dom.NewElement("area")
		area.SetAttr("shape", "rect")
		area.SetAttr("coords", fmt.Sprintf("%d,%d,%d,%d",
			child.Region.X, child.Region.Y,
			child.Region.X+child.Region.W, child.Region.Y+child.Region.H))
		area.SetAttr("href", a.subpageURL(child.Name))
		area.SetAttr("alt", child.Title)
		imageMap.AppendChild(area)
	}
	img.InsertAfter(imageMap)
}

// locate resolves an object's nodes by CSS selector or XPath.
func locate(doc *dom.Node, obj spec.Object) ([]*dom.Node, error) {
	if obj.Selector != "" {
		sel := jq.Select(doc, obj.Selector)
		if err := sel.Err(); err != nil {
			return nil, fmt.Errorf("attr: object %q: %w", obj.Name, err)
		}
		return sel.Nodes(), nil
	}
	expr, err := xpath.Compile(obj.XPath)
	if err != nil {
		return nil, fmt.Errorf("attr: object %q: %w", obj.Name, err)
	}
	return expr.Select(doc), nil
}

// applyEnv carries the shared state of the attribute pass.
type applyEnv struct {
	res      *Result
	subpages map[string]*Subpage
	rewriter *ajax.Rewriter
	// mainImage is the original page's raster, rendered lazily the
	// first time a thumbnail attribute needs pixels to crop.
	mainImage *image.RGBA
	// assetSeen tracks emitted asset names: distinct object names can
	// sanitize to the same file name ("nav bar" vs "nav_bar") and must
	// not overwrite each other's Asset.
	assetSeen map[string]bool
}

// uniqueAssetName reserves base+ext, appending a numeric suffix when the
// plain name is already taken by an earlier object.
func (env *applyEnv) uniqueAssetName(base, ext string) string {
	if env.assetSeen == nil {
		env.assetSeen = make(map[string]bool)
	}
	name := base + ext
	for k := 2; env.assetSeen[name]; k++ {
		name = base + "_" + strconv.Itoa(k) + ext
	}
	env.assetSeen[name] = true
	return name
}

// applyOne handles one attribute on one object's nodes.
func (a *Applier) applyOne(env *applyEnv, obj spec.Object, at spec.Attribute,
	nodes []*dom.Node) error {
	res, subpages, rewriter := env.res, env.subpages, env.rewriter
	switch at.Type {
	case spec.AttrSubpage, spec.AttrPreRender, spec.AttrDependency,
		spec.AttrCopyTo, spec.AttrCacheable, spec.AttrPartialCSS,
		spec.AttrImageFidelity, spec.AttrHTTPAuth:
		// Handled in earlier passes or by the proxy (http-auth).
		return nil

	case spec.AttrRemove:
		for _, n := range nodes {
			n.Detach()
		}

	case spec.AttrHide:
		for _, n := range nodes {
			jq.Wrap(n.Root(), n).Hide()
		}

	case spec.AttrReplace:
		if markup := at.Param("html", ""); markup != "" {
			for _, n := range nodes {
				if n.Parent == nil {
					continue
				}
				jq.Wrap(n.Root(), n).ReplaceWith(markup)
			}
			return nil
		}
		attrName := at.Param("attr", "")
		if attrName == "" {
			return fmt.Errorf("attr: object %q: replace needs html or attr/value", obj.Name)
		}
		for _, n := range nodes {
			setAttrDeep(n, attrName, at.Param("value", ""))
		}

	case spec.AttrRelocate:
		target := at.Param("target", "")
		position := at.Param("position", "append")
		for _, n := range nodes {
			dest := jq.Select(n.Root(), target).First()
			if dest == nil {
				res.Notes = append(res.Notes,
					fmt.Sprintf("object %q: relocate target %q not found", obj.Name, target))
				continue
			}
			// before/after need a parent to splice into; a target resolving
			// to the document (or a detached) root has none.
			if dest.Parent == nil && (position == "before" || position == "after") {
				res.Notes = append(res.Notes,
					fmt.Sprintf("object %q: relocate target %q has no parent for position %q",
						obj.Name, target, position))
				continue
			}
			n.Detach()
			switch position {
			case "prepend":
				dest.PrependChild(n)
			case "before":
				dest.Parent.InsertBefore(n, dest)
			case "after":
				dest.InsertAfter(n)
			default:
				dest.AppendChild(n)
			}
		}

	case spec.AttrInsertHTML:
		markup := at.Param("html", "")
		position := at.Param("position", "append")
		for _, n := range nodes {
			sel := jq.Wrap(n.Root(), n)
			switch position {
			case "before":
				sel.Before(markup)
			case "after":
				sel.After(markup)
			case "prepend":
				sel.Prepend(markup)
			default:
				sel.Append(markup)
			}
		}

	case spec.AttrInsertJS:
		code := at.Param("code", "")
		stage := at.Param("stage", "client")
		for _, n := range nodes {
			script := dom.NewElement("script")
			script.SetAttr("type", "text/javascript")
			script.SetAttr("data-msite", stage)
			script.AppendChild(dom.NewText(code))
			n.AppendChild(script)
		}

	case spec.AttrRemoveJS:
		for _, n := range nodes {
			for _, script := range n.Elements("script") {
				script.Detach()
			}
			// Also strip inline handlers, which are script too.
			n.Walk(func(d *dom.Node) bool {
				if d.Type == dom.ElementNode {
					for _, h := range []string{"onclick", "onload", "onchange", "onsubmit", "onmouseover"} {
						d.DelAttr(h)
					}
				}
				return true
			})
		}

	case spec.AttrRewriteLinks:
		columns, err := strconv.Atoi(at.Param("columns", "2"))
		if err != nil || columns < 1 {
			columns = 2
		}
		for _, n := range nodes {
			rewriteLinksVertical(n, columns)
		}

	case spec.AttrSearchable:
		// Resolved in finishSubpage (needs the rendered layout); mark via
		// the subpage if present.
		if sub, ok := subpages[obj.Name]; ok {
			sub.SearchJS = "pending:" + at.Param("trigger", "")
		}

	case spec.AttrAJAXify:
		if rewriter == nil {
			res.Notes = append(res.Notes,
				fmt.Sprintf("object %q: ajaxify without actions", obj.Name))
			return nil
		}
		for _, n := range nodes {
			res.AJAXRewrites += rewriter.RewriteDoc(n)
			ajax.InjectRuntime(n.Root())
		}

	case spec.AttrThumbnail:
		return a.applyThumbnail(env, obj, at, nodes)

	default:
		if fn, ok := extensionFor(at.Type); ok {
			return fn(ExtensionContext{Applier: a, Result: res, Object: obj, Attr: at, Nodes: nodes})
		}
		return fmt.Errorf("attr: object %q: unhandled attribute %q", obj.Name, at.Type)
	}
	return nil
}

// applyThumbnail crops the object's rendered region from the original
// page raster, scales it down, and swaps the rich-media element for a
// linked thumbnail image — "thumbnail snapshots of rich media content
// for resource-constrained devices".
func (a *Applier) applyThumbnail(env *applyEnv, obj spec.Object, at spec.Attribute,
	nodes []*dom.Node) error {
	scale := 0.5
	if v, err := strconv.ParseFloat(at.Param("scale", ""), 64); err == nil && v > 0 && v <= 2 {
		scale = v
	}
	fid := fidelityFromName(at.Param("fidelity", "low"))
	if fid == imaging.FidelityThumb {
		fid = imaging.FidelityLow // explicit scale already applied below
	}
	for i, n := range nodes {
		x, y, w, h, ok := env.res.Layout.Region(n)
		if !ok || w <= 0 || h <= 0 {
			env.res.Notes = append(env.res.Notes,
				fmt.Sprintf("object %q: thumbnail target has no rendered region", obj.Name))
			continue
		}
		if env.mainImage == nil {
			env.mainImage = raster.Paint(env.res.Layout, raster.Options{Images: a.Images})
		}
		cropped := imaging.Crop(env.mainImage, image.Rect(x, y, x+w, y+h))
		scaled := imaging.ScaleFactor(cropped, scale)
		data, err := imaging.Encode(scaled, fid)
		if err != nil {
			return fmt.Errorf("attr: object %q: encoding thumbnail: %w", obj.Name, err)
		}
		base := sanitize(obj.Name)
		if i > 0 {
			base += "_" + strconv.Itoa(i)
		}
		name := env.uniqueAssetName(base+"_thumb", fid.Ext())
		env.res.Assets = append(env.res.Assets, Asset{
			Name: name, Data: data, MIME: fid.MIME(),
		})

		href := at.Param("href", n.AttrOr("src", ""))
		if href == "" {
			if inner := n.FindFirst(func(d *dom.Node) bool {
				return d.Type == dom.ElementNode && d.HasAttr("src")
			}); inner != nil {
				href = inner.AttrOr("src", "")
			}
		}
		img := dom.NewElement("img")
		img.SetAttr("src", a.assetURL(name))
		img.SetAttr("width", itoa(scaled.Bounds().Dx()))
		img.SetAttr("height", itoa(scaled.Bounds().Dy()))
		img.SetAttr("alt", obj.Name+" thumbnail")
		var repl *dom.Node = img
		if href != "" {
			link := dom.NewElement("a")
			link.SetAttr("href", href)
			link.AppendChild(img)
			repl = link
		}
		n.ReplaceWith(repl)
	}
	return nil
}

// setAttrDeep sets an attribute on n, or when n does not carry it, on the
// first descendant that does (the Fig. 5 logo case: the object is the
// logo table, the src lives on the img inside).
func setAttrDeep(n *dom.Node, key, val string) {
	if n.Type == dom.ElementNode && n.HasAttr(key) {
		n.SetAttr(key, val)
		return
	}
	target := n.FindFirst(func(d *dom.Node) bool {
		return d.Type == dom.ElementNode && d.HasAttr(key)
	})
	if target != nil {
		target.SetAttr(key, val)
		return
	}
	if n.Type == dom.ElementNode {
		n.SetAttr(key, val)
	}
}

// applyCopyOverrides applies copy-to's set-attr/set-value/within params
// to a cloned subtree.
func applyCopyOverrides(clone *dom.Node, at spec.Attribute) {
	key := at.Param("set-attr", "")
	if key == "" {
		return
	}
	val := at.Param("set-value", "")
	if within := at.Param("within", ""); within != "" {
		for _, n := range jq.Select(clone, within).Nodes() {
			n.SetAttr(key, val)
		}
		return
	}
	setAttrDeep(clone, key, val)
}

// rewriteLinksVertical strips the links out of a horizontal nav segment
// and rewrites them as a vertical multi-column table (§4.3).
func rewriteLinksVertical(n *dom.Node, columns int) {
	links := n.Elements("a")
	if len(links) == 0 {
		return
	}
	table := dom.NewElement("table")
	table.SetAttr("class", "msite-nav")
	table.SetAttr("width", "100%")
	rows := (len(links) + columns - 1) / columns
	for r := 0; r < rows; r++ {
		tr := dom.NewElement("tr")
		for c := 0; c < columns; c++ {
			td := dom.NewElement("td")
			idx := c*rows + r
			if idx < len(links) {
				td.AppendChild(links[idx].Clone())
			}
			tr.AppendChild(td)
		}
		table.AppendChild(tr)
	}
	n.Empty()
	n.AppendChild(table)
}

func fidelityFromName(name string) imaging.Fidelity {
	switch strings.ToLower(name) {
	case "high":
		return imaging.FidelityHigh
	case "medium":
		return imaging.FidelityMedium
	case "thumb":
		return imaging.FidelityThumb
	default:
		return imaging.FidelityLow
	}
}

// newSubpageDoc builds an empty subpage document skeleton.
func newSubpageDoc(title string) *dom.Node {
	doc := dom.NewDocument()
	doc.AppendChild(dom.NewDoctype("html"))
	root := dom.NewElement("html")
	head := dom.NewElement("head")
	titleEl := dom.NewElement("title")
	titleEl.AppendChild(dom.NewText(title))
	meta := dom.NewElement("meta")
	meta.SetAttr("name", "viewport")
	meta.SetAttr("content", "width=device-width, initial-scale=1")
	head.AppendChild(titleEl)
	head.AppendChild(meta)
	body := dom.NewElement("body")
	root.AppendChild(head)
	root.AppendChild(body)
	doc.AppendChild(root)
	return doc
}

// SerializeSubpage renders a subpage document to HTML bytes.
func SerializeSubpage(sub *Subpage) []byte {
	return []byte(html.Render(sub.Doc))
}
