package attr

import (
	"strings"
	"testing"

	"msite/internal/html"
	"msite/internal/spec"
)

// hierPage nests three levels: a forums section containing a hot-threads
// box containing a poll box.
const hierPage = `<html><body>
<div id="header" style="height: 40px">site header</div>
<div id="forums">
  <h2>Forums</h2>
  <div id="hot" style="margin-top: 10px">
    <h3>Hot threads</h3>
    <div id="poll">Weekly poll: favorite joinery</div>
    <p>thread one</p>
    <p>thread two</p>
  </div>
  <p>forum listing body</p>
</div>
</body></html>`

func hierSpec() *spec.Spec {
	return &spec.Spec{
		Name: "hier", Origin: "http://o/",
		Objects: []spec.Object{
			// Deliberately listed child-first: the applier must still
			// process parents before children.
			{Name: "poll", Selector: "#poll", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{
					"title": "Poll", "parent": "hot"}},
			}},
			{Name: "forums", Selector: "#forums", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{
					"title": "Forums", "prerender": "true"}},
			}},
			{Name: "hot", Selector: "#hot", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{
					"title": "Hot", "parent": "forums", "prerender": "true"}},
			}},
		},
	}
}

func TestSubSubpageHierarchicalMap(t *testing.T) {
	a := &Applier{ViewportWidth: 800}
	res, err := a.Apply(hierSpec(), html.Tidy(hierPage))
	if err != nil {
		t.Fatal(err)
	}
	forums, _ := res.FindSubpage("forums")
	hot, _ := res.FindSubpage("hot")
	poll, _ := res.FindSubpage("poll")

	// Regions: forums is relative to the main page; hot relative to the
	// forums subpage; poll relative to the hot subpage.
	if !forums.Region.Valid() || !hot.Region.Valid() || !poll.Region.Valid() {
		t.Fatalf("regions: forums=%+v hot=%+v poll=%+v", forums.Region, hot.Region, poll.Region)
	}
	// forums sits below the 40px header in the main page.
	if forums.Region.Y < 40 {
		t.Fatalf("forums Y = %d", forums.Region.Y)
	}
	// hot, measured inside the standalone forums page, sits below the h2
	// but well above its main-page position.
	if hot.Region.Y <= 0 || hot.Region.Y >= forums.Region.Y+40 {
		t.Logf("hot region: %+v (forums at %+v)", hot.Region, forums.Region)
	}

	// The pre-rendered parents carry image maps linking their children.
	forumsHTML := string(SerializeSubpage(forums))
	if !strings.Contains(forumsHTML, `usemap="#msite-forums-map"`) {
		t.Fatalf("forums page lacks usemap: %s", forumsHTML)
	}
	if !strings.Contains(forumsHTML, `href="/subpage/hot"`) {
		t.Fatal("forums map does not link hot")
	}
	hotHTML := string(SerializeSubpage(hot))
	if !strings.Contains(hotHTML, `href="/subpage/poll"`) {
		t.Fatalf("hot map does not link poll: %s", hotHTML)
	}
	// The child content left the parent pages.
	if strings.Contains(forumsHTML, "Hot threads") {
		t.Fatal("hot content still inside forums page")
	}
	if strings.Contains(hotHTML, "Weekly poll") {
		t.Fatal("poll content still inside hot page")
	}
	pollHTML := string(SerializeSubpage(poll))
	if !strings.Contains(pollHTML, "Weekly poll") {
		t.Fatal("poll content missing from its own page")
	}
}

func TestHierarchyChildWithoutPrerenderGetsNoMap(t *testing.T) {
	sp := hierSpec()
	// Make the parent non-prerendered: no image, so no map.
	sp.Objects[1].Attributes[0].Params["prerender"] = "false"
	a := &Applier{ViewportWidth: 800}
	res, err := a.Apply(sp, html.Tidy(hierPage))
	if err != nil {
		t.Fatal(err)
	}
	forums, _ := res.FindSubpage("forums")
	if strings.Contains(string(SerializeSubpage(forums)), "usemap") {
		t.Fatal("non-prerendered parent should not get a map")
	}
}

func TestHierarchyCycleDoesNotHang(t *testing.T) {
	sp := &spec.Spec{
		Name: "cycle", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "a", Selector: "#forums", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"parent": "b"}},
			}},
			{Name: "b", Selector: "#hot", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"parent": "a"}},
			}},
		},
	}
	a := &Applier{ViewportWidth: 800}
	if _, err := a.Apply(sp, html.Tidy(hierPage)); err != nil {
		t.Fatal(err)
	}
}

func TestTopologicalOrder(t *testing.T) {
	sp := hierSpec()
	subpages := map[string]*Subpage{
		"poll":   {Name: "poll", Parent: "hot"},
		"forums": {Name: "forums"},
		"hot":    {Name: "hot", Parent: "forums"},
	}
	objs := subpageObjectsTopological(sp, subpages)
	order := make([]string, len(objs))
	for i, o := range objs {
		order[i] = o.Name
	}
	joined := strings.Join(order, ",")
	if joined != "forums,hot,poll" {
		t.Fatalf("order = %s", joined)
	}
}
