package attr

import (
	"fmt"
	"strings"

	"msite/internal/css"
	"msite/internal/dom"
	"msite/internal/html"
	"msite/internal/imaging"
	"msite/internal/layout"
	"msite/internal/raster"
	"msite/internal/search"
	"msite/internal/spec"
)

// finishSubpage performs the rendering work a subpage asked for:
// pre-rendering to an image, partial CSS pre-rendering, and searchable
// index construction.
func (a *Applier) finishSubpage(sp *spec.Spec, sub *Subpage, width int) error {
	searchTrigger, searchable := "", false
	if strings.HasPrefix(sub.SearchJS, "pending:") {
		searchTrigger = strings.TrimPrefix(sub.SearchJS, "pending:")
		sub.SearchJS = ""
		searchable = true
	}

	if !sub.PreRender && !sub.PartialCSS {
		if searchable {
			// Searchable without pre-rendering indexes the subpage as it
			// will lay out on the client.
			res := layoutDoc(sub.Doc, width)
			sub.SearchJS = search.Build(res).JS(searchTrigger)
			injectScript(sub.Doc, sub.SearchJS)
		}
		return nil
	}

	res := layoutDoc(sub.Doc, width)

	if sub.PartialCSS {
		return a.finishPartialCSS(sub, res, searchable, searchTrigger)
	}

	// Full pre-render: the subpage becomes a single graphic (§3.3
	// "Pre-rendering"), optionally searchable via the word index.
	img := raster.Paint(res, raster.Options{Images: a.Images})
	data, err := imaging.Encode(img, sub.Fidelity)
	if err != nil {
		return fmt.Errorf("attr: pre-rendering subpage %q: %w", sub.Name, err)
	}
	sub.ImageData = data
	sub.ImageMIME = sub.Fidelity.MIME()

	assetName := sub.Name + sub.Fidelity.Ext()
	page := newSubpageDoc(sub.Title)
	body := page.Body()
	imgEl := dom.NewElement("img")
	imgEl.SetAttr("src", a.assetURL(assetName))
	imgEl.SetAttr("alt", sub.Title)
	imgEl.SetAttr("width", itoa(res.Width))
	imgEl.SetAttr("height", itoa(res.Height))
	body.AppendChild(imgEl)

	if searchable {
		sub.SearchJS = search.Build(res).JS(searchTrigger)
		injectScript(page, sub.SearchJS)
		// Pre-rendered pages need the trigger element the administrator
		// referenced; synthesize a default if it is not present.
		if searchTrigger != "" && page.ElementByID(searchTrigger) == nil {
			btn := dom.NewElement("a")
			btn.SetAttr("id", searchTrigger)
			btn.SetAttr("href", "#")
			btn.AppendChild(dom.NewText("Search"))
			body.PrependChild(btn)
		}
	}
	sub.Doc = page
	return nil
}

// finishPartialCSS implements §3.3 "Partial CSS rendering": the server
// renders the object's graphical component (backgrounds, borders, box
// art) with text suppressed, and the device draws the text at the
// measured coordinates over that background.
func (a *Applier) finishPartialCSS(sub *Subpage, res *layout.Result, searchable bool, trigger string) error {
	img := raster.Paint(res, raster.Options{SkipText: true, Images: a.Images})
	data, err := imaging.Encode(img, sub.Fidelity)
	if err != nil {
		return fmt.Errorf("attr: partial-css render of %q: %w", sub.Name, err)
	}
	sub.ImageData = data
	sub.ImageMIME = sub.Fidelity.MIME()

	assetName := sub.Name + sub.Fidelity.Ext()
	page := newSubpageDoc(sub.Title)
	body := page.Body()
	container := dom.NewElement("div")
	container.SetAttr("style", fmt.Sprintf(
		"position: relative; width: %dpx; height: %dpx; background-image: url(%s)",
		res.Width, res.Height, a.assetURL(assetName)))
	for _, run := range res.Runs() {
		span := dom.NewElement("span")
		style := fmt.Sprintf(
			"position: absolute; left: %dpx; top: %dpx; font-size: %dpx",
			int(run.X), int(run.Y), int(run.FontSize))
		if run.Bold {
			style += "; font-weight: bold"
		}
		span.SetAttr("style", style)
		span.AppendChild(dom.NewText(run.Text))
		container.AppendChild(span)
	}
	body.AppendChild(container)
	if searchable {
		sub.SearchJS = search.Build(res).JS(trigger)
		injectScript(page, sub.SearchJS)
	}
	sub.Doc = page
	return nil
}

func layoutDoc(doc *dom.Node, width int) *layout.Result {
	styler := css.StylerForDocument(doc)
	return layout.Layout(doc, styler, layout.Viewport{Width: width})
}

func injectScript(doc *dom.Node, code string) {
	body := doc.Body()
	if body == nil {
		return
	}
	script := dom.NewElement("script")
	script.SetAttr("type", "text/javascript")
	script.AppendChild(dom.NewText(code))
	body.AppendChild(script)
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// Overlay builds the mobile entry page (§4.3): a scaled snapshot of the
// full site overlaid with an image map whose regions link to the
// generated subpages, with coordinates implicitly translated for the
// scale factor.
type Overlay struct {
	// SnapshotURL is the snapshot image location.
	SnapshotURL string
	// Width and Height are the snapshot's scaled pixel dimensions.
	Width, Height int
	// Scale is the snapshot scale factor relative to the original
	// layout.
	Scale float64
	// Title is the entry page title.
	Title string
	// UpgradeURL, when set, is the full-fidelity snapshot location the
	// streamed overlay trades up to once the encode completes; the
	// SnapshotURL then points at the coarse first rung. Only the
	// streaming builder (BuildOverlayStream) emits the upgrade script.
	UpgradeURL string
}

// BuildOverlayHTML assembles the entry page document: the snapshot image
// wrapped in an image map with one region per subpage. AJAX subpages
// load into the injected pane instead of navigating.
func (a *Applier) BuildOverlayHTML(ov Overlay, subpages []*Subpage) []byte {
	doc := newSubpageDoc(ov.Title)
	body := doc.Body()

	img := dom.NewElement("img")
	img.SetAttr("src", ov.SnapshotURL)
	img.SetAttr("alt", ov.Title)
	img.SetAttr("usemap", "#msite-map")
	img.SetAttr("width", itoa(ov.Width))
	img.SetAttr("height", itoa(ov.Height))
	img.SetAttr("style", "border: 0")
	body.AppendChild(img)

	imageMap := dom.NewElement("map")
	imageMap.SetAttr("name", "msite-map")
	hasAJAX := false
	for _, sub := range subpages {
		if !sub.Region.Valid() || sub.Parent != "" {
			continue
		}
		r := sub.Region.Scale(ov.Scale)
		area := dom.NewElement("area")
		area.SetAttr("shape", "rect")
		area.SetAttr("coords", fmt.Sprintf("%d,%d,%d,%d", r.X, r.Y, r.X+r.W, r.Y+r.H))
		area.SetAttr("alt", sub.Title)
		url := a.subpageURL(sub.Name)
		if sub.AJAX {
			hasAJAX = true
			area.SetAttr("href", url)
			area.SetAttr("onclick", "return msiteLoad('"+url+"');")
		} else {
			area.SetAttr("href", url)
		}
		imageMap.AppendChild(area)
	}
	body.AppendChild(imageMap)

	if hasAJAX {
		pane := dom.NewElement("div")
		pane.SetAttr("id", "msite-pane")
		pane.SetAttr("style", "display: none; position: absolute; top: 20px; left: 5%; width: 90%; background-color: white; border: 2px solid #444444")
		body.AppendChild(pane)
		script := dom.NewElement("script")
		script.SetAttr("type", "text/javascript")
		script.SetAttr("data-msite", "runtime")
		script.AppendChild(dom.NewText(ajaxRuntime))
		body.AppendChild(script)
	}
	return []byte(html.Render(doc))
}

// ajaxRuntime mirrors ajax.ClientRuntimeJS; duplicated as a constant to
// keep the overlay self-contained even when no Action rewriting is
// configured.
const ajaxRuntime = `function msiteLoad(url) {
  var pane = document.getElementById('msite-pane');
  if (!pane) { window.location = url; return false; }
  var xhr = new XMLHttpRequest();
  xhr.open('GET', url, true);
  xhr.onreadystatechange = function () {
    if (xhr.readyState === 4 && xhr.status === 200) {
      pane.innerHTML = xhr.responseText;
      pane.style.display = 'block';
    }
  };
  xhr.send(null);
  return false;
}
`

// SubpageFileName returns the on-disk name for a subpage's HTML file in
// the session directory.
func SubpageFileName(name string) string {
	return "sub_" + sanitize(name) + ".html"
}

// AssetFileName returns the on-disk name for a subpage's rendered image.
func AssetFileName(sub *Subpage) string {
	return sanitize(sub.Name) + sub.Fidelity.Ext()
}

func sanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ComplexityOf summarizes a document for the device performance model.
func ComplexityOf(doc *dom.Node, totalBytes, requests int) DocComplexity {
	c := DocComplexity{Bytes: totalBytes, Requests: requests}
	doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		c.Elements++
		switch n.Tag {
		case "script":
			if n.HasAttr("src") {
				c.Scripts++
			}
		case "img":
			c.Images++
		case "style":
			var src strings.Builder
			for t := n.FirstChild; t != nil; t = t.NextSibling {
				if t.Type == dom.TextNode {
					src.WriteString(t.Data)
				}
			}
			c.StyleRules += len(css.ParseStylesheet(src.String()).Rules)
		}
		return true
	})
	return c
}

// DocComplexity mirrors device.PageComplexity without importing it (attr
// stays independent of the simulation layer).
type DocComplexity struct {
	Bytes      int
	Requests   int
	Elements   int
	Scripts    int
	Images     int
	StyleRules int
}
