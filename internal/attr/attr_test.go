package attr

import (
	"strings"
	"testing"

	"msite/internal/html"
	"msite/internal/imaging"
	"msite/internal/jq"
	"msite/internal/spec"
)

// forumPage models the §4.2 entry page structure: logo + banner, nav
// links, login form, forum listing.
const forumPage = `<!DOCTYPE html>
<html><head>
<title>Sawmill Creek</title>
<style type="text/css">
.tborder { background-color: #f5f5ff; border: 1px solid #8080a0 }
#loginform input { border: 1px solid #666666 }
</style>
<script type="text/javascript">function validateLogin() { return true; }</script>
</head><body>
<div id="logo"><table><tr><td><img src="/images/sawmill.gif" width="300" height="60" alt="Sawmill Creek"></td></tr></table></div>
<div id="banner"><img src="/ads/leaderboard.gif" width="728" height="90" alt="ad"></div>
<div id="navlinks">
  <a href="/help">Help</a> <a href="/members">Members</a> <a href="/calendar">Calendar</a>
  <a href="/search">Search</a> <a href="/new">New Posts</a> <a href="/faq">FAQ</a>
</div>
<form id="loginform" action="/login.php" method="post" onsubmit="return validateLogin();">
  <input type="text" name="username"> <input type="password" name="password">
  <input type="submit" value="Log in">
</form>
<table class="tborder" id="forums" width="100%">
  <tr><td><a href="/forumdisplay.php?f=2">General Woodworking</a></td><td>today</td></tr>
  <tr><td><a href="/forumdisplay.php?f=3">Project Finishing</a></td><td>today</td></tr>
</table>
<div id="whosonline">Members online: 312</div>
</body></html>`

func loginSpec() *spec.Spec {
	return &spec.Spec{
		Name:   "forum",
		Origin: "http://origin.test/",
		Objects: []spec.Object{
			{
				Name:     "login",
				Selector: "#loginform",
				Attributes: []spec.Attribute{
					{Type: spec.AttrSubpage, Params: map[string]string{"title": "Log in"}},
				},
			},
			{
				Name:     "logo",
				Selector: "#logo",
				Attributes: []spec.Attribute{
					{Type: spec.AttrCopyTo, Params: map[string]string{
						"subpage": "login", "position": "top",
						"set-attr": "src", "set-value": "/m/sawmill-mobile.gif",
					}},
				},
			},
			{
				Name:  "styles",
				XPath: "//style[1]",
				Attributes: []spec.Attribute{
					{Type: spec.AttrDependency, Params: map[string]string{"subpage": "login"}},
				},
			},
			{
				Name:     "loginjs",
				Selector: "head script",
				Attributes: []spec.Attribute{
					{Type: spec.AttrDependency, Params: map[string]string{"subpage": "login"}},
				},
			},
		},
	}
}

func apply(t *testing.T, sp *spec.Spec, page string) *Result {
	t.Helper()
	a := &Applier{ViewportWidth: 1024}
	res, err := a.Apply(sp, html.Tidy(page))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFigure5LoginSubpage reproduces the Fig. 5 adaptation: the login
// form split to a subpage with its CSS/JS dependencies satisfied and the
// logo copied to the top with a mobile-specific image.
func TestFigure5LoginSubpage(t *testing.T) {
	res := apply(t, loginSpec(), forumPage)
	sub, ok := res.FindSubpage("login")
	if !ok {
		t.Fatal("no login subpage")
	}
	out := string(SerializeSubpage(sub))

	if !strings.Contains(out, `id="loginform"`) {
		t.Fatal("login form not moved to subpage")
	}
	if !strings.Contains(out, "#loginform input") {
		t.Fatal("CSS dependency not pulled in")
	}
	if !strings.Contains(out, "validateLogin") {
		t.Fatal("JS dependency not pulled in")
	}
	if !strings.Contains(out, "/m/sawmill-mobile.gif") {
		t.Fatal("copied logo src not replaced with mobile version")
	}
	if !strings.Contains(out, "<title>Log in</title>") {
		t.Fatal("subpage title wrong")
	}
	// The copy goes to the top: logo before the form element ("loginform"
	// alone would match the CSS dependency in head first).
	if strings.Index(out, "sawmill-mobile") > strings.Index(out, `id="loginform"`) {
		t.Fatal("logo copy not at top")
	}

	// Main document: form gone, logo intact with the original desktop src.
	main := html.Render(res.Doc)
	if strings.Contains(main, `id="loginform"`) {
		t.Fatal("login form remains in main doc")
	}
	if !strings.Contains(main, "/images/sawmill.gif") {
		t.Fatal("original logo modified")
	}
}

func TestSubpageRegionRecorded(t *testing.T) {
	res := apply(t, loginSpec(), forumPage)
	sub, _ := res.FindSubpage("login")
	if !sub.Region.Valid() {
		t.Fatalf("region = %+v", sub.Region)
	}
	// The form sits below the logo (60px), banner (90px), and nav links.
	if sub.Region.Y < 150 {
		t.Fatalf("login Y = %d, want below header blocks", sub.Region.Y)
	}
}

func TestRegionScale(t *testing.T) {
	r := Region{X: 100, Y: 200, W: 300, H: 50}
	s := r.Scale(0.5)
	if s != (Region{50, 100, 150, 25}) {
		t.Fatalf("scaled = %+v", s)
	}
	if (Region{}).Valid() {
		t.Fatal("zero region should be invalid")
	}
}

func TestRemoveAndHide(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "ad", Selector: "#banner", Attributes: []spec.Attribute{{Type: spec.AttrRemove}}},
			{Name: "who", Selector: "#whosonline", Attributes: []spec.Attribute{{Type: spec.AttrHide}}},
		},
	}
	res := apply(t, sp, forumPage)
	out := html.Render(res.Doc)
	if strings.Contains(out, "leaderboard") {
		t.Fatal("removed object remains")
	}
	who := res.Doc.ElementByID("whosonline")
	if who == nil || !strings.Contains(who.AttrOr("style", ""), "display: none") {
		t.Fatal("hide not applied")
	}
}

func TestReplaceWithHTML(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "ad", Selector: "#banner", Attributes: []spec.Attribute{
				{Type: spec.AttrReplace, Params: map[string]string{
					"html": `<div id="mobile-ad"><img src="/ads/mobile.gif" width="300" height="50"></div>`,
				}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	out := html.Render(res.Doc)
	if strings.Contains(out, "leaderboard") || !strings.Contains(out, "mobile-ad") {
		t.Fatal("banner replacement wrong")
	}
}

func TestReplaceAttrValue(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "logo", Selector: "#logo", Attributes: []spec.Attribute{
				{Type: spec.AttrReplace, Params: map[string]string{"attr": "src", "value": "/m/logo.gif"}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	img := res.Doc.ElementByID("logo").Elements("img")[0]
	if img.AttrOr("src", "") != "/m/logo.gif" {
		t.Fatal("deep attr replace failed")
	}
}

func TestRelocate(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "who", Selector: "#whosonline", Attributes: []spec.Attribute{
				{Type: spec.AttrRelocate, Params: map[string]string{"target": "#logo", "position": "before"}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	logo := res.Doc.ElementByID("logo")
	if logo.PrevElement() == nil || logo.PrevElement().ID() != "whosonline" {
		t.Fatal("relocate before failed")
	}
}

func TestRelocateMissingTargetNoted(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "who", Selector: "#whosonline", Attributes: []spec.Attribute{
				{Type: spec.AttrRelocate, Params: map[string]string{"target": "#ghost"}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "not found") {
		t.Fatalf("notes = %v", res.Notes)
	}
	if res.Doc.ElementByID("whosonline") == nil {
		t.Fatal("object lost on failed relocate")
	}
}

func TestInsertHTMLPositions(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "forums", Selector: "#forums", Attributes: []spec.Attribute{
				{Type: spec.AttrInsertHTML, Params: map[string]string{
					"html": `<div id="crumb">Home &gt; Forums</div>`, "position": "before"}},
				{Type: spec.AttrInsertHTML, Params: map[string]string{
					"html": `<div id="footer-ad">ad</div>`, "position": "after"}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	forums := res.Doc.ElementByID("forums")
	if forums.PrevElement().ID() != "crumb" || forums.NextElement().ID() != "footer-ad" {
		t.Fatal("insert positions wrong")
	}
}

func TestInsertAndRemoveJS(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "nav", Selector: "#navlinks", Attributes: []spec.Attribute{
				{Type: spec.AttrInsertJS, Params: map[string]string{
					"code": "buildMobileMenu();", "stage": "client"}},
			}},
			{Name: "login", Selector: "#loginform", Attributes: []spec.Attribute{
				{Type: spec.AttrRemoveJS},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	nav := res.Doc.ElementByID("navlinks")
	scripts := nav.Elements("script")
	if len(scripts) != 1 || scripts[0].AttrOr("data-msite", "") != "client" {
		t.Fatal("insert-js failed")
	}
	form := res.Doc.ElementByID("loginform")
	if form.HasAttr("onsubmit") {
		t.Fatal("inline handler not stripped by remove-js")
	}
}

func TestRewriteLinksVertical(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "nav", Selector: "#navlinks", Attributes: []spec.Attribute{
				{Type: spec.AttrRewriteLinks, Params: map[string]string{"columns": "2"}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	nav := res.Doc.ElementByID("navlinks")
	table := nav.Elements("table")
	if len(table) != 1 {
		t.Fatal("no nav table")
	}
	rows := table[0].Elements("tr")
	if len(rows) != 3 { // 6 links / 2 columns
		t.Fatalf("rows = %d", len(rows))
	}
	if n := len(nav.Elements("a")); n != 6 {
		t.Fatalf("links = %d", n)
	}
}

func TestPreRenderSubpage(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "forums", Selector: "#forums", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{
					"title": "Forums", "prerender": "true", "fidelity": "low"}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	sub, _ := res.FindSubpage("forums")
	if !sub.PreRender || len(sub.ImageData) == 0 {
		t.Fatal("no pre-rendered image")
	}
	if sub.ImageMIME != "image/jpeg" {
		t.Fatalf("mime = %q", sub.ImageMIME)
	}
	out := string(SerializeSubpage(sub))
	if !strings.Contains(out, `src="/asset/forums.jpg"`) {
		t.Fatalf("subpage should reference rendered asset: %s", out)
	}
	// JPEG magic.
	if sub.ImageData[0] != 0xff || sub.ImageData[1] != 0xd8 {
		t.Fatal("not a JPEG")
	}
}

func TestSearchableSubpage(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "forums", Selector: "#forums", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"prerender": "true"}},
				{Type: spec.AttrSearchable, Params: map[string]string{"trigger": "find-btn"}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	sub, _ := res.FindSubpage("forums")
	if !strings.Contains(sub.SearchJS, "msiteSearchIndex") {
		t.Fatal("no search payload")
	}
	if !strings.Contains(sub.SearchJS, `"woodworking"`) {
		t.Fatalf("forum text not indexed: %s", sub.SearchJS[:120])
	}
	out := string(SerializeSubpage(sub))
	if !strings.Contains(out, "msiteBindSearch(\"find-btn\")") || !strings.Contains(out, `id="find-btn"`) {
		t.Fatal("trigger wiring missing")
	}
}

func TestPartialCSSSubpage(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "forums", Selector: "#forums", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"title": "Forums"}},
				{Type: spec.AttrPartialCSS},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	sub, _ := res.FindSubpage("forums")
	if !sub.PartialCSS || len(sub.ImageData) == 0 {
		t.Fatal("no partial-css background")
	}
	out := string(SerializeSubpage(sub))
	if !strings.Contains(out, "background-image: url(/asset/forums.jpg)") {
		t.Fatalf("no background: %s", out)
	}
	// Text must be client-side, absolutely positioned.
	if !strings.Contains(out, "General") || !strings.Contains(out, "position: absolute") {
		t.Fatal("client text missing")
	}
}

func TestCacheableSubpage(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "forums", Selector: "#forums", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage},
				{Type: spec.AttrCacheable, Params: map[string]string{"ttl_seconds": "3600"}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	sub, _ := res.FindSubpage("forums")
	if !sub.Shared || sub.CacheTTL.Seconds() != 3600 {
		t.Fatalf("cache config = %v %v", sub.Shared, sub.CacheTTL)
	}
}

func TestAJAXSubpageFlag(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "nav", Selector: "#navlinks", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"ajax": "true"}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	sub, _ := res.FindSubpage("nav")
	if !sub.AJAX {
		t.Fatal("ajax flag lost")
	}
}

func TestAJAXifyRewrites(t *testing.T) {
	page := `<html><body><div id="pics">
		<a href="#" onclick="$('#picframe').load('site.php?do=showpic&id=5')">Show</a>
	</div></body></html>`
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "pics", Selector: "#pics", Attributes: []spec.Attribute{
				{Type: spec.AttrAJAXify},
			}},
		},
		Actions: []spec.Action{
			{ID: 1, Match: `do=showpic&id=(\d+)`, Target: "http://o/site.php?do=showpic&id=$1", Extract: "#pic"},
		},
	}
	res := apply(t, sp, page)
	if res.AJAXRewrites != 1 {
		t.Fatalf("rewrites = %d", res.AJAXRewrites)
	}
	out := html.Render(res.Doc)
	if !strings.Contains(out, "action=1") || !strings.Contains(out, "p=5") {
		t.Fatalf("link not rewritten: %s", out)
	}
	if res.Doc.ElementByID("msite-pane") == nil {
		t.Fatal("runtime pane not injected")
	}
}

func TestSubSubpageParent(t *testing.T) {
	page := `<html><body><div id="outer"><div id="inner">deep</div>rest</div></body></html>`
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "outer", Selector: "#outer", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage},
			}},
			{Name: "inner", Selector: "#inner", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"parent": "outer"}},
			}},
		},
	}
	res := apply(t, sp, page)
	inner, _ := res.FindSubpage("inner")
	if inner.Parent != "outer" {
		t.Fatal("parent lost")
	}
	// Inner content leaves outer's subpage too (it was detached first or
	// moved out). Exactly one of the subpages holds "deep".
	outer, _ := res.FindSubpage("outer")
	outerHTML := string(SerializeSubpage(outer))
	innerHTML := string(SerializeSubpage(inner))
	if !strings.Contains(innerHTML, "deep") {
		t.Fatal("inner subpage missing content")
	}
	if !strings.Contains(outerHTML, "rest") {
		t.Fatal("outer subpage missing remaining content")
	}
}

func TestUnmatchedObjectNoted(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "ghost", Selector: "#ghost", Attributes: []spec.Attribute{{Type: spec.AttrRemove}}},
		},
	}
	res := apply(t, sp, forumPage)
	if len(res.Notes) != 1 || !strings.Contains(res.Notes[0], "matched nothing") {
		t.Fatalf("notes = %v", res.Notes)
	}
}

func TestApplyRejectsInvalidSpec(t *testing.T) {
	a := &Applier{}
	_, err := a.Apply(&spec.Spec{}, html.Parse(forumPage))
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestBuildOverlayHTML(t *testing.T) {
	a := &Applier{}
	subpages := []*Subpage{
		{Name: "login", Title: "Log in", Region: Region{X: 100, Y: 200, W: 400, H: 80}},
		{Name: "nav", Title: "Nav", Region: Region{X: 0, Y: 100, W: 1000, H: 40}, AJAX: true},
		{Name: "nested", Title: "Nested", Region: Region{X: 1, Y: 1, W: 5, H: 5}, Parent: "login"},
		{Name: "invisible", Title: "None"},
	}
	out := string(a.BuildOverlayHTML(Overlay{
		SnapshotURL: "/asset/snapshot.jpg", Width: 460, Height: 1350,
		Scale: 0.45, Title: "m.Forum",
	}, subpages))
	if !strings.Contains(out, `usemap="#msite-map"`) {
		t.Fatal("no usemap")
	}
	// 100*0.45=45, 200*0.45=90, 500*0.45=225, 280*0.45=126
	if !strings.Contains(out, `coords="45,90,225,126"`) {
		t.Fatalf("scaled coords wrong: %s", out)
	}
	if strings.Count(out, "<area") != 2 {
		t.Fatalf("area count: %s", out)
	}
	if !strings.Contains(out, "msiteLoad('/subpage/nav')") {
		t.Fatal("ajax area not wired")
	}
	if !strings.Contains(out, "function msiteLoad") {
		t.Fatal("runtime missing")
	}
}

func TestOverlayNoAJAXOmitsRuntime(t *testing.T) {
	a := &Applier{}
	out := string(a.BuildOverlayHTML(Overlay{SnapshotURL: "/s.jpg", Width: 10, Height: 10, Scale: 1},
		[]*Subpage{{Name: "x", Region: Region{X: 0, Y: 0, W: 5, H: 5}}}))
	if strings.Contains(out, "msiteLoad") {
		t.Fatal("runtime should be omitted without ajax areas")
	}
}

func TestFileNameHelpers(t *testing.T) {
	if SubpageFileName("log in/form") != "sub_log_in_form.html" {
		t.Fatalf("got %q", SubpageFileName("log in/form"))
	}
	sub := &Subpage{Name: "snap", Fidelity: imaging.FidelityHigh}
	if AssetFileName(sub) != "snap.png" {
		t.Fatalf("got %q", AssetFileName(sub))
	}
}

func TestComplexityOf(t *testing.T) {
	doc := html.Tidy(forumPage)
	c := ComplexityOf(doc, 10_000, 5)
	if c.Bytes != 10_000 || c.Requests != 5 {
		t.Fatal("bytes/requests lost")
	}
	if c.Elements < 20 {
		t.Fatalf("elements = %d", c.Elements)
	}
	if c.Images != 2 {
		t.Fatalf("images = %d", c.Images)
	}
	if c.StyleRules != 2 {
		t.Fatalf("style rules = %d", c.StyleRules)
	}
	if c.Scripts != 0 { // inline script has no src
		t.Fatalf("scripts = %d", c.Scripts)
	}
}

func TestCustomURLFuncs(t *testing.T) {
	a := &Applier{
		SubpageURL: func(name string) string { return "/u/abc/pages/" + name },
		AssetURL:   func(name string) string { return "/u/abc/images/" + name },
	}
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "forums", Selector: "#forums", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"prerender": "true"}},
			}},
		},
	}
	res, err := a.Apply(sp, html.Tidy(forumPage))
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := res.FindSubpage("forums")
	if !strings.Contains(string(SerializeSubpage(sub)), "/u/abc/images/forums.jpg") {
		t.Fatal("asset URL func ignored")
	}
	out := string(a.BuildOverlayHTML(Overlay{SnapshotURL: "/s", Width: 1, Height: 1, Scale: 1},
		[]*Subpage{{Name: "forums", Region: Region{X: 0, Y: 0, W: 1, H: 1}}}))
	if !strings.Contains(out, "/u/abc/pages/forums") {
		t.Fatal("subpage URL func ignored")
	}
}

func TestJQIntegrationAfterApply(t *testing.T) {
	// The adapted doc must remain a consistent DOM usable by jq.
	res := apply(t, loginSpec(), forumPage)
	if jq.Select(res.Doc, "#forums tr").Len() != 2 {
		t.Fatal("adapted doc broken for further selection")
	}
}

func TestXPathIdentifiedSubpage(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "stats", XPath: `//div[@id="whosonline"]`, Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage, Params: map[string]string{"title": "Online"}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	sub, ok := res.FindSubpage("stats")
	if !ok {
		t.Fatal("xpath subpage missing")
	}
	if !strings.Contains(string(SerializeSubpage(sub)), "Members online") {
		t.Fatal("content missing")
	}
	if res.Doc.ElementByID("whosonline") != nil {
		t.Fatal("object remains in main doc")
	}
}

func TestMultiMatchSubpageUsesFirst(t *testing.T) {
	page := `<html><body><div class="box">first</div><div class="box">second</div></body></html>`
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "box", Selector: "div.box", Attributes: []spec.Attribute{
				{Type: spec.AttrSubpage},
			}},
		},
	}
	res := apply(t, sp, page)
	sub, _ := res.FindSubpage("box")
	out := string(SerializeSubpage(sub))
	if !strings.Contains(out, "first") || strings.Contains(out, "second") {
		t.Fatalf("first-match semantics violated: %s", out)
	}
	if !strings.Contains(html.Render(res.Doc), "second") {
		t.Fatal("second box should stay in main doc")
	}
}

func TestInsertJSServerStage(t *testing.T) {
	sp := &spec.Spec{
		Name: "t", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "nav", Selector: "#navlinks", Attributes: []spec.Attribute{
				{Type: spec.AttrInsertJS, Params: map[string]string{
					"code": "reorderForServer();", "stage": "server"}},
			}},
		},
	}
	res := apply(t, sp, forumPage)
	script := res.Doc.ElementByID("navlinks").Elements("script")
	if len(script) != 1 || script[0].AttrOr("data-msite", "") != "server" {
		t.Fatal("server-stage script not inserted")
	}
	// Server-stage scripts are present in the DOM the renderer consumes
	// but the renderer never executes or paints them.
	found := false
	for _, r := range res.Layout.Runs() {
		if strings.Contains(r.Text, "reorderForServer") {
			found = true
		}
	}
	if found {
		t.Fatal("script text must not paint")
	}
}

// TestRelocateBeforeDetachedTargetDoesNotPanic reproduces the relocate
// nil-parent crash: an earlier object removes a container, so a later
// relocate whose target selector resolves to that detached subtree's
// root found a dest with no Parent — position=before then dereferenced
// dest.Parent and panicked. Now it notes and skips like a missing
// target.
func TestRelocateBeforeDetachedTargetDoesNotPanic(t *testing.T) {
	page := `<html><body><div id="junk"><p id="x">stranded paragraph</p></div><p>rest of page</p></body></html>`
	for _, position := range []string{"before", "after"} {
		sp := &spec.Spec{Name: "r", Origin: "http://o/", Objects: []spec.Object{
			{Name: "junk", Selector: "#junk", Attributes: []spec.Attribute{
				{Type: spec.AttrRemove},
			}},
			{Name: "x", Selector: "#x", Attributes: []spec.Attribute{
				{Type: spec.AttrRelocate, Params: map[string]string{
					"target": "#junk", "position": position,
				}},
			}},
		}}
		a := &Applier{ViewportWidth: 800}
		res, err := a.Apply(sp, html.Tidy(page))
		if err != nil {
			t.Fatalf("position=%s: %v", position, err)
		}
		noted := false
		for _, n := range res.Notes {
			if strings.Contains(n, "has no parent") {
				noted = true
			}
		}
		if !noted {
			t.Fatalf("position=%s: parentless target not noted: %v", position, res.Notes)
		}
	}
}
