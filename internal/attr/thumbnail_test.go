package attr

import (
	"strings"
	"testing"

	"msite/internal/html"
	"msite/internal/imaging"
	"msite/internal/spec"
)

const mediaPage = `<html><body>
<h1>Gallery</h1>
<object id="flash" width="400" height="300" data="/media/tour.swf">
  <embed src="/media/tour.swf" width="400" height="300">
</object>
<video id="clip" src="/media/build.mp4" width="320" height="240"></video>
<p>caption text</p>
</body></html>`

func TestThumbnailReplacesRichMedia(t *testing.T) {
	sp := &spec.Spec{
		Name: "media", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "flash", Selector: "#flash", Attributes: []spec.Attribute{
				{Type: spec.AttrThumbnail, Params: map[string]string{"scale": "0.25"}},
			}},
			{Name: "clip", Selector: "#clip", Attributes: []spec.Attribute{
				{Type: spec.AttrThumbnail, Params: map[string]string{"href": "/media/build.mp4"}},
			}},
		},
	}
	a := &Applier{ViewportWidth: 800}
	res, err := a.Apply(sp, html.Tidy(mediaPage))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assets) != 2 {
		t.Fatalf("assets = %d", len(res.Assets))
	}
	for _, asset := range res.Assets {
		if len(asset.Data) == 0 || asset.MIME != "image/jpeg" {
			t.Fatalf("asset %q empty or wrong mime %q", asset.Name, asset.MIME)
		}
		if asset.Data[0] != 0xff || asset.Data[1] != 0xd8 {
			t.Fatalf("asset %q not a JPEG", asset.Name)
		}
	}

	out := html.Render(res.Doc)
	if strings.Contains(out, "<object") || strings.Contains(out, "<video") {
		t.Fatal("rich media elements remain")
	}
	// Flash thumbnail at 0.25 scale: 400x300 → 100x75.
	if !strings.Contains(out, `width="100"`) || !strings.Contains(out, `height="75"`) {
		t.Fatalf("flash thumb dimensions wrong: %s", out)
	}
	// Video thumbnail links to the configured target.
	if !strings.Contains(out, `href="/media/build.mp4"`) {
		t.Fatal("video thumb not linked")
	}
	// Flash href fell back to the inner embed's src.
	if !strings.Contains(out, `href="/media/tour.swf"`) {
		t.Fatalf("flash thumb href fallback wrong: %s", out)
	}
	if !strings.Contains(out, "/asset/flash_thumb.jpg") || !strings.Contains(out, "/asset/clip_thumb.jpg") {
		t.Fatal("asset URLs missing")
	}
}

func TestThumbnailDefaultScale(t *testing.T) {
	sp := &spec.Spec{
		Name: "media", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "clip", Selector: "#clip", Attributes: []spec.Attribute{
				{Type: spec.AttrThumbnail},
			}},
		},
	}
	a := &Applier{ViewportWidth: 800}
	res, err := a.Apply(sp, html.Tidy(mediaPage))
	if err != nil {
		t.Fatal(err)
	}
	out := html.Render(res.Doc)
	// 320x240 at default 0.5 → 160x120.
	if !strings.Contains(out, `width="160"`) || !strings.Contains(out, `height="120"`) {
		t.Fatalf("default scale wrong: %s", out)
	}
	if len(res.Assets) != 1 {
		t.Fatal("asset missing")
	}
}

func TestThumbnailHighFidelityPNG(t *testing.T) {
	sp := &spec.Spec{
		Name: "media", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "clip", Selector: "#clip", Attributes: []spec.Attribute{
				{Type: spec.AttrThumbnail, Params: map[string]string{"fidelity": "high"}},
			}},
		},
	}
	a := &Applier{ViewportWidth: 800}
	res, err := a.Apply(sp, html.Tidy(mediaPage))
	if err != nil {
		t.Fatal(err)
	}
	asset := res.Assets[0]
	if asset.MIME != "image/png" || !strings.HasSuffix(asset.Name, ".png") {
		t.Fatalf("asset = %q %q", asset.Name, asset.MIME)
	}
	if string(asset.Data[1:4]) != "PNG" {
		t.Fatal("not a PNG")
	}
}

func TestThumbnailNoRegionNoted(t *testing.T) {
	sp := &spec.Spec{
		Name: "media", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "hidden", Selector: "#ghost", Attributes: []spec.Attribute{
				{Type: spec.AttrThumbnail},
			}},
		},
	}
	a := &Applier{ViewportWidth: 800}
	res, err := a.Apply(sp, html.Tidy(mediaPage))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assets) != 0 {
		t.Fatal("unexpected asset")
	}
	if len(res.Notes) == 0 {
		t.Fatal("missing note for unmatched object")
	}
}

func TestThumbnailFidelityThumbAvoidsDoubleScale(t *testing.T) {
	if fidelityFromName("thumb") != imaging.FidelityThumb {
		t.Fatal("mapping sanity")
	}
	sp := &spec.Spec{
		Name: "media", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "clip", Selector: "#clip", Attributes: []spec.Attribute{
				{Type: spec.AttrThumbnail, Params: map[string]string{"fidelity": "thumb", "scale": "0.5"}},
			}},
		},
	}
	a := &Applier{ViewportWidth: 800}
	res, err := a.Apply(sp, html.Tidy(mediaPage))
	if err != nil {
		t.Fatal(err)
	}
	// The encoded image must match the declared 160x120, not 40x30.
	img, err := imaging.Decode(res.Assets[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 160 {
		t.Fatalf("double-scaled: %v", img.Bounds())
	}
}

func TestAbsolutizeURLs(t *testing.T) {
	doc := html.Tidy(`<body>
		<a href="/forumdisplay.php?f=2">rel</a>
		<a href="thread.php?t=1">docrel</a>
		<a href="http://other.test/x">abs</a>
		<a href="#top">anchor</a>
		<a href="javascript:void(0)">js</a>
		<a href="/subpage/login">internal</a>
		<img src="/images/logo.gif">
		<form action="/login.php"></form>
	</body>`)
	n := AbsolutizeURLs(doc, "http://origin.test/index.php", "/subpage/", "/asset/")
	if n != 4 {
		t.Fatalf("rewrites = %d", n)
	}
	out := html.Render(doc)
	for _, want := range []string{
		`href="http://origin.test/forumdisplay.php?f=2"`,
		`href="http://origin.test/thread.php?t=1"`,
		`src="http://origin.test/images/logo.gif"`,
		`action="http://origin.test/login.php"`,
		`href="http://other.test/x"`,
		`href="#top"`,
		`href="javascript:void(0)"`,
		`href="/subpage/login"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in %s", want, out)
		}
	}
}

func TestAbsolutizeURLsBadBase(t *testing.T) {
	doc := html.Tidy(`<a href="/x">y</a>`)
	if AbsolutizeURLs(doc, "not a url") != 0 {
		t.Fatal("bad base should rewrite nothing")
	}
}

// TestThumbnailNameCollision: two objects whose names sanitize to the
// same file name ("nav bar" vs "nav_bar") used to overwrite each
// other's Asset; now the second gets a disambiguated name.
func TestThumbnailNameCollision(t *testing.T) {
	page := `<html><body>
<object id="m1" width="400" height="300" data="/a.swf"></object>
<object id="m2" width="400" height="300" data="/b.swf"></object>
</body></html>`
	sp := &spec.Spec{
		Name: "media", Origin: "http://o/",
		Objects: []spec.Object{
			{Name: "nav bar", Selector: "#m1", Attributes: []spec.Attribute{
				{Type: spec.AttrThumbnail, Params: map[string]string{"scale": "0.25"}},
			}},
			{Name: "nav_bar", Selector: "#m2", Attributes: []spec.Attribute{
				{Type: spec.AttrThumbnail, Params: map[string]string{"scale": "0.25"}},
			}},
		},
	}
	a := &Applier{ViewportWidth: 800}
	res, err := a.Apply(sp, html.Tidy(page))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assets) != 2 {
		t.Fatalf("assets = %d, want 2", len(res.Assets))
	}
	if res.Assets[0].Name == res.Assets[1].Name {
		t.Fatalf("asset names collide: %q", res.Assets[0].Name)
	}
	out := html.Render(res.Doc)
	for _, asset := range res.Assets {
		if len(asset.Data) == 0 {
			t.Fatalf("asset %q has no data", asset.Name)
		}
		if !strings.Contains(out, "/asset/"+asset.Name) {
			t.Fatalf("doc does not reference asset %q: %s", asset.Name, out)
		}
	}
}
