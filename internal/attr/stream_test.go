package attr

import (
	"strings"
	"testing"

	"msite/internal/html"
)

func streamSubpages() []*Subpage {
	return []*Subpage{
		{Name: "login", Title: "Log in", Region: Region{X: 100, Y: 200, W: 400, H: 80}},
		{Name: "nav", Title: "Nav", Region: Region{X: 0, Y: 100, W: 1000, H: 40}, AJAX: true},
		{Name: "deep", Title: "Deep", Region: Region{X: 0, Y: 2000, W: 1000, H: 100}},
		{Name: "nested", Title: "Nested", Region: Region{X: 1, Y: 1, W: 5, H: 5}, Parent: "login"},
		{Name: "invisible", Title: "None"},
	}
}

func TestBuildOverlayStreamFragmentsConcatenate(t *testing.T) {
	a := &Applier{}
	frags := a.BuildOverlayStream(Overlay{
		SnapshotURL: "/asset/snapshot.jpg", Scale: 0.45, Title: "m.Forum",
	}, streamSubpages(), 480)
	page := string(frags.Head) + string(frags.ATF) + string(frags.BTF) + string(frags.Tail)

	for _, want := range []string{
		"<!DOCTYPE html>", "<title>m.Forum</title>",
		`id="msite-snap"`, `usemap="#msite-map"`,
		`<map name="msite-map">`, "</map>",
		"function msiteLoad", "</body></html>",
		// login at 100,200 scaled by 0.45
		`coords="45,90,225,126"`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("concatenated page missing %q", want)
		}
	}
	if n := strings.Count(page, "<area"); n != 3 {
		t.Fatalf("area count = %d, want 3 (nested and invisible excluded)", n)
	}
	// The streamed page must carry the same areas and runtime as the
	// buffered overlay — only fragment order and the marker differ.
	buffered := string(a.BuildOverlayHTML(Overlay{
		SnapshotURL: "/asset/snapshot.jpg", Scale: 0.45, Title: "m.Forum",
	}, streamSubpages()))
	for _, want := range []string{`coords="45,90,225,126"`, "msiteLoad('/subpage/nav')"} {
		if !strings.Contains(buffered, want) || !strings.Contains(page, want) {
			t.Errorf("buffered and streamed overlays disagree on %q", want)
		}
	}
}

func TestBuildOverlayStreamATFSplit(t *testing.T) {
	a := &Applier{}
	frags := a.BuildOverlayStream(Overlay{
		SnapshotURL: "/asset/snapshot.jpg", Scale: 0.45, Title: "t",
	}, streamSubpages(), 480)
	atf, btf := string(frags.ATF), string(frags.BTF)
	// nav (y=100*0.45=45) and login (y=200*0.45=90) are above a 480px
	// fold; deep (y=2000*0.45=900) is below it.
	if !strings.Contains(atf, "/subpage/login") || !strings.Contains(atf, "/subpage/nav") {
		t.Fatalf("ATF fragment missing above-the-fold areas: %s", atf)
	}
	if strings.Contains(atf, "/subpage/deep") {
		t.Fatal("below-the-fold area leaked into the ATF fragment")
	}
	if !strings.Contains(btf, "/subpage/deep") {
		t.Fatalf("BTF fragment missing the deep area: %s", btf)
	}
	if !strings.HasSuffix(btf, "</map>") {
		t.Fatalf("BTF must close the map: %s", btf)
	}

	// atfHeight <= 0: everything is above the fold.
	frags = a.BuildOverlayStream(Overlay{SnapshotURL: "/s.jpg", Scale: 0.45}, streamSubpages(), -1)
	if strings.Count(string(frags.ATF), "<area") != 3 {
		t.Fatalf("negative fold should put every area in ATF: %s", frags.ATF)
	}
	if strings.Count(string(frags.BTF), "<area") != 0 {
		t.Fatalf("negative fold left areas in BTF: %s", frags.BTF)
	}
}

func TestBuildOverlayStreamHeadIsStatic(t *testing.T) {
	a := &Applier{}
	// The head must not depend on the subpage set: it is flushed before
	// adaptation produces one.
	before := a.BuildOverlayStream(Overlay{SnapshotURL: "/s.jpg", Scale: 1, Title: "x"}, nil, 480)
	after := a.BuildOverlayStream(Overlay{SnapshotURL: "/s.jpg", Scale: 1, Title: "x"}, streamSubpages(), 480)
	if string(before.Head) != string(after.Head) {
		t.Fatal("Head changed with the subpage set")
	}
	// Unknown geometry is omitted, not rendered as zeros.
	if strings.Contains(string(before.Head), `width="0"`) {
		t.Fatal("zero geometry rendered into the head")
	}
	sized := a.BuildOverlayStream(Overlay{SnapshotURL: "/s.jpg", Scale: 1, Width: 460, Height: 1350}, nil, 480)
	if !strings.Contains(string(sized.Head), `width="460"`) {
		t.Fatal("known geometry missing from the head")
	}
}

func TestBuildOverlayStreamUpgradeScript(t *testing.T) {
	a := &Applier{}
	plain := a.BuildOverlayStream(Overlay{SnapshotURL: "/s.jpg", Scale: 1}, nil, 480)
	if strings.Contains(string(plain.Tail), "msite-snap'") || strings.Contains(string(plain.Tail), "data-msite=\"upgrade\"") {
		t.Fatal("upgrade script emitted without an UpgradeURL")
	}
	up := a.BuildOverlayStream(Overlay{
		SnapshotURL: "/asset/snapshot-coarse.jpg",
		UpgradeURL:  "/asset/snapshot.jpg?v=7",
		Scale:       1,
	}, nil, 480)
	tail := string(up.Tail)
	if !strings.Contains(tail, `data-msite="upgrade"`) {
		t.Fatalf("upgrade script missing: %s", tail)
	}
	if !strings.Contains(tail, "/asset/snapshot.jpg?v=7") {
		t.Fatal("upgrade script does not reference the versioned URL")
	}
	if !strings.Contains(tail, "msite-snap") {
		t.Fatal("upgrade script does not retarget the snapshot img")
	}
}

func TestMinimalMarkupHTML(t *testing.T) {
	doc := html.Parse(`<html><head><style>body{color:red}</style></head><body>
		<h1>Forum &amp; Friends</h1>
		<div id="banner"><img src="/big.gif"><script>evil()</script></div>
		<p>Welcome   to the
		board.</p>
		<ul><li><a href="/f/1">General</a></li><li><a href="/f/2">Off topic</a></li></ul>
		<form><input name="q"><button>Search</button></form>
		<div>Trailing text</div>
	</body></html>`)
	out := string(MinimalMarkupHTML("m.Forum", doc))

	for _, want := range []string{
		"<title>m.Forum</title>",
		"<h1>Forum &amp; Friends</h1>",
		"<p>Welcome to the board.</p>",
		`<p><a href="/f/1">General</a></p>`,
		`<p><a href="/f/2">Off topic</a></p>`,
		"<p>Trailing text</p>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("minimal markup missing %q\nin: %s", want, out)
		}
	}
	for _, banned := range []string{"<img", "<script", "<style", "<form", "<input", "<button", "evil()"} {
		if strings.Contains(out, banned) {
			t.Errorf("minimal markup contains banned %q", banned)
		}
	}
}

func TestMinimalMarkupLinkWithoutText(t *testing.T) {
	doc := html.Parse(`<html><body><a href="/only-href"></a></body></html>`)
	out := string(MinimalMarkupHTML("t", doc))
	if !strings.Contains(out, `<p><a href="/only-href">/only-href</a></p>`) {
		t.Fatalf("href-only link not preserved: %s", out)
	}
}
