package imaging

import (
	"image"
	"image/color"
	"testing"
	"testing/quick"
)

func gradient(w, h int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, color.RGBA{
				R: uint8(x * 255 / max(w-1, 1)),
				G: uint8(y * 255 / max(h-1, 1)),
				B: 128, A: 255,
			})
		}
	}
	return img
}

func solid(w, h int, c color.RGBA) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

func TestFidelityStringsAndMIME(t *testing.T) {
	if FidelityHigh.String() != "high" || FidelityThumb.String() != "thumb" || Fidelity(0).String() != "unknown" {
		t.Fatal("strings wrong")
	}
	if FidelityHigh.MIME() != "image/png" || FidelityLow.MIME() != "image/jpeg" {
		t.Fatal("mime wrong")
	}
	if FidelityHigh.Ext() != ".png" || FidelityMedium.Ext() != ".jpg" {
		t.Fatal("ext wrong")
	}
}

// noisy builds a deterministic high-entropy image, which behaves like a
// text-dense page snapshot under the encoders (PNG large, JPEG smaller).
func noisy(w, h int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	state := uint32(12345)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			state = state*1664525 + 1013904223
			v := uint8(state >> 24)
			img.SetRGBA(x, y, color.RGBA{R: v, G: v, B: v, A: 255})
		}
	}
	return img
}

func TestEncodeLadderMonotone(t *testing.T) {
	img := noisy(400, 300)
	sizes := map[Fidelity]int{}
	for _, f := range []Fidelity{FidelityHigh, FidelityMedium, FidelityLow, FidelityThumb} {
		data, err := Encode(img, f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		sizes[f] = len(data)
	}
	if !(sizes[FidelityHigh] > sizes[FidelityMedium] &&
		sizes[FidelityMedium] > sizes[FidelityLow] &&
		sizes[FidelityLow] > sizes[FidelityThumb]) {
		t.Fatalf("ladder not monotone: %v", sizes)
	}
}

func TestEncodeUnknownFidelity(t *testing.T) {
	if _, err := Encode(gradient(4, 4), Fidelity(99)); err == nil {
		t.Fatal("expected error")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := solid(10, 10, color.RGBA{10, 200, 30, 255})
	data, err := EncodePNG(img)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	r, g, b, _ := back.At(5, 5).RGBA()
	if uint8(r>>8) != 10 || uint8(g>>8) != 200 || uint8(b>>8) != 30 {
		t.Fatalf("round trip lost color: %d %d %d", r>>8, g>>8, b>>8)
	}
}

func TestDecodeInvalid(t *testing.T) {
	if _, err := Decode([]byte("not an image")); err == nil {
		t.Fatal("expected error")
	}
}

func TestJPEGQualityClamped(t *testing.T) {
	img := gradient(50, 50)
	lo, err := EncodeJPEG(img, -5)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := EncodeJPEG(img, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(lo) >= len(hi) {
		t.Fatal("clamped qualities should still order")
	}
}

func TestScaleDown(t *testing.T) {
	img := solid(100, 100, color.RGBA{50, 60, 70, 255})
	out := Scale(img, 25, 25)
	if out.Bounds().Dx() != 25 || out.Bounds().Dy() != 25 {
		t.Fatalf("bounds = %v", out.Bounds())
	}
	if got := out.RGBAAt(12, 12); got != (color.RGBA{50, 60, 70, 255}) {
		t.Fatalf("solid color changed: %v", got)
	}
}

func TestScaleUp(t *testing.T) {
	img := solid(10, 10, color.RGBA{90, 90, 90, 255})
	out := Scale(img, 40, 40)
	if out.Bounds().Dx() != 40 {
		t.Fatalf("bounds = %v", out.Bounds())
	}
	if got := out.RGBAAt(20, 20); got != (color.RGBA{90, 90, 90, 255}) {
		t.Fatalf("solid upscale changed: %v", got)
	}
}

func TestScaleDownAverages(t *testing.T) {
	// Left half black, right half white; 2x1 result should be one black
	// and one white pixel.
	img := image.NewRGBA(image.Rect(0, 0, 100, 10))
	for y := 0; y < 10; y++ {
		for x := 0; x < 100; x++ {
			c := color.RGBA{0, 0, 0, 255}
			if x >= 50 {
				c = color.RGBA{255, 255, 255, 255}
			}
			img.SetRGBA(x, y, c)
		}
	}
	out := Scale(img, 2, 1)
	if out.RGBAAt(0, 0).R != 0 || out.RGBAAt(1, 0).R != 255 {
		t.Fatalf("halves = %v %v", out.RGBAAt(0, 0), out.RGBAAt(1, 0))
	}
}

func TestScaleClampsToOne(t *testing.T) {
	img := solid(10, 10, color.RGBA{1, 2, 3, 255})
	out := Scale(img, 0, -3)
	if out.Bounds().Dx() != 1 || out.Bounds().Dy() != 1 {
		t.Fatalf("bounds = %v", out.Bounds())
	}
}

func TestScaleToWidthPreservesAspect(t *testing.T) {
	img := solid(200, 100, color.RGBA{5, 5, 5, 255})
	out := ScaleToWidth(img, 50)
	if out.Bounds().Dx() != 50 || out.Bounds().Dy() != 25 {
		t.Fatalf("bounds = %v", out.Bounds())
	}
}

func TestScaleFactor(t *testing.T) {
	img := solid(80, 40, color.RGBA{5, 5, 5, 255})
	out := ScaleFactor(img, 0.5)
	if out.Bounds().Dx() != 40 || out.Bounds().Dy() != 20 {
		t.Fatalf("bounds = %v", out.Bounds())
	}
}

func TestCrop(t *testing.T) {
	img := gradient(100, 100)
	out := Crop(img, image.Rect(10, 20, 60, 70))
	if out.Bounds().Dx() != 50 || out.Bounds().Dy() != 50 {
		t.Fatalf("bounds = %v", out.Bounds())
	}
	want := img.RGBAAt(10, 20)
	if got := out.RGBAAt(0, 0); got != want {
		t.Fatalf("origin pixel = %v, want %v", got, want)
	}
}

func TestCropOutOfBoundsClamped(t *testing.T) {
	img := solid(10, 10, color.RGBA{1, 1, 1, 255})
	out := Crop(img, image.Rect(5, 5, 50, 50))
	if out.Bounds().Dx() != 5 || out.Bounds().Dy() != 5 {
		t.Fatalf("bounds = %v", out.Bounds())
	}
}

func TestQuickScaleNeverPanics(t *testing.T) {
	img := gradient(13, 7)
	f := func(w, h int16) bool {
		out := Scale(img, int(w)%64, int(h)%64)
		return out.Bounds().Dx() >= 1 && out.Bounds().Dy() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThumbQuarterScale(t *testing.T) {
	img := gradient(400, 200)
	data, err := Encode(img, FidelityThumb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bounds().Dx() != 100 || back.Bounds().Dy() != 50 {
		t.Fatalf("thumb bounds = %v", back.Bounds())
	}
}
