package imaging

import (
	"bytes"
	"image"
	"image/color"
	"testing"
)

// checker builds a varied test image distinct from imaging_test's
// gradient: per-pixel variation in every channel exercises the box and
// bilinear filters harder than a smooth ramp.
func checker(w, h int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, color.RGBA{
				R: uint8(x * 255 / w), G: uint8(y * 255 / h),
				B: uint8((x*7 + y*13) % 256), A: 255,
			})
		}
	}
	return img
}

func TestGetRGBAGeometry(t *testing.T) {
	img := GetRGBA(17, 9)
	defer PutRGBA(img)
	if img.Rect != image.Rect(0, 0, 17, 9) {
		t.Fatalf("rect = %v", img.Rect)
	}
	if img.Stride != 17*4 {
		t.Fatalf("stride = %d", img.Stride)
	}
	if len(img.Pix) != 17*9*4 {
		t.Fatalf("pix len = %d", len(img.Pix))
	}
	// Degenerate sizes clamp to 1 instead of panicking.
	tiny := GetRGBA(0, -3)
	defer PutRGBA(tiny)
	if tiny.Rect.Dx() != 1 || tiny.Rect.Dy() != 1 {
		t.Fatalf("clamped rect = %v", tiny.Rect)
	}
}

func TestPutRGBARejectsOffsetImages(t *testing.T) {
	base := checker(20, 20)
	sub := base.SubImage(image.Rect(5, 5, 15, 15)).(*image.RGBA)
	// Must not panic or poison the pool: a sub-image's Pix aliases the
	// parent and its Rect.Min is non-zero.
	PutRGBA(sub)
	PutRGBA(nil)
	got := GetRGBA(10, 10)
	defer PutRGBA(got)
	if got.Rect.Min != (image.Point{}) {
		t.Fatalf("pooled image has offset rect %v", got.Rect)
	}
}

// TestScaleIsDeterministicThroughPool recycles buffers between scales
// and checks results stay identical — pooled (dirty) memory must never
// leak into output pixels.
func TestScaleIsDeterministicThroughPool(t *testing.T) {
	src := checker(97, 53)
	first := Scale(src, 31, 17)
	want := make([]byte, len(first.Pix))
	copy(want, first.Pix)
	PutRGBA(first)
	for i := 0; i < 3; i++ {
		again := Scale(src, 31, 17)
		if !bytes.Equal(again.Pix, want) {
			t.Fatalf("scale pass %d differs after pool reuse", i)
		}
		PutRGBA(again)
	}
}

func TestScaleIntoMatchesScale(t *testing.T) {
	src := checker(64, 48)
	for _, sz := range []struct{ w, h int }{
		{16, 12},  // minify: box filter
		{128, 96}, // magnify: bilinear
		{64, 48},  // identity-size
	} {
		want := Scale(src, sz.w, sz.h)
		dst := GetRGBA(sz.w, sz.h)
		// Pre-dirty the destination: ScaleInto must write every pixel.
		for i := range dst.Pix {
			dst.Pix[i] = 0xAB
		}
		ScaleInto(dst, src)
		if !bytes.Equal(dst.Pix, want.Pix) {
			t.Fatalf("ScaleInto(%dx%d) differs from Scale", sz.w, sz.h)
		}
		PutRGBA(want)
		PutRGBA(dst)
	}
}

// TestPooledEncodeDeterministic guards the encode-buffer pool: encoded
// bytes are copied out, so back-to-back encodes of the same image are
// identical and earlier results are not clobbered by later encodes.
func TestPooledEncodeDeterministic(t *testing.T) {
	a := checker(80, 60)
	b := checker(40, 90)
	pngA1, err := EncodePNG(a)
	if err != nil {
		t.Fatal(err)
	}
	keep := make([]byte, len(pngA1))
	copy(keep, pngA1)
	if _, err := EncodeJPEG(b, 60); err != nil {
		t.Fatal(err)
	}
	pngA2, err := EncodePNG(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pngA1, keep) {
		t.Fatal("earlier encode result was clobbered by buffer reuse")
	}
	if !bytes.Equal(pngA1, pngA2) {
		t.Fatal("repeat encode differs through the pool")
	}
}
