// Package imaging is the image post-processor of the m.Site pipeline
// (§3.3 "Image fidelity"): scaling, cropping, and fidelity-ladder
// encoding that turns a ~600 KB full-page PNG snapshot into the 25–50 KB
// JPEG a mobile client actually downloads.
package imaging

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	_ "image/gif" // registered for Decode: origin sites serve GIFs
	"image/jpeg"
	"image/png"
	"sync"
)

// Fidelity selects an output encoding/quality point on the ladder the
// attribute system exposes to the site administrator.
type Fidelity int

// Fidelity levels, ordered from largest to smallest output.
const (
	// FidelityHigh is lossless PNG at full resolution.
	FidelityHigh Fidelity = iota + 1
	// FidelityMedium is JPEG quality 75.
	FidelityMedium
	// FidelityLow is JPEG quality 40 — the paper's "reduced-fidelity jpg".
	FidelityLow
	// FidelityThumb is a quarter-scale JPEG quality 50 thumbnail.
	FidelityThumb
)

// String names the fidelity level.
func (f Fidelity) String() string {
	switch f {
	case FidelityHigh:
		return "high"
	case FidelityMedium:
		return "medium"
	case FidelityLow:
		return "low"
	case FidelityThumb:
		return "thumb"
	default:
		return "unknown"
	}
}

// MIME returns the encoded content type for the level.
func (f Fidelity) MIME() string {
	if f == FidelityHigh {
		return "image/png"
	}
	return "image/jpeg"
}

// Ext returns the conventional file extension for the level.
func (f Fidelity) Ext() string {
	if f == FidelityHigh {
		return ".png"
	}
	return ".jpg"
}

// Encode encodes img at the given fidelity level.
func Encode(img image.Image, f Fidelity) ([]byte, error) {
	switch f {
	case FidelityHigh:
		return EncodePNG(img)
	case FidelityMedium:
		return EncodeJPEG(img, 75)
	case FidelityLow:
		return EncodeJPEG(img, 40)
	case FidelityThumb:
		b := img.Bounds()
		thumb := Scale(img, b.Dx()/4, b.Dy()/4)
		return EncodeJPEG(thumb, 50)
	default:
		return nil, fmt.Errorf("imaging: unknown fidelity %d", f)
	}
}

// encBufPool recycles the scratch buffers the encoders grow into. A
// full-page PNG repeatedly doubles its buffer to hundreds of kilobytes;
// reusing that capacity across snapshot renders removes the dominant
// encode-side allocation from the cold-adaptation tail (BENCH_PR2's
// serialized-tail ceiling). The encoded bytes are copied out before the
// buffer returns to the pool, so callers own their slices as before.
var encBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// encodeWith runs enc against a pooled buffer and copies the result out.
func encodeWith(enc func(*bytes.Buffer) error, kind string) ([]byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := enc(buf); err != nil {
		encBufPool.Put(buf)
		return nil, fmt.Errorf("imaging: encoding %s: %w", kind, err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	encBufPool.Put(buf)
	return out, nil
}

// EncodePNG encodes img as PNG.
func EncodePNG(img image.Image) ([]byte, error) {
	return encodeWith(func(buf *bytes.Buffer) error {
		return png.Encode(buf, img)
	}, "png")
}

// EncodeJPEG encodes img as JPEG at the given quality (1-100).
func EncodeJPEG(img image.Image, quality int) ([]byte, error) {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	return encodeWith(func(buf *bytes.Buffer) error {
		return jpeg.Encode(buf, img, &jpeg.Options{Quality: quality})
	}, "jpeg")
}

// pixPool recycles RGBA backing arrays for short-lived frames: the
// rasterizer's framebuffers, pre-scaled replaced-element images, and the
// progressive renderer's coarse accumulator. Get returns an image whose
// every pixel the caller is expected to overwrite (pooled memory is NOT
// zeroed); Put recycles it. Images built on a caller-provided or
// non-recyclable buffer are simply dropped.
var pixPool = sync.Pool{
	New: func() any { return []uint8(nil) },
}

// GetRGBA returns a w×h RGBA whose backing array may be recycled from an
// earlier PutRGBA. The pixel contents are undefined: the caller must
// paint every pixel (the rasterizer's full-frame background fill, the
// scalers' every-pixel writes).
func GetRGBA(w, h int) *image.RGBA {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	need := 4 * w * h
	buf := pixPool.Get().([]uint8)
	if cap(buf) < need {
		buf = make([]uint8, need)
	}
	return &image.RGBA{
		Pix:    buf[:need:need],
		Stride: 4 * w,
		Rect:   image.Rect(0, 0, w, h),
	}
}

// PutRGBA recycles an image obtained from GetRGBA (nil-safe). The caller
// must not touch img afterwards. Sub-image views must not be returned —
// only the original full allocation.
func PutRGBA(img *image.RGBA) {
	if img == nil || img.Rect.Min != (image.Point{}) {
		return
	}
	pixPool.Put(img.Pix[:0:cap(img.Pix)]) //nolint:staticcheck // slice header reuse is the point
}

// Decode decodes PNG, JPEG, or GIF bytes.
func Decode(data []byte) (image.Image, error) {
	img, _, err := image.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("imaging: decoding image: %w", err)
	}
	return img, nil
}

// Scale resizes img to w x h using box sampling for minification and
// bilinear interpolation for magnification. Dimensions are clamped to 1.
func Scale(img image.Image, w, h int) *image.RGBA {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := image.NewRGBA(image.Rect(0, 0, w, h))
	ScaleInto(out, img)
	return out
}

// ScaleInto resizes img to fill dst (whose bounds must be zero-anchored),
// box sampling for minification and bilinear for magnification. It
// writes every destination pixel, so dst may come from GetRGBA without
// clearing. An empty source leaves dst zero-filled only if the caller
// cleared it; sources are non-empty on every pipeline path.
func ScaleInto(dst *image.RGBA, img image.Image) {
	w, h := dst.Rect.Dx(), dst.Rect.Dy()
	src := img.Bounds()
	sw, sh := src.Dx(), src.Dy()
	if sw == 0 || sh == 0 {
		return
	}
	if w < sw || h < sh {
		boxScale(dst, img, w, h)
		return
	}
	bilinearScale(dst, img, w, h)
}

// ScaleToWidth resizes preserving aspect ratio.
func ScaleToWidth(img image.Image, w int) *image.RGBA {
	b := img.Bounds()
	if b.Dx() == 0 {
		return image.NewRGBA(image.Rect(0, 0, 1, 1))
	}
	h := int(float64(w) * float64(b.Dy()) / float64(b.Dx()))
	return Scale(img, w, h)
}

// ScaleFactor resizes by a multiplicative factor.
func ScaleFactor(img image.Image, factor float64) *image.RGBA {
	b := img.Bounds()
	return Scale(img, int(float64(b.Dx())*factor), int(float64(b.Dy())*factor))
}

// boxScale averages all source pixels covered by each destination pixel —
// the right filter for the strong minification snapshots need.
func boxScale(out *image.RGBA, img image.Image, w, h int) {
	src := img.Bounds()
	sw, sh := src.Dx(), src.Dy()
	for dy := 0; dy < h; dy++ {
		sy0 := src.Min.Y + dy*sh/h
		sy1 := src.Min.Y + (dy+1)*sh/h
		if sy1 <= sy0 {
			sy1 = sy0 + 1
		}
		for dx := 0; dx < w; dx++ {
			sx0 := src.Min.X + dx*sw/w
			sx1 := src.Min.X + (dx+1)*sw/w
			if sx1 <= sx0 {
				sx1 = sx0 + 1
			}
			var rs, gs, bs, as, n uint64
			for sy := sy0; sy < sy1; sy++ {
				for sx := sx0; sx < sx1; sx++ {
					r, g, b, a := img.At(sx, sy).RGBA()
					rs += uint64(r)
					gs += uint64(g)
					bs += uint64(b)
					as += uint64(a)
					n++
				}
			}
			out.SetRGBA(dx, dy, color.RGBA{
				R: uint8(rs / n >> 8),
				G: uint8(gs / n >> 8),
				B: uint8(bs / n >> 8),
				A: uint8(as / n >> 8),
			})
		}
	}
}

func bilinearScale(out *image.RGBA, img image.Image, w, h int) {
	src := img.Bounds()
	sw, sh := src.Dx(), src.Dy()
	for dy := 0; dy < h; dy++ {
		fy := (float64(dy) + 0.5) * float64(sh) / float64(h)
		sy := int(fy - 0.5)
		ty := fy - 0.5 - float64(sy)
		if sy < 0 {
			sy, ty = 0, 0
		}
		if sy >= sh-1 {
			sy, ty = sh-2, 1
			if sy < 0 {
				sy, ty = 0, 0
			}
		}
		for dx := 0; dx < w; dx++ {
			fx := (float64(dx) + 0.5) * float64(sw) / float64(w)
			sx := int(fx - 0.5)
			tx := fx - 0.5 - float64(sx)
			if sx < 0 {
				sx, tx = 0, 0
			}
			if sx >= sw-1 {
				sx, tx = sw-2, 1
				if sx < 0 {
					sx, tx = 0, 0
				}
			}
			out.SetRGBA(dx, dy, lerpPixels(img, src, sx, sy, tx, ty))
		}
	}
}

func lerpPixels(img image.Image, src image.Rectangle, sx, sy int, tx, ty float64) color.RGBA {
	at := func(x, y int) (float64, float64, float64, float64) {
		if x > src.Dx()-1 {
			x = src.Dx() - 1
		}
		if y > src.Dy()-1 {
			y = src.Dy() - 1
		}
		r, g, b, a := img.At(src.Min.X+x, src.Min.Y+y).RGBA()
		return float64(r), float64(g), float64(b), float64(a)
	}
	r00, g00, b00, a00 := at(sx, sy)
	r10, g10, b10, a10 := at(sx+1, sy)
	r01, g01, b01, a01 := at(sx, sy+1)
	r11, g11, b11, a11 := at(sx+1, sy+1)
	lerp2 := func(v00, v10, v01, v11 float64) uint8 {
		top := v00*(1-tx) + v10*tx
		bot := v01*(1-tx) + v11*tx
		return uint8(uint32(top*(1-ty)+bot*ty) >> 8)
	}
	return color.RGBA{
		R: lerp2(r00, r10, r01, r11),
		G: lerp2(g00, g10, g01, g11),
		B: lerp2(b00, b10, b01, b11),
		A: lerp2(a00, a10, a01, a11),
	}
}

// Crop returns the sub-image of img covering r, copied into a new RGBA.
func Crop(img image.Image, r image.Rectangle) *image.RGBA {
	r = r.Intersect(img.Bounds())
	out := image.NewRGBA(image.Rect(0, 0, r.Dx(), r.Dy()))
	for y := r.Min.Y; y < r.Max.Y; y++ {
		for x := r.Min.X; x < r.Max.X; x++ {
			out.Set(x-r.Min.X, y-r.Min.Y, img.At(x, y))
		}
	}
	return out
}
