package fetch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"strconv"
	"syscall"
)

// ErrorKind classifies an origin fetch failure so the proxy (and tests)
// can branch on failure class instead of string-matching net/http
// errors: a timeout degrades differently from a refused connection, and
// an open breaker should never be retried.
type ErrorKind string

// The failure classes. Timeout, Refused, Reset, DNS, and 5xx Status
// errors are origin-health signals: they count against the origin's
// circuit breaker and are retried for idempotent GETs. BreakerOpen is
// the fetcher refusing to contact a tripped origin at all.
const (
	// KindTimeout is a request or connect deadline expiring.
	KindTimeout ErrorKind = "timeout"
	// KindRefused is a TCP connection refused.
	KindRefused ErrorKind = "refused"
	// KindReset is a connection reset or truncated response mid-transfer.
	KindReset ErrorKind = "reset"
	// KindDNS is a name-resolution failure.
	KindDNS ErrorKind = "dns"
	// KindStatus is a non-2xx origin response (Status carries the code).
	KindStatus ErrorKind = "status"
	// KindBreakerOpen is a request short-circuited by an open per-origin
	// circuit breaker — the origin was never contacted.
	KindBreakerOpen ErrorKind = "breaker_open"
	// KindTransport is any other transport-level failure.
	KindTransport ErrorKind = "transport"
)

// Error is the typed failure every fetch method returns for transport
// and status problems. It wraps the underlying cause (errors.Is/As see
// through it) and records which origin failed, how, and after how many
// attempts.
type Error struct {
	// URL is the request URL that failed.
	URL string
	// Origin is the origin host the breaker tracks.
	Origin string
	// Kind is the failure class.
	Kind ErrorKind
	// Status is the HTTP status code when Kind == KindStatus.
	Status int
	// Attempts is how many times the request was tried (1 = no retries).
	Attempts int
	// Err is the underlying cause, if any.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	detail := ""
	if e.Kind == KindStatus {
		detail = " " + strconv.Itoa(e.Status)
	}
	suffix := ""
	if e.Attempts > 1 {
		suffix = fmt.Sprintf(" after %d attempts", e.Attempts)
	}
	if e.Err != nil {
		return fmt.Sprintf("fetch: %s: %s%s%s: %v", e.URL, e.Kind, detail, suffix, e.Err)
	}
	return fmt.Sprintf("fetch: %s: %s%s%s", e.URL, e.Kind, detail, suffix)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Temporary reports whether the failure class is worth retrying: the
// origin may answer a later attempt (timeouts, refusals, resets, DNS
// hiccups, 5xx and 429 responses). Breaker rejections and other 4xx
// responses are not.
func (e *Error) Temporary() bool {
	switch e.Kind {
	case KindTimeout, KindRefused, KindReset, KindDNS, KindTransport:
		return true
	case KindStatus:
		return e.Status >= 500 || e.Status == 429
	default:
		return false
	}
}

// Retryable reports whether err is a fetch failure a retry could fix.
func Retryable(err error) bool {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Temporary()
	}
	return false
}

// classifyTransport maps a net/http transport error onto its kind.
func classifyTransport(err error) ErrorKind {
	var dnsErr *net.DNSError
	switch {
	case errors.As(err, &dnsErr):
		return KindDNS
	case errors.Is(err, context.DeadlineExceeded), isTimeout(err):
		return KindTimeout
	case errors.Is(err, syscall.ECONNREFUSED):
		return KindRefused
	case errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, io.EOF):
		return KindReset
	default:
		return KindTransport
	}
}

func isTimeout(err error) bool {
	var netErr net.Error
	return errors.As(err, &netErr) && netErr.Timeout()
}

// originOf extracts the breaker key (host) from a raw URL.
func originOf(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil {
		return ""
	}
	return u.Host
}

// transportError wraps a client.Do failure in a typed *Error.
func transportError(rawURL string, attempts int, err error) *Error {
	return &Error{
		URL:      rawURL,
		Origin:   originOf(rawURL),
		Kind:     classifyTransport(err),
		Attempts: attempts,
		Err:      err,
	}
}

// statusError wraps a non-2xx response in a typed *Error that also
// carries the legacy *StatusError, so errors.As finds either form.
func statusError(rawURL string, status, attempts int) *Error {
	return &Error{
		URL:      rawURL,
		Origin:   originOf(rawURL),
		Kind:     KindStatus,
		Status:   status,
		Attempts: attempts,
		Err:      &StatusError{URL: rawURL, Status: status},
	}
}
