package fetch

import (
	"sync"
	"sync/atomic"
	"time"

	"msite/internal/obs"
)

// BreakerState is one circuit-breaker state. The numeric values are the
// msite_breaker_state{origin} gauge encoding: 0 closed, 1 half-open,
// 2 open.
type BreakerState int

// The breaker state machine: Closed (normal serving, counting
// consecutive origin-health failures) trips to Open at the failure
// threshold; Open rejects every request until the cooldown elapses,
// then admits a single probe in HalfOpen; a successful probe closes the
// breaker, a failed one reopens it.
const (
	StateClosed BreakerState = iota
	StateHalfOpen
	StateOpen
)

// String implements fmt.Stringer (and the metric's transition label).
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	default:
		return "unknown"
	}
}

// DefaultBreakerThreshold is how many consecutive origin-health
// failures trip a closed breaker.
const DefaultBreakerThreshold = 5

// DefaultBreakerCooldown is how long an open breaker rejects requests
// before admitting a half-open probe.
const DefaultBreakerCooldown = 5 * time.Second

// BreakerConfig tunes the per-origin circuit breakers of a BreakerSet.
// The zero value uses the defaults.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips a closed
	// breaker (default DefaultBreakerThreshold).
	Threshold int
	// Cooldown is the open → half-open delay (default
	// DefaultBreakerCooldown).
	Cooldown time.Duration
	// Probes is how many consecutive half-open successes close the
	// breaker again (default 1).
	Probes int
	// Clock is the time source (tests inject a fake one). Nil uses
	// time.Now.
	Clock func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = DefaultBreakerThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultBreakerCooldown
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// BreakerSet holds one circuit breaker per origin host. One set is
// shared by every fetcher of a proxy (fetchers are per-session and
// short-lived; origin health is not), so a flapping origin trips once
// for all sessions. All methods are safe for concurrent use.
type BreakerSet struct {
	cfg BreakerConfig
	// reg is atomic, not under mu: breakers read it while holding their
	// own lock, and mixing the set lock in would invert lock order with
	// State (set → breaker).
	reg atomic.Pointer[obs.Registry]

	mu      sync.Mutex
	origins map[string]*Breaker
}

// NewBreakerSet returns an empty set with cfg's thresholds.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), origins: make(map[string]*Breaker)}
}

// SetObs starts exporting per-origin state gauges
// (msite_breaker_state{origin}: 0 closed, 1 half-open, 2 open) and
// transition counters (msite_breaker_transitions_total{origin,to}) on
// reg.
func (s *BreakerSet) SetObs(reg *obs.Registry) {
	s.reg.Store(reg)
	s.mu.Lock()
	breakers := make([]*Breaker, 0, len(s.origins))
	for _, b := range s.origins {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	for _, b := range breakers {
		b.mu.Lock()
		b.emitState()
		b.mu.Unlock()
	}
}

// For returns the breaker for origin, creating it closed on first use.
func (s *BreakerSet) For(origin string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.origins[origin]
	if !ok {
		b = &Breaker{set: s, origin: origin, cfg: s.cfg}
		s.origins[origin] = b
		b.mu.Lock()
		b.emitState()
		b.mu.Unlock()
	}
	return b
}

// State reports the current state of origin's breaker (closed if the
// origin has never been seen).
func (s *BreakerSet) State(origin string) BreakerState {
	s.mu.Lock()
	b, ok := s.origins[origin]
	s.mu.Unlock()
	if !ok {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Surface the pending open → half-open transition without requiring
	// a request to observe it.
	if b.state == StateOpen && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.Cooldown {
		return StateHalfOpen
	}
	return b.state
}

// registry returns the set's obs registry, or nil.
func (s *BreakerSet) registry() *obs.Registry { return s.reg.Load() }

// Breaker is one origin's circuit breaker.
type Breaker struct {
	set    *BreakerSet
	origin string
	cfg    BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
}

// Allow reports whether a request to the origin may proceed. In the
// half-open state only one probe is admitted at a time; callers that
// proceed must call Record with the outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.transition(StateHalfOpen)
		b.probing = true
		return true
	default: // StateHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record feeds one request outcome into the state machine. ok means the
// origin answered (any response, even 4xx, proves liveness); !ok means
// an origin-health failure (timeout, refusal, reset, DNS, 5xx).
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.open()
		}
	case StateHalfOpen:
		b.probing = false
		if !ok {
			b.open()
			return
		}
		b.successes++
		if b.successes >= b.cfg.Probes {
			b.reset()
			b.transition(StateClosed)
		}
	case StateOpen:
		// A straggler from before the trip; the cooldown governs now.
	}
}

// open trips the breaker (caller holds b.mu).
func (b *Breaker) open() {
	b.openedAt = b.cfg.Clock()
	b.reset()
	b.transition(StateOpen)
}

// reset clears the counters (caller holds b.mu).
func (b *Breaker) reset() {
	b.failures = 0
	b.successes = 0
	b.probing = false
}

// transition moves to next and emits metrics (caller holds b.mu).
func (b *Breaker) transition(next BreakerState) {
	if b.state == next {
		return
	}
	b.state = next
	b.emitState()
	if reg := b.set.registry(); reg != nil {
		reg.Counter("msite_breaker_transitions_total",
			"origin", b.origin, "to", next.String()).Inc()
		if next == StateOpen {
			reg.Emit(obs.EventBreakerOpen, b.origin)
		}
	}
}

// emitState publishes the state gauge (caller holds b.mu).
func (b *Breaker) emitState() {
	if reg := b.set.registry(); reg != nil {
		reg.Gauge("msite_breaker_state", "origin", b.origin).Set(float64(b.state))
	}
}
