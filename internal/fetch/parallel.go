package fetch

import (
	"context"
	"sync"
	"sync/atomic"

	"msite/internal/obs"
)

// DefaultWorkers is the FetchAll parallelism used when no explicit
// worker count is configured. Subresource fetches are latency-bound on
// the origin round-trip, not CPU, so the default is deliberately larger
// than typical core counts.
const DefaultWorkers = 8

// Result is the outcome of one URL in a FetchAll batch. Err is per-URL:
// one failed subresource never poisons the rest of the batch.
type Result struct {
	URL  string
	Page *Page
	Err  error
}

// FetchAll downloads every URL concurrently with a bounded worker pool
// and returns results in input order. workers <= 0 uses the Fetcher's
// configured parallelism (WithWorkers, default DefaultWorkers);
// workers == 1 degenerates to the serial loop. The in-flight request
// count is exported as the msite_fetch_concurrent gauge when the
// Fetcher carries an obs registry.
func (f *Fetcher) FetchAll(urls []string, workers int) []Result {
	return f.FetchAllContext(context.Background(), urls, workers)
}

// FetchAllContext is FetchAll bound to a caller deadline/cancellation:
// when ctx ends, in-flight requests abort and queued URLs fail fast with
// ctx's error instead of being attempted — a disconnected client stops
// costing the origin anything.
func (f *Fetcher) FetchAllContext(ctx context.Context, urls []string, workers int) []Result {
	results := make([]Result, len(urls))
	if len(urls) == 0 {
		return results
	}
	if workers <= 0 {
		workers = f.workers
	}
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > len(urls) {
		workers = len(urls)
	}
	if workers == 1 {
		for i, u := range urls {
			if err := ctx.Err(); err != nil {
				results[i] = Result{URL: u, Err: err}
				continue
			}
			page, err := f.GetContext(ctx, u)
			results[i] = Result{URL: u, Page: page, Err: err}
		}
		return results
	}

	inflight := f.inflightGauge()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(urls) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = Result{URL: urls[i], Err: err}
					continue
				}
				if inflight != nil {
					inflight.Add(1)
				}
				page, err := f.GetContext(ctx, urls[i])
				if inflight != nil {
					inflight.Add(-1)
				}
				results[i] = Result{URL: urls[i], Page: page, Err: err}
			}
		}()
	}
	wg.Wait()
	return results
}

func (f *Fetcher) inflightGauge() *obs.Gauge {
	if f.obs == nil {
		return nil
	}
	return f.obs.Gauge("msite_fetch_concurrent")
}
