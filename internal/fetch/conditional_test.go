package fetch

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestGetConditionalRevalidates(t *testing.T) {
	const etag = `"v1"`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", etag)
		w.Header().Set("Last-Modified", "Mon, 02 Jan 2006 15:04:05 GMT")
		_, _ = w.Write([]byte("body"))
	}))
	defer srv.Close()

	f := New(nil)
	page, err := f.GetContext(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("unconditional get: %v", err)
	}
	if page.ETag != etag || page.LastModified == "" {
		t.Fatalf("validators not captured: etag=%q lastModified=%q", page.ETag, page.LastModified)
	}
	if page.NotModified {
		t.Fatal("unconditional 200 flagged NotModified")
	}

	again, err := f.GetConditionalContext(context.Background(), srv.URL, Condition{
		ETag: page.ETag, LastModified: page.LastModified,
	})
	if err != nil {
		t.Fatalf("conditional get: %v", err)
	}
	if !again.NotModified || again.Status != http.StatusNotModified {
		t.Fatalf("want 304 NotModified, got status=%d notModified=%v", again.Status, again.NotModified)
	}
	if len(again.Body) != 0 {
		t.Fatalf("304 carried a body: %q", again.Body)
	}

	// Stale validators get the full body back.
	fresh, err := f.GetConditionalContext(context.Background(), srv.URL, Condition{ETag: `"v0"`})
	if err != nil {
		t.Fatalf("stale conditional get: %v", err)
	}
	if fresh.NotModified || string(fresh.Body) != "body" {
		t.Fatalf("stale conditional: notModified=%v body=%q", fresh.NotModified, fresh.Body)
	}
}
