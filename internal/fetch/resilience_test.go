package fetch

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"msite/internal/obs"
)

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct{ now atomic.Int64 }

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.now.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.now.Add(int64(d)) }
func newFakeClock() *fakeClock               { c := &fakeClock{}; c.now.Store(1); return c }

// breakerEvent is one step of a table-driven state-machine scenario.
type breakerEvent struct {
	// op: "ok" / "fail" record an outcome (asserting Allow first),
	// "reject" asserts Allow returns false, "advance" moves the clock.
	op      string
	advance time.Duration
	want    BreakerState // state after the event
}

func TestBreakerStateTransitions(t *testing.T) {
	const origin = "origin.example"
	cases := []struct {
		name   string
		cfg    BreakerConfig
		events []breakerEvent
	}{
		{
			name: "closed stays closed under threshold",
			cfg:  BreakerConfig{Threshold: 3, Cooldown: time.Second},
			events: []breakerEvent{
				{op: "fail", want: StateClosed},
				{op: "fail", want: StateClosed},
				{op: "ok", want: StateClosed}, // success resets the streak
				{op: "fail", want: StateClosed},
				{op: "fail", want: StateClosed},
			},
		},
		{
			name: "threshold consecutive failures trip open",
			cfg:  BreakerConfig{Threshold: 3, Cooldown: time.Second},
			events: []breakerEvent{
				{op: "fail", want: StateClosed},
				{op: "fail", want: StateClosed},
				{op: "fail", want: StateOpen},
				{op: "reject", want: StateOpen},
			},
		},
		{
			name: "open admits probe after cooldown; success closes",
			cfg:  BreakerConfig{Threshold: 1, Cooldown: time.Second},
			events: []breakerEvent{
				{op: "fail", want: StateOpen},
				{op: "reject", want: StateOpen},
				{op: "advance", advance: time.Second, want: StateHalfOpen},
				{op: "ok", want: StateClosed},
				{op: "ok", want: StateClosed},
			},
		},
		{
			name: "failed probe reopens",
			cfg:  BreakerConfig{Threshold: 1, Cooldown: time.Second},
			events: []breakerEvent{
				{op: "fail", want: StateOpen},
				{op: "advance", advance: time.Second, want: StateHalfOpen},
				{op: "fail", want: StateOpen},
				{op: "reject", want: StateOpen},
				{op: "advance", advance: time.Second, want: StateHalfOpen},
				{op: "ok", want: StateClosed},
			},
		},
		{
			name: "half-open needs the configured probe count",
			cfg:  BreakerConfig{Threshold: 1, Cooldown: time.Second, Probes: 2},
			events: []breakerEvent{
				{op: "fail", want: StateOpen},
				{op: "advance", advance: time.Second, want: StateHalfOpen},
				{op: "ok", want: StateHalfOpen},
				{op: "ok", want: StateClosed},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			tc.cfg.Clock = clock.Now
			set := NewBreakerSet(tc.cfg)
			b := set.For(origin)
			for i, ev := range tc.events {
				switch ev.op {
				case "ok", "fail":
					if !b.Allow() {
						t.Fatalf("event %d (%s): Allow refused", i, ev.op)
					}
					b.Record(ev.op == "ok")
				case "reject":
					if b.Allow() {
						t.Fatalf("event %d: Allow admitted while open", i)
					}
				case "advance":
					clock.Advance(ev.advance)
				default:
					t.Fatalf("bad op %q", ev.op)
				}
				if got := set.State(origin); got != ev.want {
					t.Fatalf("event %d (%s): state = %v, want %v", i, ev.op, got, ev.want)
				}
			}
		})
	}
}

func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	clock := newFakeClock()
	set := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Second, Clock: clock.Now})
	b := set.For("o")
	b.Allow()
	b.Record(false) // trip
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("first probe refused")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.Record(true)
	if got := set.State("o"); got != StateClosed {
		t.Fatalf("state = %v", got)
	}
}

func TestBreakerMetrics(t *testing.T) {
	clock := newFakeClock()
	set := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Second, Clock: clock.Now})
	reg := obs.NewRegistry()
	set.SetObs(reg)
	b := set.For("metrics.example")
	b.Allow()
	b.Record(false)
	snap := reg.Snapshot()
	var state float64 = -1
	for _, g := range snap.Gauges {
		if g.Name == "msite_breaker_state" && labelValueOf(g.Labels, "origin") == "metrics.example" {
			state = g.Value
		}
	}
	if state != float64(StateOpen) {
		t.Fatalf("msite_breaker_state = %v, want %v", state, float64(StateOpen))
	}
	if c, ok := snap.Counter("msite_breaker_transitions_total", "origin", "metrics.example", "to", "open"); !ok || c.Value != 1 {
		t.Fatalf("transition counter = %+v ok=%v", c, ok)
	}
}

func labelValueOf(labels []obs.Label, key string) string {
	for _, l := range labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

func TestGetRetriesTransientFailures(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, "flaky", http.StatusBadGateway)
			return
		}
		_, _ = w.Write([]byte("recovered"))
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	f := New(nil, WithRetries(4), WithBackoff(time.Millisecond, 4*time.Millisecond), WithObs(reg))
	page, err := f.Get(srv.URL)
	if err != nil || string(page.Body) != "recovered" {
		t.Fatalf("get = %v %q", err, page.Body)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("origin hits = %d, want 3", got)
	}
	if c, ok := reg.Snapshot().Counter("msite_fetch_retries_total"); !ok || c.Value != 2 {
		t.Fatalf("retries counter = %+v ok=%v", c, ok)
	}
}

func TestGetDoesNotRetryClientErrors(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer srv.Close()

	f := New(nil, WithRetries(3), WithBackoff(time.Millisecond, time.Millisecond))
	_, err := f.Get(srv.URL)
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindStatus || fe.Status != 404 {
		t.Fatalf("err = %v", err)
	}
	// Legacy StatusError remains reachable for existing callers.
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 404 {
		t.Fatalf("StatusError not wrapped: %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("origin hits = %d, want 1 (no retry on 4xx)", got)
	}
}

func TestErrorClassification(t *testing.T) {
	// Refused: a port with no listener.
	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead := srv.URL
	srv.Close()
	_, err := New(nil).Get(dead)
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("err = %T %v", err, err)
	}
	if fe.Kind != KindRefused {
		t.Fatalf("kind = %q, want refused", fe.Kind)
	}
	if !Retryable(err) {
		t.Fatal("refused should be retryable")
	}

	// Timeout: a handler slower than the client deadline.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	_, err = New(nil, WithTimeout(20*time.Millisecond)).Get(slow.URL)
	if !errors.As(err, &fe) || fe.Kind != KindTimeout {
		t.Fatalf("timeout err = %v", err)
	}
}

func TestBreakerShortCircuitsFetch(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	set := NewBreakerSet(BreakerConfig{Threshold: 2, Cooldown: time.Hour})
	f := New(nil, WithBreaker(set))
	for i := 0; i < 2; i++ {
		if _, err := f.Get(srv.URL); err == nil {
			t.Fatal("expected failure")
		}
	}
	before := hits.Load()
	_, err := f.Get(srv.URL)
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindBreakerOpen {
		t.Fatalf("err = %v, want breaker_open", err)
	}
	if Retryable(err) {
		t.Fatal("breaker_open must not be retryable")
	}
	if hits.Load() != before {
		t.Fatal("open breaker still contacted the origin")
	}
}
