package fetch

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFetchAllOrderAndIsolation checks results come back in input order
// with per-URL error isolation.
func TestFetchAllOrderAndIsolation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			http.Error(w, "no", http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "body:%s", r.URL.Path)
	}))
	defer srv.Close()

	urls := []string{
		srv.URL + "/a",
		srv.URL + "/boom",
		srv.URL + "/b",
		srv.URL + "/c",
	}
	results := New(nil).FetchAll(urls, 3)
	if len(results) != len(urls) {
		t.Fatalf("results = %d, want %d", len(results), len(urls))
	}
	for i, res := range results {
		if res.URL != urls[i] {
			t.Errorf("result %d URL = %q, want %q (order must be preserved)", i, res.URL, urls[i])
		}
	}
	if results[1].Err == nil {
		t.Error("failing URL should carry its error")
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil {
			t.Errorf("result %d: unexpected error %v", i, results[i].Err)
		}
		want := "body:" + urls[i][len(srv.URL):]
		if got := string(results[i].Page.Body); got != want {
			t.Errorf("result %d body = %q, want %q", i, got, want)
		}
	}
}

// TestFetchAllConcurrency proves the pool actually overlaps requests and
// stays within its bound.
func TestFetchAllConcurrency(t *testing.T) {
	var inflight, peak atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	const workers = 4
	urls := make([]string, 12)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/r%d", srv.URL, i)
	}
	start := time.Now()
	results := New(nil).FetchAll(urls, workers)
	elapsed := time.Since(start)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("result %d: %v", i, res.Err)
		}
	}
	if p := peak.Load(); p < 2 {
		t.Errorf("peak concurrency = %d, want >= 2 (requests never overlapped)", p)
	} else if p > workers {
		t.Errorf("peak concurrency = %d, want <= %d", p, workers)
	}
	// 12 requests x 20ms serially is 240ms; four workers should finish
	// in roughly 60ms. Allow generous slack for CI machines.
	if elapsed > 200*time.Millisecond {
		t.Errorf("elapsed = %v, want well under the 240ms serial floor", elapsed)
	}
}

// TestFetchAllSerialFallback covers the workers==1 path and empty input.
func TestFetchAllSerialFallback(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	f := New(nil, WithWorkers(1))
	results := f.FetchAll([]string{srv.URL + "/x", srv.URL + "/y"}, 0)
	for i, res := range results {
		if res.Err != nil || string(res.Page.Body) != "ok" {
			t.Fatalf("result %d = %+v", i, res)
		}
	}
	if got := f.FetchAll(nil, 0); len(got) != 0 {
		t.Fatalf("empty input should yield empty results, got %d", len(got))
	}
}

// TestFetchAllSharedFetcherRace exercises one Fetcher from many
// concurrent batches (the -race guard for the shared client/jar path).
func TestFetchAllSharedFetcherRace(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	f := New(nil)
	urls := []string{srv.URL + "/1", srv.URL + "/2", srv.URL + "/3"}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.FetchAll(urls, 3)
		}()
	}
	wg.Wait()
}
