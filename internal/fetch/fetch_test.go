package fetch

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"msite/internal/html"
	"msite/internal/session"
)

func newSession(t *testing.T) *session.Session {
	t.Helper()
	m, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGetBasic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("User-Agent"); got != "m.Site-proxy/1.0" {
			t.Errorf("ua = %q", got)
		}
		w.Header().Set("Content-Type", "text/html")
		_, _ = w.Write([]byte("<html><body>hi</body></html>"))
	}))
	defer srv.Close()

	f := New(newSession(t))
	page, err := f.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if page.Status != 200 || !strings.Contains(string(page.Body), "hi") {
		t.Fatalf("page = %+v", page)
	}
	if page.Doc().Body() == nil {
		t.Fatal("doc parse failed")
	}
}

func TestGetCustomUserAgent(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(r.Header.Get("User-Agent")))
	}))
	defer srv.Close()
	f := New(nil, WithUserAgent("custom/2"))
	page, err := f.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if string(page.Body) != "custom/2" {
		t.Fatalf("ua = %q", page.Body)
	}
}

func TestCookieJarPersistsAcrossRequests(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			http.SetCookie(w, &http.Cookie{Name: "bbsessionhash", Value: "abc123"})
			_, _ = w.Write([]byte("first"))
			return
		}
		c, err := r.Cookie("bbsessionhash")
		if err != nil || c.Value != "abc123" {
			t.Errorf("cookie not replayed: %v", err)
		}
		_, _ = w.Write([]byte("second"))
	}))
	defer srv.Close()

	f := New(newSession(t))
	if _, err := f.Get(srv.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(srv.URL); err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestSessionsIsolated(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := r.Cookie("id"); err != nil {
			http.SetCookie(w, &http.Cookie{Name: "id", Value: r.URL.Query().Get("u")})
		}
		c, _ := r.Cookie("id")
		if c != nil {
			_, _ = w.Write([]byte(c.Value))
		} else {
			_, _ = w.Write([]byte("none"))
		}
	}))
	defer srv.Close()

	fa := New(newSession(t))
	fb := New(newSession(t))
	_, _ = fa.Get(srv.URL + "/?u=alice")
	_, _ = fb.Get(srv.URL + "/?u=bob")
	pa, _ := fa.Get(srv.URL + "/")
	pb, _ := fb.Get(srv.URL + "/")
	if string(pa.Body) != "alice" || string(pb.Body) != "bob" {
		t.Fatalf("cross-session cookies: %q %q", pa.Body, pb.Body)
	}
}

func TestAuthRequired(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		user, pass, ok := r.BasicAuth()
		if !ok || user != "admin" || pass != "secret" {
			w.Header().Set("WWW-Authenticate", `Basic realm="private"`)
			w.WriteHeader(http.StatusUnauthorized)
			return
		}
		_, _ = w.Write([]byte("private content"))
	}))
	defer srv.Close()

	sess := newSession(t)
	f := New(sess)
	_, err := f.Get(srv.URL)
	var authErr *AuthRequiredError
	if !errors.As(err, &authErr) || authErr.Realm != "private" {
		t.Fatalf("err = %v", err)
	}

	u, _ := url.Parse(srv.URL)
	sess.SetAuth(u.Host, session.Credentials{User: "admin", Pass: "secret"})
	page, err := f.Get(srv.URL)
	if err != nil || string(page.Body) != "private content" {
		t.Fatalf("authed fetch = %v %q", err, page.Body)
	}
}

func TestStatusError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "gone", http.StatusNotFound)
	}))
	defer srv.Close()
	_, err := New(nil).Get(srv.URL)
	var statusErr *StatusError
	if !errors.As(err, &statusErr) || statusErr.Status != 404 {
		t.Fatalf("err = %v", err)
	}
}

func TestPostForm(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := r.ParseForm(); err != nil {
			t.Error(err)
		}
		_, _ = w.Write([]byte(r.FormValue("username")))
	}))
	defer srv.Close()
	page, err := New(newSession(t)).PostForm(srv.URL, url.Values{"username": {"woodworker"}})
	if err != nil || string(page.Body) != "woodworker" {
		t.Fatalf("post = %v %q", err, page.Body)
	}
}

func TestSubresources(t *testing.T) {
	doc := html.Parse(`
	<html><head>
		<link rel="stylesheet" href="/css/main.css">
		<link rel="alternate" href="/feed.xml">
		<script src="/js/a.js"></script>
		<script>inline();</script>
	</head><body>
		<img src="logo.png">
		<img src="logo.png">
		<img src="data:image/gif;base64,R0lGOD">
		<img src="">
		<input type="image" src="btn.png">
		<iframe src="/frame.html"></iframe>
	</body></html>`)
	refs := Subresources(doc, "http://example.com/forum/")
	want := []string{
		"http://example.com/css/main.css",
		"http://example.com/js/a.js",
		"http://example.com/forum/logo.png",
		"http://example.com/forum/btn.png",
		"http://example.com/frame.html",
	}
	if len(refs) != len(want) {
		t.Fatalf("refs = %v", refs)
	}
	for i, w := range want {
		if refs[i] != w {
			t.Fatalf("refs[%d] = %q, want %q", i, refs[i], w)
		}
	}
}

func TestGetWithResources(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`<html><body><img src="/a.png"><img src="/missing.png"><script src="/s.js"></script></body></html>`))
	})
	mux.HandleFunc("/a.png", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write(make([]byte, 1000))
	})
	mux.HandleFunc("/s.js", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write(make([]byte, 500))
	})
	mux.HandleFunc("/missing.png", func(w http.ResponseWriter, _ *http.Request) {
		http.NotFound(w, nil)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	load, err := New(newSession(t)).GetWithResources(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if load.Requests != 4 {
		t.Fatalf("requests = %d", load.Requests)
	}
	if load.Failures != 1 {
		t.Fatalf("failures = %d", load.Failures)
	}
	if load.TotalBytes < 1500+len(load.Page.Body) {
		t.Fatalf("total bytes = %d", load.TotalBytes)
	}
}

func TestSessionAccessor(t *testing.T) {
	if _, err := New(nil).Session(); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
	s := newSession(t)
	got, err := New(s).Session()
	if err != nil || got != s {
		t.Fatal("session accessor wrong")
	}
}

func TestInlineStylesheets(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`<html><head>
<link rel="stylesheet" href="/main.css">
<link rel="stylesheet" href="/missing.css" media="print">
<link rel="icon" href="/favicon.ico">
</head><body>x</body></html>`))
	})
	mux.HandleFunc("/main.css", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/css")
		_, _ = w.Write([]byte(".tborder { color: red }"))
	})
	mux.HandleFunc("/missing.css", func(w http.ResponseWriter, _ *http.Request) {
		http.NotFound(w, nil)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	f := New(nil)
	page, err := f.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	doc := page.Doc()
	n, err := f.InlineStylesheets(doc, page.URL)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("inlined = %d", n)
	}
	out := html.Render(doc)
	if !strings.Contains(out, ".tborder { color: red }") {
		t.Fatalf("sheet not inlined: %s", out)
	}
	if !strings.Contains(out, `data-msite="inlined-css"`) {
		t.Fatal("marker missing")
	}
	// The failed sheet keeps its link; the icon link is untouched.
	if !strings.Contains(out, "missing.css") || !strings.Contains(out, "favicon.ico") {
		t.Fatal("non-inlinable links must remain")
	}
	if strings.Contains(out, `href="/main.css"`) {
		t.Fatal("inlined link should be removed")
	}
}

func TestInlineStylesheetsBadBase(t *testing.T) {
	doc := html.Parse(`<link rel="stylesheet" href="/x.css">`)
	if _, err := New(nil).InlineStylesheets(doc, "://bad"); err == nil {
		t.Fatal("expected error")
	}
}
