// Package fetch downloads origin pages on behalf of a mobile client's
// session (§3.2): the per-session cookie jar authenticates the proxy as
// that user, stored HTTP credentials are replayed on demand, and
// subresources (images, scripts, stylesheets) are discovered and
// downloaded so pre-rendering sees the same bytes the client would.
package fetch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"msite/internal/dom"
	"msite/internal/html"
	"msite/internal/obs"
	"msite/internal/session"
)

// maxBodyBytes bounds one fetched resource (16 MiB).
const maxBodyBytes = 16 << 20

// AuthRequiredError reports an origin 401; the proxy redirects the
// client to its lightweight authentication page (§3.3).
type AuthRequiredError struct {
	URL   string
	Realm string
}

// Error implements error.
func (e *AuthRequiredError) Error() string {
	return fmt.Sprintf("fetch: %s requires HTTP authentication (realm %q)", e.URL, e.Realm)
}

// StatusError reports a non-success origin response.
type StatusError struct {
	URL    string
	Status int
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("fetch: %s returned status %d", e.URL, e.Status)
}

// Page is one fetched origin page.
type Page struct {
	// URL is the final URL after redirects.
	URL string
	// Body is the raw response body.
	Body []byte
	// ContentType is the response content type.
	ContentType string
	// Status is the HTTP status code.
	Status int
	// ETag and LastModified are the response's cache validators, kept so
	// a later refresh can revalidate with a conditional GET instead of
	// re-downloading. Empty when the origin sent none.
	ETag         string
	LastModified string
	// NotModified reports a 304 answer to a conditional GET: Body is
	// empty and the caller's cached copy is still current.
	NotModified bool
}

// Condition carries the validators for a conditional GET: ETag becomes
// If-None-Match, LastModified becomes If-Modified-Since. A zero
// Condition sends an unconditional request.
type Condition struct {
	ETag         string
	LastModified string
}

// Doc tidies and parses the page body into a document.
func (p *Page) Doc() *dom.Node {
	return html.Tidy(string(p.Body))
}

// Fetcher downloads origin resources for one session. All methods are
// safe for concurrent use; FetchAll runs many downloads at once over
// one Fetcher.
type Fetcher struct {
	client    *http.Client
	sess      *session.Session
	userAgent string
	obs       *obs.Registry
	workers   int

	// Resilience knobs: retries is the extra attempts allowed for
	// idempotent GETs on retryable failures (see Error.Temporary),
	// backoffBase/backoffMax bound the jittered exponential backoff
	// between them, and breakers (shared across fetchers) short-circuits
	// requests to origins that keep failing.
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	breakers    *BreakerSet

	// headers are extra request headers applied to every attempt (the
	// cluster peer transport uses this for its bearer token and trace
	// propagation).
	headers http.Header
}

// sessionJar presents the session's *current* cookie jar to the HTTP
// client: ClearCookies swaps the jar mid-session, and concurrent
// FetchAll workers must observe the swap without racing on client.Jar.
type sessionJar struct{ sess *session.Session }

// SetCookies implements http.CookieJar.
func (j sessionJar) SetCookies(u *url.URL, cookies []*http.Cookie) {
	j.sess.CookieJar().SetCookies(u, cookies)
}

// Cookies implements http.CookieJar.
func (j sessionJar) Cookies(u *url.URL) []*http.Cookie {
	return j.sess.CookieJar().Cookies(u)
}

// Option configures a Fetcher.
type Option func(*Fetcher)

// WithUserAgent sets the User-Agent presented to the origin.
func WithUserAgent(ua string) Option {
	return func(f *Fetcher) { f.userAgent = ua }
}

// WithHeader adds a header sent on every request this Fetcher makes
// (bearer tokens, trace propagation). Repeated keys accumulate values.
func WithHeader(key, value string) Option {
	return func(f *Fetcher) {
		if f.headers == nil {
			f.headers = make(http.Header)
		}
		f.headers.Add(key, value)
	}
}

// WithTimeout bounds each request.
func WithTimeout(d time.Duration) Option {
	return func(f *Fetcher) { f.client.Timeout = d }
}

// WithObs records per-request fetch metrics on reg: the
// msite_fetch_seconds latency histogram, msite_fetch_requests_total
// counters labeled by outcome (ok, error, auth, or the HTTP status),
// and the msite_fetch_concurrent in-flight gauge FetchAll maintains.
func WithObs(reg *obs.Registry) Option {
	return func(f *Fetcher) { f.obs = reg }
}

// WithWorkers sets the default FetchAll parallelism (the -fetch-workers
// knob). n <= 0 keeps DefaultWorkers; n == 1 makes batch fetches serial.
func WithWorkers(n int) Option {
	return func(f *Fetcher) {
		if n > 0 {
			f.workers = n
		}
	}
}

// WithRetries allows n extra attempts for idempotent GETs whose failure
// class is retryable (timeouts, refusals, resets, DNS, 5xx/429) — the
// -fetch-retries knob. n <= 0 disables retries (the default). POSTs are
// never retried.
func WithRetries(n int) Option {
	return func(f *Fetcher) {
		if n > 0 {
			f.retries = n
		}
	}
}

// WithBackoff sets the retry backoff schedule: the delay before retry k
// is base·2^(k-1) capped at max, with full jitter (a uniform draw from
// the half-to-full range) so a fleet of waiting fetches does not
// re-arrive in lockstep. Defaults: 100 ms base, 2 s cap.
func WithBackoff(base, max time.Duration) Option {
	return func(f *Fetcher) {
		if base > 0 {
			f.backoffBase = base
		}
		if max > 0 {
			f.backoffMax = max
		}
	}
}

// WithBreaker routes every request through the per-origin circuit
// breakers in set (the -breaker-threshold knob family). The set is
// shared across fetchers — origin health outlives any one session.
func WithBreaker(set *BreakerSet) Option {
	return func(f *Fetcher) { f.breakers = set }
}

// record reports one origin request's outcome and latency.
func (f *Fetcher) record(start time.Time, err error) {
	if f.obs == nil {
		return
	}
	outcome := "ok"
	var fetchErr *Error
	var authErr *AuthRequiredError
	var statusErr *StatusError
	switch {
	case err == nil:
	case errors.As(err, &authErr):
		outcome = "auth"
	case errors.As(err, &fetchErr):
		if fetchErr.Kind == KindStatus {
			outcome = "status_" + strconv.Itoa(fetchErr.Status)
		} else {
			outcome = string(fetchErr.Kind)
		}
	case errors.As(err, &statusErr):
		outcome = "status_" + strconv.Itoa(statusErr.Status)
	default:
		outcome = "error"
	}
	f.obs.Counter("msite_fetch_requests_total", "outcome", outcome).Inc()
	f.obs.Histogram("msite_fetch_seconds").ObserveDuration(time.Since(start))
}

// New returns a Fetcher bound to a session's cookie jar. sess may be nil
// for anonymous (shared-cache) fetches.
func New(sess *session.Session, opts ...Option) *Fetcher {
	client := &http.Client{Timeout: 30 * time.Second}
	if sess != nil {
		client.Jar = sessionJar{sess}
	}
	f := &Fetcher{
		client:      client,
		sess:        sess,
		userAgent:   "m.Site-proxy/1.0",
		workers:     DefaultWorkers,
		backoffBase: 100 * time.Millisecond,
		backoffMax:  2 * time.Second,
	}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// Get fetches one resource, retrying retryable failures up to the
// configured budget (WithRetries) with jittered exponential backoff.
func (f *Fetcher) Get(rawURL string) (*Page, error) {
	return f.GetContext(context.Background(), rawURL)
}

// GetContext is Get bound to a caller deadline/cancellation: each
// attempt is additionally bounded by the fetcher's per-request timeout,
// and backoff sleeps abort when ctx does.
func (f *Fetcher) GetContext(ctx context.Context, rawURL string) (*Page, error) {
	start := time.Now()
	page, err := f.getRetry(ctx, rawURL, Condition{})
	f.record(start, err)
	return page, err
}

// GetConditionalContext fetches rawURL with the given validators
// attached. When the origin answers 304 Not Modified the returned page
// has NotModified set and an empty body — the caller keeps its cached
// copy. Retry and breaker behavior match GetContext.
func (f *Fetcher) GetConditionalContext(ctx context.Context, rawURL string, cond Condition) (*Page, error) {
	start := time.Now()
	page, err := f.getRetry(ctx, rawURL, cond)
	f.record(start, err)
	return page, err
}

// getRetry runs the bounded retry loop around single attempts. Only
// failures classified retryable (Error.Temporary) consume the budget;
// auth challenges, 4xx statuses, and breaker rejections return
// immediately.
func (f *Fetcher) getRetry(ctx context.Context, rawURL string, cond Condition) (*Page, error) {
	var page *Page
	var err error
	attempts := 0
	for {
		attempts++
		page, err = f.attempt(ctx, rawURL, cond)
		if err == nil || attempts > f.retries || !Retryable(err) {
			break
		}
		if f.obs != nil {
			f.obs.Counter("msite_fetch_retries_total").Inc()
		}
		if sleepErr := sleepCtx(ctx, f.backoff(attempts)); sleepErr != nil {
			break
		}
	}
	var fe *Error
	if errors.As(err, &fe) {
		fe.Attempts = attempts
	}
	return page, err
}

// backoff returns the jittered delay before the retry following failed
// attempt n (1-based): base·2^(n-1) capped at max, drawn uniformly from
// [d/2, d].
func (f *Fetcher) backoff(n int) time.Duration {
	d := f.backoffBase
	for i := 1; i < n && d < f.backoffMax; i++ {
		d *= 2
	}
	if d > f.backoffMax {
		d = f.backoffMax
	}
	if d <= 0 {
		return 0
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// attempt runs one GET through the origin's circuit breaker. Outcomes
// feed the breaker: any origin response (even 4xx) proves liveness;
// transport failures and 5xx count against it.
func (f *Fetcher) attempt(ctx context.Context, rawURL string, cond Condition) (*Page, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, fmt.Errorf("fetch: building request for %s: %w", rawURL, err)
	}
	req.Header.Set("User-Agent", f.userAgent)
	for k, vs := range f.headers {
		req.Header[k] = append(req.Header[k], vs...)
	}
	if cond.ETag != "" {
		req.Header.Set("If-None-Match", cond.ETag)
	}
	if cond.LastModified != "" {
		req.Header.Set("If-Modified-Since", cond.LastModified)
	}
	if f.sess != nil {
		if creds, ok := f.sess.Auth(req.URL.Host); ok {
			req.SetBasicAuth(creds.User, creds.Pass)
		}
	}
	var br *Breaker
	if f.breakers != nil {
		br = f.breakers.For(req.URL.Host)
		if !br.Allow() {
			return nil, &Error{URL: rawURL, Origin: req.URL.Host, Kind: KindBreakerOpen, Attempts: 1}
		}
	}
	resp, err := f.client.Do(req)
	if err != nil {
		if br != nil {
			br.Record(false)
		}
		return nil, transportError(rawURL, 1, err)
	}
	defer func() { _ = resp.Body.Close() }()

	if resp.StatusCode == http.StatusUnauthorized {
		if br != nil {
			br.Record(true)
		}
		realm := parseRealm(resp.Header.Get("WWW-Authenticate"))
		return nil, &AuthRequiredError{URL: rawURL, Realm: realm}
	}
	if resp.StatusCode == http.StatusNotModified && (cond.ETag != "" || cond.LastModified != "") {
		// The validators still hold: the origin proved liveness without
		// shipping the body.
		if br != nil {
			br.Record(true)
		}
		return &Page{
			URL:          resp.Request.URL.String(),
			Status:       resp.StatusCode,
			ETag:         resp.Header.Get("ETag"),
			LastModified: resp.Header.Get("Last-Modified"),
			NotModified:  true,
		}, nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		if br != nil {
			br.Record(false)
		}
		return nil, &Error{
			URL: rawURL, Origin: req.URL.Host, Kind: KindReset, Attempts: 1,
			Err: fmt.Errorf("fetch: reading %s: %w", rawURL, err),
		}
	}
	page := &Page{
		URL:          resp.Request.URL.String(),
		Body:         body,
		ContentType:  resp.Header.Get("Content-Type"),
		Status:       resp.StatusCode,
		ETag:         resp.Header.Get("ETag"),
		LastModified: resp.Header.Get("Last-Modified"),
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		if br != nil {
			br.Record(resp.StatusCode < 500)
		}
		return page, statusError(rawURL, resp.StatusCode, 1)
	}
	if br != nil {
		br.Record(true)
	}
	return page, nil
}

// PostForm submits a form to the origin (used to marshal login
// interactions through the proxy).
func (f *Fetcher) PostForm(rawURL string, form url.Values) (*Page, error) {
	return f.PostFormContext(context.Background(), rawURL, form)
}

// PostFormContext is PostForm bound to a caller deadline/cancellation.
func (f *Fetcher) PostFormContext(ctx context.Context, rawURL string, form url.Values) (*Page, error) {
	start := time.Now()
	page, err := f.postForm(ctx, rawURL, form)
	f.record(start, err)
	return page, err
}

// postForm never retries (form submission is not idempotent) but still
// consults the origin's breaker and returns typed failures.
func (f *Fetcher) postForm(ctx context.Context, rawURL string, form url.Values) (*Page, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rawURL, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, fmt.Errorf("fetch: building POST for %s: %w", rawURL, err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("User-Agent", f.userAgent)
	for k, vs := range f.headers {
		req.Header[k] = append(req.Header[k], vs...)
	}
	var br *Breaker
	if f.breakers != nil {
		br = f.breakers.For(req.URL.Host)
		if !br.Allow() {
			return nil, &Error{URL: rawURL, Origin: req.URL.Host, Kind: KindBreakerOpen, Attempts: 1}
		}
	}
	resp, err := f.client.Do(req)
	if err != nil {
		if br != nil {
			br.Record(false)
		}
		return nil, transportError(rawURL, 1, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		if br != nil {
			br.Record(false)
		}
		return nil, &Error{
			URL: rawURL, Origin: req.URL.Host, Kind: KindReset, Attempts: 1,
			Err: fmt.Errorf("fetch: reading %s: %w", rawURL, err),
		}
	}
	page := &Page{
		URL:         resp.Request.URL.String(),
		Body:        body,
		ContentType: resp.Header.Get("Content-Type"),
		Status:      resp.StatusCode,
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		if br != nil {
			br.Record(resp.StatusCode < 500)
		}
		return page, statusError(rawURL, resp.StatusCode, 1)
	}
	if br != nil {
		br.Record(true)
	}
	return page, nil
}

func parseRealm(header string) string {
	const marker = `realm="`
	i := strings.Index(header, marker)
	if i < 0 {
		return ""
	}
	rest := header[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return rest
	}
	return rest[:j]
}

// Subresources lists the absolute URLs of the images, external scripts,
// and stylesheets a document references.
func Subresources(doc *dom.Node, base string) []string {
	baseURL, err := url.Parse(base)
	if err != nil {
		baseURL = nil
	}
	var out []string
	seen := make(map[string]bool)
	add := func(ref string) {
		if ref == "" || strings.HasPrefix(ref, "data:") ||
			strings.HasPrefix(ref, "javascript:") || strings.HasPrefix(ref, "#") {
			return
		}
		abs := ref
		if baseURL != nil {
			if u, err := baseURL.Parse(ref); err == nil {
				abs = u.String()
			}
		}
		if !seen[abs] {
			seen[abs] = true
			out = append(out, abs)
		}
	}
	doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		switch n.Tag {
		case "img", "iframe", "embed":
			add(n.AttrOr("src", ""))
		case "script":
			add(n.AttrOr("src", ""))
		case "link":
			rel := strings.ToLower(n.AttrOr("rel", ""))
			if strings.Contains(rel, "stylesheet") || strings.Contains(rel, "icon") {
				add(n.AttrOr("href", ""))
			}
		case "input":
			if strings.EqualFold(n.AttrOr("type", ""), "image") {
				add(n.AttrOr("src", ""))
			}
		}
		return true
	})
	return out
}

// PageLoad is the result of fetching a page plus all of its
// subresources — the byte/request accounting Table 1 is built from.
type PageLoad struct {
	Page *Page
	// Resources maps each subresource URL to its bytes (nil on fetch
	// failure: a broken image does not fail the page).
	Resources map[string][]byte
	// TotalBytes is page + all fetched subresources.
	TotalBytes int
	// Requests is 1 + number of subresource fetch attempts.
	Requests int
	// Failures counts subresources that could not be fetched.
	Failures int
}

// GetWithResources fetches a page and everything it references.
func (f *Fetcher) GetWithResources(rawURL string) (*PageLoad, error) {
	page, err := f.Get(rawURL)
	if err != nil {
		return nil, err
	}
	doc := page.Doc()
	refs := Subresources(doc, page.URL)
	load := &PageLoad{
		Page:       page,
		Resources:  make(map[string][]byte, len(refs)),
		TotalBytes: len(page.Body),
		Requests:   1 + len(refs),
	}
	for _, res := range f.FetchAll(refs, 0) {
		if res.Err != nil {
			load.Failures++
			load.Resources[res.URL] = nil
			continue
		}
		load.Resources[res.URL] = res.Page.Body
		load.TotalBytes += len(res.Page.Body)
	}
	return load, nil
}

// InlineStylesheets replaces every <link rel="stylesheet"> in doc with a
// <style> element containing the fetched sheet, so the server-side
// renderer (and every generated subpage) sees the site's real styling
// and the mobile client is spared the extra request. Sheets that fail to
// fetch are left as links. Returns how many sheets were inlined.
func (f *Fetcher) InlineStylesheets(doc *dom.Node, base string) (int, error) {
	return f.InlineStylesheetsContext(context.Background(), doc, base)
}

// InlineStylesheetsContext is InlineStylesheets bound to a caller
// deadline/cancellation (the sheet downloads abort when ctx ends).
func (f *Fetcher) InlineStylesheetsContext(ctx context.Context, doc *dom.Node, base string) (int, error) {
	baseURL, err := url.Parse(base)
	if err != nil {
		return 0, fmt.Errorf("fetch: bad base URL %q: %w", base, err)
	}
	// Discover every sheet first, download them concurrently, then
	// mutate the DOM serially (dom.Node is not safe for concurrent
	// modification).
	var links []*dom.Node
	var sheetURLs []string
	for _, link := range doc.Elements("link") {
		rel := strings.ToLower(link.AttrOr("rel", ""))
		if !strings.Contains(rel, "stylesheet") {
			continue
		}
		href := link.AttrOr("href", "")
		if href == "" {
			continue
		}
		abs, err := baseURL.Parse(href)
		if err != nil {
			continue
		}
		links = append(links, link)
		sheetURLs = append(sheetURLs, abs.String())
	}
	inlined := 0
	for i, res := range f.FetchAllContext(ctx, sheetURLs, 0) {
		link := links[i]
		if res.Err != nil {
			continue // degrade: keep the link
		}
		page := res.Page
		style := dom.NewElement("style")
		style.SetAttr("type", "text/css")
		style.SetAttr("data-msite", "inlined-css")
		if media := link.AttrOr("media", ""); media != "" {
			style.SetAttr("media", media)
		}
		style.AppendChild(dom.NewText(string(page.Body)))
		link.ReplaceWith(style)
		inlined++
	}
	return inlined, nil
}

// ErrNoSession is returned by helpers that need a session-bound fetcher.
var ErrNoSession = errors.New("fetch: fetcher has no session")

// Session returns the bound session.
func (f *Fetcher) Session() (*session.Session, error) {
	if f.sess == nil {
		return nil, ErrNoSession
	}
	return f.sess, nil
}
