package xpath

import (
	"testing"

	"msite/internal/dom"
	"msite/internal/html"
)

const doc = `
<html><body>
  <div id="header"><img src="logo.png" alt="logo"></div>
  <div id="content">
    <table class="forums">
      <tr><td>General</td><td>10</td></tr>
      <tr><td>Projects</td><td>20</td></tr>
      <tr><td>Classifieds</td><td>30</td></tr>
    </table>
    <p>para one</p>
    <p class="hint">para two</p>
  </div>
  <div id="footer">foot</div>
</body></html>`

func root(t *testing.T) *dom.Node {
	t.Helper()
	return html.Parse(doc)
}

func count(t *testing.T, expr string) int {
	t.Helper()
	e, err := Compile(expr)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	return len(e.Select(root(t)))
}

func TestAbsoluteChildPath(t *testing.T) {
	if got := count(t, "/html/body/div"); got != 3 {
		t.Fatalf("div count = %d", got)
	}
	if got := count(t, "/html/body/div/table/tr"); got != 3 {
		t.Fatalf("tr count = %d", got)
	}
	if got := count(t, "/html/head"); got != 0 {
		t.Fatalf("head = %d", got)
	}
}

func TestDescendantAxis(t *testing.T) {
	if got := count(t, "//td"); got != 6 {
		t.Fatalf("td = %d", got)
	}
	if got := count(t, "//table//td"); got != 6 {
		t.Fatalf("table//td = %d", got)
	}
	if got := count(t, "//div//p"); got != 2 {
		t.Fatalf("div//p = %d", got)
	}
}

func TestWildcard(t *testing.T) {
	if got := count(t, "/html/body/*"); got != 3 {
		t.Fatalf("* = %d", got)
	}
	if got := count(t, "//tr/*"); got != 6 {
		t.Fatalf("tr/* = %d", got)
	}
}

func TestPositionPredicate(t *testing.T) {
	r := root(t)
	e := MustCompile("//tr[2]/td[1]")
	nodes := e.Select(r)
	if len(nodes) != 1 || nodes[0].Text() != "Projects" {
		t.Fatalf("tr[2]/td[1] = %v", nodes)
	}
	e = MustCompile("/html/body/div[3]")
	nodes = e.Select(r)
	if len(nodes) != 1 || nodes[0].ID() != "footer" {
		t.Fatalf("div[3] = %v", nodes)
	}
	if got := count(t, "/html/body/div[9]"); got != 0 {
		t.Fatalf("out of range = %d", got)
	}
}

func TestLastPredicate(t *testing.T) {
	r := root(t)
	nodes := MustCompile("//tr[last()]").Select(r)
	if len(nodes) != 1 || nodes[0].FirstChild.Text() != "Classifieds" {
		t.Fatalf("last tr wrong")
	}
}

func TestPositionGroupsByParent(t *testing.T) {
	r := root(t)
	// td[1] should yield the first cell of each row: 3 nodes.
	nodes := MustCompile("//td[1]").Select(r)
	if len(nodes) != 3 {
		t.Fatalf("td[1] groups = %d, want 3", len(nodes))
	}
}

func TestAttributePredicates(t *testing.T) {
	if got := count(t, "//div[@id]"); got != 3 {
		t.Fatalf("div[@id] = %d", got)
	}
	r := root(t)
	nodes := MustCompile(`//div[@id="content"]`).Select(r)
	if len(nodes) != 1 || nodes[0].ID() != "content" {
		t.Fatal("attr equals wrong")
	}
	nodes = MustCompile(`//p[@class='hint']`).Select(r)
	if len(nodes) != 1 || nodes[0].Text() != "para two" {
		t.Fatal("quoted attr value wrong")
	}
	if got := count(t, `//div[@id="nope"]`); got != 0 {
		t.Fatalf("no-match = %d", got)
	}
}

func TestChainedPredicates(t *testing.T) {
	r := root(t)
	nodes := MustCompile(`//div[@id="content"]/p[2]`).Select(r)
	if len(nodes) != 1 || !nodes[0].HasClass("hint") {
		t.Fatal("chained predicate wrong")
	}
}

func TestTextNodeTest(t *testing.T) {
	r := root(t)
	nodes := MustCompile(`//p/text()`).Select(r)
	if len(nodes) != 2 {
		t.Fatalf("text() = %d", len(nodes))
	}
	if nodes[0].Type != dom.TextNode {
		t.Fatal("not a text node")
	}
}

func TestRelativePath(t *testing.T) {
	r := root(t)
	content := r.ElementByID("content")
	nodes := MustCompile("table/tr").Select(content)
	if len(nodes) != 3 {
		t.Fatalf("relative = %d", len(nodes))
	}
	// Absolute path ignores the context node.
	nodes = MustCompile("/html/body/div[1]").Select(content)
	if len(nodes) != 1 || nodes[0].ID() != "header" {
		t.Fatal("absolute from context wrong")
	}
}

func TestSelectFirst(t *testing.T) {
	r := root(t)
	n := MustCompile("//p").SelectFirst(r)
	if n == nil || n.Text() != "para one" {
		t.Fatal("SelectFirst wrong")
	}
	if MustCompile("//video").SelectFirst(r) != nil {
		t.Fatal("no-match should be nil")
	}
}

func TestRoundTripWithDomPath(t *testing.T) {
	r := root(t)
	want := r.ElementByID("content").Elements("p")[1]
	path := want.Path()
	e, err := Compile(path)
	if err != nil {
		t.Fatalf("compile emitted path %q: %v", path, err)
	}
	nodes := e.Select(r)
	if len(nodes) != 1 || nodes[0] != want {
		t.Fatalf("path %q did not round-trip: %v", path, nodes)
	}
}

func TestRoundTripEveryElement(t *testing.T) {
	r := root(t)
	for _, el := range r.Elements("*") {
		path := el.Path()
		nodes := MustCompile(path).Select(r)
		if len(nodes) != 1 || nodes[0] != el {
			t.Fatalf("path %q matched %d nodes", path, len(nodes))
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{"", "  ", "/", "//", "a/", "a[", "a[]", "a[0]", "a[@]", "a[foo()]", "a b"}
	for _, s := range bad {
		if _, err := Compile(s); err == nil {
			t.Errorf("Compile(%q) should fail", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	e := MustCompile(`//div[@id="x"]/p[1]`)
	if e.String() != `//div[@id="x"]/p[1]` {
		t.Fatalf("String = %q", e.String())
	}
}
