package xpath

import (
	"testing"

	"msite/internal/html"
)

// FuzzCompile: expressions either fail to compile or evaluate without
// panicking.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"/html/body/div[2]/p[1]", "//td[@class='x']", "//a[last()]",
		"table/tr", "//*", "//p/text()", "", "//", "a[", "a[@]", "/x[99]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc := html.Parse(`<html><body><div><p>a</p><p>b</p></div><table><tr><td class="x">c</td></tr></table></body></html>`)
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := Compile(src)
		if err != nil {
			return
		}
		_ = expr.Select(doc)
		if expr.String() == "" {
			t.Fatal("compiled expression with empty text")
		}
	})
}
