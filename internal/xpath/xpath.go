// Package xpath implements the XPath 1.0 subset m.Site uses for object
// identification (§3.2): absolute and relative location paths with child
// and descendant axes, wildcards, positional predicates, and attribute
// tests. It is the DOM-based identification mechanism shared with systems
// like PageTailor that the paper cites, and it consumes the paths emitted
// by dom.Node.Path.
package xpath

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"msite/internal/dom"
)

// Expr is a compiled XPath expression.
type Expr struct {
	steps []step
	raw   string
	// absolute paths start from the document root regardless of the
	// context node.
	absolute bool
}

type axis int

const (
	axisChild axis = iota + 1
	axisDescendant
)

type step struct {
	axis axis
	// tag is the node test: an element name, "*" for any element, or
	// "text()" handled via isText.
	tag    string
	isText bool
	preds  []predicate
}

type predicate struct {
	kind predKind
	// position for kindPosition; attribute key/val for attribute kinds.
	pos int
	key string
	val string
}

type predKind int

const (
	kindPosition predKind = iota + 1
	kindLast
	kindHasAttr
	kindAttrEquals
)

// String returns the original expression text.
func (e *Expr) String() string { return e.raw }

// Compile parses an XPath expression.
func Compile(src string) (*Expr, error) {
	raw := strings.TrimSpace(src)
	if raw == "" {
		return nil, errors.New("xpath: empty expression")
	}
	e := &Expr{raw: raw}
	rest := raw
	if strings.HasPrefix(rest, "//") {
		e.absolute = true
		rest = rest[2:]
		st, remain, err := parseStep(rest, axisDescendant)
		if err != nil {
			return nil, fmt.Errorf("xpath: %q: %w", raw, err)
		}
		e.steps = append(e.steps, st)
		rest = remain
	} else if strings.HasPrefix(rest, "/") {
		e.absolute = true
		rest = rest[1:]
		st, remain, err := parseStep(rest, axisChild)
		if err != nil {
			return nil, fmt.Errorf("xpath: %q: %w", raw, err)
		}
		e.steps = append(e.steps, st)
		rest = remain
	} else {
		st, remain, err := parseStep(rest, axisChild)
		if err != nil {
			return nil, fmt.Errorf("xpath: %q: %w", raw, err)
		}
		e.steps = append(e.steps, st)
		rest = remain
	}
	for rest != "" {
		var ax axis
		switch {
		case strings.HasPrefix(rest, "//"):
			ax = axisDescendant
			rest = rest[2:]
		case strings.HasPrefix(rest, "/"):
			ax = axisChild
			rest = rest[1:]
		default:
			return nil, fmt.Errorf("xpath: %q: trailing garbage %q", raw, rest)
		}
		st, remain, err := parseStep(rest, ax)
		if err != nil {
			return nil, fmt.Errorf("xpath: %q: %w", raw, err)
		}
		e.steps = append(e.steps, st)
		rest = remain
	}
	return e, nil
}

// MustCompile is Compile for known-good expressions; it panics on error.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

func parseStep(src string, ax axis) (step, string, error) {
	st := step{axis: ax}
	i := 0
	for i < len(src) && src[i] != '/' && src[i] != '[' {
		i++
	}
	name := strings.TrimSpace(src[:i])
	if name == "" {
		return st, "", errors.New("empty step")
	}
	if name == "text()" {
		st.isText = true
	} else {
		if name != "*" && !isName(name) {
			return st, "", fmt.Errorf("bad node test %q", name)
		}
		st.tag = strings.ToLower(name)
	}
	rest := src[i:]
	for strings.HasPrefix(rest, "[") {
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return st, "", errors.New("unterminated predicate")
		}
		pred, err := parsePredicate(strings.TrimSpace(rest[1:end]))
		if err != nil {
			return st, "", err
		}
		st.preds = append(st.preds, pred)
		rest = rest[end+1:]
	}
	return st, rest, nil
}

// isName reports whether s is a plain element name (letters, digits,
// hyphens, underscores, colons).
func isName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '-', c == '_', c == ':':
		default:
			return false
		}
	}
	return true
}

func parsePredicate(src string) (predicate, error) {
	if src == "" {
		return predicate{}, errors.New("empty predicate")
	}
	if src == "last()" {
		return predicate{kind: kindLast}, nil
	}
	if n, err := strconv.Atoi(src); err == nil {
		if n < 1 {
			return predicate{}, fmt.Errorf("position %d out of range", n)
		}
		return predicate{kind: kindPosition, pos: n}, nil
	}
	if strings.HasPrefix(src, "@") {
		body := src[1:]
		if eq := strings.IndexByte(body, '='); eq >= 0 {
			key := strings.ToLower(strings.TrimSpace(body[:eq]))
			val := strings.TrimSpace(body[eq+1:])
			val = strings.Trim(val, `"'`)
			if key == "" {
				return predicate{}, errors.New("empty attribute name")
			}
			return predicate{kind: kindAttrEquals, key: key, val: val}, nil
		}
		key := strings.ToLower(strings.TrimSpace(body))
		if key == "" {
			return predicate{}, errors.New("empty attribute name")
		}
		return predicate{kind: kindHasAttr, key: key}, nil
	}
	return predicate{}, fmt.Errorf("unsupported predicate %q", src)
}

// Select returns the nodes matched by the expression, evaluated with
// context as the context node (the document root for absolute paths).
func (e *Expr) Select(context *dom.Node) []*dom.Node {
	start := context
	if e.absolute {
		start = context.Root()
	}
	current := []*dom.Node{start}
	for _, st := range e.steps {
		var next []*dom.Node
		for _, n := range current {
			next = append(next, applyStep(st, n)...)
		}
		current = dedupe(next)
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

// SelectFirst returns the first matched node, or nil.
func (e *Expr) SelectFirst(context *dom.Node) *dom.Node {
	nodes := e.Select(context)
	if len(nodes) == 0 {
		return nil
	}
	return nodes[0]
}

func applyStep(st step, ctx *dom.Node) []*dom.Node {
	var candidates []*dom.Node
	switch st.axis {
	case axisChild:
		for c := ctx.FirstChild; c != nil; c = c.NextSibling {
			if nodeTest(st, c) {
				candidates = append(candidates, c)
			}
		}
	case axisDescendant:
		ctx.Walk(func(n *dom.Node) bool {
			if n != ctx && nodeTest(st, n) {
				candidates = append(candidates, n)
			}
			return true
		})
	}
	for _, pred := range st.preds {
		candidates = filterPred(pred, candidates, st)
	}
	return candidates
}

func nodeTest(st step, n *dom.Node) bool {
	if st.isText {
		return n.Type == dom.TextNode
	}
	if n.Type != dom.ElementNode {
		return false
	}
	return st.tag == "*" || n.Tag == st.tag
}

// filterPred applies one predicate. Positional predicates are evaluated
// per the XPath child-axis convention: position counts siblings matching
// the same node test under the same parent, which matches the paths
// dom.Node.Path produces.
func filterPred(pred predicate, nodes []*dom.Node, st step) []*dom.Node {
	switch pred.kind {
	case kindHasAttr:
		var out []*dom.Node
		for _, n := range nodes {
			if n.HasAttr(pred.key) {
				out = append(out, n)
			}
		}
		return out
	case kindAttrEquals:
		var out []*dom.Node
		for _, n := range nodes {
			if v, ok := n.Attr(pred.key); ok && v == pred.val {
				out = append(out, n)
			}
		}
		return out
	case kindPosition, kindLast:
		// Group by parent, then index within each group.
		groups := make(map[*dom.Node][]*dom.Node)
		var parents []*dom.Node
		for _, n := range nodes {
			if _, seen := groups[n.Parent]; !seen {
				parents = append(parents, n.Parent)
			}
			groups[n.Parent] = append(groups[n.Parent], n)
		}
		var out []*dom.Node
		for _, p := range parents {
			group := groups[p]
			if pred.kind == kindLast {
				out = append(out, group[len(group)-1])
				continue
			}
			if pred.pos <= len(group) {
				out = append(out, group[pred.pos-1])
			}
		}
		return out
	}
	return nodes
}

func dedupe(nodes []*dom.Node) []*dom.Node {
	seen := make(map[*dom.Node]bool, len(nodes))
	out := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
