// Package progressive renders the entry snapshot as a temporal fidelity
// ladder: a coarse, heavily down-scaled JPEG the proxy can serve the
// moment rasterization finishes, followed by the full-fidelity encode as
// an upgrade artifact. It applies the paper's fidelity-reduction
// attribute (§3.3 "Image fidelity") along the time axis — the client
// paints *something* at coarse-JPEG cost and trades up when the
// expensive encode completes — and it interleaves the down-scale work
// with band-parallel painting via raster.StreamPaint, so the coarse
// artifact costs almost nothing beyond the paint itself.
package progressive

import (
	"fmt"
	"image"
	"image/color"

	"msite/internal/imaging"
	"msite/internal/layout"
	"msite/internal/raster"
)

// DefaultCoarseScale is the coarse snapshot's linear scale relative to
// the full-fidelity output: a quarter-scale frame is 1/16th the pixels,
// which with DefaultCoarseQuality lands the coarse artifact around 2–5%
// of the full PNG's bytes.
const DefaultCoarseScale = 0.25

// DefaultCoarseQuality is the coarse snapshot's JPEG quality.
const DefaultCoarseQuality = 35

// Artifact is one encoded snapshot rung.
type Artifact struct {
	// Data is the encoded image.
	Data []byte
	// MIME is its content type.
	MIME string
	// Width and Height are the encoded pixel dimensions.
	Width, Height int
}

// Config tunes a progressive render.
type Config struct {
	// Raster configures the painting pass (images, workers, antialias).
	Raster raster.Options
	// Fidelity selects the full-fidelity rung's encoding.
	Fidelity imaging.Fidelity
	// Scale is the snapshot scale factor applied to the full-fidelity
	// output (the spec's snapshot.scale); 0 or negative means 1.
	Scale float64
	// CoarseScale is the coarse rung's additional linear down-scale
	// relative to the scaled output (default DefaultCoarseScale).
	CoarseScale float64
	// CoarseQuality is the coarse rung's JPEG quality (default
	// DefaultCoarseQuality).
	CoarseQuality int
	// OnCoarse, when non-nil, receives the coarse artifact as soon as it
	// is encoded — before the full-fidelity scale+encode begins. The
	// serving path uses this to publish the low-quality snapshot while
	// the PNG encode is still running.
	OnCoarse func(Artifact)
}

// Result carries both rungs of one progressive render.
type Result struct {
	// Coarse is the low-quality first rung.
	Coarse Artifact
	// Full is the full-fidelity upgrade; its bytes are identical to the
	// one-shot (non-progressive) encode of the same layout.
	Full Artifact
}

// Render paints res band-by-band, accumulating the coarse frame from
// each band as it is delivered (the down-scale hides behind painting),
// encodes and publishes the coarse rung, and then produces the
// full-fidelity artifact exactly as the one-shot path would:
// Encode(ScaleFactor(Paint(res), scale), fidelity). The full rung is
// byte-identical to that one-shot encode — the streaming pipeline
// changes when bytes exist, never which bytes.
func Render(res *layout.Result, cfg Config) (*Result, error) {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	coarseScale := cfg.CoarseScale
	if coarseScale <= 0 || coarseScale > 1 {
		coarseScale = DefaultCoarseScale
	}
	quality := cfg.CoarseQuality
	if quality <= 0 {
		quality = DefaultCoarseQuality
	}

	// Frame geometry mirrors raster.Paint's: the accumulator needs the
	// final frame size before the first band arrives.
	fw, fh := frameSize(res, cfg.Raster)
	outW, outH := int(float64(fw)*scale), int(float64(fh)*scale)
	if outW < 1 {
		outW = 1
	}
	if outH < 1 {
		outH = 1
	}
	cw, ch := int(float64(outW)*coarseScale), int(float64(outH)*coarseScale)
	acc := newCoarseAccum(fw, fh, cw, ch)

	frame := raster.StreamPaint(res, cfg.Raster, acc.addBand)
	coarseImg := acc.finish()
	coarseData, err := imaging.EncodeJPEG(coarseImg, quality)
	imaging.PutRGBA(coarseImg)
	if err != nil {
		raster.Release(frame)
		return nil, fmt.Errorf("progressive: coarse encode: %w", err)
	}
	out := &Result{Coarse: Artifact{
		Data:   coarseData,
		MIME:   "image/jpeg",
		Width:  acc.w,
		Height: acc.h,
	}}
	if cfg.OnCoarse != nil {
		cfg.OnCoarse(out.Coarse)
	}

	scaled := imaging.ScaleFactor(frame, scale)
	raster.Release(frame)
	fullData, err := imaging.Encode(scaled, cfg.Fidelity)
	fb := scaled.Bounds()
	imaging.PutRGBA(scaled)
	if err != nil {
		return nil, fmt.Errorf("progressive: full encode: %w", err)
	}
	out.Full = Artifact{
		Data:   fullData,
		MIME:   cfg.Fidelity.MIME(),
		Width:  fb.Dx(),
		Height: fb.Dy(),
	}
	return out, nil
}

// frameSize reproduces raster.Paint's canvas sizing so the accumulator
// can be dimensioned before painting starts.
func frameSize(res *layout.Result, opts raster.Options) (w, h int) {
	h = res.Height
	if h < opts.MinHeight {
		h = opts.MinHeight
	}
	if h < 1 {
		h = 1
	}
	w = res.Width
	if w < 1 {
		w = 1
	}
	return w, h
}

// coarseAccum box-averages full-frame scanlines into the coarse frame
// incrementally: each delivered band's rows fold into the coarse row
// they map to, so by the time the last band lands the coarse frame needs
// only the (cheap, small) JPEG encode. The arithmetic matches
// imaging.Scale's box filter.
type coarseAccum struct {
	srcW, srcH int
	w, h       int
	out        *image.RGBA
	// sums holds the in-progress channel sums for the current coarse
	// row: 4 channels × w columns.
	sums []uint64
	// curDy is the coarse row being accumulated; nextSrcY is the next
	// full-frame row expected (bands arrive in order, so rows do too);
	// rowsIn counts the source rows folded into curDy so far.
	curDy, nextSrcY, rowsIn int
	// colRange caches each coarse column's source-column span.
	colX0, colX1 []int
}

func newCoarseAccum(srcW, srcH, w, h int) *coarseAccum {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	// The coarse rung is strictly a minification; clamp up to the frame
	// so the row partition below stays a partition.
	if w > srcW {
		w = srcW
	}
	if h > srcH {
		h = srcH
	}
	a := &coarseAccum{
		srcW: srcW, srcH: srcH, w: w, h: h,
		out:   imaging.GetRGBA(w, h),
		sums:  make([]uint64, 4*w),
		colX0: make([]int, w),
		colX1: make([]int, w),
	}
	for dx := 0; dx < w; dx++ {
		a.colX0[dx] = dx * srcW / w
		a.colX1[dx] = (dx + 1) * srcW / w
		if a.colX1[dx] <= a.colX0[dx] {
			a.colX1[dx] = a.colX0[dx] + 1
		}
	}
	return a
}

// rowEnd is the exclusive last source row of coarse row dy.
func (a *coarseAccum) rowEnd(dy int) int { return (dy + 1) * a.srcH / a.h }

// addBand folds one delivered band's rows into the accumulator.
func (a *coarseAccum) addBand(view *image.RGBA) {
	vb := view.Bounds()
	for y := vb.Min.Y; y < vb.Max.Y; y++ {
		if y != a.nextSrcY || a.curDy >= a.h {
			continue // defensive: out-of-order or trailing rows
		}
		a.nextSrcY++
		a.rowsIn++
		for dx := 0; dx < a.w; dx++ {
			s := a.sums[4*dx : 4*dx+4]
			for sx := a.colX0[dx]; sx < a.colX1[dx]; sx++ {
				c := view.RGBAAt(sx, y)
				// Accumulate at 16-bit depth, matching color.RGBA.RGBA()
				// so the result equals imaging.Scale's box filter.
				s[0] += uint64(c.R) * 0x101
				s[1] += uint64(c.G) * 0x101
				s[2] += uint64(c.B) * 0x101
				s[3] += uint64(c.A) * 0x101
			}
		}
		if a.nextSrcY == a.rowEnd(a.curDy) {
			a.flushRow()
		}
	}
}

// flushRow finalizes the current coarse row's pixels and resets the sums
// for the next one.
func (a *coarseAccum) flushRow() {
	for dx := 0; dx < a.w; dx++ {
		s := a.sums[4*dx : 4*dx+4]
		n := uint64(a.rowsIn * (a.colX1[dx] - a.colX0[dx]))
		a.out.SetRGBA(dx, a.curDy, rgba8(s, n))
		s[0], s[1], s[2], s[3] = 0, 0, 0, 0
	}
	a.curDy++
	a.rowsIn = 0
}

// finish returns the accumulated coarse frame. Every row is written on
// the normal path (the band partition covers the frame); if delivery
// ended early the partial row is averaged and the remainder blanked, so
// pooled memory never leaks stale pixels into an encode.
func (a *coarseAccum) finish() *image.RGBA {
	if a.rowsIn > 0 && a.curDy < a.h {
		a.flushRow()
	}
	for dy := a.curDy; dy < a.h; dy++ {
		for dx := 0; dx < a.w; dx++ {
			a.out.SetRGBA(dx, dy, color.RGBA{R: 255, G: 255, B: 255, A: 255})
		}
	}
	a.curDy = a.h
	return a.out
}

// rgba8 converts 16-bit channel sums over n samples back to 8-bit,
// matching imaging.Scale's box filter rounding.
func rgba8(s []uint64, n uint64) color.RGBA {
	if n == 0 {
		return color.RGBA{R: 255, G: 255, B: 255, A: 255}
	}
	return color.RGBA{
		R: uint8(s[0] / n >> 8),
		G: uint8(s[1] / n >> 8),
		B: uint8(s[2] / n >> 8),
		A: uint8(s[3] / n >> 8),
	}
}
