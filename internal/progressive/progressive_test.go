package progressive

import (
	"bytes"
	"image"
	"testing"

	"msite/internal/css"
	"msite/internal/html"
	"msite/internal/imaging"
	"msite/internal/layout"
	"msite/internal/raster"
)

const testPage = `<html><body>
	<div style="background-color: #884422; width: 300px; height: 80px"></div>
	<h1>Progressive ladder</h1>
	<p>Some body text that paints glyph pixels across several bands of the
	frame so the coarse accumulator sees non-uniform content.</p>
	<div style="border: 3px solid green; width: 200px; height: 240px"></div>
</body></html>`

func testLayout(t *testing.T) *layout.Result {
	t.Helper()
	doc := html.Parse(testPage)
	styler := css.StylerForDocument(doc)
	return layout.Layout(doc, styler, layout.Viewport{Width: 480})
}

// oneShot reproduces the buffered path's snapshot encode exactly.
func oneShot(t *testing.T, res *layout.Result, opts raster.Options, fid imaging.Fidelity, scale float64) []byte {
	t.Helper()
	frame := raster.Paint(res, opts)
	scaled := imaging.ScaleFactor(frame, scale)
	raster.Release(frame)
	data, err := imaging.Encode(scaled, fid)
	imaging.PutRGBA(scaled)
	if err != nil {
		t.Fatalf("one-shot encode: %v", err)
	}
	return data
}

// TestFullRungMatchesOneShotEncode is the PR's byte-identity property:
// the progressive pipeline changes when bytes exist, never which bytes.
func TestFullRungMatchesOneShotEncode(t *testing.T) {
	res := testLayout(t)
	for _, tc := range []struct {
		name  string
		fid   imaging.Fidelity
		scale float64
		opts  raster.Options
	}{
		{"png-full-scale", imaging.FidelityHigh, 1, raster.Options{Workers: 4}},
		{"jpeg-low-scaled", imaging.FidelityLow, 0.45, raster.Options{Workers: 4}},
		{"serial", imaging.FidelityLow, 0.45, raster.Options{Workers: 1}},
		{"antialias", imaging.FidelityMedium, 0.7, raster.Options{Workers: 3, Antialias: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := oneShot(t, res, tc.opts, tc.fid, tc.scale)
			out, err := Render(res, Config{Raster: tc.opts, Fidelity: tc.fid, Scale: tc.scale})
			if err != nil {
				t.Fatalf("Render: %v", err)
			}
			if !bytes.Equal(out.Full.Data, want) {
				t.Fatalf("full rung differs from one-shot encode (%d vs %d bytes)",
					len(out.Full.Data), len(want))
			}
			if out.Full.MIME != tc.fid.MIME() {
				t.Fatalf("full MIME = %q", out.Full.MIME)
			}
		})
	}
}

func TestCoarseArrivesBeforeFull(t *testing.T) {
	res := testLayout(t)
	var coarse Artifact
	called := 0
	out, err := Render(res, Config{
		Raster:   raster.Options{Workers: 4},
		Fidelity: imaging.FidelityLow,
		Scale:    0.45,
		OnCoarse: func(a Artifact) {
			called++
			coarse = a
		},
	})
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	if called != 1 {
		t.Fatalf("OnCoarse called %d times", called)
	}
	if !bytes.Equal(coarse.Data, out.Coarse.Data) {
		t.Fatal("callback artifact differs from result's coarse rung")
	}
	if len(coarse.Data) == 0 || len(out.Full.Data) == 0 {
		t.Fatal("empty rung")
	}
	if len(coarse.Data) >= len(out.Full.Data) {
		t.Fatalf("coarse rung (%d bytes) is not smaller than full (%d bytes)",
			len(coarse.Data), len(out.Full.Data))
	}
}

func TestCoarseRungDecodesAtExpectedGeometry(t *testing.T) {
	res := testLayout(t)
	out, err := Render(res, Config{
		Raster:   raster.Options{Workers: 2},
		Fidelity: imaging.FidelityLow,
		Scale:    0.45,
	})
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	img, err := imaging.Decode(out.Coarse.Data)
	if err != nil {
		t.Fatalf("coarse rung does not decode: %v", err)
	}
	b := img.Bounds()
	if b.Dx() != out.Coarse.Width || b.Dy() != out.Coarse.Height {
		t.Fatalf("decoded %dx%d, artifact claims %dx%d",
			b.Dx(), b.Dy(), out.Coarse.Width, out.Coarse.Height)
	}
	if out.Coarse.MIME != "image/jpeg" {
		t.Fatalf("coarse MIME = %q", out.Coarse.MIME)
	}
	// Quarter scale of the 0.45-scaled output, and strictly smaller than
	// the full rung's geometry.
	if b.Dx() >= out.Full.Width || b.Dy() >= out.Full.Height {
		t.Fatalf("coarse %dx%d not smaller than full %dx%d",
			b.Dx(), b.Dy(), out.Full.Width, out.Full.Height)
	}
}

// TestCoarseAccumMatchesBoxScale checks the incremental accumulator
// against imaging's one-shot box filter on the same frame.
func TestCoarseAccumMatchesBoxScale(t *testing.T) {
	res := testLayout(t)
	frame := raster.Paint(res, raster.Options{Workers: 1})
	defer raster.Release(frame)
	fb := frame.Bounds()
	cw, ch := fb.Dx()/4, fb.Dy()/4

	want := imaging.Scale(frame, cw, ch)
	defer imaging.PutRGBA(want)

	acc := newCoarseAccum(fb.Dx(), fb.Dy(), cw, ch)
	// Feed the frame in uneven chunks to exercise row-boundary handling.
	for y := fb.Min.Y; y < fb.Max.Y; {
		end := y + 7
		if end > fb.Max.Y {
			end = fb.Max.Y
		}
		acc.addBand(frame.SubImage(image.Rect(fb.Min.X, y, fb.Max.X, end)).(*image.RGBA))
		y = end
	}
	got := acc.finish()
	defer imaging.PutRGBA(got)
	if got.Rect != want.Rect {
		t.Fatalf("bounds: got %v, want %v", got.Rect, want.Rect)
	}
	if !bytes.Equal(got.Pix, want.Pix) {
		t.Fatal("incremental coarse accumulation differs from one-shot box scale")
	}
}
