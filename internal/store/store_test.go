package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"msite/internal/obs"
)

func openTest(t *testing.T, dir string, mut ...func(*Options)) *Store {
	t.Helper()
	o := Options{Dir: dir, Fsync: FsyncNever}
	for _, m := range mut {
		m(&o)
	}
	s, err := Open(o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir())
	if err := s.Put("page:a", []byte("hello"), "text/html", 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	data, mime, _, ok := s.Get("page:a")
	if !ok || string(data) != "hello" || mime != "text/html" {
		t.Fatalf("Get = %q, %q, %v; want hello, text/html, true", data, mime, ok)
	}
	if _, _, _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 put", st)
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	s := openTest(t, t.TempDir())
	if err := s.Put("k", []byte("v1"), "m1", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v2"), "m2", 0); err != nil {
		t.Fatal(err)
	}
	data, mime, _, ok := s.Get("k")
	if !ok || string(data) != "v2" || mime != "m2" {
		t.Fatalf("after overwrite Get = %q, %q, %v", data, mime, ok)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := s.Get("k"); ok {
		t.Fatal("Get after Delete reported a hit")
	}
	if err := s.Delete("k"); err != nil {
		t.Fatalf("Delete of absent key: %v", err)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := openTest(t, t.TempDir(), func(o *Options) { o.Clock = clock })
	if err := s.Put("k", []byte("v"), "m", time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, _, exp, ok := s.Get("k"); !ok || !exp.Equal(now.Add(time.Minute)) {
		t.Fatalf("fresh Get = ok=%v exp=%v", ok, exp)
	}
	now = now.Add(2 * time.Minute)
	if _, _, _, ok := s.Get("k"); ok {
		t.Fatal("expired record still served")
	}
}

func TestReopenRecoversRecords(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("val-%02d", i)), "text/plain", 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("k05"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openTest(t, dir)
	st := s2.Stats()
	if st.RecoveredRecords != 20 {
		t.Fatalf("recovered %d records; want 20", st.RecoveredRecords)
	}
	if st.CorruptRecords != 0 {
		t.Fatalf("corrupt %d records on a clean log", st.CorruptRecords)
	}
	if s2.Len() != 19 {
		t.Fatalf("Len = %d; want 19 (one deleted)", s2.Len())
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%02d", i)
		data, _, _, ok := s2.Get(key)
		if i == 5 {
			if ok {
				t.Fatalf("deleted key %s resurrected on reopen", key)
			}
			continue
		}
		if !ok || string(data) != fmt.Sprintf("val-%02d", i) {
			t.Fatalf("Get(%s) after reopen = %q, %v", key, data, ok)
		}
	}
	if st.ScanDuration <= 0 {
		t.Fatalf("ScanDuration = %v; want > 0", st.ScanDuration)
	}
}

func TestReopenDropsExpired(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := openTest(t, dir, func(o *Options) { o.Clock = clock })
	if err := s.Put("short", []byte("a"), "m", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("long", []byte("b"), "m", time.Hour); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	now = now.Add(time.Minute)
	s2 := openTest(t, dir, func(o *Options) { o.Clock = clock })
	if _, _, _, ok := s2.Get("short"); ok {
		t.Fatal("expired record survived reopen")
	}
	if _, _, _, ok := s2.Get("long"); !ok {
		t.Fatal("unexpired record lost on reopen")
	}
}

func TestSegmentRoll(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) { o.SegmentMaxBytes = 256 })
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), make([]byte, 100), "m", 0); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments < 2 {
		t.Fatalf("segments = %d; want roll-over past 1", st.Segments)
	}
	for i := 0; i < 10; i++ {
		if _, _, _, ok := s.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d unreadable after segment roll", i)
		}
	}
}

func TestByteBudgetEvictsLRU(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) { o.MaxBytes = 600 })
	// ~150 bytes per record (frame + key/mime overhead); budget fits ~4.
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), make([]byte, 100), "m", 0); err != nil {
			t.Fatal(err)
		}
		// Keep k0 hot so eviction takes the cold middle keys instead.
		if i >= 1 {
			if _, _, _, ok := s.Get("k0"); !ok && i < 4 {
				t.Fatalf("k0 evicted while budget still had room (i=%d)", i)
			}
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the byte budget")
	}
	if st.LiveBytes > 600 {
		t.Fatalf("live bytes %d exceed budget 600", st.LiveBytes)
	}
	if _, _, _, ok := s.Get("k0"); !ok {
		t.Fatal("recently-accessed k0 was evicted before colder keys")
	}
	if _, _, _, ok := s.Get("k1"); ok {
		t.Fatal("cold k1 survived while budget forced evictions")
	}
}

func TestBudgetEnforcedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), make([]byte, 100), "m", 0); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Close()
	s2 := openTest(t, dir, func(o *Options) { o.MaxBytes = 400 })
	if s2.Bytes() > 400 {
		t.Fatalf("open-time budget not enforced: %d live bytes", s2.Bytes())
	}
	// Scan order seeds the access clock, so the oldest-written keys go first.
	if _, _, _, ok := s2.Get("k7"); !ok {
		t.Fatal("newest record evicted at open before older ones")
	}
	if _, _, _, ok := s2.Get("k0"); ok {
		t.Fatal("oldest record survived open-time budget enforcement")
	}
}

func TestCompactionReclaimsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, func(o *Options) {
		o.SegmentMaxBytes = 512
		o.CompactFraction = -1 // manual compaction only
	})
	// Write then overwrite everything so earlier segments are mostly dead.
	val := func(round, i int) []byte {
		return []byte(fmt.Sprintf("round-%d-%d-%s", round, i, string(make([]byte, 100))))
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 6; i++ {
			if err := s.Put(fmt.Sprintf("k%d", i), val(round, i), "m", 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.Stats()
	if before.Segments < 3 {
		t.Fatalf("expected several segments before compaction, got %d", before.Segments)
	}
	moved, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("compaction did not remove segments: %d -> %d (moved %d)", before.Segments, after.Segments, moved)
	}
	for i := 0; i < 6; i++ {
		data, _, _, ok := s.Get(fmt.Sprintf("k%d", i))
		if !ok || string(data) != string(val(3, i)) {
			t.Fatalf("k%d lost or stale after compaction: %q, %v", i, data, ok)
		}
	}
	// On-disk files must match the in-memory segment list.
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(files) != after.Segments {
		t.Fatalf("disk has %d segment files, store reports %d", len(files), after.Segments)
	}
	// And a reopen must see the compacted state.
	_ = s.Close()
	s2 := openTest(t, dir)
	for i := 0; i < 6; i++ {
		data, _, _, ok := s2.Get(fmt.Sprintf("k%d", i))
		if !ok || string(data) != string(val(3, i)) {
			t.Fatalf("k%d wrong after compact+reopen: %q, %v", i, data, ok)
		}
	}
}

func TestKeysRecentFirst(t *testing.T) {
	s := openTest(t, t.TempDir())
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, []byte(k), "m", 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, ok := s.Get("a"); !ok { // touch a → most recent
		t.Fatal("Get(a)")
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" {
		t.Fatalf("Keys = %v; want a first", keys)
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) { o.Fsync = FsyncInterval })
	if err := s.Put("k", []byte("v"), "m", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Put("k2", nil, "", 0); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	if _, _, _, ok := s.Get("k"); ok {
		t.Fatal("Get after Close reported a hit")
	}
}

func TestFsyncAlwaysSurvivesUncleanAbandon(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, func(o *Options) { o.Fsync = FsyncAlways })
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("committed"), "m", 0); err != nil {
			t.Fatal(err)
		}
	}
	// SIGKILL-equivalent: no Close, just reopen the directory.
	s2 := openTest(t, dir)
	for i := 0; i < 5; i++ {
		if _, _, _, ok := s2.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("committed record k%d lost without clean shutdown", i)
		}
	}
}

func TestParseFsync(t *testing.T) {
	cases := map[string]FsyncPolicy{
		"":         FsyncInterval,
		"interval": FsyncInterval,
		"always":   FsyncAlways,
		"ALWAYS":   FsyncAlways,
		"never":    FsyncNever,
	}
	for in, want := range cases {
		got, err := ParseFsync(in)
		if err != nil || got != want {
			t.Errorf("ParseFsync(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Error("ParseFsync accepted an unknown policy")
	}
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		if rt, err := ParseFsync(p.String()); err != nil || rt != p {
			t.Errorf("round-trip of %v failed: %v, %v", p, rt, err)
		}
	}
}

func TestObsMetrics(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	if err := s.Put("k", []byte("v"), "m", 0); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()

	s2 := openTest(t, dir)
	reg := obs.NewRegistry()
	s2.SetObs(reg)
	s2.Get("k")
	s2.Get("absent")
	snap := reg.Snapshot()
	check := func(name string, want uint64) {
		t.Helper()
		c, ok := snap.Counter(name)
		if !ok || c.Value != want {
			t.Errorf("%s = %v (ok=%v); want %d", name, c, ok, want)
		}
	}
	check("msite_store_hits_total", 1)
	check("msite_store_misses_total", 1)
	check("msite_store_recovered_records_total", 1)
	check("msite_store_corrupt_records_total", 0)
}

func TestOpenEmptyDirAndMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "store")
	s := openTest(t, dir)
	if s.Len() != 0 {
		t.Fatalf("fresh store Len = %d", s.Len())
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("store dir not created: %v", err)
	}
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open with empty Dir succeeded")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) { o.SegmentMaxBytes = 4096 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%10)
				switch i % 3 {
				case 0:
					if err := s.Put(key, []byte("v"), "m", 0); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 1:
					s.Get(key)
				default:
					if err := s.Delete(key); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTouchExtendsExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := openTest(t, t.TempDir(), func(o *Options) { o.Clock = clock })
	if err := s.Put("k", []byte("v"), "m", time.Minute); err != nil {
		t.Fatal(err)
	}
	if !s.Touch("k", time.Hour) {
		t.Fatal("Touch of live record returned false")
	}
	// Past the original TTL but inside the touched one.
	now = now.Add(30 * time.Minute)
	if _, _, _, ok := s.Get("k"); !ok {
		t.Fatal("record expired despite touch")
	}
	if s.Touch("missing", time.Hour) {
		t.Fatal("Touch of absent key returned true")
	}
	// Past the touched TTL the record is gone, and a touch then fails.
	now = now.Add(2 * time.Hour)
	if s.Touch("k", time.Hour) {
		t.Fatal("Touch of expired record returned true")
	}
	if _, _, _, ok := s.Get("k"); ok {
		t.Fatal("expired record still served")
	}
}

func TestTouchSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := openTest(t, dir, func(o *Options) { o.Clock = clock })
	if err := s.Put("k", []byte("v"), "m", time.Minute); err != nil {
		t.Fatal(err)
	}
	if !s.Touch("k", time.Hour) {
		t.Fatal("Touch failed")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The recovery scan must replay the touch over the put.
	now = now.Add(30 * time.Minute)
	s2 := openTest(t, dir, func(o *Options) { o.Clock = clock })
	if _, _, _, ok := s2.Get("k"); !ok {
		t.Fatal("touched expiry lost across reopen")
	}
}

func TestTouchSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	// Tiny segments so the put's segment seals and compacts.
	s := openTest(t, dir, func(o *Options) {
		o.Clock = clock
		o.SegmentMaxBytes = 256
		o.CompactFraction = -1 // compact only on demand
	})
	if err := s.Put("k", []byte("keep"), "m", time.Minute); err != nil {
		t.Fatal(err)
	}
	// Filler rolls the segment and leaves dead weight behind.
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("fill%d", i)
		if err := s.Put(key, make([]byte, 64), "m", 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(key); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Touch("k", time.Hour) {
		t.Fatal("Touch failed")
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Compaction moved the put after the touch in log order; the moved
	// copy must carry the touched expiry or recovery resurrects the old
	// one.
	now = now.Add(30 * time.Minute)
	s2 := openTest(t, dir, func(o *Options) { o.Clock = clock })
	if _, _, _, ok := s2.Get("k"); !ok {
		t.Fatal("touched expiry lost across compaction + reopen")
	}
}
