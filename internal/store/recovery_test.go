package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// lastSegment returns the path of the newest segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segment files in %s: %v", dir, err)
	}
	sort.Strings(names)
	return names[len(names)-1]
}

// TestRecoveryTornTailProperty is the crash-safety property test: write
// a random batch of records, then simulate a crash mid-append by
// truncating the segment inside the last record — or scribbling garbage
// over its tail — at a random byte offset. Open must succeed, drop the
// torn record, and serve every fully-written record intact. Mirrors the
// randomized paint-parity style from the parallel-raster work.
func TestRecoveryTornTailProperty(t *testing.T) {
	const iterations = 250
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < iterations; iter++ {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir, Fsync: FsyncNever, SegmentMaxBytes: 1 << 20})
		if err != nil {
			t.Fatalf("iter %d: Open: %v", iter, err)
		}

		// A random prefix of committed records, then one victim record.
		nCommitted := 1 + rng.Intn(12)
		want := make(map[string]string, nCommitted)
		for i := 0; i < nCommitted; i++ {
			key := fmt.Sprintf("k%03d", i)
			val := make([]byte, 1+rng.Intn(200))
			rng.Read(val)
			if err := s.Put(key, val, "application/octet-stream", 0); err != nil {
				t.Fatalf("iter %d: Put: %v", iter, err)
			}
			want[key] = string(val)
		}
		seg := lastSegment(t, dir)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		committedSize := fi.Size()
		victim := make([]byte, 1+rng.Intn(300))
		rng.Read(victim)
		if err := s.Put("victim", victim, "m", 0); err != nil {
			t.Fatalf("iter %d: Put victim: %v", iter, err)
		}
		// Abandon without Close: the OS file is all that survives.
		s.closeFiles()

		fi, err = os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		fullSize := fi.Size()
		if fullSize <= committedSize {
			t.Fatalf("iter %d: victim record added no bytes (%d -> %d)", iter, committedSize, fullSize)
		}

		// Damage the victim record at a random offset past the committed
		// prefix: either truncate there (torn write) or overwrite the
		// tail with garbage (scribbled sector).
		cut := committedSize + rng.Int63n(fullSize-committedSize)
		f, err := os.OpenFile(seg, os.O_RDWR, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			if err := f.Truncate(cut); err != nil {
				t.Fatal(err)
			}
		} else {
			garbage := make([]byte, fullSize-cut)
			rng.Read(garbage)
			if _, err := f.WriteAt(garbage, cut); err != nil {
				t.Fatal(err)
			}
		}
		_ = f.Close()

		s2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("iter %d: reopen after torn tail: %v", iter, err)
		}
		for key, val := range want {
			data, _, _, ok := s2.Get(key)
			if !ok {
				t.Fatalf("iter %d: committed record %s lost (cut at %d of %d)", iter, key, cut, fullSize)
			}
			if string(data) != val {
				t.Fatalf("iter %d: committed record %s corrupted", iter, key)
			}
		}
		if data, _, _, ok := s2.Get("victim"); ok && string(data) != string(victim) {
			t.Fatalf("iter %d: torn victim served with wrong bytes", iter)
		}
		st := s2.Stats()
		if st.RecoveredRecords < uint64(nCommitted) {
			t.Fatalf("iter %d: recovered %d < committed %d", iter, st.RecoveredRecords, nCommitted)
		}

		// The store must be fully usable after recovery.
		if err := s2.Put("post-crash", []byte("ok"), "m", 0); err != nil {
			t.Fatalf("iter %d: Put after recovery: %v", iter, err)
		}
		if _, _, _, ok := s2.Get("post-crash"); !ok {
			t.Fatalf("iter %d: post-recovery write unreadable", iter)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("iter %d: Close after recovery: %v", iter, err)
		}
	}
}

// TestRecoveryMultiSegmentDamage corrupts a SEALED (non-final) segment
// and verifies open still succeeds: the damaged region is skipped and
// counted, later segments still replay, and no committed record outside
// the damaged frame is lost.
func TestRecoveryMultiSegmentDamage(t *testing.T) {
	const iterations = 40
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < iterations; iter++ {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir, Fsync: FsyncNever, SegmentMaxBytes: 2048, CompactFraction: -1})
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, 40)
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("k%03d", i)
			val := make([]byte, 100+rng.Intn(100))
			rng.Read(val)
			if err := s.Put(key, val, "m", 0); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, key)
		}
		names, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
		sort.Strings(names)
		if len(names) < 3 {
			t.Fatalf("iter %d: want ≥3 segments, got %d", iter, len(names))
		}
		s.closeFiles()

		// Scribble a few bytes mid-record in a random sealed segment.
		target := names[rng.Intn(len(names)-1)]
		fi, _ := os.Stat(target)
		off := int64(len(segMagic)) + rng.Int63n(fi.Size()-int64(len(segMagic)))
		f, _ := os.OpenFile(target, os.O_RDWR, 0o600)
		if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, off); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()

		s2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("iter %d: reopen with damaged sealed segment: %v", iter, err)
		}
		st := s2.Stats()
		if st.CorruptRecords == 0 {
			t.Fatalf("iter %d: damage not detected", iter)
		}
		// Some records in the damaged segment are unavoidably gone, but
		// the survivors must be intact and the store usable.
		survivors := 0
		for _, key := range keys {
			if _, _, _, ok := s2.Get(key); ok {
				survivors++
			}
		}
		if survivors == 0 {
			t.Fatalf("iter %d: every record lost after single-segment damage", iter)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryEmptyAndHeaderOnlyFiles covers degenerate crash artifacts:
// a zero-byte segment and one cut inside the magic header.
func TestRecoveryEmptyAndHeaderOnlyFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v"), "m", 0); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()

	// A crash can leave a new segment file with a partial header.
	for i, size := range []int64{0, 3} {
		path := filepath.Join(dir, fmt.Sprintf("seg-%016x.log", 100+i))
		if err := os.WriteFile(path, []byte(segMagic)[:size], 0o600); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("reopen with degenerate segment files: %v", err)
	}
	defer s2.Close()
	if _, _, _, ok := s2.Get("k"); !ok {
		t.Fatal("committed record lost behind degenerate segment files")
	}
	if err := s2.Put("k2", []byte("v2"), "m", time.Minute); err != nil {
		t.Fatalf("Put after degenerate recovery: %v", err)
	}
}
