// Package store is the durable tier under m.Site's render cache: a
// crash-safe, append-only blob store that lets adapted entry pages,
// subpage bundles, and snapshot renders survive proxy restarts (§3.3
// "cacheable" made durable, the same move DRIVESHAFT makes with its
// edge-resident visual-snapshot caches). A restarted proxy rehydrates
// the in-memory cache from here instead of re-rendering, so a deploy or
// crash never triggers the re-render stampede the admission tier would
// otherwise have to shed.
//
// Layout: records are appended to numbered segment files with per-record
// CRC32 framing; the in-memory index is rebuilt by scanning the segments
// on Open. A torn tail (partial final write after a crash) is truncated,
// never fatal; corruption is counted and skipped. Durability is a policy
// knob (always / interval / never fsync), dead records are reclaimed by
// background compaction, and an optional byte budget evicts the least
// recently accessed records.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"msite/internal/obs"
)

// Segment file framing.
const (
	// segMagic opens every segment file; a file without it is ignored
	// (and counted corrupt) rather than scanned.
	segMagic = "MSITESG1"
	// recHeaderLen is the per-record frame: CRC32 (IEEE) of the payload,
	// then the payload length.
	recHeaderLen = 8
	// maxPayloadLen is the sanity bound on a record's payload; a length
	// field past it is treated as corruption (a torn or scribbled tail),
	// not an allocation request.
	maxPayloadLen = 1 << 30

	opPut    = 1
	opDelete = 2
	// opTouch revises the expiry of a live record without rewriting its
	// payload — the record the revalidation path appends when the origin
	// answers 304 Not Modified and a bundle's TTL just gets extended.
	opTouch = 3
)

// DefaultSegmentMaxBytes is the roll-over size of one segment file.
const DefaultSegmentMaxBytes = 64 << 20

// DefaultFsyncInterval is the background sync period under FsyncInterval.
const DefaultFsyncInterval = 100 * time.Millisecond

// DefaultCompactFraction is the dead-byte fraction of a sealed segment
// that triggers background compaction.
const DefaultCompactFraction = 0.5

// FsyncPolicy selects the durability/latency trade of appends (the
// -store-fsync knob).
type FsyncPolicy int

const (
	// FsyncInterval (the default) syncs the active segment on a short
	// background period: bounded data loss, no per-write sync stall.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every append: zero committed-data loss.
	FsyncAlways
	// FsyncNever leaves syncing to the OS page cache.
	FsyncNever
)

// ParseFsync maps the -store-fsync flag value onto a policy. The empty
// string selects the default (interval).
func ParseFsync(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always|interval|never)", s)
}

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// Options configures a Store.
type Options struct {
	// Dir is the directory segment files live in (required; created if
	// missing).
	Dir string
	// MaxBytes bounds the live payload bytes (the -store-max-bytes
	// knob); past it the least recently accessed records are evicted.
	// 0 means unbounded.
	MaxBytes int64
	// SegmentMaxBytes rolls the active segment past this size
	// (default DefaultSegmentMaxBytes).
	SegmentMaxBytes int64
	// Fsync is the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval
	// (default DefaultFsyncInterval).
	FsyncInterval time.Duration
	// CompactFraction is the dead-byte fraction of a sealed segment that
	// triggers compaction (default DefaultCompactFraction; negative
	// disables background compaction).
	CompactFraction float64
	// Clock is the time source (tests inject a fake one); nil uses
	// time.Now.
	Clock func() time.Time
}

// segment is one on-disk log file.
type segment struct {
	id   uint64
	path string
	f    *os.File
	// size is the current file size (header + records).
	size int64
	// dead is the bytes of records in this segment that the index no
	// longer references (overwritten, deleted, evicted, or expired).
	dead int64
}

// rec locates one live record.
type rec struct {
	seg *segment
	// off is the file offset of the record frame (CRC header).
	off int64
	// frameLen is the full record length on disk (header + payload).
	frameLen int64
	// expires is the expiry in unix nanoseconds; 0 means no expiry.
	expires int64
	// access is the store's logical access clock at the last touch;
	// eviction removes the lowest values first.
	access uint64
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Hits             uint64
	Misses           uint64
	Puts             uint64
	Deletes          uint64
	Evictions        uint64
	CompactedRecords uint64
	// RecoveredRecords / CorruptRecords describe the Open scan: records
	// rebuilt into the index vs. torn or corrupt frames dropped.
	RecoveredRecords uint64
	CorruptRecords   uint64
	// ScanDuration is how long the Open recovery scan took.
	ScanDuration time.Duration
	// LiveBytes / Segments / Records describe current residency.
	LiveBytes int64
	Segments  int
	Records   int
}

// storeObs bundles the registry metrics the store reports into.
type storeObs struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	corrupt   *obs.Counter
	reg       *obs.Registry // corruption-event sink for the flight recorder
}

// Store is a crash-safe durable blob store, safe for concurrent use.
type Store struct {
	dir             string
	maxBytes        int64
	segMaxBytes     int64
	fsync           FsyncPolicy
	compactFraction float64
	clock           func() time.Time

	// Counters are atomic so Stats() and metric scrapes never contend
	// with the read/write paths.
	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	deletes   atomic.Uint64
	evictions atomic.Uint64
	compacted atomic.Uint64
	recovered atomic.Uint64
	corrupt   atomic.Uint64
	liveBytes atomic.Int64
	scanDur   time.Duration

	accessClock atomic.Uint64
	obsHook     atomic.Pointer[storeObs]
	compacting  atomic.Bool

	mu     sync.Mutex
	index  map[string]*rec
	segs   []*segment // ordered by id; the last is the active one
	closed bool

	syncStop chan struct{}
	syncDone chan struct{}
}

// Open opens (or creates) the store in o.Dir, rebuilding the index by
// scanning every segment. A torn tail on the newest segment is
// truncated; corrupt frames elsewhere are counted and skipped. Open
// never fails on corruption — only on I/O errors.
func Open(o Options) (*Store, error) {
	if o.Dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(o.Dir, 0o700); err != nil {
		return nil, fmt.Errorf("store: creating dir: %w", err)
	}
	clock := o.Clock
	if clock == nil {
		clock = time.Now
	}
	segMax := o.SegmentMaxBytes
	if segMax <= 0 {
		segMax = DefaultSegmentMaxBytes
	}
	frac := o.CompactFraction
	if frac == 0 {
		frac = DefaultCompactFraction
	}
	s := &Store{
		dir:             o.Dir,
		maxBytes:        o.MaxBytes,
		segMaxBytes:     segMax,
		fsync:           o.Fsync,
		compactFraction: frac,
		clock:           clock,
		index:           make(map[string]*rec),
	}
	start := time.Now()
	if err := s.scanAll(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.scanDur = time.Since(start)
	if len(s.segs) == 0 {
		if _, err := s.addSegment(); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	s.pruneExpiredLocked()
	s.evictOverBudgetLocked()
	s.mu.Unlock()
	if s.fsync == FsyncInterval {
		every := o.FsyncInterval
		if every <= 0 {
			every = DefaultFsyncInterval
		}
		s.syncStop = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop(every)
	}
	return s, nil
}

// SetObs registers the store's metrics on reg (msite_store_hits_total,
// msite_store_misses_total, msite_store_evictions_total,
// msite_store_write_drops_total is owned by the tiered cache,
// msite_store_recovered_records_total, msite_store_corrupt_records_total,
// msite_store_bytes, msite_store_segments, msite_store_records) and
// reports the recovery scan's outcome into them.
func (s *Store) SetObs(reg *obs.Registry) {
	h := &storeObs{
		hits:      reg.Counter("msite_store_hits_total"),
		misses:    reg.Counter("msite_store_misses_total"),
		evictions: reg.Counter("msite_store_evictions_total"),
		corrupt:   reg.Counter("msite_store_corrupt_records_total"),
		reg:       reg,
	}
	s.obsHook.Store(h)
	// The recovery scan ran before any hook existed; publish its result.
	reg.Counter("msite_store_recovered_records_total").Add(s.recovered.Load())
	h.corrupt.Add(s.corrupt.Load())
	reg.GaugeFunc("msite_store_bytes", func() float64 { return float64(s.liveBytes.Load()) })
	reg.GaugeFunc("msite_store_segments", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.segs))
	})
	reg.GaugeFunc("msite_store_records", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.index))
	})
}

func (s *Store) markHit() {
	s.hits.Add(1)
	if o := s.obsHook.Load(); o != nil {
		o.hits.Inc()
	}
}

func (s *Store) markMiss() {
	s.misses.Add(1)
	if o := s.obsHook.Load(); o != nil {
		o.misses.Inc()
	}
}

func (s *Store) markEvict() {
	s.evictions.Add(1)
	if o := s.obsHook.Load(); o != nil {
		o.evictions.Inc()
	}
}

func (s *Store) markCorrupt() {
	s.corrupt.Add(1)
	if o := s.obsHook.Load(); o != nil {
		o.corrupt.Inc()
		o.reg.Emit(obs.EventStoreCorrupt, s.dir)
	}
}

// --- record encoding ---

// encodeRecord frames one record: CRC32(payload) | len(payload) |
// payload, where payload = op | expiresNanos | keyLen | key | mimeLen |
// mime | dataLen | data.
func encodeRecord(op byte, key, mime string, data []byte, expires int64) []byte {
	plen := 1 + 8 + 4 + len(key) + 4 + len(mime) + 4 + len(data)
	buf := make([]byte, recHeaderLen+plen)
	p := buf[recHeaderLen:]
	p[0] = op
	binary.BigEndian.PutUint64(p[1:9], uint64(expires))
	off := 9
	binary.BigEndian.PutUint32(p[off:], uint32(len(key)))
	off += 4
	copy(p[off:], key)
	off += len(key)
	binary.BigEndian.PutUint32(p[off:], uint32(len(mime)))
	off += 4
	copy(p[off:], mime)
	off += len(mime)
	binary.BigEndian.PutUint32(p[off:], uint32(len(data)))
	off += 4
	copy(p[off:], data)
	binary.BigEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(p))
	binary.BigEndian.PutUint32(buf[4:8], uint32(plen))
	return buf
}

// decodePayload parses a verified payload.
func decodePayload(p []byte) (op byte, key, mime string, data []byte, expires int64, err error) {
	if len(p) < 1+8+4 {
		return 0, "", "", nil, 0, errors.New("store: short payload")
	}
	op = p[0]
	expires = int64(binary.BigEndian.Uint64(p[1:9]))
	off := 9
	read := func() ([]byte, bool) {
		if off+4 > len(p) {
			return nil, false
		}
		n := int(binary.BigEndian.Uint32(p[off : off+4]))
		off += 4
		if n < 0 || off+n > len(p) {
			return nil, false
		}
		b := p[off : off+n]
		off += n
		return b, true
	}
	k, ok := read()
	if !ok {
		return 0, "", "", nil, 0, errors.New("store: bad key length")
	}
	m, ok := read()
	if !ok {
		return 0, "", "", nil, 0, errors.New("store: bad mime length")
	}
	d, ok := read()
	if !ok {
		return 0, "", "", nil, 0, errors.New("store: bad data length")
	}
	return op, string(k), string(m), d, expires, nil
}

// --- open-time recovery scan ---

// scanAll rebuilds the index from every segment file in id order.
func (s *Store) scanAll() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.log"))
	if err != nil {
		return fmt.Errorf("store: listing segments: %w", err)
	}
	sort.Strings(names)
	for i, path := range names {
		last := i == len(names)-1
		if err := s.scanSegment(path, last); err != nil {
			return err
		}
	}
	return nil
}

// scanSegment replays one segment into the index. On the newest segment
// a bad frame is a torn tail: the file is truncated at the failed
// record's start so the next append lands on a clean boundary. On older
// segments the rest of the file is unreachable and counted dead.
func (s *Store) scanSegment(path string, last bool) error {
	var id uint64
	if _, err := fmt.Sscanf(filepath.Base(path), "seg-%016x.log", &id); err != nil {
		// Not one of ours; leave it alone.
		return nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o600)
	if err != nil {
		return fmt.Errorf("store: opening segment: %w", err)
	}
	seg := &segment{id: id, path: path, f: f}
	header := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, header); err != nil || string(header) != segMagic {
		// Unreadable header: treat the whole file as one corrupt tail.
		s.markCorrupt()
		if last {
			if err := s.resetSegment(seg); err != nil {
				return err
			}
			s.segs = append(s.segs, seg)
			return nil
		}
		seg.size = 0
		_ = f.Close()
		return nil
	}
	off := int64(len(segMagic))
	head := make([]byte, recHeaderLen)
	for {
		n, err := f.ReadAt(head, off)
		if err == io.EOF && n == 0 {
			break // clean end
		}
		if err != nil && err != io.ErrUnexpectedEOF && !errors.Is(err, io.EOF) {
			return fmt.Errorf("store: scanning %s: %w", path, err)
		}
		if n < recHeaderLen {
			s.tornTail(seg, off, last)
			break
		}
		wantCRC := binary.BigEndian.Uint32(head[0:4])
		plen := int64(binary.BigEndian.Uint32(head[4:8]))
		if plen <= 0 || plen > maxPayloadLen {
			s.tornTail(seg, off, last)
			break
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+recHeaderLen); err != nil {
			s.tornTail(seg, off, last)
			break
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			s.tornTail(seg, off, last)
			break
		}
		op, key, _, _, expires, perr := decodePayload(payload)
		frame := recHeaderLen + plen
		if perr != nil {
			// Framed and checksummed but structurally invalid: count it
			// and keep scanning — the frame boundary is trustworthy.
			s.markCorrupt()
			seg.dead += frame
		} else {
			s.applyScanned(seg, op, key, off, frame, expires)
		}
		off += frame
		seg.size = off
	}
	if seg.size < int64(len(segMagic)) {
		seg.size = int64(len(segMagic))
	}
	s.segs = append(s.segs, seg)
	return nil
}

// tornTail handles a bad frame at off: on the newest segment the file
// is truncated there (the crash-recovery path); on sealed segments the
// remainder is counted dead.
func (s *Store) tornTail(seg *segment, off int64, last bool) {
	s.markCorrupt()
	if last {
		_ = seg.f.Truncate(off)
		seg.size = off
		return
	}
	if fi, err := seg.f.Stat(); err == nil {
		seg.dead += fi.Size() - off
	}
	seg.size = off
}

// applyScanned replays one valid record into the index.
func (s *Store) applyScanned(seg *segment, op byte, key string, off, frame int64, expires int64) {
	if op == opTouch {
		// A touch only revises the live record's expiry; the touch frame
		// itself is dead weight. A touch whose key has no live record
		// (deleted later in the log, or dropped by compaction races) is a
		// no-op.
		seg.dead += frame
		if r, ok := s.index[key]; ok {
			if expires != 0 && expires <= s.clock().UnixNano() {
				r.seg.dead += r.frameLen
				s.liveBytes.Add(-r.frameLen)
				delete(s.index, key)
			} else {
				r.expires = expires
			}
		}
		return
	}
	if old, ok := s.index[key]; ok {
		old.seg.dead += old.frameLen
		s.liveBytes.Add(-old.frameLen)
		delete(s.index, key)
	}
	switch op {
	case opPut:
		// Expired puts are still indexed here: a later touch record may
		// have extended their expiry, and the replay must see the put to
		// apply it. pruneExpiredLocked sweeps the leftovers once the whole
		// log has been replayed.
		s.index[key] = &rec{
			seg:      seg,
			off:      off,
			frameLen: frame,
			expires:  expires,
			access:   s.accessClock.Add(1),
		}
		s.liveBytes.Add(frame)
		s.recovered.Add(1)
	case opDelete:
		seg.dead += frame
	default:
		s.markCorrupt()
		seg.dead += frame
	}
}

// pruneExpiredLocked drops index entries whose expiry — after every
// touch in the log has been replayed — has already passed. Caller holds
// s.mu.
func (s *Store) pruneExpiredLocked() {
	now := s.clock().UnixNano()
	for key, r := range s.index {
		if r.expires != 0 && r.expires <= now {
			s.dropLocked(key, r)
		}
	}
}

// resetSegment rewrites a segment file to an empty (header-only) state.
func (s *Store) resetSegment(seg *segment) error {
	if err := seg.f.Truncate(0); err != nil {
		return fmt.Errorf("store: resetting segment: %w", err)
	}
	if _, err := seg.f.WriteAt([]byte(segMagic), 0); err != nil {
		return fmt.Errorf("store: resetting segment: %w", err)
	}
	seg.size = int64(len(segMagic))
	seg.dead = 0
	return nil
}

// addSegment creates and activates a fresh segment file. Caller must
// not hold s.mu (Open) or must hold it (roll); both are safe because
// the file is not shared until appended to s.segs.
func (s *Store) addSegment() (*segment, error) {
	var id uint64
	if n := len(s.segs); n > 0 {
		id = s.segs[n-1].id + 1
	}
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%016x.log", id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("store: creating segment: %w", err)
	}
	if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: writing segment header: %w", err)
	}
	seg := &segment{id: id, path: path, f: f, size: int64(len(segMagic))}
	s.segs = append(s.segs, seg)
	return seg, nil
}

// --- serving paths ---

// Get returns the record for key if present and unexpired. The read is
// CRC-verified; a record that fails verification (latent disk
// corruption) is dropped, counted, and reported as a miss.
func (s *Store) Get(key string) (data []byte, mime string, expires time.Time, ok bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.markMiss()
		return nil, "", time.Time{}, false
	}
	r, found := s.index[key]
	if found && r.expires != 0 && r.expires <= s.clock().UnixNano() {
		s.dropLocked(key, r)
		found = false
	}
	if !found {
		s.mu.Unlock()
		s.markMiss()
		return nil, "", time.Time{}, false
	}
	r.access = s.accessClock.Add(1)
	f, off, flen, exp := r.seg.f, r.off, r.frameLen, r.expires
	s.mu.Unlock()

	buf := make([]byte, flen)
	if _, err := f.ReadAt(buf, off); err != nil {
		s.corruptRecord(key, off)
		return nil, "", time.Time{}, false
	}
	wantCRC := binary.BigEndian.Uint32(buf[0:4])
	payload := buf[recHeaderLen:]
	if crc32.ChecksumIEEE(payload) != wantCRC {
		s.corruptRecord(key, off)
		return nil, "", time.Time{}, false
	}
	_, _, m, d, _, err := decodePayload(payload)
	if err != nil {
		s.corruptRecord(key, off)
		return nil, "", time.Time{}, false
	}
	s.markHit()
	var expT time.Time
	if exp != 0 {
		expT = time.Unix(0, exp)
	}
	return d, m, expT, true
}

// corruptRecord drops a record that failed read-time verification.
func (s *Store) corruptRecord(key string, off int64) {
	s.markCorrupt()
	s.markMiss()
	s.mu.Lock()
	if r, ok := s.index[key]; ok && r.off == off {
		s.dropLocked(key, r)
	}
	s.mu.Unlock()
}

// dropLocked removes a record from the index (expiry, corruption, or
// eviction); its bytes become dead for compaction. Caller holds s.mu.
func (s *Store) dropLocked(key string, r *rec) {
	r.seg.dead += r.frameLen
	s.liveBytes.Add(-r.frameLen)
	delete(s.index, key)
}

// Put appends a record. A non-positive ttl stores the record without
// expiry.
func (s *Store) Put(key string, data []byte, mime string, ttl time.Duration) error {
	var expires int64
	if ttl > 0 {
		expires = s.clock().Add(ttl).UnixNano()
	}
	frame := encodeRecord(opPut, key, mime, data, expires)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	off, seg, err := s.appendLocked(frame)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if old, ok := s.index[key]; ok {
		old.seg.dead += old.frameLen
		s.liveBytes.Add(-old.frameLen)
	}
	s.index[key] = &rec{
		seg:      seg,
		off:      off,
		frameLen: int64(len(frame)),
		expires:  expires,
		access:   s.accessClock.Add(1),
	}
	s.liveBytes.Add(int64(len(frame)))
	s.puts.Add(1)
	s.evictOverBudgetLocked()
	needCompact := s.needsCompactionLocked()
	s.mu.Unlock()
	if needCompact {
		s.compactAsync()
	}
	return nil
}

// Touch extends (or shortens) the expiry of a live record without
// rewriting its payload: a small touch frame is appended to the log and
// the index updated in place, so revalidating a multi-hundred-KB bundle
// costs a few dozen bytes of disk instead of a full rewrite. Returns
// false when the key has no live, unexpired record. A non-positive ttl
// clears the expiry.
func (s *Store) Touch(key string, ttl time.Duration) bool {
	var expires int64
	if ttl > 0 {
		expires = s.clock().Add(ttl).UnixNano()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	r, ok := s.index[key]
	if ok && r.expires != 0 && r.expires <= s.clock().UnixNano() {
		s.dropLocked(key, r)
		ok = false
	}
	if !ok {
		return false
	}
	frame := encodeRecord(opTouch, key, "", nil, expires)
	_, seg, err := s.appendLocked(frame)
	if err != nil {
		return false
	}
	// The touch frame is immediately dead: it never carries the payload,
	// only the expiry revision the index (and the recovery scan) applies.
	seg.dead += int64(len(frame))
	r.expires = expires
	r.access = s.accessClock.Add(1)
	return true
}

// Delete appends a tombstone and removes the key from the index.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	r, ok := s.index[key]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	frame := encodeRecord(opDelete, key, "", nil, 0)
	_, seg, err := s.appendLocked(frame)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	seg.dead += int64(len(frame)) // the tombstone itself is dead weight
	s.dropLocked(key, r)
	s.deletes.Add(1)
	s.mu.Unlock()
	return nil
}

// appendLocked writes one frame to the active segment, rolling to a new
// segment when full. Caller holds s.mu. Returns the frame's offset and
// the segment it landed in.
func (s *Store) appendLocked(frame []byte) (int64, *segment, error) {
	seg := s.segs[len(s.segs)-1]
	if seg.size+int64(len(frame)) > s.segMaxBytes && seg.size > int64(len(segMagic)) {
		var err error
		seg, err = s.addSegment()
		if err != nil {
			return 0, nil, err
		}
	}
	off := seg.size
	if _, err := seg.f.WriteAt(frame, off); err != nil {
		return 0, nil, fmt.Errorf("store: appending record: %w", err)
	}
	seg.size += int64(len(frame))
	if s.fsync == FsyncAlways {
		if err := seg.f.Sync(); err != nil {
			return 0, nil, fmt.Errorf("store: syncing segment: %w", err)
		}
	}
	return off, seg, nil
}

// evictOverBudgetLocked evicts least-recently-accessed records until the
// live bytes fit MaxBytes. Caller holds s.mu.
func (s *Store) evictOverBudgetLocked() {
	if s.maxBytes <= 0 || s.liveBytes.Load() <= s.maxBytes {
		return
	}
	type cand struct {
		key    string
		access uint64
	}
	cands := make([]cand, 0, len(s.index))
	for k, r := range s.index {
		cands = append(cands, cand{key: k, access: r.access})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].access < cands[j].access })
	for _, c := range cands {
		if s.liveBytes.Load() <= s.maxBytes {
			break
		}
		if r, ok := s.index[c.key]; ok {
			s.dropLocked(c.key, r)
			s.markEvict()
		}
	}
}

// --- compaction ---

// needsCompactionLocked reports whether any sealed segment's dead
// fraction crosses the threshold. Caller holds s.mu.
func (s *Store) needsCompactionLocked() bool {
	if s.compactFraction < 0 {
		return false
	}
	for _, seg := range s.segs[:len(s.segs)-1] {
		if seg.size > int64(len(segMagic)) && float64(seg.dead)/float64(seg.size) >= s.compactFraction {
			return true
		}
	}
	return false
}

// compactAsync runs one compaction pass in the background, coalescing
// concurrent triggers.
func (s *Store) compactAsync() {
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		_, _ = s.Compact()
	}()
}

// Compact rewrites the live records of every sealed segment whose dead
// fraction crosses the threshold into the active segment, then deletes
// the old files. Returns how many records were moved.
func (s *Store) Compact() (int, error) {
	moved := 0
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return moved, nil
		}
		// Only segments carrying dead bytes qualify — segments freshly
		// rolled while this pass moved records have none, so the loop
		// terminates. A negative fraction disables the background
		// trigger but still lets an explicit Compact reclaim any waste.
		thresh := s.compactFraction
		if thresh < 0 {
			thresh = 0
		}
		var victim *segment
		for _, seg := range s.segs[:len(s.segs)-1] {
			if seg.dead <= 0 {
				continue
			}
			if float64(seg.dead)/float64(seg.size) >= thresh {
				victim = seg
				break
			}
		}
		if victim == nil {
			s.mu.Unlock()
			return moved, nil
		}
		n, err := s.compactSegmentLocked(victim)
		moved += n
		s.mu.Unlock()
		if err != nil {
			return moved, err
		}
	}
}

// compactSegmentLocked moves seg's live records to the active segment
// and removes seg. Caller holds s.mu.
func (s *Store) compactSegmentLocked(victim *segment) (int, error) {
	moved := 0
	for key, r := range s.index {
		if r.seg != victim {
			continue
		}
		buf := make([]byte, r.frameLen)
		if _, err := victim.f.ReadAt(buf, r.off); err != nil {
			s.markCorrupt()
			s.dropLocked(key, r)
			continue
		}
		payload := buf[recHeaderLen:]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(buf[0:4]) {
			s.markCorrupt()
			s.dropLocked(key, r)
			continue
		}
		// A record whose expiry was since revised by a touch must be
		// re-encoded with the index's current expiry: the moved copy lands
		// after the touch frame in log order, so a raw byte copy would
		// resurrect the stale expiry on the next recovery scan. The frame
		// length is unchanged (the expiry field is fixed-width).
		if op, k, mime, data, exp, perr := decodePayload(payload); perr == nil && op == opPut && exp != r.expires {
			buf = encodeRecord(opPut, k, mime, data, r.expires)
		}
		off, seg, err := s.appendLocked(buf)
		if err != nil {
			return moved, err
		}
		r.seg, r.off = seg, off
		moved++
		s.compacted.Add(1)
	}
	// Unlink the drained segment.
	for i, seg := range s.segs {
		if seg == victim {
			s.segs = append(s.segs[:i], s.segs[i+1:]...)
			break
		}
	}
	_ = victim.f.Close()
	if err := os.Remove(victim.path); err != nil {
		return moved, fmt.Errorf("store: removing compacted segment: %w", err)
	}
	return moved, nil
}

// --- iteration (cache rehydration) ---

// Keys returns the live, unexpired keys ordered most recently accessed
// first — the order cache rehydration should load them in.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock().UnixNano()
	type ka struct {
		key    string
		access uint64
	}
	all := make([]ka, 0, len(s.index))
	for k, r := range s.index {
		if r.expires != 0 && r.expires <= now {
			continue
		}
		all = append(all, ka{key: k, access: r.access})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].access > all[j].access })
	keys := make([]string, len(all))
	for i, e := range all {
		keys[i] = e.key
	}
	return keys
}

// --- lifecycle ---

func (s *Store) syncLoop(every time.Duration) {
	defer close(s.syncDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-s.syncStop:
			return
		case <-ticker.C:
			s.Sync()
		}
	}
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.segs) == 0 {
		return
	}
	_ = s.segs[len(s.segs)-1].f.Sync()
}

// Close syncs and closes every segment file. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stop := s.syncStop
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-s.syncDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Sync(); err != nil && first == nil {
			first = err
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// closeFiles releases segment handles after a failed Open.
func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		_ = seg.f.Close()
	}
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the live record bytes currently accounted against
// MaxBytes.
func (s *Store) Bytes() int64 { return s.liveBytes.Load() }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	segs, records := len(s.segs), len(s.index)
	s.mu.Unlock()
	return Stats{
		Hits:             s.hits.Load(),
		Misses:           s.misses.Load(),
		Puts:             s.puts.Load(),
		Deletes:          s.deletes.Load(),
		Evictions:        s.evictions.Load(),
		CompactedRecords: s.compacted.Load(),
		RecoveredRecords: s.recovered.Load(),
		CorruptRecords:   s.corrupt.Load(),
		ScanDuration:     s.scanDur,
		LiveBytes:        s.liveBytes.Load(),
		Segments:         segs,
		Records:          records,
	}
}
