package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"msite/internal/admission"
	"msite/internal/cache"
	"msite/internal/fetch"
	"msite/internal/obs"
)

// fakeBuilder is a Builder serving canned bytes, counting pipeline runs.
type fakeBuilder struct {
	data    []byte
	snap    *cache.Entry
	err     error
	builds  atomic.Int64
	traceID atomic.Value // string: the trace ID seen by ClusterBuild
}

func (f *fakeBuilder) ClusterBuild(ctx context.Context) ([]byte, bool, error) {
	f.traceID.Store(obs.TraceFrom(ctx).ID())
	if f.err != nil {
		return nil, false, f.err
	}
	return f.data, f.builds.Add(1) == 1, nil
}

func (f *fakeBuilder) ClusterSnapshot() (cache.Entry, bool) {
	if f.snap == nil {
		return cache.Entry{}, false
	}
	return *f.snap, true
}

// ownerServer runs a Node's transport on an httptest server and returns
// both. The serving node's Self is a placeholder — transport serving
// does not consult ring identity.
func ownerServer(t *testing.T, cfg Config, sites map[string]Builder) (*Node, *httptest.Server) {
	t.Helper()
	if cfg.Self == "" {
		cfg.Self = "http://owner.invalid"
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.SetSites(sites)
	srv := httptest.NewServer(n.Handler())
	t.Cleanup(srv.Close)
	return n, srv
}

// keyOwnedBy searches the fabricated keyspace for a key the ring
// assigns to want, so tests can force the remote-forward path.
func keyOwnedBy(t *testing.T, n *Node, want string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("bundle:forced:%016x:w390:high", uint64(i))
		if o, ok := n.Owner(key); ok && o == want {
			return key
		}
	}
	t.Fatalf("no key owned by %s in 10000 tries", want)
	return ""
}

func TestFetchBundleFromOwner(t *testing.T) {
	ownerObs := obs.NewRegistry()
	fb := &fakeBuilder{
		data: []byte("wire-v2-bundle"),
		snap: &cache.Entry{Data: []byte("png-bytes"), MIME: "image/png;390,800"},
	}
	_, srv := ownerServer(t, Config{Token: "s3cret", Obs: ownerObs}, map[string]Builder{"forum": fb})

	reqObs := obs.NewRegistry()
	req, err := NewNode(Config{
		Self:  "http://requester.invalid",
		Peers: []string{srv.URL},
		Token: "s3cret",
		Obs:   reqObs,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := keyOwnedBy(t, req, srv.URL)

	ctx, tr := reqObs.StartTrace(context.Background(), "entry")
	bundle, snap, remote, err := req.FetchBundle(ctx, "forum", key)
	tr.End()
	if err != nil || !remote {
		t.Fatalf("FetchBundle: remote=%v err=%v", remote, err)
	}
	if string(bundle) != "wire-v2-bundle" {
		t.Fatalf("bundle = %q", bundle)
	}
	if snap == nil || string(snap.Data) != "png-bytes" || snap.MIME != "image/png;390,800" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := fb.builds.Load(); got != 1 {
		t.Fatalf("owner builds = %d, want 1", got)
	}

	// Trace propagation (the X-MSite-Trace hop): the owner's build must
	// run under the originating trace ID, and both registries must hold
	// a record with that ID so /debug/traces stitches.
	if got := fb.traceID.Load(); got != tr.ID() {
		t.Fatalf("owner saw trace %v, requester sent %s", got, tr.ID())
	}
	found := false
	for _, rec := range ownerObs.RecentTraces() {
		if rec.ID == tr.ID() && rec.Name == "cluster_bundle" {
			found = true
		}
	}
	if !found {
		t.Fatalf("owner registry missing trace %s", tr.ID())
	}
}

func TestFetchBundleSelfOwnedStaysLocal(t *testing.T) {
	n, err := NewNode(Config{Self: "http://self.invalid"})
	if err != nil {
		t.Fatal(err)
	}
	key := keyOwnedBy(t, n, "http://self.invalid")
	if _, _, remote, err := n.FetchBundle(context.Background(), "forum", key); remote || err != nil {
		t.Fatalf("self-owned key forwarded: remote=%v err=%v", remote, err)
	}
}

func TestTransportRejectsBadToken(t *testing.T) {
	fb := &fakeBuilder{data: []byte("x")}
	_, srv := ownerServer(t, Config{Token: "right"}, map[string]Builder{"forum": fb})

	req, err := NewNode(Config{Self: "http://requester.invalid", Peers: []string{srv.URL}, Token: "wrong"})
	if err != nil {
		t.Fatal(err)
	}
	key := keyOwnedBy(t, req, srv.URL)
	_, _, remote, err := req.FetchBundle(context.Background(), "forum", key)
	if !remote || err == nil {
		t.Fatalf("bad token accepted: remote=%v err=%v", remote, err)
	}
	var ae *fetch.AuthRequiredError
	if !errors.As(err, &ae) {
		t.Fatalf("want AuthRequiredError, got %v", err)
	}
	// An HTTP status is a live peer answering — it must NOT be marked
	// down.
	if o, ok := req.Owner(key); !ok || o != srv.URL {
		t.Fatalf("status error demoted live peer: owner=%q ok=%v", o, ok)
	}
	if fb.builds.Load() != 0 {
		t.Fatal("unauthorized request reached the builder")
	}
}

func TestTransportShedMapsTo503(t *testing.T) {
	fb := &fakeBuilder{err: &admission.ShedError{Reason: "saturated"}}
	_, srv := ownerServer(t, Config{}, map[string]Builder{"forum": fb})
	resp, err := http.Get(srv.URL + PathPrefix + "bundle/forum")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
}

func TestTransportUnknownSite404(t *testing.T) {
	_, srv := ownerServer(t, Config{}, map[string]Builder{})
	for _, path := range []string{"bundle/nope", "snapshot/nope", "bundle/", "bundle/a/b"} {
		resp, err := http.Get(srv.URL + PathPrefix + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// A transport-class failure (refused connection) must fall back local
// AND mark the owner down immediately, so the very next request routes
// around it without re-paying the timeout.
func TestFetchBundleDeadOwnerFallsBackAndDemotes(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	req, err := NewNode(Config{Self: "http://requester.invalid", Peers: []string{deadURL}})
	if err != nil {
		t.Fatal(err)
	}
	key := keyOwnedBy(t, req, deadURL)
	_, _, remote, err := req.FetchBundle(context.Background(), "forum", key)
	if !remote || err == nil {
		t.Fatalf("dead owner: remote=%v err=%v", remote, err)
	}
	// Demoted: every key now routes to the only live node (self).
	if o, ok := req.Owner(key); !ok || o != "http://requester.invalid" {
		t.Fatalf("dead peer still owns %q (owner=%q)", key, o)
	}
}

// The liveness probe (satellite: ring never routes to a dead peer) —
// kill a peer, ProbeOnce, assert no key routes to it; revive, ProbeOnce,
// assert it owns keys again.
func TestProbeMarksDeadPeerAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	n, err := NewNode(Config{Self: "http://self.invalid", Peers: []string{peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	key := keyOwnedBy(t, n, peer.URL)

	n.ProbeOnce(context.Background())
	if o, _ := n.Owner(key); o != peer.URL {
		t.Fatalf("healthy peer demoted: owner=%q", o)
	}

	healthy.Store(false)
	n.ProbeOnce(context.Background())
	// Property: after the probe marks it down, NO key may route to it.
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("bundle:any:%016x:w390:high", uint64(i))
		if o, ok := n.Owner(k); ok && o == peer.URL {
			t.Fatalf("dead peer still routed key %q", k)
		}
	}

	healthy.Store(true)
	n.ProbeOnce(context.Background())
	if o, _ := n.Owner(key); o != peer.URL {
		t.Fatalf("revived peer not restored: owner=%q", o)
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("empty Self accepted")
	}
	if _, err := NewNode(Config{Self: "not-a-url"}); err == nil {
		t.Fatal("schemeless Self accepted")
	}
	if _, err := NewNode(Config{Self: "http://a:1", Peers: []string{"ftp://b:2"}}); err == nil {
		t.Fatal("ftp peer accepted")
	}
	n, err := NewNode(Config{Self: "http://a:1/", Peers: []string{"http://a:1", "http://b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Peers()); got != 2 {
		t.Fatalf("peer count = %d, want 2 (self deduped)", got)
	}
	n.Start()
	n.Close()
	n.Close() // idempotent
}
