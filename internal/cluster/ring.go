// Package cluster scales the adaptation tier out: N msite-proxy
// processes form a consistent-hash ring over the bundle keyspace
// (site, spec hash, device class, fidelity — the durable bundle key),
// and every cold non-personalized build is routed to the key's owning
// peer over an authenticated internal HTTP endpoint. The fleet then
// behaves as one logical render store: a flash crowd spread across
// nodes still costs one pipeline run (the owner's), and each node's
// local cache/store tier fills from the owner instead of the origin.
//
// Membership is static configuration plus liveness: the peer list is
// fixed at boot, a background probe marks peers up or down, and the
// ring is rebuilt from the live subset — so a killed node's keys move
// to its ring successors (bounded movement, the consistent-hashing
// property) and move back when it rejoins. When the owner of a key is
// down or failing, the requesting node builds locally (availability
// over strict ownership).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per peer on the ring. More
// replicas smooth the keyspace split between peers at the cost of a
// larger (still tiny) sorted point table.
const DefaultReplicas = 64

// point is one virtual node: a position on the hash circle owned by a
// peer.
type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node IDs.
// Rebuild on membership change by constructing a new Ring; lookups are
// lock-free on the immutable value.
type Ring struct {
	points []point
}

// hashKey positions a string on the circle: FNV-64a (deterministic
// across processes, which is what makes independent nodes agree on
// ownership without coordination) followed by a splitmix64 finalizer.
// The finalizer matters: raw FNV on short, similar vnode labels
// ("…:9000#0", "…:9001#0", …) clusters badly enough that one of four
// nodes can own half the keyspace; the mix restores avalanche and
// brings per-node share within ~±12% of fair at DefaultReplicas.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring with replicas virtual nodes per member
// (replicas <= 0 uses DefaultReplicas). An empty member list yields a
// ring that owns nothing.
func NewRing(replicas int, nodes []string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{points: make([]point, 0, replicas*len(nodes))}
	for _, n := range nodes {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{hashKey(fmt.Sprintf("%s#%d", n, i)), n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node name so every
		// process sorts the circle identically.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the node owning key: the first virtual node clockwise
// from the key's position. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	if r == nil || len(r.points) == 0 {
		return "", false
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point succeeds its last
	}
	return r.points[i].node, true
}

// Nodes returns the distinct members on the ring, sorted.
func (r *Ring) Nodes() []string {
	if r == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.points {
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	sort.Strings(out)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.Nodes()) }
