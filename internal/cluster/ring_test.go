package cluster

import (
	"fmt"
	"testing"
)

// ringKeys fabricates a deterministic keyspace shaped like real bundle
// keys (site, spec hash, width, fidelity).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("bundle:site%d:%016x:w%d:high", i%97, uint64(i)*0x9e3779b97f4a7c15, 320+10*(i%4))
	}
	return keys
}

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://127.0.0.1:%d", 9000+i)
	}
	return nodes
}

// Assignment must be a pure function of (membership, key): two rings
// over the same members — even listed in a different order — agree on
// every key, and repeated lookups never drift. This is what lets N
// independent processes route without coordination.
func TestRingStableAssignment(t *testing.T) {
	nodes := ringNodes(5)
	shuffled := []string{nodes[3], nodes[0], nodes[4], nodes[2], nodes[1]}
	a := NewRing(0, nodes)
	b := NewRing(0, shuffled)
	for _, key := range ringKeys(5000) {
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		if ob, _ := b.Owner(key); ob != oa {
			t.Fatalf("order-dependent assignment for %q: %s vs %s", key, oa, ob)
		}
		if again, _ := a.Owner(key); again != oa {
			t.Fatalf("unstable repeat lookup for %q: %s then %s", key, oa, again)
		}
	}
}

// A single join must move at most roughly its fair share of keys
// (keys/N plus vnode-variance slack); everything else stays put. This
// is the bounded-movement property that makes membership churn cheap.
func TestRingBoundedMovementOnJoin(t *testing.T) {
	keys := ringKeys(20000)
	nodes := ringNodes(5)
	before := NewRing(0, nodes[:4])
	after := NewRing(0, nodes)
	moved := 0
	for _, key := range keys {
		ob, _ := before.Owner(key)
		oa, _ := after.Owner(key)
		if ob != oa {
			moved++
			// Every moved key must have moved TO the joiner — a join may
			// not reshuffle keys between incumbent nodes.
			if oa != nodes[4] {
				t.Fatalf("join moved %q between incumbents: %s -> %s", key, ob, oa)
			}
		}
	}
	// Fair share is keys/5; allow 75% slack for 64-vnode variance.
	limit := len(keys)/5 + len(keys)*3/20
	if moved == 0 || moved > limit {
		t.Fatalf("join moved %d keys, want (0, %d]", moved, limit)
	}
}

// A single leave must move exactly the departed node's keys — to its
// ring successors — and nothing else.
func TestRingBoundedMovementOnLeave(t *testing.T) {
	keys := ringKeys(20000)
	nodes := ringNodes(5)
	before := NewRing(0, nodes)
	after := NewRing(0, nodes[:4])
	moved := 0
	for _, key := range keys {
		ob, _ := before.Owner(key)
		oa, _ := after.Owner(key)
		if ob == nodes[4] {
			if oa == nodes[4] {
				t.Fatalf("departed node still owns %q", key)
			}
			moved++
			continue
		}
		if oa != ob {
			t.Fatalf("leave moved %q owned by surviving %s to %s", key, ob, oa)
		}
	}
	limit := len(keys)/5 + len(keys)*3/20
	if moved == 0 || moved > limit {
		t.Fatalf("leave moved %d keys, want (0, %d]", moved, limit)
	}
}

// The vnode count must spread the keyspace roughly evenly: no node may
// own more than ~2x its fair share at DefaultReplicas.
func TestRingBalance(t *testing.T) {
	nodes := ringNodes(4)
	r := NewRing(0, nodes)
	counts := map[string]int{}
	keys := ringKeys(20000)
	for _, key := range keys {
		o, _ := r.Owner(key)
		counts[o]++
	}
	fair := len(keys) / len(nodes)
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s owns nothing", n)
		}
		if counts[n] > 2*fair {
			t.Fatalf("node %s owns %d keys, more than 2x fair share %d", n, counts[n], fair)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if _, ok := NewRing(0, nil).Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	var nilRing *Ring
	if _, ok := nilRing.Owner("k"); ok {
		t.Fatal("nil ring claimed an owner")
	}
	solo := NewRing(0, []string{"http://a:1"})
	for _, key := range ringKeys(100) {
		if o, ok := solo.Owner(key); !ok || o != "http://a:1" {
			t.Fatalf("single-node ring routed %q to %q", key, o)
		}
	}
	if got := solo.Size(); got != 1 {
		t.Fatalf("Size() = %d, want 1", got)
	}
}
