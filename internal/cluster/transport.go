package cluster

import (
	"crypto/subtle"
	"encoding/json"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"msite/internal/admission"
	"msite/internal/obs"
)

// Handler returns the peer transport: the authenticated internal
// endpoints other nodes fetch bundles and shared snapshots from, plus
// the health endpoint the probe loop hits. Mount it at PathPrefix on
// the node's serving mux (core does this when cluster mode is on).
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathPrefix+"health", n.handleHealth)
	mux.HandleFunc(PathPrefix+"bundle/", n.handleBundle)
	mux.HandleFunc(PathPrefix+"snapshot/", n.handleSnapshot)
	return mux
}

// authorized checks the shared bearer token (constant-time compare).
// An empty configured token admits everything — trusted-network mode.
func (n *Node) authorized(r *http.Request) bool {
	if n.cfg.Token == "" {
		return true
	}
	got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	return subtle.ConstantTimeCompare([]byte(got), []byte(n.cfg.Token)) == 1
}

// healthBody is the health endpoint's JSON answer.
type healthBody struct {
	ID    string   `json:"id"`
	Sites []string `json:"sites"`
	Ring  int      `json:"ring_nodes"`
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !n.authorized(r) {
		http.Error(w, "cluster: bad token", http.StatusUnauthorized)
		return
	}
	n.mu.Lock()
	body := healthBody{ID: n.self, Ring: n.ring.Size()}
	for name := range n.sites {
		body.Sites = append(body.Sites, name)
	}
	n.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}

// siteFromPath extracts the site name from /internal/cluster/<kind>/<site>.
func siteFromPath(path, kind string) (string, bool) {
	rest := strings.TrimPrefix(path, PathPrefix+kind+"/")
	if rest == "" || rest == path || strings.Contains(rest, "/") {
		return "", false
	}
	name, err := url.PathUnescape(rest)
	if err != nil {
		return "", false
	}
	return name, true
}

// handleBundle serves a site's encoded bundle to a peer, building it
// (through this node's admission controller — the proxied build's one
// slot lives here, on the owner) when cold. The originating trace ID,
// when forwarded, becomes this node's trace ID for the build, so both
// nodes' /debug/traces stitch.
func (n *Node) handleBundle(w http.ResponseWriter, r *http.Request) {
	if !n.authorized(r) {
		http.Error(w, "cluster: bad token", http.StatusUnauthorized)
		return
	}
	site, ok := siteFromPath(r.URL.Path, "bundle")
	if !ok {
		http.NotFound(w, r)
		return
	}
	b, ok := n.site(site)
	if !ok {
		http.Error(w, "cluster: unknown site "+site, http.StatusNotFound)
		return
	}
	ctx := r.Context()
	var tr *obs.Trace
	if n.cfg.Obs != nil {
		ctx, tr = n.cfg.Obs.StartTraceWithID(ctx, "cluster_bundle", r.Header.Get(traceHeader))
		defer tr.End()
		tr.Annotate("site", site)
		tr.Annotate("cluster", "owner_build")
		w.Header().Set(traceHeader, tr.ID())
	}
	data, built, err := b.ClusterBuild(ctx)
	if err != nil {
		tr.Annotate("error", err.Error())
		if shed, isShed := admission.IsShed(err); isShed {
			w.Header().Set("Retry-After", strconv.Itoa(admission.RetryAfterSeconds(shed.RetryAfter)))
			http.Error(w, "cluster: owner shedding", http.StatusServiceUnavailable)
			return
		}
		http.Error(w, "cluster: build failed", http.StatusBadGateway)
		return
	}
	if built {
		n.count("msite_cluster_owner_builds_total", "site", site)
	}
	w.Header().Set("Content-Type", bundleMIME)
	_, _ = w.Write(data)
}

// handleSnapshot serves a site's shared snapshot cache entry (MIME +
// bytes as JSON); 404 when the site has none warm. Requesters seed
// their local snapshot cache with it so the forwarded build also
// skips the layout/raster/encode cost.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !n.authorized(r) {
		http.Error(w, "cluster: bad token", http.StatusUnauthorized)
		return
	}
	site, ok := siteFromPath(r.URL.Path, "snapshot")
	if !ok {
		http.NotFound(w, r)
		return
	}
	b, ok := n.site(site)
	if !ok {
		http.Error(w, "cluster: unknown site "+site, http.StatusNotFound)
		return
	}
	e, ok := b.ClusterSnapshot()
	if !ok {
		http.Error(w, "cluster: no shared snapshot", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(snapshotWire{MIME: e.MIME, Data: e.Data})
}
