package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"msite/internal/cache"
	"msite/internal/fetch"
	"msite/internal/obs"
)

// DefaultProbeInterval is the liveness probe period.
const DefaultProbeInterval = 2 * time.Second

// DefaultPeerTimeout bounds one peer transport request. It must cover
// the owner's cold build (pipeline run, not just a cache read), so it
// is far longer than a health probe's budget.
const DefaultPeerTimeout = 20 * time.Second

// PathPrefix is where the peer transport mounts on each node's serving
// mux.
const PathPrefix = "/internal/cluster/"

// traceHeader mirrors proxy.TraceHeader: a forwarded build carries the
// originating request's trace ID, so /debug/traces on the requesting
// and owning nodes stitch into one story.
const traceHeader = "X-MSite-Trace"

// bundleMIME is the Content-Type the bundle endpoint serves — the same
// type the cache stores bundles under.
const bundleMIME = "application/x-msite-bundle"

// Builder is the per-site surface the peer transport serves;
// *proxy.Proxy implements it. The indirection keeps the transport
// testable against fakes without full adaptation pipelines.
type Builder interface {
	// ClusterBuild returns the site's encoded bundle, building it
	// through the owner's admission controller when cold. built reports
	// whether a pipeline run actually happened.
	ClusterBuild(ctx context.Context) (data []byte, built bool, err error)
	// ClusterSnapshot returns the site's shared snapshot cache entry,
	// ok=false when absent or not shared.
	ClusterSnapshot() (cache.Entry, bool)
}

// Config wires a Node.
type Config struct {
	// Self is this node's advertised base URL — its identity on the
	// ring, and the ClusterPeers entry other nodes reach its
	// /internal/cluster/ endpoints at (the -cluster-listen knob).
	Self string
	// Peers is the full static fleet, including Self (the -cluster-peers
	// knob). Self is added if absent.
	Peers []string
	// Replicas is the virtual-node count per peer (the -cluster-replicas
	// knob; <= 0 uses DefaultReplicas).
	Replicas int
	// Token is the shared bearer token authenticating peer transport
	// requests (the -cluster-token knob). Empty serves unauthenticated —
	// acceptable only on a trusted internal network.
	Token string
	// ProbeInterval is the liveness probe period (0 uses
	// DefaultProbeInterval).
	ProbeInterval time.Duration
	// PeerTimeout bounds one peer transport request (0 uses
	// DefaultPeerTimeout).
	PeerTimeout time.Duration
	// Retries is the retry budget per peer fetch (fetch.WithRetries).
	Retries int
	// Obs receives the msite_cluster_* metrics and the owner-side
	// transport traces. Nil disables both.
	Obs *obs.Registry
	// Logger, when set, gets a line per membership transition.
	Logger *slog.Logger
}

// Node is one member of the cluster: the ring + membership state, the
// requester-side peer client, and the owner-side transport handler.
type Node struct {
	cfg  Config
	self string
	// breakers short-circuits requests to a peer that keeps failing —
	// the same circuit-breaker machinery the origin fetch path uses,
	// keyed per peer host.
	breakers *fetch.BreakerSet
	probes   *http.Client

	mu    sync.Mutex
	alive map[string]bool
	ring  *Ring
	sites map[string]Builder

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewNode validates cfg and builds the membership state. Every peer
// starts presumed alive (a fleet booting together must not all mark
// each other down before the first probe); the probe loop corrects the
// picture within one interval.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self (the -cluster-listen advertised URL) is required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = DefaultPeerTimeout
	}
	self, err := normalizePeer(cfg.Self)
	if err != nil {
		return nil, err
	}
	peers := make([]string, 0, len(cfg.Peers)+1)
	seen := map[string]bool{}
	for _, p := range append([]string{cfg.Self}, cfg.Peers...) {
		u, err := normalizePeer(p)
		if err != nil {
			return nil, err
		}
		if !seen[u] {
			seen[u] = true
			peers = append(peers, u)
		}
	}
	n := &Node{
		cfg:      cfg,
		self:     self,
		breakers: fetch.NewBreakerSet(fetch.BreakerConfig{}),
		// Probes get a short independent budget: a health check must not
		// wait out a slow build on the peer's mux.
		probes: &http.Client{Timeout: probeTimeout(cfg.ProbeInterval)},
		alive:  make(map[string]bool, len(peers)),
		sites:  make(map[string]Builder),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if cfg.Obs != nil {
		n.breakers.SetObs(cfg.Obs)
	}
	for _, p := range peers {
		n.alive[p] = true
	}
	n.rebuildLocked()
	return n, nil
}

// normalizePeer canonicalizes a peer URL for ring identity: scheme
// required (http/https), trailing slash dropped.
func normalizePeer(raw string) (string, error) {
	raw = strings.TrimSuffix(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", errors.New("cluster: bad peer URL " + raw)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", errors.New("cluster: peer URL " + raw + " must be http(s)://host:port")
	}
	return raw, nil
}

func probeTimeout(interval time.Duration) time.Duration {
	if interval < time.Second {
		return interval
	}
	return time.Second
}

// SetSites points the transport at the node's proxies, keyed by site
// name. Called once at boot, after the proxies exist.
func (n *Node) SetSites(sites map[string]Builder) {
	n.mu.Lock()
	n.sites = sites
	n.mu.Unlock()
}

// Self returns the node's normalized ring identity.
func (n *Node) Self() string { return n.self }

// Peers returns the configured fleet (alive or not), sorted by the
// ring's member listing when all are up.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.alive))
	for p := range n.alive {
		out = append(out, p)
	}
	return out
}

// Owner returns the live peer owning key (the requester-side routing
// decision). ok is false when no peer is live — callers then build
// locally.
func (n *Node) Owner(key string) (string, bool) {
	n.mu.Lock()
	r := n.ring
	n.mu.Unlock()
	return r.Owner(key)
}

// rebuildLocked reconstructs the ring from the live subset and updates
// the membership gauges. Caller holds n.mu.
func (n *Node) rebuildLocked() {
	var live []string
	for p, ok := range n.alive {
		if ok {
			live = append(live, p)
		}
	}
	n.ring = NewRing(n.cfg.Replicas, live)
	if n.cfg.Obs != nil {
		n.cfg.Obs.Gauge("msite_cluster_ring_nodes").Set(float64(len(live)))
		for p, ok := range n.alive {
			v := 0.0
			if ok {
				v = 1
			}
			n.cfg.Obs.Gauge("msite_cluster_peer_state", "peer", p).Set(v)
		}
	}
}

// setAlive transitions one peer's liveness, rebuilding the ring on
// change. Returns whether the state changed.
func (n *Node) setAlive(peer string, alive bool) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur, known := n.alive[peer]; !known || cur == alive {
		return false
	}
	n.alive[peer] = alive
	n.rebuildLocked()
	if n.cfg.Logger != nil {
		n.cfg.Logger.Info("cluster membership change",
			"peer", peer, "alive", alive, "ring_nodes", n.ring.Size())
	}
	return true
}

// Start launches the liveness probe loop; Close stops it. A node used
// without Start (tests driving ProbeOnce by hand) still routes — every
// peer is presumed alive until evidence arrives.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		go n.loop()
	})
}

// Close stops the probe loop. Safe without Start, and more than once.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.startOnce.Do(func() { close(n.done) })
	<-n.done
}

func (n *Node) loop() {
	defer close(n.done)
	ticker := time.NewTicker(n.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeInterval)
		n.ProbeOnce(ctx)
		cancel()
	}
}

// ProbeOnce liveness-checks every peer (except self) once, marking each
// up or down and rebuilding the ring on transitions. Exported so tests
// and benches converge membership deterministically instead of waiting
// out the probe ticker.
func (n *Node) ProbeOnce(ctx context.Context) {
	n.mu.Lock()
	peers := make([]string, 0, len(n.alive))
	for p := range n.alive {
		if p != n.self {
			peers = append(peers, p)
		}
	}
	n.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			n.setAlive(peer, n.probe(ctx, peer))
		}(p)
	}
	wg.Wait()
}

// probe reports whether one peer answers its health endpoint.
func (n *Node) probe(ctx context.Context, peer string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+PathPrefix+"health", nil)
	if err != nil {
		return false
	}
	n.authorize(req.Header)
	resp, err := n.probes.Do(req)
	if err != nil {
		return false
	}
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (n *Node) authorize(h http.Header) {
	if n.cfg.Token != "" {
		h.Set("Authorization", "Bearer "+n.cfg.Token)
	}
}

// peerFetcher builds the requester-side client for one forwarded
// build: the fetch package's retry/breaker machinery (breakers keyed by
// peer host), the bearer token, and the originating trace ID.
func (n *Node) peerFetcher(ctx context.Context) *fetch.Fetcher {
	opts := []fetch.Option{
		fetch.WithTimeout(n.cfg.PeerTimeout),
		fetch.WithBreaker(n.breakers),
	}
	if n.cfg.Retries > 0 {
		opts = append(opts, fetch.WithRetries(n.cfg.Retries))
	}
	if n.cfg.Token != "" {
		opts = append(opts, fetch.WithHeader("Authorization", "Bearer "+n.cfg.Token))
	}
	if id := obs.TraceFrom(ctx).ID(); id != "" {
		opts = append(opts, fetch.WithHeader(traceHeader, id))
	}
	if n.cfg.Obs != nil {
		opts = append(opts, fetch.WithObs(n.cfg.Obs))
	}
	return fetch.New(nil, opts...)
}

// snapshotWire is the snapshot endpoint's JSON body (Data is base64 on
// the wire, per encoding/json's []byte convention).
type snapshotWire struct {
	MIME string `json:"mime"`
	Data []byte `json:"data"`
}

// FetchBundle implements the proxy's cluster hook: it resolves key's
// ring owner and, when that owner is a remote live peer, fetches its
// encoded bundle (and shared snapshot, best-effort).
//
// remote=false means this node owns the key — or no peer is live — and
// the caller should build locally as usual. remote=true with a non-nil
// err means the owner was tried and failed: the caller takes over
// locally (availability over ownership), and the failing peer is
// marked down immediately on transport-class errors so the next
// request does not re-pay the timeout before the probe loop catches up.
func (n *Node) FetchBundle(ctx context.Context, site, key string) (bundle []byte, snapshot *cache.Entry, remote bool, err error) {
	owner, ok := n.Owner(key)
	if !ok || owner == n.self {
		return nil, nil, false, nil
	}
	f := n.peerFetcher(ctx)
	page, err := f.GetContext(ctx, owner+PathPrefix+"bundle/"+url.PathEscape(site))
	if err != nil {
		n.peerError(owner, site, err)
		return nil, nil, true, err
	}
	n.count("msite_cluster_forwarded_total", "peer", owner)
	var snap *cache.Entry
	if sp, serr := f.GetContext(ctx, owner+PathPrefix+"snapshot/"+url.PathEscape(site)); serr == nil {
		var w snapshotWire
		if json.Unmarshal(sp.Body, &w) == nil && len(w.Data) > 0 {
			snap = &cache.Entry{Data: w.Data, MIME: w.MIME}
		}
	}
	return page.Body, snap, true, nil
}

// peerError accounts a failed forward and, for transport-class
// failures (refused, reset, timeout, DNS — not an HTTP status or auth
// challenge from a peer that is evidently alive), marks the owner down
// without waiting for the next probe, so the next request routes
// around it instead of re-paying the timeout.
func (n *Node) peerError(owner, site string, err error) {
	n.count("msite_cluster_peer_errors_total", "peer", owner)
	n.count("msite_cluster_fallback_local_total", "site", site)
	var fe *fetch.Error
	if !errors.As(err, &fe) {
		return
	}
	switch fe.Kind {
	case fetch.KindTimeout, fetch.KindRefused, fetch.KindReset, fetch.KindDNS, fetch.KindTransport:
		n.setAlive(owner, false)
	}
}

func (n *Node) count(name string, labels ...string) {
	if n.cfg.Obs != nil {
		n.cfg.Obs.Counter(name, labels...).Inc()
	}
}

func (n *Node) site(name string) (Builder, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.sites[name]
	return b, ok
}
