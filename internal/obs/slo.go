package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"
)

// This file is the SLO engine: declarative service-level objectives
// evaluated against the metric registry over rolling windows, with
// multi-window burn-rate alerting (the SRE-workbook fast/slow pattern).
// An objective is a good-events / total-events ratio with a target;
// the burn rate over a window is (bad ratio in window) / (1 - target),
// i.e. how many times faster than "exactly on target" the error budget
// is being spent. An alert fires only when BOTH the fast window (catches
// a spike quickly) and the slow window (filters one-off blips) burn
// above their thresholds.

// Default SLO evaluation parameters. The windows follow the common
// page-level pairing scaled to a single node: a short window for
// detection latency, a longer one for confirmation.
const (
	DefaultSLOInterval   = 5 * time.Second
	DefaultSLOFastWindow = time.Minute
	DefaultSLOSlowWindow = 15 * time.Minute
	// DefaultFastBurn / DefaultSlowBurn are the alerting thresholds.
	DefaultFastBurn = 14.0
	DefaultSlowBurn = 6.0
	// DefaultSLOMinEvents is the minimum total events inside the fast
	// window before an alert may fire (one bad request out of one total
	// is a 100% bad ratio but no signal).
	DefaultSLOMinEvents = 10.0
)

// Objective is one declarative service-level objective: a target on the
// ratio of good events to total events, both derived from a registry
// snapshot as cumulative counts.
type Objective struct {
	// Name identifies the objective (the msite_slo_* metric label).
	Name string
	// Description is the human-readable promise.
	Description string
	// Target is the objective level in (0,1): the fraction of events
	// that must be good (e.g. 0.999 availability).
	Target float64
	// Good and Total derive the cumulative good/total event counts from
	// a snapshot. Total must be monotonic; Good ≤ Total.
	Good  func(Snapshot) float64
	Total func(Snapshot) float64
}

// LatencyObjective builds an objective over a latency histogram family:
// a request is good when it completed within threshold. target is the
// required good fraction (0.99 for a p99 promise). The threshold snaps
// down to the nearest histogram bucket bound, since bucket counts are
// the only sub-distribution data available.
func LatencyObjective(name, description, histogram string, threshold time.Duration, target float64) Objective {
	limit := threshold.Seconds()
	return Objective{
		Name:        name,
		Description: description,
		Target:      target,
		Good: func(s Snapshot) float64 {
			var good float64
			for _, h := range s.Histograms {
				if h.Name != histogram {
					continue
				}
				good += bucketCountAtOrBelow(h, limit)
			}
			return good
		},
		Total: func(s Snapshot) float64 {
			var total float64
			for _, h := range s.Histograms {
				if h.Name == histogram {
					total += float64(h.Count)
				}
			}
			return total
		},
	}
}

// bucketCountAtOrBelow returns the cumulative count of observations in
// buckets whose upper bound is ≤ limit — the largest measurable
// good-event count for a latency threshold (the threshold snaps down to
// a bucket bound; observations between that bound and the threshold
// count as bad, erring on the strict side). A limit at or above the
// highest finite bound counts everything finite.
func bucketCountAtOrBelow(h HistogramStat, limit float64) float64 {
	var count float64
	for _, b := range h.Buckets {
		if math.IsInf(b.UpperBound, 1) {
			continue
		}
		if b.UpperBound <= limit+1e-12 {
			count = float64(b.Count)
		}
	}
	return count
}

// RatioObjective builds an objective from two cumulative counter sums:
// good and total are each the sum of every series of the named counter
// families (bad families subtract from good).
func RatioObjective(name, description string, target float64, goodOf, totalOf func(Snapshot) float64) Objective {
	return Objective{Name: name, Description: description, Target: target, Good: goodOf, Total: totalOf}
}

// CounterSum sums every series of a counter family in a snapshot.
func CounterSum(s Snapshot, family string) float64 {
	var sum float64
	for _, c := range s.Counters {
		if c.Name == family {
			sum += float64(c.Value)
		}
	}
	return sum
}

// AvailabilityObjective promises that at least target of proxied
// requests complete without a 5xx.
func AvailabilityObjective(target float64) Objective {
	return RatioObjective(
		"availability",
		fmt.Sprintf("≥ %.4g of requests answered without a 5xx", target),
		target,
		func(s Snapshot) float64 {
			return CounterSum(s, "msite_proxy_requests_total") - CounterSum(s, "msite_proxy_errors_total")
		},
		func(s Snapshot) float64 { return CounterSum(s, "msite_proxy_requests_total") },
	)
}

// WarmHitObjective promises that at least target of render-cache
// lookups hit (warm serving is the product's latency story; a falling
// hit ratio is a leading indicator of p99 trouble).
func WarmHitObjective(target float64) Objective {
	return RatioObjective(
		"warm_hit_ratio",
		fmt.Sprintf("≥ %.4g of render-cache lookups served warm", target),
		target,
		func(s Snapshot) float64 { return CounterSum(s, "msite_cache_hits_total") },
		func(s Snapshot) float64 {
			return CounterSum(s, "msite_cache_hits_total") + CounterSum(s, "msite_cache_misses_total")
		},
	)
}

// AdaptationLatencyObjective promises that at least 99% of proxied
// requests complete within threshold — the "-slo-target-p99" flag's
// objective.
func AdaptationLatencyObjective(threshold time.Duration) Objective {
	return LatencyObjective(
		"latency_p99",
		fmt.Sprintf("p99 request latency ≤ %v", threshold),
		"msite_http_request_seconds",
		threshold,
		0.99,
	)
}

// Alert is one burn-rate alert: both windows of an objective burned
// above threshold.
type Alert struct {
	// Objective is the objective name.
	Objective string `json:"objective"`
	// Time is when the evaluation fired.
	Time time.Time `json:"time"`
	// FastBurn / SlowBurn are the burn rates that tripped.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// FastBad / FastTotal are the fast window's event counts.
	FastBad   float64 `json:"fast_bad"`
	FastTotal float64 `json:"fast_total"`
}

// SLOConfig tunes an SLOEngine. The zero value uses the defaults above.
type SLOConfig struct {
	// Interval is the evaluation tick.
	Interval time.Duration
	// FastWindow / SlowWindow are the burn-rate windows. Both are
	// rounded up to a whole number of intervals.
	FastWindow, SlowWindow time.Duration
	// FastBurn / SlowBurn are the alert thresholds.
	FastBurn, SlowBurn float64
	// MinEvents gates alerting on the fast window's total event count.
	MinEvents float64
	// OnAlert, when non-nil, receives each alert as an objective
	// transitions into the alerting state (edge-triggered). Called from
	// the evaluation goroutine; must not block.
	OnAlert func(Alert)
	// Clock is the time source (tests inject a fake one). Nil uses
	// time.Now.
	Clock func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Interval <= 0 {
		c.Interval = DefaultSLOInterval
	}
	if c.FastWindow <= 0 {
		c.FastWindow = DefaultSLOFastWindow
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = DefaultSLOSlowWindow
	}
	if c.FastBurn <= 0 {
		c.FastBurn = DefaultFastBurn
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = DefaultSlowBurn
	}
	if c.MinEvents <= 0 {
		c.MinEvents = DefaultSLOMinEvents
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// sloSample is one tick's cumulative good/total per objective.
type sloSample struct {
	at    time.Time
	good  []float64
	total []float64
}

// ObjectiveStatus is one objective's current evaluation, as served by
// /slo.
type ObjectiveStatus struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Target      float64 `json:"target"`
	// FastBurn / SlowBurn are the current burn rates (1.0 = spending
	// budget exactly at the sustainable rate).
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// Compliance is the good-event ratio over the slow window.
	Compliance float64 `json:"compliance"`
	// BudgetRemaining is the fraction of the slow window's error budget
	// left (clamped at 0).
	BudgetRemaining float64 `json:"budget_remaining"`
	// Alerting reports whether both windows currently burn above their
	// thresholds.
	Alerting bool `json:"alerting"`
	// FastTotal / SlowTotal are the windows' total event counts.
	FastTotal float64 `json:"fast_total"`
	SlowTotal float64 `json:"slow_total"`
	// LastEval is when this status was computed.
	LastEval time.Time `json:"last_eval"`
}

// SLOEngine evaluates objectives against a registry on a ticker,
// exports msite_slo_* metrics, and fires edge-triggered burn-rate
// alerts. Create with NewSLOEngine, start with Start, stop with Stop.
type SLOEngine struct {
	reg        *Registry
	cfg        SLOConfig
	objectives []Objective

	mu       sync.Mutex
	samples  []sloSample // ring, oldest first, bounded by slow window
	status   []ObjectiveStatus
	alerting []bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSLOEngine builds an engine over reg with the given objectives.
func NewSLOEngine(reg *Registry, cfg SLOConfig, objectives ...Objective) *SLOEngine {
	e := &SLOEngine{
		reg:        reg,
		cfg:        cfg.withDefaults(),
		objectives: objectives,
		alerting:   make([]bool, len(objectives)),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	e.status = make([]ObjectiveStatus, len(objectives))
	for i, o := range objectives {
		e.status[i] = ObjectiveStatus{Name: o.Name, Description: o.Description, Target: o.Target, BudgetRemaining: 1}
	}
	return e
}

// Objectives returns the configured objectives.
func (e *SLOEngine) Objectives() []Objective { return e.objectives }

// Start launches the evaluation ticker. Call Stop to end it.
func (e *SLOEngine) Start() {
	go func() {
		defer close(e.done)
		ticker := time.NewTicker(e.cfg.Interval)
		defer ticker.Stop()
		e.Eval() // establish the first sample immediately
		for {
			select {
			case <-ticker.C:
				e.Eval()
			case <-e.stop:
				return
			}
		}
	}()
}

// Stop ends the evaluation ticker. Safe to call more than once; only
// the first call blocks for the goroutine.
func (e *SLOEngine) Stop() {
	e.stopOnce.Do(func() {
		close(e.stop)
		<-e.done
	})
}

// maxSamples bounds the sample ring: enough ticks to cover the slow
// window, plus the current one.
func (e *SLOEngine) maxSamples() int {
	n := int(e.cfg.SlowWindow/e.cfg.Interval) + 1
	if n < 2 {
		n = 2
	}
	return n
}

// windowDelta finds the oldest sample within window of now and returns
// the (good, total) deltas for objective i since it. With only the
// current sample the deltas are zero.
func windowDelta(samples []sloSample, now time.Time, window time.Duration, i int) (good, total float64) {
	cur := samples[len(samples)-1]
	// Walk from the oldest; the first sample inside the window is the
	// baseline. If every older sample fell out of the window, use the
	// newest of them (covering slightly more than the window beats
	// covering nothing).
	baseline := samples[0]
	for _, s := range samples[:len(samples)-1] {
		if now.Sub(s.at) <= window {
			baseline = s
			break
		}
		baseline = s
	}
	return cur.good[i] - baseline.good[i], cur.total[i] - baseline.total[i]
}

// burnRate converts window deltas into a budget burn rate.
func burnRate(good, total, target float64) float64 {
	if total <= 0 {
		return 0
	}
	bad := total - good
	if bad < 0 {
		bad = 0
	}
	budget := 1 - target
	if budget <= 0 {
		budget = 1e-9
	}
	return (bad / total) / budget
}

// Eval runs one evaluation pass: sample the registry, recompute burn
// rates, update the msite_slo_* metrics, and fire edge-triggered
// alerts. Start calls it on the ticker; tests and benches may call it
// directly.
func (e *SLOEngine) Eval() {
	if len(e.objectives) == 0 {
		return
	}
	now := e.cfg.Clock()
	snap := e.reg.Snapshot()
	sample := sloSample{
		at:    now,
		good:  make([]float64, len(e.objectives)),
		total: make([]float64, len(e.objectives)),
	}
	for i, o := range e.objectives {
		sample.good[i] = o.Good(snap)
		sample.total[i] = o.Total(snap)
	}

	var fired []Alert
	e.mu.Lock()
	e.samples = append(e.samples, sample)
	if max := e.maxSamples(); len(e.samples) > max {
		e.samples = e.samples[len(e.samples)-max:]
	}
	for i, o := range e.objectives {
		fastGood, fastTotal := windowDelta(e.samples, now, e.cfg.FastWindow, i)
		slowGood, slowTotal := windowDelta(e.samples, now, e.cfg.SlowWindow, i)
		fast := burnRate(fastGood, fastTotal, o.Target)
		slow := burnRate(slowGood, slowTotal, o.Target)
		compliance := 1.0
		if slowTotal > 0 {
			compliance = slowGood / slowTotal
		}
		budget := 1 - slow
		if budget < 0 {
			budget = 0
		}
		alerting := fast >= e.cfg.FastBurn && slow >= e.cfg.SlowBurn && fastTotal >= e.cfg.MinEvents
		if alerting && !e.alerting[i] {
			fired = append(fired, Alert{
				Objective: o.Name, Time: now,
				FastBurn: fast, SlowBurn: slow,
				FastBad: fastTotal - fastGood, FastTotal: fastTotal,
			})
		}
		e.alerting[i] = alerting
		e.status[i] = ObjectiveStatus{
			Name: o.Name, Description: o.Description, Target: o.Target,
			FastBurn: fast, SlowBurn: slow,
			Compliance: compliance, BudgetRemaining: budget,
			Alerting:  alerting,
			FastTotal: fastTotal, SlowTotal: slowTotal,
			LastEval: now,
		}
	}
	e.mu.Unlock()

	// Metric export happens outside e.mu (registry locks are
	// independent, but keeping the critical section tight is cheap).
	for _, st := range e.Status() {
		e.reg.Gauge("msite_slo_burn_rate", "objective", st.Name, "window", "fast").Set(st.FastBurn)
		e.reg.Gauge("msite_slo_burn_rate", "objective", st.Name, "window", "slow").Set(st.SlowBurn)
		e.reg.Gauge("msite_slo_compliance", "objective", st.Name).Set(st.Compliance)
		e.reg.Gauge("msite_slo_budget_remaining", "objective", st.Name).Set(st.BudgetRemaining)
		alerting := 0.0
		if st.Alerting {
			alerting = 1
		}
		e.reg.Gauge("msite_slo_alerting", "objective", st.Name).Set(alerting)
	}
	for _, a := range fired {
		e.reg.Counter("msite_slo_alerts_total", "objective", a.Objective).Inc()
		if e.cfg.OnAlert != nil {
			e.cfg.OnAlert(a)
		}
	}
}

// Status returns a copy of every objective's latest evaluation.
func (e *SLOEngine) Status() []ObjectiveStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveStatus, len(e.status))
	copy(out, e.status)
	return out
}

// SLOHandler serves the engine's objective statuses at /slo:
// Prometheus text exposition by default (the msite_slo_* series), JSON
// with Accept: application/json or ?format=json — the same negotiation
// as /metrics.
func SLOHandler(e *SLOEngine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		status := e.Status()
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(map[string]any{"objectives": status})
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		b.WriteString("# TYPE msite_slo_burn_rate gauge\n")
		for _, st := range status {
			fmt.Fprintf(&b, "msite_slo_burn_rate{objective=%q,window=\"fast\"} %s\n", st.Name, formatFloat(st.FastBurn))
			fmt.Fprintf(&b, "msite_slo_burn_rate{objective=%q,window=\"slow\"} %s\n", st.Name, formatFloat(st.SlowBurn))
		}
		b.WriteString("# TYPE msite_slo_compliance gauge\n")
		for _, st := range status {
			fmt.Fprintf(&b, "msite_slo_compliance{objective=%q} %s\n", st.Name, formatFloat(st.Compliance))
		}
		b.WriteString("# TYPE msite_slo_budget_remaining gauge\n")
		for _, st := range status {
			fmt.Fprintf(&b, "msite_slo_budget_remaining{objective=%q} %s\n", st.Name, formatFloat(st.BudgetRemaining))
		}
		b.WriteString("# TYPE msite_slo_alerting gauge\n")
		for _, st := range status {
			v := 0.0
			if st.Alerting {
				v = 1
			}
			fmt.Fprintf(&b, "msite_slo_alerting{objective=%q} %s\n", st.Name, formatFloat(v))
		}
		_, _ = w.Write([]byte(b.String()))
	})
}
