package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source for SLO/recorder tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func gaugeValue(t *testing.T, s Snapshot, name string, kv ...string) float64 {
	t.Helper()
	for _, g := range s.Gauges {
		if g.Name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(kv); i += 2 {
			if labelValue(g.Labels, kv[i]) != kv[i+1] {
				match = false
				break
			}
		}
		if match {
			return g.Value
		}
	}
	t.Fatalf("gauge %s%v not found", name, kv)
	return 0
}

func TestLatencyObjectiveBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("msite_http_request_seconds", DefaultLatencyBuckets, "site", "forum")
	for i := 0; i < 9; i++ {
		h.Observe(0.01) // within the 250ms promise
	}
	h.Observe(0.4) // lands in the 0.5 bucket: bad

	o := AdaptationLatencyObjective(250 * time.Millisecond)
	snap := r.Snapshot()
	if got := o.Good(snap); got != 9 {
		t.Fatalf("good = %v, want 9", got)
	}
	if got := o.Total(snap); got != 10 {
		t.Fatalf("total = %v, want 10", got)
	}
	if o.Target != 0.99 || o.Name != "latency_p99" {
		t.Fatalf("objective = %+v", o)
	}
}

func TestBucketCountSnapsDown(t *testing.T) {
	h := HistogramStat{Buckets: []Bucket{
		{UpperBound: 0.1, Count: 3},
		{UpperBound: 0.25, Count: 7},
		{UpperBound: 0.5, Count: 9},
	}}
	// A threshold between bounds snaps down to the nearest bound.
	if got := bucketCountAtOrBelow(h, 0.3); got != 7 {
		t.Fatalf("count at 0.3 = %v, want 7 (snapped to 0.25)", got)
	}
	// An exact bound match must not be lost to float fuzz.
	if got := bucketCountAtOrBelow(h, 0.25); got != 7 {
		t.Fatalf("count at 0.25 = %v, want 7", got)
	}
	if got := bucketCountAtOrBelow(h, 0.05); got != 0 {
		t.Fatalf("count at 0.05 = %v, want 0", got)
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestBurnRate(t *testing.T) {
	// 50% bad against a 10% budget burns 5x.
	if got := burnRate(100, 200, 0.9); !approx(got, 5) {
		t.Fatalf("burn = %v, want 5", got)
	}
	// No events, no burn.
	if got := burnRate(0, 0, 0.9); got != 0 {
		t.Fatalf("burn = %v, want 0", got)
	}
	// All good: zero burn.
	if got := burnRate(10, 10, 0.9); got != 0 {
		t.Fatalf("burn = %v, want 0", got)
	}
}

// sloTestEngine builds an availability engine over hand-driven counters
// with a fake clock; Eval is called manually.
func sloTestEngine(clock *fakeClock, onAlert func(Alert)) (*Registry, *SLOEngine) {
	r := NewRegistry()
	e := NewSLOEngine(r, SLOConfig{
		Interval:   time.Second,
		FastWindow: 2 * time.Second,
		SlowWindow: 6 * time.Second,
		FastBurn:   5,
		SlowBurn:   3,
		MinEvents:  5,
		OnAlert:    onAlert,
		Clock:      clock.Now,
	}, AvailabilityObjective(0.9))
	return r, e
}

func TestSLOEngineAlertsOnBurn(t *testing.T) {
	clock := newFakeClock()
	var alerts []Alert
	r, e := sloTestEngine(clock, func(a Alert) { alerts = append(alerts, a) })
	requests := r.Counter("msite_proxy_requests_total", "site", "forum")
	errors := r.Counter("msite_proxy_errors_total", "site", "forum")

	e.Eval() // baseline sample

	requests.Add(100) // healthy minute
	clock.Advance(time.Second)
	e.Eval()
	if st := e.Status()[0]; st.Alerting || st.FastBurn != 0 {
		t.Fatalf("healthy status = %+v", st)
	}
	if len(alerts) != 0 {
		t.Fatalf("alerts fired while healthy: %+v", alerts)
	}

	requests.Add(100) // everything errors
	errors.Add(100)
	clock.Advance(time.Second)
	e.Eval()
	st := e.Status()[0]
	if !st.Alerting {
		t.Fatalf("not alerting after burn: %+v", st)
	}
	// Fast window covers both batches: 100 bad of 200 = 50% bad against a
	// 10% budget = burn 5.
	if !approx(st.FastBurn, 5) {
		t.Fatalf("fast burn = %v, want 5", st.FastBurn)
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v, want exactly 1", alerts)
	}
	a := alerts[0]
	if a.Objective != "availability" || a.FastBad != 100 || a.FastTotal != 200 {
		t.Fatalf("alert = %+v", a)
	}

	// Still burning: edge-triggered means no second alert.
	clock.Advance(time.Second)
	e.Eval()
	if !e.Status()[0].Alerting {
		t.Fatal("alerting state dropped while still burning")
	}
	if len(alerts) != 1 {
		t.Fatalf("re-alerted without recovering: %+v", alerts)
	}

	// Counter export and gauges reflect the alert.
	snap := r.Snapshot()
	if gaugeValue(t, snap, "msite_slo_alerting", "objective", "availability") != 1 {
		t.Fatal("msite_slo_alerting gauge not set")
	}
	var fired uint64
	for _, c := range snap.Counters {
		if c.Name == "msite_slo_alerts_total" {
			fired += c.Value
		}
	}
	if fired != 1 {
		t.Fatalf("msite_slo_alerts_total = %d, want 1", fired)
	}

	// Recovery: healthy traffic pushes the fast window's bad ratio down;
	// once enough good traffic accumulates the alert clears and a fresh
	// burn re-alerts (the edge re-arms).
	for i := 0; i < 7; i++ {
		requests.Add(1000)
		clock.Advance(time.Second)
		e.Eval()
	}
	if st := e.Status()[0]; st.Alerting {
		t.Fatalf("still alerting after recovery: %+v", st)
	}
	// Idle ticks push the recovery traffic out of the slow window so the
	// next burn dominates both windows.
	for i := 0; i < 7; i++ {
		clock.Advance(time.Second)
		e.Eval()
	}
	requests.Add(100)
	errors.Add(100)
	clock.Advance(time.Second)
	e.Eval()
	if len(alerts) != 2 {
		t.Fatalf("alerts after second burn = %d, want 2", len(alerts))
	}
}

func TestSLOEngineMinEventsGate(t *testing.T) {
	clock := newFakeClock()
	var alerts []Alert
	r, e := sloTestEngine(clock, func(a Alert) { alerts = append(alerts, a) })
	requests := r.Counter("msite_proxy_requests_total", "site", "forum")
	errors := r.Counter("msite_proxy_errors_total", "site", "forum")

	e.Eval()
	// 100% bad but only 3 events — under MinEvents 5, so no alert.
	requests.Add(3)
	errors.Add(3)
	clock.Advance(time.Second)
	e.Eval()
	st := e.Status()[0]
	if st.Alerting || len(alerts) != 0 {
		t.Fatalf("alerted on %v events: %+v", st.FastTotal, alerts)
	}
	if !approx(st.FastBurn, 10) {
		t.Fatalf("fast burn = %v, want 10 (100%% bad / 10%% budget)", st.FastBurn)
	}
}

func TestSLOEngineSampleRingBounded(t *testing.T) {
	clock := newFakeClock()
	_, e := sloTestEngine(clock, nil)
	for i := 0; i < 50; i++ {
		clock.Advance(time.Second)
		e.Eval()
	}
	e.mu.Lock()
	n := len(e.samples)
	e.mu.Unlock()
	if max := e.maxSamples(); n > max {
		t.Fatalf("sample ring holds %d, want <= %d", n, max)
	}
}

func TestSLOHandler(t *testing.T) {
	clock := newFakeClock()
	r, e := sloTestEngine(clock, nil)
	r.Counter("msite_proxy_requests_total", "site", "forum").Add(10)
	e.Eval()

	h := SLOHandler(e)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slo?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var body struct {
		Objectives []ObjectiveStatus `json:"objectives"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("json: %v", err)
	}
	if len(body.Objectives) != 1 || body.Objectives[0].Name != "availability" {
		t.Fatalf("objectives = %+v", body.Objectives)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	text := rec.Body.String()
	for _, want := range []string{
		"# TYPE msite_slo_burn_rate gauge",
		`msite_slo_burn_rate{objective="availability",window="fast"}`,
		`msite_slo_compliance{objective="availability"}`,
		`msite_slo_budget_remaining{objective="availability"}`,
		`msite_slo_alerting{objective="availability"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/slo", nil))
	if rec.Code != 405 {
		t.Fatalf("POST = %d, want 405", rec.Code)
	}
}

func TestSLOEngineStartStop(t *testing.T) {
	r := NewRegistry()
	e := NewSLOEngine(r, SLOConfig{Interval: 10 * time.Millisecond},
		WarmHitObjective(0.8))
	e.Start()
	time.Sleep(30 * time.Millisecond)
	e.Stop()
	e.Stop() // idempotent
	if st := e.Status()[0]; st.LastEval.IsZero() {
		t.Fatal("ticker never evaluated")
	}
}
