package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("msite_requests_total", "handler", "entry")
	b := r.Counter("msite_requests_total", "handler", "entry")
	if a != b {
		t.Fatal("same name+labels produced distinct counters")
	}
	c := r.Counter("msite_requests_total", "handler", "subpage")
	if a == c {
		t.Fatal("distinct labels share a counter")
	}
	a.Inc()
	a.Add(2)
	if got := b.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if got := c.Value(); got != 0 {
		t.Fatalf("other label counter = %d, want 0", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "x", "1", "y", "2")
	b := r.Counter("m", "y", "2", "x", "1")
	if a != b {
		t.Fatal("label order changed metric identity")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("msite_sessions_live")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 7
	r.GaugeFunc("msite_live", func() float64 { return float64(n) })
	snap := r.Snapshot()
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 7 {
		t.Fatalf("gauge func snapshot = %+v", snap.Gauges)
	}
	n = 9
	if got := r.Snapshot().Gauges[0].Value; got != 9 {
		t.Fatalf("gauge func not live: %v", got)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type conflict")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 3.0, 10.0} {
		h.Observe(v)
	}
	st := h.snapshot()
	if st.Count != 5 {
		t.Fatalf("count = %d, want 5", st.Count)
	}
	if math.Abs(st.Sum-16.0) > 1e-9 {
		t.Fatalf("sum = %v, want 16", st.Sum)
	}
	// Cumulative: le=1 → {0.5, 1.0}; le=2 → +{1.5}; le=4 → +{3.0};
	// +Inf → +{10.0}.
	want := []uint64{2, 3, 4, 5}
	if len(st.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4", len(st.Buckets))
	}
	for i, w := range want {
		if st.Buckets[i].Count != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, st.Buckets[i].Count, w)
		}
	}
	if !math.IsInf(st.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bound = %v, want +Inf", st.Buckets[3].UpperBound)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []float64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	st := h.snapshot()
	// rank(p50) = 10 → exactly fills bucket (0,10]: interpolates to 10.
	if math.Abs(st.P50-10) > 1e-9 {
		t.Fatalf("p50 = %v, want 10", st.P50)
	}
	// rank(p90) = 18 → 8/10 into (10,20] → 18.
	if math.Abs(st.P90-18) > 1e-9 {
		t.Fatalf("p90 = %v, want 18", st.P90)
	}
	// rank(p99) = 19.8 → 9.8/10 into (10,20] → 19.8.
	if math.Abs(st.P99-19.8) > 1e-9 {
		t.Fatalf("p99 = %v, want 19.8", st.P99)
	}
}

func TestHistogramQuantileOverflowClamps(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []float64{1})
	h.Observe(100)
	st := h.snapshot()
	if st.P99 != 1 {
		t.Fatalf("p99 = %v, want clamp to 1", st.P99)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := NewRegistry()
	st := r.Histogram("lat").snapshot()
	if st.P50 != 0 || st.P99 != 0 {
		t.Fatalf("empty histogram quantiles = %v/%v, want 0", st.P50, st.P99)
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.ObserveDuration(30 * time.Millisecond)
	st := h.snapshot()
	if st.Count != 1 || math.Abs(st.Sum-0.03) > 1e-9 {
		t.Fatalf("duration observed as count=%d sum=%v", st.Count, st.Sum)
	}
}

// TestConcurrentWritesAndSnapshots is the race-detector guard for the
// atomic metric internals: many writers, concurrent scrapes.
func TestConcurrentWritesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("msite_requests_total", "handler", "entry")
			h := r.Histogram("msite_stage_seconds", "stage", "fetch")
			g := r.Gauge("msite_live")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 1000)
				g.Add(1)
			}
		}()
	}
	// Scrape while writing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()

	snap := r.Snapshot()
	c, ok := snap.Counter("msite_requests_total", "handler", "entry")
	if !ok || c.Value != workers*iters {
		t.Fatalf("counter = %+v, want %d", c, workers*iters)
	}
	h, ok := snap.Histogram("msite_stage_seconds", "stage", "fetch")
	if !ok || h.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*iters)
	}
}

func TestLabelCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetLabelCardinality(3)
	for i := 0; i < 10; i++ {
		r.Counter("msite_origin_requests_total", "origin", fmt.Sprintf("site-%d", i)).Inc()
	}
	snap := r.Snapshot()
	values := map[string]uint64{}
	for _, c := range snap.Counters {
		if c.Name == "msite_origin_requests_total" {
			values[c.Label("origin")] += c.Value
		}
	}
	if len(values) != 4 {
		t.Fatalf("series values = %v, want 3 distinct + %q", values, OverflowLabelValue)
	}
	if values[OverflowLabelValue] != 7 {
		t.Fatalf("overflow bucket = %d, want 7", values[OverflowLabelValue])
	}
	for i := 0; i < 3; i++ {
		if values[fmt.Sprintf("site-%d", i)] != 1 {
			t.Fatalf("pre-cap value site-%d = %v", i, values)
		}
	}
}

func TestLabelCardinalityPerKeyAndFamily(t *testing.T) {
	r := NewRegistry()
	r.SetLabelCardinality(2)
	// The cap is per (family, key): a second family gets its own budget.
	r.Counter("fam_a", "k", "v1").Inc()
	r.Counter("fam_a", "k", "v2").Inc()
	r.Counter("fam_a", "k", "v3").Inc() // over fam_a's budget
	r.Counter("fam_b", "k", "v3").Inc() // fresh budget
	snap := r.Snapshot()
	var aOther, bOther bool
	for _, c := range snap.Counters {
		if c.Name == "fam_a" && c.Label("k") == OverflowLabelValue {
			aOther = true
		}
		if c.Name == "fam_b" && c.Label("k") == OverflowLabelValue {
			bOther = true
		}
	}
	if !aOther {
		t.Fatal("fam_a's third value not bucketed as overflow")
	}
	if bOther {
		t.Fatal("fam_b's first value wrongly bucketed")
	}
}

func TestLabelCardinalityUnlimited(t *testing.T) {
	r := NewRegistry()
	r.SetLabelCardinality(-1)
	for i := 0; i < DefaultLabelCardinality+10; i++ {
		r.Counter("m", "k", fmt.Sprintf("v%d", i)).Inc()
	}
	snap := r.Snapshot()
	n := 0
	for _, c := range snap.Counters {
		if c.Name == "m" {
			n++
			if c.Label("k") == OverflowLabelValue {
				t.Fatal("unlimited registry bucketed a value")
			}
		}
	}
	if n != DefaultLabelCardinality+10 {
		t.Fatalf("series = %d, want %d", n, DefaultLabelCardinality+10)
	}
}

func TestLabelCardinalityConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetLabelCardinality(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("m", "k", fmt.Sprintf("v%d", i%20)).Inc()
				r.Gauge("g", "k", fmt.Sprintf("v%d", i%20)).Set(1)
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total uint64
	distinct := map[string]bool{}
	for _, c := range snap.Counters {
		if c.Name == "m" {
			total += c.Value
			distinct[c.Label("k")] = true
		}
	}
	if total != 8*100 {
		t.Fatalf("total = %d, want %d (no increments lost to capping)", total, 8*100)
	}
	if len(distinct) > 9 {
		t.Fatalf("distinct values = %d, want <= cap+overflow", len(distinct))
	}
}

func TestEventBus(t *testing.T) {
	r := NewRegistry()
	r.Emit(EventShed, "nobody listening") // must not panic or allocate subscribers

	var mu sync.Mutex
	var got []Event
	r.Subscribe(func(ev Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	r.Emit(EventBreakerOpen, "origin-1")
	r.Emit(EventStoreCorrupt, "seg-3")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("events = %d, want 2", len(got))
	}
	if got[0].Kind != EventBreakerOpen || got[0].Detail != "origin-1" {
		t.Fatalf("event = %+v", got[0])
	}
	if got[1].Time.IsZero() {
		t.Fatal("event time not stamped")
	}
}

func TestEventBusConcurrent(t *testing.T) {
	r := NewRegistry()
	var count atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Subscribe(func(Event) { count.Add(1) })
		}()
	}
	wg.Wait()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(EventShed, "x")
			}
		}()
	}
	wg.Wait()
	if got := count.Load(); got != 4*4*100 {
		t.Fatalf("deliveries = %d, want %d", got, 4*4*100)
	}
}
