package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: a watchdog that notices the node is in trouble —
// burn-rate alerts, shed storms, breakers opening, store corruption,
// goroutine growth — and captures an incident bundle to disk *at that
// moment*, while the evidence (goroutine stacks, CPU time, slow traces)
// still exists. Bundles are directories under RecorderConfig.Dir,
// written atomically (tmp dir + rename) and retained as a ring on disk.

// Defaults for RecorderConfig.
const (
	DefaultIncidentMax      = 16
	DefaultCPUProfile       = 5 * time.Second
	DefaultIncidentCooldown = time.Minute
	DefaultWatchInterval    = 5 * time.Second
	// DefaultShedStorm is the shed-events-per-watch-tick count treated
	// as a storm.
	DefaultShedStorm = 50
	// DefaultGoroutineLimit trips the watchdog when the sampled
	// goroutine count exceeds it (leak detection).
	DefaultGoroutineLimit = 10000
)

// incidentPrefix names bundle directories: incident-<unixms>-<reason>.
const incidentPrefix = "incident-"

// RecorderConfig tunes a Recorder. Dir is required; everything else
// zero-defaults.
type RecorderConfig struct {
	// Dir is where incident bundles live.
	Dir string
	// MaxIncidents bounds the on-disk ring (oldest deleted first).
	MaxIncidents int
	// CPUProfile is how long the capture's CPU profile runs.
	CPUProfile time.Duration
	// Cooldown suppresses repeat captures for the same reason.
	Cooldown time.Duration
	// Interval is the watchdog tick.
	Interval time.Duration
	// ShedStorm is the shed count per tick that counts as a storm.
	ShedStorm int
	// GoroutineLimit trips on goroutine counts above it (0 uses the
	// default; negative disables).
	GoroutineLimit int
	// Health, when set, supplies goroutine counts without an extra
	// runtime poll and is refreshed before each capture.
	Health *HealthSampler
	// Clock is the time source (tests inject a fake one). Nil uses
	// time.Now.
	Clock func() time.Time
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.MaxIncidents <= 0 {
		c.MaxIncidents = DefaultIncidentMax
	}
	if c.CPUProfile <= 0 {
		c.CPUProfile = DefaultCPUProfile
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultIncidentCooldown
	}
	if c.Interval <= 0 {
		c.Interval = DefaultWatchInterval
	}
	if c.ShedStorm <= 0 {
		c.ShedStorm = DefaultShedStorm
	}
	if c.GoroutineLimit == 0 {
		c.GoroutineLimit = DefaultGoroutineLimit
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// IncidentMeta is a bundle's meta.json.
type IncidentMeta struct {
	Name     string    `json:"name"`
	Reason   string    `json:"reason"`
	Detail   string    `json:"detail"`
	Time     time.Time `json:"time"`
	Hostname string    `json:"hostname,omitempty"`
	// Goroutines is the count at capture time.
	Goroutines int `json:"goroutines"`
	// Files lists the bundle's contents.
	Files []string `json:"files"`
	// CPUProfileErr records why cpu.pprof is missing, if it is (e.g.
	// another profiler already running).
	CPUProfileErr string `json:"cpu_profile_err,omitempty"`
}

// Recorder is the watchdog + capturer. Create with NewRecorder, start
// with Start, stop with Stop. Trip may be called directly (the SLO
// engine's OnAlert does).
type Recorder struct {
	reg *Registry
	cfg RecorderConfig

	// Event counters fed by the registry bus.
	sheds    atomic.Uint64
	breakers atomic.Uint64
	corrupts atomic.Uint64

	// Watchdog baselines (only touched by the run loop).
	lastBreakers uint64
	lastCorrupts uint64
	lastSheds    uint64

	mu       sync.Mutex
	lastTrip map[string]time.Time // reason → last capture, for cooldown
	prevSnap Snapshot             // baseline for metrics_delta.json

	trips    chan tripRequest
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type tripRequest struct {
	reason string
	detail string
}

// NewRecorder builds a recorder over reg, subscribing to its event bus.
// The Dir is created eagerly so a missing parent fails fast.
func NewRecorder(reg *Registry, cfg RecorderConfig) (*Recorder, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("recorder: Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("recorder: %w", err)
	}
	r := &Recorder{
		reg:      reg,
		cfg:      cfg,
		lastTrip: make(map[string]time.Time),
		trips:    make(chan tripRequest, 8),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	r.prevSnap = reg.Snapshot()
	reg.Subscribe(func(ev Event) {
		switch ev.Kind {
		case EventShed:
			r.sheds.Add(1)
		case EventBreakerOpen:
			r.breakers.Add(1)
		case EventStoreCorrupt:
			r.corrupts.Add(1)
		}
	})
	return r, nil
}

// Dir returns the bundle directory.
func (r *Recorder) Dir() string { return r.cfg.Dir }

// Start launches the watchdog/capture loop.
func (r *Recorder) Start() {
	go r.run()
}

// Stop ends the loop. Safe to call more than once; only the first call
// blocks for the goroutine (including any in-flight capture).
func (r *Recorder) Stop() {
	r.stopOnce.Do(func() {
		close(r.stop)
		<-r.done
	})
}

// Trip requests an incident capture. Non-blocking: if a capture is
// already queued the request is dropped (the node is in trouble either
// way, and one bundle is enough). Cooldown per reason is applied at
// capture time.
func (r *Recorder) Trip(reason, detail string) {
	select {
	case r.trips <- tripRequest{reason: reason, detail: detail}:
	default:
	}
}

// run is the single goroutine that both watches and captures; captures
// are serialized because CPU profiles cannot overlap.
func (r *Recorder) run() {
	defer close(r.done)
	ticker := time.NewTicker(r.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case req := <-r.trips:
			r.capture(req)
		case <-ticker.C:
			r.watch()
		}
	}
}

// watch is one watchdog tick: inspect the event deltas since the last
// tick and trip on anything alarming.
func (r *Recorder) watch() {
	if b := r.breakers.Load(); b > r.lastBreakers {
		r.lastBreakers = b
		r.Trip("breaker_open", "origin circuit breaker opened")
	}
	if c := r.corrupts.Load(); c > r.lastCorrupts {
		r.lastCorrupts = c
		r.Trip("store_corrupt", "durable store detected corruption")
	}
	s := r.sheds.Load()
	if delta := s - r.lastSheds; delta >= uint64(r.cfg.ShedStorm) {
		r.Trip("shed_storm", fmt.Sprintf("%d requests shed in one watch interval", delta))
	}
	r.lastSheds = s
	if r.cfg.GoroutineLimit > 0 {
		n := runtime.NumGoroutine()
		if r.cfg.Health != nil {
			if g := r.cfg.Health.Goroutines(); g > 0 {
				n = g
			}
		}
		if n > r.cfg.GoroutineLimit {
			r.Trip("goroutine_growth", fmt.Sprintf("%d goroutines (limit %d)", n, r.cfg.GoroutineLimit))
		}
	}
	// Drain any trips queued while we were inspecting, so a trip raised
	// this tick is captured before the next tick.
	for {
		select {
		case req := <-r.trips:
			r.capture(req)
		default:
			return
		}
	}
}

// capture writes one incident bundle, honoring the per-reason cooldown.
func (r *Recorder) capture(req tripRequest) {
	now := r.cfg.Clock()
	r.mu.Lock()
	if last, ok := r.lastTrip[req.reason]; ok && now.Sub(last) < r.cfg.Cooldown {
		r.mu.Unlock()
		r.reg.Counter("msite_incidents_suppressed_total", "reason", req.reason).Inc()
		return
	}
	r.lastTrip[req.reason] = now
	prev := r.prevSnap
	r.mu.Unlock()

	if r.cfg.Health != nil {
		r.cfg.Health.Sample() // fresh runtime gauges in the snapshot
	}

	name := fmt.Sprintf("%s%d-%s", incidentPrefix, now.UnixMilli(), sanitizeReason(req.reason))
	tmp, err := os.MkdirTemp(r.cfg.Dir, ".tmp-")
	if err != nil {
		r.captureError(req.reason, err)
		return
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	meta := IncidentMeta{
		Name:       name,
		Reason:     req.reason,
		Detail:     req.detail,
		Time:       now,
		Goroutines: runtime.NumGoroutine(),
	}
	meta.Hostname, _ = os.Hostname()

	write := func(file string, fn func(f *os.File) error) {
		f, err := os.Create(filepath.Join(tmp, file))
		if err != nil {
			return
		}
		werr := fn(f)
		cerr := f.Close()
		if werr == nil && cerr == nil {
			meta.Files = append(meta.Files, file)
		}
	}

	// Goroutine stacks (debug=2 gives full stacks with states).
	write("goroutines.txt", func(f *os.File) error {
		return pprof.Lookup("goroutine").WriteTo(f, 2)
	})
	// Heap profile.
	write("heap.pprof", func(f *os.File) error {
		runtime.GC() // up-to-date allocation data
		return pprof.Lookup("heap").WriteTo(f, 0)
	})
	// Timed CPU profile; fails if another profile is running — recorded
	// in meta rather than aborting the bundle.
	write("cpu.pprof", func(f *os.File) error {
		if err := pprof.StartCPUProfile(f); err != nil {
			meta.CPUProfileErr = err.Error()
			return err
		}
		select {
		case <-time.After(r.cfg.CPUProfile):
		case <-r.stop:
		}
		pprof.StopCPUProfile()
		return nil
	})
	// Slow/error traces from the tail reservoir plus the recent ring.
	write("traces.json", func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"tail":   r.reg.TailTraces(),
			"recent": r.reg.RecentTraces(),
		})
	})
	// Metrics snapshot + delta since the previous capture (or recorder
	// start), so "what changed" is one file.
	cur := r.reg.Snapshot()
	write("metrics_delta.json", func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"current":        cur,
			"counter_deltas": counterDeltas(prev, cur),
		})
	})
	write("meta.json", func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(meta)
	})

	if err := os.Rename(tmp, filepath.Join(r.cfg.Dir, name)); err != nil {
		r.captureError(req.reason, err)
		return
	}
	r.mu.Lock()
	r.prevSnap = cur
	r.mu.Unlock()
	r.reg.Counter("msite_incidents_total", "reason", req.reason).Inc()
	r.prune()
}

func (r *Recorder) captureError(reason string, err error) {
	_ = err
	r.reg.Counter("msite_incident_capture_errors_total", "reason", reason).Inc()
}

// prune deletes the oldest bundles past MaxIncidents.
func (r *Recorder) prune() {
	names, err := listIncidents(r.cfg.Dir)
	if err != nil {
		return
	}
	for len(names) > r.cfg.MaxIncidents {
		os.RemoveAll(filepath.Join(r.cfg.Dir, names[0]))
		names = names[1:]
	}
}

// counterDelta is one counter's growth between two snapshots.
type counterDelta struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Delta  uint64  `json:"delta"`
}

// counterDeltas lists every counter that grew between prev and cur.
func counterDeltas(prev, cur Snapshot) []counterDelta {
	prevVal := make(map[string]uint64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevVal[counterKey(c)] = c.Value
	}
	var out []counterDelta
	for _, c := range cur.Counters {
		if d := c.Value - prevVal[counterKey(c)]; d > 0 {
			out = append(out, counterDelta{Name: c.Name, Labels: c.Labels, Delta: d})
		}
	}
	return out
}

func counterKey(c CounterStat) string {
	var b strings.Builder
	b.WriteString(c.Name)
	for _, l := range c.Labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// sanitizeReason makes a trip reason safe as a directory-name suffix.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "unknown"
	}
	return b.String()
}

// listIncidents returns bundle directory names, oldest first (the
// unix-millis prefix makes lexical order chronological for same-width
// timestamps; sort numerically on the parsed timestamp to be safe).
func listIncidents(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), incidentPrefix) {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool {
		return incidentStamp(names[i]) < incidentStamp(names[j]) ||
			(incidentStamp(names[i]) == incidentStamp(names[j]) && names[i] < names[j])
	})
	return names, nil
}

// incidentStamp parses the unix-millis component of a bundle name.
func incidentStamp(name string) int64 {
	rest := strings.TrimPrefix(name, incidentPrefix)
	var ms int64
	for _, r := range rest {
		if r < '0' || r > '9' {
			break
		}
		ms = ms*10 + int64(r-'0')
	}
	return ms
}

// Incidents lists the on-disk bundles' metadata, newest first. Bundles
// whose meta.json is unreadable still appear with just their name.
func (r *Recorder) Incidents() []IncidentMeta {
	names, err := listIncidents(r.cfg.Dir)
	if err != nil {
		return nil
	}
	out := make([]IncidentMeta, 0, len(names))
	for i := len(names) - 1; i >= 0; i-- {
		name := names[i]
		meta := IncidentMeta{Name: name}
		if raw, err := os.ReadFile(filepath.Join(r.cfg.Dir, name, "meta.json")); err == nil {
			_ = json.Unmarshal(raw, &meta)
			meta.Name = name
		}
		out = append(out, meta)
	}
	return out
}

// IncidentsHandler serves the bundle index as JSON at its mount point
// (/debug/incidents) and individual bundle files at <name>/<file>.
// Traversal is blocked: name must be a bundle directory name, file a
// bare filename.
func IncidentsHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := strings.Trim(strings.TrimPrefix(req.URL.Path, "/debug/incidents"), "/")
		if rest == "" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(map[string]any{"dir": r.Dir(), "incidents": r.Incidents()})
			return
		}
		parts := strings.Split(rest, "/")
		name := parts[0]
		if !strings.HasPrefix(name, incidentPrefix) || strings.ContainsAny(name, `\`) {
			http.NotFound(w, req)
			return
		}
		if len(parts) == 1 {
			// List the bundle's files.
			entries, err := os.ReadDir(filepath.Join(r.Dir(), name))
			if err != nil {
				http.NotFound(w, req)
				return
			}
			var files []string
			for _, e := range entries {
				if !e.IsDir() {
					files = append(files, e.Name())
				}
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"name": name, "files": files})
			return
		}
		if len(parts) != 2 {
			http.NotFound(w, req)
			return
		}
		file := parts[1]
		if file != filepath.Base(file) || strings.HasPrefix(file, ".") {
			http.NotFound(w, req)
			return
		}
		http.ServeFile(w, req, filepath.Join(r.Dir(), name, file))
	})
}
