package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Handler serves the registry as a /metrics endpoint. The format is
// content-negotiated: Prometheus text exposition by default (what a
// scraper's Accept header matches), JSON when the client asks for
// application/json or ?format=json.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap := r.Snapshot()
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(RenderPrometheus(snap)))
	})
}

// TracesHandler serves the ring buffer of recent request traces as JSON,
// most recent first (?n= limits the count).
func TracesHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		traces := r.RecentTraces()
		if n, err := strconv.Atoi(req.URL.Query().Get("n")); err == nil && n >= 0 && n < len(traces) {
			traces = traces[:n]
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"traces": traces})
	})
}

func wantsJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	accept := req.Header.Get("Accept")
	// A scraper's "text/plain" (or */*) wins; an explicit JSON preference
	// listed before any text/plain choice selects JSON.
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "application/json":
			return true
		case "text/plain", "*/*":
			return false
		}
	}
	return false
}

// RenderPrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, histograms
// as cumulative _bucket/_sum/_count series.
func RenderPrometheus(snap Snapshot) string {
	var b strings.Builder
	typed := make(map[string]bool)
	writeType := func(name, kind string) {
		if !typed[name] {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
			typed[name] = true
		}
	}

	names := make(map[string][]int) // counter family -> indices, for grouping
	for i, c := range snap.Counters {
		names[c.Name] = append(names[c.Name], i)
	}
	for _, name := range sortedKeys(names) {
		writeType(name, "counter")
		for _, i := range names[name] {
			c := snap.Counters[i]
			fmt.Fprintf(&b, "%s %d\n", series(c.Name, c.Labels, ""), c.Value)
		}
	}

	gnames := make(map[string][]int)
	for i, g := range snap.Gauges {
		gnames[g.Name] = append(gnames[g.Name], i)
	}
	for _, name := range sortedKeys(gnames) {
		writeType(name, "gauge")
		for _, i := range gnames[name] {
			g := snap.Gauges[i]
			fmt.Fprintf(&b, "%s %s\n", series(g.Name, g.Labels, ""), formatFloat(g.Value))
		}
	}

	hnames := make(map[string][]int)
	for i, h := range snap.Histograms {
		hnames[h.Name] = append(hnames[h.Name], i)
	}
	for _, name := range sortedKeys(hnames) {
		writeType(name, "histogram")
		for _, i := range hnames[name] {
			h := snap.Histograms[i]
			for _, bk := range h.Buckets {
				le := "+Inf"
				if !math.IsInf(bk.UpperBound, 1) {
					le = formatFloat(bk.UpperBound)
				}
				fmt.Fprintf(&b, "%s %d\n",
					series(h.Name+"_bucket", h.Labels, `le="`+le+`"`), bk.Count)
			}
			fmt.Fprintf(&b, "%s %s\n", series(h.Name+"_sum", h.Labels, ""), formatFloat(h.Sum))
			fmt.Fprintf(&b, "%s %d\n", series(h.Name+"_count", h.Labels, ""), h.Count)
		}
	}
	return b.String()
}

// series renders name{labels,extra} with escaped label values.
func series(name string, labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys(m map[string][]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
