package obs

import (
	runtimemetrics "runtime/metrics"
	"testing"
	"time"
)

func TestHealthSample(t *testing.T) {
	r := NewRegistry()
	h := NewHealthSampler(r, 0)
	h.Sample()

	snap := r.Snapshot()
	if gaugeValue(t, snap, "msite_runtime_goroutines") < 1 {
		t.Fatal("goroutine gauge not positive")
	}
	if gaugeValue(t, snap, "msite_runtime_heap_alloc_bytes") <= 0 {
		t.Fatal("heap alloc gauge not positive")
	}
	if gaugeValue(t, snap, "msite_runtime_heap_sys_bytes") <= 0 {
		t.Fatal("heap sys gauge not positive")
	}
	if gaugeValue(t, snap, "msite_runtime_threads") < 1 {
		t.Fatal("thread gauge not positive")
	}
	// Present even when zero.
	gaugeValue(t, snap, "msite_runtime_gc_cycles_total")
	gaugeValue(t, snap, "msite_runtime_gc_pause_total_seconds")
	gaugeValue(t, snap, "msite_runtime_sched_latency_p99_seconds")

	if h.Goroutines() < 1 {
		t.Fatal("Goroutines() not populated from the sample")
	}
}

func TestHealthStartStop(t *testing.T) {
	r := NewRegistry()
	h := NewHealthSampler(r, 5*time.Millisecond)
	h.Start()
	time.Sleep(20 * time.Millisecond)
	h.Stop()
	h.Stop() // idempotent
	if h.Goroutines() < 1 {
		t.Fatal("ticker never sampled")
	}
}

func schedHist(counts []uint64, buckets []float64) *runtimemetrics.Float64Histogram {
	return &runtimemetrics.Float64Histogram{Counts: counts, Buckets: buckets}
}

func TestHistogramDeltaP99(t *testing.T) {
	buckets := []float64{0, 0.001, 0.01}
	// Nil baseline: the whole cumulative histogram is the delta. 10 of
	// 100 observations sit in the slow bucket, so the p99 lands there.
	cur := schedHist([]uint64{90, 10}, buckets)
	if got := histogramDeltaP99(nil, cur); got != 0.01 {
		t.Fatalf("p99 = %v, want 0.01", got)
	}
	// With a baseline, only the growth counts: 100 new fast observations
	// and nothing slow pulls the p99 into the first bucket.
	next := schedHist([]uint64{190, 10}, buckets)
	if got := histogramDeltaP99(cur, next); got != 0.001 {
		t.Fatalf("delta p99 = %v, want 0.001", got)
	}
	// No growth at all: zero.
	if got := histogramDeltaP99(next, next); got != 0 {
		t.Fatalf("flat delta p99 = %v, want 0", got)
	}
	if got := histogramDeltaP99(nil, nil); got != 0 {
		t.Fatalf("nil p99 = %v, want 0", got)
	}
}
