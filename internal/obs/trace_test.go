package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansRecorded(t *testing.T) {
	r := NewRegistry()
	ctx, tr := r.StartTrace(context.Background(), "entry")
	tr.Annotate("session", "abc123")

	sp := StartSpan(ctx, "fetch")
	time.Sleep(time.Millisecond)
	sp.End()
	sp = StartSpan(ctx, "attr")
	sp.End()
	d := tr.End()
	if d <= 0 {
		t.Fatal("trace duration not positive")
	}

	traces := r.RecentTraces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	rec := traces[0]
	if rec.Name != "entry" || len(rec.Spans) != 2 {
		t.Fatalf("trace = %+v", rec)
	}
	if rec.Spans[0].Name != "fetch" || rec.Spans[1].Name != "attr" {
		t.Fatalf("span order = %v, %v", rec.Spans[0].Name, rec.Spans[1].Name)
	}
	if rec.Attrs["session"] != "abc123" {
		t.Fatalf("attrs = %v", rec.Attrs)
	}
	if rec.Spans[0].DurationMS <= 0 {
		t.Fatal("span duration not recorded")
	}

	// Span durations feed the per-stage histogram.
	h, ok := r.Snapshot().Histogram(StageHistogram, "stage", "fetch")
	if !ok || h.Count != 1 {
		t.Fatalf("stage histogram = %+v ok=%v", h, ok)
	}
}

func TestSpanWithoutTraceIsInert(t *testing.T) {
	sp := StartSpan(context.Background(), "fetch")
	if d := sp.End(); d < 0 {
		t.Fatal("negative duration")
	}
}

func TestTraceEndIdempotent(t *testing.T) {
	r := NewRegistry()
	_, tr := r.StartTrace(context.Background(), "entry")
	tr.End()
	tr.End()
	if got := len(r.RecentTraces()); got != 1 {
		t.Fatalf("traces = %d, want 1 after double End", got)
	}
}

func TestTraceRingBounded(t *testing.T) {
	r := NewRegistry()
	total := DefaultTraceCapacity + 10
	for i := 0; i < total; i++ {
		_, tr := r.StartTrace(context.Background(), fmt.Sprintf("t%d", i))
		tr.End()
	}
	traces := r.RecentTraces()
	if len(traces) != DefaultTraceCapacity {
		t.Fatalf("ring holds %d, want %d", len(traces), DefaultTraceCapacity)
	}
	if traces[0].Name != fmt.Sprintf("t%d", total-1) {
		t.Fatalf("most recent = %s, want t%d", traces[0].Name, total-1)
	}
	if traces[len(traces)-1].Name != fmt.Sprintf("t%d", total-DefaultTraceCapacity) {
		t.Fatalf("oldest = %s", traces[len(traces)-1].Name)
	}
}

func TestTraceIDsAssignedAndUnique(t *testing.T) {
	r := NewRegistry()
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		_, tr := r.StartTrace(context.Background(), "entry")
		id := tr.ID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q, want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
		tr.End()
	}
	for _, rec := range r.RecentTraces() {
		if !seen[rec.ID] {
			t.Fatalf("ring trace carries unknown ID %q", rec.ID)
		}
	}
	var nilTrace *Trace
	if nilTrace.ID() != "" {
		t.Fatal("nil trace ID not empty")
	}
}

func TestTailReservoirAdmission(t *testing.T) {
	r := NewRegistry()
	r.SetTailSampling(10*time.Millisecond, 0)

	// Fast and clean: not tail-worthy.
	_, fast := r.StartTrace(context.Background(), "fast")
	fast.End()
	// Fast but errored: tail-worthy.
	_, failed := r.StartTrace(context.Background(), "failed")
	failed.Annotate("error", "boom")
	failed.End()
	// Fast but shed: tail-worthy.
	_, shed := r.StartTrace(context.Background(), "shed")
	shed.Annotate("shed", "queue_full")
	shed.End()
	// Slow: tail-worthy.
	_, slow := r.StartTrace(context.Background(), "slow")
	time.Sleep(15 * time.Millisecond)
	slow.End()

	tail := r.TailTraces()
	if len(tail) != 3 {
		t.Fatalf("tail holds %d, want 3: %+v", len(tail), tail)
	}
	for _, rec := range tail {
		if rec.Name == "fast" {
			t.Fatal("fast clean trace admitted to the tail")
		}
	}
	seen, kept := r.TailStats()
	if seen != 4 || kept != 3 {
		t.Fatalf("stats seen=%d kept=%d, want 4/3", seen, kept)
	}
}

func TestTailReservoirEviction(t *testing.T) {
	r := NewRegistry()
	r.SetTailSampling(time.Hour, 4) // nothing is slow; admit by error attr only
	total := 10
	for i := 0; i < total; i++ {
		_, tr := r.StartTrace(context.Background(), fmt.Sprintf("e%d", i))
		tr.Annotate("error", "x")
		tr.End()
	}
	tail := r.TailTraces()
	if len(tail) != 4 {
		t.Fatalf("tail holds %d, want capacity 4", len(tail))
	}
	if tail[0].Name != "e9" || tail[3].Name != "e6" {
		t.Fatalf("eviction kept %s..%s, want e9..e6", tail[0].Name, tail[3].Name)
	}
}

func TestTailReservoirConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetTailSampling(time.Hour, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, tr := r.StartTrace(context.Background(), "entry")
				if i%2 == 0 {
					tr.Annotate("error", "x") // half are tail-worthy
				}
				tr.End()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = r.TailTraces()
			_, _ = r.TailStats()
		}
	}()
	wg.Wait()
	seen, kept := r.TailStats()
	if seen != 800 || kept != 400 {
		t.Fatalf("stats seen=%d kept=%d, want 800/400", seen, kept)
	}
	if got := len(r.TailTraces()); got != 8 {
		t.Fatalf("tail holds %d, want capacity 8", got)
	}
}

func TestConcurrentTraces(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, tr := r.StartTrace(context.Background(), "entry")
				sp := StartSpan(ctx, "fetch")
				sp.End()
				tr.Annotate("worker", fmt.Sprint(w))
				tr.End()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = r.RecentTraces()
		}
	}()
	wg.Wait()
	if h, ok := r.Snapshot().Histogram(StageHistogram, "stage", "fetch"); !ok || h.Count != 8*50 {
		t.Fatalf("stage observations = %+v", h)
	}
}
