package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansRecorded(t *testing.T) {
	r := NewRegistry()
	ctx, tr := r.StartTrace(context.Background(), "entry")
	tr.Annotate("session", "abc123")

	sp := StartSpan(ctx, "fetch")
	time.Sleep(time.Millisecond)
	sp.End()
	sp = StartSpan(ctx, "attr")
	sp.End()
	d := tr.End()
	if d <= 0 {
		t.Fatal("trace duration not positive")
	}

	traces := r.RecentTraces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	rec := traces[0]
	if rec.Name != "entry" || len(rec.Spans) != 2 {
		t.Fatalf("trace = %+v", rec)
	}
	if rec.Spans[0].Name != "fetch" || rec.Spans[1].Name != "attr" {
		t.Fatalf("span order = %v, %v", rec.Spans[0].Name, rec.Spans[1].Name)
	}
	if rec.Attrs["session"] != "abc123" {
		t.Fatalf("attrs = %v", rec.Attrs)
	}
	if rec.Spans[0].DurationMS <= 0 {
		t.Fatal("span duration not recorded")
	}

	// Span durations feed the per-stage histogram.
	h, ok := r.Snapshot().Histogram(StageHistogram, "stage", "fetch")
	if !ok || h.Count != 1 {
		t.Fatalf("stage histogram = %+v ok=%v", h, ok)
	}
}

func TestSpanWithoutTraceIsInert(t *testing.T) {
	sp := StartSpan(context.Background(), "fetch")
	if d := sp.End(); d < 0 {
		t.Fatal("negative duration")
	}
}

func TestTraceEndIdempotent(t *testing.T) {
	r := NewRegistry()
	_, tr := r.StartTrace(context.Background(), "entry")
	tr.End()
	tr.End()
	if got := len(r.RecentTraces()); got != 1 {
		t.Fatalf("traces = %d, want 1 after double End", got)
	}
}

func TestTraceRingBounded(t *testing.T) {
	r := NewRegistry()
	total := DefaultTraceCapacity + 10
	for i := 0; i < total; i++ {
		_, tr := r.StartTrace(context.Background(), fmt.Sprintf("t%d", i))
		tr.End()
	}
	traces := r.RecentTraces()
	if len(traces) != DefaultTraceCapacity {
		t.Fatalf("ring holds %d, want %d", len(traces), DefaultTraceCapacity)
	}
	if traces[0].Name != fmt.Sprintf("t%d", total-1) {
		t.Fatalf("most recent = %s, want t%d", traces[0].Name, total-1)
	}
	if traces[len(traces)-1].Name != fmt.Sprintf("t%d", total-DefaultTraceCapacity) {
		t.Fatalf("oldest = %s", traces[len(traces)-1].Name)
	}
}

func TestConcurrentTraces(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, tr := r.StartTrace(context.Background(), "entry")
				sp := StartSpan(ctx, "fetch")
				sp.End()
				tr.Annotate("worker", fmt.Sprint(w))
				tr.End()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = r.RecentTraces()
		}
	}()
	wg.Wait()
	if h, ok := r.Snapshot().Histogram(StageHistogram, "stage", "fetch"); !ok || h.Count != 8*50 {
		t.Fatalf("stage observations = %+v", h)
	}
}
