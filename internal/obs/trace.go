package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// DefaultTraceCapacity bounds the ring buffer of recent traces.
const DefaultTraceCapacity = 128

// StageHistogram is the histogram family every span duration is recorded
// under, labeled by stage name.
const StageHistogram = "msite_stage_seconds"

// SpanRecord is one completed pipeline stage inside a trace.
type SpanRecord struct {
	// Name is the stage, e.g. "fetch", "attr", "raster".
	Name string `json:"name"`
	// OffsetMS is the span start relative to the trace start.
	OffsetMS float64 `json:"offset_ms"`
	// DurationMS is the span's wall-clock time.
	DurationMS float64 `json:"duration_ms"`
}

// TraceRecord is one finished request trace, as exposed by
// /debug/traces.
type TraceRecord struct {
	// Name is the trace's request kind, e.g. "entry" or "subpage".
	Name string `json:"name"`
	// Start is when the request began.
	Start time.Time `json:"start"`
	// DurationMS is the request's total wall-clock time.
	DurationMS float64 `json:"duration_ms"`
	// Attrs are request annotations (session id, cache hit/miss, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Spans are the recorded stages in start order.
	Spans []SpanRecord `json:"spans,omitempty"`
}

// Trace accumulates the spans of one request. It is safe for concurrent
// annotation (the single-flight adaptation path can record spans from a
// goroutine other than the one that started the trace).
type Trace struct {
	reg   *Registry
	name  string
	start time.Time

	mu    sync.Mutex
	spans []SpanRecord
	attrs map[string]string
	done  bool
}

type traceCtxKey struct{}

// StartTrace begins a request trace and stores it in the returned
// context, from which StartSpan and TraceFrom recover it.
func (r *Registry) StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	t := &Trace{reg: r, name: name, start: time.Now()}
	return context.WithValue(ctx, traceCtxKey{}, t), t
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// Annotate attaches a key=value attribute to the trace (session id,
// cache hit/miss, error summaries).
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs[key] = value
}

// Attrs returns a copy of the trace's annotations.
func (t *Trace) Attrs() map[string]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]string, len(t.attrs))
	for k, v := range t.attrs {
		out[k] = v
	}
	return out
}

// End finishes the trace, pushes it into the registry's ring buffer, and
// returns the total duration. Ending twice records once.
func (t *Trace) End() time.Duration {
	if t == nil {
		return 0
	}
	d := time.Since(t.start)
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return d
	}
	t.done = true
	spans := make([]SpanRecord, len(t.spans))
	copy(spans, t.spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].OffsetMS < spans[j].OffsetMS })
	var attrs map[string]string
	if len(t.attrs) > 0 {
		attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			attrs[k] = v
		}
	}
	t.mu.Unlock()
	t.reg.traces.push(TraceRecord{
		Name:       t.name,
		Start:      t.start,
		DurationMS: float64(d) / float64(time.Millisecond),
		Attrs:      attrs,
		Spans:      spans,
	})
	return d
}

// Span is one in-progress pipeline stage.
type Span struct {
	trace *Trace
	name  string
	start time.Time
}

// StartSpan begins a stage span against the trace in ctx. With no trace
// in ctx the span is inert: End returns the elapsed time but records
// nothing.
func StartSpan(ctx context.Context, name string) *Span {
	return &Span{trace: TraceFrom(ctx), name: name, start: time.Now()}
}

// End completes the span, recording it on the trace and in the
// registry's per-stage latency histogram. It returns the duration.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	t := s.trace
	if t == nil {
		return d
	}
	t.reg.Histogram(StageHistogram, "stage", s.name).ObserveDuration(d)
	rec := SpanRecord{
		Name:       s.name,
		OffsetMS:   float64(s.start.Sub(t.start)) / float64(time.Millisecond),
		DurationMS: float64(d) / float64(time.Millisecond),
	}
	t.mu.Lock()
	if !t.done {
		t.spans = append(t.spans, rec)
	}
	t.mu.Unlock()
	return d
}

// traceRing is a bounded buffer of the most recent traces.
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int
	full bool
}

func newTraceRing(capacity int) *traceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &traceRing{buf: make([]TraceRecord, capacity)}
}

func (r *traceRing) push(t TraceRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
}

// recent returns the buffered traces, most recent first.
func (r *traceRing) recent() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]TraceRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// RecentTraces returns the ring buffer's traces, most recent first.
func (r *Registry) RecentTraces() []TraceRecord {
	return r.traces.recent()
}
