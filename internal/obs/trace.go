package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultTraceCapacity bounds the ring buffer of recent traces.
const DefaultTraceCapacity = 128

// DefaultTailCapacity bounds the tail-biased reservoir of slow/error
// traces kept for incident bundles.
const DefaultTailCapacity = 64

// DefaultTailSlow is the duration past which a trace counts as slow and
// enters the tail reservoir (errors always enter). Warm hits are
// single-digit milliseconds and cold adaptations ~100 ms, so anything
// past 250 ms is evidence worth keeping.
const DefaultTailSlow = 250 * time.Millisecond

// StageHistogram is the histogram family every span duration is recorded
// under, labeled by stage name.
const StageHistogram = "msite_stage_seconds"

// SpanRecord is one completed pipeline stage inside a trace.
type SpanRecord struct {
	// Name is the stage, e.g. "fetch", "attr", "raster".
	Name string `json:"name"`
	// OffsetMS is the span start relative to the trace start.
	OffsetMS float64 `json:"offset_ms"`
	// DurationMS is the span's wall-clock time.
	DurationMS float64 `json:"duration_ms"`
}

// TraceRecord is one finished request trace, as exposed by
// /debug/traces.
type TraceRecord struct {
	// ID is the request's trace ID, also returned to the client as the
	// X-MSite-Trace response header and attached to its log lines.
	ID string `json:"id"`
	// Name is the trace's request kind, e.g. "entry" or "subpage".
	Name string `json:"name"`
	// Start is when the request began.
	Start time.Time `json:"start"`
	// DurationMS is the request's total wall-clock time.
	DurationMS float64 `json:"duration_ms"`
	// Attrs are request annotations (session id, cache hit/miss, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Spans are the recorded stages in start order.
	Spans []SpanRecord `json:"spans,omitempty"`
}

// Trace accumulates the spans of one request. It is safe for concurrent
// annotation (the single-flight adaptation path can record spans from a
// goroutine other than the one that started the trace).
type Trace struct {
	reg   *Registry
	id    string
	name  string
	start time.Time

	mu    sync.Mutex
	spans []SpanRecord
	attrs map[string]string
	done  bool
}

type traceCtxKey struct{}

// newTraceID returns a 16-hex-digit request ID. math/rand/v2's global
// generator is seeded from OS entropy and safe for concurrent use;
// collisions within a 128-entry ring are vanishingly unlikely.
func newTraceID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// StartTrace begins a request trace (assigning it a fresh trace ID) and
// stores it in the returned context, from which StartSpan and TraceFrom
// recover it.
func (r *Registry) StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	return r.StartTraceWithID(ctx, name, "")
}

// StartTraceWithID is StartTrace adopting a caller-supplied trace ID —
// the cluster peer transport uses it so a build forwarded to the ring
// owner shows up in both nodes' trace registries under the originating
// request's ID. An empty id gets a fresh one.
func (r *Registry) StartTraceWithID(ctx context.Context, name, id string) (context.Context, *Trace) {
	if id == "" {
		id = newTraceID()
	}
	t := &Trace{reg: r, id: id, name: name, start: time.Now()}
	return context.WithValue(ctx, traceCtxKey{}, t), t
}

// ID returns the trace's request ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// Annotate attaches a key=value attribute to the trace (session id,
// cache hit/miss, error summaries).
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs[key] = value
}

// Attrs returns a copy of the trace's annotations.
func (t *Trace) Attrs() map[string]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]string, len(t.attrs))
	for k, v := range t.attrs {
		out[k] = v
	}
	return out
}

// End finishes the trace, pushes it into the registry's ring buffer, and
// returns the total duration. Ending twice records once.
func (t *Trace) End() time.Duration {
	if t == nil {
		return 0
	}
	d := time.Since(t.start)
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return d
	}
	t.done = true
	spans := make([]SpanRecord, len(t.spans))
	copy(spans, t.spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].OffsetMS < spans[j].OffsetMS })
	var attrs map[string]string
	if len(t.attrs) > 0 {
		attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			attrs[k] = v
		}
	}
	t.mu.Unlock()
	rec := TraceRecord{
		ID:         t.id,
		Name:       t.name,
		Start:      t.start,
		DurationMS: float64(d) / float64(time.Millisecond),
		Attrs:      attrs,
		Spans:      spans,
	}
	t.reg.traces.push(rec)
	t.reg.tail.offer(rec, d)
	return d
}

// Span is one in-progress pipeline stage.
type Span struct {
	trace *Trace
	name  string
	start time.Time
}

// StartSpan begins a stage span against the trace in ctx. With no trace
// in ctx the span is inert: End returns the elapsed time but records
// nothing.
func StartSpan(ctx context.Context, name string) *Span {
	return &Span{trace: TraceFrom(ctx), name: name, start: time.Now()}
}

// End completes the span, recording it on the trace and in the
// registry's per-stage latency histogram. It returns the duration.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	t := s.trace
	if t == nil {
		return d
	}
	t.reg.Histogram(StageHistogram, "stage", s.name).ObserveDuration(d)
	rec := SpanRecord{
		Name:       s.name,
		OffsetMS:   float64(s.start.Sub(t.start)) / float64(time.Millisecond),
		DurationMS: float64(d) / float64(time.Millisecond),
	}
	t.mu.Lock()
	if !t.done {
		t.spans = append(t.spans, rec)
	}
	t.mu.Unlock()
	return d
}

// traceRing is a bounded buffer of the most recent traces.
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int
	full bool
}

func newTraceRing(capacity int) *traceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &traceRing{buf: make([]TraceRecord, capacity)}
}

func (r *traceRing) push(t TraceRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
}

// recent returns the buffered traces, most recent first.
func (r *traceRing) recent() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]TraceRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// RecentTraces returns the ring buffer's traces, most recent first.
func (r *Registry) RecentTraces() []TraceRecord {
	return r.traces.recent()
}

// tailReservoir is the tail-biased companion to the plain ring: it
// keeps only the traces worth paging someone over — errored requests
// and requests slower than the threshold — so the evidence for a p99
// spike is still there after thousands of fast requests have cycled the
// main ring. Internally it is a second ring; "tail-biased sampling"
// here means admission is biased to the latency tail, not that
// retention is probabilistic.
type tailReservoir struct {
	mu   sync.Mutex
	slow time.Duration
	buf  []TraceRecord
	next int
	full bool
	seen uint64 // traces offered
	kept uint64 // traces admitted
}

func newTailReservoir(capacity int, slow time.Duration) *tailReservoir {
	if capacity <= 0 {
		capacity = DefaultTailCapacity
	}
	if slow <= 0 {
		slow = DefaultTailSlow
	}
	return &tailReservoir{buf: make([]TraceRecord, capacity), slow: slow}
}

// interesting reports whether rec belongs in the tail: it errored, a
// pipeline stage degraded, it was shed, or it was slow.
func (t *tailReservoir) interesting(rec TraceRecord, d time.Duration) bool {
	if d >= t.slow {
		return true
	}
	for k := range rec.Attrs {
		if k == "error" || k == "shed" || strings.HasPrefix(k, "degraded") {
			return true
		}
	}
	return false
}

// offer admits rec if it is interesting, evicting the oldest kept trace
// past capacity.
func (t *tailReservoir) offer(rec TraceRecord, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen++
	if !t.interesting(rec, d) {
		return
	}
	t.kept++
	t.buf[t.next] = rec
	t.next = (t.next + 1) % len(t.buf)
	if t.next == 0 {
		t.full = true
	}
}

// recent returns the kept traces, most recent first.
func (t *tailReservoir) recent() []TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.buf)
	}
	out := make([]TraceRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.buf[(t.next-i+len(t.buf))%len(t.buf)])
	}
	return out
}

// SetTailSampling tunes the tail reservoir: slow is the duration past
// which a trace is kept (0 keeps DefaultTailSlow), capacity resizes the
// reservoir (0 keeps the current size), dropping kept traces.
func (r *Registry) SetTailSampling(slow time.Duration, capacity int) {
	r.tail.mu.Lock()
	defer r.tail.mu.Unlock()
	if slow > 0 {
		r.tail.slow = slow
	}
	if capacity > 0 && capacity != len(r.tail.buf) {
		r.tail.buf = make([]TraceRecord, capacity)
		r.tail.next = 0
		r.tail.full = false
	}
}

// TailTraces returns the slow/error traces kept by the tail reservoir,
// most recent first.
func (r *Registry) TailTraces() []TraceRecord {
	return r.tail.recent()
}

// TailStats reports how many traces the tail reservoir has been offered
// and how many it admitted.
func (r *Registry) TailStats() (seen, kept uint64) {
	r.tail.mu.Lock()
	defer r.tail.mu.Unlock()
	return r.tail.seen, r.tail.kept
}
