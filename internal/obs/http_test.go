package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func seededRegistry() *Registry {
	r := NewRegistry()
	r.Counter("msite_proxy_requests_total", "handler", "entry", "site", "sawdust").Add(3)
	r.Gauge("msite_sessions_live").Set(2)
	h := r.HistogramBuckets("msite_stage_seconds", []float64{0.1, 1}, "stage", "fetch")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	return r
}

func TestMetricsPrometheusText(t *testing.T) {
	srv := httptest.NewServer(Handler(seededRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE msite_proxy_requests_total counter",
		`msite_proxy_requests_total{handler="entry",site="sawdust"} 3`,
		"# TYPE msite_sessions_live gauge",
		"msite_sessions_live 2",
		"# TYPE msite_stage_seconds histogram",
		`msite_stage_seconds_bucket{stage="fetch",le="0.1"} 1`,
		`msite_stage_seconds_bucket{stage="fetch",le="1"} 2`,
		`msite_stage_seconds_bucket{stage="fetch",le="+Inf"} 3`,
		`msite_stage_seconds_sum{stage="fetch"} 5.55`,
		`msite_stage_seconds_count{stage="fetch"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, body)
		}
	}
}

func TestMetricsJSONNegotiated(t *testing.T) {
	srv := httptest.NewServer(Handler(seededRegistry()))
	defer srv.Close()

	for _, mode := range []string{"accept", "query"} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		if mode == "accept" {
			req.Header.Set("Accept", "application/json")
		} else {
			req.URL.RawQuery = "format=json"
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content type = %q", mode, ct)
		}
		var snap Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("%s: decoding: %v", mode, err)
		}
		_ = resp.Body.Close()
		c, ok := snap.Counter("msite_proxy_requests_total", "handler", "entry")
		if !ok || c.Value != 3 {
			t.Fatalf("%s: counter = %+v ok=%v", mode, c, ok)
		}
		h, ok := snap.Histogram("msite_stage_seconds", "stage", "fetch")
		if !ok || h.Count != 3 || len(h.Buckets) != 3 {
			t.Fatalf("%s: histogram = %+v ok=%v", mode, h, ok)
		}
		if h.P50 <= 0 || h.P90 <= h.P50 {
			t.Fatalf("%s: quantiles p50=%v p90=%v", mode, h.P50, h.P90)
		}
	}
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestTracesEndpoint(t *testing.T) {
	r := NewRegistry()
	ctx, tr := r.StartTrace(context.Background(), "entry")
	StartSpan(ctx, "fetch").End()
	tr.Annotate("cache", "miss")
	tr.End()

	srv := httptest.NewServer(TracesHandler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var payload struct {
		Traces []TraceRecord `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Traces) != 1 {
		t.Fatalf("traces = %d", len(payload.Traces))
	}
	got := payload.Traces[0]
	if got.Name != "entry" || got.Attrs["cache"] != "miss" || len(got.Spans) != 1 {
		t.Fatalf("trace = %+v", got)
	}
	if got.Spans[0].Name != "fetch" {
		t.Fatalf("span = %+v", got.Spans[0])
	}
}

func TestTracesLimit(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		_, tr := r.StartTrace(context.Background(), "entry")
		tr.End()
	}
	srv := httptest.NewServer(TracesHandler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var payload struct {
		Traces []TraceRecord `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(payload.Traces))
	}
}

// TestConcurrentScrapeWhileServing exercises metric writes racing with
// HTTP scrapes of both endpoints — the -race guard for the exposition
// path.
func TestConcurrentScrapeWhileServing(t *testing.T) {
	r := NewRegistry()
	metricsSrv := httptest.NewServer(Handler(r))
	defer metricsSrv.Close()
	tracesSrv := httptest.NewServer(TracesHandler(r))
	defer tracesSrv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, tr := r.StartTrace(context.Background(), "entry")
				r.Counter("msite_proxy_requests_total", "handler", "entry").Inc()
				sp := StartSpan(ctx, "fetch")
				sp.End()
				tr.End()
			}
		}()
	}
	for i := 0; i < 20; i++ {
		for _, u := range []string{metricsSrv.URL, metricsSrv.URL + "?format=json", tracesSrv.URL} {
			resp, err := http.Get(u)
			if err != nil {
				t.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("scrape %s = %d", u, resp.StatusCode)
			}
		}
	}
	close(stop)
	wg.Wait()
}
