package obs

import (
	"runtime"
	runtimemetrics "runtime/metrics"
	"runtime/pprof"
	"sync"
	"time"
)

// DefaultHealthInterval is how often the runtime health sampler polls
// the Go runtime.
const DefaultHealthInterval = 10 * time.Second

// HealthSampler polls the Go runtime on a ticker and exports gauges for
// the things that go wrong in a long-lived proxy: heap growth, GC pause
// behaviour, goroutine leaks, and scheduler latency. Create with
// NewHealthSampler, start with Start, stop with Stop. Sample may also be
// called directly (tests, pre-capture refresh in the flight recorder).
type HealthSampler struct {
	reg      *Registry
	interval time.Duration

	mu            sync.Mutex
	lastSched     *runtimemetrics.Float64Histogram
	lastNumGC     uint32
	lastPauseTot  uint64
	lastGoroutine int

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// schedLatencyMetric is the runtime/metrics sample for time goroutines
// spend runnable before running — the node-local signal for CPU
// saturation.
const schedLatencyMetric = "/sched/latencies:seconds"

// NewHealthSampler builds a sampler over reg. interval ≤ 0 uses
// DefaultHealthInterval.
func NewHealthSampler(reg *Registry, interval time.Duration) *HealthSampler {
	if interval <= 0 {
		interval = DefaultHealthInterval
	}
	return &HealthSampler{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the sampling ticker (taking one sample immediately).
func (h *HealthSampler) Start() {
	go func() {
		defer close(h.done)
		ticker := time.NewTicker(h.interval)
		defer ticker.Stop()
		h.Sample()
		for {
			select {
			case <-ticker.C:
				h.Sample()
			case <-h.stop:
				return
			}
		}
	}()
}

// Stop ends the ticker. Safe to call more than once; only the first
// call blocks for the goroutine.
func (h *HealthSampler) Stop() {
	h.stopOnce.Do(func() {
		close(h.stop)
		<-h.done
	})
}

// Goroutines returns the goroutine count from the most recent sample
// (0 before the first).
func (h *HealthSampler) Goroutines() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastGoroutine
}

// Sample takes one runtime reading and updates the msite_runtime_*
// gauges. Safe for concurrent use.
func (h *HealthSampler) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	goroutines := runtime.NumGoroutine()

	samples := []runtimemetrics.Sample{{Name: schedLatencyMetric}}
	runtimemetrics.Read(samples)

	h.mu.Lock()
	var schedP99 float64
	if samples[0].Value.Kind() == runtimemetrics.KindFloat64Histogram {
		cur := samples[0].Value.Float64Histogram()
		schedP99 = histogramDeltaP99(h.lastSched, cur)
		h.lastSched = cloneFloat64Histogram(cur)
	}
	h.lastNumGC = ms.NumGC
	h.lastPauseTot = ms.PauseTotalNs
	h.lastGoroutine = goroutines
	h.mu.Unlock()

	r := h.reg
	r.Gauge("msite_runtime_goroutines").Set(float64(goroutines))
	r.Gauge("msite_runtime_threads").Set(float64(pprof.Lookup("threadcreate").Count()))
	r.Gauge("msite_runtime_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	r.Gauge("msite_runtime_heap_sys_bytes").Set(float64(ms.HeapSys))
	r.Gauge("msite_runtime_heap_objects").Set(float64(ms.HeapObjects))
	r.Gauge("msite_runtime_gc_cycles_total").Set(float64(ms.NumGC))
	r.Gauge("msite_runtime_gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	if ms.NumGC > 0 {
		last := ms.PauseNs[(ms.NumGC+255)%256]
		r.Gauge("msite_runtime_gc_pause_last_seconds").Set(float64(last) / 1e9)
	}
	r.Gauge("msite_runtime_sched_latency_p99_seconds").Set(schedP99)
}

// cloneFloat64Histogram deep-copies a runtime/metrics histogram so the
// next Read doesn't overwrite our baseline.
func cloneFloat64Histogram(src *runtimemetrics.Float64Histogram) *runtimemetrics.Float64Histogram {
	if src == nil {
		return nil
	}
	out := &runtimemetrics.Float64Histogram{
		Counts:  make([]uint64, len(src.Counts)),
		Buckets: make([]float64, len(src.Buckets)),
	}
	copy(out.Counts, src.Counts)
	copy(out.Buckets, src.Buckets)
	return out
}

// histogramDeltaP99 estimates the p99 of the observations added between
// prev and cur (runtime/metrics histograms are cumulative since process
// start; the delta isolates the last interval). Returns 0 when nothing
// was added. Bucket i of Counts spans Buckets[i] to Buckets[i+1].
func histogramDeltaP99(prev, cur *runtimemetrics.Float64Histogram) float64 {
	if cur == nil || len(cur.Counts) == 0 {
		return 0
	}
	deltas := make([]uint64, len(cur.Counts))
	var total uint64
	for i, c := range cur.Counts {
		d := c
		if prev != nil && i < len(prev.Counts) && prev.Counts[i] <= c {
			d = c - prev.Counts[i]
		}
		deltas[i] = d
		total += d
	}
	if total == 0 {
		return 0
	}
	rank := uint64(float64(total) * 0.99)
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, d := range deltas {
		cum += d
		if cum >= rank {
			// Report the bucket's upper edge; the final bucket's edge may
			// be +Inf, in which case fall back to its lower edge.
			hi := i + 1
			if hi < len(cur.Buckets) && !isInf(cur.Buckets[hi]) {
				return cur.Buckets[hi]
			}
			if i < len(cur.Buckets) {
				return cur.Buckets[i]
			}
			return 0
		}
	}
	return 0
}

func isInf(v float64) bool { return v > 1e308 || v < -1e308 }
