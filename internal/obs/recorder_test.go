package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newTestRecorder builds an unstarted recorder with a fast CPU profile
// over a temp dir; tests drive capture/watch directly.
func newTestRecorder(t *testing.T, r *Registry, clock *fakeClock, tweak func(*RecorderConfig)) *Recorder {
	t.Helper()
	cfg := RecorderConfig{
		Dir:        t.TempDir(),
		CPUProfile: 20 * time.Millisecond,
		Clock:      clock.Now,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rec, err := NewRecorder(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderCapturesCompleteBundle(t *testing.T) {
	r := NewRegistry()
	clock := newFakeClock()
	rec := newTestRecorder(t, r, clock, nil)

	// Seed some state the bundle should carry: a tail-worthy trace and a
	// counter that will appear in the deltas.
	r.SetTailSampling(time.Hour, 0)
	_, tr := r.StartTrace(context.Background(), "entry")
	tr.Annotate("error", "boom")
	tr.End()
	r.Counter("msite_proxy_errors_total", "site", "forum").Add(3)

	rec.capture(tripRequest{reason: "slo_burn_availability", detail: "test burn"})

	incidents := rec.Incidents()
	if len(incidents) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incidents))
	}
	meta := incidents[0]
	if meta.Reason != "slo_burn_availability" || meta.Detail != "test burn" {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.Goroutines < 1 {
		t.Fatal("goroutine count not recorded")
	}
	for _, want := range []string{"goroutines.txt", "heap.pprof", "cpu.pprof", "traces.json", "metrics_delta.json"} {
		found := false
		for _, f := range meta.Files {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("bundle missing %s: %v", want, meta.Files)
		}
		fi, err := os.Stat(filepath.Join(rec.Dir(), meta.Name, want))
		if err != nil || fi.Size() == 0 {
			t.Fatalf("bundle file %s: err=%v size=%v", want, err, fi)
		}
	}

	// traces.json carries the tail-sampled error trace.
	raw, err := os.ReadFile(filepath.Join(rec.Dir(), meta.Name, "traces.json"))
	if err != nil {
		t.Fatal(err)
	}
	var traces struct {
		Tail []TraceRecord `json:"tail"`
	}
	if err := json.Unmarshal(raw, &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Tail) != 1 || traces.Tail[0].Name != "entry" {
		t.Fatalf("tail traces = %+v", traces.Tail)
	}

	// metrics_delta.json records the error counter's growth since the
	// recorder started.
	raw, err = os.ReadFile(filepath.Join(rec.Dir(), meta.Name, "metrics_delta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var delta struct {
		CounterDeltas []struct {
			Name  string `json:"name"`
			Delta uint64 `json:"delta"`
		} `json:"counter_deltas"`
	}
	if err := json.Unmarshal(raw, &delta); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range delta.CounterDeltas {
		if d.Name == "msite_proxy_errors_total" && d.Delta == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("error-counter delta missing: %+v", delta.CounterDeltas)
	}

	// No temp dirs left behind.
	entries, _ := os.ReadDir(rec.Dir())
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("stale temp dir %s", e.Name())
		}
	}
}

func TestRecorderCooldownSuppression(t *testing.T) {
	r := NewRegistry()
	clock := newFakeClock()
	rec := newTestRecorder(t, r, clock, func(c *RecorderConfig) {
		c.Cooldown = time.Minute
	})

	rec.capture(tripRequest{reason: "shed_storm"})
	clock.Advance(10 * time.Second) // inside the cooldown
	rec.capture(tripRequest{reason: "shed_storm"})
	if got := len(rec.Incidents()); got != 1 {
		t.Fatalf("incidents = %d, want 1 (second suppressed)", got)
	}
	var suppressed uint64
	for _, c := range r.Snapshot().Counters {
		if c.Name == "msite_incidents_suppressed_total" {
			suppressed += c.Value
		}
	}
	if suppressed != 1 {
		t.Fatalf("suppressed counter = %d, want 1", suppressed)
	}

	// A different reason has its own cooldown; an expired cooldown
	// re-arms.
	rec.capture(tripRequest{reason: "breaker_open"})
	clock.Advance(2 * time.Minute)
	rec.capture(tripRequest{reason: "shed_storm"})
	if got := len(rec.Incidents()); got != 3 {
		t.Fatalf("incidents = %d, want 3", got)
	}
}

func TestRecorderRetentionPrunesOldest(t *testing.T) {
	r := NewRegistry()
	clock := newFakeClock()
	rec := newTestRecorder(t, r, clock, func(c *RecorderConfig) {
		c.MaxIncidents = 2
		c.Cooldown = time.Millisecond
	})

	for i := 0; i < 4; i++ {
		rec.capture(tripRequest{reason: "shed_storm"})
		clock.Advance(time.Second)
	}
	incidents := rec.Incidents()
	if len(incidents) != 2 {
		t.Fatalf("retained = %d, want 2", len(incidents))
	}
	// Newest first; the two oldest stamps are gone.
	if incidents[0].Name <= incidents[1].Name {
		t.Fatalf("order = %v", []string{incidents[0].Name, incidents[1].Name})
	}
}

func TestRecorderWatchdogTripsOnEvents(t *testing.T) {
	r := NewRegistry()
	clock := newFakeClock()
	rec := newTestRecorder(t, r, clock, func(c *RecorderConfig) {
		c.ShedStorm = 5
		c.Cooldown = time.Millisecond
		c.GoroutineLimit = -1 // not under test
	})

	// Below the storm threshold: no trip.
	for i := 0; i < 4; i++ {
		r.Emit(EventShed, "queue_full")
	}
	rec.watch()
	if got := len(rec.Incidents()); got != 0 {
		t.Fatalf("tripped on %d sheds under threshold", got)
	}
	clock.Advance(time.Second)

	// A storm in one tick trips shed_storm.
	for i := 0; i < 5; i++ {
		r.Emit(EventShed, "queue_full")
	}
	rec.watch()
	incidents := rec.Incidents()
	if len(incidents) != 1 || incidents[0].Reason != "shed_storm" {
		t.Fatalf("incidents = %+v", incidents)
	}
	clock.Advance(time.Second)

	// A breaker opening trips immediately, and store corruption too.
	r.Emit(EventBreakerOpen, "origin-1")
	rec.watch()
	clock.Advance(time.Second)
	r.Emit(EventStoreCorrupt, "seg-0")
	rec.watch()
	reasons := map[string]bool{}
	for _, m := range rec.Incidents() {
		reasons[m.Reason] = true
	}
	if !reasons["breaker_open"] || !reasons["store_corrupt"] {
		t.Fatalf("reasons = %v", reasons)
	}
}

func TestRecorderGoroutineGrowthTrip(t *testing.T) {
	r := NewRegistry()
	clock := newFakeClock()
	rec := newTestRecorder(t, r, clock, func(c *RecorderConfig) {
		c.GoroutineLimit = 1 // any real process exceeds this
	})
	rec.watch()
	incidents := rec.Incidents()
	if len(incidents) != 1 || incidents[0].Reason != "goroutine_growth" {
		t.Fatalf("incidents = %+v", incidents)
	}
}

func TestRecorderStartStopAndTrip(t *testing.T) {
	r := NewRegistry()
	rec, err := NewRecorder(r, RecorderConfig{
		Dir:        t.TempDir(),
		CPUProfile: 10 * time.Millisecond,
		Interval:   time.Hour, // watchdog out of the way
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Start()
	rec.Trip("manual", "operator requested")
	deadline := time.Now().Add(5 * time.Second)
	for len(rec.Incidents()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	rec.Stop()
	rec.Stop() // idempotent
	incidents := rec.Incidents()
	if len(incidents) != 1 || incidents[0].Reason != "manual" {
		t.Fatalf("incidents = %+v", incidents)
	}
}

func TestRecorderRequiresDir(t *testing.T) {
	if _, err := NewRecorder(NewRegistry(), RecorderConfig{}); err == nil {
		t.Fatal("no error for empty Dir")
	}
}

func TestIncidentsHandler(t *testing.T) {
	r := NewRegistry()
	clock := newFakeClock()
	rec := newTestRecorder(t, r, clock, nil)
	rec.capture(tripRequest{reason: "shed_storm", detail: "storm"})
	name := rec.Incidents()[0].Name

	h := IncidentsHandler(rec)
	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w
	}

	// Index.
	w := get("/debug/incidents")
	if w.Code != 200 {
		t.Fatalf("index = %d", w.Code)
	}
	var index struct {
		Dir       string         `json:"dir"`
		Incidents []IncidentMeta `json:"incidents"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &index); err != nil {
		t.Fatal(err)
	}
	if len(index.Incidents) != 1 || index.Incidents[0].Name != name {
		t.Fatalf("index = %+v", index)
	}

	// Bundle file list.
	w = get("/debug/incidents/" + name)
	var listing struct {
		Files []string `json:"files"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Files) < 5 {
		t.Fatalf("files = %v", listing.Files)
	}

	// Individual file.
	w = get("/debug/incidents/" + name + "/meta.json")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "shed_storm") {
		t.Fatalf("meta fetch = %d: %s", w.Code, w.Body.String())
	}

	// Traversal and junk are rejected.
	for _, path := range []string{
		"/debug/incidents/not-a-bundle",
		"/debug/incidents/" + name + "/.hidden",
		"/debug/incidents/" + name + "/a/b",
	} {
		if w := get(path); w.Code != 404 {
			t.Fatalf("%s = %d, want 404", path, w.Code)
		}
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("DELETE", "/debug/incidents", nil))
	if w.Code != 405 {
		t.Fatalf("DELETE = %d, want 405", w.Code)
	}
}
