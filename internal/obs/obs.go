// Package obs is the observability layer of m.Site: atomic counters,
// gauges, and fixed-bucket latency histograms behind a named registry, a
// lightweight span/trace API that records the adaptation pipeline's
// stages per request, and an HTTP exposition handler that serves both
// JSON and Prometheus text format. It is stdlib-only and designed so
// that recording on the adaptation hot path is a few atomic operations —
// scrapes never contend with serving.
//
// The paper's evaluation (§4) is entirely about where time goes —
// per-attribute adaptation cost, render-vs-cache-hit latency,
// multi-session scalability — and this package is how the repo measures
// that on live traffic rather than only in offline experiments.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the histogram upper bounds, in seconds, used
// when no explicit buckets are given. They span 0.5 ms – 10 s, the range
// between a cache hit and a pathological origin fetch.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Label is one metric label pair.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// DefaultLabelCardinality bounds how many distinct values one label key
// of one metric family may take. The 65th and later values collapse
// into OverflowLabelValue, so an open-ended label source (a crawler
// hitting many sites, a botnet of origins) cannot grow /metrics without
// bound.
const DefaultLabelCardinality = 64

// OverflowLabelValue is the bucket label values collapse into past the
// cardinality cap.
const OverflowLabelValue = "other"

// Event is one notable runtime occurrence emitted by an instrumented
// subsystem — the push-side complement to the pull-side metrics. The
// flight recorder subscribes to these to trip incident captures.
type Event struct {
	// Kind is one of the Event* constants.
	Kind string
	// Detail carries the specifics (origin host, shed reason, store key).
	Detail string
	// Time is when the event happened.
	Time time.Time
}

// Event kinds emitted by the instrumented subsystems.
const (
	// EventBreakerOpen: a per-origin circuit breaker tripped open.
	EventBreakerOpen = "breaker_open"
	// EventShed: admission control refused a request (detail = reason).
	EventShed = "shed"
	// EventStoreCorrupt: the durable store dropped a corrupt record.
	EventStoreCorrupt = "store_corrupt"
)

// Registry holds named metrics, the ring buffer of recent traces, the
// tail-biased slow/error trace reservoir, and the event subscribers.
// All methods are safe for concurrent use; metric handles returned by
// Counter/Gauge/Histogram may be cached and used lock-free.
type Registry struct {
	mu        sync.RWMutex
	metrics   map[string]any // *Counter, *Gauge, *gaugeFunc, *Histogram
	cardLimit int
	// labelSeen tracks the distinct values per (family, label key) for
	// the cardinality cap; keys are name+"\x00"+labelKey.
	labelSeen map[string]map[string]struct{}
	traces    *traceRing
	tail      *tailReservoir

	// subs is the event-subscriber list. It is copy-on-write behind an
	// atomic pointer so Emit on a hot path is one load and (with no
	// subscribers, the common case) nothing else.
	subs atomic.Pointer[[]func(Event)]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics:   make(map[string]any),
		cardLimit: DefaultLabelCardinality,
		labelSeen: make(map[string]map[string]struct{}),
		traces:    newTraceRing(DefaultTraceCapacity),
		tail:      newTailReservoir(DefaultTailCapacity, DefaultTailSlow),
	}
}

// Subscribe registers fn to receive every subsequent Emit. fn must be
// fast and must not call back into metric registration while handling
// an event from a registration path.
func (r *Registry) Subscribe(fn func(Event)) {
	for {
		old := r.subs.Load()
		var next []func(Event)
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, fn)
		if r.subs.CompareAndSwap(old, &next) {
			return
		}
	}
}

// Emit publishes an event to every subscriber, synchronously. With no
// subscribers it is a single atomic load.
func (r *Registry) Emit(kind, detail string) {
	subs := r.subs.Load()
	if subs == nil || len(*subs) == 0 {
		return
	}
	ev := Event{Kind: kind, Detail: detail, Time: time.Now()}
	for _, fn := range *subs {
		fn(ev)
	}
}

// SetLabelCardinality adjusts the per-(family, key) distinct-value cap.
// 0 restores DefaultLabelCardinality; negative disables the cap.
func (r *Registry) SetLabelCardinality(n int) {
	if n == 0 {
		n = DefaultLabelCardinality
	}
	r.mu.Lock()
	r.cardLimit = n
	r.mu.Unlock()
}

// capLabels enforces the cardinality cap: label values beyond the
// per-(family, key) limit are replaced with OverflowLabelValue. The
// fast path (every value already seen) takes only the read lock.
func (r *Registry) capLabels(name string, labels []Label) []Label {
	if len(labels) == 0 {
		return labels
	}
	r.mu.RLock()
	limit := r.cardLimit
	allSeen := limit >= 0
	if allSeen {
		for _, l := range labels {
			if _, ok := r.labelSeen[name+"\x00"+l.Key][l.Value]; !ok {
				allSeen = false
				break
			}
		}
	}
	r.mu.RUnlock()
	if limit < 0 || allSeen {
		return labels
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	capped := labels
	for i, l := range labels {
		famKey := name + "\x00" + l.Key
		seen := r.labelSeen[famKey]
		if seen == nil {
			seen = make(map[string]struct{})
			r.labelSeen[famKey] = seen
		}
		if _, ok := seen[l.Value]; ok {
			continue
		}
		if len(seen) < r.cardLimit {
			seen[l.Value] = struct{}{}
			continue
		}
		// Over the cap: rewrite this pair to the overflow bucket (on a
		// copy, the caller's slice may be shared).
		if &capped[0] == &labels[0] {
			capped = make([]Label, len(labels))
			copy(capped, labels)
		}
		capped[i].Value = OverflowLabelValue
	}
	return capped
}

// metricID canonicalizes a name plus label pairs into a map key (and the
// exposition series identity): labels are sorted by key.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// makeLabels turns variadic "k1, v1, k2, v2" pairs into a sorted label
// slice. Odd-length input is a programming error.
func makeLabels(pairs []string) []Label {
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pairs %v", pairs))
	}
	labels := make([]Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		labels = append(labels, Label{Key: pairs[i], Value: pairs[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return labels
}

// lookup returns the existing metric under id, or runs make under the
// write lock and stores its result.
func (r *Registry) lookup(id string, make func() any) any {
	r.mu.RLock()
	m, ok := r.metrics[id]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[id]; ok {
		return m
	}
	m = make()
	r.metrics[id] = m
	return m
}

// Counter returns (creating on first use) the counter for name and label
// pairs ("k1", "v1", ...). Label values past the cardinality cap
// collapse into OverflowLabelValue.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	labels := r.capLabels(name, makeLabels(labelPairs))
	id := metricID(name, labels)
	m := r.lookup(id, func() any { return &Counter{name: name, labels: labels} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s already registered as %T", id, m))
	}
	return c
}

// Gauge returns (creating on first use) the settable gauge for name and
// label pairs.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	labels := r.capLabels(name, makeLabels(labelPairs))
	id := metricID(name, labels)
	m := r.lookup(id, func() any { return &Gauge{name: name, labels: labels} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s already registered as %T", id, m))
	}
	return g
}

// GaugeFunc registers (or replaces) a gauge whose value is read from fn
// at snapshot time — e.g. the live-session count.
func (r *Registry) GaugeFunc(name string, fn func() float64, labelPairs ...string) {
	labels := r.capLabels(name, makeLabels(labelPairs))
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[id]; ok {
		if _, isFunc := m.(*gaugeFunc); !isFunc {
			panic(fmt.Sprintf("obs: metric %s already registered as %T", id, m))
		}
	}
	r.metrics[id] = &gaugeFunc{name: name, labels: labels, fn: fn}
}

// Histogram returns (creating on first use) the latency histogram for
// name and label pairs, with DefaultLatencyBuckets.
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram {
	return r.HistogramBuckets(name, DefaultLatencyBuckets, labelPairs...)
}

// HistogramBuckets is Histogram with explicit upper bounds (sorted
// ascending; an implicit +Inf bucket is appended).
func (r *Registry) HistogramBuckets(name string, bounds []float64, labelPairs ...string) *Histogram {
	labels := r.capLabels(name, makeLabels(labelPairs))
	id := metricID(name, labels)
	m := r.lookup(id, func() any { return newHistogram(name, labels, bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s already registered as %T", id, m))
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name   string
	labels []Label
	v      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable value (stored as float64 bits).
type Gauge struct {
	name   string
	labels []Label
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// gaugeFunc is a gauge sampled at snapshot time.
type gaugeFunc struct {
	name   string
	labels []Label
	fn     func() float64
}

// Histogram is a fixed-bucket histogram with atomic bucket counts; the
// last bucket is +Inf. Observe is wait-free apart from the sum's CAS.
type Histogram struct {
	name   string
	labels []Label
	bounds []float64       // finite upper bounds, ascending
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

func newHistogram(name string, labels []Label, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %s bounds not sorted", name))
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		name:   name,
		labels: labels,
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value (seconds, for latency histograms).
func (h *Histogram) Observe(v float64) {
	// First bound >= v: the le-bucket the value belongs to. Values above
	// every bound land in the trailing +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's le bound; +Inf for the last.
	UpperBound float64 `json:"-"`
	// Count is the cumulative observation count at or below UpperBound.
	Count uint64 `json:"count"`
}

// MarshalJSON encodes the le bound as a string so the +Inf bucket
// survives JSON (which has no infinity literal).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(struct {
		Le    string `json:"le"`
		Count uint64 `json:"count"`
	}{Le: le, Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var aux struct {
		Le    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	b.Count = aux.Count
	if aux.Le == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	v, err := strconv.ParseFloat(aux.Le, 64)
	if err != nil {
		return err
	}
	b.UpperBound = v
	return nil
}

// CounterStat is a counter's snapshot.
type CounterStat struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugeStat is a gauge's snapshot.
type GaugeStat struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramStat is a histogram's snapshot with estimated quantiles.
type HistogramStat struct {
	Name    string   `json:"name"`
	Labels  []Label  `json:"labels,omitempty"`
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
}

// Label returns the value of the labeled key, or "".
func (h HistogramStat) Label(key string) string { return labelValue(h.Labels, key) }

// Label returns the value of the labeled key, or "".
func (c CounterStat) Label(key string) string { return labelValue(c.Labels, key) }

func labelValue(labels []Label, key string) string {
	for _, l := range labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// snapshot reads the histogram's state. Concurrent observations may land
// between bucket reads; the result is a consistent-enough point-in-time
// view (count is re-derived from the bucket sum so buckets always add up).
func (h *Histogram) snapshot() HistogramStat {
	buckets := make([]Bucket, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		buckets[i] = Bucket{UpperBound: bound, Count: cum}
	}
	st := HistogramStat{
		Name:    h.name,
		Labels:  h.labels,
		Count:   cum,
		Sum:     math.Float64frombits(h.sum.Load()),
		Buckets: buckets,
	}
	st.P50 = quantile(buckets, 0.50)
	st.P90 = quantile(buckets, 0.90)
	st.P99 = quantile(buckets, 0.99)
	return st
}

// quantile estimates the q-quantile from cumulative buckets with linear
// interpolation inside the target bucket (the histogram_quantile rule).
// Observations in the +Inf bucket clamp to the highest finite bound.
func quantile(buckets []Bucket, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	for i, b := range buckets {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			// Clamp to the last finite bound.
			if i > 0 {
				return buckets[i-1].UpperBound
			}
			return 0
		}
		lower, below := 0.0, uint64(0)
		if i > 0 {
			lower = buckets[i-1].UpperBound
			below = buckets[i-1].Count
		}
		inBucket := b.Count - below
		if inBucket == 0 {
			return b.UpperBound
		}
		return lower + (b.UpperBound-lower)*(rank-float64(below))/float64(inBucket)
	}
	return buckets[len(buckets)-1].UpperBound
}

// Snapshot is a point-in-time view of every metric, sorted by series
// identity for stable output.
type Snapshot struct {
	Counters   []CounterStat   `json:"counters"`
	Gauges     []GaugeStat     `json:"gauges"`
	Histograms []HistogramStat `json:"histograms"`
}

// Histogram returns the named histogram stat matching every given label
// pair, or false.
func (s Snapshot) Histogram(name string, labelPairs ...string) (HistogramStat, bool) {
	want := makeLabels(labelPairs)
	for _, h := range s.Histograms {
		if h.Name == name && labelsMatch(h.Labels, want) {
			return h, true
		}
	}
	return HistogramStat{}, false
}

// Counter returns the named counter stat matching every given label
// pair, or false.
func (s Snapshot) Counter(name string, labelPairs ...string) (CounterStat, bool) {
	want := makeLabels(labelPairs)
	for _, c := range s.Counters {
		if c.Name == name && labelsMatch(c.Labels, want) {
			return c, true
		}
	}
	return CounterStat{}, false
}

func labelsMatch(have, want []Label) bool {
	for _, w := range want {
		if labelValue(have, w.Key) != w.Value {
			return false
		}
	}
	return true
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	ids := make([]string, 0, len(r.metrics))
	for id := range r.metrics {
		ids = append(ids, id)
	}
	metrics := make([]any, 0, len(ids))
	sort.Strings(ids)
	for _, id := range ids {
		metrics = append(metrics, r.metrics[id])
	}
	r.mu.RUnlock()

	var snap Snapshot
	for _, m := range metrics {
		switch m := m.(type) {
		case *Counter:
			snap.Counters = append(snap.Counters, CounterStat{Name: m.name, Labels: m.labels, Value: m.Value()})
		case *Gauge:
			snap.Gauges = append(snap.Gauges, GaugeStat{Name: m.name, Labels: m.labels, Value: m.Value()})
		case *gaugeFunc:
			snap.Gauges = append(snap.Gauges, GaugeStat{Name: m.name, Labels: m.labels, Value: m.fn()})
		case *Histogram:
			snap.Histograms = append(snap.Histograms, m.snapshot())
		}
	}
	return snap
}
