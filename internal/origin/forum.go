// Package origin provides the synthetic origin web applications the
// evaluation runs against, substituting for the live sites of the paper:
// a template-driven vBulletin-analog forum standing in for
// SawmillCreek.org (66k members, ≈224 KB entry page, ≈12 external
// scripts, Fig. 4), and a classified-listings engine standing in for
// CraigsList.com (§4.5, Fig. 6). Both are deterministic functions of a
// seed so experiments are reproducible.
package origin

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ForumConfig sizes the synthetic community.
type ForumConfig struct {
	// Name is the site branding.
	Name string
	// Members is the community size (the paper's site: ~66,000).
	Members int
	// Forums is the number of forum rows on the entry page (~30).
	Forums int
	// Online is the members-online count (~1200 peak).
	Online int
	// Scripts is the number of external JavaScript files (~12).
	Scripts int
	// Seed drives all synthetic content.
	Seed int64
}

// DefaultForumConfig mirrors the paper's deployment scale.
func DefaultForumConfig() ForumConfig {
	return ForumConfig{
		Name:    "Sawdust Creek",
		Members: 66_000,
		Forums:  30,
		Online:  312,
		Scripts: 12,
		Seed:    42,
	}
}

// Forum is the synthetic vBulletin-analog application.
type Forum struct {
	cfg ForumConfig

	mu         sync.Mutex
	pages      map[string][]byte // generated-content cache
	generation int               // entry-page revision, bumped by Bump

	bytesServed atomic.Int64

	forumNames  []string
	memberNames []string
}

// NewForum builds the forum from its config.
func NewForum(cfg ForumConfig) *Forum {
	if cfg.Forums <= 0 {
		cfg.Forums = 30
	}
	if cfg.Scripts <= 0 {
		cfg.Scripts = 12
	}
	if cfg.Members <= 0 {
		cfg.Members = 66_000
	}
	f := &Forum{cfg: cfg, pages: make(map[string][]byte)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f.forumNames = makeForumNames(cfg.Forums, rng)
	f.memberNames = makeMemberNames(60, rng)
	return f
}

var forumTopics = []string{
	"General Woodworking", "Project Finishing", "Hand Tools", "Power Tools",
	"Turning and Carving", "Workshop Design", "Lumber and Millwork",
	"Joinery Techniques", "CNC and Automation", "Sharpening Station",
	"Design and Drafting", "Restoration", "Outdoor Projects", "Scroll Saws",
	"Veneering and Inlay", "Furniture Builds", "Cabinet Making",
	"Wood Identification", "Shop Safety", "Dust Collection",
	"Classifieds", "Show and Tell", "Beginner Questions", "Jigs and Fixtures",
	"Finishing Chemistry", "Timber Framing", "Boat Building", "Luthiery",
	"Carving Gallery", "Off Topic Lounge", "Site Feedback", "Events and Meetups",
}

var nameParts = []string{
	"oak", "maple", "walnut", "birch", "cherry", "cedar", "pine", "elm",
	"ash", "beech", "saw", "plane", "chisel", "lathe", "rasp", "dado",
	"tenon", "dovetail", "burl", "grain", "knot", "board", "bench", "vise",
}

func makeForumNames(n int, rng *rand.Rand) []string {
	names := make([]string, n)
	for i := range names {
		if i < len(forumTopics) {
			names[i] = forumTopics[i]
			continue
		}
		part := nameParts[rng.Intn(len(nameParts))]
		names[i] = strings.ToUpper(part[:1]) + part[1:] + " Corner " + strconv.Itoa(i)
	}
	return names
}

func makeMemberNames(n int, rng *rand.Rand) []string {
	names := make([]string, n)
	for i := range names {
		a := nameParts[rng.Intn(len(nameParts))]
		b := nameParts[rng.Intn(len(nameParts))]
		names[i] = a + "_" + b + strconv.Itoa(rng.Intn(99))
	}
	return names
}

// Handler returns the forum's HTTP handler. Every response body is
// metered into BytesServed, so experiments can compare the origin cost
// of full rebuilds against conditional revalidation.
func (f *Forum) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", f.serveIndex)
	mux.HandleFunc("/index.php", f.serveIndex)
	mux.HandleFunc("/clientscript/", f.serveClientScript)
	mux.HandleFunc("/images/", f.serveImage)
	mux.HandleFunc("/ads/", f.serveImage)
	mux.HandleFunc("/media/", f.serveMedia)
	mux.HandleFunc("/forumdisplay.php", f.serveForumDisplay)
	mux.HandleFunc("/showthread.php", f.serveThread)
	mux.HandleFunc("/login.php", f.serveLogin)
	mux.HandleFunc("/private.php", f.servePrivate)
	mux.HandleFunc("/site.php", f.serveSite)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mux.ServeHTTP(&meteredWriter{ResponseWriter: w, total: &f.bytesServed}, r)
	})
}

// meteredWriter counts body bytes into the forum's served-bytes total.
type meteredWriter struct {
	http.ResponseWriter
	total *atomic.Int64
}

func (m *meteredWriter) Write(p []byte) (int, error) {
	n, err := m.ResponseWriter.Write(p)
	m.total.Add(int64(n))
	return n, err
}

// BytesServed returns the total response-body bytes this origin has
// sent since creation — the experiment's origin-cost meter.
func (f *Forum) BytesServed() int64 { return f.bytesServed.Load() }

// Bump advances the entry page to a new revision: the content and its
// ETag change, so conditional revalidation sees a modified origin. This
// is the churn lever for the prefetch experiments.
func (f *Forum) Bump() {
	f.mu.Lock()
	f.generation++
	f.mu.Unlock()
}

// Generation returns the current entry-page revision.
func (f *Forum) Generation() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.generation
}

// indexState snapshots the revision-dependent serving state.
func (f *Forum) indexState() (gen int, etag, key string) {
	f.mu.Lock()
	gen = f.generation
	f.mu.Unlock()
	return gen, fmt.Sprintf("\"forum-g%d\"", gen), "index:g" + strconv.Itoa(gen)
}

// cached builds a page once and replays it; the origin must be fast so
// experiments measure the proxy, not the origin.
func (f *Forum) cached(key string, build func() []byte) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	if data, ok := f.pages[key]; ok {
		return data
	}
	data := build()
	f.pages[key] = data
	return data
}

// serveIndex serves the entry page with an ETag derived from the
// current revision; a matching If-None-Match answers 304 with no body —
// the response the prefetch refresher's conditional GETs rely on.
func (f *Forum) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" && r.URL.Path != "/index.php" {
		http.NotFound(w, r)
		return
	}
	gen, etag, key := f.indexState()
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data := f.cached(key, func() []byte { return f.buildIndex(gen) })
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(data)
}

// EntryPageBytes returns the entry page size, the §4.2 page-weight
// denominator.
func (f *Forum) EntryPageBytes() int {
	gen, _, key := f.indexState()
	return len(f.cached(key, func() []byte { return f.buildIndex(gen) }))
}

// buildIndex generates the Fig. 4 entry page: logo + leaderboard ad, nav
// links, login form, announcements, ~30 forum rows with latest posts,
// who's online, statistics, birthdays, calendar, footer nav. The
// revision seeds the synthetic numbers, so each Bump changes the page.
func (f *Forum) buildIndex(gen int) []byte {
	rng := rand.New(rand.NewSource(f.cfg.Seed + 1 + int64(gen)*9973))
	var b strings.Builder
	b.Grow(64 << 10)

	b.WriteString(`<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Transitional//EN">
<html><head>
<title>`)
	b.WriteString(f.cfg.Name)
	b.WriteString(` Woodworking Community</title>
<link rel="stylesheet" type="text/css" href="/clientscript/vbulletin.css" />
`)
	for i := 0; i < f.cfg.Scripts; i++ {
		fmt.Fprintf(&b, `<script type="text/javascript" src="/clientscript/js_%d.js"></script>%s`, i, "\n")
	}
	b.WriteString(`<style type="text/css">
.page { width: 98%; margin: 0 auto }
.tcat { background-color: #738fbf; color: white; font-weight: bold; padding: 4px }
.announce { background-color: #fffbd6; border: 1px solid #c8c090; padding: 6px }
</style>
<script type="text/javascript">
function validateLogin() { var u = document.forms.login.username.value; return u.length > 0; }
function jumpForum(sel) { window.location = '/forumdisplay.php?f=' + sel.value; }
</script>
</head><body>
<div class="page">
`)

	// Logo + leaderboard banner.
	b.WriteString(`<div id="logo"><table width="100%"><tr>
<td><img src="/images/sawdust-logo.gif" width="320" height="70" alt="` + f.cfg.Name + `"></td>
<td align="right"><div id="banner"><img src="/ads/leaderboard.gif" width="728" height="90" alt="Advertisement"></div></td>
</tr></table></div>
`)

	// Nav links (single horizontal table row — the §4.3 scrollbar case).
	b.WriteString(`<div id="navlinks"><table cellspacing="0" cellpadding="4" border="0"><tr>`)
	nav := []struct{ href, label string }{
		{"/register.php", "Register"}, {"/faq.php", "FAQ"},
		{"/members.php", "Members List"}, {"/calendar.php", "Calendar"},
		{"/search.php", "Search"}, {"/newposts.php", "New Posts"},
		{"/markread.php", "Mark Forums Read"}, {"/login.php?do=logout", "Log Out"},
	}
	for _, n := range nav {
		fmt.Fprintf(&b, `<td nowrap="nowrap"><a href="%s">%s</a></td>`, n.href, n.label)
	}
	b.WriteString("</tr></table></div>\n")

	// Login form.
	b.WriteString(`<form id="loginform" name="login" action="/login.php" method="post" onsubmit="return validateLogin();">
<table cellpadding="2"><tr>
<td>User Name</td><td><input type="text" name="username" size="12"></td>
<td>Password</td><td><input type="password" name="password" size="12"></td>
<td><input type="checkbox" name="remember" checked> Remember Me</td>
<td><input type="submit" value="Log in"></td>
</tr></table>
</form>
`)

	// Announcements.
	b.WriteString(`<div id="announce" class="announce"><strong>Announcement:</strong> The annual shop tour signup is open. Please review the updated posting guidelines before sharing project photos.</div>
`)

	// Rich media: the shop-tour Flash box (the content the thumbnail
	// attribute mobilizes).
	b.WriteString(`<div id="shoptour"><object width="480" height="270" data="/media/shoptour.swf" type="application/x-shockwave-flash">
<embed src="/media/shoptour.swf" width="480" height="270" type="application/x-shockwave-flash">
</object><div class="smallfont">Video: annual shop tour highlights</div></div>
`)

	// Forum listing.
	b.WriteString(`<table id="forums" class="tborder" cellpadding="6" cellspacing="1" border="0" width="100%">
<tr><td class="tcat" colspan="4">Discussion Forums</td></tr>
`)
	for i, name := range f.forumNames {
		poster := f.memberNames[rng.Intn(len(f.memberNames))]
		threads := 800 + rng.Intn(9000)
		posts := threads * (4 + rng.Intn(9))
		fmt.Fprintf(&b, `<tr>
<td class="alt1"><img src="/images/forum_new_%d.gif" width="24" height="24" alt=""></td>
<td class="alt2"><a href="/forumdisplay.php?f=%d"><strong>%s</strong></a>
<div class="smallfont">Discussion of %s for the community.</div></td>
<td class="alt1"><div class="smallfont">Today 0%d:%02d PM<br>by <a href="/member.php?u=%d">%s</a></div></td>
<td class="alt2" align="center"><div class="smallfont">Threads: %s<br>Posts: %s</div></td>
</tr>
`, i%4, i+2, name, strings.ToLower(name), 1+rng.Intn(9), rng.Intn(60), rng.Intn(f.cfg.Members), poster,
			comma(threads), comma(posts))
	}
	b.WriteString("</table>\n")

	// Who's online.
	b.WriteString(`<div id="whosonline"><div class="tcat">Currently Active Users: ` + comma(f.cfg.Online) + `</div><div class="smallfont">`)
	for i := 0; i < 40 && i < len(f.memberNames); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, `<a href="/member.php?u=%d">%s</a>`, rng.Intn(f.cfg.Members), f.memberNames[i])
	}
	b.WriteString("</div></div>\n")

	// Statistics.
	fmt.Fprintf(&b, `<div id="stats" class="smallfont"><div class="tcat">%s Statistics</div>
Threads: %s, Posts: %s, Members: %s<br>
Welcome to our newest member, <a href="/member.php?u=%d">%s</a></div>
`, f.cfg.Name, comma(88_000+rng.Intn(10_000)), comma(700_000+rng.Intn(90_000)),
		comma(f.cfg.Members), f.cfg.Members-1, f.memberNames[0])

	// Birthdays and calendar.
	b.WriteString(`<div id="birthdays" class="smallfont"><strong>Today's Birthdays:</strong> `)
	for i := 0; i < 6; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, `<a href="/member.php?u=%d">%s (%d)</a>`, rng.Intn(f.cfg.Members),
			f.memberNames[rng.Intn(len(f.memberNames))], 30+rng.Intn(50))
	}
	b.WriteString("</div>\n")
	b.WriteString(`<div id="calendar" class="smallfont"><strong>Calendar:</strong> <a href="/calendar.php?e=1">Hand Tool Swap Meet</a>, <a href="/calendar.php?e=2">Finishing Workshop</a>, <a href="/calendar.php?e=3">Guild Meeting</a></div>
`)

	// Footer nav + jump menu.
	b.WriteString(`<div id="footer"><select name="forumjump" onchange="jumpForum(this)">`)
	for i, name := range f.forumNames {
		fmt.Fprintf(&b, `<option value="%d">%s</option>`, i+2, name)
	}
	b.WriteString(`</select>
<div class="smallfont"><a href="/sendmessage.php">Contact Us</a> - <a href="/">Home</a> - <a href="/archive/">Archive</a> - <a href="#top">Top</a></div>
</div>
</div></body></html>`)
	return []byte(b.String())
}

func comma(v int) string {
	s := strconv.Itoa(v)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

// serveClientScript serves the external CSS and JS subresources with
// deterministic synthetic bodies sized like vBulletin's.
func (f *Forum) serveClientScript(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/clientscript/")
	switch {
	case name == "vbulletin.css":
		w.Header().Set("Content-Type", "text/css")
		_, _ = w.Write(f.cached("css", func() []byte { return buildCSS(30_000) }))
	case strings.HasPrefix(name, "js_") && strings.HasSuffix(name, ".js"):
		w.Header().Set("Content-Type", "application/javascript")
		_, _ = w.Write(f.cached(name, func() []byte { return buildJS(name, 6_000) }))
	default:
		http.NotFound(w, r)
	}
}

// buildCSS emits a deterministic stylesheet of roughly n bytes.
func buildCSS(n int) []byte {
	var b strings.Builder
	b.Grow(n + 256)
	b.WriteString("body { font-family: verdana, arial; font-size: 13px; margin: 0 }\n")
	b.WriteString(".tborder { background-color: #d1d1e1; border: 1px solid #0b198c }\n")
	b.WriteString(".alt1 { background-color: #f5f5ff } .alt2 { background-color: #e1e4f2 }\n")
	b.WriteString(".smallfont { font-size: 11px } a { color: #22229c }\n")
	i := 0
	for b.Len() < n {
		fmt.Fprintf(&b, ".vb-rule-%d td.c%d { padding: %dpx; border-bottom: 1px solid #b0b0c8 }\n",
			i, i%7, 2+i%6)
		i++
	}
	return []byte(b.String())
}

// buildJS emits a deterministic script of roughly n bytes.
func buildJS(name string, n int) []byte {
	var b strings.Builder
	b.Grow(n + 256)
	fmt.Fprintf(&b, "// %s — vBulletin client support\n", name)
	b.WriteString("var vb = window.vb || {};\n")
	i := 0
	for b.Len() < n {
		fmt.Fprintf(&b, "vb.fn_%d = function (a, b) { if (!a) { return b; } return a + %d; };\n", i, i)
		i++
	}
	return []byte(b.String())
}

// serveImage serves deterministic GIF-shaped bytes sized per role: small
// forum icons, a large leaderboard ad, the logo.
func (f *Forum) serveImage(w http.ResponseWriter, r *http.Request) {
	name := strings.Trim(r.URL.Path, "/")
	size := 1_400 // forum icon
	switch {
	case strings.Contains(name, "leaderboard"):
		size = 38_000
	case strings.Contains(name, "logo"):
		size = 14_000
	}
	w.Header().Set("Content-Type", "image/gif")
	_, _ = w.Write(f.cached("img:"+name+":"+strconv.Itoa(size), func() []byte {
		return fakeGIF(name, size)
	}))
}

// serveMedia serves rich-media bytes (the Flash movie the thumbnail
// attribute replaces).
func (f *Forum) serveMedia(w http.ResponseWriter, r *http.Request) {
	name := strings.Trim(r.URL.Path, "/")
	if !strings.HasSuffix(name, ".swf") {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/x-shockwave-flash")
	_, _ = w.Write(f.cached("media:"+name, func() []byte {
		data := fakeGIF(name, 24_000)
		copy(data, "FWS\x09") // SWF magic
		return data
	}))
}

// fakeGIF builds deterministic pseudo-image bytes with a GIF header.
func fakeGIF(seed string, n int) []byte {
	out := make([]byte, n)
	copy(out, "GIF89a")
	state := uint32(2166136261)
	for _, c := range []byte(seed) {
		state = (state ^ uint32(c)) * 16777619
	}
	for i := 6; i < n; i++ {
		state = state*1664525 + 1013904223
		out[i] = byte(state >> 24)
	}
	return out
}

func (f *Forum) serveForumDisplay(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("f"))
	if err != nil || id < 2 || id >= 2+len(f.forumNames) {
		http.NotFound(w, r)
		return
	}
	data := f.cached("forum:"+strconv.Itoa(id), func() []byte {
		return f.buildForumDisplay(id)
	})
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(data)
}

func (f *Forum) buildForumDisplay(id int) []byte {
	rng := rand.New(rand.NewSource(f.cfg.Seed + int64(id)*7))
	name := f.forumNames[id-2]
	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html><html><head><title>%s - %s</title>
<link rel="stylesheet" type="text/css" href="/clientscript/vbulletin.css" />
</head><body><h1>%s</h1><table class="tborder" width="100%%">`, name, f.cfg.Name, name)
	for t := 0; t < 25; t++ {
		poster := f.memberNames[rng.Intn(len(f.memberNames))]
		fmt.Fprintf(&b, `<tr><td class="alt1"><a href="/showthread.php?t=%d">%s thread %d: %s discussion</a>
<div class="smallfont">started by %s, %d replies</div></td></tr>
`, id*1000+t, name, t+1, strings.ToLower(name), poster, rng.Intn(300))
	}
	b.WriteString(`</table><a href="/">Back to index</a></body></html>`)
	return []byte(b.String())
}

func (f *Forum) serveThread(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("t"))
	if err != nil || id < 0 {
		http.NotFound(w, r)
		return
	}
	data := f.cached("thread:"+strconv.Itoa(id), func() []byte {
		rng := rand.New(rand.NewSource(f.cfg.Seed + int64(id)*13))
		var b strings.Builder
		fmt.Fprintf(&b, `<!DOCTYPE html><html><head><title>Thread %d</title></head><body><div id="posts">`, id)
		for p := 0; p < 12; p++ {
			fmt.Fprintf(&b, `<div class="post"><div class="smallfont">%s</div><div class="postbody">Reply %d: grain orientation matters more than species here. Measurement %d held within tolerance.</div>
<a href="#" onclick="$('#picframe').load('site.php?do=showpic&id=%d'); return false;">Show Picture</a></div>
`, f.memberNames[rng.Intn(len(f.memberNames))], p+1, rng.Intn(500), id*100+p)
		}
		b.WriteString(`<div id="picframe"></div></div></body></html>`)
		return []byte(b.String())
	})
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(data)
}

// serveLogin implements the origin's form login: valid credentials set
// the origin session cookie the proxy's cookie jar must carry.
func (f *Forum) serveLogin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(`<html><body><form method="post" action="/login.php">
<input type="text" name="username"><input type="password" name="password">
<input type="submit" value="Log in"></form></body></html>`))
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, "bad form", http.StatusBadRequest)
		return
	}
	user := r.FormValue("username")
	if user == "" || r.FormValue("password") != "sawdust" {
		http.Error(w, "bad credentials", http.StatusForbidden)
		return
	}
	http.SetCookie(w, &http.Cookie{Name: "bbuserid", Value: user, Path: "/"})
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><body>Thanks for logging in, %s. <a href="/">Continue</a></body></html>`, user)
}

// servePrivate is a members-only page gated on the origin session
// cookie — the content the proxy can only fetch with the user's jar.
func (f *Forum) servePrivate(w http.ResponseWriter, r *http.Request) {
	c, err := r.Cookie("bbuserid")
	if err != nil || c.Value == "" {
		http.Error(w, "login required", http.StatusForbidden)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><body><div id="pm">Private messages for %s: <ul><li>Welcome to the guild</li><li>Jig drawings attached</li></ul></div></body></html>`, c.Value)
}

// serveSite is the vBulletin-style AJAX request handler the paper's §4.4
// example rewrites: site.php?do=showpic&id=N.
func (f *Forum) serveSite(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("do") != "showpic" {
		http.NotFound(w, r)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><body><div id="pic"><img src="/images/photo_%s.gif" width="640" height="480" alt="attachment %s"></div><div id="chrome">navigation chrome</div></body></html>`, id, id)
}
