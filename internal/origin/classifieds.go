package origin

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
)

// ClassifiedsConfig sizes the CraigsList-analog site.
type ClassifiedsConfig struct {
	// City brands the site.
	City string
	// Listings is the number of ads per category page (~100 on the real
	// site).
	Listings int
	// Seed drives synthetic content.
	Seed int64
}

// DefaultClassifiedsConfig mirrors a busy category page.
func DefaultClassifiedsConfig() ClassifiedsConfig {
	return ClassifiedsConfig{City: "williamsburg", Listings: 100, Seed: 7}
}

// Classifieds is the synthetic classified-listings engine of §4.5: a
// category page of date-sorted links, each leading to a full ad page —
// the structure whose navigation the iPad adaptation improves.
type Classifieds struct {
	cfg ClassifiedsConfig

	mu    sync.Mutex
	pages map[string][]byte
}

// NewClassifieds builds the site.
func NewClassifieds(cfg ClassifiedsConfig) *Classifieds {
	if cfg.Listings <= 0 {
		cfg.Listings = 100
	}
	return &Classifieds{cfg: cfg, pages: make(map[string][]byte)}
}

var adCategories = []string{"tools", "furniture", "materials", "free"}

var adItems = []string{
	"table saw", "band saw", "router table", "drill press", "jointer",
	"planer", "workbench", "lathe", "dust collector", "clamps set",
	"oak boards", "walnut slab", "maple butcher block", "cherry lumber",
	"dresser", "bookshelf", "dining table", "rocking chair", "tool chest",
	"air compressor", "shop vac", "sander", "miter saw", "scroll saw",
}

// Handler returns the site's HTTP handler.
func (c *Classifieds) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", c.serveCategory)
	mux.HandleFunc("/search/", c.serveCategory)
	mux.HandleFunc("/post/", c.servePost)
	return mux
}

func (c *Classifieds) cached(key string, build func() []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if data, ok := c.pages[key]; ok {
		return data
	}
	data := build()
	c.pages[key] = data
	return data
}

// serveCategory renders a category page: a dated list of ad links.
func (c *Classifieds) serveCategory(w http.ResponseWriter, r *http.Request) {
	category := strings.Trim(strings.TrimPrefix(r.URL.Path, "/search/"), "/")
	if category == "" {
		category = "tools"
	}
	valid := false
	for _, cat := range adCategories {
		if cat == category {
			valid = true
		}
	}
	if !valid {
		http.NotFound(w, r)
		return
	}
	data := c.cached("cat:"+category, func() []byte { return c.buildCategory(category) })
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(data)
}

func (c *Classifieds) buildCategory(category string) []byte {
	rng := rand.New(rand.NewSource(c.cfg.Seed + int64(len(category))))
	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html><html><head><title>%s %s - classifieds</title></head>
<body>
<h1 id="cat-title">%s for sale in %s</h1>
<div id="listings">
`, c.cfg.City, category, category, c.cfg.City)
	day := 28
	for i := 0; i < c.cfg.Listings; i++ {
		if i%7 == 6 && day > 1 {
			day--
		}
		item := adItems[rng.Intn(len(adItems))]
		price := 20 + rng.Intn(980)
		id := fmt.Sprintf("%s%04d", category[:1], i)
		fmt.Fprintf(&b, `<p class="row" data-date="2012-02-%02d">Feb %d - <a href="/post/%s.html">%s - $%d (%s)</a></p>
`, day, day, id, item, price, c.cfg.City)
	}
	b.WriteString(`</div>
<div id="sidebar"><a href="/search/tools">tools</a> <a href="/search/furniture">furniture</a> <a href="/search/materials">materials</a> <a href="/search/free">free</a></div>
</body></html>`)
	return []byte(b.String())
}

// servePost renders one ad's detail page; #postingbody is the fragment
// the adapted two-pane UI extracts.
func (c *Classifieds) servePost(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/post/"), ".html")
	if id == "" || strings.ContainsAny(id, "/.") {
		http.NotFound(w, r)
		return
	}
	data := c.cached("post:"+id, func() []byte { return c.buildPost(id) })
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(data)
}

func (c *Classifieds) buildPost(id string) []byte {
	seed := c.cfg.Seed
	for _, ch := range id {
		seed = seed*31 + int64(ch)
	}
	rng := rand.New(rand.NewSource(seed))
	item := adItems[rng.Intn(len(adItems))]
	price := 20 + rng.Intn(980)
	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html><html><head><title>%s - $%d</title></head>
<body>
<div id="header"><a href="/">classifieds</a> &gt; %s</div>
<h2 class="postingtitle">%s - $%d (%s)</h2>
<section id="postingbody">
Well cared for %s, stored in a heated shop. Pick up only, cash preferred.
Condition rated %d/10 by the seller. Reply to listing %s for details.
<img src="/images/%s.jpg" width="600" height="450" alt="%s">
</section>
<div id="footer">posting id: %s — do not contact with unsolicited services</div>
</body></html>`, item, price, c.cfg.City, item, price, c.cfg.City, item,
		5+rng.Intn(5), id, id, item, id)
	return []byte(b.String())
}
