package origin

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"msite/internal/fetch"
	"msite/internal/html"
	"msite/internal/jq"
)

func forumServer(t *testing.T) (*Forum, *httptest.Server) {
	t.Helper()
	f := NewForum(DefaultForumConfig())
	srv := httptest.NewServer(f.Handler())
	t.Cleanup(srv.Close)
	return f, srv
}

func get(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var b strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String(), resp.StatusCode
}

func TestForumIndexStructure(t *testing.T) {
	_, srv := forumServer(t)
	body, status := get(t, srv.URL+"/")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	// Fig. 4 structure: every named region present.
	doc := html.Tidy(body)
	for _, id := range []string{"logo", "banner", "navlinks", "loginform", "announce", "forums", "whosonline", "stats", "birthdays", "calendar", "footer"} {
		if doc.ElementByID(id) == nil {
			t.Errorf("entry page missing #%s", id)
		}
	}
	if n := jq.Select(doc, "#forums tr").Len(); n != 31 { // header + 30 forums
		t.Errorf("forum rows = %d", n)
	}
	if n := jq.Select(doc, `script[src]`).Len(); n != 12 {
		t.Errorf("external scripts = %d", n)
	}
	if !strings.Contains(body, "728") {
		t.Error("leaderboard banner missing")
	}
}

func TestForumIndexDeterministic(t *testing.T) {
	f1 := NewForum(DefaultForumConfig())
	f2 := NewForum(DefaultForumConfig())
	if string(f1.buildIndex(0)) != string(f2.buildIndex(0)) {
		t.Fatal("same seed should produce identical pages")
	}
	cfg := DefaultForumConfig()
	cfg.Seed = 99
	f3 := NewForum(cfg)
	if string(f1.buildIndex(0)) == string(f3.buildIndex(0)) {
		t.Fatal("different seed should differ")
	}
	if string(f1.buildIndex(0)) == string(f1.buildIndex(1)) {
		t.Fatal("a content churn (generation bump) should change the page")
	}
}

// TestEntryPageWeight reproduces the §4.2 in-text number: the entry page
// requires ≈224,477 bytes inclusive of all subresources, with ~12
// external scripts.
func TestEntryPageWeight(t *testing.T) {
	_, srv := forumServer(t)
	load, err := fetch.New(nil).GetWithResources(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if load.Failures > 0 {
		t.Fatalf("failures = %d", load.Failures)
	}
	// Paper: 224,477 bytes. Accept the right ballpark (±35%), which
	// preserves every downstream shape claim.
	if load.TotalBytes < 145_000 || load.TotalBytes > 305_000 {
		t.Fatalf("total bytes = %d, want ≈224 KB", load.TotalBytes)
	}
	if load.Requests < 20 {
		t.Fatalf("requests = %d", load.Requests)
	}
}

func TestForumDisplayAndThread(t *testing.T) {
	_, srv := forumServer(t)
	body, status := get(t, srv.URL+"/forumdisplay.php?f=2")
	if status != 200 || !strings.Contains(body, "General Woodworking") {
		t.Fatalf("forumdisplay: %d", status)
	}
	if _, status := get(t, srv.URL+"/forumdisplay.php?f=999"); status != 404 {
		t.Fatal("bad forum id should 404")
	}
	body, status = get(t, srv.URL+"/showthread.php?t=2000")
	if status != 200 || !strings.Contains(body, "do=showpic") {
		t.Fatal("thread page missing showpic AJAX link")
	}
}

func TestForumLoginFlow(t *testing.T) {
	_, srv := forumServer(t)
	// Unauthenticated private page is refused.
	if _, status := get(t, srv.URL+"/private.php"); status != 403 {
		t.Fatalf("private without cookie = %d", status)
	}
	// Login sets a cookie; carrying it grants access.
	resp, err := http.PostForm(srv.URL+"/login.php", map[string][]string{
		"username": {"oakhand"}, "password": {"sawdust"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	var cookie *http.Cookie
	for _, c := range resp.Cookies() {
		if c.Name == "bbuserid" {
			cookie = c
		}
	}
	if cookie == nil {
		t.Fatal("no login cookie")
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/private.php", nil)
	req.AddCookie(cookie)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if resp2.StatusCode != 200 {
		t.Fatalf("private with cookie = %d", resp2.StatusCode)
	}
	// Wrong password is refused.
	resp3, err := http.PostForm(srv.URL+"/login.php", map[string][]string{
		"username": {"oakhand"}, "password": {"wrong"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = resp3.Body.Close()
	if resp3.StatusCode != 403 {
		t.Fatalf("bad login = %d", resp3.StatusCode)
	}
}

func TestForumShowpicEndpoint(t *testing.T) {
	_, srv := forumServer(t)
	body, status := get(t, srv.URL+"/site.php?do=showpic&id=77")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	doc := html.Parse(body)
	if doc.ElementByID("pic") == nil {
		t.Fatal("no #pic fragment")
	}
	if !strings.Contains(body, "photo_77") {
		t.Fatal("id not reflected")
	}
	if _, status := get(t, srv.URL+"/site.php?do=other"); status != 404 {
		t.Fatal("unknown action should 404")
	}
	if _, status := get(t, srv.URL+"/site.php?do=showpic"); status != 400 {
		t.Fatal("missing id should 400")
	}
}

func TestForumSubresources(t *testing.T) {
	_, srv := forumServer(t)
	css, status := get(t, srv.URL+"/clientscript/vbulletin.css")
	if status != 200 || len(css) < 25_000 {
		t.Fatalf("css = %d bytes, status %d", len(css), status)
	}
	js, status := get(t, srv.URL+"/clientscript/js_3.js")
	if status != 200 || len(js) < 5_000 {
		t.Fatalf("js = %d bytes", len(js))
	}
	if _, status := get(t, srv.URL+"/clientscript/evil"); status != 404 {
		t.Fatal("unknown clientscript should 404")
	}
	img, status := get(t, srv.URL+"/ads/leaderboard.gif")
	if status != 200 || !strings.HasPrefix(img, "GIF89a") || len(img) < 30_000 {
		t.Fatalf("leaderboard = %d bytes", len(img))
	}
	icon, _ := get(t, srv.URL+"/images/forum_new_0.gif")
	if len(icon) >= len(img) {
		t.Fatal("icon should be smaller than leaderboard")
	}
}

func TestClassifiedsCategory(t *testing.T) {
	c := NewClassifieds(DefaultClassifiedsConfig())
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	body, status := get(t, srv.URL+"/search/tools")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	doc := html.Tidy(body)
	rows := jq.Select(doc, "#listings .row a")
	if rows.Len() != 100 {
		t.Fatalf("listings = %d", rows.Len())
	}
	href := rows.AttrOr("href", "")
	if !strings.HasPrefix(href, "/post/") {
		t.Fatalf("href = %q", href)
	}
	if _, status := get(t, srv.URL+"/search/nonsense"); status != 404 {
		t.Fatal("unknown category should 404")
	}
	// Root defaults to tools.
	if _, status := get(t, srv.URL+"/"); status != 200 {
		t.Fatal("root category failed")
	}
}

func TestClassifiedsPost(t *testing.T) {
	c := NewClassifieds(DefaultClassifiedsConfig())
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	body, status := get(t, srv.URL+"/post/t0007.html")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	doc := html.Tidy(body)
	if jq.Select(doc, "#postingbody").Len() != 1 {
		t.Fatal("no #postingbody")
	}
	body2, _ := get(t, srv.URL+"/post/t0007.html")
	if body != body2 {
		t.Fatal("post page not deterministic")
	}
	if _, status := get(t, srv.URL+"/post/../etc.html"); status != 404 {
		t.Fatal("traversal should 404")
	}
}
